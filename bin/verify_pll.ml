(* Command-line driver for the inevitability verification pipeline.

     dune exec bin/verify_pll.exe -- --order third --degree 4
     dune exec bin/verify_pll.exe -- --order fourth --validate
     dune exec bin/verify_pll.exe -- --order third --robust -v
     dune exec bin/verify_pll.exe -- --order third --point ip=1.05,kv=0.9

   The pipeline itself lives in Service.Job and is shared verbatim with
   the verifyd daemon, so a CLI run and a daemon job with the same spec
   produce the same verdict through the same code path; this driver
   owns only argument parsing, supervision/run-dir wiring and reports.

   Exit codes: 0 = inevitability verified; 2 = pipeline completed but
   the property was not established; 1 = pipeline/setup failure;
   130 = interrupted (checkpoint saved — resume with --resume);
   124 = usage error. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let cli_error = 124

let run order degree robust advect_iters sim_validate psd_tol eq_tol point
    retry_ladder deadline fault_plan jobs run_dir resume lock_wait solve_timeout
    mem_limit verbose =
  setup_logs verbose;
  match
    (* Parse the job spec and resilience options up front so a bad spec
       is a usage error (exit 124), not a late failure. *)
    let ( let* ) = Result.bind in
    let* ladder = Resilient.ladder_of_string retry_ladder in
    let* faults = Resilient.Faults.of_string fault_plan in
    let* point = Service.Job.point_of_string point in
    let d = Service.Job.default_spec order in
    let spec =
      {
        d with
        Service.Job.property = Service.Job.Full;
        degree = Option.value degree ~default:d.Service.Job.degree;
        robust;
        point;
        advect_iters;
        psd_tol;
        eq_tol;
        deadline_s = deadline;
      }
    in
    let* () = Service.Job.validate spec in
    (* Supervision (worker isolation, pool, cache/journal) switches on
       when any of its knobs is set — or when the fault plan contains
       process-level faults, which only a supervisor can act on. *)
    let run_dir =
      match (resume, run_dir) with
      | Some d, _ -> Some d
      | None, d -> d
    in
    let supervised =
      run_dir <> None || jobs <> None || solve_timeout <> None || mem_limit <> None
      || Resilient.Faults.proc_specs faults <> []
    in
    let supervise =
      if supervised then
        Some
          (Supervise.create ?run_dir ?jobs ?solve_timeout_s:solve_timeout
             ?mem_limit_mb:mem_limit ())
      else None
    in
    Ok
      ( spec,
        Resilient.make ~ladder ~retries:(ladder <> []) ?pipeline_deadline_s:deadline
          ~faults ?supervise (),
        supervise )
  with
  | Error e ->
      Format.eprintf "verify_pll: %s@." e;
      cli_error
  | Ok (spec, resilience, supervise) -> (
      (* Run-dir hygiene: an advisory lock so two processes sharing the
         directory cannot interleave cache writes, and a configuration
         fingerprint so --resume with problem-changing arguments is
         refused instead of silently mixing cache entries. The job's
         canonical line covers every problem-determining field,
         including the parameter point. *)
      let guarded =
        match Option.bind supervise Supervise.run_dir with
        | None -> Ok ()
        | Some dir -> (
            match Supervise.Lock.acquire ~dir ~wait_s:lock_wait () with
            | Error diag ->
                Format.eprintf "verify_pll: %s@." diag;
                Error ()
            | Ok _ -> (
                let fingerprint = "pll-verify v2 " ^ Service.Job.to_line spec in
                match
                  Supervise.Config_guard.check ~run_dir:dir ~fingerprint
                    ~summary:fingerprint
                with
                | Error diag ->
                    Format.eprintf "verify_pll: %s@." diag;
                    Error ()
                | Ok _ -> Ok ()))
      in
      match guarded with
      | Error () -> 1
      | Ok () -> (
          (match supervise with
          | Some ctx ->
              Supervise.install_signal_handlers ctx;
              (match Supervise.run_dir ctx with
              | Some dir ->
                  Format.printf "supervision: %d jobs, run dir %s%s@."
                    (Supervise.jobs ctx) dir
                    (if resume <> None then
                       Printf.sprintf " (resuming; %d solve(s) on record)"
                         (Supervise.replayed ctx)
                     else "")
              | None ->
                  Format.printf "supervision: %d jobs (no run dir)@."
                    (Supervise.jobs ctx))
          | None -> ());
          let finish_reports () =
            (if Resilient.failures resilience <> [] || verbose then
               Format.printf "resilience report: %s@."
                 (Resilient.report_json resilience));
            match supervise with
            | None -> ()
            | Some ctx ->
                let report = Supervise.report_json ctx in
                let st = Supervise.stats ctx in
                if verbose || st.Supervise.crashes > 0 || st.Supervise.timeouts > 0
                   || st.Supervise.cache_rejects > 0
                then Format.printf "supervision report: %s@." report;
                (match Supervise.run_dir ctx with
                | Some dir ->
                    let oc = open_out (Filename.concat dir "report.json") in
                    Printf.fprintf oc
                      "{\"supervise\":%s,\"resilient\":%s}\n" report
                      (Resilient.report_json resilience);
                    close_out oc
                | None -> ())
          in
          (* The (point-adjusted) scaled model the job will verify; also
             what the Monte-Carlo cross-check simulates. *)
          let scaled =
            match
              List.fold_left
                (fun acc (a, v) ->
                  Result.bind acc (fun raw ->
                      Pll.set_axis_relative raw a ~lo:v ~hi:v))
                (Ok
                   (match order with
                   | Pll.Third -> Pll.table1_third
                   | Pll.Fourth -> Pll.table1_fourth))
                spec.Service.Job.point
            with
            | Ok raw -> Some (Pll.scale raw)
            | Error _ -> None
          in
          (match scaled with
          | Some s -> Format.printf "%a@.@." Pll.pp_scaled s
          | None -> ());
          (* The validation hook prints the pipeline report exactly where
             the pipeline used to, and runs the optional Monte-Carlo
             cross-check; returning false downgrades the verdict. *)
          let validate report =
            Format.printf "%a@.@." Pll_core.Inevitability.pp_report report;
            match (sim_validate, scaled) with
            | true, Some s ->
                let v =
                  Certificates.validate_by_simulation ~trials:25 s
                    report.Pll_core.Inevitability.invariant
                in
                Format.printf "simulation validation of X1: %b@." v;
                v
            | _ -> true
          in
          match Service.Job.run ~policy:resilience ~validate spec with
          | exception Supervise.Interrupted ->
              finish_reports ();
              Format.printf
                "interrupted — checkpoint saved%s; rerun with --resume to \
                 continue@."
                (match Option.bind supervise Supervise.run_dir with
                | Some dir -> " in " ^ dir
                | None -> "");
              130
          | r -> (
              finish_reports ();
              match r.Service.Job.verdict with
              | Service.Job.Verified ->
                  Format.printf "inevitability of phase-locking: VERIFIED@.";
                  0
              | Service.Job.Not_established ->
                  Format.printf "%s: %s@." r.Service.Job.kind r.Service.Job.detail;
                  Format.printf "inevitability of phase-locking: NOT established@.";
                  2
              | Service.Job.Failed ->
                  Format.printf "verification FAILED: %s@." r.Service.Job.detail;
                  1)))

let order =
  let order_conv = Arg.enum [ ("third", Pll.Third); ("fourth", Pll.Fourth) ] in
  Arg.(value & opt order_conv Pll.Third & info [ "order"; "o" ] ~docv:"ORDER"
         ~doc:"PLL order to verify: $(b,third) or $(b,fourth).")

let degree =
  Arg.(value & opt (some int) None & info [ "degree"; "d" ] ~docv:"DEG"
         ~doc:"Lyapunov certificate degree (default: 6 for third order, 4 for fourth, \
               as in the paper).")

let robust =
  Arg.(value & flag & info [ "robust" ]
         ~doc:"Enforce the Lie-derivative decrease at every vertex of the Table-1 \
               coefficient box instead of the nominal point only.")

let advect_iters =
  Arg.(value & opt int 25 & info [ "advect-iters" ] ~docv:"N"
         ~doc:"Maximum bounded-advection iterations for property P2.")

let sim_validate =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Monte-Carlo cross-check: simulate trajectories sampled in X1 and verify \
               certificate decrease and locking.")

let psd_tol =
  Arg.(value & opt (some float) None & info [ "psd-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori PSD tolerance: how far below zero the smallest Gram \
               eigenvalue may dip for a float solution to still count as certified \
               (default 1e-7).")

let eq_tol =
  Arg.(value & opt (some float) None & info [ "eq-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori equality tolerance on the SOS decomposition residual, \
               relative to constraint scale (default 1e-5).")

let point =
  Arg.(value & opt string "" & info [ "point" ] ~docv:"SPEC"
         ~doc:"Relative parameter point as comma-separated AXIS=FACTOR pairs, e.g. \
               $(b,ip=1.05,kv=0.9); each factor replaces that axis's Table-1 \
               interval with the degenerate point FACTOR * nominal. Empty = the \
               nominal model.")

let retry_ladder =
  Arg.(value & opt string "default" & info [ "retry-ladder" ] ~docv:"SPEC"
         ~doc:"Retry ladder for failed SDP solves: $(b,default) \
               (equilibrate,jitter,relax:10,bump:3), $(b,none) (retries disabled — a \
               failed solve yields a structured failure report immediately), or a \
               comma-separated list of rungs $(b,equilibrate), $(b,jitter[:K]), \
               $(b,relax[:F]), $(b,bump[:F]) applied cumulatively in order.")

let deadline =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC"
         ~doc:"Pipeline deadline in wall-clock seconds. When exceeded, in-flight solves salvage \
               their best iterate, level bisection degrades to the smaller certified β, \
               and advection degrades to escape certificates from the last certified \
               front.")

let fault_plan =
  Arg.(value & opt string "none" & info [ "fault-plan" ] ~docv:"SPEC"
         ~doc:"Deterministic fault injection for resilience testing: comma-separated \
               $(b,fail@S:I) (numerical failure), $(b,trunc@S:I) (truncate to best \
               iterate), $(b,noise@S:I:MAG) (Gram noise), firing at interior-point \
               iteration I of logical solve S (1-based; $(b,*) = every solve), on its \
               first attempt only. Process-level faults $(b,kill@S:I) (worker SIGKILLs \
               itself), $(b,stall@S:I) (worker wedges until the timeout reaper acts) \
               and $(b,corrupt-cache@S) (stored cache entry is truncated) enable \
               supervision and exercise the worker recovery paths.")

let jobs =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Enable process supervision with a pool of N forked solve workers for \
               independent work items (default: number of cores).")

let run_dir_arg =
  Arg.(value & opt (some string) None & info [ "run-dir" ] ~docv:"DIR"
         ~doc:"Enable crash-safe supervision state under DIR: a content-addressed \
               solve cache, a write-ahead journal and persisted proof artifacts. A \
               killed run restarts from its checkpoint via $(b,--resume).")

let resume =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR"
         ~doc:"Resume a killed or interrupted run from its run directory: solves whose \
               requests hash to cached results are replayed from the cache instead of \
               re-solved. Implies $(b,--run-dir) DIR.")

let lock_wait =
  Arg.(value & opt float 0.0 & info [ "lock-wait" ] ~docv:"SEC"
         ~doc:"How long to wait for another live process's lock on the run directory \
               before failing (default 0: fail fast with a structured diagnosis). \
               Stale locks left by dead processes are stolen immediately.")

let solve_timeout =
  Arg.(value & opt (some float) None & info [ "solve-timeout" ] ~docv:"SEC"
         ~doc:"Wall-clock budget per supervised solve worker; a worker past it is \
               reaped with SIGKILL and reported as a failed attempt the retry ladder \
               recovers from. Enables supervision.")

let mem_limit =
  Arg.(value & opt (some int) None & info [ "mem-limit-mb" ] ~docv:"MB"
         ~doc:"Address-space rlimit per supervised solve worker, in MiB; a worker \
               exceeding it dies and is reported as a crashed attempt. Enables \
               supervision.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log solver progress.")

let cmd =
  let doc = "verify inevitability of phase-locking in a charge-pump PLL via SOS programming" in
  let info = Cmd.info "verify_pll" ~doc in
  Cmd.v info
    Term.(
      const run $ order $ degree $ robust $ advect_iters $ sim_validate $ psd_tol
      $ eq_tol $ point $ retry_ladder $ deadline $ fault_plan $ jobs $ run_dir_arg
      $ resume $ lock_wait $ solve_timeout $ mem_limit $ verbose)

let () = exit (Cmd.eval' cmd)
