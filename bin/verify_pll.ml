(* Command-line driver for the inevitability verification pipeline.

     dune exec bin/verify_pll.exe -- --order third --degree 4
     dune exec bin/verify_pll.exe -- --order fourth --validate
     dune exec bin/verify_pll.exe -- --order third --robust -v *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let run order degree robust advect_iters validate psd_tol eq_tol retry_ladder deadline
    fault_plan verbose =
  setup_logs verbose;
  let raw, default_degree =
    match order with
    | `Third -> (Pll.table1_third, 6)
    | `Fourth -> (Pll.table1_fourth, 4)
  in
  let degree = Option.value degree ~default:default_degree in
  let s = Pll.scale raw in
  Format.printf "%a@.@." Pll.pp_scaled s;
  let base = Certificates.default_config s.Pll.order in
  let cert_config =
    {
      base with
      Certificates.degree;
      robust_vertices = robust;
      psd_tol = Option.value psd_tol ~default:base.Certificates.psd_tol;
      eq_tol = Option.value eq_tol ~default:base.Certificates.eq_tol;
    }
  in
  match
    (* Parse the resilience options up front so a bad spec is a usage
       error (exit 2), not a late failure. *)
    let ( let* ) = Result.bind in
    let* ladder = Resilient.ladder_of_string retry_ladder in
    let* faults = Resilient.Faults.of_string fault_plan in
    Ok
      (Resilient.make ~ladder ~retries:(ladder <> []) ?pipeline_deadline_s:deadline
         ~faults ())
  with
  | Error e ->
      Format.eprintf "verify_pll: %s@." e;
      2
  | Ok resilience -> (
      match
        Pll_core.Inevitability.verify ~cert_config ~max_advect_iter:advect_iters
          ~resilience s
      with
      | Error e ->
          Format.printf "verification FAILED: %s@." e;
          Format.printf "resilience report: %s@." (Resilient.report_json resilience);
          1
  | Ok report ->
      Format.printf "%a@.@." Pll_core.Inevitability.pp_report report;
      let ok = report.Pll_core.Inevitability.verified in
      let sim_ok =
        if validate then begin
          let v =
            Certificates.validate_by_simulation ~trials:25 s
              report.Pll_core.Inevitability.invariant
          in
          Format.printf "simulation validation of X1: %b@." v;
          v
        end
        else true
      in
      if Resilient.failures resilience <> [] || verbose then
        Format.printf "resilience report: %s@." (Resilient.report_json resilience);
      if ok && sim_ok then begin
        Format.printf "inevitability of phase-locking: VERIFIED@.";
        0
      end
      else begin
        Format.printf "inevitability of phase-locking: NOT established@.";
        1
      end)

let order =
  let order_conv = Arg.enum [ ("third", `Third); ("fourth", `Fourth) ] in
  Arg.(value & opt order_conv `Third & info [ "order"; "o" ] ~docv:"ORDER"
         ~doc:"PLL order to verify: $(b,third) or $(b,fourth).")

let degree =
  Arg.(value & opt (some int) None & info [ "degree"; "d" ] ~docv:"DEG"
         ~doc:"Lyapunov certificate degree (default: 6 for third order, 4 for fourth, \
               as in the paper).")

let robust =
  Arg.(value & flag & info [ "robust" ]
         ~doc:"Enforce the Lie-derivative decrease at every vertex of the Table-1 \
               coefficient box instead of the nominal point only.")

let advect_iters =
  Arg.(value & opt int 25 & info [ "advect-iters" ] ~docv:"N"
         ~doc:"Maximum bounded-advection iterations for property P2.")

let validate =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Monte-Carlo cross-check: simulate trajectories sampled in X1 and verify \
               certificate decrease and locking.")

let psd_tol =
  Arg.(value & opt (some float) None & info [ "psd-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori PSD tolerance: how far below zero the smallest Gram \
               eigenvalue may dip for a float solution to still count as certified \
               (default 1e-7).")

let eq_tol =
  Arg.(value & opt (some float) None & info [ "eq-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori equality tolerance on the SOS decomposition residual, \
               relative to constraint scale (default 1e-5).")

let retry_ladder =
  Arg.(value & opt string "default" & info [ "retry-ladder" ] ~docv:"SPEC"
         ~doc:"Retry ladder for failed SDP solves: $(b,default) \
               (equilibrate,jitter,relax:10,bump:3), $(b,none) (retries disabled — a \
               failed solve yields a structured failure report immediately), or a \
               comma-separated list of rungs $(b,equilibrate), $(b,jitter[:K]), \
               $(b,relax[:F]), $(b,bump[:F]) applied cumulatively in order.")

let deadline =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC"
         ~doc:"Pipeline deadline in CPU seconds. When exceeded, in-flight solves salvage \
               their best iterate, level bisection degrades to the smaller certified β, \
               and advection degrades to escape certificates from the last certified \
               front.")

let fault_plan =
  Arg.(value & opt string "none" & info [ "fault-plan" ] ~docv:"SPEC"
         ~doc:"Deterministic fault injection for resilience testing: comma-separated \
               $(b,fail@S:I) (numerical failure), $(b,trunc@S:I) (truncate to best \
               iterate), $(b,noise@S:I:MAG) (Gram noise), firing at interior-point \
               iteration I of logical solve S (1-based; $(b,*) = every solve), on its \
               first attempt only.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log solver progress.")

let cmd =
  let doc = "verify inevitability of phase-locking in a charge-pump PLL via SOS programming" in
  let info = Cmd.info "verify_pll" ~doc in
  Cmd.v info
    Term.(
      const run $ order $ degree $ robust $ advect_iters $ validate $ psd_tol $ eq_tol
      $ retry_ladder $ deadline $ fault_plan $ verbose)

let () = exit (Cmd.eval' cmd)
