(* Command-line driver for the inevitability verification pipeline.

     dune exec bin/verify_pll.exe -- --order third --degree 4
     dune exec bin/verify_pll.exe -- --order fourth --validate
     dune exec bin/verify_pll.exe -- --order third --robust -v *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let run order degree robust advect_iters validate psd_tol eq_tol verbose =
  setup_logs verbose;
  let raw, default_degree =
    match order with
    | `Third -> (Pll.table1_third, 6)
    | `Fourth -> (Pll.table1_fourth, 4)
  in
  let degree = Option.value degree ~default:default_degree in
  let s = Pll.scale raw in
  Format.printf "%a@.@." Pll.pp_scaled s;
  let base = Certificates.default_config s.Pll.order in
  let cert_config =
    {
      base with
      Certificates.degree;
      robust_vertices = robust;
      psd_tol = Option.value psd_tol ~default:base.Certificates.psd_tol;
      eq_tol = Option.value eq_tol ~default:base.Certificates.eq_tol;
    }
  in
  match Pll_core.Inevitability.verify ~cert_config ~max_advect_iter:advect_iters s with
  | Error e ->
      Format.printf "verification FAILED: %s@." e;
      1
  | Ok report ->
      Format.printf "%a@.@." Pll_core.Inevitability.pp_report report;
      let ok = report.Pll_core.Inevitability.verified in
      let sim_ok =
        if validate then begin
          let v =
            Certificates.validate_by_simulation ~trials:25 s
              report.Pll_core.Inevitability.invariant
          in
          Format.printf "simulation validation of X1: %b@." v;
          v
        end
        else true
      in
      if ok && sim_ok then begin
        Format.printf "inevitability of phase-locking: VERIFIED@.";
        0
      end
      else begin
        Format.printf "inevitability of phase-locking: NOT established@.";
        1
      end

let order =
  let order_conv = Arg.enum [ ("third", `Third); ("fourth", `Fourth) ] in
  Arg.(value & opt order_conv `Third & info [ "order"; "o" ] ~docv:"ORDER"
         ~doc:"PLL order to verify: $(b,third) or $(b,fourth).")

let degree =
  Arg.(value & opt (some int) None & info [ "degree"; "d" ] ~docv:"DEG"
         ~doc:"Lyapunov certificate degree (default: 6 for third order, 4 for fourth, \
               as in the paper).")

let robust =
  Arg.(value & flag & info [ "robust" ]
         ~doc:"Enforce the Lie-derivative decrease at every vertex of the Table-1 \
               coefficient box instead of the nominal point only.")

let advect_iters =
  Arg.(value & opt int 25 & info [ "advect-iters" ] ~docv:"N"
         ~doc:"Maximum bounded-advection iterations for property P2.")

let validate =
  Arg.(value & flag & info [ "validate" ]
         ~doc:"Monte-Carlo cross-check: simulate trajectories sampled in X1 and verify \
               certificate decrease and locking.")

let psd_tol =
  Arg.(value & opt (some float) None & info [ "psd-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori PSD tolerance: how far below zero the smallest Gram \
               eigenvalue may dip for a float solution to still count as certified \
               (default 1e-7).")

let eq_tol =
  Arg.(value & opt (some float) None & info [ "eq-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori equality tolerance on the SOS decomposition residual, \
               relative to constraint scale (default 1e-5).")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log solver progress.")

let cmd =
  let doc = "verify inevitability of phase-locking in a charge-pump PLL via SOS programming" in
  let info = Cmd.info "verify_pll" ~doc in
  Cmd.v info
    Term.(
      const run $ order $ degree $ robust $ advect_iters $ validate $ psd_tol $ eq_tol
      $ verbose)

let () = exit (Cmd.eval' cmd)
