(* Client for the verifyd verification daemon.

     dune exec bin/verify_client.exe -- submit --sock /tmp/vd/verifyd.sock \
       --order third --degree 4 --point ip=1.05
     dune exec bin/verify_client.exe -- status --sock /tmp/vd/verifyd.sock
     dune exec bin/verify_client.exe -- cache-gc --sock ... --max-mb 64
     dune exec bin/verify_client.exe -- stop --sock ...

   Exit codes follow the shared discipline: 0 = verified (or request
   acknowledged), 2 = not established, 1 = failure or a structured
   refusal (overloaded / degraded / draining / daemon unreachable),
   124 = usage error. *)

open Cmdliner

let cli_error = 124

let print_response v = print_endline (Service.Json.to_string v)

(* A refusal or connection diagnosis is machine-readable on stderr. *)
let refuse line =
  prerr_endline line;
  1

let sock_arg =
  Arg.(required & opt (some string) None & info [ "sock" ] ~docv:"PATH"
         ~doc:"Unix-domain socket the daemon listens on (the daemon prints it at \
               startup; by default it lives inside the daemon's state directory).")

let timeout_arg =
  Arg.(value & opt float 300.0 & info [ "timeout" ] ~docv:"SEC"
         ~doc:"How long to wait for a response before giving up.")

(* ----------------------------------------------------------------- *)
(* submit *)

let submit sock timeout order property degree robust point bisect_steps advect_iters
    deadline no_wait =
  match
    let ( let* ) = Result.bind in
    let* property = Service.Job.property_of_name property in
    let* point = Service.Job.point_of_string point in
    let d = Service.Job.default_spec order in
    let spec =
      {
        d with
        Service.Job.property;
        degree = Option.value degree ~default:d.Service.Job.degree;
        robust;
        point;
        bisect_steps;
        advect_iters;
        deadline_s = deadline;
      }
    in
    let* () = Service.Job.validate spec in
    Ok spec
  with
  | Error e ->
      Format.eprintf "verify_client: %s@." e;
      cli_error
  | Ok spec -> (
      match
        Service.Client.submit ~sock ~wait:(not no_wait) ~timeout_s:timeout spec
      with
      | Error diag -> refuse diag
      | Ok v -> (
          print_response v;
          match Service.Json.mem_str "type" v with
          | Some "result" -> (
              match Service.Json.mem_num "exit" v with
              | Some f -> int_of_float f
              | None -> 1)
          | Some "accepted" -> 0
          | _ -> 1))

let order_arg =
  let order_conv = Arg.enum [ ("third", Pll.Third); ("fourth", Pll.Fourth) ] in
  Arg.(value & opt order_conv Pll.Third & info [ "order"; "o" ] ~docv:"ORDER"
         ~doc:"PLL order to verify: $(b,third) or $(b,fourth).")

let property_arg =
  Arg.(value & opt string "p1" & info [ "property" ] ~docv:"PROP"
         ~doc:"What to establish: $(b,p1) (attractive invariant only) or $(b,full) \
               (the complete P1+P2 inevitability pipeline).")

let degree_arg =
  Arg.(value & opt (some int) None & info [ "degree"; "d" ] ~docv:"DEG"
         ~doc:"Lyapunov certificate degree (default: the paper's, 6 for third \
               order, 4 for fourth).")

let robust_arg =
  Arg.(value & flag & info [ "robust" ]
         ~doc:"Enforce the Lie-derivative decrease at every vertex of the Table-1 \
               coefficient box instead of the nominal point only.")

let point_arg =
  Arg.(value & opt string "" & info [ "point" ] ~docv:"SPEC"
         ~doc:"Relative parameter point as comma-separated AXIS=FACTOR pairs, \
               e.g. $(b,ip=1.05,kv=0.9); factors multiply the Table-1 nominals. \
               Empty = nominal.")

let bisect_steps_arg =
  Arg.(value & opt int 6 & info [ "bisect-steps" ] ~docv:"N"
         ~doc:"Invariant-level maximization bisection steps (p1 property).")

let advect_iters_arg =
  Arg.(value & opt int 25 & info [ "advect-iters" ] ~docv:"N"
         ~doc:"Maximum bounded-advection iterations (full property).")

let deadline_arg =
  Arg.(value & opt (some float) None & info [ "deadline" ] ~docv:"SEC"
         ~doc:"Per-job pipeline deadline; the daemon kills a worker stuck past it.")

let no_wait_arg =
  Arg.(value & flag & info [ "no-wait" ]
         ~doc:"Return as soon as the job is admitted instead of waiting for its \
               verdict; the job runs to completion server-side.")

let submit_cmd =
  let doc = "submit a verification job and (by default) wait for its verdict" in
  Cmd.v (Cmd.info "submit" ~doc)
    Term.(
      const submit $ sock_arg $ timeout_arg $ order_arg $ property_arg $ degree_arg
      $ robust_arg $ point_arg $ bisect_steps_arg $ advect_iters_arg $ deadline_arg
      $ no_wait_arg)

(* ----------------------------------------------------------------- *)
(* status / cache-gc / stop *)

let simple_exit = function
  | Error diag -> refuse diag
  | Ok v -> (
      print_response v;
      match Service.Json.mem_str "type" v with Some "error" -> 1 | _ -> 0)

let status sock timeout =
  simple_exit (Service.Client.status ~sock ~timeout_s:timeout ())

let status_cmd =
  let doc = "print the daemon's service counters and queue state" in
  Cmd.v (Cmd.info "status" ~doc) Term.(const status $ sock_arg $ timeout_arg)

let cache_gc sock timeout max_mb =
  if max_mb < 1 then begin
    Format.eprintf "verify_client: --max-mb must be >= 1@.";
    cli_error
  end
  else simple_exit (Service.Client.cache_gc ~sock ~timeout_s:timeout ~max_mb ())

let max_mb_arg =
  Arg.(required & opt (some int) None & info [ "max-mb" ] ~docv:"MB"
         ~doc:"Evict least-recently-used solve-cache entries until the cache fits \
               in MB mebibytes.")

let cache_gc_cmd =
  let doc = "shrink the daemon's solve cache to a size cap (LRU eviction)" in
  Cmd.v (Cmd.info "cache-gc" ~doc)
    Term.(const cache_gc $ sock_arg $ timeout_arg $ max_mb_arg)

let stop sock timeout =
  simple_exit (Service.Client.stop ~sock ~timeout_s:timeout ())

let stop_cmd =
  let doc = "ask the daemon to drain gracefully and exit 0" in
  Cmd.v (Cmd.info "stop" ~doc) Term.(const stop $ sock_arg $ timeout_arg)

let cmd =
  let doc = "client for the verifyd verification daemon" in
  Cmd.group (Cmd.info "verify_client" ~doc)
    [ submit_cmd; status_cmd; cache_gc_cmd; stop_cmd ]

let () = exit (Cmd.eval' cmd)
