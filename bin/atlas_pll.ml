(* Fault-tolerant certification atlas driver: sweep Table-1 circuit
   parameters over a grid and certify phase-locking cell by cell.

     dune exec bin/atlas_pll.exe -- --grid ip=0.8:1.2:3,kv=0.8:1.2:3
     dune exec bin/atlas_pll.exe -- --grid ip=0.9:1.1:4 --run-dir _atlas -j 4
     dune exec bin/atlas_pll.exe -- --resume _atlas

   Exit codes: 0 = every cell certified; 2 = sweep completed with
   quarantined cells; 1 = setup/drift/lock failure; 130 = interrupted
   (checkpoint saved — resume with --resume); 124 = usage error. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let cli_error = 124

let run order degree grid_spec robust full exact bisect_steps max_subdiv cell_budget
    fault_plan jobs run_dir resume lock_wait solve_timeout mem_limit verbose =
  setup_logs verbose;
  let order = match order with `Third -> Pll.Third | `Fourth -> Pll.Fourth in
  let base_job = Atlas.default_job order in
  let job =
    {
      base_job with
      Atlas.degree = Option.value degree ~default:base_job.Atlas.degree;
      robust;
      full;
      exact;
      bisect_steps;
      max_subdiv;
      cell_budget_s = cell_budget;
    }
  in
  match
    let ( let* ) = Result.bind in
    let* grid = Atlas.Grid.parse grid_spec in
    let* faults = Atlas.Fault.of_string fault_plan in
    Ok (grid, faults)
  with
  | Error e ->
      Format.eprintf "atlas_pll: %s@." e;
      cli_error
  | Ok (grid, faults) -> (
      let resuming = resume <> None in
      let run_dir =
        match (resume, run_dir) with Some d, _ -> Some d | None, d -> d
      in
      let ctx =
        Supervise.create ?run_dir ?jobs ?solve_timeout_s:solve_timeout
          ?mem_limit_mb:mem_limit ()
      in
      Supervise.install_signal_handlers ctx;
      let guarded =
        match Supervise.run_dir ctx with
        | None -> Ok ()
        | Some dir -> (
            match Supervise.Lock.acquire ~dir ~wait_s:lock_wait () with
            | Error diag ->
                Format.eprintf "atlas_pll: %s@." diag;
                Error ()
            | Ok acq -> (
                (match acq with
                | Supervise.Lock.Stolen_stale pid ->
                    Logs.warn (fun m ->
                        m "stole stale run-dir lock left by dead pid %d" pid)
                | _ -> ());
                match
                  Supervise.Config_guard.check ~run_dir:dir
                    ~fingerprint:(Atlas.fingerprint job grid)
                    ~summary:(Atlas.fingerprint job grid)
                with
                | Error diag ->
                    Format.eprintf "atlas_pll: %s@." diag;
                    Error ()
                | Ok _ -> Ok ()))
      in
      match guarded with
      | Error () -> 1
      | Ok () -> (
          Format.printf "atlas: %s order, degree %d, grid %s (%d cells), %d job(s)%s@."
            (match order with Pll.Third -> "third" | Pll.Fourth -> "fourth")
            job.Atlas.degree
            (Atlas.Grid.to_string grid)
            (Atlas.Grid.n_cells grid) (Supervise.jobs ctx)
            (match Supervise.run_dir ctx with
            | Some d ->
                Printf.sprintf ", run dir %s%s" d (if resuming then " (resuming)" else "")
            | None -> ", no run dir (no checkpointing)");
          match Atlas.run ~ctx ~faults ~resume:resuming job grid with
          | exception Supervise.Interrupted ->
              Format.printf
                "interrupted — ledger and solve cache saved%s; rerun with --resume to \
                 continue@."
                (match Supervise.run_dir ctx with
                | Some d -> " in " ^ d
                | None -> "")
              ;
              130
          | Error e ->
              Format.eprintf "atlas_pll: %s@." e;
              1
          | Ok report ->
              Format.printf "%a@." Atlas.pp_summary report;
              let st = Supervise.stats ctx in
              if verbose || st.Supervise.crashes > 0 || st.Supervise.timeouts > 0 then
                Format.printf "supervision report: %s@." (Supervise.report_json ctx);
              (match Supervise.run_dir ctx with
              | Some d -> Format.printf "atlas written to %s@." (Filename.concat d "atlas.json")
              | None -> ());
              Atlas.exit_code report))

let order =
  let order_conv = Arg.enum [ ("third", `Third); ("fourth", `Fourth) ] in
  Arg.(value & opt order_conv `Third & info [ "order"; "o" ] ~docv:"ORDER"
         ~doc:"PLL order to sweep: $(b,third) or $(b,fourth).")

let degree =
  Arg.(value & opt (some int) None & info [ "degree"; "d" ] ~docv:"DEG"
         ~doc:"Lyapunov certificate degree per cell (default: 6 for third order, 4 for \
               fourth, as in the paper).")

let grid =
  Arg.(value & opt string "ip=0.8:1.2:3,kv=0.8:1.2:3" & info [ "grid" ] ~docv:"SPEC"
         ~doc:"Sweep grid: comma-separated $(b,axis=LO:HI:N) ranges in relative units \
               (multiples of the Table-1 nominal), N cells per axis. Axes: $(b,ip), \
               $(b,r), $(b,c1), $(b,c2), $(b,kv); fourth order adds $(b,c3), $(b,r2).")

let robust =
  Arg.(value & flag & info [ "robust" ]
         ~doc:"Certify each cell's whole parameter box (vertex enforcement of the \
               decrease condition) instead of its midpoint.")

let full =
  Arg.(value & flag & info [ "full" ]
         ~doc:"Run the full inevitability pipeline (P1 and P2) per cell instead of the \
               attractive-invariant search (P1) only.")

let exact =
  Arg.(value & flag & info [ "exact" ]
         ~doc:"Gate each certified cell on exact rational re-validation and store its \
               proof artifact as $(b,artifacts/cell-ID.artifact) for $(b,check_cert) \
               replay; cells the exact kernel cannot re-prove are quarantined.")

let bisect_steps =
  Arg.(value & opt int 6 & info [ "bisect-steps" ] ~docv:"N"
         ~doc:"Level-maximization bisection steps per cell.")

let max_subdiv =
  Arg.(value & opt int 2 & info [ "max-subdiv" ] ~docv:"D"
         ~doc:"Maximum adaptive-subdivision depth: a failed cell is bisected along its \
               widest axis up to D times before its leaves are quarantined.")

let cell_budget =
  Arg.(value & opt (some float) None & info [ "cell-budget" ] ~docv:"SEC"
         ~doc:"Per-cell pipeline deadline in wall-clock seconds; a cell past it is \
               subdivided or quarantined as $(b,budget-exhausted).")

let fault_plan =
  Arg.(value & opt string "none" & info [ "fault-plan" ] ~docv:"SPEC"
         ~doc:"Deterministic fault injection, comma-separated. Solver/worker faults \
               ($(b,fail@S:I), $(b,trunc@S:I), $(b,noise@S:I:MAG), $(b,kill@S:I), \
               $(b,stall@S:I), $(b,corrupt-cache@S)) apply to every cell, or to one \
               cell as $(b,CELL/fault). Atlas-level: $(b,kill@CELL) makes the \
               orchestrator die (as if SIGKILLed) right after CELL completes — resume \
               with $(b,--resume); $(b,fail-cell@CELL) makes CELL and its subdivision \
               descendants fail without solving.")

let jobs =
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N"
         ~doc:"Certify up to N cells concurrently in forked workers (default: number \
               of cores). The atlas is deterministic: -j 1 and -j N produce identical \
               atlas.json bytes.")

let run_dir_arg =
  Arg.(value & opt (some string) None & info [ "run-dir" ] ~docv:"DIR"
         ~doc:"Keep crash-safe sweep state under DIR: the atlas ledger, the \
               content-addressed solve cache, quarantine diagnoses, proof artifacts \
               and the final atlas.json. A killed sweep restarts from its checkpoint \
               via $(b,--resume).")

let resume =
  Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR"
         ~doc:"Resume a killed or interrupted sweep from its run directory: ledgered \
               cells replay instantly, in-flight cells re-run against the solve cache. \
               Refused (exit 1) if the configuration differs from the one the \
               directory was created with. Implies $(b,--run-dir) DIR.")

let lock_wait =
  Arg.(value & opt float 0.0 & info [ "lock-wait" ] ~docv:"SEC"
         ~doc:"How long to wait for another live process's lock on the run directory \
               before failing (default 0: fail fast with a structured diagnosis). \
               Stale locks left by dead processes are stolen immediately.")

let solve_timeout =
  Arg.(value & opt (some float) None & info [ "solve-timeout" ] ~docv:"SEC"
         ~doc:"Wall-clock budget per supervised solve worker; a worker past it is \
               reaped with SIGKILL and retried by the cell's resilience ladder.")

let mem_limit =
  Arg.(value & opt (some int) None & info [ "mem-limit-mb" ] ~docv:"MB"
         ~doc:"Address-space rlimit per supervised solve worker, in MiB.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log per-cell progress.")

let cmd =
  let doc = "certify PLL phase-locking over a parameter grid, surviving crashes" in
  let info = Cmd.info "atlas_pll" ~doc in
  Cmd.v info
    Term.(
      const run $ order $ degree $ grid $ robust $ full $ exact $ bisect_steps
      $ max_subdiv $ cell_budget $ fault_plan $ jobs $ run_dir_arg $ resume $ lock_wait
      $ solve_timeout $ mem_limit $ verbose)

let () = exit (Cmd.eval' cmd)
