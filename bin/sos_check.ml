(* Check whether a polynomial is a sum of squares and print a witness
   decomposition.

     dune exec bin/sos_check.exe -- --nvars 2 "x0^2 - 2*x0*x1 + x1^2 + 0.5"
     dune exec bin/sos_check.exe -- --nvars 2 "x0*x1"            # not SOS
     dune exec bin/sos_check.exe -- --nvars 2 --on "1 - x0^2" "x0 + 1"
                                     # nonnegativity on a semialgebraic set *)

open Cmdliner

let run nvars on_constraints psd_tol eq_tol verbose expr =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning));
  Logs.info (fun k ->
      k "a posteriori tolerances: psd_tol %.2e, eq_tol %.2e" psd_tol eq_tol);
  let parse s =
    try Ok (Poly.of_string nvars s)
    with Invalid_argument m -> Error m
  in
  match parse expr with
  | Error m ->
      Format.printf "parse error: %s@." m;
      1
  | Ok p -> (
      let domain_result =
        List.fold_left
          (fun acc g ->
            match (acc, parse g) with
            | Error e, _ -> Error e
            | _, Error e -> Error e
            | Ok gs, Ok g -> Ok (g :: gs))
          (Ok []) on_constraints
      in
      match domain_result with
      | Error m ->
          Format.printf "parse error in --on constraint: %s@." m;
          1
      | Ok domain ->
          let prob = Sos.create ~nvars in
          Sos.add_nonneg_on prob ~domain (Sos.Ppoly.of_poly p);
          let sol = Sos.solve ~options:(Sos.Options.make ~psd_tol ~eq_tol ()) prob in
          if not sol.Sos.certified then begin
            Format.printf "NOT certified%s@."
              (if domain = [] then " as a sum of squares"
               else " as nonnegative on the given set");
            1
          end
          else begin
            if domain = [] then begin
              Format.printf "SOS: yes@.";
              let parts = Sos.sos_witness prob sol 0 in
              Format.printf "witness: p = ";
              List.iteri
                (fun i q ->
                  if i > 0 then Format.printf " + ";
                  Format.printf "(%s)^2" (Poly.to_string (Poly.chop ~tol:1e-7 q)))
                parts;
              Format.printf "@.";
              let reconstructed = Poly.sum nvars (List.map (fun q -> Poly.mul q q) parts) in
              Format.printf "witness residual: %.2e@."
                (Poly.max_coeff (Poly.sub reconstructed p))
            end
            else
              Format.printf
                "certified nonnegative on the set (S-procedure, Gram min eig %.2e, residual \
                 %.2e)@."
                sol.Sos.min_gram_eig sol.Sos.max_eq_residual;
            0
          end)

let nvars =
  Arg.(value & opt int 2 & info [ "nvars"; "n" ] ~docv:"N" ~doc:"Number of variables x0..x(N-1).")

let on_constraints =
  Arg.(value & opt_all string [] & info [ "on" ] ~docv:"G"
         ~doc:"Restrict to the semialgebraic set {x | G(x) >= 0} (repeatable).")

let psd_tol =
  Arg.(value & opt float 1e-7 & info [ "psd-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori PSD tolerance: how far below zero the smallest Gram \
               eigenvalue may dip and still count as certified.")

let eq_tol =
  Arg.(value & opt float 1e-5 & info [ "eq-tol" ] ~docv:"TOL"
         ~doc:"A-posteriori equality tolerance on the decomposition residual, relative \
               to constraint scale.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log tolerances and solver progress.")

let expr = Arg.(required & pos 0 (some string) None & info [] ~docv:"POLY")

let cmd =
  let doc = "check sum-of-squares / semialgebraic nonnegativity of a polynomial" in
  Cmd.v (Cmd.info "sos_check" ~doc)
    Term.(const run $ nvars $ on_constraints $ psd_tol $ eq_tol $ verbose $ expr)

let () = exit (Cmd.eval' cmd)
