(* Replay stored proof artifacts through the exact certificate kernel.

     dune exec bin/check_cert.exe -- certs.artifact
     dune exec bin/check_cert.exe -- --quiet a.artifact b.artifact

   Exit status 0 iff every certificate in every artifact is Proven.
   This binary deliberately depends only on the exact kernel — no SDP
   solver, no floating point: it is the independent audit path for
   certificates produced by verify_pll / the examples. *)

open Cmdliner

let check_file quiet path =
  match Exact.Artifact.load path with
  | Error e ->
      Format.printf "%s: ERROR %s@." path e;
      false
  | Ok artifact ->
      if not quiet then begin
        Format.printf "%s: artifact v%d, %d certificate(s)@." path
          artifact.Exact.Artifact.version
          (List.length artifact.Exact.Artifact.certs);
        List.iter
          (fun (k, v) -> Format.printf "  meta %s = %s@." k v)
          artifact.Exact.Artifact.meta
      end;
      let verdicts = Exact.Artifact.check_all artifact in
      let ok = ref true in
      List.iter
        (fun (name, v) ->
          let proven = match v with Exact.Check.Proven _ -> true | _ -> false in
          if not proven then ok := false;
          if not quiet || not proven then
            Format.printf "  %-28s %s@." name (Exact.Check.verdict_to_string v))
        verdicts;
      !ok

let run quiet paths =
  let ok = List.for_all (fun p -> check_file quiet p) paths in
  if ok then begin
    if not quiet then Format.printf "all certificates proven@.";
    0
  end
  else begin
    Format.printf "FAILED: unproven certificates@.";
    1
  end

let quiet =
  Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only print failures.")

let paths =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"ARTIFACT"
         ~doc:"Proof artifact file(s) written by Exact.Artifact.")

let cmd =
  let doc = "exactly re-validate stored SOS proof artifacts" in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Each artifact is parsed and every certificate in it is re-checked by the \
         trusted kernel: the Positivstellensatz identity must hold \
         coefficient-for-coefficient over the rationals, and every Gram matrix must \
         pass an exact LDL^T positive-semidefiniteness test. No floating point is \
         involved; a Proven verdict is machine-checked evidence.";
    ]
  in
  Cmd.v (Cmd.info "check_cert" ~doc ~man) Term.(const run $ quiet $ paths)

let () = exit (Cmd.eval' cmd)
