#!/usr/bin/env bash
# Repo hygiene checks:
#
#  1. the build tree must stay out of version control — .gitignore must
#     carry the `_build/` rule and (when run inside a git work tree) no
#     _build artifact may actually be tracked;
#  2. every library module must have an interface — each lib/*/<m>.ml
#     needs a lib/*/<m>.mli, so library surfaces stay documented and
#     deliberate.
#
# Wired into `dune runtest` from test/dune; also runnable standalone:
#
#     bin/check_hygiene.sh [GITIGNORE]
set -eu

fail() { echo "check_hygiene: $*" >&2; exit 1; }

gitignore="${1:-"$(cd "$(dirname "$0")/.." && pwd)/.gitignore"}"
[ -f "$gitignore" ] || fail "no .gitignore at $gitignore"
grep -qx '_build/' "$gitignore" || fail "_build/ is not ignored by $gitignore"

repo="$(cd "$(dirname "$gitignore")" && pwd)"
missing=""
for ml in "$repo"/lib/*/*.ml; do
  [ -e "$ml" ] || continue
  [ -f "${ml%.ml}.mli" ] || missing="$missing ${ml#"$repo"/}"
done
[ -z "$missing" ] || fail "library modules without an .mli:$missing"

if command -v git >/dev/null 2>&1; then
  root="$(git rev-parse --show-toplevel 2>/dev/null || true)"
  if [ -n "$root" ]; then
    tracked="$(git -C "$root" ls-files _build | head -n 1)"
    [ -z "$tracked" ] || fail "build artifacts are tracked: $tracked"
  fi
fi

echo "check_hygiene: OK"
