#!/usr/bin/env bash
# Repo hygiene checks:
#
#  1. the build tree must stay out of version control — .gitignore must
#     carry the `_build/` rule and (when run inside a git work tree) no
#     _build artifact may actually be tracked;
#  2. every library module must have an interface — each lib/*/<m>.ml
#     needs a lib/*/<m>.mli, so library surfaces stay documented and
#     deliberate;
#  3. CLI resumability must stay coherent — any bin/*.ml that documents
#     --run-dir must document --resume and vice versa (a driver with
#     persistent state but no resume story, or the reverse, is a doc
#     bug);
#  4. the bench --json schema must keep the atlas cell counters
#     (atlas_cells / atlas_certified / atlas_quarantined), which
#     downstream tooling reads from BENCH_*.json;
#  5. the README's documented daemon CLI must match reality — the
#     `verifyd flags:` line in README.md and the flags reported by
#     `verifyd --help` must be the same set, both ways (only checked
#     when a verifyd executable is passed as the second argument);
#  6. solver entry points must not re-grow scattered optional
#     arguments — `Sos.solve` takes configuration through
#     `?options:Sos.Options.t` only, and `Sdp.Session.solve` through
#     `?hint`/`?params` only (new knobs belong in the records);
#  7. performance PRs must carry bench evidence — when run in a git
#     work tree with pending changes under lib/sdp/ or lib/linalg/,
#     some BENCH_*.json must change too (regenerate with
#     `dune exec bench/main.exe -- --fast ... --json` and compare via
#     `bench ab`).
#
# Wired into `dune runtest` from test/dune; also runnable standalone:
#
#     bin/check_hygiene.sh [GITIGNORE] [VERIFYD_EXE]
set -eu

fail() { echo "check_hygiene: $*" >&2; exit 1; }

gitignore="${1:-"$(cd "$(dirname "$0")/.." && pwd)/.gitignore"}"
[ -f "$gitignore" ] || fail "no .gitignore at $gitignore"
grep -qx '_build/' "$gitignore" || fail "_build/ is not ignored by $gitignore"

repo="$(cd "$(dirname "$gitignore")" && pwd)"
missing=""
for ml in "$repo"/lib/*/*.ml; do
  [ -e "$ml" ] || continue
  [ -f "${ml%.ml}.mli" ] || missing="$missing ${ml#"$repo"/}"
done
[ -z "$missing" ] || fail "library modules without an .mli:$missing"

# CLI run-dir/resume doc coherence (check 3).
for ml in "$repo"/bin/*.ml; do
  [ -e "$ml" ] || continue
  has_run_dir=0; has_resume=0
  grep -q -- '"run-dir"' "$ml" && has_run_dir=1
  grep -q -- '"resume"' "$ml" && has_resume=1
  [ "$has_run_dir" = "$has_resume" ] || \
    fail "${ml#"$repo"/} documents only one of --run-dir/--resume; a persistent driver must offer both"
done

# Bench atlas counters (check 4).
bench="$repo/bench/main.ml"
if [ -f "$bench" ]; then
  for field in atlas_cells atlas_certified atlas_quarantined; do
    grep -q "$field" "$bench" || \
      fail "bench/main.ml --json schema lost the $field counter"
  done
fi

# README daemon flags vs `verifyd --help` (check 5).
verifyd="${2:-}"
readme="$repo/README.md"
if [ -n "$verifyd" ] && [ -x "$verifyd" ] && [ -f "$readme" ]; then
  flags_line="$(grep -m1 '^verifyd flags:' "$readme" || true)"
  [ -n "$flags_line" ] || \
    fail "README.md lacks a 'verifyd flags:' line documenting the daemon CLI"
  readme_flags="$(printf '%s\n' "$flags_line" | grep -oE -- '--[a-z-]+' | sort -u)"
  help_flags="$("$verifyd" --help=plain 2>/dev/null | grep -oE -- '--[a-z-]+' \
    | grep -vE '^--(help|version)$' | sort -u)"
  [ -n "$help_flags" ] || fail "verifyd --help produced no flags ($verifyd)"
  if [ "$readme_flags" != "$help_flags" ]; then
    fail "README 'verifyd flags:' line drifts from verifyd --help: readme=[$(echo $readme_flags)] help=[$(echo $help_flags)]"
  fi
fi

# Solve entry points stay record-configured (check 6). Extract each
# declaration (from `val solve :` to the closing return type) and
# reject optional arguments outside the sanctioned set.
decl_optionals() { # emit the ?args of the first `val solve :` decl on stdin
  awk '/val solve :/{f=1} f{print; if (/solution/) exit}' \
    | grep -oE '\?[a-z_]+' | sort -u | tr -d '?'
}
sos_mli="$repo/lib/sos/sos.mli"
if [ -f "$sos_mli" ]; then
  extra="$(grep '^val solve' -A4 "$sos_mli" | decl_optionals | grep -vx 'options' || true)"
  [ -z "$extra" ] || \
    fail "Sos.solve grew scattered optional args ($(echo $extra)); add fields to Sos.Options.t instead"
fi
sdp_mli="$repo/lib/sdp/sdp.mli"
if [ -f "$sdp_mli" ]; then
  extra="$(sed -n '/^module Session/,/^end/p' "$sdp_mli" | decl_optionals \
    | grep -vxE 'hint|params' || true)"
  [ -z "$extra" ] || \
    fail "Sdp.Session.solve grew scattered optional args ($(echo $extra)); extend params or the session instead"
fi

if command -v git >/dev/null 2>&1; then
  root="$(git rev-parse --show-toplevel 2>/dev/null || true)"
  if [ -n "$root" ]; then
    tracked="$(git -C "$root" ls-files _build | head -n 1)"
    [ -z "$tracked" ] || fail "build artifacts are tracked: $tracked"
    # Perf changes need bench evidence (check 7): pending edits to the
    # solver core must be accompanied by a refreshed BENCH_*.json.
    pending="$(git -C "$root" diff --name-only HEAD -- 2>/dev/null || true)"
    if printf '%s\n' "$pending" | grep -qE '^lib/(sdp|linalg)/'; then
      printf '%s\n' "$pending" | grep -q 'BENCH_.*\.json' || \
        fail "lib/sdp or lib/linalg changed without a BENCH_*.json delta; regenerate (bench --json) and compare with 'bench ab'"
    fi
  fi
fi

echo "check_hygiene: OK"
