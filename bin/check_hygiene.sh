#!/usr/bin/env bash
# Repo hygiene check: the build tree must stay out of version control.
#
# Asserts that .gitignore carries the `_build/` rule and (when run inside
# a git work tree) that no _build artifact is actually tracked. Wired
# into `dune runtest` from test/dune; also runnable standalone:
#
#     bin/check_hygiene.sh [GITIGNORE]
set -eu

fail() { echo "check_hygiene: $*" >&2; exit 1; }

gitignore="${1:-"$(cd "$(dirname "$0")/.." && pwd)/.gitignore"}"
[ -f "$gitignore" ] || fail "no .gitignore at $gitignore"
grep -qx '_build/' "$gitignore" || fail "_build/ is not ignored by $gitignore"

if command -v git >/dev/null 2>&1; then
  root="$(git rev-parse --show-toplevel 2>/dev/null || true)"
  if [ -n "$root" ]; then
    tracked="$(git -C "$root" ls-files _build | head -n 1)"
    [ -z "$tracked" ] || fail "build artifacts are tracked: $tracked"
  fi
fi

echo "check_hygiene: OK"
