(* Persistent verification daemon over a Unix-domain socket.

     dune exec bin/verifyd.exe -- --run-dir /tmp/vd
     dune exec bin/verifyd.exe -- --run-dir /tmp/vd --resume --workers 4
     dune exec bin/verifyd.exe -- --run-dir /tmp/vd --cache-max-mb 64

   Jobs are submitted with verify_client; verdicts and the solve cache
   live under the run directory, so a kill -9 loses nothing that was
   admitted (restart with --resume).

   Exit codes: 0 = drained cleanly (SIGTERM or a stop request);
   1 = setup failure (lock held, un-resumed ledger, unusable socket);
   130 = interrupted (SIGINT); 124 = usage error. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Info else Logs.Warning))

let cli_error = 124

let run run_dir resume sock workers queue_cap cache_max_mb breaker_threshold
    breaker_cooldown default_deadline job_retries fault_plan lock_wait verbose =
  setup_logs verbose;
  match
    let ( let* ) = Result.bind in
    let* faults = Service.Daemon.Fault.of_string fault_plan in
    let* () = if workers >= 1 then Ok () else Error "--workers must be >= 1" in
    let* () = if queue_cap >= 1 then Ok () else Error "--queue-cap must be >= 1" in
    let* () =
      if breaker_threshold >= 1 then Ok ()
      else Error "--breaker-threshold must be >= 1"
    in
    let* () =
      if job_retries >= 0 then Ok () else Error "--job-retries must be >= 0"
    in
    let* () =
      match cache_max_mb with
      | Some mb when mb < 1 -> Error "--cache-max-mb must be >= 1"
      | _ -> Ok ()
    in
    let* () =
      match default_deadline with
      | Some d when not (d > 0.0) -> Error "--default-deadline must be positive"
      | _ -> Ok ()
    in
    Ok faults
  with
  | Error e ->
      Format.eprintf "verifyd: %s@." e;
      cli_error
  | Ok faults ->
      Service.Daemon.run
        {
          (Service.Daemon.default_config ~run_dir) with
          Service.Daemon.sock;
          workers;
          queue_cap;
          cache_max_mb;
          breaker_threshold;
          breaker_cooldown_s = breaker_cooldown;
          default_deadline_s = default_deadline;
          job_retries;
          lock_wait_s = lock_wait;
          faults;
          resume;
        }

let run_dir_arg =
  Arg.(required & opt (some string) None & info [ "run-dir" ] ~docv:"DIR"
         ~doc:"Daemon state directory: the durable job-queue ledger, the \
               content-addressed solve cache, the per-fingerprint result store and \
               (by default) the listening socket all live here. Survives kill -9; \
               restart with $(b,--resume).")

let resume_arg =
  Arg.(value & flag & info [ "resume" ]
         ~doc:"Reopen an existing run directory: terminal ledger entries are \
               compacted away, in-flight and pending jobs re-dispatch against the \
               warm solve cache (completed work is never re-solved). Without this \
               flag a non-empty ledger is refused.")

let sock =
  Arg.(value & opt (some string) None & info [ "sock" ] ~docv:"PATH"
         ~doc:"Unix-domain socket path to listen on (default: \
               $(i,RUN_DIR)/verifyd.sock).")

let workers =
  Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
         ~doc:"Maximum concurrent forked job workers.")

let queue_cap =
  Arg.(value & opt int 16 & info [ "queue-cap" ] ~docv:"N"
         ~doc:"Bounded admission queue length; submits beyond it receive a \
               structured $(b,overloaded) refusal with a retry-after hint instead \
               of growing memory.")

let cache_max_mb =
  Arg.(value & opt (some int) None & info [ "cache-max-mb" ] ~docv:"MB"
         ~doc:"Size cap for the solve cache: after each completed job (and once at \
               startup) least-recently-used entries are evicted until the cache \
               fits. Default: unbounded.")

let breaker_threshold =
  Arg.(value & opt int 3 & info [ "breaker-threshold" ] ~docv:"N"
         ~doc:"Consecutive worker crashes that open the circuit breaker, degrading \
               the daemon to cache-only serving until a cooldown and a successful \
               probe close it again.")

let breaker_cooldown =
  Arg.(value & opt float 30.0 & info [ "breaker-cooldown" ] ~docv:"SEC"
         ~doc:"Seconds an open breaker waits before admitting a single probe job.")

let default_deadline =
  Arg.(value & opt (some float) None & info [ "default-deadline" ] ~docv:"SEC"
         ~doc:"Per-job pipeline deadline applied to submitted jobs that do not \
               carry one; a worker past deadline + grace is killed and the job \
               reported as a structured failure.")

let job_retries =
  Arg.(value & opt int 2 & info [ "job-retries" ] ~docv:"N"
         ~doc:"Worker restarts (with exponential backoff) per job before the job \
               is failed as $(b,worker-crash).")

let fault_plan =
  Arg.(value & opt string "none" & info [ "fault-plan" ] ~docv:"SPEC"
         ~doc:"Deterministic daemon-level chaos for testing: comma-separated \
               $(b,kill-worker@JOB) (SIGKILL JOB's worker right after launch), \
               $(b,drop-client@JOB) (server-side close of JOB's submitting client), \
               $(b,wedge-queue) (dispatcher never starts jobs, so backpressure is \
               observable), $(b,die@JOB) (simulated kill -9 right after JOB's start \
               is ledgered). Each fires once.")

let lock_wait =
  Arg.(value & opt float 0.0 & info [ "lock-wait" ] ~docv:"SEC"
         ~doc:"How long to wait for another live process's lock on the run \
               directory before failing (default 0: fail fast). Stale locks left \
               by dead processes are stolen immediately.")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Log daemon internals.")

let cmd =
  let doc = "persistent PLL verification daemon with a crash-safe job queue" in
  let info = Cmd.info "verifyd" ~doc in
  Cmd.v info
    Term.(
      const run $ run_dir_arg $ resume_arg $ sock $ workers $ queue_cap
      $ cache_max_mb $ breaker_threshold $ breaker_cooldown $ default_deadline
      $ job_retries $ fault_plan $ lock_wait $ verbose)

let () = exit (Cmd.eval' cmd)
