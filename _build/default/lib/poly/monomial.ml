type t = int array

let one n = Array.make n 0

let var n i =
  if i < 0 || i >= n then invalid_arg "Monomial.var: index out of range";
  let m = Array.make n 0 in
  m.(i) <- 1;
  m

let of_exponents es =
  List.iter (fun e -> if e < 0 then invalid_arg "Monomial.of_exponents: negative") es;
  Array.of_list es

let arity = Array.length

let degree m = Array.fold_left ( + ) 0 m

let exponent m i = m.(i)

let check_arity name a b =
  if Array.length a <> Array.length b then
    invalid_arg (Printf.sprintf "Monomial.%s: arity mismatch" name)

let mul a b =
  check_arity "mul" a b;
  Array.init (Array.length a) (fun i -> a.(i) + b.(i))

let divide m d =
  check_arity "divide" m d;
  let q = Array.init (Array.length m) (fun i -> m.(i) - d.(i)) in
  if Array.for_all (fun e -> e >= 0) q then Some q else None

let compare a b =
  check_arity "compare" a b;
  let c = Int.compare (degree a) (degree b) in
  if c <> 0 then c else Stdlib.compare a b

let equal a b = Array.length a = Array.length b && Array.for_all2 Int.equal a b

let eval m x =
  if Array.length x <> Array.length m then invalid_arg "Monomial.eval: arity mismatch";
  let v = ref 1.0 in
  for i = 0 to Array.length m - 1 do
    for _ = 1 to m.(i) do
      v := !v *. x.(i)
    done
  done;
  !v

let is_even m = Array.for_all (fun e -> e mod 2 = 0) m

let all_of_degree n d =
  (* Enumerate exponent vectors of total degree exactly d. *)
  let rec go i remaining acc =
    if i = n - 1 then begin
      acc.(i) <- remaining;
      [ Array.copy acc ]
    end
    else
      List.concat_map
        (fun e ->
          acc.(i) <- e;
          go (i + 1) (remaining - e) acc)
        (List.init (remaining + 1) Fun.id)
  in
  if n = 0 then if d = 0 then [ [||] ] else []
  else List.sort compare (go 0 d (Array.make n 0))

let all_upto n d = List.concat_map (fun k -> all_of_degree n k) (List.init (d + 1) Fun.id)

let to_string ?names m =
  let name i =
    match names with Some a -> a.(i) | None -> Printf.sprintf "x%d" i
  in
  let parts = ref [] in
  for i = Array.length m - 1 downto 0 do
    if m.(i) = 1 then parts := name i :: !parts
    else if m.(i) > 1 then parts := Printf.sprintf "%s^%d" (name i) m.(i) :: !parts
  done;
  match !parts with [] -> "1" | ps -> String.concat "*" ps

let pp ppf m = Format.pp_print_string ppf (to_string m)
