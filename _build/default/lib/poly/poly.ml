module Monomial = Monomial

module MonoMap = Map.Make (struct
  type t = Monomial.t

  let compare = Monomial.compare
end)

type t = { nvars : int; terms : float MonoMap.t }

let nvars p = p.nvars

let zero n = { nvars = n; terms = MonoMap.empty }

let normalize_coeff c m map = if c = 0.0 then map else MonoMap.add m c map

let const n c = { nvars = n; terms = normalize_coeff c (Monomial.one n) MonoMap.empty }

let one n = const n 1.0

let var n i =
  { nvars = n; terms = MonoMap.add (Monomial.var n i) 1.0 MonoMap.empty }

let add_term m c map =
  let c' = c +. (match MonoMap.find_opt m map with Some v -> v | None -> 0.0) in
  if c' = 0.0 then MonoMap.remove m map else MonoMap.add m c' map

let of_terms n l =
  let terms =
    List.fold_left
      (fun acc (m, c) ->
        if Monomial.arity m <> n then invalid_arg "Poly.of_terms: arity mismatch";
        add_term m c acc)
      MonoMap.empty l
  in
  { nvars = n; terms }

let terms p = MonoMap.bindings p.terms

let coeff p m = match MonoMap.find_opt m p.terms with Some c -> c | None -> 0.0

let is_zero p = MonoMap.is_empty p.terms

let degree p = MonoMap.fold (fun m _ acc -> Int.max acc (Monomial.degree m)) p.terms (-1)

let check_arity name a b =
  if a.nvars <> b.nvars then invalid_arg (Printf.sprintf "Poly.%s: arity mismatch" name)

let equal a b = a.nvars = b.nvars && MonoMap.equal Float.equal a.terms b.terms

let add a b =
  check_arity "add" a b;
  { a with terms = MonoMap.fold add_term b.terms a.terms }

let neg a = { a with terms = MonoMap.map (fun c -> -.c) a.terms }

let sub a b = add a (neg b)

let scale s a =
  if s = 0.0 then zero a.nvars else { a with terms = MonoMap.map (fun c -> s *. c) a.terms }

let approx_equal ?(tol = 1e-9) a b =
  a.nvars = b.nvars
  &&
  let d = sub a b in
  MonoMap.for_all (fun _ c -> Float.abs c <= tol) d.terms

let mul a b =
  check_arity "mul" a b;
  let terms =
    MonoMap.fold
      (fun ma ca acc ->
        MonoMap.fold
          (fun mb cb acc -> add_term (Monomial.mul ma mb) (ca *. cb) acc)
          b.terms acc)
      a.terms MonoMap.empty
  in
  { nvars = a.nvars; terms }

let rec pow p k =
  if k < 0 then invalid_arg "Poly.pow: negative exponent"
  else if k = 0 then one p.nvars
  else if k = 1 then p
  else begin
    let h = pow p (k / 2) in
    let h2 = mul h h in
    if k mod 2 = 0 then h2 else mul h2 p
  end

let sum n l = List.fold_left add (zero n) l

let eval p x =
  if Array.length x <> p.nvars then invalid_arg "Poly.eval: arity mismatch";
  MonoMap.fold (fun m c acc -> acc +. (c *. Monomial.eval m x)) p.terms 0.0

let partial i p =
  if i < 0 || i >= p.nvars then invalid_arg "Poly.partial: index out of range";
  let terms =
    MonoMap.fold
      (fun m c acc ->
        let e = Monomial.exponent m i in
        if e = 0 then acc
        else begin
          let m' = Array.copy m in
          m'.(i) <- e - 1;
          add_term m' (c *. float_of_int e) acc
        end)
      p.terms MonoMap.empty
  in
  { p with terms }

let gradient p = Array.init p.nvars (fun i -> partial i p)

let hessian p =
  let g = gradient p in
  Array.init p.nvars (fun i -> Array.init p.nvars (fun j -> partial j g.(i)))

let lie_derivative p f =
  if Array.length f <> p.nvars then invalid_arg "Poly.lie_derivative: arity mismatch";
  let g = gradient p in
  let n = if Array.length f = 0 then p.nvars else (f.(0)).nvars in
  let acc = ref (zero n) in
  for i = 0 to p.nvars - 1 do
    acc := add !acc (mul g.(i) f.(i))
  done;
  !acc

let subst p q =
  if Array.length q <> p.nvars then invalid_arg "Poly.subst: arity mismatch";
  let n = if Array.length q = 0 then 0 else (q.(0)).nvars in
  Array.iter (fun qi -> if qi.nvars <> n then invalid_arg "Poly.subst: ragged arity") q;
  MonoMap.fold
    (fun m c acc ->
      let term = ref (const n c) in
      for i = 0 to p.nvars - 1 do
        let e = Monomial.exponent m i in
        if e > 0 then term := mul !term (pow q.(i) e)
      done;
      add acc !term)
    p.terms (zero n)

let shift p c =
  if Array.length c <> p.nvars then invalid_arg "Poly.shift: arity mismatch";
  let q = Array.init p.nvars (fun i -> add (var p.nvars i) (const p.nvars c.(i))) in
  subst p q

let extend n p =
  if n < p.nvars then invalid_arg "Poly.extend: shrinking arity";
  let terms =
    MonoMap.fold
      (fun m c acc ->
        let m' = Array.append m (Array.make (n - p.nvars) 0) in
        MonoMap.add m' c acc)
      p.terms MonoMap.empty
  in
  { nvars = n; terms }

let chop ?(tol = 1e-10) p =
  { p with terms = MonoMap.filter (fun _ c -> Float.abs c > tol) p.terms }

let max_coeff p = MonoMap.fold (fun _ c acc -> Float.max acc (Float.abs c)) p.terms 0.0

let quadratic_form q =
  let n = q.Linalg.Mat.rows in
  let acc = ref (zero n) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let c = Linalg.Mat.get q i j in
      if c <> 0.0 then
        acc := add !acc (scale c (mul (var n i) (var n j)))
    done
  done;
  !acc

let from_basis basis coeffs n =
  if List.length basis <> Array.length coeffs then
    invalid_arg "Poly.from_basis: length mismatch";
  of_terms n (List.mapi (fun k m -> (m, coeffs.(k))) basis)

(* Recursive-descent parser for the [to_string] syntax. *)
let of_string ?names n s =
  let var_index =
    let table = Hashtbl.create 8 in
    (match names with
    | Some a ->
        if Array.length a <> n then invalid_arg "Poly.of_string: names length";
        Array.iteri (fun i name -> Hashtbl.replace table name i) a
    | None ->
        for i = 0 to n - 1 do
          Hashtbl.replace table (Printf.sprintf "x%d" i) i
        done);
    fun name ->
      match Hashtbl.find_opt table name with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Poly.of_string: unknown variable %s" name)
  in
  let len = String.length s in
  let pos = ref 0 in
  let fail msg = invalid_arg (Printf.sprintf "Poly.of_string: %s at position %d" msg !pos) in
  let skip_ws () =
    while !pos < len && (s.[!pos] = ' ' || s.[!pos] = '\t' || s.[!pos] = '\n') do
      incr pos
    done
  in
  let peek () =
    skip_ws ();
    if !pos < len then Some s.[!pos] else None
  in
  let eat c = match peek () with Some c' when c' = c -> incr pos | _ -> fail (Printf.sprintf "expected '%c'" c) in
  let is_digit c = c >= '0' && c <= '9' in
  let is_ident c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || is_digit c || c = '_' in
  let parse_number () =
    let start = !pos in
    while
      !pos < len
      && (is_digit s.[!pos] || s.[!pos] = '.'
         || ((s.[!pos] = 'e' || s.[!pos] = 'E') && !pos > start)
         || ((s.[!pos] = '+' || s.[!pos] = '-')
            && !pos > start
            && (s.[!pos - 1] = 'e' || s.[!pos - 1] = 'E')))
    do
      incr pos
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let parse_ident () =
    let start = !pos in
    while !pos < len && is_ident s.[!pos] do
      incr pos
    done;
    String.sub s start (!pos - start)
  in
  let parse_int () =
    let start = !pos in
    while !pos < len && is_digit s.[!pos] do
      incr pos
    done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad exponent"
  in
  (* Forward declarations for the mutually recursive grammar. *)
  let rec parse_expr () =
    let t = ref (parse_term ()) in
    let continue_ = ref true in
    while !continue_ do
      match peek () with
      | Some '+' ->
          incr pos;
          t := add !t (parse_term ())
      | Some '-' ->
          incr pos;
          t := sub !t (parse_term ())
      | _ -> continue_ := false
    done;
    !t
  and parse_term () =
    let f = ref (parse_factor ()) in
    let continue_ = ref true in
    while !continue_ do
      match peek () with
      | Some '*' ->
          incr pos;
          f := mul !f (parse_factor ())
      | _ -> continue_ := false
    done;
    !f
  and parse_factor () =
    let base = parse_base () in
    match peek () with
    | Some '^' ->
        incr pos;
        skip_ws ();
        pow base (parse_int ())
    | _ -> base
  and parse_base () =
    match peek () with
    | Some '(' ->
        eat '(';
        let e = parse_expr () in
        eat ')';
        e
    | Some '-' ->
        incr pos;
        neg (parse_factor ())
    | Some c when is_digit c || c = '.' -> const n (parse_number ())
    | Some c when is_ident c -> var n (var_index (parse_ident ()))
    | _ -> fail "unexpected input"
  in
  let result = parse_expr () in
  skip_ws ();
  if !pos <> len then fail "trailing input";
  result

let to_string ?names p =
  if is_zero p then "0"
  else begin
    let buf = Buffer.create 64 in
    let first = ref true in
    List.iter
      (fun (m, c) ->
        let mono = Monomial.to_string ?names m in
        let abs_c = Float.abs c in
        if !first then begin
          if c < 0.0 then Buffer.add_string buf "-";
          first := false
        end
        else Buffer.add_string buf (if c < 0.0 then " - " else " + ");
        if Monomial.degree m = 0 then Buffer.add_string buf (Printf.sprintf "%g" abs_c)
        else if abs_c = 1.0 then Buffer.add_string buf mono
        else Buffer.add_string buf (Printf.sprintf "%g*%s" abs_c mono))
      (terms p);
    Buffer.contents buf
  end

let pp ppf p = Format.pp_print_string ppf (to_string p)
