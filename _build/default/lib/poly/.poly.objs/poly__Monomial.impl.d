lib/poly/monomial.ml: Array Format Fun Int List Printf Stdlib String
