lib/poly/monomial.mli: Format
