lib/poly/poly.ml: Array Buffer Float Format Hashtbl Int Linalg List Map Monomial Printf String
