lib/poly/poly.mli: Format Linalg Monomial
