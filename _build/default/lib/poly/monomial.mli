(** Multivariate monomials as exponent vectors.

    A monomial over [n] variables is the exponent vector
    [e = [| e0; ...; e(n-1) |]] standing for [x0^e0 * ... * x(n-1)^e(n-1)].
    The arity is the length of the vector; all binary operations require
    equal arities. *)

type t = int array

val one : int -> t
(** [one n] is the constant monomial (all exponents zero) over [n]
    variables. *)

val var : int -> int -> t
(** [var n i] is the monomial [x_i] over [n] variables. *)

val of_exponents : int list -> t
(** Monomial from an exponent list. Raises [Invalid_argument] on negative
    exponents. *)

val arity : t -> int
(** Number of variables. *)

val degree : t -> int
(** Total degree (sum of exponents). *)

val exponent : t -> int -> int
(** [exponent m i] is the exponent of [x_i]. *)

val mul : t -> t -> t
(** Product (exponentwise sum). *)

val divide : t -> t -> t option
(** [divide m d] is [Some (m / d)] when [d] divides [m], else [None]. *)

val compare : t -> t -> int
(** Graded lexicographic order: lower total degree first, then
    lexicographic on exponents. *)

val equal : t -> t -> bool
(** Structural equality. *)

val eval : t -> float array -> float
(** [eval m x] is the monomial's value at the point [x]. *)

val is_even : t -> bool
(** Whether every exponent is even (such monomials are squares). *)

val all_upto : int -> int -> t list
(** [all_upto n d] enumerates every monomial over [n] variables of total
    degree at most [d], in {!compare} order. *)

val all_of_degree : int -> int -> t list
(** [all_of_degree n d] enumerates the monomials of total degree exactly
    [d], in {!compare} order. *)

val to_string : ?names:string array -> t -> string
(** Human-readable form, e.g. ["x0^2*x1"]. [names] overrides the default
    ["x0", "x1", ...] variable names. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer using default variable names. *)
