(** Sparse multivariate polynomials over [float] coefficients.

    A polynomial carries its arity [nvars]; operations between polynomials
    of different arities raise [Invalid_argument]. Terms with coefficient
    exactly [0.] are never stored. {!Monomial} provides the exponent
    vectors; this module is the ring. *)

module Monomial = Monomial

type t

val nvars : t -> int
(** Arity. *)

val zero : int -> t
(** Zero polynomial over the given number of variables. *)

val const : int -> float -> t
(** Constant polynomial. *)

val one : int -> t
(** The constant [1]. *)

val var : int -> int -> t
(** [var n i] is the polynomial [x_i] over [n] variables. *)

val of_terms : int -> (Monomial.t * float) list -> t
(** Polynomial from (monomial, coefficient) pairs; repeated monomials are
    summed. *)

val terms : t -> (Monomial.t * float) list
(** Terms in {!Monomial.compare} order, zero coefficients omitted. *)

val coeff : t -> Monomial.t -> float
(** Coefficient of a monomial ([0.] if absent). *)

val is_zero : t -> bool
(** Whether the polynomial has no terms. *)

val degree : t -> int
(** Total degree; [-1] for the zero polynomial by convention. *)

val equal : t -> t -> bool
(** Exact structural equality. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Coefficientwise equality up to absolute tolerance [tol] (default
    1e-9). *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t
val mul : t -> t -> t

val pow : t -> int -> t
(** Non-negative integer power. *)

val sum : int -> t list -> t
(** Sum of a list of polynomials of the given arity. *)

val eval : t -> float array -> float
(** Value at a point. *)

val partial : int -> t -> t
(** [partial i p] is [∂p/∂x_i]. *)

val gradient : t -> t array
(** All first partials. *)

val hessian : t -> t array array
(** Matrix of second partials. *)

val lie_derivative : t -> t array -> t
(** [lie_derivative p f] is [∇p · f], the derivative of [p] along the
    vector field [f] (one polynomial per state variable). *)

val subst : t -> t array -> t
(** [subst p q] substitutes [q.(i)] for variable [i]. The result's arity
    is the (common) arity of the [q.(i)]. *)

val shift : t -> float array -> t
(** [shift p c] is [p(x + c)] — the polynomial translated so that
    evaluating at [x] gives the old value at [x + c]. *)

val extend : int -> t -> t
(** [extend n p] reinterprets [p] over [n >= nvars p] variables (new
    variables do not occur). *)

val chop : ?tol:float -> t -> t
(** Drop coefficients of magnitude below [tol] (default 1e-10). *)

val max_coeff : t -> float
(** Largest coefficient magnitude ([0.] for the zero polynomial). *)

val quadratic_form : Linalg.Mat.t -> t
(** [quadratic_form q] is the polynomial [xᵀ Q x] over [n] variables for
    an [n*n] symmetric matrix [Q]. *)

val from_basis : Monomial.t list -> float array -> int -> t
(** [from_basis basis coeffs n] is [Σ coeffs.(k) * basis.(k)] over [n]
    variables. *)

val of_string : ?names:string array -> int -> string -> t
(** [of_string n s] parses a polynomial over [n] variables from the
    syntax produced by {!to_string}: terms of numbers and variables
    combined with [+ - * ^] and parentheses, e.g.
    ["1.5*x0^2 - 2*x1 + 3"] or ["(x0 + x1)^2"]. Variables are ["x0"],
    ["x1"], … by default, or the given [names]. Raises
    [Invalid_argument] on syntax errors or unknown variables. *)

val to_string : ?names:string array -> t -> string
(** Human-readable form such as ["1.5*x0^2 - 2*x1"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer with default variable names. *)
