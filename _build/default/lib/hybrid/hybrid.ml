type mode = {
  mode_id : int;
  mode_name : string;
  flow : Poly.t array;
  invariant : Poly.t list;
}

type transition = {
  src : int;
  dst : int;
  guard : Poly.t list;
  urgent_when : Poly.t option;
  reset : Poly.t array;
}

type t = {
  nvars : int;
  var_names : string array;
  modes : mode array;
  transitions : transition list;
}

let identity_reset n = Array.init n (fun i -> Poly.var n i)

let make ~nvars ?var_names ~modes ~transitions () =
  let var_names =
    match var_names with
    | Some a ->
        if Array.length a <> nvars then invalid_arg "Hybrid.make: var_names length";
        a
    | None -> Array.init nvars (fun i -> Printf.sprintf "x%d" i)
  in
  let modes = Array.of_list modes in
  Array.iteri
    (fun i m ->
      if m.mode_id <> i then invalid_arg "Hybrid.make: mode ids must be 0..n-1 in order";
      if Array.length m.flow <> nvars then invalid_arg "Hybrid.make: flow arity";
      Array.iter (fun p -> if Poly.nvars p <> nvars then invalid_arg "Hybrid.make: flow arity") m.flow;
      List.iter
        (fun g -> if Poly.nvars g <> nvars then invalid_arg "Hybrid.make: invariant arity")
        m.invariant)
    modes;
  List.iter
    (fun tr ->
      if tr.src < 0 || tr.src >= Array.length modes then invalid_arg "Hybrid.make: bad src";
      if tr.dst < 0 || tr.dst >= Array.length modes then invalid_arg "Hybrid.make: bad dst";
      if Array.length tr.reset <> nvars then invalid_arg "Hybrid.make: reset arity";
      List.iter
        (fun g -> if Poly.nvars g <> nvars then invalid_arg "Hybrid.make: guard arity")
        tr.guard)
    transitions;
  { nvars; var_names; modes; transitions }

let mode sys id =
  if id < 0 || id >= Array.length sys.modes then invalid_arg "Hybrid.mode: bad id";
  sys.modes.(id)

let in_flow_set ?(tol = 1e-9) sys id x =
  List.for_all (fun g -> Poly.eval g x >= -.tol) (mode sys id).invariant

let is_equilibrium ?(tol = 1e-9) sys id x =
  Array.for_all (fun f -> Float.abs (Poly.eval f x) <= tol) (mode sys id).flow

type step = { t : float; j : int; mode_at : int; state : float array }

type arc = step list

type sim_result = { arc : arc; final : step; jumps : int; blocked : bool }

let eval_field f x = Array.map (fun p -> Poly.eval p x) f

let rk4_step f h x =
  let add a b s = Array.init (Array.length a) (fun i -> a.(i) +. (s *. b.(i))) in
  let k1 = eval_field f x in
  let k2 = eval_field f (add x k1 (h /. 2.0)) in
  let k3 = eval_field f (add x k2 (h /. 2.0)) in
  let k4 = eval_field f (add x k3 h) in
  Array.init (Array.length x) (fun i ->
      x.(i) +. (h /. 6.0 *. (k1.(i) +. (2.0 *. k2.(i)) +. (2.0 *. k3.(i)) +. k4.(i))))

let crossing_fn tr =
  match tr.urgent_when with
  | Some p -> Some p
  | None -> ( match tr.guard with g :: _ -> Some g | [] -> None)

let guard_holds ?(tol = 1e-9) tr x = List.for_all (fun g -> Poly.eval g x >= -.tol) tr.guard

let apply_reset tr x = Array.map (fun p -> Poly.eval p x) tr.reset

(* Bisect the RK4 step [x -> x1] over [0, h] for the first zero upcrossing
   of [c]. Assumes c(x) < 0 <= c(x1). *)
let bisect_crossing f c h x =
  let lo = ref 0.0 and hi = ref h in
  for _ = 1 to 40 do
    let mid = 0.5 *. (!lo +. !hi) in
    let xm = rk4_step f mid x in
    if Poly.eval c xm >= 0.0 then hi := mid else lo := mid
  done;
  (!hi, rk4_step f !hi x)

let simulate ?(dt = 1e-3) ?(max_jumps = 10_000) sys ~mode0 ~x0 ~t_max =
  if Array.length x0 <> sys.nvars then invalid_arg "Hybrid.simulate: state arity";
  let acc = ref [] in
  let t = ref 0.0 and j = ref 0 and m = ref mode0 and x = ref (Array.copy x0) in
  let blocked = ref false in
  let record () = acc := { t = !t; j = !j; mode_at = !m; state = Array.copy !x } :: !acc in
  record ();
  (try
     while !t < t_max do
       if !j >= max_jumps then raise Exit;
       let md = sys.modes.(!m) in
       let h = Float.min dt (t_max -. !t) in
       let x1 = rk4_step md.flow h !x in
       (* Find the transition whose crossing function fires first. *)
       let fired = ref None in
       List.iter
         (fun tr ->
           if tr.src = !m then
             match crossing_fn tr with
             | None -> ()
             | Some c ->
                 let c0 = Poly.eval c !x and c1 = Poly.eval c x1 in
                 if c0 < 0.0 && c1 >= 0.0 then begin
                   let tau, xc = bisect_crossing md.flow c h !x in
                   match !fired with
                   | Some (tau', _, _) when tau' <= tau -> ()
                   | _ -> if guard_holds tr xc then fired := Some (tau, xc, tr)
                 end)
         sys.transitions;
       (match !fired with
       | Some (tau, xc, tr) ->
           t := !t +. tau;
           x := xc;
           record ();
           x := apply_reset tr xc;
           m := tr.dst;
           incr j;
           record ()
       | None ->
           if not (in_flow_set ~tol:1e-6 sys !m x1) then begin
             (* Left the flow set without a crossing: take any enabled jump,
                otherwise the solution is blocked. *)
             match
               List.find_opt (fun tr -> tr.src = !m && guard_holds ~tol:1e-6 tr x1) sys.transitions
             with
             | Some tr ->
                 t := !t +. h;
                 x := x1;
                 record ();
                 x := apply_reset tr x1;
                 m := tr.dst;
                 incr j;
                 record ()
             | None ->
                 t := !t +. h;
                 x := x1;
                 record ();
                 blocked := true;
                 raise Exit
           end
           else begin
             t := !t +. h;
             x := x1;
             record ()
           end)
     done
   with Exit -> ());
  let arc = List.rev !acc in
  let final = { t = !t; j = !j; mode_at = !m; state = Array.copy !x } in
  { arc; final; jumps = !j; blocked = !blocked }

let pp_step ppf s =
  Format.fprintf ppf "(t=%.6g, j=%d, mode=%d, x=%a)" s.t s.j s.mode_at Linalg.Vec.pp s.state
