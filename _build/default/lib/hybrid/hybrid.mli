(** Hybrid dynamical systems with polynomial flow and jump maps.

    The formalism follows Goebel–Sanfelice–Teel (the paper's reference
    [4]) restricted to what the CP PLL verification needs (Assumption 1
    of the paper: polynomial maps, semialgebraic flow/jump sets):

    - a finite set of {e modes}, each with a polynomial vector field and
      a semialgebraic {e flow set} (invariant) given by inequalities
      [g(x) >= 0];
    - {e transitions} between modes with semialgebraic guards and
      polynomial reset maps;
    - solutions are {e hybrid arcs} on a {e hybrid time domain}: pairs
      [(t, j)] of continuous time and jump count (Definitions 1–2).

    Simulation integrates each mode's flow with classical RK4 and detects
    guard crossings by bisection on the guard functions, producing a
    sampled hybrid arc. It is used to validate certificates found by the
    SOS pipeline (a certified Lyapunov function must decrease along every
    simulated arc) and by the reach-set baseline. *)

type mode = {
  mode_id : int;
  mode_name : string;
  flow : Poly.t array;  (** [ẋ = flow(x)], one polynomial per state *)
  invariant : Poly.t list;  (** flow set [{x | g(x) >= 0 for all g}] *)
}

type transition = {
  src : int;
  dst : int;
  guard : Poly.t list;  (** jump enabled where all [g(x) >= 0] *)
  urgent_when : Poly.t option;
      (** jump is {e forced} as soon as this function crosses from
          negative to [>= 0] along the flow; [None] means the guard
          itself (its first member) is treated as the crossing
          function *)
  reset : Poly.t array;  (** [x⁺ = reset(x)] *)
}

type t = {
  nvars : int;
  var_names : string array;
  modes : mode array;
  transitions : transition list;
}

val make :
  nvars:int ->
  ?var_names:string array ->
  modes:mode list ->
  transitions:transition list ->
  unit ->
  t
(** Build and validate a hybrid system (arities, mode ids, reset
    dimensions). Raises [Invalid_argument] on malformed input. *)

val identity_reset : int -> Poly.t array
(** The identity jump map over [n] variables (Remark 1 of the paper: the
    difference-coordinate CP PLL has identity resets). *)

val mode : t -> int -> mode
(** Mode by id. *)

val in_flow_set : ?tol:float -> t -> int -> float array -> bool
(** Whether a point satisfies a mode's invariant up to [-tol] slack
    (default 1e-9). *)

val is_equilibrium : ?tol:float -> t -> int -> float array -> bool
(** Definition 3: the flow of the given mode vanishes at the point. *)

(** {1 Simulation} *)

type step = {
  t : float;  (** continuous time *)
  j : int;  (** jump count — [(t, j)] ranges over the hybrid time domain *)
  mode_at : int;
  state : float array;
}

type arc = step list
(** A sampled hybrid arc, in chronological order. *)

type sim_result = {
  arc : arc;
  final : step;
  jumps : int;  (** total number of discrete transitions taken *)
  blocked : bool;
      (** the state left every flow set with no enabled transition *)
}

val simulate :
  ?dt:float ->
  ?max_jumps:int ->
  t ->
  mode0:int ->
  x0:float array ->
  t_max:float ->
  sim_result
(** Integrate from [(mode0, x0)] for [t_max] time units with RK4 step
    [dt] (default 1e-3). Transitions fire when their crossing function
    becomes non-negative (bisected to the crossing point within the
    step) and the guard holds. [max_jumps] (default 10_000) bounds the
    number of discrete transitions. *)

val rk4_step : Poly.t array -> float -> float array -> float array
(** One classical Runge–Kutta step of size [h] for [ẋ = f(x)] — exposed
    for tests and for the reach-set baseline. *)

val pp_step : Format.formatter -> step -> unit
