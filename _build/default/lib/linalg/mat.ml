type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let get a i j = a.data.((i * a.cols) + j)

let set a i j v = a.data.((i * a.cols) + j) <- v

let diag_of a =
  if a.rows <> a.cols then invalid_arg "Mat.diag_of: not square";
  Array.init a.rows (fun i -> get a i i)

let of_arrays rows =
  let m = Array.length rows in
  if m = 0 then create 0 0
  else begin
    let n = Array.length rows.(0) in
    Array.iter
      (fun r -> if Array.length r <> n then invalid_arg "Mat.of_arrays: ragged rows")
      rows;
    init m n (fun i j -> rows.(i).(j))
  end

let to_arrays a = Array.init a.rows (fun i -> Array.init a.cols (fun j -> get a i j))

let dims a = (a.rows, a.cols)

let copy a = { a with data = Array.copy a.data }

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same "sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s a = { a with data = Array.map (fun v -> s *. v) a.data }

let neg a = scale (-1.0) a

let transpose a = init a.cols a.rows (fun i j -> get a j i)

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: dimension mismatch (%dx%d * %dx%d)" a.rows a.cols
         b.rows b.cols);
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. get b k j)
        done
    done
  done;
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. (get a i j *. x.(j))
      done;
      !s)

let tmul_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.tmul_vec: dimension mismatch";
  Array.init a.cols (fun j ->
      let s = ref 0.0 in
      for i = 0 to a.rows - 1 do
        s := !s +. (get a i j *. x.(i))
      done;
      !s)

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let symmetrize a =
  if a.rows <> a.cols then invalid_arg "Mat.symmetrize: not square";
  init a.rows a.cols (fun i j -> 0.5 *. (get a i j +. get a j i))

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if Float.abs (get a i j -. get a j i) > tol then ok := false
    done
  done;
  !ok

let trace a =
  if a.rows <> a.cols then invalid_arg "Mat.trace: not square";
  let s = ref 0.0 in
  for i = 0 to a.rows - 1 do
    s := !s +. get a i i
  done;
  !s

let frob_dot a b =
  check_same "frob_dot" a b;
  let s = ref 0.0 in
  for k = 0 to Array.length a.data - 1 do
    s := !s +. (a.data.(k) *. b.data.(k))
  done;
  !s

let norm_fro a = sqrt (frob_dot a a)

let norm_inf a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let cholesky ?(reg = 0.0) a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: not square";
  let n = a.rows in
  let l = create n n in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       for j = 0 to i do
         let s = ref (get a i j) in
         if i = j then s := !s +. reg;
         for k = 0 to j - 1 do
           s := !s -. (get l i k *. get l j k)
         done;
         if i = j then begin
           if !s <= 0.0 || not (Float.is_finite !s) then begin
             ok := false;
             raise Exit
           end;
           set l i i (sqrt !s)
         end
         else set l i j (!s /. get l j j)
       done
     done
   with Exit -> ());
  if !ok then Some l else None

let forward_subst l b =
  let n = l.rows in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let s = ref b.(i) in
    for k = 0 to i - 1 do
      s := !s -. (get l i k *. y.(k))
    done;
    y.(i) <- !s /. get l i i
  done;
  y

let backward_subst_t l y =
  (* Solves Lᵀ x = y for lower-triangular L. *)
  let n = l.rows in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref y.(i) in
    for k = i + 1 to n - 1 do
      s := !s -. (get l k i *. x.(k))
    done;
    x.(i) <- !s /. get l i i
  done;
  x

let chol_solve l b = backward_subst_t l (forward_subst l b)

let chol_solve_mat l b =
  let x = create b.rows b.cols in
  for j = 0 to b.cols - 1 do
    let col = Array.init b.rows (fun i -> get b i j) in
    let sol = chol_solve l col in
    for i = 0 to b.rows - 1 do
      set x i j sol.(i)
    done
  done;
  x

(* Gaussian elimination with partial pivoting on an augmented system. *)
let gauss_solve a rhs_cols rhs =
  if a.rows <> a.cols then invalid_arg "Mat.solve: not square";
  let n = a.rows in
  let m = copy a in
  let b = copy rhs in
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for i = col + 1 to n - 1 do
      if Float.abs (get m i col) > Float.abs (get m !piv col) then piv := i
    done;
    if Float.abs (get m !piv col) < 1e-300 then failwith "Mat.solve: singular matrix";
    if !piv <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !piv j);
        set m !piv j tmp
      done;
      for j = 0 to rhs_cols - 1 do
        let tmp = get b col j in
        set b col j (get b !piv j);
        set b !piv j tmp
      done
    end;
    let d = get m col col in
    for i = col + 1 to n - 1 do
      let f = get m i col /. d in
      if f <> 0.0 then begin
        for j = col to n - 1 do
          set m i j (get m i j -. (f *. get m col j))
        done;
        for j = 0 to rhs_cols - 1 do
          set b i j (get b i j -. (f *. get b col j))
        done
      end
    done
  done;
  let x = create n rhs_cols in
  for j = 0 to rhs_cols - 1 do
    for i = n - 1 downto 0 do
      let s = ref (get b i j) in
      for k = i + 1 to n - 1 do
        s := !s -. (get m i k *. get x k j)
      done;
      set x i j (!s /. get m i i)
    done
  done;
  x

let solve a b =
  let bm = init (Array.length b) 1 (fun i _ -> b.(i)) in
  let x = gauss_solve a 1 bm in
  Array.init a.rows (fun i -> get x i 0)

let solve_mat a b =
  if a.rows <> b.rows then invalid_arg "Mat.solve_mat: dimension mismatch";
  gauss_solve a b.cols b

let inverse a = solve_mat a (identity a.rows)

let lstsq a b =
  if a.rows <> Array.length b then invalid_arg "Mat.lstsq: dimension mismatch";
  let at = transpose a in
  let ata = mul at a in
  let scale_reg = 1e-12 *. (1.0 +. norm_inf ata) in
  for i = 0 to ata.rows - 1 do
    set ata i i (get ata i i +. scale_reg)
  done;
  solve ata (mul_vec at b)

let qr a =
  let m = a.rows and n = a.cols in
  if m < n then invalid_arg "Mat.qr: needs rows >= cols";
  let r = copy a in
  (* Accumulate Q implicitly: start from the identity embedding and apply
     the same reflections. *)
  let q = init m m (fun i j -> if i = j then 1.0 else 0.0) in
  for k = 0 to n - 1 do
    (* Householder vector for column k below the diagonal. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      norm := !norm +. (get r i k *. get r i k)
    done;
    let norm = sqrt !norm in
    if norm > 1e-300 then begin
      let alpha = if get r k k >= 0.0 then -.norm else norm in
      let v = Array.make m 0.0 in
      v.(k) <- get r k k -. alpha;
      for i = k + 1 to m - 1 do
        v.(i) <- get r i k
      done;
      let vtv = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v in
      if vtv > 1e-300 then begin
        let apply (mat : t) =
          (* mat <- (I - 2 v v'/v'v) mat *)
          for j = 0 to mat.cols - 1 do
            let dot = ref 0.0 in
            for i = k to m - 1 do
              dot := !dot +. (v.(i) *. get mat i j)
            done;
            let f = 2.0 *. !dot /. vtv in
            for i = k to m - 1 do
              set mat i j (get mat i j -. (f *. v.(i)))
            done
          done
        in
        apply r;
        apply q
      end
    end
  done;
  (* q currently holds H_{n-1}…H_0; Q = (H_{n-1}…H_0)' — take the
     transpose and keep the first n columns; zero R's subdiagonal
     noise. *)
  let qt = transpose q in
  let q_thin = init m n (fun i j -> get qt i j) in
  let r_sq = init n n (fun i j -> if j >= i then get r i j else 0.0) in
  (q_thin, r_sq)

let expm a =
  if a.rows <> a.cols then invalid_arg "Mat.expm: not square";
  let n = a.rows in
  (* Scaling: bring |A/2^s| below 1/2. *)
  let nrm = norm_inf a in
  let s = if nrm <= 0.5 then 0 else int_of_float (ceil (log (nrm /. 0.5) /. log 2.0)) in
  let a1 = scale (1.0 /. Float.pow 2.0 (float_of_int s)) a in
  (* Padé(6,6): N = sum c_k A^k, D = sum (-1)^k c_k A^k. *)
  let c = Array.make 7 1.0 in
  for k = 1 to 6 do
    c.(k) <- c.(k - 1) *. float_of_int (6 - k + 1) /. float_of_int (k * ((2 * 6) - k + 1))
  done;
  let num = ref (scale c.(0) (identity n)) and den = ref (scale c.(0) (identity n)) in
  let pow = ref (identity n) in
  for k = 1 to 6 do
    pow := mul !pow a1;
    num := add !num (scale c.(k) !pow);
    den := add !den (scale (if k mod 2 = 0 then c.(k) else -.c.(k)) !pow)
  done;
  let e = ref (solve_mat !den !num) in
  for _ = 1 to s do
    e := mul !e !e
  done;
  !e

let sym_eig ?(tol = 1e-12) ?(max_sweeps = 64) a =
  if a.rows <> a.cols then invalid_arg "Mat.sym_eig: not square";
  let n = a.rows in
  let m = copy (symmetrize a) in
  let v = identity n in
  let off_norm () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (get m i j *. get m i j)
      done
    done;
    sqrt (2.0 *. !s)
  in
  let scale_m = Float.max 1.0 (norm_inf m) in
  let sweeps = ref 0 in
  while off_norm () > tol *. scale_m && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = get m p q in
        if Float.abs apq > 1e-300 then begin
          let app = get m p p and aqq = get m q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Update rows/cols p and q of m. *)
          for k = 0 to n - 1 do
            let mkp = get m k p and mkq = get m k q in
            set m k p ((c *. mkp) -. (s *. mkq));
            set m k q ((s *. mkp) +. (c *. mkq))
          done;
          for k = 0 to n - 1 do
            let mpk = get m p k and mqk = get m q k in
            set m p k ((c *. mpk) -. (s *. mqk));
            set m q k ((s *. mpk) +. (c *. mqk))
          done;
          for k = 0 to n - 1 do
            let vkp = get v k p and vkq = get v k q in
            set v k p ((c *. vkp) -. (s *. vkq));
            set v k q ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare (get m i i) (get m j j)) order;
  let w = Array.init n (fun k -> get m order.(k) order.(k)) in
  let vs = init n n (fun i k -> get v i order.(k)) in
  (w, vs)

let min_eig a =
  let w, _ = sym_eig a in
  if Array.length w = 0 then 0.0 else w.(0)

let is_psd ?(tol = 1e-8) a = min_eig a >= -.tol

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%g" (get a i j)
    done;
    Format.fprintf ppf "]";
    if i < a.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
