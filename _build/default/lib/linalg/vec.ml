type t = float array

let create n = Array.make n 0.0

let init = Array.init

let dim = Array.length

let copy = Array.copy

let of_list = Array.of_list

let to_list = Array.to_list

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let add x y =
  check_dims "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dims "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun v -> a *. v) x

let neg x = Array.map (fun v -> -.v) x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- y.(i) +. (a *. x.(i))
  done

let dot x y =
  check_dims "dot" x y;
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let map = Array.map

let map2 f x y =
  check_dims "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let concat = Array.concat

let sub_vec x off len = Array.sub x off len

let max_abs_index x =
  let best = ref 0 and best_v = ref 0.0 in
  Array.iteri
    (fun i v ->
      if Float.abs v > !best_v then begin
        best := i;
        best_v := Float.abs v
      end)
    x;
  !best

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  && Array.for_all2 (fun a b -> Float.abs (a -. b) <= tol) x y

let pp ppf x =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf v -> Format.fprintf ppf "%g" v))
    (Array.to_list x)
