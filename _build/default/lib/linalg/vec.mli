(** Dense vectors of floats.

    A thin layer over [float array] providing the vector-space operations
    used throughout the SDP solver and polynomial evaluation code. All
    operations allocate fresh vectors unless suffixed with
    [_inplace]. Dimensions are checked and mismatches raise
    [Invalid_argument]. *)

type t = float array

val create : int -> t
(** [create n] is the zero vector of dimension [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] is the vector [| f 0; ...; f (n-1) |]. *)

val dim : t -> int
(** Number of entries. *)

val copy : t -> t
(** Fresh copy. *)

val of_list : float list -> t
(** Vector from a list of entries. *)

val to_list : t -> float list
(** Entries as a list, in order. *)

val add : t -> t -> t
(** Entrywise sum. *)

val sub : t -> t -> t
(** Entrywise difference. *)

val scale : float -> t -> t
(** [scale a x] is [a * x]. *)

val neg : t -> t
(** Entrywise negation. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val dot : t -> t -> float
(** Euclidean inner product. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max-abs norm. *)

val map : (float -> float) -> t -> t
(** Entrywise map. *)

val map2 : (float -> float -> float) -> t -> t -> t
(** Entrywise binary map. *)

val concat : t list -> t
(** Concatenation of vectors. *)

val sub_vec : t -> int -> int -> t
(** [sub_vec x off len] is the slice [x.(off) .. x.(off+len-1)]. *)

val max_abs_index : t -> int
(** Index of the entry with the largest absolute value; 0 if empty. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison up to absolute tolerance [tol] (default 1e-9). *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer, e.g. [[1.; 2.; 3.]]. *)
