module Ppoly = Sos.Ppoly

let src = Logs.Src.create "certificates" ~doc:"Lyapunov / escape certificate search"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  degree : int;
  eps_pos : float;
  eps_decr : float;
  robust_vertices : bool;
  sdp_params : Sdp.params;
}

let default_config order =
  {
    degree = (match order with Pll.Third -> 6 | Pll.Fourth -> 4);
    eps_pos = 1e-2;
    eps_decr = 1e-3;
    robust_vertices = false;
    sdp_params = Sdp.default_params;
  }

type stats = {
  time_s : float;
  sdp_iterations : int;
  n_constraints : int;
  n_gram_blocks : int;
  min_gram_eig : float;
  max_residual : float;
}

type t = { vs : Poly.t array; cfg : config; solve_stats : stats }

let norm2_poly n =
  Poly.sum n (List.init n (fun i -> Poly.mul (Poly.var n i) (Poly.var n i)))

let stats_of prob (sol : Sos.solution) time_s =
  {
    time_s;
    sdp_iterations = sol.Sos.sdp.Sdp.iterations;
    n_constraints = Sos.n_equalities prob;
    n_gram_blocks = Sos.n_gram_blocks prob;
    min_gram_eig = sol.Sos.min_gram_eig;
    max_residual = sol.Sos.max_eq_residual;
  }

let find_multi_lyapunov ?config (s : Pll.scaled) =
  let cfg = match config with Some c -> c | None -> default_config s.Pll.order in
  let n = s.Pll.nvars in
  let t_start = Sys.time () in
  let prob = Sos.create ~nvars:n in
  let vs = Array.init Pll.n_modes (fun _ -> Sos.fresh_poly prob ~deg:cfg.degree ~min_deg:2) in
  let nrm = norm2_poly n in
  let points =
    if cfg.robust_vertices then Pll.vertices s else [ Pll.nominal s ]
  in
  for m = 0 to Pll.n_modes - 1 do
    let domain = Pll.mode_domain s m in
    (* (a) positivity of V_m on its flow set *)
    Sos.add_nonneg_on prob ~domain
      (Ppoly.sub vs.(m) (Ppoly.of_poly (Poly.scale cfg.eps_pos nrm)));
    (* (b) decrease of V_m along the flow, for each coefficient point *)
    List.iter
      (fun pt ->
        let f = Pll.flow s pt m in
        Sos.add_nonneg_on prob ~domain
          (Ppoly.sub
             (Ppoly.neg (Ppoly.lie_derivative vs.(m) f))
             (Ppoly.of_poly (Poly.scale cfg.eps_decr nrm))))
      points
  done;
  (* (c) non-increase across each (identity-reset) switch. The jump
     surfaces are the hyperplanes θ = ±θ_on, so instead of a free
     equality multiplier we substitute θ and state the condition on the
     lower-dimensional slice — exact, and far better conditioned. *)
  let theta = Pll.theta_index s in
  List.iter
    (fun (src_m, dst_m, h, dir) ->
      (* Recover the surface value θ* from h = θ − θ* (h is monic in θ). *)
      let theta_star = -.Poly.eval h (Array.make n 0.0) in
      let restrict q = Poly.subst q (Array.init n (fun i -> if i = theta then Poly.const n theta_star else Poly.var n i)) in
      let box = List.map restrict (Pll.containment_constraints s src_m) in
      let dir = List.map restrict dir in
      Sos.add_nonneg_on prob ~domain:(dir @ box)
        (Ppoly.fix_var theta theta_star (Ppoly.sub vs.(src_m) vs.(dst_m))))
    (Pll.switching_surfaces s);
  Log.info (fun k ->
      k "multi-Lyapunov search: deg %d, %d equalities, %d gram blocks" cfg.degree
        (Sos.n_equalities prob) (Sos.n_gram_blocks prob));
  let sol = Sos.solve ~params:cfg.sdp_params prob in
  let time_s = Sys.time () -. t_start in
  if not sol.Sos.certified then
    Error
      (Printf.sprintf
         "multi-Lyapunov SOS program not certified (feasible=%b, min gram eig %.2e, \
          max residual %.2e) — try a higher degree"
         sol.Sos.feasible sol.Sos.min_gram_eig sol.Sos.max_eq_residual)
  else begin
    let values = Array.map (fun v -> Poly.chop ~tol:1e-9 (Sos.value sol v)) vs in
    Ok { vs = values; cfg; solve_stats = stats_of prob sol time_s }
  end

(* {V_q <= beta} ∩ slab_q must keep a strict margin inside every
   containment constraint of mode q. *)
let check_level ?(mult_deg = 2) (s : Pll.scaled) cert beta =
  let mult_deg = Some mult_deg in
  let margin = 1e-3 in
  let ok = ref true in
  (* Cheap numeric prefilter: a sampled counterexample refutes the level
     without touching the SDP. *)
  let n = s.Pll.nvars in
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 4000 do
    if !ok then begin
      let x =
        Array.init n (fun i ->
            let b =
              if i = Pll.theta_index s then s.Pll.theta_max else 1.3 *. s.Pll.w_max
            in
            (Random.State.float rng 2.0 -. 1.0) *. b)
      in
      for m = 0 to Pll.n_modes - 1 do
        if
          Poly.eval cert.vs.(m) x <= beta
          && List.for_all (fun g -> Poly.eval g x >= 0.0)
               (match Pll.mode_domain s m with
               | theta_slab :: _ -> [ theta_slab ]
               | [] -> [])
          && List.exists (fun g -> Poly.eval g x < margin) (Pll.containment_constraints s m)
        then ok := false
      done
    end
  done;
  for m = 0 to Pll.n_modes - 1 do
    if !ok then begin
      let v = cert.vs.(m) in
      let n = Poly.nvars v in
      let sublevel = Poly.sub (Poly.const n beta) v (* >= 0 inside *) in
      let slab = Pll.mode_domain s m in
      List.iter
        (fun g ->
          if !ok then begin
            let prob = Sos.create ~nvars:n in
            let target =
              Ppoly.of_poly (Poly.sub g (Poly.const n margin))
            in
            Sos.add_nonneg_on ?mult_deg prob ~domain:(sublevel :: slab) target;
            let sol = Sos.solve prob in
            if not sol.Sos.certified then ok := false
          end)
        (Pll.containment_constraints s m)
    end
  done;
  !ok

let maximize_level ?(bisect_steps = 20) ?(beta_hi = 2000.0) (s : Pll.scaled) cert =
  let t_start = Sys.time () in
  let lo = ref 0.0 and hi = ref beta_hi in
  (* Grow hi if it is certifiable outright? beta_hi is assumed infeasible. *)
  if check_level s cert !hi then lo := !hi
  else
    for _ = 1 to bisect_steps do
      let mid = 0.5 *. (!lo +. !hi) in
      if check_level s cert mid then lo := mid else hi := mid
    done;
  let time_s = Sys.time () -. t_start in
  ( !lo,
    {
      time_s;
      sdp_iterations = 0;
      n_constraints = 0;
      n_gram_blocks = 0;
      min_gram_eig = 0.0;
      max_residual = 0.0;
    } )

type attractive_invariant = { cert : t; beta : float; level_stats : stats }

let attractive_invariant ?config ?bisect_steps (s : Pll.scaled) =
  match find_multi_lyapunov ?config s with
  | Error e -> Error e
  | Ok cert ->
      let beta, level_stats = maximize_level ?bisect_steps s cert in
      if beta <= 0.0 then Error "level maximization failed: no positive certified level"
      else Ok { cert; beta; level_stats }

let member (s : Pll.scaled) ai x =
  let in_slab m =
    List.for_all (fun g -> Poly.eval g x >= 0.0) (Pll.mode_domain s m)
  in
  let ok = ref false in
  for m = 0 to Pll.n_modes - 1 do
    if in_slab m && Poly.eval ai.cert.vs.(m) x <= ai.beta then ok := true
  done;
  !ok

let upper_bound_on_set ?(extra_domain = []) (s : Pll.scaled) cert ~set =
  let n = s.Pll.nvars in
  let bound = ref 0.0 in
  let failed = ref None in
  for m = 0 to Pll.n_modes - 1 do
    if !failed = None then begin
      let domain = (Poly.neg set :: extra_domain) @ Pll.mode_domain s m in
      (* When the set misses this mode's domain entirely, the bound over
         it is vacuous — certified by an SOS emptiness certificate
         (−1 >= 0 on the region is provable iff the region is empty). *)
      let budget = { Sdp.default_params with Sdp.max_iter = 60 } in
      let empty =
        let prob = Sos.create ~nvars:n in
        Sos.add_nonneg_on ~mult_deg:2 prob ~domain
          (Ppoly.of_poly (Poly.const n (-1.0)));
        (Sos.solve ~params:budget prob).Sos.certified
      in
      if not empty then begin
        let prob = Sos.create ~nvars:n in
        let u = Sos.fresh_free prob in
        (* u - V_m >= 0 on {set <= 0} ∩ C_m (∩ extra_domain) *)
        Sos.add_nonneg_on ~mult_deg:2 prob ~domain
          (Ppoly.sub (Ppoly.scale_expr u (Poly.one n)) (Ppoly.of_poly cert.vs.(m)));
        Sos.maximize prob (Sos.Lexpr.neg u);
        let sol = Sos.solve ~params:budget prob in
        if sol.Sos.certified then begin
          let v = Sos.Lexpr.eval sol.Sos.assign u in
          if v > !bound then bound := v
        end
        else failed := Some m
      end
    end
  done;
  match !failed with
  | Some m -> Error (Printf.sprintf "upper_bound_on_set: mode %d bound not certified" m)
  | None -> Ok (!bound *. 1.001)

let time_to_lock_bound ?(samples = 200) (s : Pll.scaled) ai ~from_level =
  let beta = ai.beta in
  if from_level <= beta then 0.0
  else begin
    let eps = ai.cert.cfg.eps_decr in
    let n = s.Pll.nvars in
    (* Smallest ‖x‖ on the boundary {V_q = β} over all modes: sample ray
       directions, bisect the radius where the active certificate
       crosses β. *)
    let rng = Random.State.make [| 17 |] in
    let r_min = ref infinity in
    for _ = 1 to samples do
      let dir = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let nrm = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 dir) in
      if nrm > 1e-9 then begin
        let dir = Array.map (fun v -> v /. nrm) dir in
        let active_v r =
          let x = Array.map (fun d -> r *. d) dir in
          let th = x.(Pll.theta_index s) in
          let m =
            if Float.abs th <= s.Pll.theta_on then Pll.off
            else if th > 0.0 then Pll.up
            else Pll.down
          in
          Poly.eval ai.cert.vs.(m) x
        in
        let r_hi = 2.0 *. Float.max s.Pll.w_max s.Pll.theta_max in
        if active_v r_hi >= beta then begin
          let lo = ref 0.0 and hi = ref r_hi in
          for _ = 1 to 50 do
            let mid = 0.5 *. (!lo +. !hi) in
            if active_v mid < beta then lo := mid else hi := mid
          done;
          if !lo < !r_min then r_min := !lo
        end
      end
    done;
    if !r_min = infinity || !r_min <= 0.0 then infinity
    else (from_level -. beta) /. (eps *. !r_min *. !r_min)
  end

let check_escape ?(mult_deg = 2) ?(eps = 1e-2) ~nvars ~flow ~domain ~certificate () =
  let prob = Sos.create ~nvars in
  Sos.add_nonneg_on ~mult_deg prob ~domain
    (Ppoly.of_poly
       (Poly.sub
          (Poly.neg (Poly.lie_derivative certificate flow))
          (Poly.const nvars eps)));
  let params = { Sdp.default_params with Sdp.max_iter = 60 } in
  (Sos.solve ~params prob).Sos.certified

let find_escape ?(deg = 4) ?(eps = 1e-2) ?sdp_params ~nvars ~flow ~domain () =
  let t_start = Sys.time () in
  let prob = Sos.create ~nvars in
  let e = Sos.fresh_poly prob ~deg ~min_deg:1 in
  (* -dE/dt - eps >= 0 on the domain *)
  Sos.add_nonneg_on prob ~domain
    (Ppoly.sub
       (Ppoly.neg (Ppoly.lie_derivative e flow))
       (Ppoly.of_poly (Poly.const nvars eps)));
  let sol = Sos.solve ?params:sdp_params prob in
  let time_s = Sys.time () -. t_start in
  if sol.Sos.certified then Ok (Poly.chop ~tol:1e-9 (Sos.value sol e), stats_of prob sol time_s)
  else Error "no escape certificate at this degree"

let validate_by_simulation ?(trials = 50) ?(t_max = 120.0) ?(seed = 42) (s : Pll.scaled) ai =
  let rng = Random.State.make [| seed |] in
  let n = s.Pll.nvars in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let sound = ref true in
  let found = ref 0 in
  let attempts = ref 0 in
  while !found < trials && !attempts < trials * 200 do
    incr attempts;
    let x0 =
      Array.init n (fun i ->
          let bound = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
          (Random.State.float rng 2.0 -. 1.0) *. bound)
    in
    (* Pick the mode whose slab contains x0. *)
    let th = x0.(Pll.theta_index s) in
    let m =
      if Float.abs th <= s.Pll.theta_on then Pll.off
      else if th > 0.0 then Pll.up
      else Pll.down
    in
    if member s ai x0 then begin
      incr found;
      let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:m ~x0 ~t_max in
      if r.Hybrid.blocked then sound := false;
      if not (Pll.in_lock ~tol:0.05 s r.Hybrid.final.Hybrid.state) then sound := false;
      (* The active certificate must be non-increasing along the arc
         (up to integration tolerance). *)
      let prev = ref infinity in
      List.iter
        (fun (st : Hybrid.step) ->
          let v = Poly.eval ai.cert.vs.(st.Hybrid.mode_at) st.Hybrid.state in
          if v > !prev +. 1e-6 then sound := false;
          prev := v)
        r.Hybrid.arc
    end
  done;
  !sound && !found > 0

let invariant_boundary (s : Pll.scaled) ai ~plane:(i, j) ~n =
  let nvars = s.Pll.nvars in
  let r_max = 2.0 *. Float.max s.Pll.w_max s.Pll.theta_max in
  let pts = ref [] in
  for k = 0 to n - 1 do
    let angle = 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    let dir_i = cos angle and dir_j = sin angle in
    let at r =
      let x = Array.make nvars 0.0 in
      x.(i) <- r *. dir_i;
      x.(j) <- r *. dir_j;
      x
    in
    if member s ai (at 0.0) && not (member s ai (at r_max)) then begin
      let lo = ref 0.0 and hi = ref r_max in
      for _ = 1 to 50 do
        let mid = 0.5 *. (!lo +. !hi) in
        if member s ai (at mid) then lo := mid else hi := mid
      done;
      pts := (!lo *. dir_i, !lo *. dir_j) :: !pts
    end
  done;
  List.rev !pts

let level_curve v ~beta ~plane:(i, j) ~nvars ~n =
  let r_max = 1e3 in
  let pts = ref [] in
  for k = 0 to n - 1 do
    let angle = 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    let dir_i = cos angle and dir_j = sin angle in
    let value r =
      let x = Array.make nvars 0.0 in
      x.(i) <- r *. dir_i;
      x.(j) <- r *. dir_j;
      Poly.eval v x
    in
    (* V(0) = 0 <= beta; find r with V(r·dir) = beta by bisection if the
       ray reaches beta. *)
    if value r_max >= beta then begin
      let lo = ref 0.0 and hi = ref r_max in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if value mid < beta then lo := mid else hi := mid
      done;
      pts := (!hi *. dir_i, !hi *. dir_j) :: !pts
    end
  done;
  List.rev !pts
