(** Closed real intervals for uncertain circuit parameters.

    The CP PLL parameters in the paper's Table 1 are given as intervals
    (e.g. [C1 ∈ [1.98, 2.2] pF]); certificates must hold for every value
    in the box. This module provides the interval arithmetic used to push
    parameter boxes through the model-scaling computations, plus simple
    box utilities (corners, sampling) used by the robust SOS encodings
    and by the simulation-based validation tests.

    Arithmetic is outward-correct for the usual operations assuming exact
    float arithmetic (no directed rounding — adequate here because
    interval widths are ~1e-2 relative, far above 1 ulp). *)

type t = { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]; raises [Invalid_argument] if [lo > hi] or either bound
    is NaN. *)

val point : float -> t
(** Degenerate interval [[v, v]]. *)

val lo : t -> float
val hi : t -> float

val mid : t -> float
(** Midpoint. *)

val width : t -> float
(** [hi - lo]. *)

val mem : float -> t -> bool
(** Membership. *)

val subset : t -> t -> bool
(** [subset a b] iff [a ⊆ b]. *)

val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t

val inv : t -> t
(** Reciprocal; raises [Invalid_argument] if the interval contains 0. *)

val div : t -> t -> t
(** Quotient; raises [Invalid_argument] if the divisor contains 0. *)

val scale : float -> t -> t
(** Scalar multiple. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val intersect : t -> t -> t option
(** Intersection, when non-empty. *)

val contains_zero : t -> bool

val sample : t -> int -> float list
(** [sample iv k] is [k] evenly spaced points of the interval, including
    both endpoints when [k >= 2]. *)

val pp : Format.formatter -> t -> unit

module Box : sig
  (** Axis-aligned boxes: one interval per dimension. *)

  type iv = t

  type t = iv array

  val dim : t -> int

  val mid : t -> float array
  (** Vector of midpoints. *)

  val mem : float array -> t -> bool
  (** Componentwise membership. *)

  val corners : t -> float array list
  (** All [2^dim] corner points. *)

  val sample_grid : t -> int -> float array list
  (** [sample_grid b k] is the grid with [k] points per dimension. *)

  val pp : Format.formatter -> t -> unit
end
