type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi then invalid_arg "Interval.make: NaN bound";
  if lo > hi then invalid_arg "Interval.make: lo > hi";
  { lo; hi }

let point v = make v v

let lo iv = iv.lo

let hi iv = iv.hi

let mid iv = 0.5 *. (iv.lo +. iv.hi)

let width iv = iv.hi -. iv.lo

let mem v iv = iv.lo <= v && v <= iv.hi

let subset a b = b.lo <= a.lo && a.hi <= b.hi

let equal a b = a.lo = b.lo && a.hi = b.hi

let add a b = make (a.lo +. b.lo) (a.hi +. b.hi)

let neg a = make (-.a.hi) (-.a.lo)

let sub a b = add a (neg b)

let mul a b =
  let p1 = a.lo *. b.lo and p2 = a.lo *. b.hi in
  let p3 = a.hi *. b.lo and p4 = a.hi *. b.hi in
  make
    (Float.min (Float.min p1 p2) (Float.min p3 p4))
    (Float.max (Float.max p1 p2) (Float.max p3 p4))

let contains_zero iv = mem 0.0 iv

let inv a =
  if contains_zero a then invalid_arg "Interval.inv: interval contains zero";
  make (1.0 /. a.hi) (1.0 /. a.lo)

let div a b = mul a (inv b)

let scale s a = if s >= 0.0 then make (s *. a.lo) (s *. a.hi) else make (s *. a.hi) (s *. a.lo)

let hull a b = make (Float.min a.lo b.lo) (Float.max a.hi b.hi)

let intersect a b =
  let lo = Float.max a.lo b.lo and hi = Float.min a.hi b.hi in
  if lo <= hi then Some (make lo hi) else None

let sample iv k =
  if k <= 0 then []
  else if k = 1 then [ mid iv ]
  else
    List.init k (fun i ->
        iv.lo +. (width iv *. float_of_int i /. float_of_int (k - 1)))

let pp ppf iv = Format.fprintf ppf "[%g, %g]" iv.lo iv.hi

module Box = struct
  type iv = t

  type nonrec t = t array

  let dim = Array.length

  let mid b = Array.map mid b

  let mem x b =
    Array.length x = Array.length b
    && Array.for_all2 (fun v iv -> mem v iv) x b

  let corners b =
    let n = Array.length b in
    let rec go i acc =
      if i = n then [ Array.of_list (List.rev acc) ]
      else go (i + 1) (b.(i).lo :: acc) @ go (i + 1) (b.(i).hi :: acc)
    in
    if n = 0 then [ [||] ]
    else
      (* Deduplicate degenerate dimensions. *)
      List.sort_uniq Stdlib.compare (go 0 [])

  let sample_grid b k =
    let n = Array.length b in
    let rec go i acc =
      if i = n then [ Array.of_list (List.rev acc) ]
      else List.concat_map (fun v -> go (i + 1) (v :: acc)) (sample b.(i) k)
    in
    if n = 0 then [ [||] ] else go 0 []

  let pp ppf b =
    Format.fprintf ppf "@[<h>%a@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " x ") pp)
      (Array.to_list b)
end
