module VMap = Map.Make (Dvar)

type t = { const : float; vars : float VMap.t }

let zero = { const = 0.0; vars = VMap.empty }

let const c = { const = c; vars = VMap.empty }

let add_term v c m =
  let c' = c +. (match VMap.find_opt v m with Some x -> x | None -> 0.0) in
  if c' = 0.0 then VMap.remove v m else VMap.add v c' m

let var v = { const = 0.0; vars = VMap.add v 1.0 VMap.empty }

let of_terms c terms =
  { const = c; vars = List.fold_left (fun m (v, c) -> add_term v c m) VMap.empty terms }

let constant e = e.const

let terms e = VMap.bindings e.vars

let is_const e = VMap.is_empty e.vars

let add a b = { const = a.const +. b.const; vars = VMap.fold add_term b.vars a.vars }

let neg a = { const = -.a.const; vars = VMap.map (fun c -> -.c) a.vars }

let sub a b = add a (neg b)

let scale s a =
  if s = 0.0 then zero
  else { const = s *. a.const; vars = VMap.map (fun c -> s *. c) a.vars }

let add_const c a = { a with const = a.const +. c }

let eval assign e = VMap.fold (fun v c acc -> acc +. (c *. assign v)) e.vars e.const

let max_coeff e =
  VMap.fold (fun _ c acc -> Float.max acc (Float.abs c)) e.vars (Float.abs e.const)

let pp ppf e =
  Format.fprintf ppf "%g" e.const;
  VMap.iter (fun v c -> Format.fprintf ppf " + %g*%a" c Dvar.pp v) e.vars
