module Monomial = Poly.Monomial

module MonoMap = Map.Make (struct
  type t = Monomial.t

  let compare = Monomial.compare
end)

type t = { nvars : int; terms : Lexpr.t MonoMap.t }

let nvars p = p.nvars

let zero n = { nvars = n; terms = MonoMap.empty }

let is_zero_expr e = Lexpr.is_const e && Lexpr.constant e = 0.0

let add_term m e map =
  let e' =
    match MonoMap.find_opt m map with Some x -> Lexpr.add x e | None -> e
  in
  if is_zero_expr e' then MonoMap.remove m map else MonoMap.add m e' map

let of_poly p =
  {
    nvars = Poly.nvars p;
    terms =
      List.fold_left
        (fun acc (m, c) -> MonoMap.add m (Lexpr.const c) acc)
        MonoMap.empty (Poly.terms p);
  }

let of_terms n l =
  {
    nvars = n;
    terms =
      List.fold_left
        (fun acc (m, e) ->
          if Monomial.arity m <> n then invalid_arg "Ppoly.of_terms: arity mismatch";
          add_term m e acc)
        MonoMap.empty l;
  }

let coeff p m = match MonoMap.find_opt m p.terms with Some e -> e | None -> Lexpr.zero

let terms p = MonoMap.bindings p.terms

let check_arity name a b =
  if a.nvars <> b.nvars then invalid_arg (Printf.sprintf "Ppoly.%s: arity mismatch" name)

let add a b =
  check_arity "add" a b;
  { a with terms = MonoMap.fold add_term b.terms a.terms }

let neg a = { a with terms = MonoMap.map Lexpr.neg a.terms }

let sub a b = add a (neg b)

let scale s a =
  if s = 0.0 then zero a.nvars else { a with terms = MonoMap.map (Lexpr.scale s) a.terms }

let scale_expr e p =
  {
    nvars = Poly.nvars p;
    terms =
      List.fold_left
        (fun acc (m, c) -> add_term m (Lexpr.scale c e) acc)
        MonoMap.empty (Poly.terms p);
  }

let mul_poly q a =
  if Poly.nvars q <> a.nvars then invalid_arg "Ppoly.mul_poly: arity mismatch";
  let terms =
    List.fold_left
      (fun acc (mq, cq) ->
        MonoMap.fold
          (fun ma ea acc -> add_term (Monomial.mul mq ma) (Lexpr.scale cq ea) acc)
          a.terms acc)
      MonoMap.empty (Poly.terms q)
  in
  { nvars = a.nvars; terms }

let partial i a =
  if i < 0 || i >= a.nvars then invalid_arg "Ppoly.partial: index out of range";
  let terms =
    MonoMap.fold
      (fun m e acc ->
        let ei = Monomial.exponent m i in
        if ei = 0 then acc
        else begin
          let m' = Array.copy m in
          m'.(i) <- ei - 1;
          add_term m' (Lexpr.scale (float_of_int ei) e) acc
        end)
      a.terms MonoMap.empty
  in
  { a with terms }

let apply_poly_map q a =
  if Array.length q <> a.nvars then invalid_arg "Ppoly.apply_poly_map: arity mismatch";
  let n = if Array.length q = 0 then 0 else Poly.nvars q.(0) in
  Array.iter
    (fun qi -> if Poly.nvars qi <> n then invalid_arg "Ppoly.apply_poly_map: ragged arity")
    q;
  MonoMap.fold
    (fun m e acc ->
      let image = ref (Poly.one n) in
      Array.iteri
        (fun i ei -> if ei > 0 then image := Poly.mul !image (Poly.pow q.(i) ei))
        m;
      add acc (scale_expr e !image))
    a.terms (zero n)

let fix_var i c a =
  if i < 0 || i >= a.nvars then invalid_arg "Ppoly.fix_var: index out of range";
  let terms =
    MonoMap.fold
      (fun m e acc ->
        let ei = Monomial.exponent m i in
        if ei = 0 then add_term m e acc
        else begin
          let m' = Array.copy m in
          m'.(i) <- 0;
          let factor = Float.pow c (float_of_int ei) in
          add_term m' (Lexpr.scale factor e) acc
        end)
      a.terms MonoMap.empty
  in
  { a with terms }

let lie_derivative a f =
  if Array.length f <> a.nvars then invalid_arg "Ppoly.lie_derivative: arity mismatch";
  let acc = ref (zero a.nvars) in
  for i = 0 to a.nvars - 1 do
    acc := add !acc (mul_poly f.(i) (partial i a))
  done;
  !acc

let min_degree p =
  MonoMap.fold (fun m _ acc -> Int.min acc (Monomial.degree m)) p.terms max_int

let max_degree p =
  MonoMap.fold (fun m _ acc -> Int.max acc (Monomial.degree m)) p.terms (-1)

let value assign p =
  Poly.of_terms p.nvars
    (List.map (fun (m, e) -> (m, Lexpr.eval assign e)) (MonoMap.bindings p.terms))

let pp ppf p =
  if MonoMap.is_empty p.terms then Format.pp_print_string ppf "0"
  else begin
    let first = ref true in
    MonoMap.iter
      (fun m e ->
        if not !first then Format.fprintf ppf " + ";
        first := false;
        Format.fprintf ppf "(%a)*%a" Lexpr.pp e Monomial.pp m)
      p.terms
  end
