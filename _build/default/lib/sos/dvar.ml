type t = Free of int | Gram of int * int * int

let compare = Stdlib.compare

let equal a b = compare a b = 0

let pp ppf = function
  | Free i -> Format.fprintf ppf "t%d" i
  | Gram (b, i, j) -> Format.fprintf ppf "G%d[%d,%d]" b i j
