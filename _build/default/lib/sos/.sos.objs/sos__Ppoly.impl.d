lib/sos/ppoly.ml: Array Float Format Int Lexpr List Map Poly Printf
