lib/sos/sos.mli: Dvar Lexpr Linalg Poly Ppoly Sdp
