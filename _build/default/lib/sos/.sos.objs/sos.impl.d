lib/sos/sos.ml: Array Dvar Float Int Lexpr Linalg List Logs Poly Ppoly Sdp Set String
