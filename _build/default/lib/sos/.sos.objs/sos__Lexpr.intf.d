lib/sos/lexpr.mli: Dvar Format
