lib/sos/ppoly.mli: Dvar Format Lexpr Poly
