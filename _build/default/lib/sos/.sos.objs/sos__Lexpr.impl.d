lib/sos/lexpr.ml: Dvar Float Format List Map
