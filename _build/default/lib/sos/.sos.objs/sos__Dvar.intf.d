lib/sos/dvar.mli: Format
