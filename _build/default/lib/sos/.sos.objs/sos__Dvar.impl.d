lib/sos/dvar.ml: Format Stdlib
