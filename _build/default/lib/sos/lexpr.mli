(** Affine expressions over {!Dvar} decision variables.

    An [Lexpr.t] is [const + Σ coeff_v · v] with a sparse term map. These
    are the coefficients of parametric polynomials ({!Ppoly}) and the
    objective functions of SOS programs. *)

type t

val zero : t

val const : float -> t
(** Constant expression. *)

val var : Dvar.t -> t
(** The expression [1 · v]. *)

val of_terms : float -> (Dvar.t * float) list -> t
(** [of_terms c terms] builds [c + Σ terms]; repeated variables are
    summed. *)

val constant : t -> float
(** The constant part. *)

val terms : t -> (Dvar.t * float) list
(** The variable terms (zero coefficients omitted), in {!Dvar.compare}
    order. *)

val is_const : t -> bool
(** Whether no variable occurs. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

val add_const : float -> t -> t
(** Add a scalar to the constant part. *)

val eval : (Dvar.t -> float) -> t -> float
(** Value of the expression under a variable assignment. *)

val max_coeff : t -> float
(** Largest magnitude among the constant and the coefficients — the
    natural scale of the constraint [e = 0]. *)

val pp : Format.formatter -> t -> unit
