(** Parametric polynomials: polynomials in the state variables whose
    coefficients are affine expressions ({!Lexpr}) in the decision
    variables of an SOS program.

    The ring operations keep everything affine in the decision
    variables; there is deliberately no [mul : t -> t -> t] because the
    product of two parametric polynomials is bilinear, which SOS
    programming cannot express (the paper handles the one bilinear spot —
    level maximization and advection precision — by bisection on a scalar,
    which keeps each solve linear). *)

type t

val nvars : t -> int
(** Arity in the state variables. *)

val zero : int -> t

val of_poly : Poly.t -> t
(** Constant-coefficient polynomial as a parametric one. *)

val of_terms : int -> (Poly.Monomial.t * Lexpr.t) list -> t
(** Build from (monomial, coefficient-expression) pairs. *)

val coeff : t -> Poly.Monomial.t -> Lexpr.t
(** Coefficient expression of a monomial ([Lexpr.zero] if absent). *)

val terms : t -> (Poly.Monomial.t * Lexpr.t) list
(** Terms in monomial order; identically-zero coefficients omitted. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

val scale_expr : Lexpr.t -> Poly.t -> t
(** [scale_expr e p] is the parametric polynomial [e * p] for a constant
    polynomial [p] — e.g. [β * 1] when maximizing a level [β]. *)

val mul_poly : Poly.t -> t -> t
(** Product with a constant-coefficient polynomial. *)

val partial : int -> t -> t
(** Partial derivative in state variable [i]. *)

val apply_poly_map : Poly.t array -> t -> t
(** [apply_poly_map q p] substitutes the constant-coefficient polynomial
    [q.(i)] for state variable [i] — e.g. composing a parametric front
    with an exact affine flow map. The result's arity is the common
    arity of the [q.(i)]. *)

val fix_var : int -> float -> t -> t
(** [fix_var i c p] substitutes the constant [c] for state variable [i]
    (the arity is unchanged; variable [i] simply no longer occurs).
    Used to restrict certificates to switching surfaces such as
    [θ = θ_on]. *)

val lie_derivative : t -> Poly.t array -> t
(** [lie_derivative p f] is [∇p · f] along a constant-coefficient vector
    field. *)

val min_degree : t -> int
(** Smallest total degree of a (potentially) non-zero monomial; [max_int]
    for the zero polynomial. *)

val max_degree : t -> int
(** Largest such degree; [-1] for the zero polynomial. *)

val value : (Dvar.t -> float) -> t -> Poly.t
(** Instantiate the coefficients under an assignment of the decision
    variables. *)

val pp : Format.formatter -> t -> unit
