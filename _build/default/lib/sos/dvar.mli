(** Scalar decision variables of an SOS program.

    Two kinds exist: free scalars (e.g. the unknown coefficients of a
    parametric polynomial, or an objective like a level value) and
    entries of a Gram matrix backing an SOS-constrained polynomial.
    Both map directly onto the {!Sdp} problem: free scalars become SDP
    free variables, Gram entries become entries of a PSD block. *)

type t =
  | Free of int  (** index into the SDP free-variable vector *)
  | Gram of int * int * int
      (** [(block, row, col)] with [row <= col] — an entry of PSD block
          [block] *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
