(** Reach-set baseline for the CP PLL.

    The paper's motivation (§1): proving phase-locking by forward
    reachability needs hundreds of discrete transitions, each with
    continuous set computations and guard intersections, which is what
    makes the certificate approach attractive. This module implements
    that baseline so the claim can be measured:

    - {!interval_analysis} — conservative interval (box) reachability
      with Euler flow-pipes, box splitting at the PFD switching surfaces
      and per-mode hulling. Sound but subject to the wrapping effect;
      it typically fails to converge (mirroring the timeout reported for
      the reachability tool in the paper's reference [16]) while racking
      up set operations.
    - {!sampling_analysis} — under-approximate trajectory sampling: a
      grid of initial states is simulated to lock, counting the discrete
      transitions each trajectory takes. This measures how many
      transitions any reach-set method must process.

    Both report operation counts comparable against the certificate
    pipeline's zero discrete-transition enumeration. *)

type stats = {
  converged : bool;  (** reachable set provably inside the lock box *)
  iterations : int;  (** continuous post computations *)
  transitions : int;  (** discrete transitions processed *)
  set_ops : int;  (** splits, hulls and guard intersections *)
  max_boxes : int;  (** peak number of boxes tracked *)
  time_s : float;
}

val interval_analysis :
  ?dt:float ->
  ?t_max:float ->
  ?lock_tol:float ->
  ?max_boxes:int ->
  Pll.scaled ->
  init:Interval.Box.t ->
  mode0:int ->
  stats
(** Interval Euler reachability from the box [init] in mode [mode0]. *)

type sampling_stats = {
  n_trajectories : int;
  all_locked : bool;
  total_transitions : int;  (** summed over trajectories *)
  max_transitions : int;  (** worst single trajectory *)
  mean_transitions : float;
  time_s : float;
}

val sampling_analysis :
  ?grid:int -> ?dt:float -> ?t_max:float -> Pll.scaled -> init:Interval.Box.t -> sampling_stats
(** Simulate a [grid^n] lattice of initial states from [init] to lock,
    counting discrete transitions. *)
