type stats = {
  converged : bool;
  iterations : int;
  transitions : int;
  set_ops : int;
  max_boxes : int;
  time_s : float;
}

(* Interval evaluation of a polynomial over a box. *)
let eval_box p (box : Interval.Box.t) =
  List.fold_left
    (fun acc (m, c) ->
      let term = ref (Interval.point c) in
      Array.iteri
        (fun i e ->
          for _ = 1 to e do
            term := Interval.mul !term box.(i)
          done)
        m;
      Interval.add acc !term)
    (Interval.point 0.0) (Poly.terms p)

let box_union (a : Interval.Box.t) (b : Interval.Box.t) : Interval.Box.t =
  Array.map2 Interval.hull a b

(* One interval Euler step of the flow over a box. *)
let euler_step flow dt (box : Interval.Box.t) : Interval.Box.t =
  Array.mapi
    (fun i iv ->
      let d = eval_box flow.(i) box in
      Interval.add iv (Interval.scale dt d))
    box

let interval_analysis ?(dt = 0.01) ?(t_max = 60.0) ?(lock_tol = 0.1) ?(max_boxes = 64)
    (s : Pll.scaled) ~init ~mode0 =
  let t_start = Sys.time () in
  let n = s.Pll.nvars in
  let theta = Pll.theta_index s in
  let iterations = ref 0 and transitions = ref 0 and set_ops = ref 0 in
  let peak = ref 1 in
  (* Work state: one box per mode (hulled); [None] when that mode holds
     no reachable states. *)
  let boxes : Interval.Box.t option array = Array.make Pll.n_modes None in
  boxes.(mode0) <- Some (Array.copy init);
  let flows = Array.init Pll.n_modes (fun m -> Pll.flow s (Pll.nominal s) m) in
  let t = ref 0.0 in
  let diverged = ref false in
  let locked_box b =
    let ok = ref true in
    for i = 0 to n - 2 do
      if Float.max (Float.abs (Interval.lo b.(i))) (Float.abs (Interval.hi b.(i))) > lock_tol
      then ok := false
    done;
    !ok
  in
  let clip_theta b lo hi =
    match Interval.intersect b.(theta) (Interval.make lo hi) with
    | None -> None
    | Some iv ->
        let b' = Array.copy b in
        b'.(theta) <- iv;
        Some b'
  in
  while (!t < t_max) && (not !diverged)
        && not (Array.for_all (function None -> true | Some b -> locked_box b) boxes
                && Array.exists (fun b -> b <> None) boxes)
  do
    t := !t +. dt;
    let next : Interval.Box.t option array = Array.make Pll.n_modes None in
    Array.iteri
      (fun m box_opt ->
        match box_opt with
        | None -> ()
        | Some box ->
            incr iterations;
            let advanced = euler_step flows.(m) dt box in
            (* Divergence guard: the wrapping effect blows boxes up. *)
            Array.iter
              (fun iv ->
                if Interval.width iv > 50.0 || Float.abs (Interval.mid iv) > 50.0 then
                  diverged := true)
              advanced;
            (* Split the advanced box across the PFD mode slabs and route
               each piece; every split/clip is a set operation, every
               cross-mode piece a discrete transition. *)
            let pieces =
              match m with
              | m when m = Pll.off ->
                  [
                    (Pll.off, clip_theta advanced (-.s.Pll.theta_on) s.Pll.theta_on);
                    (Pll.up, clip_theta advanced s.Pll.theta_on s.Pll.theta_max);
                    (Pll.down, clip_theta advanced (-.s.Pll.theta_max) (-.s.Pll.theta_on));
                  ]
              | m when m = Pll.up ->
                  [
                    (Pll.up, clip_theta advanced s.Pll.theta_on s.Pll.theta_max);
                    (Pll.off, clip_theta advanced (-.s.Pll.theta_on) s.Pll.theta_on);
                  ]
              | _ ->
                  [
                    (Pll.down, clip_theta advanced (-.s.Pll.theta_max) (-.s.Pll.theta_on));
                    (Pll.off, clip_theta advanced (-.s.Pll.theta_on) s.Pll.theta_on);
                  ]
            in
            List.iter
              (fun (dest, piece) ->
                incr set_ops;
                match piece with
                | None -> ()
                | Some piece ->
                    if dest <> m then incr transitions;
                    next.(dest) <-
                      (match next.(dest) with
                      | None -> Some piece
                      | Some existing ->
                          incr set_ops;
                          Some (box_union existing piece)))
              pieces)
      boxes;
    Array.blit next 0 boxes 0 Pll.n_modes;
    let live = Array.fold_left (fun acc b -> if b = None then acc else acc + 1) 0 boxes in
    if live > !peak then peak := live;
    if live > max_boxes then diverged := true
  done;
  let converged =
    (not !diverged)
    && Array.for_all (function None -> true | Some b -> locked_box b) boxes
  in
  {
    converged;
    iterations = !iterations;
    transitions = !transitions;
    set_ops = !set_ops;
    max_boxes = !peak;
    time_s = Sys.time () -. t_start;
  }

type sampling_stats = {
  n_trajectories : int;
  all_locked : bool;
  total_transitions : int;
  max_transitions : int;
  mean_transitions : float;
  time_s : float;
}

let sampling_analysis ?(grid = 3) ?(dt = 1e-3) ?(t_max = 150.0) (s : Pll.scaled) ~init =
  let t_start = Sys.time () in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let theta = Pll.theta_index s in
  let points = Interval.Box.sample_grid init grid in
  let total = ref 0 and worst = ref 0 and all_locked = ref true and count = ref 0 in
  List.iter
    (fun x0 ->
      let th = x0.(theta) in
      let m =
        if Float.abs th <= s.Pll.theta_on then Pll.off
        else if th > 0.0 then Pll.up
        else Pll.down
      in
      incr count;
      let r = Hybrid.simulate ~dt sys ~mode0:m ~x0 ~t_max in
      total := !total + r.Hybrid.jumps;
      if r.Hybrid.jumps > !worst then worst := r.Hybrid.jumps;
      if not (Pll.in_lock s r.Hybrid.final.Hybrid.state) then all_locked := false)
    points;
  {
    n_trajectories = !count;
    all_locked = !all_locked;
    total_transitions = !total;
    max_transitions = !worst;
    mean_transitions = (if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count);
    time_s = Sys.time () -. t_start;
  }
