(* Lock retention under disturbance — the second motivating property of
   the paper's introduction: "while in phase-locking state and disturbed
   by an external input, it is important to know whether the PLL circuit
   retains its locking state."

   We model an additive bounded disturbance on the charge-pump current
   (supply noise / injection), certify the largest sublevel set of the
   multiple-Lyapunov certificate that stays invariant for every
   admissible disturbance, and report the largest rejected disturbance
   amplitude.

   Also demonstrates voltage safety of the start-up transient via a
   barrier certificate (Prajna–Jadbabaie, the paper's reference [11]).

   Run with:  dune exec examples/lock_retention.exe *)

let () =
  let s = Pll.scale Pll.table1_third in
  let cfg = { (Certificates.default_config Pll.Third) with Certificates.degree = 4 } in
  match Certificates.attractive_invariant ~config:cfg s with
  | Error e ->
      Format.printf "attractive invariant failed: %s@." e;
      exit 1
  | Ok ai ->
      Format.printf "attractive invariant: beta = %.2f@.@." ai.Certificates.beta;

      (* 1. Lock retention for a fixed disturbance bound. *)
      let d_max = 0.1 in
      (match Barrier.lock_retention s ai ~d_max with
      | Ok r ->
          Format.printf
            "pump-current disturbance |d| <= %.2f (x %.0f uA): lock retained within \
             {V <= %.2f}@."
            d_max
            (d_max *. 1e6 *. s.Pll.v0 /. (Interval.mid Pll.table1_third.Pll.r))
            r.Barrier.level
      | Error e -> Format.printf "retention at d_max=%.2f: %s@." d_max e);

      (* 2. The largest certified disturbance amplitude. *)
      let dmax = Barrier.max_rejected_disturbance ~steps:6 s ai in
      Format.printf "largest certified disturbance amplitude: %.4f (scaled units)@.@." dmax;

      (* 3. Start-up voltage safety barrier. *)
      let init_radii = [| 0.4; 0.4; 0.3 |] in
      (match Barrier.pll_voltage_safety ~v_limit:2.3 s ~init_radii with
      | Ok cert ->
          Format.printf
            "start-up safety: barrier certificate found — loop-filter voltages stay below \
             %.1f V@."
            (2.3 *. s.Pll.v0);
          Format.printf "  validated on simulated arcs: %b@."
            (Barrier.validate_barrier_by_simulation ~trials:20 ~invariant:ai s ~init_radii cert)
      | Error e -> Format.printf "start-up safety: %s@." e)
