(* Verify inevitability of phase-locking for the third-order CP PLL of
   the paper's Table 1 — the full two-pronged pipeline:

     P1: multiple Lyapunov certificates + maximized level sets (X1)
     P2: bounded advection of the outer set X2 into X1

   By default this uses degree-4 certificates (seconds); pass `6` as the
   first argument for the paper's degree-6 run (minutes).

   Run with:  dune exec examples/third_order_pll.exe [degree] *)

let () =
  let degree = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let s = Pll.scale Pll.table1_third in
  Format.printf "%a@.@." Pll.pp_scaled s;
  let cert_config = { (Certificates.default_config Pll.Third) with Certificates.degree } in
  match Pll_core.Inevitability.verify ~cert_config s with
  | Error e ->
      Format.printf "verification failed: %s@." e;
      exit 1
  | Ok report ->
      Format.printf "%a@.@." Pll_core.Inevitability.pp_report report;
      (* Show the attractive-invariant boundary on the (v1, v2) plane
         (the left panel of the paper's Fig. 2), in physical volts. *)
      let v_off = report.Pll_core.Inevitability.invariant.Certificates.cert.Certificates.vs.(Pll.off) in
      let beta = report.Pll_core.Inevitability.invariant.Certificates.beta in
      let pts = Certificates.level_curve v_off ~beta ~plane:(0, 1) ~nvars:3 ~n:16 in
      Format.printf "X1 boundary on (v1, v2), volts:@.";
      List.iter
        (fun (a, b) -> Format.printf "  % .3f  % .3f@." (a *. s.Pll.v0) (b *. s.Pll.v0))
        pts;
      (* Monte-Carlo soundness check of the certificate. *)
      let valid =
        Certificates.validate_by_simulation ~trials:25 s
          report.Pll_core.Inevitability.invariant
      in
      Format.printf "@.simulation validation of X1: %b@." valid;
      if not (report.Pll_core.Inevitability.verified && valid) then exit 1
