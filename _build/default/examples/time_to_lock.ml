(* Certified time-to-lock bounds — the property verified by the paper's
   related work ([2] Althoff et al., [6] Lin et al.), obtained here as a
   corollary of the strict decrease margins of our multiple Lyapunov
   certificates: dV/dt <= -eps·|x|², so outside X1 the certificate value
   drains at a known minimum rate.

   The certified bound is compared against simulated worst-case lock
   times over the same region.

   Run with:  dune exec examples/time_to_lock.exe *)

let () =
  let s = Pll.scale Pll.table1_third in
  let cfg = { (Certificates.default_config Pll.Third) with Certificates.degree = 4 } in
  match Certificates.attractive_invariant ~config:cfg s with
  | Error e ->
      Format.printf "attractive invariant failed: %s@." e;
      exit 1
  | Ok ai ->
      let beta = ai.Certificates.beta in
      Format.printf "X1 level: beta = %.1f@." beta;
      List.iter
        (fun factor ->
          let from_level = factor *. beta in
          let t = Certificates.time_to_lock_bound s ai ~from_level in
          Format.printf
            "from {V <= %.0f} (= %.1f x beta): certified time to reach X1 <= %.1f (= %.3g s)@."
            from_level factor t (t *. s.Pll.t0))
        [ 1.5; 2.0; 4.0 ];
      (* Compare with simulation: sample states near the 2x-beta level,
         measure time until the state enters X1. *)
      let sys = Pll.hybrid_system s (Pll.nominal s) in
      let rng = Random.State.make [| 3 |] in
      let worst = ref 0.0 and count = ref 0 in
      while !count < 30 do
        let x0 =
          Array.init 3 (fun i ->
              let b = if i = 2 then s.Pll.theta_max else s.Pll.w_max in
              (Random.State.float rng 2.0 -. 1.0) *. b)
        in
        let th = x0.(2) in
        let m =
          if Float.abs th <= s.Pll.theta_on then Pll.off
          else if th > 0.0 then Pll.up
          else Pll.down
        in
        let v = Poly.eval ai.Certificates.cert.Certificates.vs.(m) x0 in
        if v > beta && v <= 2.0 *. beta then begin
          incr count;
          let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:m ~x0 ~t_max:100.0 in
          let entry =
            List.find_opt
              (fun (st : Hybrid.step) -> Certificates.member s ai st.Hybrid.state)
              r.Hybrid.arc
          in
          match entry with
          | Some st -> if st.Hybrid.t > !worst then worst := st.Hybrid.t
          | None -> ()
        end
      done;
      Format.printf "simulated worst entry time from that band: %.2f (certified bound must dominate)@."
        !worst;
      let certified = Certificates.time_to_lock_bound s ai ~from_level:(2.0 *. beta) in
      if certified < !worst then begin
        Format.printf "BOUND VIOLATED — unsound!@.";
        exit 1
      end;
      Format.printf "certified bound %.1f >= simulated worst %.2f: consistent@." certified !worst
