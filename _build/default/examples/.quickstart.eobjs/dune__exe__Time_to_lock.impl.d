examples/time_to_lock.ml: Array Certificates Float Format Hybrid List Pll Poly Random
