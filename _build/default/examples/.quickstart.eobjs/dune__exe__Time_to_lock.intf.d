examples/time_to_lock.mli:
