examples/fourth_order_pll.ml: Advect Certificates Format List Pll Pll_core Poly
