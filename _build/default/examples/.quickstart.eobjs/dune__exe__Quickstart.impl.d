examples/quickstart.ml: Array Format Hybrid Poly Sos
