examples/lock_retention.mli:
