examples/third_order_pll.mli:
