examples/escape_region.mli:
