examples/quickstart.mli:
