examples/startup_transient.ml: Array Float Format Hybrid List Pll Printf String Sys
