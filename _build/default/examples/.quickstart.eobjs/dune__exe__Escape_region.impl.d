examples/escape_region.ml: Certificates Format Poly
