examples/third_order_pll.ml: Array Certificates Format List Pll Pll_core Sys
