examples/lock_retention.ml: Barrier Certificates Format Interval Pll
