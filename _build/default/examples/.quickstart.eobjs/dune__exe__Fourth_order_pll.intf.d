examples/fourth_order_pll.mli:
