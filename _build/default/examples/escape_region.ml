(* Escape certificates outside the PLL context (Proposition 1 is fully
   generic): prove that trajectories of a constant-drift planar system
   must leave a compact annular region in finite time, and that no such
   certificate exists for a region containing a stable equilibrium.

   Run with:  dune exec examples/escape_region.exe *)

let () =
  let n = 2 in
  let x = Poly.var n 0 and y = Poly.var n 1 in
  let c v = Poly.const n v in

  (* System 1: pure drift dx = 1, dy = 0. Any compact set is escaped;
     E = -x works and the SOS search must find some certificate. *)
  let drift = [| Poly.one n; Poly.zero n |] in
  let disc = Poly.sub (c 1.0) (Poly.add (Poly.mul x x) (Poly.mul y y)) in
  (match Certificates.find_escape ~deg:2 ~eps:0.1 ~nvars:n ~flow:drift ~domain:[ disc ] () with
  | Ok (e, stats) ->
      Format.printf "drift system: escape certificate on the unit disc:@.  E = %s@."
        (Poly.to_string (Poly.chop ~tol:1e-6 e));
      Format.printf "  found in %.2f s@." stats.Certificates.time_s
  | Error msg ->
      Format.printf "drift system: FAILED (%s)@." msg;
      exit 1);

  (* System 2: a stable focus dx = -x + y, dy = -x - y. The unit disc
     contains the equilibrium, so trajectories never leave: no escape
     certificate can exist and the search must fail. *)
  let focus = [| Poly.sub y x; Poly.sub (Poly.neg x) y |] in
  (match Certificates.find_escape ~deg:4 ~eps:0.1 ~nvars:n ~flow:focus ~domain:[ disc ] () with
  | Ok _ ->
      Format.printf "stable focus: found an escape certificate — UNSOUND!@.";
      exit 1
  | Error _ -> Format.printf "stable focus: correctly no escape certificate on the disc@.");

  (* System 2b: but the annulus 1/4 <= |x|^2 <= 1 around the focus IS
     escaped (trajectories spiral into the inner disc). *)
  let annulus =
    [
      disc;
      Poly.sub (Poly.add (Poly.mul x x) (Poly.mul y y)) (c 0.25);
    ]
  in
  match Certificates.find_escape ~deg:4 ~eps:0.01 ~nvars:n ~flow:focus ~domain:annulus () with
  | Ok (e, _) ->
      Format.printf "stable focus: annulus is escaped:@.  E = %s@."
        (Poly.to_string (Poly.chop ~tol:1e-6 e))
  | Error msg ->
      Format.printf "stable focus annulus: FAILED (%s)@." msg;
      exit 1
