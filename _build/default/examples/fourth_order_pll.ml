(* Verify inevitability of phase-locking for the fourth-order CP PLL
   (Table 1, second column): degree-4 multiple Lyapunov certificates as
   in the paper, bounded advection, and — when advection alone is
   inconclusive, as the paper reports for this benchmark (Fig. 5) —
   Escape certificates on the residual set.

   Run with:  dune exec examples/fourth_order_pll.exe *)

let () =
  let s = Pll.scale Pll.table1_fourth in
  Format.printf "%a@.@." Pll.pp_scaled s;
  match Pll_core.Inevitability.verify s with
  | Error e ->
      Format.printf "verification failed: %s@." e;
      exit 1
  | Ok report ->
      Format.printf "%a@.@." Pll_core.Inevitability.pp_report report;
      List.iter
        (fun (m, e) ->
          Format.printf "escape certificate for mode %s:@.  E = %s@." (Pll.mode_name m)
            (Poly.to_string (Poly.chop ~tol:1e-5 e)))
        report.Pll_core.Inevitability.advection.Advect.escapes;
      let valid =
        Certificates.validate_by_simulation ~trials:25 s
          report.Pll_core.Inevitability.invariant
      in
      Format.printf "simulation validation of X1: %b@." valid;
      if not (report.Pll_core.Inevitability.verified && valid) then exit 1
