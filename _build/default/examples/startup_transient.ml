(* Start-up transients — the paper's motivating scenario (§1: "for
   certain initial states of voltages, the circuits do not converge to
   the desired behaviour").

   We sweep a grid of worst-case start-up states (discharged/overcharged
   loop filter, arbitrary initial phase error), simulate the hybrid CP
   PLL to lock, and report the lock time and the number of PFD mode
   switches for each — the hundreds-of-transitions behaviour that makes
   naive reachability expensive.

   Run with:  dune exec examples/startup_transient.exe [third|fourth] *)

let () =
  let order = if Array.length Sys.argv > 1 then Sys.argv.(1) else "third" in
  let s, dt, t_max =
    match order with
    | "fourth" -> (Pll.scale Pll.table1_fourth, 2e-4, 400.0)
    | _ -> (Pll.scale Pll.table1_third, 1e-3, 150.0)
  in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let theta = Pll.theta_index s in
  let lock_time arc =
    (* First time after which the trajectory stays locked. *)
    let rec last_unlock acc = function
      | [] -> acc
      | (st : Hybrid.step) :: rest ->
          last_unlock (if Pll.in_lock s st.Hybrid.state then acc else st.Hybrid.t) rest
    in
    last_unlock 0.0 arc
  in
  Format.printf "%s-order CP PLL start-up sweep (times in scaled units of %g s):@.@." order
    s.Pll.t0;
  Format.printf "  %-28s %-10s %-8s %-8s@." "initial state" "lock time" "switches" "locked";
  let grid = [ -0.9; 0.0; 0.9 ] in
  let n = s.Pll.nvars in
  let total = ref 0 and locked = ref 0 and worst_t = ref 0.0 and worst_j = ref 0 in
  List.iter
    (fun w ->
      List.iter
        (fun th_frac ->
          let x0 =
            Array.init n (fun i ->
                if i = theta then th_frac *. s.Pll.theta_max else w *. s.Pll.w_max)
          in
          let th = x0.(theta) in
          let m =
            if Float.abs th <= s.Pll.theta_on then Pll.off
            else if th > 0.0 then Pll.up
            else Pll.down
          in
          let r = Hybrid.simulate ~dt sys ~mode0:m ~x0 ~t_max in
          let tl = lock_time r.Hybrid.arc in
          let ok = Pll.in_lock s r.Hybrid.final.Hybrid.state in
          incr total;
          if ok then incr locked;
          if tl > !worst_t then worst_t := tl;
          if r.Hybrid.jumps > !worst_j then worst_j := r.Hybrid.jumps;
          let desc =
            String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.2f") x0))
          in
          Format.printf "  [%-26s] %-10.2f %-8d %-8b@." desc tl r.Hybrid.jumps ok)
        grid)
    grid;
  Format.printf "@.locked %d/%d, worst lock time %.2f (= %.3g s), worst switch count %d@."
    !locked !total !worst_t (!worst_t *. s.Pll.t0) !worst_j;
  if !locked <> !total then exit 1
