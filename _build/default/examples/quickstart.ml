(* Quickstart: prove asymptotic stability of a textbook nonlinear system
   with a sum-of-squares Lyapunov certificate, then cross-check the
   certificate numerically.

   System:  dx/dt = -x + y,   dy/dt = -x - y^3

   We search for V with
     V - 0.01(x^2 + y^2)            a sum of squares   (positivity)
     -dV/dt - 0.01(x^2 + y^2)       a sum of squares   (strict decrease)

   Run with:  dune exec examples/quickstart.exe *)

module Ppoly = Sos.Ppoly

let () =
  let n = 2 in
  let x = Poly.var n 0 and y = Poly.var n 1 in
  let field =
    [| Poly.sub y x (* -x + y *); Poly.sub (Poly.neg x) (Poly.pow y 3) |]
  in
  let norm2 = Poly.add (Poly.mul x x) (Poly.mul y y) in

  (* 1. Pose the SOS program. *)
  let prob = Sos.create ~nvars:n in
  let v = Sos.fresh_poly prob ~deg:4 ~min_deg:2 in
  Sos.add_sos prob (Ppoly.sub v (Ppoly.of_poly (Poly.scale 0.01 norm2)));
  Sos.add_sos prob
    (Ppoly.sub
       (Ppoly.neg (Ppoly.lie_derivative v field))
       (Ppoly.of_poly (Poly.scale 0.01 norm2)));

  (* 2. Solve it. *)
  let sol = Sos.solve prob in
  if not sol.Sos.certified then begin
    Format.printf "no certificate found (unexpected!)@.";
    exit 1
  end;
  let v_poly = Poly.chop ~tol:1e-6 (Sos.value sol v) in
  Format.printf "Lyapunov certificate found:@.  V = %s@." (Poly.to_string v_poly);
  Format.printf "  (Gram minimum eigenvalue %.2e, residual %.2e)@." sol.Sos.min_gram_eig
    sol.Sos.max_eq_residual;

  (* 3. Cross-check: V decreases along a simulated trajectory. *)
  let state = ref [| 1.5; -1.0 |] in
  let ok = ref true in
  let prev = ref (Poly.eval v_poly !state) in
  for _ = 1 to 2000 do
    state := Hybrid.rk4_step field 0.005 !state;
    let now = Poly.eval v_poly !state in
    if now > !prev +. 1e-9 then ok := false;
    prev := now
  done;
  Format.printf "V monotonically decreasing along simulated trajectory: %b@." !ok;
  Format.printf "final state after t = 10: (%.6f, %.6f)@." !state.(0) !state.(1)
