(* Tests for barrier certificates and disturbance rejection. *)

let s3 = lazy (Pll.scale Pll.table1_third)

let cfg4 = lazy { (Certificates.default_config Pll.Third) with Certificates.degree = 4 }

let ai3 =
  lazy
    (match Certificates.attractive_invariant ~config:(Lazy.force cfg4) (Lazy.force s3) with
    | Ok ai -> ai
    | Error e -> failwith ("attractive_invariant failed: " ^ e))

(* 1-D drift toward the origin: from |x| <= 1/2, the set |x| >= 1 is
   never reached; B = x^2 - 0.75 is a valid barrier and the search must
   find one. *)
let test_generic_barrier_exists () =
  let n = 1 in
  let x = Poly.var n 0 in
  let flow = [| Poly.neg x |] in
  let domain = [ Poly.sub (Poly.const n 4.0) (Poly.mul x x) ] in
  let init = [ Poly.sub (Poly.const n 0.25) (Poly.mul x x) ] in
  let unsafe =
    [ Poly.sub (Poly.mul x x) (Poly.one n); Poly.sub (Poly.const n 4.0) (Poly.mul x x) ]
  in
  match
    Barrier.find_barrier ~nvars:n ~flows:[ flow ] ~domains:[ domain ] ~init ~unsafe ()
  with
  | Error e -> Alcotest.fail e
  | Ok cert ->
      (* Check the defining inequalities at sample points. *)
      Alcotest.(check bool) "B <= 0 at 0" true (Poly.eval cert.Barrier.b [| 0.0 |] <= 1e-6);
      Alcotest.(check bool) "B <= 0 at 0.4" true (Poly.eval cert.Barrier.b [| 0.4 |] <= 1e-6);
      Alcotest.(check bool) "B > 0 at 1.5" true (Poly.eval cert.Barrier.b [| 1.5 |] > 0.0)

(* Outward drift: from |x| <= 1/2 the system *does* reach |x| >= 1, so no
   barrier can exist. *)
let test_generic_barrier_impossible () =
  let n = 1 in
  let x = Poly.var n 0 in
  let flow = [| x |] in
  let domain = [ Poly.sub (Poly.const n 4.0) (Poly.mul x x) ] in
  let init = [ Poly.sub (Poly.const n 0.25) (Poly.mul x x) ] in
  let unsafe =
    [ Poly.sub (Poly.mul x x) (Poly.one n); Poly.sub (Poly.const n 4.0) (Poly.mul x x) ]
  in
  match
    Barrier.find_barrier ~nvars:n ~flows:[ flow ] ~domains:[ domain ] ~init ~unsafe ()
  with
  | Ok _ -> Alcotest.fail "unsound barrier for an unsafe system"
  | Error _ -> ()

let test_pll_voltage_safety () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let init_radii = [| 0.4; 0.4; 0.3 |] in
  match Barrier.pll_voltage_safety ~v_limit:2.3 ~invariant:ai s ~init_radii with
  | Error e -> Alcotest.fail e
  | Ok cert ->
      Alcotest.(check bool) "simulation validates" true
        (Barrier.validate_barrier_by_simulation ~trials:15 ~invariant:ai s ~init_radii cert)

let test_lock_retention () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  (* Find the certifiable disturbance scale first; the margin eps_decr of
     the degree-4 certificates admits only small certified bounds. *)
  let d_cert = Barrier.max_rejected_disturbance ~steps:4 s ai in
  Alcotest.(check bool) "some disturbance certifiable" true (d_cert > 0.0);
  match Barrier.lock_retention s ai ~d_max:(0.5 *. d_cert) with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "positive level" true (r.Barrier.level > 0.0);
      Alcotest.(check bool) "level at most beta" true
        (r.Barrier.level <= ai.Certificates.beta +. 1e-9);
      (* Simulate the disturbed loop from inside the certified set: it
         must stay within it (checked on V of the active mode). *)
      let pt = Pll.nominal s in
      let dt = 1e-3 in
      let x = ref [| 0.05; 0.05; 0.02 |] in
      Alcotest.(check bool) "start inside" true
        (Poly.eval ai.Certificates.cert.Certificates.vs.(Pll.off) !x < r.Barrier.level);
      let rng = Random.State.make [| 9 |] in
      let sound = ref true in
      for _ = 1 to 20_000 do
        (* worst-case-ish bang-bang disturbance *)
        let d = if Random.State.bool rng then r.Barrier.d_max else -.r.Barrier.d_max in
        let th = !x.(2) in
        let m =
          if Float.abs th <= s.Pll.theta_on then Pll.off
          else if th > 0.0 then Pll.up
          else Pll.down
        in
        let f = Pll.flow s pt m in
        let fd =
          Array.mapi (fun i p -> if i = 1 then Poly.add p (Poly.const 3 d) else p) f
        in
        x := Hybrid.rk4_step fd dt !x;
        let th = !x.(2) in
        let m =
          if Float.abs th <= s.Pll.theta_on then Pll.off
          else if th > 0.0 then Pll.up
          else Pll.down
        in
        if Poly.eval ai.Certificates.cert.Certificates.vs.(m) !x > r.Barrier.level +. 1e-6 then
          sound := false
      done;
      Alcotest.(check bool) "disturbed trajectory stays in certified set" true !sound

let test_max_rejected_disturbance_positive () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let d = Barrier.max_rejected_disturbance ~steps:4 s ai in
  Alcotest.(check bool) "some disturbance rejected" true (d > 0.0)

let suite =
  [
    Alcotest.test_case "generic barrier exists" `Quick test_generic_barrier_exists;
    Alcotest.test_case "generic barrier impossible" `Quick test_generic_barrier_impossible;
    Alcotest.test_case "pll voltage safety" `Slow test_pll_voltage_safety;
    Alcotest.test_case "lock retention under disturbance" `Slow test_lock_retention;
    Alcotest.test_case "max rejected disturbance" `Slow test_max_rejected_disturbance_positive;
  ]
