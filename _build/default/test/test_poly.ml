(* Unit and property tests for monomials and sparse multivariate
   polynomials. *)

module M = Poly.Monomial

let mono es = M.of_exponents es

let p2 terms = Poly.of_terms 2 (List.map (fun (es, c) -> (mono es, c)) terms)

(* --- Monomials --------------------------------------------------------- *)

let test_monomial_basics () =
  let m = mono [ 2; 1 ] in
  Alcotest.(check int) "degree" 3 (M.degree m);
  Alcotest.(check int) "arity" 2 (M.arity m);
  Alcotest.(check bool) "mul" true (M.equal (M.mul m (mono [ 0; 2 ])) (mono [ 2; 3 ]));
  Alcotest.(check bool) "divide ok" true (M.divide m (mono [ 1; 1 ]) = Some (mono [ 1; 0 ]));
  Alcotest.(check bool) "divide fail" true (M.divide (mono [ 1; 0 ]) (mono [ 0; 1 ]) = None);
  Alcotest.(check (float 1e-12)) "eval" 12.0 (M.eval m [| 2.0; 3.0 |]);
  Alcotest.(check string) "to_string" "x0^2*x1" (M.to_string m)

let test_monomial_enumeration () =
  Alcotest.(check int) "count deg<=3 in 2 vars" 10 (List.length (M.all_upto 2 3));
  Alcotest.(check int) "count deg=2 in 3 vars" 6 (List.length (M.all_of_degree 3 2));
  (* graded order: degrees non-decreasing *)
  let ds = List.map M.degree (M.all_upto 3 4) in
  Alcotest.(check bool) "graded order" true (List.sort compare ds = ds)

let test_monomial_order_consistency () =
  let l = M.all_upto 2 4 in
  let sorted = List.sort M.compare l in
  Alcotest.(check bool) "enumeration is sorted" true (List.equal M.equal l sorted)

(* --- Polynomial ring --------------------------------------------------- *)

let test_poly_arith () =
  let p = p2 [ ([ 1; 0 ], 1.0); ([ 0; 1 ], 1.0) ] in
  (* (x+y)^2 = x^2 + 2xy + y^2 *)
  let sq = Poly.mul p p in
  Alcotest.(check bool) "square" true
    (Poly.equal sq (p2 [ ([ 2; 0 ], 1.0); ([ 1; 1 ], 2.0); ([ 0; 2 ], 1.0) ]));
  Alcotest.(check bool) "pow agrees with mul" true (Poly.equal (Poly.pow p 2) sq);
  Alcotest.(check bool) "sub to zero" true (Poly.is_zero (Poly.sub sq sq));
  Alcotest.(check int) "degree" 2 (Poly.degree sq);
  Alcotest.(check (float 1e-12)) "eval" 25.0 (Poly.eval sq [| 2.0; 3.0 |])

let test_poly_cancellation () =
  let p = p2 [ ([ 1; 0 ], 1.0) ] and q = p2 [ ([ 1; 0 ], -1.0) ] in
  let z = Poly.add p q in
  Alcotest.(check bool) "exact cancellation drops term" true (Poly.is_zero z);
  Alcotest.(check int) "zero degree convention" (-1) (Poly.degree z)

let test_poly_partial () =
  (* d/dx (x^3 y + 2 x) = 3 x^2 y + 2 *)
  let p = p2 [ ([ 3; 1 ], 1.0); ([ 1; 0 ], 2.0) ] in
  let px = Poly.partial 0 p in
  Alcotest.(check bool) "partial" true
    (Poly.equal px (p2 [ ([ 2; 1 ], 3.0); ([ 0; 0 ], 2.0) ]))

let test_lie_derivative () =
  (* V = x^2 + y^2 along f = (-y, x) (rotation): dV/dt = 0 *)
  let v = p2 [ ([ 2; 0 ], 1.0); ([ 0; 2 ], 1.0) ] in
  let f = [| p2 [ ([ 0; 1 ], -1.0) ]; p2 [ ([ 1; 0 ], 1.0) ] |] in
  Alcotest.(check bool) "rotation conserves norm" true (Poly.is_zero (Poly.lie_derivative v f));
  (* along f = (-x, -y): dV/dt = -2V *)
  let g = [| p2 [ ([ 1; 0 ], -1.0) ]; p2 [ ([ 0; 1 ], -1.0) ] |] in
  Alcotest.(check bool) "contraction" true
    (Poly.approx_equal (Poly.lie_derivative v g) (Poly.scale (-2.0) v))

let test_subst_shift () =
  (* p(x,y) = x*y; substitute x := x+1, y := y-2 *)
  let p = p2 [ ([ 1; 1 ], 1.0) ] in
  let shifted = Poly.shift p [| 1.0; -2.0 |] in
  Alcotest.(check (float 1e-12)) "shift eval" ((3.0 +. 1.0) *. (4.0 -. 2.0))
    (Poly.eval shifted [| 3.0; 4.0 |]);
  (* subst into polynomials of another arity *)
  let q3 = Poly.of_terms 3 [ (M.of_exponents [ 1; 0; 0 ], 1.0) ] in
  let r3 = Poly.of_terms 3 [ (M.of_exponents [ 0; 1; 1 ], 1.0) ] in
  let composed = Poly.subst p [| q3; r3 |] in
  Alcotest.(check (float 1e-12)) "subst eval" (2.0 *. (3.0 *. 5.0))
    (Poly.eval composed [| 2.0; 3.0; 5.0 |])

let test_hessian_symmetry () =
  let p = p2 [ ([ 3; 1 ], 2.0); ([ 1; 2 ], -1.0); ([ 2; 0 ], 0.5 ) ] in
  let h = Poly.hessian p in
  Alcotest.(check bool) "hessian symmetric" true (Poly.equal h.(0).(1) h.(1).(0))

let test_quadratic_form () =
  let q = Linalg.Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let p = Poly.quadratic_form q in
  Alcotest.(check (float 1e-12)) "x'Qx" (2.0 +. 2.0 +. 3.0) (Poly.eval p [| 1.0; 1.0 |])

let test_chop_max_coeff () =
  let p = p2 [ ([ 1; 0 ], 1e-14); ([ 0; 1 ], 2.0) ] in
  Alcotest.(check bool) "chop drops tiny" true
    (Poly.equal (Poly.chop p) (p2 [ ([ 0; 1 ], 2.0) ]));
  Alcotest.(check (float 1e-12)) "max_coeff" 2.0 (Poly.max_coeff p)

let test_to_string () =
  let p = p2 [ ([ 2; 0 ], 1.5); ([ 0; 1 ], -2.0); ([ 0; 0 ], 1.0) ] in
  Alcotest.(check string) "printing" "1 - 2*x1 + 1.5*x0^2" (Poly.to_string p)

let test_of_string () =
  let p = Poly.of_string 2 "1.5*x0^2 - 2*x1 + 3" in
  Alcotest.(check bool) "basic" true
    (Poly.equal p (p2 [ ([ 2; 0 ], 1.5); ([ 0; 1 ], -2.0); ([ 0; 0 ], 3.0) ]));
  let q = Poly.of_string 2 "(x0 + x1)^2" in
  Alcotest.(check bool) "parenthesized power" true
    (Poly.equal q (p2 [ ([ 2; 0 ], 1.0); ([ 1; 1 ], 2.0); ([ 0; 2 ], 1.0) ]));
  let r = Poly.of_string ~names:[| "v"; "theta" |] 2 "-v*theta + 2e-1" in
  Alcotest.(check (float 1e-12)) "custom names + scientific" (-5.8)
    (Poly.eval r [| 2.0; 3.0 |]);
  Alcotest.check_raises "unknown variable"
    (Invalid_argument "Poly.of_string: unknown variable y") (fun () ->
      ignore (Poly.of_string 2 "y + 1"));
  (match Poly.of_string 2 "x0 + " with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "must reject dangling operator")

(* --- Property tests ----------------------------------------------------- *)

let poly_gen =
  let open QCheck.Gen in
  let term = pair (pair (int_bound 3) (int_bound 3)) (float_bound_inclusive 4.0) in
  list_size (int_bound 6) term
  |> map (fun terms ->
         Poly.of_terms 2 (List.map (fun ((i, j), c) -> (mono [ i; j ], c)) terms))

let arb_poly = QCheck.make ~print:Poly.to_string poly_gen

let arb_point =
  QCheck.make
    QCheck.Gen.(pair (float_bound_inclusive 2.0) (float_bound_inclusive 2.0))

let prop_ring_distributive =
  QCheck.Test.make ~name:"distributivity p(q+r) = pq + pr" ~count:200
    (QCheck.triple arb_poly arb_poly arb_poly)
    (fun (p, q, r) ->
      Poly.approx_equal ~tol:1e-6
        (Poly.mul p (Poly.add q r))
        (Poly.add (Poly.mul p q) (Poly.mul p r)))

let prop_mul_commutative =
  QCheck.Test.make ~name:"multiplication commutes" ~count:200 (QCheck.pair arb_poly arb_poly)
    (fun (p, q) -> Poly.approx_equal (Poly.mul p q) (Poly.mul q p))

let prop_eval_homomorphism =
  QCheck.Test.make ~name:"eval is a ring homomorphism" ~count:200
    (QCheck.triple arb_poly arb_poly arb_point)
    (fun (p, q, (x, y)) ->
      let pt = [| x; y |] in
      let lhs = Poly.eval (Poly.mul p q) pt and rhs = Poly.eval p pt *. Poly.eval q pt in
      Float.abs (lhs -. rhs) <= 1e-6 *. (1.0 +. Float.abs rhs))

let prop_derivative_linear =
  QCheck.Test.make ~name:"partial is linear" ~count:200 (QCheck.pair arb_poly arb_poly)
    (fun (p, q) ->
      Poly.approx_equal
        (Poly.partial 0 (Poly.add p q))
        (Poly.add (Poly.partial 0 p) (Poly.partial 0 q)))

let prop_leibniz =
  QCheck.Test.make ~name:"Leibniz rule d(pq) = p dq + q dp" ~count:200
    (QCheck.pair arb_poly arb_poly)
    (fun (p, q) ->
      Poly.approx_equal ~tol:1e-6
        (Poly.partial 1 (Poly.mul p q))
        (Poly.add (Poly.mul p (Poly.partial 1 q)) (Poly.mul q (Poly.partial 1 p))))

let arb_mono =
  QCheck.make
    QCheck.Gen.(
      pair (int_bound 4) (int_bound 4) |> map (fun (i, j) -> mono [ i; j ]))

let prop_mono_mul_degree =
  QCheck.Test.make ~name:"deg(m*n) = deg m + deg n" ~count:200 (QCheck.pair arb_mono arb_mono)
    (fun (a, b) -> M.degree (M.mul a b) = M.degree a + M.degree b)

let prop_mono_divide_mul =
  QCheck.Test.make ~name:"(m*n)/n = m" ~count:200 (QCheck.pair arb_mono arb_mono)
    (fun (a, b) ->
      match M.divide (M.mul a b) b with Some q -> M.equal q a | None -> false)

let prop_parse_roundtrip =
  (* to_string prints with %g (6 significant digits), so the roundtrip is
     exact only to that precision. *)
  QCheck.Test.make ~name:"of_string (to_string p) = p" ~count:200 arb_poly (fun p ->
      let tol = 1e-5 *. (1.0 +. Poly.max_coeff p) in
      Poly.approx_equal ~tol (Poly.of_string 2 (Poly.to_string p)) p)

let prop_shift_inverse =
  QCheck.Test.make ~name:"shift by c then -c is identity" ~count:100
    (QCheck.pair arb_poly arb_point)
    (fun (p, (cx, cy)) ->
      Poly.approx_equal ~tol:1e-5 (Poly.shift (Poly.shift p [| cx; cy |]) [| -.cx; -.cy |]) p)

let suite =
  [
    Alcotest.test_case "monomial basics" `Quick test_monomial_basics;
    Alcotest.test_case "monomial enumeration" `Quick test_monomial_enumeration;
    Alcotest.test_case "monomial order" `Quick test_monomial_order_consistency;
    Alcotest.test_case "poly arithmetic" `Quick test_poly_arith;
    Alcotest.test_case "poly cancellation" `Quick test_poly_cancellation;
    Alcotest.test_case "poly partial" `Quick test_poly_partial;
    Alcotest.test_case "lie derivative" `Quick test_lie_derivative;
    Alcotest.test_case "subst and shift" `Quick test_subst_shift;
    Alcotest.test_case "hessian symmetry" `Quick test_hessian_symmetry;
    Alcotest.test_case "quadratic form" `Quick test_quadratic_form;
    Alcotest.test_case "chop and max_coeff" `Quick test_chop_max_coeff;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "of_string" `Quick test_of_string;
    QCheck_alcotest.to_alcotest prop_ring_distributive;
    QCheck_alcotest.to_alcotest prop_mul_commutative;
    QCheck_alcotest.to_alcotest prop_eval_homomorphism;
    QCheck_alcotest.to_alcotest prop_derivative_linear;
    QCheck_alcotest.to_alcotest prop_leibniz;
    QCheck_alcotest.to_alcotest prop_mono_mul_degree;
    QCheck_alcotest.to_alcotest prop_mono_divide_mul;
    QCheck_alcotest.to_alcotest prop_parse_roundtrip;
    QCheck_alcotest.to_alcotest prop_shift_inverse;
  ]
