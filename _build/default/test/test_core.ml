(* End-to-end tests of the inevitability verification facade. *)

let test_default_radii_inside_domain () =
  List.iter
    (fun raw ->
      let s = Pll.scale raw in
      let radii = Pll_core.Inevitability.default_init_radii s in
      Alcotest.(check int) "arity" s.Pll.nvars (Array.length radii);
      Array.iteri
        (fun i r ->
          let bound = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
          Alcotest.(check bool) "radius within domain" true (r > 0.0 && r < bound))
        radii)
    [ Pll.table1_third; Pll.table1_fourth ]

(* The X2 sizing invariant behind the advection encoding: trajectories
   started in the default X2 must stay inside the verification box. *)
let test_reach_from_x2_stays_in_box () =
  let s = Pll.scale Pll.table1_third in
  let radii = Pll_core.Inevitability.default_init_radii s in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let theta = Pll.theta_index s in
  let rng = Random.State.make [| 23 |] in
  let checked = ref 0 in
  while !checked < 40 do
    let x0 = Array.init s.Pll.nvars (fun i -> (Random.State.float rng 2.0 -. 1.0) *. radii.(i)) in
    let q =
      Array.fold_left ( +. ) (-1.0)
        (Array.mapi (fun i v -> (v /. radii.(i)) ** 2.0) x0)
    in
    if q <= 0.0 then begin
      incr checked;
      let th = x0.(theta) in
      let m =
        if Float.abs th <= s.Pll.theta_on then Pll.off
        else if th > 0.0 then Pll.up
        else Pll.down
      in
      let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:m ~x0 ~t_max:60.0 in
      List.iter
        (fun (st : Hybrid.step) ->
          let x = st.Hybrid.state in
          Alcotest.(check bool) "theta in box" true
            (Float.abs x.(theta) <= s.Pll.theta_max +. 1e-6);
          for i = 0 to s.Pll.nvars - 2 do
            Alcotest.(check bool) "voltage in box" true (Float.abs x.(i) <= s.Pll.w_max +. 1e-6)
          done)
        r.Hybrid.arc
    end
  done

let test_verify_third_order () =
  let s = Pll.scale Pll.table1_third in
  let cert_config = { (Certificates.default_config Pll.Third) with Certificates.degree = 4 } in
  match Pll_core.Inevitability.verify ~cert_config ~max_advect_iter:30 s with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "verified" true r.Pll_core.Inevitability.verified;
      Alcotest.(check bool) "positive level" true
        (r.Pll_core.Inevitability.invariant.Certificates.beta > 0.0);
      (* Times are recorded for every Table-2 step. *)
      Alcotest.(check bool) "invariant time recorded" true
        (r.Pll_core.Inevitability.times.Pll_core.Inevitability.attractive_invariant_s > 0.0);
      (* The report pretty-printer works. *)
      let str = Format.asprintf "%a" Pll_core.Inevitability.pp_report r in
      Alcotest.(check bool) "report mentions verification" true
        (String.length str > 100)

let suite =
  [
    Alcotest.test_case "default radii sane" `Quick test_default_radii_inside_domain;
    Alcotest.test_case "reach from X2 stays in box" `Slow test_reach_from_x2_stays_in_box;
    Alcotest.test_case "verify third order end-to-end" `Slow test_verify_third_order;
  ]
