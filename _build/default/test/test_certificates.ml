(* Tests of the certificate machinery: multiple Lyapunov search, level
   maximization, escape certificates and figure extraction.

   The heavy searches are shared through a lazily computed degree-4
   attractive invariant of the third-order PLL. *)

let s3 = lazy (Pll.scale Pll.table1_third)

let cfg4 =
  lazy { (Certificates.default_config Pll.Third) with Certificates.degree = 4 }

let ai3 =
  lazy
    (match Certificates.attractive_invariant ~config:(Lazy.force cfg4) (Lazy.force s3) with
    | Ok ai -> ai
    | Error e -> failwith ("attractive_invariant failed: " ^ e))

let test_default_config () =
  Alcotest.(check int) "3rd order degree" 6 (Certificates.default_config Pll.Third).Certificates.degree;
  Alcotest.(check int) "4th order degree" 4 (Certificates.default_config Pll.Fourth).Certificates.degree

let sample_in_mode s rng m =
  let n = s.Pll.nvars in
  let theta = Pll.theta_index s in
  let rec go tries =
    if tries = 0 then None
    else begin
      let x =
        Array.init n (fun i ->
            let b = if i = theta then s.Pll.theta_max else s.Pll.w_max in
            (Random.State.float rng 2.0 -. 1.0) *. b)
      in
      if List.for_all (fun g -> Poly.eval g x >= 0.0) (Pll.mode_domain s m) then Some x
      else go (tries - 1)
    end
  in
  go 500

let test_lyapunov_positivity () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let rng = Random.State.make [| 1 |] in
  for m = 0 to Pll.n_modes - 1 do
    for _ = 1 to 50 do
      match sample_in_mode s rng m with
      | None -> ()
      | Some x ->
          let nrm = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x in
          let v = Poly.eval ai.Certificates.cert.Certificates.vs.(m) x in
          Alcotest.(check bool) "V >= eps|x|^2 on domain" true (v >= (0.009 *. nrm) -. 1e-9)
    done
  done

let test_lyapunov_decrease () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let pt = Pll.nominal s in
  let rng = Random.State.make [| 2 |] in
  for m = 0 to Pll.n_modes - 1 do
    let f = Pll.flow s pt m in
    for _ = 1 to 50 do
      match sample_in_mode s rng m with
      | None -> ()
      | Some x ->
          let vdot = Poly.eval (Poly.lie_derivative ai.Certificates.cert.Certificates.vs.(m) f) x in
          Alcotest.(check bool) "dV/dt <= 0 on domain" true (vdot <= 1e-7)
    done
  done

let test_jump_non_increase () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let rng = Random.State.make [| 3 |] in
  List.iter
    (fun (src, dst, h, dir) ->
      ignore h;
      (* Sample the half-surface theta = ±theta_on with the crossing
         direction. *)
      for _ = 1 to 50 do
        let x =
          [|
            (Random.State.float rng 2.0 -. 1.0) *. s.Pll.w_max;
            (Random.State.float rng 2.0 -. 1.0) *. s.Pll.w_max;
            0.0;
          |]
        in
        let theta_star = if dst = Pll.up || src = Pll.up then s.Pll.theta_on else -.s.Pll.theta_on in
        x.(2) <- theta_star;
        if List.for_all (fun d -> Poly.eval d x >= 0.0) dir then begin
          let vs = Poly.eval ai.Certificates.cert.Certificates.vs.(src) x in
          let vd = Poly.eval ai.Certificates.cert.Certificates.vs.(dst) x in
          Alcotest.(check bool) "V_dst <= V_src at switch" true (vd <= vs +. 1e-6 *. (1.0 +. Float.abs vs))
        end
      done)
    (Pll.switching_surfaces s)

let test_level_monotone () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  Alcotest.(check bool) "certified level passes" true
    (Certificates.check_level s ai.Certificates.cert ai.Certificates.beta);
  Alcotest.(check bool) "much larger level fails" false
    (Certificates.check_level s ai.Certificates.cert (100.0 *. ai.Certificates.beta))

let test_member () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  Alcotest.(check bool) "origin inside X1" true (Certificates.member s ai [| 0.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "far point outside X1" false
    (Certificates.member s ai [| 10.0; 10.0; 10.0 |])

let test_validate_by_simulation () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  Alcotest.(check bool) "certificate sound on sampled arcs" true
    (Certificates.validate_by_simulation ~trials:10 s ai)

let test_escape_drift () =
  let n = 2 in
  let x = Poly.var n 0 and y = Poly.var n 1 in
  let disc = Poly.sub (Poly.one n) (Poly.add (Poly.mul x x) (Poly.mul y y)) in
  (match
     Certificates.find_escape ~deg:2 ~eps:0.1 ~nvars:n
       ~flow:[| Poly.one n; Poly.zero n |]
       ~domain:[ disc ] ()
   with
  | Ok (e, _) ->
      (* dE/dt = dE/dx must be <= -eps on the disc: check at samples. *)
      let dex = Poly.partial 0 e in
      List.iter
        (fun (px, py) ->
          Alcotest.(check bool) "decrease" true (Poly.eval dex [| px; py |] <= -0.099))
        [ (0.0, 0.0); (0.5, 0.5); (-0.9, 0.0) ]
  | Error m -> Alcotest.fail m)

let test_escape_impossible () =
  (* A region containing a stable equilibrium cannot be escaped. *)
  let n = 2 in
  let x = Poly.var n 0 and y = Poly.var n 1 in
  let disc = Poly.sub (Poly.one n) (Poly.add (Poly.mul x x) (Poly.mul y y)) in
  let flow = [| Poly.sub y x; Poly.sub (Poly.neg x) y |] in
  match Certificates.find_escape ~deg:4 ~eps:0.1 ~nvars:n ~flow ~domain:[ disc ] () with
  | Ok _ -> Alcotest.fail "unsound escape certificate"
  | Error _ -> ()

let test_level_curve_circle () =
  (* V = x0^2 + x1^2, beta = 4: the level curve is the radius-2 circle. *)
  let v = Poly.of_terms 2 [ (Poly.Monomial.of_exponents [ 2; 0 ], 1.0); (Poly.Monomial.of_exponents [ 0; 2 ], 1.0) ] in
  let pts = Certificates.level_curve v ~beta:4.0 ~plane:(0, 1) ~nvars:2 ~n:8 in
  Alcotest.(check int) "all rays hit" 8 (List.length pts);
  List.iter
    (fun (a, b) ->
      Alcotest.(check (float 1e-6)) "radius 2" 2.0 (sqrt ((a *. a) +. (b *. b))))
    pts

let test_invariant_boundary_inside_box () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let pts = Certificates.invariant_boundary s ai ~plane:(0, 1) ~n:16 in
  Alcotest.(check bool) "nonempty" true (List.length pts > 0);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) "within verification box" true
        (Float.abs a <= s.Pll.w_max +. 1e-6 && Float.abs b <= s.Pll.w_max +. 1e-6))
    pts

let test_upper_bound_on_set () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let small = Advect.ellipsoid_front s ~radii:[| 0.3; 0.3; 0.3 |] in
  match Certificates.upper_bound_on_set s ai.Certificates.cert ~set:small with
  | Error e -> Alcotest.fail e
  | Ok bound ->
      Alcotest.(check bool) "positive" true (bound > 0.0);
      (* The bound must dominate sampled values of V on the set. *)
      let rng = Random.State.make [| 2 |] in
      for _ = 1 to 2000 do
        let x = Array.init 3 (fun _ -> (Random.State.float rng 0.6) -. 0.3) in
        if Poly.eval small x <= 0.0 then begin
          let th = x.(2) in
          let m =
            if Float.abs th <= s.Pll.theta_on then Pll.off
            else if th > 0.0 then Pll.up
            else Pll.down
          in
          let v = Poly.eval ai.Certificates.cert.Certificates.vs.(m) x in
          Alcotest.(check bool) "bound dominates" true (v <= bound +. 1e-6)
        end
      done

let test_time_to_lock_bound () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let beta = ai.Certificates.beta in
  let t1 = Certificates.time_to_lock_bound s ai ~from_level:(1.5 *. beta) in
  let t2 = Certificates.time_to_lock_bound s ai ~from_level:(3.0 *. beta) in
  Alcotest.(check bool) "finite" true (Float.is_finite t1 && Float.is_finite t2);
  Alcotest.(check bool) "monotone in level" true (t2 >= t1);
  Alcotest.(check (float 1e-9)) "zero below beta" 0.0
    (Certificates.time_to_lock_bound s ai ~from_level:(0.5 *. beta))

let suite =
  [
    Alcotest.test_case "default config degrees" `Quick test_default_config;
    Alcotest.test_case "upper bound on set" `Slow test_upper_bound_on_set;
    Alcotest.test_case "time to lock bound" `Slow test_time_to_lock_bound;
    Alcotest.test_case "escape exists for drift" `Quick test_escape_drift;
    Alcotest.test_case "escape impossible at equilibrium" `Quick test_escape_impossible;
    Alcotest.test_case "level curve of circle" `Quick test_level_curve_circle;
    Alcotest.test_case "V positive on domains" `Slow test_lyapunov_positivity;
    Alcotest.test_case "V decreases along flows" `Slow test_lyapunov_decrease;
    Alcotest.test_case "V non-increasing at jumps" `Slow test_jump_non_increase;
    Alcotest.test_case "level check monotone" `Slow test_level_monotone;
    Alcotest.test_case "membership" `Slow test_member;
    Alcotest.test_case "simulation validation" `Slow test_validate_by_simulation;
    Alcotest.test_case "invariant boundary in box" `Slow test_invariant_boundary_inside_box;
  ]
