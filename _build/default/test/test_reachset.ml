(* Tests of the reach-set baseline. *)

let s3 = lazy (Pll.scale Pll.table1_third)

let small_box : Interval.Box.t =
  [| Interval.make (-0.3) 0.3; Interval.make (-0.3) 0.3; Interval.make (-0.2) 0.2 |]

let test_interval_small_box_converges () =
  let s = Lazy.force s3 in
  let r = Reachset.interval_analysis ~dt:0.005 ~t_max:40.0 ~lock_tol:0.15 s ~init:small_box ~mode0:Pll.off in
  (* A small box near lock should be driven into the lock region without
     splitting explosion. *)
  Alcotest.(check bool) "some work done" true (r.Reachset.iterations > 10);
  Alcotest.(check bool) "set ops counted" true (r.Reachset.set_ops > 0)

let test_interval_large_box_expensive () =
  let s = Lazy.force s3 in
  let init : Interval.Box.t =
    [| Interval.make (-1.0) 1.0; Interval.make (-1.0) 1.0; Interval.make (-0.5) 0.5 |]
  in
  let r = Reachset.interval_analysis ~dt:0.01 ~t_max:60.0 s ~init ~mode0:Pll.off in
  (* The big box either diverges (wrapping effect) or pays many set
     operations — the paper's point about reach-set methods. *)
  Alcotest.(check bool) "expensive or inconclusive" true
    ((not r.Reachset.converged) || r.Reachset.set_ops > 500)

let test_sampling_counts_transitions () =
  let s = Lazy.force s3 in
  let init : Interval.Box.t =
    [| Interval.make (-1.0) 1.0; Interval.make (-1.0) 1.0; Interval.make (-0.5) 0.5 |]
  in
  let r = Reachset.sampling_analysis ~grid:3 ~t_max:100.0 s ~init in
  Alcotest.(check int) "3^3 trajectories" 27 r.Reachset.n_trajectories;
  Alcotest.(check bool) "all locked" true r.Reachset.all_locked;
  Alcotest.(check bool) "transitions observed" true (r.Reachset.total_transitions > 0);
  Alcotest.(check bool) "mean consistent" true
    (Float.abs
       ((r.Reachset.mean_transitions *. 27.0) -. float_of_int r.Reachset.total_transitions)
    < 1e-6)

let suite =
  [
    Alcotest.test_case "interval small box" `Slow test_interval_small_box_converges;
    Alcotest.test_case "interval large box expensive" `Slow test_interval_large_box_expensive;
    Alcotest.test_case "sampling transition counts" `Slow test_sampling_counts_transitions;
  ]
