(* Unit and property tests for the dense linear algebra kernel. *)

module Mat = Linalg.Mat
module Vec = Linalg.Vec

let check_float = Alcotest.(check (float 1e-9))

(* --- Vec ------------------------------------------------------------ *)

let test_vec_ops () =
  let x = Vec.of_list [ 1.0; 2.0; 3.0 ] and y = Vec.of_list [ 4.0; -1.0; 0.5 ] in
  check_float "dot" 3.5 (Vec.dot x y);
  Alcotest.(check bool) "add" true (Vec.approx_equal (Vec.add x y) (Vec.of_list [ 5.0; 1.0; 3.5 ]));
  Alcotest.(check bool) "sub" true (Vec.approx_equal (Vec.sub x y) (Vec.of_list [ -3.0; 3.0; 2.5 ]));
  check_float "norm2" (sqrt 14.0) (Vec.norm2 x);
  check_float "norm_inf" 4.0 (Vec.norm_inf y);
  Alcotest.(check int) "max_abs_index" 0 (Vec.max_abs_index y)

let test_vec_axpy () =
  let x = Vec.of_list [ 1.0; 2.0 ] in
  let y = Vec.of_list [ 10.0; 20.0 ] in
  Vec.axpy 2.0 x y;
  Alcotest.(check bool) "axpy" true (Vec.approx_equal y (Vec.of_list [ 12.0; 24.0 ]))

let test_vec_dim_mismatch () =
  Alcotest.check_raises "dot mismatch" (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)")
    (fun () -> ignore (Vec.dot [| 1.0; 2.0 |] [| 1.0; 2.0; 3.0 |]))

(* --- Mat basics ------------------------------------------------------ *)

let test_mat_mul () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let b = Mat.of_arrays [| [| 5.0; 6.0 |]; [| 7.0; 8.0 |] |] in
  let c = Mat.mul a b in
  Alcotest.(check bool) "product" true
    (Mat.approx_equal c (Mat.of_arrays [| [| 19.0; 22.0 |]; [| 43.0; 50.0 |] |]))

let test_mat_transpose_identities () =
  let a = Mat.of_arrays [| [| 1.0; 2.0; 3.0 |]; [| 4.0; 5.0; 6.0 |] |] in
  let att = Mat.transpose (Mat.transpose a) in
  Alcotest.(check bool) "transpose involution" true (Mat.approx_equal a att);
  let x = [| 1.0; -1.0; 2.0 |] in
  Alcotest.(check bool) "tmul_vec = transpose mul_vec" true
    (Vec.approx_equal (Mat.mul_vec a x) (Mat.tmul_vec (Mat.transpose a) x))

let test_mat_trace_frob () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  check_float "trace" 5.0 (Mat.trace a);
  check_float "frob self" (4.0 +. 1.0 +. 1.0 +. 9.0) (Mat.frob_dot a a)

(* --- Solvers ---------------------------------------------------------- *)

let random_spd rng n =
  let b = Mat.init n n (fun _ _ -> Random.State.float rng 2.0 -. 1.0) in
  Mat.add (Mat.mul b (Mat.transpose b)) (Mat.scale (float_of_int n *. 0.1) (Mat.identity n))

let test_cholesky_roundtrip () =
  let rng = Random.State.make [| 7 |] in
  for n = 1 to 8 do
    let a = random_spd rng n in
    match Mat.cholesky a with
    | None -> Alcotest.fail "SPD matrix must factor"
    | Some l ->
        let reconstructed = Mat.mul l (Mat.transpose l) in
        Alcotest.(check bool) "L L' = A" true (Mat.approx_equal ~tol:1e-8 reconstructed a)
  done

let test_cholesky_rejects_indefinite () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 1.0 |] |] in
  Alcotest.(check bool) "indefinite rejected" true (Mat.cholesky a = None)

let test_chol_solve () =
  let rng = Random.State.make [| 11 |] in
  let a = random_spd rng 6 in
  let x_true = Array.init 6 (fun i -> float_of_int i -. 2.5) in
  let b = Mat.mul_vec a x_true in
  match Mat.cholesky a with
  | None -> Alcotest.fail "factor"
  | Some l ->
      let x = Mat.chol_solve l b in
      Alcotest.(check bool) "solution" true (Vec.approx_equal ~tol:1e-7 x x_true)

let test_gauss_solve () =
  let a = Mat.of_arrays [| [| 0.0; 2.0; 1.0 |]; [| 1.0; -1.0; 0.0 |]; [| 3.0; 0.0; -1.0 |] |] in
  let x_true = [| 1.0; 2.0; -1.0 |] in
  let b = Mat.mul_vec a x_true in
  let x = Mat.solve a b in
  Alcotest.(check bool) "pivoting solve" true (Vec.approx_equal ~tol:1e-9 x x_true)

let test_solve_singular () =
  let a = Mat.of_arrays [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Mat.solve: singular matrix") (fun () ->
      ignore (Mat.solve a [| 1.0; 1.0 |]))

let test_inverse () =
  let a = Mat.of_arrays [| [| 4.0; 7.0 |]; [| 2.0; 6.0 |] |] in
  let ai = Mat.inverse a in
  Alcotest.(check bool) "A * A^-1 = I" true
    (Mat.approx_equal ~tol:1e-9 (Mat.mul a ai) (Mat.identity 2))

let test_lstsq () =
  (* Overdetermined consistent system. *)
  let a = Mat.of_arrays [| [| 1.0; 0.0 |]; [| 0.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let x_true = [| 2.0; -1.0 |] in
  let b = Mat.mul_vec a x_true in
  let x = Mat.lstsq a b in
  Alcotest.(check bool) "least squares" true (Vec.approx_equal ~tol:1e-5 x x_true)

(* --- Eigenvalues ------------------------------------------------------ *)

let test_sym_eig_diag () =
  let a = Mat.diag [| 3.0; 1.0; 2.0 |] in
  let w, _ = Mat.sym_eig a in
  Alcotest.(check bool) "sorted eigenvalues" true (Vec.approx_equal w [| 1.0; 2.0; 3.0 |])

let test_sym_eig_reconstruction () =
  let rng = Random.State.make [| 3 |] in
  for n = 2 to 7 do
    let a = Mat.symmetrize (Mat.init n n (fun _ _ -> Random.State.float rng 2.0 -. 1.0)) in
    let w, v = Mat.sym_eig a in
    (* A = V diag(w) V' *)
    let reconstructed = Mat.mul v (Mat.mul (Mat.diag w) (Mat.transpose v)) in
    Alcotest.(check bool) "eigendecomposition" true (Mat.approx_equal ~tol:1e-7 reconstructed a);
    (* V orthogonal *)
    Alcotest.(check bool) "orthogonal" true
      (Mat.approx_equal ~tol:1e-8 (Mat.mul (Mat.transpose v) v) (Mat.identity n))
  done

let test_qr_roundtrip () =
  let rng = Random.State.make [| 13 |] in
  List.iter
    (fun (m, n) ->
      let a = Mat.init m n (fun _ _ -> Random.State.float rng 2.0 -. 1.0) in
      let q, r = Mat.qr a in
      Alcotest.(check bool) "QR = A" true (Mat.approx_equal ~tol:1e-9 (Mat.mul q r) a);
      Alcotest.(check bool) "Q'Q = I" true
        (Mat.approx_equal ~tol:1e-9 (Mat.mul (Mat.transpose q) q) (Mat.identity n));
      (* R upper triangular *)
      let upper = ref true in
      for i = 0 to n - 1 do
        for j = 0 to i - 1 do
          if Float.abs (Mat.get r i j) > 1e-12 then upper := false
        done
      done;
      Alcotest.(check bool) "R upper" true !upper)
    [ (3, 3); (5, 3); (8, 8); (10, 2) ]

let test_qr_rejects_wide () =
  Alcotest.check_raises "wide matrix" (Invalid_argument "Mat.qr: needs rows >= cols")
    (fun () -> ignore (Mat.qr (Mat.create 2 3)))

let test_expm_diagonal () =
  let a = Mat.diag [| 1.0; -2.0 |] in
  let e = Mat.expm a in
  check_float "e^1" (exp 1.0) (Mat.get e 0 0);
  check_float "e^-2" (exp (-2.0)) (Mat.get e 1 1);
  check_float "off-diagonal" 0.0 (Mat.get e 0 1)

let test_expm_rotation () =
  (* exp(t·[[0,-1],[1,0]]) is a rotation by t. *)
  let t = 0.7 in
  let a = Mat.of_arrays [| [| 0.0; -.t |]; [| t; 0.0 |] |] in
  let e = Mat.expm a in
  check_float "cos" (cos t) (Mat.get e 0 0);
  check_float "sin" (sin t) (Mat.get e 1 0)

let test_expm_nilpotent () =
  (* exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly. *)
  let a = Mat.of_arrays [| [| 0.0; 1.0 |]; [| 0.0; 0.0 |] |] in
  let e = Mat.expm a in
  Alcotest.(check bool) "unipotent" true
    (Mat.approx_equal ~tol:1e-12 e (Mat.of_arrays [| [| 1.0; 1.0 |]; [| 0.0; 1.0 |] |]))

let test_expm_large_norm () =
  (* Scaling-and-squaring must handle |A| >> 1: exp(diag(5, -5)). *)
  let e = Mat.expm (Mat.diag [| 5.0; -5.0 |]) in
  Alcotest.(check bool) "e^5" true (Float.abs (Mat.get e 0 0 -. exp 5.0) < 1e-6 *. exp 5.0);
  Alcotest.(check bool) "e^-5" true (Float.abs (Mat.get e 1 1 -. exp (-5.0)) < 1e-9)

let test_min_eig_known () =
  let a = Mat.of_arrays [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  check_float "min eig" 1.0 (Mat.min_eig a);
  Alcotest.(check bool) "psd" true (Mat.is_psd a)

(* --- Property tests --------------------------------------------------- *)

let mat_gen n =
  QCheck.Gen.(
    array_size (return (n * n)) (float_bound_inclusive 2.0)
    |> map (fun data -> { Mat.rows = n; cols = n; data }))

let prop_cholesky_psd =
  QCheck.Test.make ~name:"chol succeeds => matrix is PSD" ~count:100
    (QCheck.make (mat_gen 4))
    (fun m ->
      let a = Mat.add (Mat.symmetrize m) (Mat.scale 0.0 (Mat.identity 4)) in
      match Mat.cholesky a with
      | None -> true
      | Some _ -> Mat.min_eig a >= -1e-8)

let prop_expm_inverse =
  QCheck.Test.make ~name:"expm(A) · expm(-A) = I" ~count:60 (QCheck.make (mat_gen 3))
    (fun a ->
      let e = Mat.mul (Mat.expm a) (Mat.expm (Mat.scale (-1.0) a)) in
      Mat.approx_equal ~tol:1e-7 e (Mat.identity 3))

let prop_qr_orthonormal =
  QCheck.Test.make ~name:"QR: Q'Q = I and QR = A" ~count:60 (QCheck.make (mat_gen 4))
    (fun a ->
      let q, r = Mat.qr a in
      Mat.approx_equal ~tol:1e-8 (Mat.mul (Mat.transpose q) q) (Mat.identity 4)
      && Mat.approx_equal ~tol:1e-8 (Mat.mul q r) a)

let prop_eig_trace =
  QCheck.Test.make ~name:"sum of eigenvalues = trace" ~count:60 (QCheck.make (mat_gen 4))
    (fun m ->
      let a = Mat.symmetrize m in
      let w, _ = Mat.sym_eig a in
      Float.abs (Array.fold_left ( +. ) 0.0 w -. Mat.trace a)
      <= 1e-8 *. (1.0 +. Float.abs (Mat.trace a)))

let prop_solve_residual =
  QCheck.Test.make ~name:"solve has small residual" ~count:100
    (QCheck.make (QCheck.Gen.pair (mat_gen 5) (QCheck.Gen.array_size (QCheck.Gen.return 5) (QCheck.Gen.float_bound_inclusive 3.0))))
    (fun (a, b) ->
      match Mat.solve a b with
      | exception Failure _ -> true
      | x ->
          let r = Vec.sub (Mat.mul_vec a x) b in
          Vec.norm2 r <= 1e-6 *. (1.0 +. Vec.norm2 b) *. (1.0 +. Mat.norm_inf a) *. 100.0)

let suite =
  [
    Alcotest.test_case "vec ops" `Quick test_vec_ops;
    Alcotest.test_case "vec axpy" `Quick test_vec_axpy;
    Alcotest.test_case "vec dim mismatch" `Quick test_vec_dim_mismatch;
    Alcotest.test_case "mat mul" `Quick test_mat_mul;
    Alcotest.test_case "mat transpose" `Quick test_mat_transpose_identities;
    Alcotest.test_case "trace and frobenius" `Quick test_mat_trace_frob;
    Alcotest.test_case "cholesky roundtrip" `Quick test_cholesky_roundtrip;
    Alcotest.test_case "cholesky indefinite" `Quick test_cholesky_rejects_indefinite;
    Alcotest.test_case "cholesky solve" `Quick test_chol_solve;
    Alcotest.test_case "gauss solve with pivoting" `Quick test_gauss_solve;
    Alcotest.test_case "singular detection" `Quick test_solve_singular;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "least squares" `Quick test_lstsq;
    Alcotest.test_case "qr roundtrip" `Quick test_qr_roundtrip;
    Alcotest.test_case "qr rejects wide" `Quick test_qr_rejects_wide;
    Alcotest.test_case "expm diagonal" `Quick test_expm_diagonal;
    Alcotest.test_case "expm rotation" `Quick test_expm_rotation;
    Alcotest.test_case "expm nilpotent" `Quick test_expm_nilpotent;
    Alcotest.test_case "expm large norm" `Quick test_expm_large_norm;
    Alcotest.test_case "eig of diagonal" `Quick test_sym_eig_diag;
    Alcotest.test_case "eig reconstruction" `Quick test_sym_eig_reconstruction;
    Alcotest.test_case "min eig known" `Quick test_min_eig_known;
    QCheck_alcotest.to_alcotest prop_cholesky_psd;
    QCheck_alcotest.to_alcotest prop_solve_residual;
    QCheck_alcotest.to_alcotest prop_expm_inverse;
    QCheck_alcotest.to_alcotest prop_qr_orthonormal;
    QCheck_alcotest.to_alcotest prop_eig_trace;
  ]
