(* Tests of the bounded advection machinery (Algorithm 1). *)

let s3 = lazy (Pll.scale Pll.table1_third)

let cfg4 = lazy { (Certificates.default_config Pll.Third) with Certificates.degree = 4 }

let ai3 =
  lazy
    (match Certificates.attractive_invariant ~config:(Lazy.force cfg4) (Lazy.force s3) with
    | Ok ai -> ai
    | Error e -> failwith ("attractive_invariant failed: " ^ e))

let test_ellipsoid_front () =
  let s = Lazy.force s3 in
  let f = Advect.ellipsoid_front s ~radii:[| 2.0; 1.0; 0.5 |] in
  Alcotest.(check (float 1e-9)) "center" (-1.0) (Poly.eval f [| 0.0; 0.0; 0.0 |]);
  Alcotest.(check (float 1e-9)) "on boundary" 0.0 (Poly.eval f [| 2.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "outside" true (Poly.eval f [| 0.0; 0.0; 1.0 |] > 0.0)

let test_advect_step_sound () =
  let s = Lazy.force s3 in
  let pt = Pll.nominal s in
  let init = Advect.ellipsoid_front s ~radii:[| 2.0; 2.0; 1.6 |] in
  match Advect.advect_step s pt init with
  | Error e -> Alcotest.fail e
  | Ok st ->
      Alcotest.(check bool) "gamma positive" true (st.Advect.gamma > 0.0);
      Alcotest.(check bool) "front centered" true (Poly.eval st.Advect.front (Pll.equilibrium s) < 0.0);
      Alcotest.(check bool) "numerically sound" true
        (Advect.validate_step_by_simulation ~samples:100 s pt
           ~h:Advect.default_config.Advect.h ~old_front:init st.Advect.front)

let test_containment_checks () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  (* A tiny ball around the origin is inside X1; the huge outer ellipsoid
     is not. *)
  let tiny = Advect.ellipsoid_front s ~radii:[| 0.05; 0.05; 0.05 |] in
  let huge = Advect.ellipsoid_front s ~radii:[| 2.0; 2.0; 1.6 |] in
  Alcotest.(check bool) "tiny inside" true (Advect.contained_in_invariant s ai tiny);
  Alcotest.(check bool) "huge not inside" false (Advect.contained_in_invariant s ai huge)

let test_taylor_map_agrees_for_small_h () =
  (* For small h the Taylor and Exact pull-backs must nearly agree. *)
  let s = Lazy.force s3 in
  let pt = Pll.nominal s in
  let init = Advect.ellipsoid_front s ~radii:[| 2.0; 2.0; 1.6 |] in
  let run map =
    let config =
      { Advect.default_config with Advect.h = 0.02; map; gamma_bisect = 2; gamma_max = 0.05 }
    in
    Advect.advect_step ~config s pt init
  in
  match (run Advect.Exact, run Advect.Taylor) with
  | Ok a, Ok b ->
      (* Both produce sound fronts; compare their values at sample points. *)
      List.iter
        (fun x ->
          let va = Poly.eval a.Advect.front x and vb = Poly.eval b.Advect.front x in
          Alcotest.(check bool) "same sign structure" true (Float.abs (va -. vb) < 0.5))
        [ [| 0.0; 0.0; 0.0 |]; [| 1.0; 0.5; 0.2 |]; [| -1.0; 1.0; -0.5 |] ]
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_caps_tighten_containment () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  (* A front that spills outside X1 only at high-V states: with a cap at
     a level just above beta, the capped containment check passes while
     the uncapped one fails. *)
  let front = Advect.ellipsoid_front s ~radii:[| 1.2; 1.2; 1.0 |] in
  let uncapped = Advect.contained_in_invariant s ai front in
  let vmax = 1.02 *. ai.Certificates.beta in
  let caps =
    Array.map
      (fun v -> Poly.sub (Poly.const 3 vmax) v)
      ai.Certificates.cert.Certificates.vs
  in
  let capped = Advect.contained_in_invariant ~caps s ai front in
  Alcotest.(check bool) "uncapped fails" false uncapped;
  (* The capped check restricts to {V <= 1.02*beta}, whose distance to
     {V <= beta} is small; it may still fail for thin margins, but it must
     never be *harder* than the uncapped check. *)
  Alcotest.(check bool) "capped no harder" true (capped || not uncapped)

let test_run_verifies () =
  let s = Lazy.force s3 and ai = Lazy.force ai3 in
  let init = Advect.ellipsoid_front s ~radii:[| 1.8; 1.8; 1.5 |] in
  let r = Advect.run ~max_iter:25 s ai ~init in
  Alcotest.(check bool) "P2 verified (advection or escape)" true r.Advect.verified;
  Alcotest.(check bool) "made progress" true (r.Advect.iterations >= 1)

let suite =
  [
    Alcotest.test_case "ellipsoid front" `Quick test_ellipsoid_front;
    Alcotest.test_case "single step soundness" `Slow test_advect_step_sound;
    Alcotest.test_case "containment checks" `Slow test_containment_checks;
    Alcotest.test_case "taylor vs exact maps" `Slow test_taylor_map_agrees_for_small_h;
    Alcotest.test_case "caps never harden containment" `Slow test_caps_tighten_containment;
    Alcotest.test_case "algorithm 1 verifies P2" `Slow test_run_verifies;
  ]
