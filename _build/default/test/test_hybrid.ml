(* Tests for the hybrid-system formalism and its simulator. *)

let p1 terms = Poly.of_terms 1 (List.map (fun (es, c) -> (Poly.Monomial.of_exponents es, c)) terms)

let p2 terms = Poly.of_terms 2 (List.map (fun (es, c) -> (Poly.Monomial.of_exponents es, c)) terms)

(* A bouncing-ball-like system: x0 = height-ish state decaying in mode 0;
   when x0 falls to 0, jump to mode 1 with x0 reset to half. *)
let two_mode_system () =
  let decay = [| p1 [ ([ 0 ], -1.0) ] |] in
  (* constant flow -1 *)
  let grow = [| p1 [ ([ 0 ], 0.0); ([ 1 ], 0.0) ] |] in
  ignore grow;
  let m0 =
    { Hybrid.mode_id = 0; mode_name = "fall"; flow = decay; invariant = [ p1 [ ([ 1 ], 1.0) ] ] }
  in
  let m1 =
    {
      Hybrid.mode_id = 1;
      mode_name = "stopped";
      flow = [| p1 [] |];
      invariant = [];
    }
  in
  let tr =
    {
      Hybrid.src = 0;
      dst = 1;
      guard = [ p1 [ ([ 1 ], -1.0); ([ 0 ], 0.2) ] ];
      (* -x + 0.2 >= 0, i.e. x <= 0.2 *)
      urgent_when = Some (p1 [ ([ 1 ], -1.0); ([ 0 ], 0.2) ]);
      reset = [| p1 [ ([ 0 ], 0.5) ] |];
    }
  in
  Hybrid.make ~nvars:1 ~modes:[ m0; m1 ] ~transitions:[ tr ] ()

let test_make_validation () =
  Alcotest.check_raises "bad mode order"
    (Invalid_argument "Hybrid.make: mode ids must be 0..n-1 in order") (fun () ->
      ignore
        (Hybrid.make ~nvars:1
           ~modes:
             [ { Hybrid.mode_id = 1; mode_name = "x"; flow = [| p1 [] |]; invariant = [] } ]
           ~transitions:[] ()))

let test_identity_reset () =
  let id = Hybrid.identity_reset 3 in
  let x = [| 1.0; -2.0; 0.5 |] in
  Array.iteri
    (fun i p -> Alcotest.(check (float 1e-12)) "identity" x.(i) (Poly.eval p x))
    id

let test_rk4_exponential () =
  (* dx = -x from 1: after t = 1, x = e^{-1}. *)
  let f = [| p1 [ ([ 1 ], -1.0) ] |] in
  let x = ref [| 1.0 |] in
  let steps = 100 in
  for _ = 1 to steps do
    x := Hybrid.rk4_step f (1.0 /. float_of_int steps) !x
  done;
  Alcotest.(check (float 1e-8)) "e^-1" (exp (-1.0)) !x.(0)

let test_rk4_rotation () =
  (* Rotation preserves the norm; RK4 should too, to high order. *)
  let f = [| p2 [ ([ 0; 1 ], -1.0) ]; p2 [ ([ 1; 0 ], 1.0) ] |] in
  let x = ref [| 1.0; 0.0 |] in
  for _ = 1 to 628 do
    x := Hybrid.rk4_step f 0.01 !x
  done;
  let norm = sqrt ((!x.(0) *. !x.(0)) +. (!x.(1) *. !x.(1))) in
  Alcotest.(check (float 1e-6)) "norm preserved" 1.0 norm

let test_simulation_jump () =
  let sys = two_mode_system () in
  let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:0 ~x0:[| 1.0 |] ~t_max:2.0 in
  Alcotest.(check int) "one jump" 1 r.Hybrid.jumps;
  Alcotest.(check int) "final mode" 1 r.Hybrid.final.Hybrid.mode_at;
  Alcotest.(check (float 1e-3)) "reset applied" 0.5 r.Hybrid.final.Hybrid.state.(0);
  Alcotest.(check bool) "not blocked" false r.Hybrid.blocked;
  (* The crossing happened near x = 0.2, i.e. t ≈ 0.8. *)
  let crossing =
    List.find (fun (st : Hybrid.step) -> st.Hybrid.j = 1) r.Hybrid.arc
  in
  Alcotest.(check (float 1e-2)) "crossing time" 0.8 crossing.Hybrid.t

let test_hybrid_time_domain_monotone () =
  let sys = two_mode_system () in
  let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:0 ~x0:[| 1.0 |] ~t_max:2.0 in
  (* (t, j) must be lexicographically non-decreasing along the arc. *)
  let ok = ref true in
  let _ =
    List.fold_left
      (fun (pt, pj) (st : Hybrid.step) ->
        if st.Hybrid.t < pt -. 1e-12 then ok := false;
        if st.Hybrid.t = pt && st.Hybrid.j < pj then ok := false;
        (st.Hybrid.t, st.Hybrid.j))
      (0.0, 0) r.Hybrid.arc
  in
  Alcotest.(check bool) "hybrid time domain monotone" true !ok

let test_equilibrium () =
  let s = Pll.scale Pll.table1_third in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  Alcotest.(check bool) "origin is equilibrium of off mode" true
    (Hybrid.is_equilibrium sys Pll.off [| 0.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "origin is not equilibrium of up mode" false
    (Hybrid.is_equilibrium sys Pll.up [| 0.0; 0.0; 0.0 |])

let test_flow_set_membership () =
  let s = Pll.scale Pll.table1_third in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  Alcotest.(check bool) "inside off" true (Hybrid.in_flow_set sys Pll.off [| 0.0; 0.0; 0.5 |]);
  Alcotest.(check bool) "outside off" false
    (Hybrid.in_flow_set sys Pll.off [| 0.0; 0.0; 1.5 |])

(* A Zeno-like two-mode chatterer: modes bounce the state across x = 0 with
   identity resets; max_jumps must bound the simulation. *)
let test_max_jumps_cutoff () =
  let flow_right = [| p1 [ ([ 0 ], 1.0) ] |] in
  let flow_left = [| p1 [ ([ 0 ], -1.0) ] |] in
  let m0 = { Hybrid.mode_id = 0; mode_name = "right"; flow = flow_right; invariant = [] } in
  let m1 = { Hybrid.mode_id = 1; mode_name = "left"; flow = flow_left; invariant = [] } in
  let cross p = Some p in
  let sys =
    Hybrid.make ~nvars:1 ~modes:[ m0; m1 ]
      ~transitions:
        [
          {
            Hybrid.src = 0;
            dst = 1;
            guard = [ p1 [ ([ 1 ], 1.0); ([ 0 ], -0.1) ] ];
            urgent_when = cross (p1 [ ([ 1 ], 1.0); ([ 0 ], -0.1) ]);
            reset = Hybrid.identity_reset 1;
          };
          {
            Hybrid.src = 1;
            dst = 0;
            guard = [ p1 [ ([ 1 ], -1.0); ([ 0 ], -0.1) ] ];
            urgent_when = cross (p1 [ ([ 1 ], -1.0); ([ 0 ], -0.1) ]);
            reset = Hybrid.identity_reset 1;
          };
        ]
      ()
  in
  let r = Hybrid.simulate ~dt:1e-3 ~max_jumps:25 sys ~mode0:0 ~x0:[| 0.0 |] ~t_max:1000.0 in
  Alcotest.(check int) "jump budget respected" 25 r.Hybrid.jumps

let test_blocked_detection () =
  (* Invariant fails, no enabled transition: the solution is blocked. *)
  let m0 =
    {
      Hybrid.mode_id = 0;
      mode_name = "doomed";
      flow = [| p1 [ ([ 0 ], 1.0) ] |];
      invariant = [ p1 [ ([ 1 ], -1.0); ([ 0 ], 1.0) ] ] (* x <= 1 *);
    }
  in
  let sys = Hybrid.make ~nvars:1 ~modes:[ m0 ] ~transitions:[] () in
  let r = Hybrid.simulate ~dt:1e-2 sys ~mode0:0 ~x0:[| 0.0 |] ~t_max:10.0 in
  Alcotest.(check bool) "blocked" true r.Hybrid.blocked;
  Alcotest.(check bool) "stopped near the boundary" true (r.Hybrid.final.Hybrid.t < 1.5)

let test_crossing_precision () =
  (* Crossing time of a linear guard under constant flow is found to
     bisection precision within the step. *)
  let m0 =
    { Hybrid.mode_id = 0; mode_name = "run"; flow = [| p1 [ ([ 0 ], 1.0) ] |]; invariant = [] }
  in
  let m1 = { Hybrid.mode_id = 1; mode_name = "done"; flow = [| p1 [] |]; invariant = [] } in
  let g = p1 [ ([ 1 ], 1.0); ([ 0 ], -0.777) ] in
  let sys =
    Hybrid.make ~nvars:1 ~modes:[ m0; m1 ]
      ~transitions:
        [ { Hybrid.src = 0; dst = 1; guard = [ g ]; urgent_when = Some g; reset = Hybrid.identity_reset 1 } ]
      ()
  in
  let r = Hybrid.simulate ~dt:0.05 sys ~mode0:0 ~x0:[| 0.0 |] ~t_max:2.0 in
  let crossing = List.find (fun (st : Hybrid.step) -> st.Hybrid.j = 1) r.Hybrid.arc in
  Alcotest.(check (float 1e-6)) "crossing state" 0.777 crossing.Hybrid.state.(0)

let suite =
  [
    Alcotest.test_case "max jumps cutoff" `Quick test_max_jumps_cutoff;
    Alcotest.test_case "blocked detection" `Quick test_blocked_detection;
    Alcotest.test_case "crossing precision" `Quick test_crossing_precision;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "identity reset" `Quick test_identity_reset;
    Alcotest.test_case "rk4 exponential" `Quick test_rk4_exponential;
    Alcotest.test_case "rk4 rotation" `Quick test_rk4_rotation;
    Alcotest.test_case "simulation with jump" `Quick test_simulation_jump;
    Alcotest.test_case "hybrid time domain" `Quick test_hybrid_time_domain_monotone;
    Alcotest.test_case "equilibrium detection" `Quick test_equilibrium;
    Alcotest.test_case "flow set membership" `Quick test_flow_set_membership;
  ]
