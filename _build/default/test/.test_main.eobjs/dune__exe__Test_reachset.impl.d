test/test_reachset.ml: Alcotest Float Interval Lazy Pll Reachset
