test/test_sos.ml: Alcotest Array Linalg List Poly Sos
