test/test_pll.ml: Alcotest Array Float Hybrid Interval List Pll Poly
