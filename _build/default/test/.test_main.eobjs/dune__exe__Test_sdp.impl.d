test/test_sdp.ml: Alcotest Array Linalg List Printf Random Sdp String
