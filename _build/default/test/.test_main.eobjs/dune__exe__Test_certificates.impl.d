test/test_certificates.ml: Advect Alcotest Array Certificates Float Lazy List Pll Poly Random
