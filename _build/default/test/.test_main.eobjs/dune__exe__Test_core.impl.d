test/test_core.ml: Alcotest Array Certificates Float Format Hybrid List Pll Pll_core Random String
