test/test_advect.ml: Advect Alcotest Array Certificates Float Lazy List Pll Poly
