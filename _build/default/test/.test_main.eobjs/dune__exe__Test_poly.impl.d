test/test_poly.ml: Alcotest Array Float Linalg List Poly QCheck QCheck_alcotest
