test/test_barrier.ml: Alcotest Array Barrier Certificates Float Hybrid Lazy Pll Poly Random
