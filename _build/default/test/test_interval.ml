(* Tests for interval arithmetic and boxes. *)

let iv = Interval.make

let test_basics () =
  let a = iv 1.0 2.0 in
  Alcotest.(check (float 1e-12)) "mid" 1.5 (Interval.mid a);
  Alcotest.(check (float 1e-12)) "width" 1.0 (Interval.width a);
  Alcotest.(check bool) "mem" true (Interval.mem 1.5 a);
  Alcotest.(check bool) "not mem" false (Interval.mem 2.5 a);
  Alcotest.(check bool) "subset" true (Interval.subset (iv 1.2 1.8) a)

let test_bad_bounds () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (iv 2.0 1.0))

let test_arith () =
  let a = iv 1.0 2.0 and b = iv (-1.0) 3.0 in
  Alcotest.(check bool) "add" true (Interval.equal (Interval.add a b) (iv 0.0 5.0));
  Alcotest.(check bool) "sub" true (Interval.equal (Interval.sub a b) (iv (-2.0) 3.0));
  Alcotest.(check bool) "mul mixed" true (Interval.equal (Interval.mul a b) (iv (-2.0) 6.0));
  Alcotest.(check bool) "neg" true (Interval.equal (Interval.neg a) (iv (-2.0) (-1.0)));
  Alcotest.(check bool) "div" true (Interval.equal (Interval.div (iv 1.0 1.0) a) (iv 0.5 1.0))

let test_div_by_zero_interval () =
  Alcotest.check_raises "contains zero" (Invalid_argument "Interval.inv: interval contains zero")
    (fun () -> ignore (Interval.div (iv 1.0 2.0) (iv (-1.0) 1.0)))

let test_hull_intersect () =
  let a = iv 0.0 2.0 and b = iv 1.0 3.0 in
  Alcotest.(check bool) "hull" true (Interval.equal (Interval.hull a b) (iv 0.0 3.0));
  (match Interval.intersect a b with
  | Some c -> Alcotest.(check bool) "intersect" true (Interval.equal c (iv 1.0 2.0))
  | None -> Alcotest.fail "must intersect");
  Alcotest.(check bool) "disjoint" true (Interval.intersect (iv 0.0 1.0) (iv 2.0 3.0) = None)

let test_sample () =
  let pts = Interval.sample (iv 0.0 1.0) 3 in
  Alcotest.(check (list (float 1e-12))) "samples" [ 0.0; 0.5; 1.0 ] pts

let test_box () =
  let b = [| iv 0.0 1.0; iv (-1.0) 1.0 |] in
  Alcotest.(check int) "dim" 2 (Interval.Box.dim b);
  Alcotest.(check bool) "mid" true (Interval.Box.mid b = [| 0.5; 0.0 |]);
  Alcotest.(check bool) "mem" true (Interval.Box.mem [| 0.5; 0.5 |] b);
  Alcotest.(check int) "corners" 4 (List.length (Interval.Box.corners b));
  Alcotest.(check int) "grid" 9 (List.length (Interval.Box.sample_grid b 3))

(* Properties: containment monotonicity of interval arithmetic. *)

let arb_iv =
  QCheck.make
    QCheck.Gen.(
      pair (float_bound_inclusive 5.0) (float_bound_inclusive 5.0)
      |> map (fun (a, b) -> if a <= b then iv a b else iv b a))

let arb_pt = QCheck.make QCheck.Gen.(float_bound_inclusive 1.0)

let pick t iv_ = Interval.lo iv_ +. (t *. Interval.width iv_)

let prop_mul_contains =
  QCheck.Test.make ~name:"x∈a, y∈b => x*y ∈ a*b" ~count:300
    (QCheck.quad arb_iv arb_iv arb_pt arb_pt)
    (fun (a, b, tx, ty) ->
      let x = pick tx a and y = pick ty b in
      Interval.mem (x *. y) (Interval.mul a b))

let prop_add_contains =
  QCheck.Test.make ~name:"x∈a, y∈b => x+y ∈ a+b" ~count:300
    (QCheck.quad arb_iv arb_iv arb_pt arb_pt)
    (fun (a, b, tx, ty) ->
      let x = pick tx a and y = pick ty b in
      Interval.mem (x +. y) (Interval.add a b))

let suite =
  [
    Alcotest.test_case "basics" `Quick test_basics;
    Alcotest.test_case "bad bounds" `Quick test_bad_bounds;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "division by zero interval" `Quick test_div_by_zero_interval;
    Alcotest.test_case "hull and intersect" `Quick test_hull_intersect;
    Alcotest.test_case "sampling" `Quick test_sample;
    Alcotest.test_case "boxes" `Quick test_box;
    QCheck_alcotest.to_alcotest prop_mul_contains;
    QCheck_alcotest.to_alcotest prop_add_contains;
  ]
