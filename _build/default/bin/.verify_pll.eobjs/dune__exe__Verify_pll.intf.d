bin/verify_pll.mli:
