bin/sos_check.ml: Arg Cmd Cmdliner Format List Poly Sos Term
