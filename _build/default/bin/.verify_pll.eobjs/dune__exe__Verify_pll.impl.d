bin/verify_pll.ml: Arg Certificates Cmd Cmdliner Format Logs Logs_fmt Option Pll Pll_core Term
