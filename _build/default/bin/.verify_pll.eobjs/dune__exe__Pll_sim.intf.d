bin/pll_sim.mli:
