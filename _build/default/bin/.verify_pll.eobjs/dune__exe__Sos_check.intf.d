bin/sos_check.mli:
