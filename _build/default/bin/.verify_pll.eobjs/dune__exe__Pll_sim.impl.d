bin/pll_sim.ml: Arg Array Cmd Cmdliner Float Format Hybrid List Pll Printf String Term
