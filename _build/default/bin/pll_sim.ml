(* Simulate the hybrid CP PLL and dump the trace as CSV (scaled or
   physical units) — the workhorse behind the validation tests, exposed
   as a tool.

     dune exec bin/pll_sim.exe -- --order third --x0 1.5,-1.2,0.3
     dune exec bin/pll_sim.exe -- --order fourth --t-max 200 --physical *)

open Cmdliner

let run order x0_str t_max dt physical every =
  let raw =
    match order with `Third -> Pll.table1_third | `Fourth -> Pll.table1_fourth
  in
  let s = Pll.scale raw in
  let n = s.Pll.nvars in
  let x0 =
    match x0_str with
    | None -> Array.init n (fun i -> if i = Pll.theta_index s then 0.4 else 1.0)
    | Some str -> (
        let parts = String.split_on_char ',' str in
        match List.map float_of_string parts with
        | xs when List.length xs = n -> Array.of_list xs
        | _ ->
            Format.eprintf "expected %d comma-separated coordinates@." n;
            exit 2
        | exception _ ->
            Format.eprintf "bad --x0@.";
            exit 2)
  in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let th = x0.(Pll.theta_index s) in
  let m0 =
    if Float.abs th <= s.Pll.theta_on then Pll.off
    else if th > 0.0 then Pll.up
    else Pll.down
  in
  let r = Hybrid.simulate ~dt sys ~mode0:m0 ~x0 ~t_max in
  (* CSV header *)
  let names =
    match order with
    | `Third -> [ "v1"; "v2"; "dphi" ]
    | `Fourth -> [ "v1"; "v2"; "v3"; "dphi" ]
  in
  Format.printf "t,j,mode,%s@." (String.concat "," names);
  List.iteri
    (fun idx (st : Hybrid.step) ->
      if idx mod every = 0 then begin
        let x = if physical then Pll.to_physical s st.Hybrid.state else st.Hybrid.state in
        let t = if physical then st.Hybrid.t *. s.Pll.t0 else st.Hybrid.t in
        Format.printf "%g,%d,%s,%s@." t st.Hybrid.j
          (Pll.mode_name st.Hybrid.mode_at)
          (String.concat "," (Array.to_list (Array.map (Printf.sprintf "%g") x)))
      end)
    r.Hybrid.arc;
  Format.eprintf "final: %a — locked: %b, %d mode switches@." Hybrid.pp_step r.Hybrid.final
    (Pll.in_lock s r.Hybrid.final.Hybrid.state)
    r.Hybrid.jumps;
  if Pll.in_lock s r.Hybrid.final.Hybrid.state then 0 else 1

let order =
  let c = Arg.enum [ ("third", `Third); ("fourth", `Fourth) ] in
  Arg.(value & opt c `Third & info [ "order"; "o" ] ~docv:"ORDER" ~doc:"PLL order.")

let x0 =
  Arg.(value & opt (some string) None & info [ "x0" ] ~docv:"X0"
         ~doc:"Initial state, comma-separated scaled coordinates.")

let t_max = Arg.(value & opt float 100.0 & info [ "t-max" ] ~doc:"Simulation horizon (scaled).")

let dt = Arg.(value & opt float 1e-3 & info [ "dt" ] ~doc:"RK4 step (scaled).")

let physical =
  Arg.(value & flag & info [ "physical" ] ~doc:"Output volts / seconds instead of scaled units.")

let every = Arg.(value & opt int 100 & info [ "every" ] ~doc:"Output every Nth sample.")

let cmd =
  let doc = "simulate the hybrid charge-pump PLL and print a CSV trace" in
  Cmd.v (Cmd.info "pll_sim" ~doc) Term.(const run $ order $ x0 $ t_max $ dt $ physical $ every)

let () = exit (Cmd.eval' cmd)
