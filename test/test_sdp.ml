(* Tests for the interior-point SDP solver: analytically solvable problems,
   free-variable handling, and status reporting. *)

module Mat = Linalg.Mat

let check_float = Alcotest.(check (float 1e-5))

let entry blk row col value = { Sdp.blk; row; col; value }

(* min tr X s.t. X_00 = 1, X ⪰ 0 (2x2). Optimal: X = diag(1,0), obj 1. *)
let test_min_trace () =
  let p =
    {
      Sdp.block_dims = [| 2 |];
      n_free = 0;
      constraints = [| { Sdp.lhs = [ entry 0 0 0 1.0 ]; free = []; rhs = 1.0 } |];
      obj_blocks = [ entry 0 0 0 1.0; entry 0 1 1 1.0 ];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  check_float "objective" 1.0 sol.Sdp.primal_obj;
  check_float "X00" 1.0 (Mat.get sol.Sdp.x_blocks.(0) 0 0);
  check_float "X11" 0.0 (Mat.get sol.Sdp.x_blocks.(0) 1 1)

(* LP via 1x1 blocks: min x + y s.t. x + 2y = 3, x,y >= 0. Optimum 1.5. *)
let test_lp_diag () =
  let p =
    {
      Sdp.block_dims = [| 1; 1 |];
      n_free = 0;
      constraints =
        [| { Sdp.lhs = [ entry 0 0 0 1.0; entry 1 0 0 2.0 ]; free = []; rhs = 3.0 } |];
      obj_blocks = [ entry 0 0 0 1.0; entry 1 0 0 1.0 ];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  check_float "objective" 1.5 sol.Sdp.primal_obj;
  check_float "x" 0.0 (Mat.get sol.Sdp.x_blocks.(0) 0 0);
  check_float "y" 1.5 (Mat.get sol.Sdp.x_blocks.(1) 0 0)

(* Smallest eigenvalue via free variable: min -t s.t. X + t I = A, X ⪰ 0.
   At the optimum t = lambda_min(A). *)
let test_min_eig_free_var () =
  let a = Mat.of_arrays [| [| 2.0; 1.0; 0.0 |]; [| 1.0; 3.0; 0.5 |]; [| 0.0; 0.5; 1.5 |] |] in
  let constraints = ref [] in
  for i = 0 to 2 do
    for j = i to 2 do
      (* Off-diagonal entries contribute twice to <A, X>, so use weight 1/2
         to pin X_ij itself. *)
      let w = if i = j then 1.0 else 0.5 in
      let lhs = [ entry 0 i j w ] in
      let free = if i = j then [ (0, 1.0) ] else [] in
      constraints := { Sdp.lhs; free; rhs = Mat.get a i j } :: !constraints
    done
  done;
  let p =
    {
      Sdp.block_dims = [| 3 |];
      n_free = 1;
      constraints = Array.of_list (List.rev !constraints);
      obj_blocks = [];
      obj_free = [ (0, -1.0) ];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  let expected = Mat.min_eig a in
  check_float "lambda_min" expected sol.Sdp.f.(0)

(* Feasibility: X ⪰ 0, tr X = 1 — interior point exists; verify the
   residual check helper agrees. *)
let test_feasibility_margin () =
  let p =
    {
      Sdp.block_dims = [| 3 |];
      n_free = 0;
      constraints =
        [|
          { Sdp.lhs = [ entry 0 0 0 1.0; entry 0 1 1 1.0; entry 0 2 2 1.0 ]; free = []; rhs = 1.0 };
        |];
      obj_blocks = [];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool)
    "solved" true
    (sol.Sdp.status = Sdp.Optimal || sol.Sdp.status = Sdp.Near_optimal);
  Alcotest.(check bool) "margin small" true (Sdp.feasibility_margin p sol < 1e-6)

(* Infeasible problem: x >= 0 (1x1 block) with x = -1. *)
let test_infeasible () =
  let p =
    {
      Sdp.block_dims = [| 1 |];
      n_free = 0;
      constraints = [| { Sdp.lhs = [ entry 0 0 0 1.0 ]; free = []; rhs = -1.0 } |];
      obj_blocks = [];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool)
    "not reported optimal" true
    (sol.Sdp.status <> Sdp.Optimal)

(* Correlation-like bound: X ⪰ 0, diag X = 1 (2x2), maximize X01: optimum 1. *)
let test_correlation () =
  let p =
    {
      Sdp.block_dims = [| 2 |];
      n_free = 0;
      constraints =
        [|
          { Sdp.lhs = [ entry 0 0 0 1.0 ]; free = []; rhs = 1.0 };
          { Sdp.lhs = [ entry 0 1 1 1.0 ]; free = []; rhs = 1.0 };
        |];
      obj_blocks = [ entry 0 0 1 (-1.0) ];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  check_float "X01 = 1" 1.0 (Mat.get sol.Sdp.x_blocks.(0) 0 1)

(* Dual multipliers: min <I,X> s.t. <I,X> = 1 gives y = 1 on the (scaled)
   constraint; verify unscaled multipliers satisfy dual feasibility. *)
let test_dual_feasibility () =
  let p =
    {
      Sdp.block_dims = [| 2 |];
      n_free = 0;
      constraints =
        [| { Sdp.lhs = [ entry 0 0 0 1.0; entry 0 1 1 1.0 ]; free = []; rhs = 1.0 } |];
      obj_blocks = [ entry 0 0 0 1.0; entry 0 1 1 1.0 ];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  check_float "primal = dual" sol.Sdp.primal_obj sol.Sdp.dual_obj;
  (* S = C - y A = (1 - y) I must be PSD with tr(XS) = 0 at optimum. *)
  let y = sol.Sdp.y.(0) in
  Alcotest.(check bool) "y <= 1" true (y <= 1.0 +. 1e-6)

(* Lovász theta of the 5-cycle: the famous value sqrt(5).
   theta(C5) = max <J, X> s.t. tr X = 1, X_ij = 0 for edges ij, X ⪰ 0. *)
let test_lovasz_theta_c5 () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let constraints =
    { Sdp.lhs = List.init 5 (fun i -> entry 0 i i 1.0); free = []; rhs = 1.0 }
    :: List.map (fun (i, j) -> { Sdp.lhs = [ entry 0 i j 1.0 ]; free = []; rhs = 0.0 }) edges
  in
  let all_ones =
    List.concat (List.init 5 (fun i -> List.init (5 - i) (fun k -> entry 0 i (i + k) (-1.0))))
  in
  let p =
    {
      Sdp.block_dims = [| 5 |];
      n_free = 0;
      constraints = Array.of_list constraints;
      obj_blocks = all_ones;
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  Alcotest.(check (float 1e-4)) "theta(C5) = sqrt 5" (sqrt 5.0) (-.sol.Sdp.primal_obj)

(* Random strictly feasible SDPs: generate X0 ≻ 0, random A_i, set
   b = A(X0); the solver must converge with small residuals. *)
let test_random_feasible_battery () =
  let rng = Random.State.make [| 41 |] in
  for trial = 1 to 10 do
    let n = 3 + Random.State.int rng 4 in
    let m = 2 + Random.State.int rng 5 in
    let x0 =
      let b = Mat.init n n (fun _ _ -> Random.State.float rng 2.0 -. 1.0) in
      Mat.add (Mat.mul b (Mat.transpose b)) (Mat.identity n)
    in
    let mats =
      List.init m (fun _ ->
          Mat.symmetrize (Mat.init n n (fun _ _ -> Random.State.float rng 2.0 -. 1.0)))
    in
    let constraints =
      List.map
        (fun a ->
          let lhs = ref [] in
          for i = 0 to n - 1 do
            for j = i to n - 1 do
              let v = Mat.get a i j in
              if v <> 0.0 then lhs := entry 0 i j v :: !lhs
            done
          done;
          { Sdp.lhs = !lhs; free = []; rhs = Mat.frob_dot a x0 })
        mats
    in
    let p =
      {
        Sdp.block_dims = [| n |];
        n_free = 0;
        constraints = Array.of_list constraints;
        obj_blocks = [ entry 0 0 0 1.0 ];
        obj_free = [];
      }
    in
    let sol = Sdp.solve p in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d converged" trial)
      true
      (sol.Sdp.status = Sdp.Optimal || sol.Sdp.status = Sdp.Near_optimal);
    Alcotest.(check bool)
      (Printf.sprintf "trial %d feasible" trial)
      true
      (Sdp.feasibility_margin p sol < 1e-5)
  done

(* The returned X must actually be PSD. *)
let test_solution_psd () =
  let p =
    {
      Sdp.block_dims = [| 3 |];
      n_free = 0;
      constraints =
        [| { Sdp.lhs = [ entry 0 0 0 1.0; entry 0 1 1 1.0; entry 0 2 2 1.0 ]; free = []; rhs = 2.0 } |];
      obj_blocks = [ entry 0 0 1 1.0; entry 0 1 2 (-1.0) ];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "X PSD" true (Mat.is_psd ~tol:1e-7 sol.Sdp.x_blocks.(0));
  Alcotest.(check bool) "S PSD" true (Mat.is_psd ~tol:1e-7 sol.Sdp.s_blocks.(0))

(* SDPA export: header structure and entry counts. *)
let test_to_sdpa () =
  let p =
    {
      Sdp.block_dims = [| 2 |];
      n_free = 1;
      constraints =
        [| { Sdp.lhs = [ entry 0 0 0 1.0 ]; free = [ (0, 2.0) ]; rhs = 1.0 } |];
      obj_blocks = [ entry 0 0 1 0.5 ];
      obj_free = [ (0, -1.0) ];
    }
  in
  let s = Sdp.to_sdpa p in
  let lines = String.split_on_char '\n' s in
  Alcotest.(check bool) "mDIM" true (List.exists (fun l -> l = "1 = mDIM") lines);
  Alcotest.(check bool) "nBLOCK includes free split" true
    (List.exists (fun l -> l = "2 = nBLOCK") lines);
  Alcotest.(check bool) "block struct" true
    (List.exists (fun l -> l = "(2, -2) = bLOCKsTRUCT") lines);
  (* constraint 1 contributes one PSD entry and two split entries: lines
     of the form "1 <blk> <i> <j> <v>" *)
  let entry_lines =
    List.filter
      (fun l ->
        String.length (String.trim l) > 0
        && (match String.split_on_char ' ' l with
           | [ "1"; _; _; _; _ ] -> true
           | _ -> false))
      lines
  in
  Alcotest.(check int) "constraint entries" 3 (List.length entry_lines)

(* ------------------------------------------------------------------ *)
(* Failure-status coverage: every status constructor must be reachable
   and correctly classified, and the solution record must stay
   informative (iterations, residuals, trace) on every path — the retry
   ladder and failure diagnoses depend on it.                          *)

(* A small problem that needs ~10 interior-point iterations: theta(C5). *)
let theta_c5_problem () =
  let edges = [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let constraints =
    { Sdp.lhs = List.init 5 (fun i -> entry 0 i i 1.0); free = []; rhs = 1.0 }
    :: List.map (fun (i, j) -> { Sdp.lhs = [ entry 0 i j 1.0 ]; free = []; rhs = 0.0 }) edges
  in
  let all_ones =
    List.concat (List.init 5 (fun i -> List.init (5 - i) (fun k -> entry 0 i (i + k) (-1.0))))
  in
  {
    Sdp.block_dims = [| 5 |];
    n_free = 0;
    constraints = Array.of_list constraints;
    obj_blocks = all_ones;
    obj_free = [];
  }

(* x >= 0 with x = -1: primal infeasibility certificate. *)
let test_status_primal_infeasible () =
  let p =
    {
      Sdp.block_dims = [| 1 |];
      n_free = 0;
      constraints = [| { Sdp.lhs = [ entry 0 0 0 1.0 ]; free = []; rhs = -1.0 } |];
      obj_blocks = [];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "classified" true (sol.Sdp.status = Sdp.Primal_infeasible);
  Alcotest.(check bool) "iterations reported" true (sol.Sdp.iterations > 0)

(* min -X00 with only X11 pinned: primal unbounded below, dual infeasible. *)
let test_status_dual_infeasible () =
  let p =
    {
      Sdp.block_dims = [| 2 |];
      n_free = 0;
      constraints = [| { Sdp.lhs = [ entry 0 1 1 1.0 ]; free = []; rhs = 1.0 } |];
      obj_blocks = [ entry 0 0 0 (-1.0) ];
      obj_free = [];
    }
  in
  let sol = Sdp.solve p in
  Alcotest.(check bool) "classified" true (sol.Sdp.status = Sdp.Dual_infeasible)

let test_status_max_iterations () =
  let params = { Sdp.default_params with Sdp.max_iter = 2 } in
  let sol = Sdp.solve ~params (theta_c5_problem ()) in
  Alcotest.(check bool) "classified" true (sol.Sdp.status = Sdp.Max_iterations);
  Alcotest.(check int) "stopped at the limit" 2 sol.Sdp.iterations;
  (* The convergence history must survive the failure. *)
  Alcotest.(check int) "trace recorded" 2 (List.length sol.Sdp.trace)

(* A forced Numerical_failure must still report the attempted iteration
   count and finite residual norms — diagnostics never re-derive them. *)
let test_status_numerical_failure () =
  let hook k = if k = 1 then Some Sdp.Fail_now else None in
  let params = { Sdp.default_params with Sdp.on_iteration = Some hook } in
  let sol = Sdp.solve ~params (theta_c5_problem ()) in
  Alcotest.(check bool) "classified" true (sol.Sdp.status = Sdp.Numerical_failure);
  Alcotest.(check int) "iterations on failure" 1 sol.Sdp.iterations;
  Alcotest.(check int) "injection counted" 1 sol.Sdp.injected;
  Alcotest.(check bool) "finite residuals" true
    (Float.is_finite sol.Sdp.primal_res && Float.is_finite sol.Sdp.dual_res
   && Float.is_finite sol.Sdp.gap)

(* Stop_now salvages the best iterate: classified like an iteration-limit
   stop, not a failure. *)
let test_fault_truncation () =
  let hook k = if k = 3 then Some Sdp.Stop_now else None in
  let params = { Sdp.default_params with Sdp.on_iteration = Some hook } in
  let sol = Sdp.solve ~params (theta_c5_problem ()) in
  Alcotest.(check bool) "salvaged, not failed" true
    (sol.Sdp.status = Sdp.Max_iterations || sol.Sdp.status = Sdp.Near_optimal);
  Alcotest.(check int) "stopped where injected" 3 sol.Sdp.iterations;
  Alcotest.(check int) "injection counted" 1 sol.Sdp.injected;
  Alcotest.(check bool) "best iterate scored" true (Float.is_finite sol.Sdp.best_score)

(* Deterministic Gram noise: the injection is counted, the perturbed run
   is reproducible, and heavy noise genuinely derails convergence. *)
let test_fault_noise () =
  let run () =
    let hook k = if k = 2 then Some (Sdp.Perturb 0.5) else None in
    let params = { Sdp.default_params with Sdp.on_iteration = Some hook } in
    Sdp.solve ~params (theta_c5_problem ())
  in
  let sol = run () and sol' = run () in
  Alcotest.(check int) "injection counted" 1 sol.Sdp.injected;
  Alcotest.(check bool) "survived past the injection" true (sol.Sdp.iterations >= 2);
  Alcotest.(check bool) "heavy noise prevents Optimal" true (sol.Sdp.status <> Sdp.Optimal);
  Alcotest.(check bool) "deterministic replay" true
    (sol.Sdp.status = sol'.Sdp.status && sol.Sdp.iterations = sol'.Sdp.iterations)

(* Jacobi equilibration: a badly scaled problem (1e6 vs 1e-5 rows) must
   solve to Optimal and map back to a feasible unscaled solution. *)
let test_equilibration () =
  let p =
    {
      Sdp.block_dims = [| 2 |];
      n_free = 0;
      constraints =
        [|
          { Sdp.lhs = [ entry 0 0 0 1e6 ]; free = []; rhs = 1e6 };
          { Sdp.lhs = [ entry 0 1 1 1e-5 ]; free = []; rhs = 1e-5 };
        |];
      obj_blocks = [ entry 0 0 1 (-1.0) ];
      obj_free = [];
    }
  in
  let params = { Sdp.default_params with Sdp.equilibrate = true } in
  let sol = Sdp.solve ~params p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  Alcotest.(check bool) "feasible in ORIGINAL scaling" true
    (Sdp.feasibility_margin p sol < 1e-5);
  check_float "X01 recovered" 1.0 (Mat.get sol.Sdp.x_blocks.(0) 0 1)

(* ------------------------------------------------------------------ *)
(* Stateful sessions: warm/cold agreement, fingerprint discipline, and
   the mismatch fallback that keeps hints invisible to callers. *)

(* A one-parameter family sharing one structure: extract lambda_min of
   A(t) = A + t*B via a free variable. Every member has the same sparsity
   pattern (only values move), so they share a structure fingerprint. *)
let eig_family t =
  let a =
    Mat.of_arrays
      [|
        [| 2.0 +. t; 1.0 -. (0.3 *. t); 0.2 |];
        [| 1.0 -. (0.3 *. t); 3.0 +. (0.5 *. t); 0.5 |];
        [| 0.2; 0.5; 1.5 +. (0.2 *. t) |];
      |]
  in
  let constraints = ref [] in
  for i = 0 to 2 do
    for j = i to 2 do
      let w = if i = j then 1.0 else 0.5 in
      let lhs = [ entry 0 i j w ] in
      let free = if i = j then [ (0, 1.0) ] else [] in
      constraints := { Sdp.lhs; free; rhs = Mat.get a i j } :: !constraints
    done
  done;
  ( a,
    {
      Sdp.block_dims = [| 3 |];
      n_free = 1;
      constraints = Array.of_list (List.rev !constraints);
      obj_blocks = [];
      obj_free = [ (0, -1.0) ];
    } )

(* Sweeping the family through one session must agree with cold solves:
   same statuses, same objectives — the accept-only-Optimal discipline
   makes warm starts unobservable except in the counters. *)
let test_session_warm_vs_cold () =
  let sess = Sdp.Session.create () in
  List.iter
    (fun t ->
      let a, p = eig_family t in
      let cold = Sdp.solve p in
      let warm = Sdp.Session.solve sess p in
      Alcotest.(check bool) "both Optimal" true
        (cold.Sdp.status = Sdp.Optimal && warm.Sdp.status = Sdp.Optimal);
      check_float "objective agrees" cold.Sdp.primal_obj warm.Sdp.primal_obj;
      check_float "lambda_min" (Mat.min_eig a) warm.Sdp.f.(0))
    [ 0.0; 0.05; 0.1; 0.15; 0.2 ];
  let c = Sdp.Session.counters sess in
  Alcotest.(check int) "every solve accounted" 5 (c.Sdp.Session.warm_accepted + c.Sdp.Session.cold_solves);
  Alcotest.(check bool) "continuation actually warm" true (c.Sdp.Session.warm_accepted >= 2)

(* The structure fingerprint ignores values (family members share it) and
   capsules are keyed by it; the cache fingerprint is a pure function of
   the problem, identical whether the solve that produced it was warm. *)
let test_fingerprint_hint_invariance () =
  let _, p0 = eig_family 0.0 in
  let _, p1 = eig_family 0.25 in
  Alcotest.(check string) "family shares structure" (Sdp.structure_fingerprint p0)
    (Sdp.structure_fingerprint p1);
  let full0 = Sdp.fingerprint p0 in
  let sol0 = Sdp.solve p0 in
  let w = Option.get (Sdp.warm_start_of_solution p0 sol0) in
  Alcotest.(check string) "capsule keyed by structure" (Sdp.structure_fingerprint p0)
    (Sdp.warm_start_structure w);
  let _warm = Sdp.solve ~warm:w p1 in
  Alcotest.(check string) "cache fingerprint unmoved by hints" full0 (Sdp.fingerprint p0);
  Alcotest.(check bool) "value changes do move the cache key" true
    (Sdp.fingerprint p0 <> Sdp.fingerprint p1)

(* A hint whose structure does not match the problem must be ignored:
   the solve falls back to cold and still succeeds. *)
let test_session_structure_mismatch_cold () =
  let sess = Sdp.Session.create () in
  let _, pa = eig_family 0.0 in
  let _ = Sdp.Session.solve sess pa in
  let hint = Option.get (Sdp.Session.hint_for sess pa) in
  (* Structurally different: the 2-block LP from test_lp_diag. *)
  let pb =
    {
      Sdp.block_dims = [| 1; 1 |];
      n_free = 0;
      constraints =
        [| { Sdp.lhs = [ entry 0 0 0 1.0; entry 1 0 0 2.0 ]; free = []; rhs = 3.0 } |];
      obj_blocks = [ entry 0 0 0 1.0; entry 1 0 0 1.0 ];
      obj_free = [];
    }
  in
  let before = Sdp.Session.counters sess in
  let sol = Sdp.Session.solve sess ~hint pb in
  let after = Sdp.Session.counters sess in
  Alcotest.(check bool) "solved despite bogus hint" true (sol.Sdp.status = Sdp.Optimal);
  check_float "objective" 1.5 sol.Sdp.primal_obj;
  Alcotest.(check int) "fell back cold" (before.Sdp.Session.cold_solves + 1)
    after.Sdp.Session.cold_solves;
  Alcotest.(check int) "no warm attempt on mismatch" before.Sdp.Session.warm_accepted
    after.Sdp.Session.warm_accepted

(* Capsules produced elsewhere (pool workers) feed back via
   [remember_capsule] and warm the next same-structure solve. *)
let test_session_remember_capsule () =
  let _, p0 = eig_family 0.0 in
  let sol0 = Sdp.solve p0 in
  let w = Option.get (Sdp.warm_start_of_solution p0 sol0) in
  let sess = Sdp.Session.create () in
  Sdp.Session.remember_capsule sess w;
  let a1, p1 = eig_family 0.1 in
  let sol1 = Sdp.Session.solve sess p1 in
  Alcotest.(check bool) "solved" true (sol1.Sdp.status = Sdp.Optimal);
  check_float "lambda_min" (Mat.min_eig a1) sol1.Sdp.f.(0);
  let c = Sdp.Session.counters sess in
  Alcotest.(check int) "capsule warmed the solve" 1 c.Sdp.Session.warm_accepted;
  Alcotest.(check int) "no cold solve needed" 0 c.Sdp.Session.cold_solves

let suite =
  [
    Alcotest.test_case "sdpa export" `Quick test_to_sdpa;
    Alcotest.test_case "status: primal infeasible" `Quick test_status_primal_infeasible;
    Alcotest.test_case "status: dual infeasible" `Quick test_status_dual_infeasible;
    Alcotest.test_case "status: max iterations" `Quick test_status_max_iterations;
    Alcotest.test_case "status: numerical failure" `Quick test_status_numerical_failure;
    Alcotest.test_case "fault: truncation salvages" `Quick test_fault_truncation;
    Alcotest.test_case "fault: deterministic noise" `Quick test_fault_noise;
    Alcotest.test_case "equilibration" `Quick test_equilibration;
    Alcotest.test_case "lovasz theta of C5" `Quick test_lovasz_theta_c5;
    Alcotest.test_case "random feasible battery" `Quick test_random_feasible_battery;
    Alcotest.test_case "solution PSD" `Quick test_solution_psd;
    Alcotest.test_case "min trace with equality" `Quick test_min_trace;
    Alcotest.test_case "LP via 1x1 blocks" `Quick test_lp_diag;
    Alcotest.test_case "min eigenvalue via free variable" `Quick test_min_eig_free_var;
    Alcotest.test_case "feasibility margin" `Quick test_feasibility_margin;
    Alcotest.test_case "infeasible detection" `Quick test_infeasible;
    Alcotest.test_case "correlation bound" `Quick test_correlation;
    Alcotest.test_case "dual feasibility" `Quick test_dual_feasibility;
    Alcotest.test_case "session: warm agrees with cold" `Quick test_session_warm_vs_cold;
    Alcotest.test_case "session: fingerprints ignore hints" `Quick
      test_fingerprint_hint_invariance;
    Alcotest.test_case "session: mismatched hint falls back cold" `Quick
      test_session_structure_mismatch_cold;
    Alcotest.test_case "session: remember_capsule warms" `Quick
      test_session_remember_capsule;
  ]
