(* Tests for process-isolated solve supervision: request fingerprints,
   the content-addressed cache and its corruption diagnoses, the
   write-ahead journal's tolerant reader, process-fault spec parsing,
   deadline clock modes, and the worker pool. *)

let entry blk row col value = { Sdp.blk; row; col; value }

(* min tr X s.t. X_00 = 1 over a 2x2 block: optimal X = diag(1,0). *)
let small_problem ?(rhs = 1.0) () =
  {
    Sdp.block_dims = [| 2 |];
    n_free = 0;
    constraints = [| { Sdp.lhs = [ entry 0 0 0 1.0 ]; free = []; rhs } |];
    obj_blocks = [ entry 0 0 0 1.0; entry 0 1 1 1.0 ];
    obj_free = [];
  }

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "pll-test-supervise-%d-%d" (Unix.getpid ()) !n)
    in
    d

(* ---- fingerprints ---- *)

let test_fingerprint_stable () =
  let p = small_problem () in
  Alcotest.(check string) "same input, same key" (Sdp.fingerprint p) (Sdp.fingerprint p);
  let q = small_problem ~rhs:2.0 () in
  Alcotest.(check bool) "different data, different key" true
    (Sdp.fingerprint p <> Sdp.fingerprint q);
  let params = { Sdp.default_params with Sdp.max_iter = 7 } in
  Alcotest.(check bool) "different params, different key" true
    (Sdp.fingerprint p <> Sdp.fingerprint ~params p)

let test_fingerprint_ignores_hooks () =
  let p = small_problem () in
  let params =
    { Sdp.default_params with Sdp.on_iteration = Some (fun _ -> None); verbose = true }
  in
  Alcotest.(check string) "hooks and verbosity excluded from the key"
    (Sdp.fingerprint p)
    (Sdp.fingerprint ~params p)

(* ---- cache ---- *)

let test_cache_roundtrip () =
  let c = Supervise.Cache.create ~dir:(tmp_dir ()) in
  let p = small_problem () in
  let sol = Sdp.solve p in
  let key = Sdp.fingerprint p in
  (match Supervise.Cache.store c ~key sol with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  match Supervise.Cache.load c ~key with
  | Error e -> Alcotest.fail (Supervise.Cache.error_to_string e)
  | Ok sol' ->
      Alcotest.(check bool) "status survives" true (sol'.Sdp.status = sol.Sdp.status);
      Alcotest.(check (float 0.0)) "objective survives bit-exactly" sol.Sdp.primal_obj
        sol'.Sdp.primal_obj

let test_cache_missing () =
  let c = Supervise.Cache.create ~dir:(tmp_dir ()) in
  match Supervise.Cache.load c ~key:"deadbeef" with
  | Error Supervise.Cache.Missing -> ()
  | Error e -> Alcotest.fail ("expected Missing, got " ^ Supervise.Cache.error_to_string e)
  | Ok _ -> Alcotest.fail "expected Missing, got a solution"

let test_cache_truncation_diagnosed () =
  let c = Supervise.Cache.create ~dir:(tmp_dir ()) in
  let p = small_problem () in
  let key = Sdp.fingerprint p in
  (match Supervise.Cache.store c ~key (Sdp.solve p) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "corrupt truncates in place" true (Supervise.Cache.corrupt c ~key);
  (match Supervise.Cache.load c ~key with
  | Error (Supervise.Cache.Truncated _ | Supervise.Cache.Bad_header _) -> ()
  | Error e ->
      Alcotest.fail ("expected a truncation diagnosis, got " ^ Supervise.Cache.error_to_string e)
  | Ok _ -> Alcotest.fail "truncated entry loaded");
  Alcotest.(check bool) "corrupting a missing entry reports false" false
    (Supervise.Cache.corrupt c ~key:"deadbeef")

let test_cache_digest_mismatch () =
  let c = Supervise.Cache.create ~dir:(tmp_dir ()) in
  let p = small_problem () in
  let key = Sdp.fingerprint p in
  (match Supervise.Cache.store c ~key (Sdp.solve p) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* Flip one payload byte without changing the length. *)
  let path = Supervise.Cache.path c ~key in
  let ic = open_in_bin path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string content in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  match Supervise.Cache.load c ~key with
  | Error Supervise.Cache.Digest_mismatch -> ()
  | Error e ->
      Alcotest.fail ("expected Digest_mismatch, got " ^ Supervise.Cache.error_to_string e)
  | Ok _ -> Alcotest.fail "corrupted entry loaded"

(* Size-capped LRU eviction over the content-addressed cache. *)

let test_cache_gc_lru () =
  let c = Supervise.Cache.create ~dir:(tmp_dir ()) in
  let sol = Sdp.solve (small_problem ()) in
  let keys = [ "aaaa"; "bbbb"; "cccc" ] in
  List.iter
    (fun key ->
      match Supervise.Cache.store c ~key sol with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    keys;
  (* Deterministic ages: aaaa oldest, cccc newest. *)
  let now = Unix.gettimeofday () in
  List.iteri
    (fun i key ->
      let t = now -. 100.0 +. (10.0 *. float_of_int i) in
      Unix.utimes (Supervise.Cache.path c ~key) t t)
    keys;
  let entries, bytes = Supervise.Cache.usage c in
  Alcotest.(check int) "three entries counted" 3 entries;
  Alcotest.(check bool) "bytes accounted" true (bytes > 0);
  let per = bytes / 3 in
  (* A stale tmp file from a crashed writer is swept too. *)
  let stale = Filename.concat (Filename.dirname (Supervise.Cache.path c ~key:"x"))
                "dead.solve.tmp.999" in
  let oc = open_out stale in
  output_string oc "partial";
  close_out oc;
  Unix.utimes stale (now -. 3600.0) (now -. 3600.0);
  let st = Supervise.Cache.gc c ~max_bytes:(2 * per) in
  Alcotest.(check int) "oldest entry evicted" 1 st.Supervise.Cache.evicted;
  Alcotest.(check int) "survivors" 2 st.Supervise.Cache.entries;
  Alcotest.(check bool) "stale tmp swept" false (Sys.file_exists stale);
  (match Supervise.Cache.load c ~key:"aaaa" with
  | Error Supervise.Cache.Missing -> ()
  | _ -> Alcotest.fail "LRU must evict the oldest entry first");
  (* Loading refreshes recency: bbbb (touched by the load) must now
     outlive cccc under a tighter cap. *)
  (match Supervise.Cache.load c ~key:"bbbb" with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Supervise.Cache.error_to_string e));
  let st2 = Supervise.Cache.gc c ~max_bytes:per in
  Alcotest.(check int) "one more eviction" 1 st2.Supervise.Cache.evicted;
  (match Supervise.Cache.load c ~key:"bbbb" with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "recently used entry evicted");
  match Supervise.Cache.load c ~key:"cccc" with
  | Error Supervise.Cache.Missing -> ()
  | _ -> Alcotest.fail "least recently used entry survived"

(* ---- journal ---- *)

let test_journal_tolerant_read () =
  let dir = tmp_dir () in
  Unix.mkdir dir 0o755;
  let oc = open_out (Supervise.Journal.path dir) in
  output_string oc "pll-run-journal v1\n";
  output_string oc "run 1.0 123\n";
  output_string oc "start 1 abcd label-a\n";
  output_string oc "done 1 abcd solved optimal 0.25 label-a\n";
  output_string oc "done 2 efgh cache optimal 0.0 label b with spaces\n";
  output_string oc "done x bad not-an-entry\n";
  output_string oc "gibberish line\n";
  (* A line truncated by a crash, no trailing newline. *)
  output_string oc "done 3 ijkl solv";
  close_out oc;
  let entries, diags = Supervise.Journal.read dir in
  Alcotest.(check int) "two well-formed done entries" 2 (List.length entries);
  let e1 = List.nth entries 0 and e2 = List.nth entries 1 in
  Alcotest.(check int) "seq" 1 e1.Supervise.Journal.seq;
  Alcotest.(check string) "source" "solved" e1.Supervise.Journal.source;
  Alcotest.(check string) "multi-word label survives" "label b with spaces"
    e2.Supervise.Journal.label;
  Alcotest.(check bool) "malformed lines become diagnoses, not raises" true
    (List.length diags >= 2)

let test_journal_missing () =
  let entries, diags = Supervise.Journal.read (tmp_dir ()) in
  Alcotest.(check int) "no entries" 0 (List.length entries);
  Alcotest.(check int) "no diagnoses" 0 (List.length diags)

(* ---- fault specs ---- *)

let test_fault_parse () =
  (match Supervise.Fault.parse "kill@3:2" with
  | Some (Ok { Supervise.Fault.kind = Supervise.Fault.Kill; solve = 3; iter = 2 }) -> ()
  | _ -> Alcotest.fail "kill@3:2 did not parse");
  (match Supervise.Fault.parse "stall@*:1" with
  | Some (Ok { Supervise.Fault.kind = Supervise.Fault.Stall; solve = 0; iter = 1 }) -> ()
  | _ -> Alcotest.fail "stall@*:1 did not parse");
  (match Supervise.Fault.parse "corrupt-cache@2" with
  | Some (Ok { Supervise.Fault.kind = Supervise.Fault.Corrupt_cache; solve = 2; _ }) -> ()
  | _ -> Alcotest.fail "corrupt-cache@2 did not parse");
  (match Supervise.Fault.parse "kill@x:y" with
  | Some (Error _) -> ()
  | _ -> Alcotest.fail "malformed kill spec should be a hard error");
  (match Supervise.Fault.parse "fail@1:2" with
  | None -> ()
  | _ -> Alcotest.fail "in-process kinds must fall through to Resilient");
  match Supervise.Fault.parse "garbage" with
  | None -> ()
  | _ -> Alcotest.fail "non-fault tokens must fall through"

let test_mixed_plan_parse () =
  match Resilient.Faults.of_string "fail@1:2,kill@2:3,corrupt-cache@1" with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      Alcotest.(check int) "process specs split out" 2
        (List.length (Resilient.Faults.proc_specs plan));
      let s = Resilient.Faults.to_string plan in
      Alcotest.(check bool) "round-trip keeps all kinds" true
        (s = "fail@1:2,kill@2:3,corrupt-cache@1");
      (match Resilient.Faults.of_string s with
      | Ok plan2 ->
          Alcotest.(check string) "to_string/of_string round-trips" s
            (Resilient.Faults.to_string plan2)
      | Error e -> Alcotest.fail e);
      match Resilient.Faults.of_string "kill@bad" with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "malformed process spec accepted"

let test_fault_for_solve () =
  let spec k solve iter = { Supervise.Fault.kind = k; solve; iter } in
  let specs = [ spec Supervise.Fault.Kill 2 1; spec Supervise.Fault.Stall 0 1 ] in
  (match Supervise.Fault.for_solve specs 2 with
  | Some { Supervise.Fault.kind = Supervise.Fault.Kill; _ } -> ()
  | _ -> Alcotest.fail "exact index match wins");
  match Supervise.Fault.for_solve specs 7 with
  | Some { Supervise.Fault.kind = Supervise.Fault.Stall; _ } -> ()
  | _ -> Alcotest.fail "wildcard spec applies to every solve"

(* ---- deadline clock modes ---- *)

let test_wall_clock_deadline () =
  let fake = ref 0.0 in
  Resilient.set_wall_clock_source (Some (fun () -> !fake));
  Fun.protect
    ~finally:(fun () -> Resilient.set_wall_clock_source None)
    (fun () ->
      let pol = Resilient.make ~pipeline_deadline_s:10.0 () in
      Resilient.begin_pipeline pol;
      Alcotest.(check bool) "not out of time at t=0" false (Resilient.out_of_time pol);
      fake := 11.0;
      Alcotest.(check bool) "out of time once the wall advances" true
        (Resilient.out_of_time pol);
      Alcotest.(check (float 1e-9)) "elapsed reads the injected source" 11.0
        (Resilient.elapsed_s pol))

let test_cpu_clock_ignores_wall_source () =
  let fake = ref 0.0 in
  Resilient.set_wall_clock_source (Some (fun () -> !fake));
  Fun.protect
    ~finally:(fun () -> Resilient.set_wall_clock_source None)
    (fun () ->
      let pol = Resilient.make ~clock_mode:Resilient.Cpu_time ~pipeline_deadline_s:1e6 () in
      Resilient.begin_pipeline pol;
      fake := 1e9;
      Alcotest.(check bool) "CPU mode never reads the wall source" false
        (Resilient.out_of_time pol))

(* ---- supervised solves ---- *)

let test_inline_solve_and_cache () =
  let ctx = Supervise.create ~run_dir:(tmp_dir ()) ~isolate:false () in
  let p = small_problem () in
  let sol = Supervise.solve_sdp ctx ~label:"unit" p in
  Alcotest.(check bool) "solved" true (sol.Sdp.status = Sdp.Optimal);
  let st = Supervise.stats ctx in
  Alcotest.(check int) "first solve misses the cache" 0 st.Supervise.cache_hits;
  Alcotest.(check int) "clean result stored" 1 st.Supervise.cache_stores;
  let sol' = Supervise.solve_sdp ctx ~label:"unit" p in
  Alcotest.(check int) "second request hits the cache" 1 st.Supervise.cache_hits;
  Alcotest.(check (float 0.0)) "cached objective is bit-identical" sol.Sdp.primal_obj
    sol'.Sdp.primal_obj

let test_forked_solve () =
  let ctx = Supervise.create ~jobs:1 () in
  let p = small_problem () in
  let sol = Supervise.solve_sdp ctx ~label:"forked" p in
  Alcotest.(check bool) "worker result crosses back" true (sol.Sdp.status = Sdp.Optimal);
  Alcotest.(check int) "one worker forked" 1 (Supervise.stats ctx).Supervise.forked

let test_worker_kill_is_synthetic_failure () =
  let ctx = Supervise.create ~jobs:1 () in
  let p = small_problem () in
  let pf = { Supervise.Fault.kind = Supervise.Fault.Kill; solve = 1; iter = 1 } in
  let sol = Supervise.solve_sdp ctx ~label:"killed" ~proc_fault:pf p in
  Alcotest.(check bool) "crash surfaces as Numerical_failure" true
    (sol.Sdp.status = Sdp.Numerical_failure);
  Alcotest.(check bool) "synthetic solution is never salvageable" true
    (sol.Sdp.best_score = Float.infinity);
  Alcotest.(check int) "crash counted" 1 (Supervise.stats ctx).Supervise.crashes

let test_worker_timeout_reaped () =
  let ctx = Supervise.create ~jobs:1 ~solve_timeout_s:0.5 () in
  let p = small_problem () in
  let pf = { Supervise.Fault.kind = Supervise.Fault.Stall; solve = 1; iter = 1 } in
  let sol = Supervise.solve_sdp ctx ~label:"stalled" ~proc_fault:pf p in
  Alcotest.(check bool) "timeout surfaces as Max_iterations" true
    (sol.Sdp.status = Sdp.Max_iterations);
  Alcotest.(check int) "timeout counted" 1 (Supervise.stats ctx).Supervise.timeouts

(* ---- pool ---- *)

let test_pool_map_order_and_errors () =
  let ctx = Supervise.create ~jobs:4 () in
  let items = [ 1; 2; 3; 4; 5; 6 ] in
  let f _ x = if x = 4 then failwith "boom" else x * x in
  let results = Supervise.Pool.map ctx ~f items in
  Alcotest.(check int) "one result per item" (List.length items) (List.length results);
  List.iteri
    (fun i r ->
      let x = List.nth items i in
      match r with
      | Ok y -> Alcotest.(check int) (Printf.sprintf "item %d in order" x) (x * x) y
      | Error e ->
          Alcotest.(check int) "only the raising item errors" 4 x;
          Alcotest.(check bool) "worker exception captured" true
            (String.length e > 0))
    results

let test_pool_jobs_equivalence () =
  let run jobs =
    let ctx = Supervise.create ~jobs () in
    Supervise.Pool.map ctx ~f:(fun i x -> (i * 1000) + (x * x)) [ 3; 1; 4; 1; 5 ]
  in
  let unpack = List.map (function Ok v -> v | Error e -> Alcotest.fail e) in
  Alcotest.(check (list int)) "-j1 and -j4 produce identical results"
    (unpack (run 1)) (unpack (run 4))

let test_interrupt_raises () =
  let ctx = Supervise.create ~jobs:2 () in
  Supervise.interrupt ctx;
  (try
     ignore (Supervise.solve_sdp ctx ~label:"late" (small_problem ()));
     Alcotest.fail "interrupted context still solved"
   with Supervise.Interrupted -> ());
  try
    ignore (Supervise.Pool.map ctx ~f:(fun _ x -> x) [ 1 ]);
    Alcotest.fail "interrupted context still pooled"
  with Supervise.Interrupted -> ()

(* Advisory run-dir lock: fresh acquire, reentrancy, stale-holder steal,
   and the structured refusal when a live process holds it. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let lock_tmpdir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "supervise-lock-%d-%.0f" (Unix.getpid ())
         (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir d 0o755;
  d

let test_lock_acquire_and_reenter () =
  let dir = lock_tmpdir () in
  (match Supervise.Lock.acquire ~dir () with
  | Ok Supervise.Lock.Acquired -> ()
  | _ -> Alcotest.fail "fresh acquire");
  Alcotest.(check (option int)) "holder recorded" (Some (Unix.getpid ()))
    (Supervise.Lock.holder ~dir);
  (match Supervise.Lock.acquire ~dir () with
  | Ok Supervise.Lock.Reentrant -> ()
  | _ -> Alcotest.fail "same process re-acquires");
  Supervise.Lock.release ~dir;
  Alcotest.(check (option int)) "released" None (Supervise.Lock.holder ~dir)

let test_lock_steals_stale () =
  let dir = lock_tmpdir () in
  (* A dead holder: fork a child that exits immediately, use its pid. *)
  let dead =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  let oc = open_out (Supervise.Lock.path dir) in
  output_string oc (string_of_int dead);
  close_out oc;
  (match Supervise.Lock.acquire ~dir () with
  | Ok (Supervise.Lock.Stolen_stale pid) -> Alcotest.(check int) "stale pid" dead pid
  | _ -> Alcotest.fail "stale lock must be stolen");
  Supervise.Lock.release ~dir

(* Two live contenders racing the same stale pidfile: the claim
   protocol must elect exactly one winner; the loser gets the
   structured run-dir-locked refusal, and the survivor pidfile names
   the winner. *)
let test_lock_stale_steal_contention () =
  let dir = lock_tmpdir () in
  let dead =
    match Unix.fork () with
    | 0 -> Unix._exit 0
    | pid ->
        ignore (Unix.waitpid [] pid);
        pid
  in
  let oc = open_out (Supervise.Lock.path dir) in
  output_string oc (string_of_int dead);
  close_out oc;
  let go_r, go_w = Unix.pipe () in
  let contender () =
    match Unix.fork () with
    | 0 ->
        Unix.close go_w;
        (* Block until the parent fires the start gun, so both
           contenders hit the stale file as close together as fork
           allows. *)
        ignore (Unix.read go_r (Bytes.create 1) 0 1);
        Unix.close go_r;
        let outcome =
          match Supervise.Lock.acquire ~dir ~wait_s:0.0 () with
          | Ok _ -> 0 (* winner *)
          | Error diag when contains diag "run-dir-locked" -> 1 (* loser *)
          | Error _ -> 2
        in
        Unix._exit outcome
    | pid -> pid
  in
  let a = contender () in
  let b = contender () in
  Unix.close go_r;
  ignore (Unix.write_substring go_w "go" 0 2);
  Unix.close go_w;
  let wait pid =
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED c -> c
    | _ -> 2
  in
  let ra = wait a and rb = wait b in
  let outcomes = List.sort compare [ ra; rb ] in
  Alcotest.(check (list int)) "exactly one winner, one structured refusal"
    [ 0; 1 ] outcomes;
  (* The survivor pidfile must name the winner (a live contender), not
     the dead pid and not a mix of both writes. *)
  (match Supervise.Lock.holder ~dir with
  | Some pid ->
      Alcotest.(check bool) "holder is the winner" true (pid = a || pid = b);
      Alcotest.(check bool) "stale holder fully replaced" true (pid <> dead)
  | None -> Alcotest.fail "no holder after a successful steal");
  (* The winner has exited by now, so its lock is stale in turn and a
     third contender steals it cleanly — the protocol leaves no debris
     (claim files) that would wedge future acquisitions. *)
  (match Supervise.Lock.acquire ~dir ~wait_s:0.0 () with
  | Ok (Supervise.Lock.Stolen_stale pid) ->
      Alcotest.(check bool) "third contender steals the dead winner's lock" true
        (pid = a || pid = b)
  | Ok _ -> Alcotest.fail "expected a stale steal, not a fresh acquire"
  | Error diag -> Alcotest.fail ("third contender refused: " ^ diag));
  Supervise.Lock.release ~dir

let test_lock_refuses_live_holder () =
  let dir = lock_tmpdir () in
  (* A live holder this process does not own: init (pid 1). *)
  let oc = open_out (Supervise.Lock.path dir) in
  output_string oc "1";
  close_out oc;
  match Supervise.Lock.acquire ~dir ~wait_s:0.0 () with
  | Ok _ -> Alcotest.fail "live holder must refuse"
  | Error diag ->
      Alcotest.(check bool) "structured diagnosis" true
        (contains diag "run-dir-locked" && contains diag "\"holder_pid\":1")

(* Config fingerprint guard: first use records, match passes, drift is a
   structured refusal. *)

let test_config_guard () =
  let dir = lock_tmpdir () in
  (match Supervise.Config_guard.check ~run_dir:dir ~fingerprint:"cfg v1" ~summary:"s1" with
  | Ok Supervise.Config_guard.Fresh -> ()
  | _ -> Alcotest.fail "first check records");
  (match Supervise.Config_guard.check ~run_dir:dir ~fingerprint:"cfg v1" ~summary:"s1" with
  | Ok Supervise.Config_guard.Matched -> ()
  | _ -> Alcotest.fail "same config matches");
  match Supervise.Config_guard.check ~run_dir:dir ~fingerprint:"cfg v2" ~summary:"s2" with
  | Error diag ->
      Alcotest.(check bool) "drift diagnosis" true
        (contains diag "config-drift" && contains diag "s1" && contains diag "s2")
  | Ok _ -> Alcotest.fail "drifted config must refuse"

let suite =
  [
    Alcotest.test_case "fingerprint-stable" `Quick test_fingerprint_stable;
    Alcotest.test_case "lock-acquire-reenter" `Quick test_lock_acquire_and_reenter;
    Alcotest.test_case "lock-steals-stale" `Quick test_lock_steals_stale;
    Alcotest.test_case "lock-stale-steal-contention" `Quick test_lock_stale_steal_contention;
    Alcotest.test_case "cache-gc-lru" `Quick test_cache_gc_lru;
    Alcotest.test_case "lock-refuses-live-holder" `Quick test_lock_refuses_live_holder;
    Alcotest.test_case "config-guard" `Quick test_config_guard;
    Alcotest.test_case "fingerprint-ignores-hooks" `Quick test_fingerprint_ignores_hooks;
    Alcotest.test_case "cache-roundtrip" `Quick test_cache_roundtrip;
    Alcotest.test_case "cache-missing" `Quick test_cache_missing;
    Alcotest.test_case "cache-truncation-diagnosed" `Quick test_cache_truncation_diagnosed;
    Alcotest.test_case "cache-digest-mismatch" `Quick test_cache_digest_mismatch;
    Alcotest.test_case "journal-tolerant-read" `Quick test_journal_tolerant_read;
    Alcotest.test_case "journal-missing" `Quick test_journal_missing;
    Alcotest.test_case "fault-parse" `Quick test_fault_parse;
    Alcotest.test_case "mixed-plan-parse" `Quick test_mixed_plan_parse;
    Alcotest.test_case "fault-for-solve" `Quick test_fault_for_solve;
    Alcotest.test_case "wall-clock-deadline" `Quick test_wall_clock_deadline;
    Alcotest.test_case "cpu-clock-ignores-wall-source" `Quick test_cpu_clock_ignores_wall_source;
    Alcotest.test_case "inline-solve-and-cache" `Quick test_inline_solve_and_cache;
    Alcotest.test_case "forked-solve" `Quick test_forked_solve;
    Alcotest.test_case "worker-kill-synthetic-failure" `Quick test_worker_kill_is_synthetic_failure;
    Alcotest.test_case "worker-timeout-reaped" `Quick test_worker_timeout_reaped;
    Alcotest.test_case "pool-order-and-errors" `Quick test_pool_map_order_and_errors;
    Alcotest.test_case "pool-jobs-equivalence" `Quick test_pool_jobs_equivalence;
    Alcotest.test_case "interrupt-raises" `Quick test_interrupt_raises;
  ]
