(* Tests for the verification service layer: the minimal JSON codec,
   canonical job lines and fingerprints, the crash-safe queue ledger's
   replay/compaction, and the clock-injected circuit breaker. *)

let tmp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "pll-test-service-%d-%d" (Unix.getpid ()) !n)
    in
    Unix.mkdir d 0o755;
    d

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* ---- json ---- *)

let test_json_roundtrip () =
  let v =
    Service.Json.(
      Obj
        [
          ("s", Str "he\"llo\nworld\t\\");
          ("n", Num 0.5);
          ("i", Num 125.0);
          ("big", Num 1.2345678901234e-17);
          ("b", Bool true);
          ("z", Null);
          ("a", Arr [ Num 1.0; Str ""; Obj [] ]);
        ])
  in
  let s = Service.Json.to_string v in
  (match Service.Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok v' ->
      Alcotest.(check bool) "parse inverts print" true (v = v');
      (* Determinism: print ∘ parse is the identity on printed bytes,
         which is what lets the daemon re-embed stored result JSON. *)
      Alcotest.(check string) "print/parse/print is byte-stable" s
        (Service.Json.to_string v'));
  Alcotest.(check bool) "integers print bare" true (contains s "\"i\":125")

let test_json_escapes () =
  match Service.Json.parse "{\"k\":\"a\\u0041\\n\\\"\\\\b\"}" with
  | Ok (Service.Json.Obj [ ("k", Service.Json.Str s) ]) ->
      Alcotest.(check string) "escape sequences decode" "aA\n\"\\b" s
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_json_malformed () =
  let bad s =
    match Service.Json.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "accepted malformed %S" s)
  in
  bad "";
  bad "{";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad "[1,]";
  bad "{\"a\":1} trailing";
  bad "nul"

(* ---- job lines and fingerprints ---- *)

let spec_with_point () =
  {
    (Service.Job.default_spec Pll.Third) with
    Service.Job.degree = 4;
    robust = true;
    (* Already in canonical (axis-declaration) order so the parsed
       line compares structurally equal. *)
    point = [ (Pll.Ip, 1.05); (Pll.Kv, 0.9) ];
    bisect_steps = 3;
    psd_tol = Some 1e-6;
    deadline_s = Some 12.5;
  }

let test_job_line_roundtrip () =
  let spec = spec_with_point () in
  (match Service.Job.of_line (Service.Job.to_line spec) with
  | Error e -> Alcotest.fail e
  | Ok spec' ->
      Alcotest.(check bool) "round-trips (deadline excluded)" true
        (spec' = { spec with Service.Job.deadline_s = None }));
  match Service.Job.of_line (Service.Job.to_line ~with_deadline:true spec) with
  | Error e -> Alcotest.fail e
  | Ok spec' ->
      Alcotest.(check bool) "deadline variant round-trips exactly" true (spec' = spec)

let test_fingerprint_deadline_independent () =
  let spec = spec_with_point () in
  let spec' = { spec with Service.Job.deadline_s = Some 99.0 } in
  Alcotest.(check string) "deadline does not change the job identity"
    (Service.Job.fingerprint spec)
    (Service.Job.fingerprint spec');
  let other = { spec with Service.Job.degree = 6 } in
  Alcotest.(check bool) "problem fields do" true
    (Service.Job.fingerprint spec <> Service.Job.fingerprint other)

let test_fingerprint_point_order_canonical () =
  let a = { (Service.Job.default_spec Pll.Third) with
            Service.Job.point = [ (Pll.Ip, 1.05); (Pll.Kv, 0.9) ] } in
  let b = { a with Service.Job.point = [ (Pll.Kv, 0.9); (Pll.Ip, 1.05) ] } in
  Alcotest.(check string) "axis listing order is canonicalized away"
    (Service.Job.fingerprint a) (Service.Job.fingerprint b)

let test_point_parse () =
  (match Service.Job.point_of_string "ip=1.05,kv=0.9" with
  | Ok [ (Pll.Ip, 1.05); (Pll.Kv, 0.9) ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e);
  (match Service.Job.point_of_string "" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "empty point is nominal");
  (match Service.Job.point_of_string "ip:1.05" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing = accepted");
  match Service.Job.point_of_string "bogus=1.0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown axis accepted"

let test_validate_refuses () =
  let d = Service.Job.default_spec Pll.Third in
  let bad spec what =
    match Service.Job.validate spec with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (what ^ " accepted")
  in
  bad { d with Service.Job.degree = 0 } "degree 0";
  bad { d with Service.Job.deadline_s = Some 0.0 } "zero deadline";
  bad { d with Service.Job.point = [ (Pll.Ip, -1.0) ] } "negative factor";
  bad
    { d with Service.Job.point = [ (Pll.Ip, 1.0); (Pll.Ip, 2.0) ] }
    "duplicate axis"

let test_spec_json_roundtrip () =
  let spec = spec_with_point () in
  match Service.Job.spec_of_json (Service.Job.spec_to_json spec) with
  | Error e -> Alcotest.fail e
  | Ok spec' ->
      Alcotest.(check bool) "wire encoding round-trips" true
        (spec' = { spec with Service.Job.point = Service.Job.(
             match point_of_string (point_to_string spec.point) with
             | Ok p -> p
             | Error _ -> [] ) });
      Alcotest.(check string) "same fingerprint across the wire"
        (Service.Job.fingerprint spec)
        (Service.Job.fingerprint spec')

let test_result_json_roundtrip () =
  let r =
    {
      Service.Job.verdict = Service.Job.Not_established;
      beta = 0.0;
      kind = "infeasible";
      detail = "conclusively infeasible at P1";
      solves = 7;
      attempts = 2;
      attempt_s = 1.5;
      deadline_hit = false;
    }
  in
  let s = Service.Job.result_json r in
  match Service.Json.parse s with
  | Error e -> Alcotest.fail e
  | Ok j -> (
      match Service.Job.result_of_json j with
      | Error e -> Alcotest.fail e
      | Ok r' ->
          Alcotest.(check bool) "stable core survives" true
            (r'.Service.Job.verdict = r.Service.Job.verdict
            && r'.Service.Job.kind = r.Service.Job.kind
            && r'.Service.Job.detail = r.Service.Job.detail);
          Alcotest.(check int) "counters are not part of the stable core" 0
            r'.Service.Job.solves)

(* ---- queue ledger ---- *)

let open_q dir =
  match Service.Jobqueue.open_ ~dir with
  | Ok v -> v
  | Error e -> Alcotest.fail e

let test_queue_replay_and_compaction () =
  let dir = tmp_dir () in
  let q, recovered, diags = open_q dir in
  Alcotest.(check int) "fresh queue is empty" 0 (List.length recovered);
  Alcotest.(check int) "no diagnoses" 0 (List.length diags);
  Alcotest.(check bool) "fresh ledger" false (Service.Jobqueue.had_entries q);
  let s1 = Service.Job.default_spec Pll.Third in
  let s2 = { s1 with Service.Job.degree = 4 } in
  let s3 = { s1 with Service.Job.degree = 5 } in
  let e1 = Service.Jobqueue.submit q s1 in
  let e2 = Service.Jobqueue.submit q s2 in
  let e3 = Service.Jobqueue.submit q s3 in
  Alcotest.(check string) "sequential ids" "j1" e1.Service.Jobqueue.id;
  Alcotest.(check string) "sequential ids" "j3" e3.Service.Jobqueue.id;
  Service.Jobqueue.start q e1;
  Service.Jobqueue.finish q e1 Service.Job.Verified;
  Service.Jobqueue.start q e2;
  (* e2 running (daemon killed mid-job), e3 still pending. *)
  Service.Jobqueue.close q;
  let q2, recovered, diags = open_q dir in
  Alcotest.(check int) "replay is clean" 0 (List.length diags);
  Alcotest.(check bool) "previous entries noticed" true
    (Service.Jobqueue.had_entries q2);
  Alcotest.(check (list string)) "terminal job compacted, others recovered"
    [ "j2"; "j3" ]
    (List.map (fun e -> e.Service.Jobqueue.id) recovered);
  List.iter
    (fun e ->
      Alcotest.(check bool)
        (e.Service.Jobqueue.id ^ " recovered as pending")
        true
        (e.Service.Jobqueue.state = Service.Jobqueue.Pending))
    recovered;
  Alcotest.(check string) "recovered spec survives"
    (Service.Job.fingerprint s2)
    (List.nth recovered 0).Service.Jobqueue.fp;
  let e4 = Service.Jobqueue.submit q2 { s1 with Service.Job.degree = 7 } in
  Alcotest.(check string) "seq high-water survives restart" "j4"
    e4.Service.Jobqueue.id;
  Service.Jobqueue.close q2

let test_queue_tolerates_garbage () =
  let dir = tmp_dir () in
  let q, _, _ = open_q dir in
  let e = Service.Jobqueue.submit q (Service.Job.default_spec Pll.Third) in
  ignore e;
  Service.Jobqueue.close q;
  (* Simulate a crash-truncated tail and stray corruption. *)
  let oc =
    open_out_gen [ Open_append ] 0o644 (Service.Jobqueue.path dir)
  in
  output_string oc "done j1\n";
  (* missing verdict *)
  output_string oc "gibberish\n";
  output_string oc "submit j9 cafe pll-job v1 order=thi";
  (* truncated, no \n *)
  close_out oc;
  let q2, recovered, diags = open_q dir in
  Alcotest.(check (list string)) "well-formed entry survives" [ "j1" ]
    (List.map (fun e -> e.Service.Jobqueue.id) recovered);
  Alcotest.(check bool) "malformed lines become diagnoses, not raises" true
    (List.length diags >= 2);
  Service.Jobqueue.close q2

let test_queue_cancel_is_terminal () =
  let dir = tmp_dir () in
  let q, _, _ = open_q dir in
  let e = Service.Jobqueue.submit q (Service.Job.default_spec Pll.Third) in
  Service.Jobqueue.cancel q e;
  Service.Jobqueue.close q;
  let q2, recovered, _ = open_q dir in
  Alcotest.(check int) "cancelled jobs are not recovered" 0
    (List.length recovered);
  Service.Jobqueue.close q2

(* ---- circuit breaker ---- *)

let test_breaker_state_machine () =
  let clock = ref 0.0 in
  let b = Service.Breaker.create ~threshold:2 ~cooldown_s:10.0 ~now:(fun () -> !clock) () in
  Alcotest.(check bool) "closed admits" true (Service.Breaker.allow b);
  Service.Breaker.failure b;
  Alcotest.(check bool) "below threshold stays closed" true
    (Service.Breaker.state b = Service.Breaker.Closed);
  Service.Breaker.success b;
  Service.Breaker.failure b;
  Alcotest.(check bool) "success resets the consecutive count" true
    (Service.Breaker.state b = Service.Breaker.Closed);
  Service.Breaker.failure b;
  Alcotest.(check bool) "threshold consecutive failures trip" true
    (Service.Breaker.state b = Service.Breaker.Open);
  Alcotest.(check int) "trip counted" 1 (Service.Breaker.trips b);
  Alcotest.(check bool) "open refuses" false (Service.Breaker.allow b);
  Alcotest.(check bool) "retry hint while open" true
    (Service.Breaker.retry_after_s b > 0.0);
  clock := 10.5;
  Alcotest.(check bool) "cooldown lapses to half-open" true
    (Service.Breaker.state b = Service.Breaker.Half_open);
  Alcotest.(check bool) "half-open admits one probe" true (Service.Breaker.allow b);
  Alcotest.(check bool) "only one probe" false (Service.Breaker.allow b);
  Service.Breaker.failure b;
  Alcotest.(check bool) "probe failure re-opens" true
    (Service.Breaker.state b = Service.Breaker.Open);
  clock := 21.0;
  Alcotest.(check bool) "second probe after second cooldown" true
    (Service.Breaker.allow b);
  Service.Breaker.success b;
  Alcotest.(check bool) "probe success closes" true
    (Service.Breaker.state b = Service.Breaker.Closed);
  Alcotest.(check (float 0.0)) "no retry hint when closed" 0.0
    (Service.Breaker.retry_after_s b)

(* ---- daemon fault-plan parsing ---- *)

let test_daemon_fault_parse () =
  (match Service.Daemon.Fault.of_string "kill-worker@j2,wedge-queue,die@j3" with
  | Ok plan ->
      Alcotest.(check string) "round-trips" "kill-worker@j2,wedge-queue,die@j3"
        (Service.Daemon.Fault.to_string plan)
  | Error e -> Alcotest.fail e);
  (match Service.Daemon.Fault.of_string "none" with
  | Ok [] -> ()
  | _ -> Alcotest.fail "none must be the empty plan");
  match Service.Daemon.Fault.of_string "melt@j1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown fault accepted"

let suite =
  [
    Alcotest.test_case "json-roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json-escapes" `Quick test_json_escapes;
    Alcotest.test_case "json-malformed" `Quick test_json_malformed;
    Alcotest.test_case "job-line-roundtrip" `Quick test_job_line_roundtrip;
    Alcotest.test_case "fingerprint-deadline-independent" `Quick
      test_fingerprint_deadline_independent;
    Alcotest.test_case "fingerprint-point-order" `Quick
      test_fingerprint_point_order_canonical;
    Alcotest.test_case "point-parse" `Quick test_point_parse;
    Alcotest.test_case "validate-refuses" `Quick test_validate_refuses;
    Alcotest.test_case "spec-json-roundtrip" `Quick test_spec_json_roundtrip;
    Alcotest.test_case "result-json-roundtrip" `Quick test_result_json_roundtrip;
    Alcotest.test_case "queue-replay-compaction" `Quick
      test_queue_replay_and_compaction;
    Alcotest.test_case "queue-tolerates-garbage" `Quick test_queue_tolerates_garbage;
    Alcotest.test_case "queue-cancel-terminal" `Quick test_queue_cancel_is_terminal;
    Alcotest.test_case "breaker-state-machine" `Quick test_breaker_state_machine;
    Alcotest.test_case "daemon-fault-parse" `Quick test_daemon_fault_parse;
  ]
