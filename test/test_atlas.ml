(* Tests of the certification-atlas sweep layer: grid parsing, cell
   geometry and ids, adaptive subdivision, fault-plan parsing, the
   write-ahead ledger, and the deterministic report. *)

let check = Alcotest.(check bool)

let grid s =
  match Atlas.Grid.parse s with
  | Ok g -> g
  | Error e -> Alcotest.failf "grid %S rejected: %s" s e

let faults s =
  match Atlas.Fault.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "fault plan %S rejected: %s" s e

let tmpdir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "atlas-test-%d-%.0f" (Unix.getpid ()) (Unix.gettimeofday () *. 1e6))
  in
  Unix.mkdir d 0o755;
  d

(* ------------------------------------------------------------------ *)
(* Grid *)

let test_grid_parse () =
  let g = grid "ip=0.8:1.2:3, kv=0.9:1.1" in
  Alcotest.(check int) "cells" 3 (Atlas.Grid.n_cells g);
  Alcotest.(check string) "canonical" "ip=0.8:1.2:3,kv=0.9:1.1:1" (Atlas.Grid.to_string g);
  (* Canonical form round-trips. *)
  Alcotest.(check string) "round trip"
    (Atlas.Grid.to_string g)
    (Atlas.Grid.to_string (grid (Atlas.Grid.to_string g)));
  let point = grid "ip=1.0" in
  Alcotest.(check int) "point grid" 1 (Atlas.Grid.n_cells point);
  List.iter
    (fun bad ->
      match Atlas.Grid.parse bad with
      | Ok _ -> Alcotest.failf "grid %S should be rejected" bad
      | Error _ -> ())
    [ ""; "ip"; "ip=1.2:0.8"; "ip=0:1"; "ip=-1:1"; "ip=0.8:1.2:0"; "bogus=1:2";
      "ip=1:2,ip=1:2" ]

let test_grid_cells () =
  let cells = Atlas.grid_cells (grid "ip=0.8:1.2:2,kv=0.9:1.1:2") in
  Alcotest.(check (list string)) "ids"
    [ "c0-0"; "c0-1"; "c1-0"; "c1-1" ]
    (List.map (fun c -> c.Atlas.id) cells);
  let c00 = List.hd cells in
  Alcotest.(check int) "depth" 0 c00.Atlas.depth;
  (match c00.Atlas.box with
  | [ (Pll.Ip, lo, hi); (Pll.Kv, klo, khi) ] ->
      check "ip lower half" true (abs_float (lo -. 0.8) < 1e-12 && abs_float (hi -. 1.0) < 1e-12);
      check "kv lower half" true (abs_float (klo -. 0.9) < 1e-12 && abs_float (khi -. 1.0) < 1e-12)
  | _ -> Alcotest.fail "unexpected box shape");
  (* The last cell ends exactly at the spec's upper bound. *)
  let c11 = List.nth cells 3 in
  (match c11.Atlas.box with
  | [ (_, _, hi); (_, _, khi) ] ->
      check "exact upper bounds" true (hi = 1.2 && khi = 1.1)
  | _ -> Alcotest.fail "unexpected box shape")

let test_split () =
  let cells = Atlas.grid_cells (grid "ip=0.8:1.2,kv=0.95:1.05") in
  let c = List.hd cells in
  (match Atlas.split c with
  | None -> Alcotest.fail "box cell must split"
  | Some (a, b) ->
      Alcotest.(check string) "child 0 id" "c0-0.0" a.Atlas.id;
      Alcotest.(check string) "child 1 id" "c0-0.1" b.Atlas.id;
      Alcotest.(check int) "child depth" 1 a.Atlas.depth;
      (* ip is the widest axis (0.4 vs 0.1): it is the one bisected. *)
      (match (a.Atlas.box, b.Atlas.box) with
      | [ (Pll.Ip, alo, ahi); (Pll.Kv, klo, khi) ], [ (Pll.Ip, blo, bhi); _ ] ->
          check "bisect widest" true
            (abs_float (ahi -. 1.0) < 1e-12 && abs_float (blo -. 1.0) < 1e-12);
          check "halves tile parent" true (alo = 0.8 && bhi = 1.2);
          check "narrow axis untouched" true (klo = 0.95 && khi = 1.05)
      | _ -> Alcotest.fail "unexpected child boxes"));
  let point = List.hd (Atlas.grid_cells (grid "ip=1.0")) in
  check "point cell cannot split" true (Atlas.split point = None)

(* ------------------------------------------------------------------ *)
(* Fault plans *)

let test_fault_plan () =
  check "empty" true (Atlas.Fault.of_string "" = Ok Atlas.Fault.none);
  check "none" true (Atlas.Fault.of_string "none" = Ok Atlas.Fault.none);
  (* kill@S:I stays a worker fault; kill@CELL is the orchestrator kill. *)
  let p = faults "kill@1:2,kill@c0,fail-cell@c1.0,c0/fail@1:1,trunc@*:3" in
  Alcotest.(check string) "round trip" "kill@1:2,kill@c0,fail-cell@c1.0,c0/fail@1:1,trunc@*:3"
    (Atlas.Fault.to_string p);
  check "kinds" true
    (match p with
    | [ Atlas.Fault.Global "kill@1:2"; Kill_at_cell "c0"; Fail_cell "c1.0";
        Cell_scoped ("c0", "fail@1:1"); Global "trunc@*:3" ] -> true
    | _ -> false);
  List.iter
    (fun bad ->
      match Atlas.Fault.of_string bad with
      | Ok _ -> Alcotest.failf "fault %S should be rejected" bad
      | Error _ -> ())
    [ "bogus@x"; "kill@"; "fail-cell@"; "/fail@1:1"; "c0/"; "c0/bogus@1" ]

(* ------------------------------------------------------------------ *)
(* Ledger *)

let entry id depth result =
  { Atlas.Ledger.id; depth; result; solves = 3; attempts = 4; attempt_s = 1.5 }

let test_ledger_roundtrip () =
  let dir = tmpdir () in
  let e1 = entry "c0" 0 (Atlas.Certified { beta = 125.0 }) in
  let e2 = entry "c1" 0 Atlas.Subdivided in
  let e3 =
    entry "c1.0" 1
      (Atlas.Quarantined { kind = "injected"; detail = "fail-cell fault injected" })
  in
  Atlas.Ledger.mark_start dir "c0";
  Atlas.Ledger.append dir e1;
  Atlas.Ledger.append dir e2;
  Atlas.Ledger.append dir e3;
  let entries, diags = Atlas.Ledger.read dir in
  check "no diagnoses" true (diags = []);
  check "all entries" true (entries = [ e1; e2; e3 ]);
  (* Last entry per id wins (a resumed run may re-record a cell). *)
  let e1' = entry "c0" 0 (Atlas.Certified { beta = 250.0 }) in
  Atlas.Ledger.append dir e1';
  let entries, _ = Atlas.Ledger.read dir in
  check "last wins" true (List.exists (fun e -> e = e1') entries);
  Alcotest.(check int) "no duplicate ids" 3 (List.length entries);
  (* Beta survives the hex round trip bit-exactly. *)
  let beta_back =
    List.find_map
      (fun (e : Atlas.Ledger.entry) ->
        if e.Atlas.Ledger.id = "c0" then
          match e.Atlas.Ledger.result with
          | Atlas.Certified { beta } -> Some beta
          | _ -> None
        else None)
      entries
  in
  check "beta exact" true (beta_back = Some 250.0)

let test_ledger_tolerates_garbage () =
  let dir = tmpdir () in
  Atlas.Ledger.append dir (entry "c0" 0 (Atlas.Certified { beta = 1.0 }));
  (* Simulate a line truncated by a crash mid-append plus stray bytes. *)
  let oc = open_out_gen [ Open_append ] 0o644 (Atlas.Ledger.path dir) in
  output_string oc "done c1 0 certif";
  close_out oc;
  let entries, diags = Atlas.Ledger.read dir in
  Alcotest.(check int) "good entry kept" 1 (List.length entries);
  Alcotest.(check int) "garbage diagnosed" 1 (List.length diags);
  check "missing ledger reads empty" true (Atlas.Ledger.read (tmpdir ()) = ([], []))

(* ------------------------------------------------------------------ *)
(* Jobs, fingerprints, reports *)

let test_fingerprint () =
  let job = Atlas.default_job Pll.Third in
  let g = grid "ip=0.8:1.2:3" in
  Alcotest.(check string) "stable" (Atlas.fingerprint job g) (Atlas.fingerprint job g);
  check "degree changes it" true
    (Atlas.fingerprint job g <> Atlas.fingerprint { job with Atlas.degree = 4 } g);
  check "grid changes it" true
    (Atlas.fingerprint job g <> Atlas.fingerprint job (grid "ip=0.8:1.2:4"));
  check "budget does not change it" true
    (Atlas.fingerprint job g
    = Atlas.fingerprint { job with Atlas.cell_budget_s = Some 10.0 } g)

let mk_report records =
  let count f = List.length (List.filter f records) in
  {
    Atlas.job = Atlas.default_job Pll.Third;
    grid = grid "ip=0.8:1.2:2";
    records;
    certified =
      count (fun r -> match r.Atlas.result with Atlas.Certified _ -> true | _ -> false);
    subdivided = count (fun r -> r.Atlas.result = Atlas.Subdivided);
    quarantined =
      count (fun r -> match r.Atlas.result with Atlas.Quarantined _ -> true | _ -> false);
    replayed_cells = 0;
    wall_s = 12.3;
  }

let record cell result =
  { Atlas.cell; result; replayed = false; solves = 1; attempts = 1; attempt_s = 0.5 }

let test_report () =
  let cells = Atlas.grid_cells (grid "ip=0.8:1.2:2") in
  let c0 = List.nth cells 0 and c1 = List.nth cells 1 in
  let c10, c11 =
    match Atlas.split c1 with Some p -> p | None -> Alcotest.fail "split"
  in
  let r =
    mk_report
      [
        record c0 (Atlas.Certified { beta = 125.0 });
        record c1 Atlas.Subdivided;
        record c10 (Atlas.Certified { beta = 60.0 });
        record c11 (Atlas.Quarantined { kind = "infeasible"; detail = "at cert" });
      ]
  in
  check "fraction over leaves" true (abs_float (Atlas.certified_fraction r -. 2.0 /. 3.0) < 1e-9);
  check "histogram" true (Atlas.depth_histogram r = [ (0, 2); (1, 2) ]);
  check "quarantine list" true
    (Atlas.quarantine_list r
    = [ ("c1.1", { Atlas.kind = "infeasible"; detail = "at cert" }) ]);
  Alcotest.(check int) "exit 2 when quarantined" 2 (Atlas.exit_code r);
  let clean = mk_report [ record c0 (Atlas.Certified { beta = 125.0 }) ] in
  Alcotest.(check int) "exit 0 when clean" 0 (Atlas.exit_code clean);
  let json = Atlas.report_json r in
  List.iter
    (fun needle ->
      check (Printf.sprintf "json has %s" needle) true
        (let nh = String.length json and nn = String.length needle in
         let rec go i = i + nn <= nh && (String.sub json i nn = needle || go (i + 1)) in
         go 0))
    [
      "\"certified\":2"; "\"quarantined\":1"; "\"id\":\"c1.1\"";
      "\"kind\":\"infeasible\""; "\"beta\":125"; "\"depth_histogram\"";
    ];
  (* Determinism: the json must not mention wall-clock or replay state. *)
  check "no wall time in json" true
    (Atlas.report_json r = Atlas.report_json { r with Atlas.wall_s = 99.0; replayed_cells = 4 })

(* ------------------------------------------------------------------ *)
(* Setup validation *)

let test_run_validation () =
  let ctx = Supervise.create ~jobs:1 () in
  let job = Atlas.default_job Pll.Third in
  (* c3 only exists at fourth order. *)
  (match Atlas.run ~ctx ~resume:false job (grid "c3=0.9:1.1") with
  | Error e -> check "axis/order mismatch message" true (e <> "")
  | Ok _ -> Alcotest.fail "third-order sweep over c3 must be refused");
  (* Fourth order accepts c3 grids; a fail-cell fault keeps the run free
     of actual solves, so only the setup path is exercised. *)
  let ctx4 = Supervise.create ~jobs:1 () in
  match
    Atlas.run ~ctx:ctx4
      ~faults:[ Atlas.Fault.Fail_cell "c0" ]
      ~resume:false
      { (Atlas.default_job Pll.Fourth) with Atlas.max_subdiv = 0 }
      (grid "c3=1.0")
  with
  | Error e -> Alcotest.failf "fourth-order c3 sweep refused: %s" e
  | Ok r ->
      Alcotest.(check int) "one quarantined cell" 1 r.Atlas.quarantined;
      check "no solving happened" true
        (List.for_all (fun rc -> rc.Atlas.solves = 0) r.Atlas.records)

let suite =
  [
    Alcotest.test_case "grid parsing" `Quick test_grid_parse;
    Alcotest.test_case "grid cells" `Quick test_grid_cells;
    Alcotest.test_case "subdivision" `Quick test_split;
    Alcotest.test_case "fault plans" `Quick test_fault_plan;
    Alcotest.test_case "ledger round trip" `Quick test_ledger_roundtrip;
    Alcotest.test_case "ledger tolerates garbage" `Quick test_ledger_tolerates_garbage;
    Alcotest.test_case "config fingerprint" `Quick test_fingerprint;
    Alcotest.test_case "report and exit codes" `Quick test_report;
    Alcotest.test_case "run validation" `Quick test_run_validation;
  ]
