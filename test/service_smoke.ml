(* End-to-end smoke test of the verification daemon, driven against the
   real binaries (paths arrive as argv from the dune rule):

   - crash-safe restart: submit a job and verify it; submit a second
     job that the daemon "kill -9"s itself on (--fault-plan die@j2,
     which fires after the start is ledgered — exit 137); restarting
     without --resume is refused (exit 1); restarting with --resume
     recovers the in-flight job and runs it to completion; resubmitting
     the first job is served from the result store byte-identically
     with ZERO re-solves (no SDP key is ever journalled as solved
     twice across the daemon's lifetimes);
   - backpressure: with the dispatcher wedged (--fault-plan
     wedge-queue) and --queue-cap 2, a duplicate submit dedups against
     the in-flight fingerprint and over-cap submits are shed with a
     structured overloaded refusal carrying retry_after_s — the daemon
     never hangs or grows the queue; SIGINT exits 130;
   - worker supervision: a SIGKILLed worker (--fault-plan
     kill-worker@j1) is retried with backoff and the job still
     verifies; the crash is counted in status;
   - cancellation: a waiting client dropped server-side (--fault-plan
     drop-client@j1) gets a structured server-gone diagnosis, and the
     daemon cancels the orphaned job, leaving the queue consistent;
   - exit-code discipline, end to end: 0 verified / 2 not-established
     (served from a pre-seeded result store) / 1 failure or refusal /
     124 usage / 130 interrupted / 137 simulated kill -9 / 0 drain. *)

let die fmt =
  Printf.ksprintf (fun m -> prerr_endline ("service_smoke: " ^ m); exit 1) fmt

let root =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pll-service-smoke-%d" (Unix.getpid ()))

let cleanup () = ignore (Sys.command ("rm -rf " ^ Filename.quote root))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Run a foreground command with output captured; on unexpected exit
   code the log is dumped so failures are diagnosable from CI output. *)
let n_runs = ref 0

let run ~expect ~what args =
  incr n_runs;
  let log = Filename.concat root (Printf.sprintf "run%02d.log" !n_runs) in
  let cmd = args ^ " > " ^ Filename.quote log ^ " 2>&1" in
  let code = Sys.command cmd in
  if code <> expect then begin
    prerr_endline ("--- " ^ what ^ ": " ^ cmd);
    prerr_endline (try read_file log with _ -> "(no output)");
    die "%s: expected exit %d, got %d" what expect code
  end;
  log

(* A daemon runs in the background; we hold its pid to signal it and
   collect its exit status. *)
type daemon = { pid : int; log : string }

let start_daemon ~exe ~dir ~sock extra =
  incr n_runs;
  let log = Filename.concat root (Printf.sprintf "run%02d-daemon.log" !n_runs) in
  let fd = Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let argv =
    Array.of_list
      ([ exe; "--run-dir"; dir; "--sock"; sock ] @ extra)
  in
  let pid = Unix.create_process exe argv Unix.stdin fd fd in
  Unix.close fd;
  { pid; log }

let wait_daemon ~what ~expect d =
  let code =
    match Unix.waitpid [] d.pid with
    | _, Unix.WEXITED c -> c
    | _, Unix.WSIGNALED s -> 128 + s
    | _, Unix.WSTOPPED _ -> die "%s: daemon stopped unexpectedly" what
  in
  if code <> expect then begin
    prerr_endline ("--- " ^ what ^ " daemon log:");
    prerr_endline (try read_file d.log with _ -> "(no output)");
    die "%s: daemon expected exit %d, got %d" what expect code
  end;
  d.log

(* A socket file can linger from a killed lifetime, so readiness is
   "the daemon answers status", not "the socket path exists". *)
let await_ready ~what ~client ~sock =
  let probe = client ^ " status --sock " ^ Filename.quote sock ^ " > /dev/null 2>&1" in
  let rec go n =
    if n > 100 then die "%s: daemon at %s never became ready" what sock
    else if Sys.command probe = 0 then ()
    else begin
      Unix.sleepf 0.1;
      go (n + 1)
    end
  in
  go 0

(* Poll the daemon until it is idle (nothing queued or running). *)
let await_idle ~what ~client ~sock =
  let rec go n =
    if n > 300 then die "%s: daemon never went idle" what
    else
      let log =
        run ~expect:0 ~what:(what ^ " (status poll)")
          (client ^ " status --sock " ^ Filename.quote sock)
      in
      let s = read_file log in
      if contains s "\"queue_depth\":0" && contains s "\"running\":0" then ()
      else begin
        Unix.sleepf 0.1;
        go (n + 1)
      end
  in
  go 0

(* Every `done _ _ solved` journal line names the SDP key it spent a
   real solve on; a key appearing twice means a restart re-solved
   cached work. *)
let assert_zero_resolves ~what journal =
  let seen = Hashtbl.create 64 in
  let ic = open_in journal in
  (try
     while true do
       let line = input_line ic in
       match String.split_on_char ' ' line with
       | "done" :: _seq :: key :: "solved" :: _ ->
           if Hashtbl.mem seen key then
             die "%s: SDP key %s solved twice — restart re-solved cached work" what
               key;
           Hashtbl.add seen key ()
       | _ -> ()
     done
   with End_of_file -> close_in ic);
  if Hashtbl.length seen = 0 then die "%s: journal has no solved entries at all" what

(* Extract the stable "result":{...} object from a client response. *)
let result_core ~what response =
  let marker = "\"result\":{" in
  let n = String.length response and m = String.length marker in
  let rec find i =
    if i + m > n then die "%s: no result object in %s" what response
    else if String.sub response i m = marker then i + m - 1
    else find (i + 1)
  in
  let start = find 0 in
  let rec close i depth =
    if i >= n then die "%s: unterminated result object" what
    else
      match response.[i] with
      | '{' -> close (i + 1) (depth + 1)
      | '}' -> if depth = 1 then i else close (i + 1) (depth - 1)
      | _ -> close (i + 1) depth
  in
  let stop = close start 0 in
  String.sub response start (stop - start + 1)

let () =
  if Array.length Sys.argv < 3 then die "usage: service_smoke VERIFYD_EXE VERIFY_CLIENT_EXE";
  let daemon_exe = Sys.argv.(1) in
  let client = Filename.quote Sys.argv.(2) in
  Unix.mkdir root 0o755;
  at_exit cleanup;
  let dir name =
    let d = Filename.concat root name in
    Unix.mkdir d 0o755;
    d
  in
  (* Degree 4 / 4 bisection steps keeps each job to a handful of small
     SDPs (the same cheap configuration atlas_smoke uses). *)
  let cheap = " -o third -d 4 --bisect-steps 4" in

  (* ---------------- crash-safe restart, zero re-solves ------------- *)
  let d1 = dir "crash" in
  let sock = Filename.concat d1 "verifyd.sock" in
  let qsock = Filename.quote sock in
  let submit_a () =
    run ~expect:0 ~what:"job A"
      (client ^ " submit --sock " ^ qsock ^ cheap)
  in
  (* Lifetime 1: die@j2 simulates kill -9 right after job j2's start is
     ledgered. *)
  let d =
    start_daemon ~exe:daemon_exe ~dir:d1 ~sock
      [ "--workers"; "1"; "--fault-plan"; "die@j2" ]
  in
  await_ready ~what:"lifetime 1" ~client ~sock;
  let a1 = read_file (submit_a ()) in
  if not (contains a1 "\"verdict\":\"verified\"") then die "job A did not verify:\n%s" a1;
  if not (contains a1 "\"cached\":false") then die "job A was unexpectedly cached:\n%s" a1;
  let a1_core = result_core ~what:"job A" a1 in
  (* Job B rides into the die@j2 fault: the daemon exits 137 and the
     waiting client reports the lost server as a structured failure. *)
  let blog =
    run ~expect:1 ~what:"job B client loses its daemon"
      (client ^ " submit --sock " ^ qsock ^ cheap ^ " --point ip=0.975")
  in
  if not (contains (read_file blog) "server-gone") then
    die "dropped client lacks the server-gone diagnosis:\n%s" (read_file blog);
  ignore (wait_daemon ~what:"die@j2 kill" ~expect:137 d);
  (* A populated ledger without --resume is refused with a structured
     diagnosis... *)
  let refuse =
    start_daemon ~exe:daemon_exe ~dir:d1 ~sock [ "--workers"; "1" ]
  in
  let rlog = wait_daemon ~what:"no-resume refusal" ~expect:1 refuse in
  if not (contains (read_file rlog) "queue-not-resumed") then
    die "refusal lacks the queue-not-resumed diagnosis:\n%s" (read_file rlog);
  (* ...and --resume recovers the in-flight job and finishes it. *)
  let d =
    start_daemon ~exe:daemon_exe ~dir:d1 ~sock
      [ "--workers"; "1"; "--resume" ]
  in
  await_ready ~what:"lifetime 2" ~client ~sock;
  await_idle ~what:"recovered job B" ~client ~sock;
  (* Job A replays from the result store: byte-identical verdict, no
     worker, no solves. *)
  let a2 = read_file (submit_a ()) in
  if not (contains a2 "\"cached\":true") then die "restarted job A not cache-served:\n%s" a2;
  if result_core ~what:"job A replay" a2 <> a1_core then
    die "cache-served result differs from the original:\n%s\nvs\n%s" a1_core
      (result_core ~what:"job A replay" a2);
  (* Job B, recovered and completed, is also served from the store now. *)
  let b2 =
    read_file
      (run ~expect:0 ~what:"job B after recovery"
         (client ^ " submit --sock " ^ qsock ^ cheap ^ " --point ip=0.975"))
  in
  if not (contains b2 "\"cached\":true" && contains b2 "\"verdict\":\"verified\"") then
    die "recovered job B was not completed and stored:\n%s" b2;
  assert_zero_resolves ~what:"crash phase" (Filename.concat d1 "journal.log");
  (* Graceful drain: SIGTERM checkpoints and exits 0. *)
  Unix.kill d.pid Sys.sigterm;
  let dlog = wait_daemon ~what:"SIGTERM drain" ~expect:0 d in
  if not (contains (read_file dlog) "drained") then
    die "drain exit lacks the drained banner:\n%s" (read_file dlog);

  (* ---------------- exit-code discipline: not-established ---------- *)
  (* A pre-seeded result store entry proves the store is an interface,
     not a cache curiosity: the daemon serves it and the client maps
     the verdict to exit 2 without any solver in the loop. *)
  let d2 = dir "verdicts" in
  let sock = Filename.concat d2 "verifyd.sock" in
  let qsock = Filename.quote sock in
  let ne_spec =
    { (Service.Job.default_spec Pll.Third) with
      Service.Job.degree = 4;
      bisect_steps = 4;
      point = [ (Pll.Ip, 0.5) ] }
  in
  let results = Filename.concat d2 "results" in
  Unix.mkdir results 0o755;
  let oc =
    open_out (Filename.concat results (Service.Job.fingerprint ne_spec ^ ".json"))
  in
  output_string oc
    "{\"verdict\":\"not-established\",\"beta\":0,\"kind\":\"infeasible\",\"detail\":\"conclusively infeasible at certificate search\"}";
  close_out oc;
  let d = start_daemon ~exe:daemon_exe ~dir:d2 ~sock [ "--workers"; "1" ] in
  await_ready ~what:"verdict phase" ~client ~sock;
  let ne =
    read_file
      (run ~expect:2 ~what:"not-established maps to exit 2"
         (client ^ " submit --sock " ^ qsock ^ cheap ^ " --point ip=0.5"))
  in
  if not (contains ne "\"verdict\":\"not-established\"" && contains ne "\"cached\":true")
  then die "pre-seeded store entry not served:\n%s" ne;
  Unix.kill d.pid Sys.sigterm;
  ignore (wait_daemon ~what:"verdict phase drain" ~expect:0 d);

  (* ---------------- backpressure + dedup + SIGINT ------------------ *)
  let d3 = dir "overload" in
  let sock = Filename.concat d3 "verifyd.sock" in
  let qsock = Filename.quote sock in
  let d =
    start_daemon ~exe:daemon_exe ~dir:d3 ~sock
      [ "--workers"; "1"; "--queue-cap"; "2"; "--fault-plan"; "wedge-queue" ]
  in
  await_ready ~what:"overload phase" ~client ~sock;
  let nowait extra =
    client ^ " submit --sock " ^ qsock ^ cheap ^ " --no-wait" ^ extra
  in
  ignore (run ~expect:0 ~what:"fills slot 1" (nowait ""));
  let dup = read_file (run ~expect:0 ~what:"duplicate dedups" (nowait "")) in
  if not (contains dup "\"deduped\":true") then
    die "duplicate submit did not dedup against the in-flight job:\n%s" dup;
  ignore (run ~expect:0 ~what:"fills slot 2" (nowait " --point ip=1.01"));
  let shed =
    read_file
      (run ~expect:1 ~what:"over-cap submit shed" (nowait " --point ip=1.02"))
  in
  if not (contains shed "\"type\":\"overloaded\"" && contains shed "retry_after_s")
  then die "shed submit lacks the structured overloaded refusal:\n%s" shed;
  let st =
    read_file
      (run ~expect:0 ~what:"overload status"
         (client ^ " status --sock " ^ qsock))
  in
  List.iter
    (fun needle ->
      if not (contains st needle) then
        die "overload status lacks %s:\n%s" needle st)
    [ "\"accepted\":2"; "\"deduped\":1"; "\"shed\":1"; "\"queue_depth\":2" ];
  Unix.kill d.pid Sys.sigint;
  ignore (wait_daemon ~what:"SIGINT" ~expect:130 d);

  (* ---------------- worker supervision: kill + retry --------------- *)
  let d4 = dir "retry" in
  let sock = Filename.concat d4 "verifyd.sock" in
  let qsock = Filename.quote sock in
  let d =
    start_daemon ~exe:daemon_exe ~dir:d4 ~sock
      [ "--workers"; "1"; "--fault-plan"; "kill-worker@j1" ]
  in
  await_ready ~what:"retry phase" ~client ~sock;
  let r =
    read_file
      (run ~expect:0 ~what:"killed worker retried" (client ^ " submit --sock " ^ qsock ^ cheap))
  in
  if not (contains r "\"verdict\":\"verified\"") then
    die "job did not survive its worker being killed:\n%s" r;
  let st =
    read_file
      (run ~expect:0 ~what:"retry status" (client ^ " status --sock " ^ qsock))
  in
  if not (contains st "\"crashes\":1") then die "worker crash not counted:\n%s" st;
  Unix.kill d.pid Sys.sigterm;
  ignore (wait_daemon ~what:"retry phase drain" ~expect:0 d);

  (* ---------------- cancellation on client disconnect -------------- *)
  let d5 = dir "drop" in
  let sock = Filename.concat d5 "verifyd.sock" in
  let qsock = Filename.quote sock in
  let d =
    start_daemon ~exe:daemon_exe ~dir:d5 ~sock
      [ "--workers"; "1"; "--fault-plan"; "drop-client@j1" ]
  in
  await_ready ~what:"drop phase" ~client ~sock;
  let dropped =
    read_file
      (run ~expect:1 ~what:"dropped client diagnosis"
         (client ^ " submit --sock " ^ qsock ^ cheap))
  in
  if not (contains dropped "server-gone") then
    die "dropped client lacks the server-gone diagnosis:\n%s" dropped;
  await_idle ~what:"post-drop queue" ~client ~sock;
  let st =
    read_file
      (run ~expect:0 ~what:"drop status" (client ^ " status --sock " ^ qsock))
  in
  if not (contains st "\"cancelled\":1") then
    die "orphaned job was not cancelled:\n%s" st;
  Unix.kill d.pid Sys.sigterm;
  ignore (wait_daemon ~what:"drop phase drain" ~expect:0 d);

  (* ---------------- usage errors and unreachable daemons ----------- *)
  ignore
    (run ~expect:124 ~what:"verifyd without --run-dir"
       (Filename.quote daemon_exe));
  ignore
    (run ~expect:124 ~what:"verifyd bad fault plan"
       (Filename.quote daemon_exe ^ " --run-dir " ^ Filename.quote (dir "usage")
      ^ " --fault-plan melt@j1"));
  ignore
    (run ~expect:124 ~what:"client bad point"
       (client ^ " submit --sock /nonexistent.sock --point bogus=1"));
  let gone =
    read_file
      (run ~expect:1 ~what:"client without a daemon"
         (client ^ " status --sock /nonexistent.sock"))
  in
  if not (contains gone "connect-failed") then
    die "unreachable daemon lacks the connect-failed diagnosis:\n%s" gone;
  print_endline "service_smoke: OK"
