(* End-to-end smoke test of the exact certification pipeline: solve the
   third-order attraction SOS program, re-validate every Theorem-1
   condition in exact rational arithmetic, persist the proof artifact,
   and replay it through the independent check_cert binary (whose path
   arrives as argv(1) from the dune rule). Exits nonzero on any
   unproven condition or round-trip mismatch. *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("exact_smoke: " ^ m); exit 1) fmt

let () =
  if Array.length Sys.argv < 2 then die "usage: exact_smoke CHECK_CERT_EXE";
  let check_cert_exe = Sys.argv.(1) in
  let s = Pll.scale Pll.table1_third in
  (* Degree 4 keeps the SDP small; the certificate is still a genuine
     multi-Lyapunov witness for the third-order loop. *)
  let config = { (Certificates.default_config Pll.Third) with Certificates.degree = 4 } in
  let cert =
    match Certificates.find_multi_lyapunov ~config s with
    | Error e -> die "multi-Lyapunov search failed: %s" e
    | Ok c -> c
  in
  let v =
    match Certificates.validate_exactly s cert with
    | Error e -> die "exact validation failed structurally: %s" e
    | Ok v -> v
  in
  List.iter
    (fun (name, verdict) ->
      Printf.printf "%-24s %s\n%!" name (Exact.Check.verdict_to_string verdict))
    v.Certificates.verdicts;
  if not v.Certificates.all_proven then die "not all conditions proven";
  (match v.Certificates.min_margin with
  | Some m when Exact.Rat.sign m > 0 ->
      Printf.printf "min exact margin: %s (~%.3e)\n%!" (Exact.Rat.to_string m)
        (Exact.Rat.to_float m)
  | Some m -> die "margin not strictly positive: %s" (Exact.Rat.to_string m)
  | None -> die "no margin reported");
  (* Persist, reload, and require a byte-identical round trip. *)
  let path = Filename.temp_file "pll_third_order" ".artifact" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Exact.Artifact.save path v.Certificates.artifact;
      (match Exact.Artifact.load path with
      | Error e -> die "reload failed: %s" e
      | Ok a ->
          if
            not
              (String.equal
                 (Exact.Artifact.write v.Certificates.artifact)
                 (Exact.Artifact.write a))
          then die "artifact round trip not byte-identical");
      (* Independent replay: the checker binary shares no solver state
         with this process. *)
      let cmd = Filename.quote check_cert_exe ^ " --quiet " ^ Filename.quote path in
      match Sys.command cmd with
      | 0 -> print_endline "check_cert replay: all proven"
      | n -> die "check_cert exited with %d" n)
