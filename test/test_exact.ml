(* Tests of the exact-arithmetic certificate kernel: bigint/rational
   ring & field laws (qcheck), decimal I/O round trips, float→dyadic
   exactness, the LDL^T PSD decision with refutation witnesses, the
   Harrison-style rounding/absorption bridge, and the artifact store
   (byte-identical round trips, corrupted-Gram rejection). *)

module B = Exact.Bigint
module Q = Exact.Rat
module Qmat = Exact.Qmat
module Qpoly = Exact.Qpoly
module Check = Exact.Check
module Artifact = Exact.Artifact

let bigint = Alcotest.testable B.pp B.equal
let rat = Alcotest.testable Q.pp Q.equal

(* ----- generators ----- *)

(* Decimal strings up to ~40 digits exercise multi-limb paths. *)
let gen_bigint =
  QCheck.Gen.(
    let* neg = bool in
    let* ndigits = int_range 1 40 in
    let* first = int_range (if ndigits = 1 then 0 else 1) 9 in
    let* rest = list_size (return (ndigits - 1)) (int_range 0 9) in
    let s = String.concat "" (List.map string_of_int (first :: rest)) in
    return (B.of_string (if neg && first > 0 then "-" ^ s else s)))

let arb_bigint = QCheck.make ~print:B.to_string gen_bigint

let gen_rat =
  QCheck.Gen.(
    let* n = gen_bigint in
    let* d = gen_bigint in
    return (if B.sign d = 0 then Q.of_bigint n else Q.make n d))

let arb_rat = QCheck.make ~print:Q.to_string gen_rat

(* ----- Bigint ring laws ----- *)

let prop_add_comm =
  QCheck.Test.make ~name:"bigint: a+b = b+a" ~count:200 (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) -> B.equal (B.add a b) (B.add b a))

let prop_mul_comm =
  QCheck.Test.make ~name:"bigint: a*b = b*a" ~count:200 (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) -> B.equal (B.mul a b) (B.mul b a))

let prop_mul_assoc =
  QCheck.Test.make ~name:"bigint: (a*b)*c = a*(b*c)" ~count:100
    (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
      B.equal (B.mul (B.mul a b) c) (B.mul a (B.mul b c)))

let prop_distrib =
  QCheck.Test.make ~name:"bigint: a*(b+c) = a*b + a*c" ~count:100
    (QCheck.triple arb_bigint arb_bigint arb_bigint) (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let prop_sub_inverse =
  QCheck.Test.make ~name:"bigint: (a+b)-b = a" ~count:200 (QCheck.pair arb_bigint arb_bigint)
    (fun (a, b) -> B.equal (B.sub (B.add a b) b) a)

let prop_divmod =
  QCheck.Test.make ~name:"bigint: a = b*q + r, 0 <= r < |b|" ~count:200
    (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      QCheck.assume (B.sign b <> 0);
      let q, r = B.divmod a b in
      B.equal a (B.add (B.mul b q) r) && B.sign r >= 0 && B.compare r (B.abs b) < 0)

let prop_gcd =
  QCheck.Test.make ~name:"bigint: gcd divides both and is positive" ~count:200
    (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      QCheck.assume (B.sign a <> 0 || B.sign b <> 0);
      let g = B.gcd a b in
      B.sign g = 1
      && B.sign (snd (B.divmod a g)) = 0
      && B.sign (snd (B.divmod b g)) = 0)

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"bigint: of_string (to_string a) = a" ~count:200 arb_bigint
    (fun a -> B.equal (B.of_string (B.to_string a)) a)

let prop_compare_antisym =
  QCheck.Test.make ~name:"bigint: compare a b = -(compare b a)" ~count:200
    (QCheck.pair arb_bigint arb_bigint) (fun (a, b) ->
      Stdlib.compare (B.compare a b) 0 = -Stdlib.compare (B.compare b a) 0)

let test_bigint_basics () =
  Alcotest.check bigint "0 + 0" B.zero (B.add B.zero B.zero);
  Alcotest.check bigint "of_int round trips" (B.of_string "123456789012345678")
    (B.mul (B.of_int 123456789) (B.add (B.mul (B.of_int 1_000_000_000) B.one) (B.of_int 0))
    |> fun x -> B.add x (B.of_int 12345678));
  Alcotest.(check (option int)) "to_int_opt small" (Some (-42)) (B.to_int_opt (B.of_int (-42)));
  Alcotest.(check (option int)) "to_int_opt max_int" (Some max_int) (B.to_int_opt (B.of_int max_int));
  Alcotest.(check (option int)) "to_int_opt min_int" (Some min_int) (B.to_int_opt (B.of_int min_int));
  Alcotest.(check (option int)) "to_int_opt huge" None (B.to_int_opt (B.of_string "9999999999999999999999"));
  Alcotest.(check string) "negative decimal" "-10000000000000000000000000001"
    (B.to_string (B.of_string "-10000000000000000000000000001"));
  Alcotest.(check int) "sign of min_int" (-1) (B.sign (B.of_int min_int));
  Alcotest.check bigint "min_int decimal" (B.of_int min_int) (B.of_string (string_of_int min_int));
  Alcotest.check bigint "pow2 60" (B.of_int (1 lsl 60)) (B.pow2 60);
  Alcotest.(check int) "bits of 2^60" 61 (B.bits (B.pow2 60));
  Alcotest.(check (float 0.0)) "to_float exact" 12345678901234.0
    (B.to_float (B.of_string "12345678901234"))

(* ----- Rat field laws ----- *)

let prop_rat_add_assoc =
  QCheck.Test.make ~name:"rat: (a+b)+c = a+(b+c)" ~count:100
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Q.equal (Q.add (Q.add a b) c) (Q.add a (Q.add b c)))

let prop_rat_mul_inverse =
  QCheck.Test.make ~name:"rat: a * (1/a) = 1" ~count:200 arb_rat (fun a ->
      QCheck.assume (Q.sign a <> 0);
      Q.equal (Q.mul a (Q.inv a)) Q.one)

let prop_rat_distrib =
  QCheck.Test.make ~name:"rat: a*(b+c) = a*b + a*c" ~count:100
    (QCheck.triple arb_rat arb_rat arb_rat) (fun (a, b, c) ->
      Q.equal (Q.mul a (Q.add b c)) (Q.add (Q.mul a b) (Q.mul a c)))

let prop_rat_sub_cancel =
  QCheck.Test.make ~name:"rat: a - a = 0 and (a-b)+(b-a) = 0" ~count:200
    (QCheck.pair arb_rat arb_rat) (fun (a, b) ->
      Q.sign (Q.sub a a) = 0 && Q.sign (Q.add (Q.sub a b) (Q.sub b a)) = 0)

let prop_rat_string_roundtrip =
  QCheck.Test.make ~name:"rat: of_string (to_string a) = a" ~count:200 arb_rat (fun a ->
      Q.equal (Q.of_string (Q.to_string a)) a)

(* Floats that are exactly representable round-trip losslessly, and
   exact float sums agree with exact rational sums. *)
let prop_float_dyadic_exact =
  QCheck.Test.make ~name:"rat: of_float is the exact dyadic value" ~count:500
    (QCheck.make QCheck.Gen.(float_bound_inclusive 1.0e6)) (fun f ->
      QCheck.assume (Float.is_finite f);
      Q.to_float (Q.of_float f) = f)

let prop_float_sum_exact =
  QCheck.Test.make ~name:"rat: exact float sums match rational sums" ~count:500
    (QCheck.pair (QCheck.make QCheck.Gen.(int_range (-1000000) 1000000))
       (QCheck.make QCheck.Gen.(int_range (-1000000) 1000000)))
    (fun (a, b) ->
      (* a/1024 + b/1024 is exact in double arithmetic at this scale *)
      let fa = float_of_int a /. 1024.0 and fb = float_of_int b /. 1024.0 in
      Q.equal (Q.of_float (fa +. fb)) (Q.add (Q.of_float fa) (Q.of_float fb)))

let test_rat_basics () =
  Alcotest.check rat "1/2 + 1/3 = 5/6" (Q.of_ints 5 6) (Q.add (Q.of_ints 1 2) (Q.of_ints 1 3));
  Alcotest.check rat "normalization" (Q.of_ints (-2) 3) (Q.of_ints 4 (-6));
  Alcotest.(check string) "canonical string" "-2/3" (Q.to_string (Q.of_ints 4 (-6)));
  Alcotest.check rat "of_float 0.5" (Q.of_ints 1 2) (Q.of_float 0.5);
  Alcotest.check rat "of_float -0.75" (Q.of_ints (-3) 4) (Q.of_float (-0.75));
  Alcotest.check rat "of_float 0.1 is the dyadic, not 1/10"
    (Q.make (B.of_string "3602879701896397") (B.pow2 55))
    (Q.of_float 0.1);
  Alcotest.(check bool) "0.1 dyadic <> 1/10" false (Q.equal (Q.of_float 0.1) (Q.of_ints 1 10));
  Alcotest.(check int) "compare across denominators" (-1) (Stdlib.compare (Q.compare (Q.of_ints 1 3) (Q.of_ints 1 2)) 0)

(* ----- Qmat / LDL^T ----- *)

let qm rows =
  let r = Array.length rows and c = Array.length rows.(0) in
  Qmat.init r c (fun i j -> Q.of_int rows.(i).(j))

let test_ldlt_psd () =
  (match Qmat.psd (qm [| [| 2; 1 |]; [| 1; 2 |] |]) with
  | Qmat.Psd { min_pivot } -> Alcotest.check rat "pivots of [[2,1],[1,2]]" (Q.of_ints 3 2) min_pivot
  | Qmat.Not_psd _ -> Alcotest.fail "PSD matrix rejected");
  (match Qmat.psd (Qmat.identity 5) with
  | Qmat.Psd { min_pivot } -> Alcotest.check rat "identity pivots" Q.one min_pivot
  | Qmat.Not_psd _ -> Alcotest.fail "identity rejected");
  (* singular PSD: [[1,1],[1,1]] has pivots 1, 0 *)
  (match Qmat.psd (qm [| [| 1; 1 |]; [| 1; 1 |] |]) with
  | Qmat.Psd { min_pivot } -> Alcotest.check rat "rank-1 min pivot" Q.zero min_pivot
  | Qmat.Not_psd _ -> Alcotest.fail "rank-1 PSD rejected")

let check_refutation name m =
  match Qmat.psd m with
  | Qmat.Psd _ -> Alcotest.fail (name ^ ": indefinite matrix accepted")
  | Qmat.Not_psd { witness; value } ->
      Alcotest.(check bool) (name ^ ": witness value negative") true (Q.sign value < 0);
      Alcotest.check rat (name ^ ": witness value is exact") value (Qmat.quad_form m witness)

let test_ldlt_not_psd () =
  check_refutation "neg diag" (qm [| [| -1; 0 |]; [| 0; 2 |] |]);
  check_refutation "indefinite" (qm [| [| 1; 2 |]; [| 2; 1 |] |]);
  check_refutation "zero diag, nonzero row" (qm [| [| 0; 1 |]; [| 1; 0 |] |]);
  check_refutation "deep pivot failure"
    (qm [| [| 4; 2; 0 |]; [| 2; 1; 3 |]; [| 0; 3; 5 |] |])

let gen_int_mat n =
  QCheck.Gen.(array_size (return (n * n)) (int_range (-5) 5))

let prop_gram_psd =
  QCheck.Test.make ~name:"qmat: B^T B is always PSD" ~count:100
    (QCheck.make (gen_int_mat 4)) (fun data ->
      let b = Qmat.init 4 4 (fun i j -> Q.of_int data.((i * 4) + j)) in
      match Qmat.psd (Qmat.mul (Qmat.transpose b) b) with
      | Qmat.Psd _ -> true
      | Qmat.Not_psd _ -> false)

let prop_shifted_not_psd =
  QCheck.Test.make ~name:"qmat: B^T B - large diagonal is refuted with a valid witness"
    ~count:100 (QCheck.make (gen_int_mat 3)) (fun data ->
      let b = Qmat.init 3 3 (fun i j -> Q.of_int data.((i * 3) + j)) in
      let g = Qmat.mul (Qmat.transpose b) b in
      let shifted = Qmat.sub g (Qmat.scale (Q.of_int 1000) (Qmat.identity 3)) in
      match Qmat.psd shifted with
      | Qmat.Psd _ -> false
      | Qmat.Not_psd { witness; value } ->
          Q.sign value < 0 && Q.equal value (Qmat.quad_form shifted witness))

let test_lin_solve () =
  (* square, invertible: 2x + y = 5, x + 3y = 10 *)
  let a = qm [| [| 2; 1 |]; [| 1; 3 |] |] in
  let b = [| Q.of_int 5; Q.of_int 10 |] in
  (match Qmat.lin_solve a b with
  | None -> Alcotest.fail "consistent square system unsolved"
  | Some x ->
      Alcotest.check rat "x" Q.one x.(0);
      Alcotest.check rat "y" (Q.of_int 3) x.(1));
  (* underdetermined: x + y = 3 — any exact solution is acceptable *)
  let a = qm [| [| 1; 1 |] |] in
  let b = [| Q.of_int 3 |] in
  (match Qmat.lin_solve a b with
  | None -> Alcotest.fail "underdetermined system unsolved"
  | Some x -> Alcotest.check rat "x + y = 3" (Q.of_int 3) (Q.add x.(0) x.(1)));
  (* inconsistent: x + y = 1 and 2x + 2y = 3 *)
  let a = qm [| [| 1; 1 |]; [| 2; 2 |] |] in
  let b = [| Q.one; Q.of_int 3 |] in
  match Qmat.lin_solve a b with
  | None -> ()
  | Some _ -> Alcotest.fail "inconsistent system produced a solution"

let prop_lin_solve =
  QCheck.Test.make ~name:"qmat: lin_solve solves every consistent system exactly" ~count:200
    (QCheck.pair (QCheck.make (gen_int_mat 4))
       (QCheck.make QCheck.Gen.(array_size (return 4) (int_range (-9) 9))))
    (fun (data, xs) ->
      let a = Qmat.init 4 4 (fun i j -> Q.of_int data.((i * 4) + j)) in
      let b = Qmat.mul_vec a (Array.map Q.of_int xs) in
      match Qmat.lin_solve a b with
      | None -> false (* consistent by construction *)
      | Some x ->
          Array.for_all2 (fun l r -> Q.equal l r) (Qmat.mul_vec a x) b)

(* ----- Qpoly ----- *)

let test_qpoly_exact_ops () =
  let x = Poly.var 2 0 and y = Poly.var 2 1 in
  let p = Poly.add (Poly.mul x x) (Poly.scale 3.0 y) in
  let q = Poly.sub (Poly.mul x y) (Poly.one 2) in
  let lhs = Qpoly.of_poly (Poly.mul p q) in
  let rhs = Qpoly.mul (Qpoly.of_poly p) (Qpoly.of_poly q) in
  Alcotest.(check bool) "exact product matches float product on integer polys" true
    (Qpoly.equal lhs rhs);
  let v = Qpoly.eval rhs [| Q.of_ints 1 2; Q.of_ints (-1) 3 |] in
  (* p(1/2,-1/3) = 1/4 - 1 = -3/4;  q = -1/6 - 1 = -7/6;  product 7/8 *)
  Alcotest.check rat "exact evaluation" (Q.of_ints 7 8) v

let test_qpoly_calculus () =
  let x = Poly.var 2 0 and y = Poly.var 2 1 in
  (* p = x²y + 3y *)
  let p = Qpoly.of_poly (Poly.add (Poly.mul (Poly.mul x x) y) (Poly.scale 3.0 y)) in
  let qp q = Qpoly.of_poly q in
  Alcotest.(check bool) "∂p/∂x = 2xy" true
    (Qpoly.equal (Qpoly.partial 0 p) (qp (Poly.scale 2.0 (Poly.mul x y))));
  Alcotest.(check bool) "∂p/∂y = x² + 3" true
    (Qpoly.equal (Qpoly.partial 1 p) (qp (Poly.add (Poly.mul x x) (Poly.const 2 3.0))));
  (* ∇p · (y, −x) = 2xy² − x³ − 3x *)
  let lie = Qpoly.lie_derivative p [| qp y; Qpoly.neg (qp x) |] in
  let expected =
    qp
      (Poly.sub
         (Poly.scale 2.0 (Poly.mul x (Poly.mul y y)))
         (Poly.add (Poly.mul x (Poly.mul x x)) (Poly.scale 3.0 x)))
  in
  Alcotest.(check bool) "exact Lie derivative" true (Qpoly.equal lie expected);
  (* p with y := 1/2 is x²/2 + 3/2; the arity stays 2 *)
  let fixed = Qpoly.fix_var 1 (Q.of_ints 1 2) p in
  let expected =
    Qpoly.of_terms 2
      [
        (Poly.Monomial.of_exponents [ 2; 0 ], Q.of_ints 1 2);
        (Poly.Monomial.of_exponents [ 0; 0 ], Q.of_ints 3 2);
      ]
  in
  Alcotest.(check bool) "exact substitution" true (Qpoly.equal fixed expected);
  Alcotest.(check int) "arity kept" 2 (Qpoly.nvars fixed)

let test_gram_poly () =
  (* basis (1, x), G = [[1,1],[1,1]]: z^T G z = 1 + 2x + x^2 = (x+1)^2 *)
  let basis = [| Poly.Monomial.of_exponents [ 0 ]; Poly.Monomial.of_exponents [ 1 ] |] in
  let g = qm [| [| 1; 1 |]; [| 1; 1 |] |] in
  let p = Qpoly.gram_poly 1 basis g in
  let expected =
    Qpoly.of_terms 1
      [
        (Poly.Monomial.of_exponents [ 0 ], Q.one);
        (Poly.Monomial.of_exponents [ 1 ], Q.of_int 2);
        (Poly.Monomial.of_exponents [ 2 ], Q.one);
      ]
  in
  Alcotest.(check bool) "z^T G z expansion" true (Qpoly.equal p expected)

(* ----- Check kernel ----- *)

let m1 es = Poly.Monomial.of_exponents es

(* x^2 + 2x + 2 = (x+1)^2 + 1 over basis (1, x): G = [[2,1],[1,1]]. *)
let good_cert () =
  {
    Check.nvars = 1;
    target =
      Qpoly.of_terms 1 [ (m1 [ 0 ], Q.of_int 2); (m1 [ 1 ], Q.of_int 2); (m1 [ 2 ], Q.one) ];
    sigmas = [];
    main = { Check.basis = [| m1 [ 0 ]; m1 [ 1 ] |]; gram = qm [| [| 2; 1 |]; [| 1; 1 |] |] };
  }

let test_check_proven () =
  match Check.check (good_cert ()) with
  | Check.Proven { margin } ->
      Alcotest.(check bool) "positive margin" true (Q.sign margin > 0);
      Alcotest.check rat "margin is min pivot" (Q.of_ints 1 2) margin
  | v -> Alcotest.fail ("expected Proven, got " ^ Check.verdict_to_string v)

let test_check_identity_defect () =
  let c = good_cert () in
  let c = { c with Check.target = Qpoly.add c.Check.target (Qpoly.one 1) } in
  match Check.check c with
  | Check.Identity_defect { defect; _ } -> Alcotest.check rat "defect found" Q.one defect
  | v -> Alcotest.fail ("expected Identity_defect, got " ^ Check.verdict_to_string v)

let test_check_rejects_indefinite () =
  (* Perturb the Gram to be indefinite while keeping the identity: the
     constant coefficient drops to 1/2, making the target negative at
     x = -1 — the kernel must refuse, with an exact witness. *)
  let c = good_cert () in
  let gram = Qmat.copy c.Check.main.Check.gram in
  Qmat.set gram 0 0 (Q.of_ints 1 2);
  let target = Qpoly.add (Qpoly.of_terms 1 [ (m1 [ 0 ], Q.of_ints (-3) 2) ]) c.Check.target in
  let c = { c with Check.target; main = { c.Check.main with Check.gram } } in
  match Check.check c with
  | Check.Block_not_psd { block = Check.Main; witness; value } ->
      Alcotest.(check bool) "negative witness value" true (Q.sign value < 0);
      Alcotest.check rat "witness exact" value (Qmat.quad_form gram witness)
  | v -> Alcotest.fail ("expected Block_not_psd, got " ^ Check.verdict_to_string v)

let test_absorb_repairs_rounding () =
  (* Take the good certificate, shave the Gram corner, and let absorb
     restore the identity exactly. *)
  let c = good_cert () in
  let gram = Qmat.copy c.Check.main.Check.gram in
  Qmat.set gram 0 0 (Q.sub (Qmat.get gram 0 0) (Q.of_ints 1 1024));
  Qmat.set gram 0 1 (Q.add (Qmat.get gram 0 1) (Q.of_ints 1 4096));
  Qmat.set gram 1 0 (Q.add (Qmat.get gram 1 0) (Q.of_ints 1 4096));
  let c = { c with Check.main = { c.Check.main with Check.gram } } in
  Alcotest.(check bool) "residual nonzero before absorb" false
    (Qpoly.is_zero (Check.residual c));
  let c = Check.absorb c in
  Alcotest.(check bool) "residual zero after absorb" true (Qpoly.is_zero (Check.residual c));
  match Check.check c with
  | Check.Proven { margin } -> Alcotest.(check bool) "still proven" true (Q.sign margin > 0)
  | v -> Alcotest.fail ("expected Proven, got " ^ Check.verdict_to_string v)

let test_certify_from_floats () =
  (* Full untrusted->trusted bridge on a float Gram with noise well
     inside the absorption budget. *)
  let basis = [| m1 [ 0 ]; m1 [ 1 ] |] in
  let g =
    Linalg.Mat.of_arrays [| [| 2.0 +. 1e-10; 1.0 -. 3e-11 |]; [| 1.0 -. 3e-11; 1.0 +. 2e-10 |] |]
  in
  let target = Poly.of_terms 1 [ (m1 [ 0 ], 2.0); (m1 [ 1 ], 2.0); (m1 [ 2 ], 1.0) ] in
  let _, verdict = Check.certify ~nvars:1 ~target ~sigmas:[] ~main:(basis, g) () in
  match verdict with
  | Check.Proven { margin } -> Alcotest.(check bool) "bridged margin > 0" true (Q.sign margin > 0)
  | v -> Alcotest.fail ("expected Proven, got " ^ Check.verdict_to_string v)

let test_certify_q_rational_target () =
  (* Exact target with non-dyadic coefficients:
     (1/3)(x+1)² + 1 = (1/3)x² + (2/3)x + 4/3 over basis (1, x),
     G = [[4/3, 1/3], [1/3, 1/3]] — only available as a float
     approximation, so the rounding residual against the exact target
     must be absorbed. *)
  let basis = [| m1 [ 0 ]; m1 [ 1 ] |] in
  let g =
    Linalg.Mat.of_arrays
      [| [| 4.0 /. 3.0; 1.0 /. 3.0 |]; [| 1.0 /. 3.0; 1.0 /. 3.0 |] |]
  in
  let target =
    Qpoly.of_terms 1
      [ (m1 [ 0 ], Q.of_ints 4 3); (m1 [ 1 ], Q.of_ints 2 3); (m1 [ 2 ], Q.of_ints 1 3) ]
  in
  let c, verdict = Check.certify_q ~nvars:1 ~target ~sigmas:[] ~main:(basis, g) () in
  Alcotest.(check bool) "identity exact after absorb" true (Qpoly.is_zero (Check.residual c));
  match verdict with
  | Check.Proven { margin } -> Alcotest.(check bool) "margin > 0" true (Q.sign margin > 0)
  | v -> Alcotest.fail ("expected Proven, got " ^ Check.verdict_to_string v)

let test_absorb_honest_about_unreachable () =
  (* A residual monomial no kept Gram slot can generate (x³ over basis
     (1, x)) must survive absorption and be reported exactly, while the
     reachable part of the residual is still absorbed. *)
  let c = good_cert () in
  let target =
    Qpoly.add c.Check.target
      (Qpoly.of_terms 1 [ (m1 [ 3 ], Q.of_ints 1 1024); (m1 [ 1 ], Q.of_ints 1 2048) ])
  in
  let c = Check.absorb { c with Check.target } in
  Alcotest.(check bool) "unreachable residual remains" true
    (Qpoly.equal (Check.residual c) (Qpoly.of_terms 1 [ (m1 [ 3 ], Q.of_ints 1 1024) ]));
  match Check.check c with
  | Check.Identity_defect { monomial; defect } ->
      Alcotest.(check bool) "defect at x^3" true (Poly.Monomial.equal monomial (m1 [ 3 ]));
      Alcotest.check rat "exact defect" (Q.of_ints 1 1024) defect
  | v -> Alcotest.fail ("expected Identity_defect, got " ^ Check.verdict_to_string v)

(* An S-procedure certificate checked end-to-end by the kernel:
   x >= 0 on {x - 1 >= 0}: x = 1·(x-1)·1 + 1, sigma = 1 (basis {1}),
   main = 1 over basis {1}. *)
let test_check_s_procedure () =
  let sigma_block = { Check.basis = [| m1 [ 0 ] |]; gram = qm [| [| 1 |] |] } in
  let c =
    {
      Check.nvars = 1;
      target = Qpoly.of_terms 1 [ (m1 [ 1 ], Q.one) ];
      sigmas = [ (Qpoly.of_terms 1 [ (m1 [ 1 ], Q.one); (m1 [ 0 ], Q.minus_one) ], sigma_block) ];
      main = { Check.basis = [| m1 [ 0 ] |]; gram = qm [| [| 1 |] |] };
    }
  in
  match Check.check c with
  | Check.Proven { margin } -> Alcotest.check rat "margin 1" Q.one margin
  | v -> Alcotest.fail ("expected Proven, got " ^ Check.verdict_to_string v)

(* ----- Artifact store ----- *)

let sample_artifact () =
  let cert = good_cert () in
  let sigma_block = { Check.basis = [| m1 [ 0 ]; m1 [ 1 ] |]; gram = qm [| [| 1; 0 |]; [| 0; 2 |] |] } in
  (* sigma = 1 + 2x^2, main = 1: target = (1 + 2x^2)(x - 1) + 1
     = 2x^3 - 2x^2 + x, nonnegative on {x >= 1}. *)
  let s_cert =
    {
      Check.nvars = 1;
      target =
        Qpoly.of_terms 1
          [ (m1 [ 1 ], Q.one); (m1 [ 2 ], Q.of_int (-2)); (m1 [ 3 ], Q.of_int 2) ];
      sigmas = [ (Qpoly.of_terms 1 [ (m1 [ 1 ], Q.one); (m1 [ 0 ], Q.minus_one) ], sigma_block) ];
      main = { Check.basis = [| m1 [ 0 ] |]; gram = qm [| [| 1 |] |] };
    }
  in
  Artifact.create
    ~meta:[ ("paper", "asad-jones glsvlsi 2015"); ("degree", "4") ]
    [ ("plain-sos", cert); ("s-procedure", s_cert) ]

let test_artifact_roundtrip () =
  let a = sample_artifact () in
  let s = Artifact.write a in
  match Artifact.parse s with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok a' ->
      Alcotest.(check string) "byte-identical round trip" s (Artifact.write a');
      Alcotest.(check int) "certs preserved" 2 (List.length a'.Artifact.certs);
      Alcotest.(check (list (pair string string))) "meta preserved" a.Artifact.meta a'.Artifact.meta;
      List.iter
        (fun (name, v) ->
          match v with
          | Check.Proven _ -> ()
          | v -> Alcotest.fail (name ^ " no longer proven: " ^ Check.verdict_to_string v))
        (Artifact.check_all a')

let test_artifact_file_io () =
  let a = sample_artifact () in
  let path = Filename.temp_file "pll_sos_cert" ".artifact" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Artifact.save path a;
      match Artifact.load path with
      | Error e -> Alcotest.fail ("load failed: " ^ e)
      | Ok a' -> Alcotest.(check string) "file round trip" (Artifact.write a) (Artifact.write a'))

let test_artifact_rejects_garbage () =
  (match Artifact.parse "not an artifact" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  (* truncation *)
  let s = Artifact.write (sample_artifact ()) in
  match Artifact.parse (String.sub s 0 (String.length s / 2)) with
  | Ok _ -> Alcotest.fail "truncated artifact accepted"
  | Error _ -> ()

let test_artifact_corrupted_gram_rejected () =
  (* Flip one Gram diagonal entry in the serialized form: the parse
     still succeeds (it is well-formed text) but the kernel must reject
     the certificate. *)
  let s = Artifact.write (sample_artifact ()) in
  let replace ~sub ~by s =
    let n = String.length sub in
    let buf = Buffer.create (String.length s) in
    let i = ref 0 in
    while !i <= String.length s - n do
      if String.sub s !i n = sub then begin
        Buffer.add_string buf by;
        i := !i + n
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.add_string buf (String.sub s !i (String.length s - !i));
    Buffer.contents buf
  in
  let corrupted = replace ~sub:"G 0 0 2/1" ~by:"G 0 0 -2/1" s in
  Alcotest.(check bool) "corruption applied" false (String.equal s corrupted);
  match Artifact.parse corrupted with
  | Error e -> Alcotest.fail ("corrupted artifact should still parse: " ^ e)
  | Ok a ->
      let verdicts = Artifact.check_all a in
      Alcotest.(check bool) "corrupted Gram refuted" true
        (List.exists
           (fun (_, v) -> match v with Check.Block_not_psd _ | Check.Identity_defect _ -> true | _ -> false)
           verdicts)

let suite =
  [
    Alcotest.test_case "bigint basics" `Quick test_bigint_basics;
    QCheck_alcotest.to_alcotest prop_add_comm;
    QCheck_alcotest.to_alcotest prop_mul_comm;
    QCheck_alcotest.to_alcotest prop_mul_assoc;
    QCheck_alcotest.to_alcotest prop_distrib;
    QCheck_alcotest.to_alcotest prop_sub_inverse;
    QCheck_alcotest.to_alcotest prop_divmod;
    QCheck_alcotest.to_alcotest prop_gcd;
    QCheck_alcotest.to_alcotest prop_decimal_roundtrip;
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    Alcotest.test_case "rat basics" `Quick test_rat_basics;
    QCheck_alcotest.to_alcotest prop_rat_add_assoc;
    QCheck_alcotest.to_alcotest prop_rat_mul_inverse;
    QCheck_alcotest.to_alcotest prop_rat_distrib;
    QCheck_alcotest.to_alcotest prop_rat_sub_cancel;
    QCheck_alcotest.to_alcotest prop_rat_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_float_dyadic_exact;
    QCheck_alcotest.to_alcotest prop_float_sum_exact;
    Alcotest.test_case "ldlt on PSD matrices" `Quick test_ldlt_psd;
    Alcotest.test_case "ldlt refutes non-PSD" `Quick test_ldlt_not_psd;
    QCheck_alcotest.to_alcotest prop_gram_psd;
    QCheck_alcotest.to_alcotest prop_shifted_not_psd;
    Alcotest.test_case "exact linear solve" `Quick test_lin_solve;
    QCheck_alcotest.to_alcotest prop_lin_solve;
    Alcotest.test_case "qpoly exact ops" `Quick test_qpoly_exact_ops;
    Alcotest.test_case "qpoly calculus" `Quick test_qpoly_calculus;
    Alcotest.test_case "gram polynomial expansion" `Quick test_gram_poly;
    Alcotest.test_case "kernel: proven" `Quick test_check_proven;
    Alcotest.test_case "kernel: identity defect" `Quick test_check_identity_defect;
    Alcotest.test_case "kernel: rejects indefinite gram" `Quick test_check_rejects_indefinite;
    Alcotest.test_case "kernel: absorb repairs rounding" `Quick test_absorb_repairs_rounding;
    Alcotest.test_case "kernel: certify from floats" `Quick test_certify_from_floats;
    Alcotest.test_case "kernel: certify_q rational target" `Quick test_certify_q_rational_target;
    Alcotest.test_case "kernel: honest about unreachable residual" `Quick
      test_absorb_honest_about_unreachable;
    Alcotest.test_case "kernel: s-procedure certificate" `Quick test_check_s_procedure;
    Alcotest.test_case "artifact round trip" `Quick test_artifact_roundtrip;
    Alcotest.test_case "artifact file io" `Quick test_artifact_file_io;
    Alcotest.test_case "artifact rejects garbage" `Quick test_artifact_rejects_garbage;
    Alcotest.test_case "artifact corrupted gram rejected" `Quick test_artifact_corrupted_gram_rejected;
  ]
