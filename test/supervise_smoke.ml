(* Process-supervision smoke test — the crash/checkpoint acceptance
   scenario.

   1. kill@solve recovery: the third-order P1 certificate search must
      survive a worker that SIGKILLs itself mid-solve (the retry ladder
      escalates past the synthetic failure), and a fault-free run on the
      same run directory must reach the same verdict.
   2. resume: rerunning the identical fault-free pipeline against the
      populated run directory must complete from the solve cache alone —
      zero forked workers, every supervised request a cache hit, and
      bit-identical certificates.
   3. corrupt-cache@solve: a deliberately truncated cache entry must be
      rejected with a structured diagnosis and transparently re-solved,
      not crash the loader.
   4. pool determinism: the pooled exact-validation fan-out must return
      the same verdicts at -j 1 and -j 4.

   Exits nonzero on any deviation. *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("supervise_smoke: " ^ m); exit 1) fmt

let plan s =
  match Resilient.Faults.of_string s with
  | Ok p -> p
  | Error e -> die "bad fault plan %S: %s" s e

let fresh_dir tag =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pll-supervise-smoke-%d-%s" (Unix.getpid ()) tag)

let config_with pol =
  {
    (Certificates.default_config Pll.Third) with
    Certificates.degree = 4;
    resilience = pol;
  }

let () =
  let s = Pll.scale Pll.table1_third in
  let run_dir = fresh_dir "main" in

  (* ---- 1. worker kill mid-solve: recovered, same verdict as clean ---- *)
  let faults = plan "kill@1:2" in
  let ctx1 = Supervise.create ~run_dir ~jobs:2 () in
  let pol1 = Resilient.make ~faults ~supervise:ctx1 () in
  (match Resilient.Faults.proc_specs faults with
  | [ _ ] -> ()
  | l -> die "expected one process fault in the plan, parsed %d" (List.length l));
  let _cert1 =
    match Certificates.find_multi_lyapunov ~config:(config_with pol1) s with
    | Error e -> die "pipeline did not survive the killed worker: %s" e
    | Ok c -> c
  in
  let st1 = Supervise.stats ctx1 in
  if st1.Supervise.crashes < 1 then
    die "worker kill not observed (crashes = %d)" st1.Supervise.crashes;
  let diag =
    match
      List.find_opt
        (fun d -> d.Resilient.label = "multi-lyapunov")
        (Resilient.journal pol1)
    with
    | Some d -> d
    | None -> die "multi-lyapunov solve not journaled"
  in
  (match diag.Resilient.attempts with
  | first :: _ :: _ when first.Resilient.status = Sdp.Numerical_failure ->
      Printf.printf "killed worker recovered after %d attempts (rung: %s)\n%!"
        (List.length diag.Resilient.attempts)
        (match diag.Resilient.accepted_rung with
        | Some r -> Resilient.rung_name r
        | None -> "?")
  | _ -> die "expected a crashed baseline attempt followed by a recovery");
  if diag.Resilient.outcome <> Resilient.Certified then die "recovery did not end certified";

  (* ---- fault-free run, same run dir: same verdict ---- *)
  let ctx2 = Supervise.create ~run_dir ~jobs:2 () in
  let pol2 = Resilient.make ~supervise:ctx2 () in
  let cert2 =
    match Certificates.find_multi_lyapunov ~config:(config_with pol2) s with
    | Error e -> die "fault-free verdict differs from faulted run: %s" e
    | Ok c -> c
  in
  print_endline "fault-free run on the same run dir reached the same verdict";

  (* ---- 2. resume: identical rerun completes from the cache alone ---- *)
  let ctx3 = Supervise.create ~run_dir ~jobs:2 () in
  if Supervise.replayed ctx3 < 1 then
    die "journal records no completed solves to resume from";
  let pol3 = Resilient.make ~supervise:ctx3 () in
  let cert3 =
    match Certificates.find_multi_lyapunov ~config:(config_with pol3) s with
    | Error e -> die "resumed run failed: %s" e
    | Ok c -> c
  in
  let st3 = Supervise.stats ctx3 in
  if st3.Supervise.forked <> 0 then
    die "resume re-solved: %d worker(s) forked, expected 0" st3.Supervise.forked;
  if st3.Supervise.cache_hits <> st3.Supervise.supervised || st3.Supervise.supervised = 0
  then
    die "resume not fully cached: %d hits of %d supervised solves"
      st3.Supervise.cache_hits st3.Supervise.supervised;
  Array.iteri
    (fun i v ->
      if not (Poly.equal v cert2.Certificates.vs.(i)) then
        die "resumed certificate V_%d differs from the original" i)
    cert3.Certificates.vs;
  Printf.printf "resume replayed %d/%d solves from the cache, 0 re-solves\n%!"
    st3.Supervise.cache_hits st3.Supervise.supervised;

  (* ---- 3. corrupt-cache fault: diagnosed, then re-solved ---- *)
  let dir2 = fresh_dir "corrupt" in
  let prob =
    {
      Sdp.block_dims = [| 2 |];
      n_free = 0;
      constraints =
        [| { Sdp.lhs = [ { Sdp.blk = 0; row = 0; col = 0; value = 1.0 } ]; free = []; rhs = 1.0 } |];
      obj_blocks =
        [
          { Sdp.blk = 0; row = 0; col = 0; value = 1.0 };
          { Sdp.blk = 0; row = 1; col = 1; value = 1.0 };
        ];
      obj_free = [];
    }
  in
  let ctx4 = Supervise.create ~run_dir:dir2 ~jobs:1 () in
  let pol4 = Resilient.make ~faults:(plan "corrupt-cache@1") ~supervise:ctx4 () in
  let sol4, _ = Resilient.solve_sdp pol4 ~label:"corruptible" prob in
  if sol4.Sdp.status <> Sdp.Optimal then die "corruptible solve did not converge";
  if (Supervise.stats ctx4).Supervise.cache_stores <> 1 then die "solve was not cached";
  let ctx5 = Supervise.create ~run_dir:dir2 ~jobs:1 () in
  let pol5 = Resilient.make ~supervise:ctx5 () in
  let sol5, _ = Resilient.solve_sdp pol5 ~label:"reload" prob in
  let st5 = Supervise.stats ctx5 in
  if st5.Supervise.cache_rejects <> 1 then
    die "corrupt entry not diagnosed (rejects = %d)" st5.Supervise.cache_rejects;
  if st5.Supervise.forked <> 1 then
    die "corrupt entry not re-solved (forked = %d)" st5.Supervise.forked;
  if sol5.Sdp.status <> Sdp.Optimal then die "re-solve after corruption did not converge";
  print_endline "corrupt cache entry diagnosed and transparently re-solved";

  (* ---- 4. pooled exact validation: -j 1 and -j 4 agree ---- *)
  let validate jobs =
    let ctx = Supervise.create ~run_dir ~jobs () in
    let pol = Resilient.make ~supervise:ctx () in
    let cert = { cert3 with Certificates.cfg = { cert3.Certificates.cfg with Certificates.resilience = pol } } in
    match Certificates.validate_exactly s cert with
    | Error e -> die "exact validation (-j %d) failed structurally: %s" jobs e
    | Ok v ->
        ( v.Certificates.all_proven,
          List.map
            (fun (name, verdict) -> (name, Exact.Check.verdict_to_string verdict))
            v.Certificates.verdicts )
  in
  let proven1, verdicts1 = validate 1 in
  let proven4, verdicts4 = validate 4 in
  if not proven1 then die "exact validation did not prove the certificate at -j 1";
  if proven1 <> proven4 || verdicts1 <> verdicts4 then
    die "-j 1 and -j 4 exact validations disagree";
  Printf.printf "pooled exact validation deterministic across -j 1 / -j 4 (%d conditions)\n%!"
    (List.length verdicts1);
  print_endline "supervise_smoke: OK"
