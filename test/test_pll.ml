(* Tests of the CP PLL models: scaling, mode structure, lock behaviour. *)

let s3 () = Pll.scale Pll.table1_third

let s4 () = Pll.scale Pll.table1_fourth

let test_scaled_coefficients () =
  let s = s3 () in
  (* alpha = C2/C1 with the Table-1 intervals *)
  Alcotest.(check bool) "alpha lo" true (Float.abs (Interval.lo s.Pll.alpha -. (6.1e-12 /. 2.2e-12)) < 1e-9);
  Alcotest.(check bool) "alpha hi" true (Float.abs (Interval.hi s.Pll.alpha -. (6.4e-12 /. 1.98e-12)) < 1e-9);
  (* iota is ~1 by construction of the voltage scale *)
  Alcotest.(check bool) "iota near 1" true (Interval.mem 1.0 s.Pll.iota);
  Alcotest.(check int) "nvars" 3 s.Pll.nvars;
  Alcotest.(check int) "nvars 4th" 4 (s4 ()).Pll.nvars

let test_nominal_in_box () =
  let s = s3 () in
  let p = Pll.nominal s in
  Alcotest.(check bool) "alpha mid" true (Interval.mem p.Pll.alpha s.Pll.alpha);
  Alcotest.(check bool) "kappa mid" true (Interval.mem p.Pll.kappa s.Pll.kappa)

let test_vertices_count () =
  let s = s3 () in
  (* third order: rho and beta are degenerate point intervals *)
  Alcotest.(check int) "2^3 vertices" 8 (List.length (Pll.vertices s));
  let s = s4 () in
  Alcotest.(check int) "2^5 vertices" 32 (List.length (Pll.vertices s))

let test_flow_equilibrium () =
  let s = s3 () in
  let p = Pll.nominal s in
  let f = Pll.flow s p Pll.off in
  Array.iter
    (fun fi -> Alcotest.(check (float 1e-12)) "flow vanishes at origin" 0.0 (Poly.eval fi [| 0.0; 0.0; 0.0 |]))
    f;
  (* pump is proportional to theta in the off mode *)
  let d_at th = Poly.eval f.(1) [| 0.0; 0.0; th |] in
  Alcotest.(check bool) "drive proportional" true
    (Float.abs (d_at 0.5 -. (0.5 *. d_at 1.0)) < 1e-12)

let test_up_mode_constant_drive () =
  let s = s3 () in
  let p = Pll.nominal s in
  let f_up = Pll.flow s p Pll.up in
  let d1 = Poly.eval f_up.(1) [| 0.0; 0.0; 1.2 |] and d2 = Poly.eval f_up.(1) [| 0.0; 0.0; 1.9 |] in
  Alcotest.(check (float 1e-12)) "saturated drive independent of theta" d1 d2;
  let f_down = Pll.flow s p Pll.down in
  Alcotest.(check (float 1e-12)) "down is negated up drive"
    (-.d1)
    (Poly.eval f_down.(1) [| 0.0; 0.0; -1.5 |])

let test_mode_domains () =
  let s = s3 () in
  let inside m x = List.for_all (fun g -> Poly.eval g x >= 0.0) (Pll.mode_domain s m) in
  Alcotest.(check bool) "origin in off" true (inside Pll.off [| 0.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "origin not in up" false (inside Pll.up [| 0.0; 0.0; 0.0 |]);
  Alcotest.(check bool) "theta=1.5 in up" true (inside Pll.up [| 0.0; 0.0; 1.5 |]);
  Alcotest.(check bool) "theta=-1.5 in down" true (inside Pll.down [| 0.0; 0.0; -1.5 |]);
  Alcotest.(check bool) "outside voltage box" false (inside Pll.off [| 3.0; 0.0; 0.0 |])

let test_switching_surfaces () =
  let s = s3 () in
  let surfaces = Pll.switching_surfaces s in
  Alcotest.(check int) "four surfaces" 4 (List.length surfaces);
  List.iter
    (fun (src, dst, h, _) ->
      (* surface polynomials vanish at theta = ±theta_on *)
      let theta = if dst = Pll.up || src = Pll.up then s.Pll.theta_on else -.s.Pll.theta_on in
      let x = [| 0.5; -0.5; theta |] in
      Alcotest.(check (float 1e-12)) "surface vanishes" 0.0 (Poly.eval h x))
    surfaces

let test_lock_from_many_states () =
  let s = s3 () in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  List.iter
    (fun x0 ->
      let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:Pll.off ~x0 ~t_max:120.0 in
      Alcotest.(check bool) "locks" true (Pll.in_lock s r.Hybrid.final.Hybrid.state);
      Alcotest.(check bool) "not blocked" false r.Hybrid.blocked)
    [ [| 1.5; -1.2; 0.3 |]; [| -2.0; 1.0; 0.9 |]; [| 0.0; 2.0; -0.9 |] ]

let test_lock_fourth_order () =
  let s = s4 () in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let r = Hybrid.simulate ~dt:2e-4 sys ~mode0:Pll.off ~x0:[| 0.4; -0.3; 0.2; 0.2 |] ~t_max:300.0 in
  Alcotest.(check bool) "4th order locks" true (Pll.in_lock s r.Hybrid.final.Hybrid.state)

let test_lock_at_parameter_vertices () =
  let s = s3 () in
  (* Robustness: the loop locks at every corner of the coefficient box. *)
  List.iter
    (fun p ->
      let sys = Pll.hybrid_system s p in
      let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:Pll.off ~x0:[| 1.0; -1.0; 0.5 |] ~t_max:120.0 in
      Alcotest.(check bool) "locks at vertex" true (Pll.in_lock s r.Hybrid.final.Hybrid.state))
    (Pll.vertices s)

(* The continuized PFD makes the piecewise vector field continuous across
   the switching surfaces — the property that justifies identity resets
   and the exact advection maps' O(h²) mode-mismatch bound. *)
let test_flow_continuity_at_switch () =
  List.iter
    (fun raw ->
      let s = Pll.scale raw in
      let p = Pll.nominal s in
      let n = s.Pll.nvars in
      let theta = Pll.theta_index s in
      let check at_theta m1 m2 =
        let x = Array.make n 0.3 in
        x.(theta) <- at_theta;
        let f1 = Pll.flow s p m1 and f2 = Pll.flow s p m2 in
        Array.iteri
          (fun i p1 ->
            Alcotest.(check (float 1e-9)) "flow continuous" (Poly.eval p1 x)
              (Poly.eval f2.(i) x))
          f1
      in
      check s.Pll.theta_on Pll.off Pll.up;
      check (-.s.Pll.theta_on) Pll.off Pll.down)
    [ Pll.table1_third; Pll.table1_fourth ]

let test_containment_holds_at_interior () =
  (* Containment constraints must hold strictly at points well inside a
     mode's domain (they are the faces trajectories must not exit). *)
  let s = Pll.scale Pll.table1_third in
  let interior = [| 0.1; -0.1; 0.0 |] in
  List.iter
    (fun g -> Alcotest.(check bool) "interior strictly safe" true (Poly.eval g interior > 0.0))
    (Pll.containment_constraints s Pll.off);
  let outside = [| 3.0; 0.0; 0.0 |] in
  Alcotest.(check bool) "outside violates some containment face" true
    (List.exists (fun g -> Poly.eval g outside < 0.0) (Pll.containment_constraints s Pll.off))

let test_scaled_dynamics_match_physical () =
  (* The scaling is a similarity transform: simulating the scaled system
     and rescaling must agree with simulating the physical equations
     directly (third order, off mode, small step). *)
  let s = Pll.scale Pll.table1_third in
  let p = Pll.nominal s in
  let f = Pll.flow s p Pll.off in
  let x0 = [| 0.5; -0.25; 0.3 |] in
  (* Physical ODE: dv1/dt = (v2-v1)/(R C1), dv2/dt = (v1-v2)/(R C2) + i/C2,
     dθ/dt = -Kv v0 w2/(2π) with v = v0·w, t = t0·τ. *)
  let r = Interval.mid Pll.table1_third.Pll.r in
  let c1 = Interval.mid Pll.table1_third.Pll.c1 in
  let c2 = Interval.mid Pll.table1_third.Pll.c2 in
  let kv = Interval.mid Pll.table1_third.Pll.k_v in
  let ip = Interval.mid Pll.table1_third.Pll.i_p in
  let v1 = x0.(0) *. s.Pll.v0 and v2 = x0.(1) *. s.Pll.v0 in
  let pump_phys = ip *. (x0.(2) /. s.Pll.theta_on) in
  let dv1 = (v2 -. v1) /. (r *. c1) in
  let dv2 = ((v1 -. v2) /. (r *. c2)) +. (pump_phys /. c2) in
  let dth = -.(kv *. v2) /. (2.0 *. Float.pi) in
  (* Scaled derivatives (per scaled time unit) mapped back to physical. *)
  let dw = Array.map (fun q -> Poly.eval q x0) f in
  (* The nominal point takes midpoints of the *scaled* interval
     coefficients (mid(C2/C1) ≠ mid C2 / mid C1), so agreement is to
     interval-width accuracy (~1%), not machine precision. *)
  Alcotest.(check bool) "dv1 matches" true
    (Float.abs (dv1 -. (dw.(0) *. s.Pll.v0 /. s.Pll.t0)) < 2e-2 *. Float.abs dv1);
  Alcotest.(check bool) "dv2 matches" true
    (Float.abs (dv2 -. (dw.(1) *. s.Pll.v0 /. s.Pll.t0)) < 2e-2 *. Float.abs dv2);
  Alcotest.(check bool) "dtheta matches" true
    (Float.abs (dth -. (dw.(2) /. s.Pll.t0)) < 2e-2 *. Float.abs dth)

let test_to_physical () =
  let s = s3 () in
  let x = [| 1.0; -0.5; 0.7 |] in
  let phys = Pll.to_physical s x in
  Alcotest.(check (float 1e-9)) "voltage scaled" s.Pll.v0 phys.(0);
  Alcotest.(check (float 1e-9)) "theta unscaled" 0.7 phys.(2)

(* Sweep-axis API: relative rebuilds of Table-1 parameters. *)

let test_axes () =
  List.iter
    (fun ax ->
      match Pll.axis_of_string (Pll.axis_name ax) with
      | Ok ax' -> Alcotest.(check bool) "name round trip" true (ax = ax')
      | Error e -> Alcotest.fail e)
    Pll.axes;
  (match Pll.axis_of_string "bogus" with
  | Ok _ -> Alcotest.fail "bogus axis accepted"
  | Error _ -> ());
  (* Fourth-order-only axes are absent at third order. *)
  Alcotest.(check bool) "c3 absent at third" true
    (Pll.axis_interval Pll.table1_third Pll.C3 = None);
  Alcotest.(check bool) "c3 present at fourth" true
    (Pll.axis_interval Pll.table1_fourth Pll.C3 <> None)

let test_set_axis_relative () =
  let raw = Pll.table1_third in
  let m = Option.get (Pll.axis_nominal raw Pll.Ip) in
  (match Pll.set_axis_relative raw Pll.Ip ~lo:0.8 ~hi:1.2 with
  | Error e -> Alcotest.fail e
  | Ok raw' ->
      let iv = Option.get (Pll.axis_interval raw' Pll.Ip) in
      Alcotest.(check (float 1e-12)) "lo scaled" (0.8 *. m) (Interval.lo iv);
      Alcotest.(check (float 1e-12)) "hi scaled" (1.2 *. m) (Interval.hi iv);
      (* Other parameters untouched, and the result still scales. *)
      Alcotest.(check bool) "r untouched" true (raw'.Pll.r = raw.Pll.r);
      ignore (Pll.scale raw'));
  List.iter
    (fun (ax, lo, hi) ->
      match Pll.set_axis_relative raw ax ~lo ~hi with
      | Ok _ ->
          Alcotest.failf "set_axis_relative %s %g %g should fail" (Pll.axis_name ax) lo hi
      | Error _ -> ())
    [ (Pll.C3, 0.9, 1.1); (Pll.R2, 0.9, 1.1); (Pll.Ip, 1.2, 0.8); (Pll.Ip, -1.0, 1.0);
      (Pll.Ip, 0.0, 1.0) ]

let suite =
  [
    Alcotest.test_case "scaled coefficients" `Quick test_scaled_coefficients;
    Alcotest.test_case "sweep axes" `Quick test_axes;
    Alcotest.test_case "set axis relative" `Quick test_set_axis_relative;
    Alcotest.test_case "nominal in box" `Quick test_nominal_in_box;
    Alcotest.test_case "vertex count" `Quick test_vertices_count;
    Alcotest.test_case "flow and equilibrium" `Quick test_flow_equilibrium;
    Alcotest.test_case "saturated drive" `Quick test_up_mode_constant_drive;
    Alcotest.test_case "mode domains" `Quick test_mode_domains;
    Alcotest.test_case "switching surfaces" `Quick test_switching_surfaces;
    Alcotest.test_case "third order locks" `Slow test_lock_from_many_states;
    Alcotest.test_case "fourth order locks" `Slow test_lock_fourth_order;
    Alcotest.test_case "locks at parameter vertices" `Slow test_lock_at_parameter_vertices;
    Alcotest.test_case "flow continuity at switches" `Quick test_flow_continuity_at_switch;
    Alcotest.test_case "containment faces behave" `Quick test_containment_holds_at_interior;
    Alcotest.test_case "scaling matches physical ODE" `Quick test_scaled_dynamics_match_physical;
    Alcotest.test_case "physical units" `Quick test_to_physical;
  ]
