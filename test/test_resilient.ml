(* Tests of the resilient solve orchestration layer: fault-plan and
   ladder parsing, ladder recovery from injected failures, structured
   failure diagnoses when retries are off, deadlines, and probe mode. *)

module Ppoly = Sos.Ppoly

let p1 terms =
  Poly.of_terms 1 (List.map (fun (es, c) -> (Poly.Monomial.of_exponents es, c)) terms)

(* (x+1)^2: a certainly-SOS target so any failure is injected, not real. *)
let feasible_prob () =
  let prob = Sos.create ~nvars:1 in
  Sos.add_sos prob (Ppoly.of_poly (p1 [ ([ 2 ], 1.0); ([ 1 ], 2.0); ([ 0 ], 1.0) ]));
  prob

(* x^2 - 1: certainly not SOS, so "not certified" is the right answer. *)
let infeasible_prob () =
  let prob = Sos.create ~nvars:1 in
  Sos.add_sos prob (Ppoly.of_poly (p1 [ ([ 2 ], 1.0); ([ 0 ], -1.0) ]));
  prob

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let plan s =
  match Resilient.Faults.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "fault plan %S rejected: %s" s e

(* ------------------------------------------------------------------ *)
(* Parsing *)

let test_fault_plan_parsing () =
  Alcotest.(check bool) "empty" true (Resilient.Faults.is_empty (plan ""));
  Alcotest.(check bool) "none" true (Resilient.Faults.is_empty (plan "none"));
  Alcotest.(check string) "round trip" "fail@1:2,trunc@*:3,noise@2:1:0.5"
    (Resilient.Faults.to_string (plan "fail@1:2, trunc@*:3, noise@2:1:0.5"));
  (match Resilient.Faults.of_string "melt@1:2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown fault kind accepted");
  match Resilient.Faults.of_string "fail@1" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing iteration accepted"

let test_ladder_parsing () =
  (match Resilient.ladder_of_string "default" with
  | Ok l -> Alcotest.(check bool) "default ladder" true (l = Resilient.default_ladder)
  | Error e -> Alcotest.failf "default rejected: %s" e);
  (match Resilient.ladder_of_string "none" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "none must be the empty ladder"
  | Error e -> Alcotest.failf "none rejected: %s" e);
  (match Resilient.ladder_of_string "equilibrate,jitter:2,relax:5,bump:2" with
  | Ok l ->
      Alcotest.(check string) "round trip" "equilibrate,jitter:2,relax:5,bump:2"
        (Resilient.ladder_to_string l)
  | Error e -> Alcotest.failf "custom ladder rejected: %s" e);
  match Resilient.ladder_of_string "warp:9" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown rung accepted"

(* ------------------------------------------------------------------ *)
(* Ladder recovery: a forced Numerical_failure on the baseline attempt
   must be recovered by a later rung, firing the injection exactly once. *)

let test_ladder_recovers_injected_failure () =
  let faults = plan "fail@1:1" in
  let pol = Resilient.make ~faults () in
  let sol, diag = Resilient.solve_sos pol ~label:"recovery" (feasible_prob ()) in
  Alcotest.(check bool) "recovered to certified" true sol.Sos.certified;
  Alcotest.(check bool) "outcome Certified" true (diag.Resilient.outcome = Resilient.Certified);
  Alcotest.(check bool) "took more than one attempt" true
    (List.length diag.Resilient.attempts >= 2);
  (match diag.Resilient.attempts with
  | first :: _ ->
      Alcotest.(check bool) "baseline failed as injected" true
        (first.Resilient.status = Sdp.Numerical_failure);
      Alcotest.(check int) "fault fired on baseline" 1 first.Resilient.faults_fired
  | [] -> Alcotest.fail "no attempts recorded");
  (match diag.Resilient.accepted_rung with
  | Some r -> Alcotest.(check bool) "accepted above baseline" true (r <> Resilient.Baseline)
  | None -> Alcotest.fail "no accepted rung");
  (* First-attempt-only semantics: the retry must not be re-faulted. *)
  Alcotest.(check int) "injection fired exactly once" 1 (Resilient.Faults.fired faults);
  (* A certified recovery is not a failure — but it is journaled. *)
  Alcotest.(check int) "not a failure" 0 (List.length (Resilient.failures pol))

let test_fault_targets_logical_solve () =
  let faults = plan "fail@2:1" in
  let pol = Resilient.make ~faults () in
  let _, d1 = Resilient.solve_sos pol ~label:"first" (feasible_prob ()) in
  Alcotest.(check int) "solve 1 untouched" 1 (List.length d1.Resilient.attempts);
  let _, d2 = Resilient.solve_sos pol ~label:"second" (feasible_prob ()) in
  Alcotest.(check int) "solve index tracked" 2 d2.Resilient.solve_index;
  Alcotest.(check bool) "solve 2 hit" true (List.length d2.Resilient.attempts >= 2);
  Alcotest.(check int) "fired once" 1 (Resilient.Faults.fired faults)

(* ------------------------------------------------------------------ *)
(* Retries disabled: the same fault yields a structured failure report
   naming the condition and the attempt history. *)

let test_no_retries_structured_failure () =
  let pol = Resilient.make ~retries:false ~faults:(plan "fail@1:1") () in
  let _, diag = Resilient.solve_sos pol ~label:"multi-lyapunov" (feasible_prob ()) in
  Alcotest.(check bool) "failed" true (diag.Resilient.outcome = Resilient.Failed);
  Alcotest.(check int) "single attempt" 1 (List.length diag.Resilient.attempts);
  Alcotest.(check int) "journaled as failure" 1 (List.length (Resilient.failures pol));
  let json = Resilient.diagnosis_to_json diag in
  Alcotest.(check bool) "names the condition" true (contains json "multi-lyapunov");
  Alcotest.(check bool) "names the status" true (contains json "numerical_failure");
  let report = Resilient.report_json pol in
  Alcotest.(check bool) "report carries the diagnosis" true
    (contains report "multi-lyapunov")

(* ------------------------------------------------------------------ *)
(* Deadlines: an exhausted budget truncates the solve and is recorded. *)

let test_solve_deadline () =
  let pol = Resilient.make ~solve_deadline_s:0.0 () in
  let _, diag = Resilient.solve_sos pol ~label:"deadline" (feasible_prob ()) in
  Alcotest.(check bool) "deadline recorded" true diag.Resilient.deadline_hit

let test_pipeline_deadline () =
  let pol = Resilient.make ~pipeline_deadline_s:0.0 () in
  Resilient.begin_pipeline pol;
  Alcotest.(check bool) "out of time" true (Resilient.out_of_time pol)

(* ------------------------------------------------------------------ *)
(* Probe mode: an expected "no" is neither retried nor journaled. *)

let test_probe_is_quiet () =
  let pol = Resilient.make () in
  let probe = Resilient.probe pol in
  let sol, diag = Resilient.solve_sos probe ~label:"probe" (infeasible_prob ()) in
  Alcotest.(check bool) "honest no" false sol.Sos.certified;
  Alcotest.(check int) "no retries" 1 (List.length diag.Resilient.attempts);
  Alcotest.(check int) "nothing journaled" 0 (List.length (Resilient.journal pol));
  (* …but the probe still advances the shared logical solve counter. *)
  Alcotest.(check int) "solve counted" 1 (Resilient.solves pol)

(* Budget accounting: consumed counts every attempt of every solve —
   including quiet probe attempts that never reach the journal — so a
   sweep cell's true cost is visible to its orchestrator. *)

let test_consumed_budget () =
  (* An injected baseline failure forces one ladder retry, so the meter
     must show two attempts for one logical solve. *)
  let pol = Resilient.make ~ladder:[ Resilient.Equilibrate ] ~faults:(plan "fail@1:1") () in
  let zero = Resilient.consumed pol in
  Alcotest.(check int) "fresh: no attempts" 0 zero.Resilient.attempts;
  Alcotest.(check int) "fresh: no solves" 0 zero.Resilient.solves;
  ignore (Resilient.solve_sos pol ~label:"budget" (feasible_prob ()));
  let b = Resilient.consumed pol in
  Alcotest.(check int) "attempts across rungs" 2 b.Resilient.attempts;
  Alcotest.(check int) "one logical solve" 1 b.Resilient.solves;
  Alcotest.(check bool) "time accumulated" true (b.Resilient.attempt_s >= 0.0);
  (* Quiet probes are not journaled but still cost attempts. *)
  let n_journal = List.length (Resilient.journal pol) in
  ignore (Resilient.solve_sos (Resilient.probe pol) ~label:"p" (infeasible_prob ()));
  let b' = Resilient.consumed pol in
  Alcotest.(check int) "probe attempt counted" 3 b'.Resilient.attempts;
  Alcotest.(check int) "probe solve counted" 2 b'.Resilient.solves;
  Alcotest.(check int) "probe not journaled" n_journal
    (List.length (Resilient.journal pol));
  (* begin_pipeline resets the meter. *)
  Resilient.begin_pipeline pol;
  Alcotest.(check int) "reset" 0 (Resilient.consumed pol).Resilient.attempts

let suite =
  [
    Alcotest.test_case "fault plan parsing" `Quick test_fault_plan_parsing;
    Alcotest.test_case "consumed budget" `Quick test_consumed_budget;
    Alcotest.test_case "ladder parsing" `Quick test_ladder_parsing;
    Alcotest.test_case "ladder recovers injected failure" `Quick
      test_ladder_recovers_injected_failure;
    Alcotest.test_case "fault targets logical solve" `Quick test_fault_targets_logical_solve;
    Alcotest.test_case "no retries: structured failure" `Quick
      test_no_retries_structured_failure;
    Alcotest.test_case "solve deadline" `Quick test_solve_deadline;
    Alcotest.test_case "pipeline deadline" `Quick test_pipeline_deadline;
    Alcotest.test_case "probe is quiet" `Quick test_probe_is_quiet;
  ]
