(* End-to-end smoke test of the fault-tolerant certification atlas,
   driven against the real binaries (paths arrive as argv from the dune
   rule):

   - run A: uninterrupted 2x2 sweep at -j 1 — the reference atlas;
   - run D: the same sweep at -j 4 — atlas.json must be byte-identical
     to A (parallelism must not leak into the report);
   - run B: chaos — the sweep is killed mid-flight at three distinct
     cells via --fault-plan kill@<id>, resumed each time, and the final
     plain --resume must (a) exit 0, (b) produce an atlas.json
     byte-identical to A, and (c) never re-solve a certified cell (each
     cell appears exactly once in the write-ahead ledger);
   - run C: an injected unsolvable cell is subdivided to --max-subdiv
     and quarantined with a machine-readable diagnosis; exit code 2;
   - guard rails: resuming with drifted configuration is refused (exit
     1), reusing a populated run dir without --resume is refused (exit
     1), malformed fault plans are usage errors (exit 124) in both
     atlas_pll and verify_pll. *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("atlas_smoke: " ^ m); exit 1) fmt

let root =
  Filename.concat (Filename.get_temp_dir_name ())
    (Printf.sprintf "pll-atlas-smoke-%d" (Unix.getpid ()))

let cleanup () = ignore (Sys.command ("rm -rf " ^ Filename.quote root))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Run a command with output captured to a log; on unexpected exit code
   the log is dumped so failures are diagnosable from CI output. *)
let n_runs = ref 0

let run ~expect ~what args =
  incr n_runs;
  let log = Filename.concat root (Printf.sprintf "run%02d.log" !n_runs) in
  let cmd = args ^ " > " ^ Filename.quote log ^ " 2>&1" in
  let code = Sys.command cmd in
  if code <> expect then begin
    prerr_endline ("--- " ^ what ^ ": " ^ cmd);
    prerr_endline (try read_file log with _ -> "(no output)");
    die "%s: expected exit %d, got %d" what expect code
  end;
  log

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let count_lines_with path needle =
  let n = ref 0 in
  let ic = open_in path in
  (try
     while true do
       if contains (input_line ic) needle then incr n
     done
   with End_of_file -> close_in ic);
  !n

let () =
  if Array.length Sys.argv < 3 then die "usage: atlas_smoke ATLAS_PLL_EXE VERIFY_PLL_EXE";
  let atlas_exe = Filename.quote Sys.argv.(1) in
  let verify_exe = Filename.quote Sys.argv.(2) in
  Unix.mkdir root 0o755;
  at_exit cleanup;
  let dir name = Filename.quote (Filename.concat root name) in
  (* Degree 4 keeps each cell's SDP small; --bisect-steps 4 is the
     minimum that reaches the feasible level from the search ceiling. *)
  let base =
    atlas_exe ^ " -o third -d 4 --bisect-steps 4 --grid ip=0.95:1.05:2,kv=0.97:1.03:2"
  in

  (* Run A: the uninterrupted reference. *)
  ignore (run ~expect:0 ~what:"run A (reference sweep)" (base ^ " -j 1 --run-dir " ^ dir "A"));
  let ref_atlas = read_file (Filename.concat root "A/atlas.json") in
  if not (contains ref_atlas "\"certified\":4") then
    die "run A did not certify all 4 cells:\n%s" ref_atlas;

  (* Run D: parallelism must not change the atlas. *)
  ignore (run ~expect:0 ~what:"run D (-j 4 determinism)" (base ^ " -j 4 --run-dir " ^ dir "D"));
  if read_file (Filename.concat root "D/atlas.json") <> ref_atlas then
    die "-j 4 atlas differs from -j 1 atlas";

  (* Run B: kill -9 the orchestrator at three distinct cells, resuming
     after each crash. The kill fires AFTER the cell is ledgered, so
     every resume finds strictly more completed work. *)
  let chaos fault what =
    ignore
      (run ~expect:137 ~what
         (base ^ " -j 1 --resume " ^ dir "B" ^ " --fault-plan " ^ fault))
  in
  chaos "kill@c0-0" "run B kill 1";
  chaos "kill@c0-1" "run B kill 2";
  chaos "kill@c1-0" "run B kill 3";
  let log =
    run ~expect:0 ~what:"run B final resume" (base ^ " -j 1 --resume " ^ dir "B")
  in
  if read_file (Filename.concat root "B/atlas.json") <> ref_atlas then
    die "resumed atlas differs from uninterrupted atlas";
  if not (contains (read_file log) "replayed") then
    die "final resume did not report replayed cells";
  (* Zero re-solves: the write-ahead ledger records each certification
     once; a replayed cell is never re-ledgered. *)
  let ledger = Filename.concat root "B/ledger.log" in
  List.iter
    (fun id ->
      let n = count_lines_with ledger ("done " ^ id ^ " ") in
      if n <> 1 then die "cell %s ledgered %d times (expected exactly 1)" id n)
    [ "c0-0"; "c0-1"; "c1-0"; "c1-1" ];

  (* Run C: injected failure -> bounded subdivision -> quarantine. A
     1-cell grid keeps this solver-free. *)
  ignore
    (run ~expect:2 ~what:"run C (quarantine)"
       (atlas_exe
      ^ " -o third -d 4 --bisect-steps 4 --grid ip=0.95:1.05:1 --max-subdiv 1 \
         --fault-plan fail-cell@c0 --run-dir " ^ dir "C"));
  let qdir = Filename.concat root "C/quarantine" in
  let qfiles = try Sys.readdir qdir with _ -> [||] in
  if Array.length qfiles = 0 then die "no quarantine diagnoses written";
  Array.iter
    (fun f ->
      let d = read_file (Filename.concat qdir f) in
      if not (contains d "\"kind\":\"injected\"") then
        die "quarantine diagnosis %s lacks machine-readable kind:\n%s" f d)
    qfiles;

  (* Guard rails. *)
  let refused =
    run ~expect:1 ~what:"config drift refusal"
      (atlas_exe
     ^ " -o third -d 6 --bisect-steps 4 --grid ip=0.95:1.05:2,kv=0.97:1.03:2 \
        -j 1 --resume " ^ dir "A")
  in
  if not (contains (read_file refused) "config-drift") then
    die "drifted resume refusal lacks the config-drift diagnosis";
  ignore
    (run ~expect:1 ~what:"populated dir without --resume" (base ^ " -j 1 --run-dir " ^ dir "A"));
  ignore (run ~expect:124 ~what:"atlas bad fault plan" (base ^ " --fault-plan melt@1"));
  ignore
    (run ~expect:124 ~what:"verify_pll bad fault plan"
       (verify_exe ^ " -o third --fault-plan melt@1"));
  print_endline "atlas_smoke: OK"
