let () =
  Alcotest.run "pll_sos"
    [
      ("linalg", Test_linalg.suite);
      ("poly", Test_poly.suite);
      ("interval", Test_interval.suite);
      ("sdp", Test_sdp.suite);
      ("sos", Test_sos.suite);
      ("resilient", Test_resilient.suite);
      ("supervise", Test_supervise.suite);
      ("hybrid", Test_hybrid.suite);
      ("pll", Test_pll.suite);
      ("certificates", Test_certificates.suite);
      ("exact", Test_exact.suite);
      ("advect", Test_advect.suite);
      ("reachset", Test_reachset.suite);
      ("barrier", Test_barrier.suite);
      ("core", Test_core.suite);
      ("atlas", Test_atlas.suite);
      ("service", Test_service.suite);
    ]
