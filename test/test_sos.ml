(* End-to-end tests of the SOS programming layer: decompositions that must
   exist, ones that must not, optimization via free scalars, S-procedure
   domain restrictions, Lemma-1 set inclusions, and a small Lyapunov
   search. *)

module Ppoly = Sos.Ppoly
module Lexpr = Sos.Lexpr

let p1 terms = Poly.of_terms 1 (List.map (fun (es, c) -> (Poly.Monomial.of_exponents es, c)) terms)

let p2 terms = Poly.of_terms 2 (List.map (fun (es, c) -> (Poly.Monomial.of_exponents es, c)) terms)

(* (x+1)^2 = x^2 + 2x + 1 is SOS. *)
let test_sos_feasible () =
  let prob = Sos.create ~nvars:1 in
  Sos.add_sos prob (Ppoly.of_poly (p1 [ ([ 2 ], 1.0); ([ 1 ], 2.0); ([ 0 ], 1.0) ]));
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified

(* x^2 - 1 is not SOS (negative at 0). *)
let test_sos_infeasible () =
  let prob = Sos.create ~nvars:1 in
  Sos.add_sos prob (Ppoly.of_poly (p1 [ ([ 2 ], 1.0); ([ 0 ], -1.0) ]));
  let sol = Sos.solve prob in
  Alcotest.(check bool) "not certified" false sol.Sos.certified

(* The Motzkin polynomial is nonnegative but famously not SOS. *)
let test_motzkin_not_sos () =
  let motzkin =
    Poly.of_terms 2
      [
        (Poly.Monomial.of_exponents [ 4; 2 ], 1.0);
        (Poly.Monomial.of_exponents [ 2; 4 ], 1.0);
        (Poly.Monomial.of_exponents [ 2; 2 ], -3.0);
        (Poly.Monomial.of_exponents [ 0; 0 ], 1.0);
      ]
  in
  let prob = Sos.create ~nvars:2 in
  Sos.add_sos prob (Ppoly.of_poly motzkin);
  let sol = Sos.solve prob in
  Alcotest.(check bool) "not certified" false sol.Sos.certified

(* Global lower bound: max γ s.t. (x-1)^2 + 2 - γ ∈ Σ. Optimum γ = 2. *)
let test_global_minimum () =
  let prob = Sos.create ~nvars:1 in
  let gamma = Sos.fresh_free prob in
  let p = p1 [ ([ 2 ], 1.0); ([ 1 ], -2.0); ([ 0 ], 3.0) ] in
  Sos.add_sos prob (Ppoly.sub (Ppoly.of_poly p) (Ppoly.scale_expr gamma (Poly.one 1)));
  Sos.maximize prob gamma;
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified;
  Alcotest.(check (float 1e-5)) "gamma = 2" 2.0 sol.Sos.objective

(* Bivariate: min of x^2 + y^2 - 2x - 4y + 6 is 1 (at (1,2)). *)
let test_global_minimum_2d () =
  let prob = Sos.create ~nvars:2 in
  let gamma = Sos.fresh_free prob in
  let p =
    p2 [ ([ 2; 0 ], 1.0); ([ 0; 2 ], 1.0); ([ 1; 0 ], -2.0); ([ 0; 1 ], -4.0); ([ 0; 0 ], 6.0) ]
  in
  Sos.add_sos prob (Ppoly.sub (Ppoly.of_poly p) (Ppoly.scale_expr gamma (Poly.one 2)));
  Sos.maximize prob gamma;
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified;
  Alcotest.(check (float 1e-5)) "gamma = 1" 1.0 sol.Sos.objective

(* S-procedure: x >= 1/2 on the set {x - 1 >= 0} — needs the domain. *)
let test_s_procedure () =
  let shifted = Ppoly.of_poly (p1 [ ([ 1 ], 1.0); ([ 0 ], -0.5) ]) in
  let domain = p1 [ ([ 1 ], 1.0); ([ 0 ], -1.0) ] in
  let prob0 = Sos.create ~nvars:1 in
  Sos.add_nonneg_on prob0 ~domain:[] shifted;
  Alcotest.(check bool) "globally: not certified" false (Sos.solve prob0).Sos.certified;
  let prob1 = Sos.create ~nvars:1 in
  Sos.add_nonneg_on prob1 ~mult_deg:2 ~domain:[ domain ] shifted;
  Alcotest.(check bool) "on domain: certified" true (Sos.solve prob1).Sos.certified

(* Lemma 1 set inclusion: {x^2 - 1 <= 0} ⊆ {x^2 - 4 <= 0}, not conversely. *)
let test_set_inclusion () =
  let small = p1 [ ([ 2 ], 1.0); ([ 0 ], -1.0) ] in
  let big = p1 [ ([ 2 ], 1.0); ([ 0 ], -4.0) ] in
  let prob = Sos.create ~nvars:1 in
  Sos.add_set_inclusion prob ~outer:(Ppoly.of_poly big) small;
  Alcotest.(check bool) "inclusion holds" true (Sos.solve prob).Sos.certified;
  let prob' = Sos.create ~nvars:1 in
  Sos.add_set_inclusion prob' ~outer:(Ppoly.of_poly small) big;
  Alcotest.(check bool) "reverse fails" false (Sos.solve prob').Sos.certified

(* Lyapunov search for the linear system dx = -x + y, dy = -x - y:
   find V with V - eps|x|^2 ∈ Σ and -∇V·f - eps|x|^2 ∈ Σ. *)
let test_lyapunov_linear () =
  let f = [| p2 [ ([ 1; 0 ], -1.0); ([ 0; 1 ], 1.0) ]; p2 [ ([ 1; 0 ], -1.0); ([ 0; 1 ], -1.0) ] |] in
  let norm2 = p2 [ ([ 2; 0 ], 1.0); ([ 0; 2 ], 1.0) ] in
  let prob = Sos.create ~nvars:2 in
  let v = Sos.fresh_poly prob ~deg:2 ~min_deg:2 in
  Sos.add_sos prob (Ppoly.sub v (Ppoly.of_poly (Poly.scale 0.01 norm2)));
  Sos.add_sos prob
    (Ppoly.sub (Ppoly.neg (Ppoly.lie_derivative v f)) (Ppoly.of_poly (Poly.scale 0.01 norm2)));
  (* Normalize: trace-like condition pins the scale of V. *)
  Sos.add_zero prob
    (Ppoly.sub
       (Ppoly.of_terms 2 [ (Poly.Monomial.of_exponents [ 2; 0 ], Ppoly.coeff v (Poly.Monomial.of_exponents [ 2; 0 ])) ])
       (Ppoly.of_poly (p2 [ ([ 2; 0 ], 1.0) ])));
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified;
  let vp = Sos.value sol v in
  (* The certificate must decrease along a simulated trajectory. *)
  let x = ref [| 1.0; -0.7 |] in
  let prev = ref (Poly.eval vp !x) in
  for _ = 1 to 200 do
    let dt = 0.01 in
    let dx0 = Poly.eval f.(0) !x and dx1 = Poly.eval f.(1) !x in
    x := [| !x.(0) +. (dt *. dx0); !x.(1) +. (dt *. dx1) |];
    let now = Poly.eval vp !x in
    Alcotest.(check bool) "V decreases" true (now <= !prev +. 1e-9);
    prev := now
  done

(* Nonlinear: dx = -x^3 admits V = x^2 with -V' * f = 2x^4. *)
let test_lyapunov_cubic () =
  let f = [| p1 [ ([ 3 ], -1.0) ] |] in
  let prob = Sos.create ~nvars:1 in
  let v = Sos.fresh_poly prob ~deg:2 ~min_deg:2 in
  Sos.add_sos prob (Ppoly.sub v (Ppoly.of_poly (p1 [ ([ 2 ], 0.1) ])));
  Sos.add_sos prob (Ppoly.neg (Ppoly.lie_derivative v f));
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified

(* An SOS witness must reconstruct the polynomial: Σ p_i² = p. *)
let test_sos_witness () =
  let p = p1 [ ([ 4 ], 1.0); ([ 2 ], 2.0); ([ 0 ], 1.0 ) ] in
  let prob = Sos.create ~nvars:1 in
  Sos.add_sos prob (Ppoly.of_poly p);
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified;
  let parts = Sos.sos_witness prob sol 0 in
  let reconstructed = Poly.sum 1 (List.map (fun q -> Poly.mul q q) parts) in
  Alcotest.(check bool) "reconstruction" true (Poly.approx_equal ~tol:1e-5 reconstructed p)

(* --- Lexpr / Ppoly primitives ---------------------------------------- *)

let test_lexpr_ops () =
  let open Sos.Lexpr in
  let v0 = Sos.Dvar.Free 0 and v1 = Sos.Dvar.Free 1 in
  let e = add (scale 2.0 (var v0)) (add_const 3.0 (var v1)) in
  let assign = function Sos.Dvar.Free 0 -> 5.0 | Sos.Dvar.Free 1 -> -1.0 | _ -> 0.0 in
  Alcotest.(check (float 1e-12)) "eval" (10.0 +. (-1.0) +. 3.0) (eval assign e);
  Alcotest.(check (float 1e-12)) "max_coeff" 3.0 (max_coeff e);
  Alcotest.(check bool) "sub to zero" true (is_const (sub e e));
  Alcotest.(check (float 1e-12)) "neg flips" (-3.0) (constant (neg e))

let test_ppoly_fix_var () =
  (* p = t0 * x0^2 * x1; fixing x1 := 2 gives 2*t0*x0^2 *)
  let e = Sos.Lexpr.var (Sos.Dvar.Free 0) in
  let p = Ppoly.of_terms 2 [ (Poly.Monomial.of_exponents [ 2; 1 ], e) ] in
  let q = Ppoly.fix_var 1 2.0 p in
  let assign = function Sos.Dvar.Free 0 -> 3.0 | _ -> 0.0 in
  let v = Ppoly.value assign q in
  Alcotest.(check (float 1e-12)) "value" (2.0 *. 3.0 *. 16.0) (Poly.eval v [| 4.0; 7.0 |])

let test_ppoly_apply_poly_map () =
  (* w = t0·x0^2 composed with x0 := x0 + x1: t0·(x0+x1)^2 *)
  let e = Sos.Lexpr.var (Sos.Dvar.Free 0) in
  let w = Ppoly.of_terms 2 [ (Poly.Monomial.of_exponents [ 2; 0 ], e) ] in
  let m =
    [| Poly.add (Poly.var 2 0) (Poly.var 2 1); Poly.var 2 1 |]
  in
  let composed = Ppoly.apply_poly_map m w in
  let assign = function Sos.Dvar.Free 0 -> 1.5 | _ -> 0.0 in
  let v = Ppoly.value assign composed in
  Alcotest.(check (float 1e-12)) "composition" (1.5 *. 25.0) (Poly.eval v [| 2.0; 3.0 |])

(* Equality multipliers: x >= 0 does not hold globally, but on the line
   {x - 1 = 0} it does. *)
let test_equality_multiplier () =
  let h = p1 [ ([ 1 ], 1.0); ([ 0 ], -1.0) ] in
  let x = Ppoly.of_poly (p1 [ ([ 1 ], 1.0) ]) in
  let prob0 = Sos.create ~nvars:1 in
  Sos.add_nonneg_on prob0 ~domain:[] x;
  Alcotest.(check bool) "globally fails" false (Sos.solve prob0).Sos.certified;
  let prob1 = Sos.create ~nvars:1 in
  Sos.add_nonneg_on prob1 ~equalities:[ h ] ~domain:[] x;
  Alcotest.(check bool) "on the surface holds" true (Sos.solve prob1).Sos.certified

(* Variable-restricted Gram bases must not change satisfiability: a
   polynomial in x0 only, posed in a 3-variable problem. *)
let test_var_restricted_basis () =
  let p3v = Poly.of_terms 3 [ (Poly.Monomial.of_exponents [ 4; 0; 0 ], 1.0); (Poly.Monomial.of_exponents [ 0; 0; 0 ], 1.0) ] in
  let prob = Sos.create ~nvars:3 in
  Sos.add_sos prob (Ppoly.of_poly p3v);
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified;
  (* the Gram block only needs the x0-monomials 1, x0, x0^2 *)
  match Sos.gram_blocks sol with
  | [ g ] -> Alcotest.(check int) "basis pruned to 3" 3 g.Linalg.Mat.rows
  | _ -> Alcotest.fail "expected one gram block"

let test_objective_scale_expr () =
  (* maximize c subject to c <= 2 expressed via SOS slack: c + s = 2. *)
  let prob = Sos.create ~nvars:1 in
  let c = Sos.fresh_free prob in
  let slack = Sos.fresh_sos prob ~deg:0 in
  Sos.add_zero prob
    (Ppoly.add (Ppoly.scale_expr c (Poly.one 1))
       (Ppoly.sub slack (Ppoly.of_poly (Poly.const 1 2.0))));
  Sos.maximize prob c;
  let sol = Sos.solve prob in
  Alcotest.(check bool) "certified" true sol.Sos.certified;
  Alcotest.(check (float 1e-6)) "optimum" 2.0 sol.Sos.objective

(* fig2-family warm/cold agreement: inclusion-style S-procedure checks
   over the third-order PLL's mode domains (the exact problem shape the
   advection loop fans out every iteration), swept through one session.
   Warm solves must certify exactly what cold solves certify. *)
let test_session_fig2_family () =
  let s = Pll.scale Pll.table1_third in
  let n = s.Pll.nvars in
  let ball r =
    let sq = ref (Poly.const n (-.(r *. r))) in
    for i = 0 to n - 1 do
      let e = List.init n (fun j -> if j = i then 2 else 0) in
      sq :=
        Poly.add !sq (Poly.of_terms n [ (Poly.Monomial.of_exponents e, 1.0) ])
    done;
    !sq
  in
  let sess = Sdp.Session.create () in
  let contained ?session r_in r_out =
    (* S(ball r_in) ∩ D_0 inside the r_out ball — the Line-6 check shape. *)
    let prob = Sos.create ~nvars:n in
    Sos.add_nonneg_on ~mult_deg:2 prob
      ~domain:(Poly.neg (ball r_in) :: Pll.mode_domain s 0)
      (Sos.Ppoly.of_poly (Poly.neg (ball r_out)));
    let options = Sos.Options.make ?session () in
    (Sos.solve ~options prob).Sos.certified
  in
  List.iter
    (fun r ->
      let cold = contained r 1.0 in
      let warm = contained ~session:sess r 1.0 in
      Alcotest.(check bool)
        (Printf.sprintf "verdict agrees at r=%g" r)
        cold warm;
      Alcotest.(check bool) (Printf.sprintf "certifies at r=%g" r) true warm)
    [ 0.2; 0.25; 0.3; 0.35 ];
  let c = Sdp.Session.counters sess in
  Alcotest.(check bool) "sweep actually warm" true (c.Sdp.Session.warm_accepted >= 1)

let suite =
  [
    Alcotest.test_case "lexpr ops" `Quick test_lexpr_ops;
    Alcotest.test_case "ppoly fix_var" `Quick test_ppoly_fix_var;
    Alcotest.test_case "ppoly apply_poly_map" `Quick test_ppoly_apply_poly_map;
    Alcotest.test_case "equality multiplier" `Quick test_equality_multiplier;
    Alcotest.test_case "variable-restricted basis" `Quick test_var_restricted_basis;
    Alcotest.test_case "objective via scale_expr" `Quick test_objective_scale_expr;
    Alcotest.test_case "sos feasible" `Quick test_sos_feasible;
    Alcotest.test_case "sos infeasible" `Quick test_sos_infeasible;
    Alcotest.test_case "motzkin not sos" `Quick test_motzkin_not_sos;
    Alcotest.test_case "global minimum 1d" `Quick test_global_minimum;
    Alcotest.test_case "global minimum 2d" `Quick test_global_minimum_2d;
    Alcotest.test_case "s-procedure" `Quick test_s_procedure;
    Alcotest.test_case "set inclusion" `Quick test_set_inclusion;
    Alcotest.test_case "lyapunov linear 2d" `Quick test_lyapunov_linear;
    Alcotest.test_case "lyapunov cubic" `Quick test_lyapunov_cubic;
    Alcotest.test_case "sos witness" `Quick test_sos_witness;
    Alcotest.test_case "session: fig2-family warm/cold verdicts" `Quick
      test_session_fig2_family;
  ]
