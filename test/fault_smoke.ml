(* Fault-injection smoke test — the resilience acceptance scenario.

   With the retry ladder on, the third-order P1 certificate search must
   survive a Numerical_failure injected into its first SOS solve and the
   recovered certificate must re-prove in exact arithmetic. With retries
   disabled, the same fault plan must instead produce a structured
   failure report that names the failed condition and carries the
   attempt history. Exits nonzero on any deviation. *)

let die fmt = Printf.ksprintf (fun m -> prerr_endline ("fault_smoke: " ^ m); exit 1) fmt

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let plan s =
  match Resilient.Faults.of_string s with
  | Ok p -> p
  | Error e -> die "bad fault plan %S: %s" s e

let () =
  let s = Pll.scale Pll.table1_third in
  (* ---- ladder on: the injected failure must be recovered from ---- *)
  let faults = plan "fail@1:2" in
  let pol = Resilient.make ~faults () in
  let config =
    {
      (Certificates.default_config Pll.Third) with
      Certificates.degree = 4;
      resilience = pol;
    }
  in
  let cert =
    match Certificates.find_multi_lyapunov ~config s with
    | Error e -> die "pipeline did not survive the injected fault: %s" e
    | Ok c -> c
  in
  let fired = Resilient.Faults.fired faults in
  if fired <> 1 then die "fault fired %d times, expected exactly once" fired;
  let diag =
    match
      List.find_opt
        (fun d -> d.Resilient.label = "multi-lyapunov")
        (Resilient.journal pol)
    with
    | Some d -> d
    | None -> die "multi-lyapunov solve not journaled"
  in
  (match diag.Resilient.attempts with
  | first :: _ :: _ when first.Resilient.status = Sdp.Numerical_failure ->
      Printf.printf "recovered after %d attempts (accepted rung: %s)\n%!"
        (List.length diag.Resilient.attempts)
        (match diag.Resilient.accepted_rung with
        | Some r -> Resilient.rung_name r
        | None -> "?")
  | _ -> die "expected a failed baseline attempt followed by a recovery");
  if diag.Resilient.outcome <> Resilient.Certified then
    die "recovery did not end certified";
  (match Certificates.validate_exactly s cert with
  | Error e -> die "exact validation failed structurally: %s" e
  | Ok v ->
      if not v.Certificates.all_proven then
        die "recovered certificate did not re-prove exactly";
      print_endline "recovered certificate exactly re-proven");
  (* ---- retries off: same plan, structured failure instead ---- *)
  let pol2 = Resilient.make ~retries:false ~faults:(plan "fail@1:2") () in
  let config2 = { config with Certificates.resilience = pol2 } in
  (match Certificates.find_multi_lyapunov ~config:config2 s with
  | Ok _ -> die "expected the un-retried faulted solve to fail"
  | Error e ->
      if not (contains e "multi-lyapunov") then
        die "failure report does not name the condition: %s" e;
      if not (contains e "numerical_failure") then
        die "failure report does not carry the attempt status: %s" e);
  (match Resilient.failures pol2 with
  | [ d ] when List.length d.Resilient.attempts = 1 -> ()
  | _ -> die "expected exactly one journaled failure with its attempt history");
  print_endline "structured failure report verified";
  print_endline "fault_smoke: OK"
