(* Verify inevitability of phase-locking for the third-order CP PLL of
   the paper's Table 1 — the full two-pronged pipeline:

     P1: multiple Lyapunov certificates + maximized level sets (X1)
     P2: bounded advection of the outer set X2 into X1

   By default this uses degree-4 certificates (seconds); pass `6` as the
   first argument for the paper's degree-6 run (minutes).

   Run with:  dune exec examples/third_order_pll.exe [degree] *)

let () =
  let degree = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 4 in
  let s = Pll.scale Pll.table1_third in
  Format.printf "%a@.@." Pll.pp_scaled s;
  let cert_config = { (Certificates.default_config Pll.Third) with Certificates.degree } in
  match Pll_core.Inevitability.verify ~cert_config s with
  | Error e ->
      Format.printf "verification failed: %s@." e;
      exit 1
  | Ok report ->
      Format.printf "%a@.@." Pll_core.Inevitability.pp_report report;
      (* Show the attractive-invariant boundary on the (v1, v2) plane
         (the left panel of the paper's Fig. 2), in physical volts. *)
      let v_off = report.Pll_core.Inevitability.invariant.Certificates.cert.Certificates.vs.(Pll.off) in
      let beta = report.Pll_core.Inevitability.invariant.Certificates.beta in
      let pts = Certificates.level_curve v_off ~beta ~plane:(0, 1) ~nvars:3 ~n:16 in
      Format.printf "X1 boundary on (v1, v2), volts:@.";
      List.iter
        (fun (a, b) -> Format.printf "  % .3f  % .3f@." (a *. s.Pll.v0) (b *. s.Pll.v0))
        pts;
      (* Monte-Carlo soundness check of the certificate. *)
      let valid =
        Certificates.validate_by_simulation ~trials:25 s
          report.Pll_core.Inevitability.invariant
      in
      Format.printf "@.simulation validation of X1: %b@." valid;
      (* Exact a-posteriori validation: re-prove every Theorem-1
         condition in rational arithmetic, persist the proof artifact,
         and replay it from disk — the replay trusts no floats. *)
      let exact_ok =
        match
          Certificates.validate_exactly s
            report.Pll_core.Inevitability.invariant.Certificates.cert
        with
        | Error e ->
            Format.printf "exact validation failed to run: %s@." e;
            false
        | Ok v ->
            Format.printf "@.exact validation of the Lyapunov certificates:@.";
            List.iter
              (fun (name, verdict) ->
                Format.printf "  %-22s %s@." name
                  (match verdict with
                  | Exact.Check.Proven _ -> "proven"
                  | other -> Exact.Check.verdict_to_string other))
              v.Certificates.verdicts;
            (match v.Certificates.min_margin with
            | Some m ->
                Format.printf "  min exact LDL^T margin: %.3e@." (Exact.Rat.to_float m)
            | None -> ());
            let path = Filename.temp_file "third_order_pll" ".cert" in
            Exact.Artifact.save path v.Certificates.artifact;
            let replay_ok =
              match Exact.Artifact.load path with
              | Error e ->
                  Format.printf "  artifact reload failed: %s@." e;
                  false
              | Ok reloaded ->
                  List.for_all
                    (fun (name, verdict) ->
                      match verdict with
                      | Exact.Check.Proven _ -> true
                      | bad ->
                          Format.printf "  replay of %s: %s@." name
                            (Exact.Check.verdict_to_string bad);
                          false)
                    (Exact.Artifact.check_all reloaded)
            in
            Format.printf "  artifact saved to %s; replay from disk: %s@." path
              (if replay_ok then "all proven" else "FAILED");
            v.Certificates.all_proven && replay_ok
      in
      if not (report.Pll_core.Inevitability.verified && valid && exact_ok) then exit 1
