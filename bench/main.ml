(* Benchmark harness: regenerates every table and figure of the paper's
   experimental evaluation (Section 4), plus the ablations called out in
   DESIGN.md.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe table1       -- just one artifact
     dune exec bench/main.exe --fast       -- degree-4 certificates for
                                              the 3rd order (seconds
                                              instead of minutes)
     dune exec bench/main.exe --json P     -- also write per-artifact
                                              wall/CPU timings and
                                              solve/cache counters to P

   Artifacts: table1 table2 fig2 fig3 fig4 fig5 ablation-reachset
   ablation-degree ablation-robust ablation-advect extensions
   sweep-fast service-fast kernels.

   Absolute times differ from the paper (different machine, different
   solver); the reproduced shape is: which step dominates the runtime
   (the attractive-invariant search), how many advection iterations are
   needed, and where escape certificates become necessary (the 4th
   order). EXPERIMENTS.md records paper-vs-measured values. *)

let sect title = Format.printf "@.==== %s ====@.@." title

(* ------------------------------------------------------------------ *)
(* Shared pipeline runs (computed once, reused by table2/fig2..fig5).  *)

type pipeline = { scaled : Pll.scaled; report : Pll_core.Inevitability.report }

(* With --json, the pipeline runs carry a (non-isolating) supervision
   context whose content-addressed cache deduplicates identical solve
   requests across artifacts; its counters feed the JSON report. *)
let bench_ctx : Supervise.ctx option ref = ref None

let run_pipeline ~label scaled ~degree ~max_advect_iter =
  Format.printf "[running %s pipeline with degree-%d certificates...]@." label degree;
  let cert_config =
    { (Certificates.default_config scaled.Pll.order) with Certificates.degree }
  in
  match
    Pll_core.Inevitability.verify ~cert_config ~max_advect_iter ?supervise:!bench_ctx
      scaled
  with
  | Error e -> failwith (Printf.sprintf "%s pipeline failed: %s" label e)
  | Ok report -> { scaled; report }

let third = lazy (Pll.scale Pll.table1_third)

let fourth = lazy (Pll.scale Pll.table1_fourth)

let fast_mode = ref false

let third_pipeline =
  lazy
    (let degree = if !fast_mode then 4 else 6 in
     run_pipeline ~label:"third-order" (Lazy.force third) ~degree ~max_advect_iter:12)

let fourth_pipeline =
  lazy (run_pipeline ~label:"fourth-order" (Lazy.force fourth) ~degree:4 ~max_advect_iter:8)

(* ------------------------------------------------------------------ *)
(* Table 1 — PLL parameters used in the experimentation.               *)

let pp_iv ppf iv = Format.fprintf ppf "[%g, %g]" (Interval.lo iv) (Interval.hi iv)

let table1 () =
  sect "Table 1: PLL parameters used in the experimentation";
  let r3 = Pll.table1_third and r4 = Pll.table1_fourth in
  let opt ppf = function None -> Format.fprintf ppf "-" | Some iv -> pp_iv ppf iv in
  let srow name a b = Format.printf "  %-12s %-22s %-22s@." name a b in
  srow "Parameter" "Third order" "Fourth order";
  srow "C1 (F)" (Format.asprintf "%a" pp_iv r3.Pll.c1) (Format.asprintf "%a" pp_iv r4.Pll.c1);
  srow "C2 (F)" (Format.asprintf "%a" pp_iv r3.Pll.c2) (Format.asprintf "%a" pp_iv r4.Pll.c2);
  srow "C3 (F)" (Format.asprintf "%a" opt r3.Pll.c3) (Format.asprintf "%a" opt r4.Pll.c3);
  srow "R (Ohm)" (Format.asprintf "%a" pp_iv r3.Pll.r) (Format.asprintf "%a" pp_iv r4.Pll.r);
  srow "R2 (Ohm)" (Format.asprintf "%a" opt r3.Pll.r2) (Format.asprintf "%a" opt r4.Pll.r2);
  srow "f_ref (Hz)" (Printf.sprintf "%g" r3.Pll.f_ref) (Printf.sprintf "%g" r4.Pll.f_ref);
  srow "f_q (Hz)" (Printf.sprintf "%g" r3.Pll.f_q) (Printf.sprintf "%g" r4.Pll.f_q);
  srow "Ip (A)" (Format.asprintf "%a" pp_iv r3.Pll.i_p) (Format.asprintf "%a" pp_iv r4.Pll.i_p);
  srow "Kv (rad/s/V)" (Format.asprintf "%a" pp_iv r3.Pll.k_v)
    (Format.asprintf "%a" pp_iv r4.Pll.k_v);
  Format.printf "@.  Scaled coefficients (DESIGN.md section 6):@.";
  Format.printf "  %a@.@.  %a@." Pll.pp_scaled (Lazy.force third) Pll.pp_scaled
    (Lazy.force fourth)

(* ------------------------------------------------------------------ *)
(* Table 2 — computation time of the inevitability verification.       *)

let table2 () =
  sect "Table 2: computation time of the inevitability verification";
  let p3 = Lazy.force third_pipeline in
  let p4 = Lazy.force fourth_pipeline in
  let t3 = p3.report.Pll_core.Inevitability.times in
  let t4 = p4.report.Pll_core.Inevitability.times in
  let deg3 = if !fast_mode then 4 else 6 in
  let row name a b pa pb = Format.printf "  %-26s %10.2f %16s %10.2f %16s@." name a pa b pb in
  Format.printf "  %-26s %10s %16s %10s %16s@." "Verification step" "3rd (s)" "paper 3rd (s)"
    "4th (s)" "paper 4th (s)";
  row
    (Printf.sprintf "Attractive invariant (d%d)" deg3)
    t3.Pll_core.Inevitability.attractive_invariant_s
    t4.Pll_core.Inevitability.attractive_invariant_s "1381.7 (d6)" "10021 (d4)";
  row "Max. level curves" t3.Pll_core.Inevitability.max_level_curves_s
    t4.Pll_core.Inevitability.max_level_curves_s "15.5" "12";
  row "Advection" t3.Pll_core.Inevitability.advection_s t4.Pll_core.Inevitability.advection_s
    "106.8 (14 it)" "140.7 (7 it)";
  row "Checking set inclusion" t3.Pll_core.Inevitability.set_inclusion_s
    t4.Pll_core.Inevitability.set_inclusion_s "13" "10.2";
  row "Escape certificate" t3.Pll_core.Inevitability.escape_certificate_s
    t4.Pll_core.Inevitability.escape_certificate_s "-" "18 (2 certs)";
  Format.printf "@.  advection iterations: 3rd = %d (paper: 14), 4th = %d (paper: 7)@."
    p3.report.Pll_core.Inevitability.advection.Advect.iterations
    p4.report.Pll_core.Inevitability.advection.Advect.iterations;
  Format.printf "  escape certificates:  3rd = %d (paper: 0), 4th = %d (paper: 2)@."
    (List.length p3.report.Pll_core.Inevitability.advection.Advect.escapes)
    (List.length p4.report.Pll_core.Inevitability.advection.Advect.escapes);
  Format.printf "  verified: 3rd = %b, 4th = %b@." p3.report.Pll_core.Inevitability.verified
    p4.report.Pll_core.Inevitability.verified

(* ------------------------------------------------------------------ *)
(* Figures — level-set boundary series.                                *)

let print_series name pts =
  Format.printf "  series %s (%d points):@." name (List.length pts);
  List.iter (fun (a, b) -> Format.printf "    % 10.4f  % 10.4f@." a b) pts

let fig_invariant ~title ~planes pipeline =
  sect title;
  let s = pipeline.scaled in
  let ai = pipeline.report.Pll_core.Inevitability.invariant in
  Format.printf "  common level beta = %.4f@." ai.Certificates.beta;
  List.iter
    (fun ((i, j), name) ->
      print_series name (Certificates.invariant_boundary s ai ~plane:(i, j) ~n:32))
    planes

let fig2 () =
  fig_invariant
    ~title:"Fig 2: 3rd-order attractive invariant on (v1,v2) and (v2,dphi)"
    ~planes:[ ((0, 1), "(v1, v2)"); ((1, 2), "(v2, dphi)") ]
    (Lazy.force third_pipeline)

let fig3 () =
  fig_invariant
    ~title:"Fig 3: 4th-order attractive invariant on (v2,v3) and (v2,dphi)"
    ~planes:[ ((1, 2), "(v2, v3)"); ((1, 3), "(v2, dphi)") ]
    (Lazy.force fourth_pipeline)

let fig_advect ~title ~planes pipeline =
  sect title;
  let s = pipeline.scaled in
  let report = pipeline.report in
  let nvars = s.Pll.nvars in
  let fronts =
    report.Pll_core.Inevitability.init_front
    :: List.map
         (fun st -> st.Advect.front)
         report.Pll_core.Inevitability.advection.Advect.fronts
  in
  Format.printf "  %d fronts (solid outer/initial set first, advected fronts dotted)@."
    (List.length fronts);
  List.iter
    (fun ((i, j), name) ->
      Format.printf "  --- plane %s ---@." name;
      List.iteri
        (fun k front ->
          print_series
            (Printf.sprintf "front %d" k)
            (Certificates.level_curve front ~beta:0.0 ~plane:(i, j) ~nvars ~n:24))
        fronts)
    planes;
  let escapes = report.Pll_core.Inevitability.advection.Advect.escapes in
  if escapes <> [] then begin
    Format.printf "  advection inconclusive; escape certificates on the residual set:@.";
    List.iter
      (fun (m, e) ->
        Format.printf "    mode %s: E = %s@." (Pll.mode_name m)
          (Poly.to_string (Poly.chop ~tol:1e-4 e)))
      escapes
  end

let fig4 () =
  fig_advect ~title:"Fig 4: 3rd-order advection on (v1,v2) and (v2,dphi)"
    ~planes:[ ((0, 1), "(v1, v2)"); ((1, 2), "(v2, dphi)") ]
    (Lazy.force third_pipeline)

let fig5 () =
  fig_advect ~title:"Fig 5: 4th-order advection on (v2,v3) and (v2,dphi)"
    ~planes:[ ((1, 2), "(v2, v3)"); ((1, 3), "(v2, dphi)") ]
    (Lazy.force fourth_pipeline)

(* ------------------------------------------------------------------ *)
(* Ablation 1 — certificates vs. reach-set baselines (paper section 1). *)

let ablation_reachset () =
  sect "Ablation: certificate pipeline vs. reach-set baselines";
  let s = Lazy.force third in
  let init : Interval.Box.t =
    [| Interval.make (-1.0) 1.0; Interval.make (-1.0) 1.0; Interval.make (-0.5) 0.5 |]
  in
  let iv = Reachset.interval_analysis s ~init ~mode0:Pll.off in
  Format.printf
    "  interval reachability:   converged=%b  flowpipe steps=%d  transitions=%d  set ops=%d \
     (%.2fs)@."
    iv.Reachset.converged iv.Reachset.iterations iv.Reachset.transitions iv.Reachset.set_ops
    iv.Reachset.time_s;
  let sm = Reachset.sampling_analysis ~grid:3 s ~init in
  Format.printf
    "  trajectory sampling:     %d runs, all locked=%b, transitions total=%d max=%d mean=%.1f \
     (%.2fs)@."
    sm.Reachset.n_trajectories sm.Reachset.all_locked sm.Reachset.total_transitions
    sm.Reachset.max_transitions sm.Reachset.mean_transitions sm.Reachset.time_s;
  Format.printf
    "  certificate pipeline:    0 discrete transitions enumerated (deductive; see Table 2)@."

(* Ablation 2 — certificate degree sweep on the 3rd-order PLL. *)

let ablation_degree () =
  sect "Ablation: multiple-Lyapunov certificate degree sweep (3rd order)";
  let s = Lazy.force third in
  List.iter
    (fun degree ->
      let cfg = { (Certificates.default_config Pll.Third) with Certificates.degree } in
      let t0 = Sys.time () in
      match Certificates.find_multi_lyapunov ~config:cfg s with
      | Ok c ->
          let beta, _ = Certificates.maximize_level s c in
          Format.printf "  degree %d: feasible (%.1fs), certified level beta = %.2f@." degree
            (Sys.time () -. t0) beta
      | Error _ -> Format.printf "  degree %d: infeasible (%.1fs)@." degree (Sys.time () -. t0))
    [ 2; 4; 6 ]

(* Ablation 3 — nominal vs. vertex-robust decrease conditions. *)

let ablation_robust () =
  sect "Ablation: nominal vs. vertex-robust certificate search (3rd order, degree 4)";
  let s = Lazy.force third in
  List.iter
    (fun robust ->
      let cfg =
        {
          (Certificates.default_config Pll.Third) with
          Certificates.degree = 4;
          robust_vertices = robust;
          (* The 8-vertex program is large; bound the interior-point
             effort so the ablation completes in bounded time. *)
          sdp_params = { Sdp.default_params with Sdp.max_iter = 80 };
        }
      in
      let t0 = Sys.time () in
      match Certificates.find_multi_lyapunov ~config:cfg s with
      | Ok c ->
          Format.printf "  robust=%-5b feasible in %6.1fs  (%d equalities, %d Gram blocks)@."
            robust (Sys.time () -. t0) c.Certificates.solve_stats.Certificates.n_constraints
            c.Certificates.solve_stats.Certificates.n_gram_blocks
      | Error e -> Format.printf "  robust=%-5b FAILED: %s@." robust e)
    [ false; true ]

(* Ablation 4 — advection engines: the paper's pure-SOS front synthesis
   (Eq. 6, front as an unknown of one SOS program) vs. this repo's
   default propose-and-certify step. *)

let ablation_advect () =
  sect "Ablation: advection engines (one step, 3rd order)";
  let s = Lazy.force third in
  let pt = Pll.nominal s in
  let init = Advect.ellipsoid_front s ~radii:[| 1.5; 1.5; 1.2 |] in
  (match Advect.advect_step s pt init with
  | Ok st ->
      Format.printf
        "  propose-and-certify: gamma = %.4f in %.1fs; simulation-valid = %b@."
        st.Advect.gamma st.Advect.time_s
        (Advect.validate_step_by_simulation ~samples:100 s pt
           ~h:Advect.default_config.Advect.h ~old_front:init st.Advect.front)
  | Error e -> Format.printf "  propose-and-certify: FAILED (%s)@." e);
  (match Advect.advect_step_sos s pt init with
  | Ok st ->
      Format.printf "  pure SOS (paper Eq. 6): gamma = %.4f in %.1fs; simulation-valid = %b@."
        st.Advect.gamma st.Advect.time_s
        (Advect.validate_step_by_simulation ~samples:100 s pt
           ~h:Advect.default_config.Advect.h ~old_front:init st.Advect.front)
  | Error e -> Format.printf "  pure SOS (paper Eq. 6): FAILED (%s)@." e)

(* Extensions beyond the paper's tables: the two other properties its
   introduction motivates (time-to-lock and lock retention under
   disturbance, plus start-up voltage safety). *)

let extensions () =
  sect "Extensions: time-to-lock, disturbance rejection, start-up safety (3rd order)";
  let s = Lazy.force third in
  let cfg = { (Certificates.default_config Pll.Third) with Certificates.degree = 4 } in
  match Certificates.attractive_invariant ~config:cfg s with
  | Error e -> Format.printf "  attractive invariant failed: %s@." e
  | Ok ai ->
      let beta = ai.Certificates.beta in
      List.iter
        (fun factor ->
          let t = Certificates.time_to_lock_bound s ai ~from_level:(factor *. beta) in
          Format.printf "  time-to-lock from %.1fx beta: <= %.1f scaled units (= %.3g s)@."
            factor t (t *. s.Pll.t0))
        [ 1.5; 2.0; 4.0 ];
      let dmax = Barrier.max_rejected_disturbance ~steps:5 s ai in
      Format.printf "  largest certified pump disturbance: %.4g (scaled)@." dmax;
      (match Barrier.lock_retention s ai ~d_max:(0.5 *. dmax) with
      | Ok r ->
          Format.printf "  lock retention: |d| <= %.4g keeps {V <= %.1f} invariant@."
            r.Barrier.d_max r.Barrier.level
      | Error e -> Format.printf "  lock retention: %s@." e);
      let init_radii = [| 0.4; 0.4; 0.3 |] in
      (match Barrier.pll_voltage_safety ~v_limit:2.3 ~invariant:ai s ~init_radii with
      | Ok cert ->
          let how =
            match cert.Barrier.via with
            | Barrier.Barrier_function ->
                Printf.sprintf "barrier function (deg %d)" (Poly.degree cert.Barrier.b)
            | Barrier.Reach_cap vmax -> Printf.sprintf "reach cap V <= %.1f" vmax
          in
          Format.printf "  start-up voltage safety: certified via %s; sim-validated: %b@." how
            (Barrier.validate_barrier_by_simulation ~trials:10 ~invariant:ai s ~init_radii cert)
      | Error e -> Format.printf "  start-up safety: %s@." e)

(* ------------------------------------------------------------------ *)
(* Sweep profile — a small certification atlas (lib/atlas) over the
   pump-current x VCO-gain plane, exercising the cell pipeline the
   sweep orchestrator runs at scale. Its cell counters feed the
   atlas_cells/atlas_certified/atlas_quarantined fields of --json. *)

(* (cells recorded, certified, quarantined) accumulated across runs. *)
let atlas_counters = ref (0, 0, 0)

let sweep_fast () =
  sect "Sweep: fast certification atlas (3rd order, degree 4, 2x2 grid)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pll-bench-atlas-%d" (Unix.getpid ()))
  in
  let ctx = Supervise.create ~run_dir:dir ~jobs:2 () in
  let job =
    {
      (Atlas.default_job Pll.Third) with
      Atlas.degree = 4;
      bisect_steps = 4;
      max_subdiv = 1;
    }
  in
  match Atlas.Grid.parse "ip=0.9:1.1:2,kv=0.95:1.05:2" with
  | Error e -> failwith e
  | Ok grid -> (
      match Atlas.run ~ctx ~resume:false job grid with
      | Error e -> failwith ("atlas sweep failed: " ^ e)
      | Ok report ->
          let c0, ce0, q0 = !atlas_counters in
          atlas_counters :=
            ( c0 + List.length report.Atlas.records,
              ce0 + report.Atlas.certified,
              q0 + report.Atlas.quarantined );
          Format.printf "%a@." Atlas.pp_summary report)

(* ------------------------------------------------------------------ *)
(* Service profile — the verification daemon (lib/service) exercised
   end to end over two lifetimes of a forked verifyd on a temp run
   dir: a real solve followed by a byte-identical replay from the
   result store, then (after a graceful drain and a --resume restart
   with the dispatcher wedged) deterministic in-flight dedup and
   load shedding against the bounded admission queue. Its admission
   counters feed the service_accepted/service_shed/service_deduped/
   service_hit_rate fields of --json. *)

(* (accepted, shed, deduped, cache_served, submits) accumulated. *)
let service_counters = ref (0, 0, 0, 0, 0)

let service_fast () =
  sect "Service: daemon admission, dedup and load shedding (3rd order, degree 4)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pll-bench-service-%d" (Unix.getpid ()))
  in
  Unix.mkdir dir 0o755;
  let base =
    {
      (Service.Daemon.default_config ~run_dir:dir) with
      Service.Daemon.workers = 1;
      queue_cap = 1;
    }
  in
  let sock = Service.Daemon.socket_path base in
  let start config =
    (* The daemon chats on stdout; keep its lines out of the bench
       report. *)
    Format.pp_print_flush Format.std_formatter ();
    flush stdout;
    flush stderr;
    match Unix.fork () with
    | 0 ->
        let log =
          Unix.openfile (Filename.concat dir "daemon.log")
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
            0o644
        in
        Unix.dup2 log Unix.stdout;
        Unix.dup2 log Unix.stderr;
        Unix.close log;
        exit (Service.Daemon.run config)
    | pid ->
        (* A socket file can linger across lifetimes; ready means the
           daemon answers status. *)
        let rec ready n =
          if n > 100 then failwith "service-fast: daemon never became ready"
          else
            match Service.Client.status ~sock () with
            | Ok _ -> ()
            | Error _ ->
                Unix.sleepf 0.1;
                ready (n + 1)
        in
        ready 0;
        pid
  in
  let stop pid =
    (match Service.Client.stop ~sock () with
    | Ok _ -> ()
    | Error e -> failwith ("service-fast: stop failed: " ^ e));
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED 0 -> ()
    | _, st ->
        let code = match st with Unix.WEXITED c -> c | _ -> -1 in
        failwith (Printf.sprintf "service-fast: daemon did not drain cleanly (%d)" code)
  in
  let ok what = function
    | Ok j -> j
    | Error e -> failwith (Printf.sprintf "service-fast: %s: %s" what e)
  in
  let spec point =
    {
      (Service.Job.default_spec Pll.Third) with
      Service.Job.degree = 4;
      bisect_steps = 4;
      point;
    }
  in
  let record_status () =
    let s = ok "status" (Service.Client.status ~sock ()) in
    let n field =
      match Service.Json.mem_num field s with
      | Some v -> int_of_float v
      | None -> failwith ("service-fast: status lacks " ^ field)
    in
    let a0, s0, d0, c0, t0 = !service_counters in
    service_counters :=
      (a0 + n "accepted", s0 + n "shed", d0 + n "deduped", c0 + n "cache_served",
       t0 + n "submits")
  in
  let typ j = Option.value ~default:"?" (Service.Json.mem_str "type" j) in
  (* Lifetime 1: a real solve, then a replay served from the result
     store. *)
  let pid = start base in
  let r1 = ok "job A" (Service.Client.submit ~sock (spec [])) in
  let r2 = ok "job A (replay)" (Service.Client.submit ~sock (spec [])) in
  if Service.Json.mem_bool "cached" r2 <> Some true then
    failwith "service-fast: replay was not served from the result store";
  record_status ();
  stop pid;
  (* Lifetime 2: resume over the same ledger with the dispatcher
     wedged, so dedup and shedding are deterministic. *)
  let pid =
    start
      {
        base with
        Service.Daemon.resume = true;
        faults = [ Service.Daemon.Fault.Wedge_queue ];
      }
  in
  let b = spec [ (Pll.Ip, 1.01) ] in
  let sub s = Service.Client.submit ~sock ~wait:false s in
  let j1 = ok "job B" (sub b) in
  let j2 = ok "job B (dup)" (sub b) in
  let j3 = ok "job C (over cap)" (sub (spec [ (Pll.Ip, 1.02) ])) in
  if typ j1 <> "accepted" then failwith "service-fast: job B was not accepted";
  if Service.Json.mem_bool "deduped" j2 <> Some true then
    failwith "service-fast: duplicate submit was not deduped";
  if typ j3 <> "overloaded" then
    failwith "service-fast: over-cap submit was not shed";
  record_status ();
  stop pid;
  Format.printf "  job A verdict: %s; replay cached: %b@."
    (Option.value ~default:"?"
       (Option.bind (Service.Json.member "result" r1) (Service.Json.mem_str "verdict")))
    (Service.Json.mem_bool "cached" r2 = Some true);
  let a, sh, d, c, t = !service_counters in
  Format.printf
    "  admission: accepted=%d shed=%d deduped=%d cache_served=%d of %d submits@." a sh d
    c t;
  ignore (Sys.command ("rm -rf " ^ Filename.quote dir))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the numerical kernels.                 *)

let kernels () =
  sect "Bechamel micro-benchmarks of the solver kernels";
  let open Bechamel in
  let s = Lazy.force third in
  let pt = Pll.nominal s in
  let flow = Pll.flow s pt Pll.off in
  let v6 =
    Poly.sum 3
      (List.init 3 (fun i -> Poly.pow (Poly.var 3 i) 2)
      @ List.init 3 (fun i -> Poly.pow (Poly.var 3 i) 6))
  in
  let spd =
    let rng = Random.State.make [| 5 |] in
    let b = Linalg.Mat.init 40 40 (fun _ _ -> Random.State.float rng 2.0 -. 1.0) in
    Linalg.Mat.add
      (Linalg.Mat.mul b (Linalg.Mat.transpose b))
      (Linalg.Mat.scale 4.0 (Linalg.Mat.identity 40))
  in
  let small_sos () =
    let prob = Sos.create ~nvars:2 in
    let p =
      Poly.of_terms 2
        [
          (Poly.Monomial.of_exponents [ 4; 0 ], 1.0);
          (Poly.Monomial.of_exponents [ 2; 2 ], 1.0);
          (Poly.Monomial.of_exponents [ 0; 4 ], 2.0);
          (Poly.Monomial.of_exponents [ 0; 0 ], 0.5);
        ]
    in
    Sos.add_sos prob (Sos.Ppoly.of_poly p);
    ignore (Sos.solve prob)
  in
  let tests =
    Test.make_grouped ~name:"kernels"
      [
        Test.make ~name:"mat-cholesky-40"
          (Staged.stage (fun () -> ignore (Linalg.Mat.cholesky spd)));
        Test.make ~name:"mat-sym-eig-40" (Staged.stage (fun () -> ignore (Linalg.Mat.sym_eig spd)));
        Test.make ~name:"mat-expm-4"
          (Staged.stage (fun () ->
               ignore (Linalg.Mat.expm (Linalg.Mat.init 4 4 (fun i j -> 0.3 *. float_of_int (i - j))))));
        Test.make ~name:"poly-lie-derivative-deg6"
          (Staged.stage (fun () -> ignore (Poly.lie_derivative v6 flow)));
        Test.make ~name:"hybrid-rk4-step"
          (Staged.stage (fun () -> ignore (Hybrid.rk4_step flow 1e-3 [| 1.0; -1.0; 0.5 |])));
        Test.make ~name:"sos-feasibility-small" (Staged.stage small_sos);
      ]
  in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock raw
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, est) -> Format.printf "  %-32s %14.1f ns/run@." name est)
    (List.sort compare !rows)

(* ------------------------------------------------------------------ *)

(* Per-artifact accounting for --json: wall clock, CPU seconds of this
   process, interior-point solve/iteration counts, warm-start session
   counters, and the supervision cache counters when a context is
   active. [cache_hit_rate] is hits over supervised requests — a real
   rate now that the bench cache dir persists across runs. *)
type row = {
  name : string;
  wall_s : float;
  cpu_s : float;
  solves : int;
  iterations : int;
  warm_accepted : int;
  warm_rejected : int;
  cache_hits : int;
  cache_stores : int;
  cache_hit_rate : float;
  atlas_cells : int;
  atlas_certified : int;
  atlas_quarantined : int;
  service_accepted : int;
  service_shed : int;
  service_deduped : int;
  service_hit_rate : float;
}

let row_to_json r =
  Printf.sprintf
    "{\"name\":\"%s\",\"wall_s\":%.3f,\"cpu_s\":%.3f,\"solves\":%d,\"iterations\":%d,\"warm_accepted\":%d,\"warm_rejected\":%d,\"cache_hits\":%d,\"cache_stores\":%d,\"cache_hit_rate\":%.3f,\"atlas_cells\":%d,\"atlas_certified\":%d,\"atlas_quarantined\":%d,\"service_accepted\":%d,\"service_shed\":%d,\"service_deduped\":%d,\"service_hit_rate\":%.3f}"
    r.name r.wall_s r.cpu_s r.solves r.iterations r.warm_accepted r.warm_rejected
    r.cache_hits r.cache_stores r.cache_hit_rate r.atlas_cells r.atlas_certified
    r.atlas_quarantined r.service_accepted r.service_shed r.service_deduped
    r.service_hit_rate

let instrument rows (name, f) =
  ( name,
    fun () ->
      let hits0, stores0, sup0 =
        match !bench_ctx with
        | Some ctx ->
            let s = Supervise.stats ctx in
            (s.Supervise.cache_hits, s.Supervise.cache_stores, s.Supervise.supervised)
        | None -> (0, 0, 0)
      in
      let solves0 = Sdp.solve_count () in
      let iters0 = Sdp.iteration_count () in
      let wt0 = Sdp.Session.totals () in
      let ac0, ace0, aq0 = !atlas_counters in
      let sa0, ss0, sd0, sc0, st0 = !service_counters in
      let w0 = Unix.gettimeofday () and c0 = Sys.time () in
      f ();
      let hits1, stores1, sup1 =
        match !bench_ctx with
        | Some ctx ->
            let s = Supervise.stats ctx in
            (s.Supervise.cache_hits, s.Supervise.cache_stores, s.Supervise.supervised)
        | None -> (0, 0, 0)
      in
      let wt1 = Sdp.Session.totals () in
      let ac1, ace1, aq1 = !atlas_counters in
      let sa1, ss1, sd1, sc1, st1 = !service_counters in
      rows :=
        {
          name;
          wall_s = Unix.gettimeofday () -. w0;
          cpu_s = Sys.time () -. c0;
          solves = Sdp.solve_count () - solves0;
          iterations = Sdp.iteration_count () - iters0;
          warm_accepted = wt1.Sdp.Session.warm_accepted - wt0.Sdp.Session.warm_accepted;
          warm_rejected = wt1.Sdp.Session.warm_rejected - wt0.Sdp.Session.warm_rejected;
          cache_hits = hits1 - hits0;
          cache_stores = stores1 - stores0;
          cache_hit_rate =
            (if sup1 = sup0 then 0.0
             else float_of_int (hits1 - hits0) /. float_of_int (sup1 - sup0));
          atlas_cells = ac1 - ac0;
          atlas_certified = ace1 - ace0;
          atlas_quarantined = aq1 - aq0;
          service_accepted = sa1 - sa0;
          service_shed = ss1 - ss0;
          service_deduped = sd1 - sd0;
          service_hit_rate =
            (if st1 = st0 then 0.0
             else float_of_int (sc1 - sc0) /. float_of_int (st1 - st0));
        }
        :: !rows )

let write_json path rows =
  let oc = open_out path in
  Printf.fprintf oc
    "{\"fast\":%b,\"total_solves\":%d,\"artifacts\":[%s]}\n" !fast_mode
    (Sdp.solve_count ())
    (String.concat "," (List.rev_map row_to_json rows));
  close_out oc;
  Format.printf "@.[wrote %d artifact timing row(s) to %s]@." (List.length rows) path

(* ------------------------------------------------------------------ *)
(* bench ab <old.json> <new.json> — per-artifact deltas with a
   noise-aware regression gate.                                       *)

let ab_load path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  match Service.Json.parse s with
  | Error e -> failwith (Printf.sprintf "%s: %s" path e)
  | Ok j -> (
      match Service.Json.member "artifacts" j with
      | Some a -> (
          match Service.Json.arr a with
          | Some rows ->
              List.filter_map
                (fun r ->
                  match Service.Json.mem_str "name" r with
                  | Some name ->
                      let num k = Option.value ~default:0.0 (Service.Json.mem_num k r) in
                      Some (name, (num "wall_s", num "cpu_s", num "iterations", num "cache_hit_rate"))
                  | None -> None)
                rows
          | None -> failwith (path ^ ": \"artifacts\" is not an array"))
      | None -> failwith (path ^ ": no \"artifacts\" member"))

(* Regression = new wall exceeds old by 20% plus a 0.5s absolute floor,
   so sub-second artifacts can't trip the gate on scheduler noise. *)
let ab_regressed ~old_wall ~new_wall = new_wall > (old_wall *. 1.2) +. 0.5

let ab old_path new_path =
  let olds = ab_load old_path and news = ab_load new_path in
  let regressions = ref [] in
  Format.printf "  %-20s %22s %22s %18s %14s@." "artifact" "wall (s)" "cpu (s)"
    "iterations" "cache hit rate";
  List.iter
    (fun (name, (nw, nc, ni, nh)) ->
      match List.assoc_opt name olds with
      | None -> Format.printf "  %-20s (new artifact: %.3fs wall)@." name nw
      | Some (ow, oc, oi, oh) ->
          let pct o n = if o = 0.0 then 0.0 else (n -. o) /. o *. 100.0 in
          Format.printf "  %-20s %9.3f->%8.3f %s %9.3f->%8.3f %7.0f->%7.0f %6.2f->%6.2f@."
            name ow nw
            (Printf.sprintf "(%+.0f%%)" (pct ow nw))
            oc nc oi ni oh nh;
          if ab_regressed ~old_wall:ow ~new_wall:nw then regressions := name :: !regressions)
    news;
  List.iter
    (fun (name, (ow, _, _, _)) ->
      if not (List.mem_assoc name news) then
        Format.printf "  %-20s (dropped; was %.3fs wall)@." name ow)
    olds;
  match !regressions with
  | [] ->
      Format.printf "@.  no wall-clock regressions (threshold: +20%% and +0.5s)@.";
      0
  | rs ->
      Format.printf "@.  REGRESSION in: %s@." (String.concat ", " (List.rev rs));
      1

let () =
  (match Array.to_list Sys.argv |> List.tl with
  | [ "ab"; old_path; new_path ] -> exit (ab old_path new_path)
  | "ab" :: _ ->
      Format.printf "usage: bench ab <old.json> <new.json>@.";
      exit 124
  | _ -> ());
  let args = Array.to_list Sys.argv |> List.tl in
  fast_mode := List.mem "--fast" args;
  let args = List.filter (fun a -> a <> "--fast") args in
  let json_path, args =
    let rec go acc = function
      | "--json" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let cache_dir, args =
    let rec go acc = function
      | "--cache-dir" :: path :: rest -> (Some path, List.rev_append acc rest)
      | a :: rest -> go (a :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  (* Each profile keeps a persistent cache dir (overridable with
     --cache-dir), so repeat bench runs measure real cache hit rates
     instead of the pristine-run-dir zeros BENCH_*.json used to show. *)
  (if json_path <> None then
     let dir =
       match cache_dir with
       | Some d -> d
       | None ->
           Filename.concat "_bench_cache" (if !fast_mode then "fast" else "full")
     in
     bench_ctx := Some (Supervise.create ~run_dir:dir ~isolate:false ()));
  let artifacts =
    [
      ("table1", table1);
      ("table2", table2);
      ("fig2", fig2);
      ("fig3", fig3);
      ("fig4", fig4);
      ("fig5", fig5);
      ("ablation-reachset", ablation_reachset);
      ("ablation-degree", ablation_degree);
      ("ablation-robust", ablation_robust);
      ("ablation-advect", ablation_advect);
      ("extensions", extensions);
      ("sweep-fast", sweep_fast);
      ("service-fast", service_fast);
      ("kernels", kernels);
    ]
  in
  let rows = ref [] in
  let artifacts = List.map (instrument rows) artifacts in
  (match args with
  | [] -> List.iter (fun (_, f) -> f ()) artifacts
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name artifacts with
          | Some f -> f ()
          | None ->
              Format.printf "unknown artifact %s; available: %s@." name
                (String.concat " " (List.map fst artifacts));
              exit 1)
        names);
  match json_path with None -> () | Some path -> write_json path !rows
