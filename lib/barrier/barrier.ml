module Ppoly = Sos.Ppoly

let src = Logs.Src.create "barrier" ~doc:"barrier / disturbance certificates"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  degree : int;
  margin : float;
  mult_deg : int;
  sdp_params : Sdp.params;
  resilience : Resilient.policy;
}

let default_config =
  {
    degree = 4;
    margin = 1e-2;
    mult_deg = 2;
    sdp_params = Sdp.default_params;
    resilience = Resilient.default ();
  }

type route = Barrier_function | Reach_cap of float

type t = { b : Poly.t; via : route; stats : Certificates.stats }

let stats_of prob (sol : Sos.solution) time_s =
  {
    Certificates.time_s;
    sdp_iterations = sol.Sos.sdp.Sdp.iterations;
    n_constraints = Sos.n_equalities prob;
    n_gram_blocks = Sos.n_gram_blocks prob;
    min_gram_eig = sol.Sos.min_gram_eig;
    max_residual = sol.Sos.max_eq_residual;
  }

let find_barrier ?(config = default_config) ~nvars ~flows ~domains ~init ~unsafe () =
  if List.length flows <> List.length domains then
    invalid_arg "Barrier.find_barrier: flows/domains length mismatch";
  let t0 = Sys.time () in
  let prob = Sos.create ~nvars in
  let b = Sos.fresh_poly prob ~deg:config.degree in
  (* B <= 0 on the initial set *)
  Sos.add_nonneg_on ~mult_deg:config.mult_deg prob ~domain:init (Ppoly.neg b);
  (* B >= margin on the unsafe set *)
  Sos.add_nonneg_on ~mult_deg:config.mult_deg prob ~domain:unsafe
    (Ppoly.sub b (Ppoly.of_poly (Poly.const nvars config.margin)));
  (* dB/dt <= 0 along every mode flow on its domain *)
  List.iter2
    (fun flow domain ->
      Sos.add_nonneg_on ~mult_deg:config.mult_deg prob ~domain
        (Ppoly.neg (Ppoly.lie_derivative b flow)))
    flows domains;
  (* No barrier means no safety argument — climb the retry ladder. *)
  let sol, _ =
    Resilient.solve_sos config.resilience ~label:"barrier" ~params:config.sdp_params prob
  in
  let time_s = Sys.time () -. t0 in
  if sol.Sos.certified then
    Ok
      {
        b = Poly.chop ~tol:1e-9 (Sos.value sol b);
        via = Barrier_function;
        stats = stats_of prob sol time_s;
      }
  else
    Error
      (Printf.sprintf "no degree-%d barrier certificate (feasible=%b)" config.degree
         sol.Sos.feasible)

let pll_voltage_safety ?(config = default_config) ?v_limit ?invariant (s : Pll.scaled)
    ~init_radii =
  let n = s.Pll.nvars in
  let v_limit = Option.value v_limit ~default:(0.96 *. s.Pll.w_max) in
  let init_front = Advect.ellipsoid_front s ~radii:init_radii in
  let init = [ Poly.neg init_front ] in
  let pt = Pll.nominal s in
  let flows = List.init Pll.n_modes (fun m -> Pll.flow s pt m) in
  let domains = List.init Pll.n_modes (fun m -> Pll.mode_domain s m) in
  let unsafe_of i =
    let wi = Poly.var n i in
    [
      Poly.sub (Poly.mul wi wi) (Poly.const n (v_limit *. v_limit));
      Poly.sub (Poly.const n (s.Pll.w_max *. s.Pll.w_max)) (Poly.mul wi wi);
    ]
  in
  (* Preferred route with an attractive invariant: the reach tube of the
     initial set stays in {V_q <= vmax} (Theorem-1 decrease), so safety
     follows if every V_q clears vmax on the unsafe band:
     V_q >= vmax + margin there. One small SOS check per mode and face. *)
  let via_cap ai =
    match Certificates.upper_bound_on_set s ai.Certificates.cert ~set:init_front with
    | Error e -> Error e
    | Ok vmax ->
        let t0 = Sys.time () in
        let ok = ref true in
        for i = 0 to n - 2 do
          for m = 0 to Pll.n_modes - 1 do
            if !ok then begin
              let v = ai.Certificates.cert.Certificates.vs.(m) in
              let prob = Sos.create ~nvars:n in
              Sos.add_nonneg_on ~mult_deg:config.mult_deg prob
                ~domain:(unsafe_of i @ Pll.mode_domain s m)
                (Sos.Ppoly.of_poly
                   (Poly.sub v (Poly.const n (vmax +. config.margin))));
              (* Failure falls back to a genuine barrier search — probe. *)
              let sol, _ =
                Resilient.solve_sos
                  (Resilient.probe config.resilience)
                  ~label:(Printf.sprintf "safety-cap:%s" (Pll.mode_name m))
                  ~params:config.sdp_params prob
              in
              if not sol.Sos.certified then ok := false
            end
          done
        done;
        if !ok then
          Ok
            {
              b =
                Poly.sub ai.Certificates.cert.Certificates.vs.(Pll.off)
                  (Poly.const n vmax);
              via = Reach_cap vmax;
              stats =
                {
                  Certificates.time_s = Sys.time () -. t0;
                  sdp_iterations = 0;
                  n_constraints = 0;
                  n_gram_blocks = 0;
                  min_gram_eig = 0.0;
                  max_residual = 0.0;
                };
            }
        else Error "reach cap does not clear the unsafe band"
  in
  (* Fallback: a genuine barrier function per voltage face. *)
  let via_barrier () =
    let rec go i last =
      if i >= n - 1 then last
      else
        match find_barrier ~config ~nvars:n ~flows ~domains ~init ~unsafe:(unsafe_of i) () with
        | Error _ as e -> e
        | Ok _ as ok -> go (i + 1) ok
    in
    go 0 (Error "pll_voltage_safety: no voltage coordinates")
  in
  match invariant with
  | Some ai -> ( match via_cap ai with Ok _ as ok -> ok | Error _ -> via_barrier ())
  | None -> via_barrier ()

let validate_barrier_by_simulation ?(trials = 30) ?(t_max = 60.0) ?(seed = 5) ?invariant
    (s : Pll.scaled) ~init_radii cert =
  let rng = Random.State.make [| seed |] in
  let n = s.Pll.nvars in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let theta = Pll.theta_index s in
  (* What must hold along every arc from the initial set. *)
  let holds (st : Hybrid.step) =
    match (cert.via, invariant) with
    | Barrier_function, _ -> Poly.eval cert.b st.Hybrid.state <= 1e-6
    | Reach_cap vmax, Some ai ->
        Poly.eval ai.Certificates.cert.Certificates.vs.(st.Hybrid.mode_at) st.Hybrid.state
        <= vmax +. 1e-6
    | Reach_cap _, None -> true (* nothing checkable without the certificates *)
  in
  let sound = ref true and found = ref 0 and attempts = ref 0 in
  while !found < trials && !attempts < trials * 300 do
    incr attempts;
    let x0 = Array.init n (fun i -> (Random.State.float rng 2.0 -. 1.0) *. init_radii.(i)) in
    let q =
      Array.fold_left ( +. ) (-1.0) (Array.mapi (fun i v -> (v /. init_radii.(i)) ** 2.0) x0)
    in
    if q <= 0.0 then begin
      incr found;
      let th = x0.(theta) in
      let m =
        if Float.abs th <= s.Pll.theta_on then Pll.off
        else if th > 0.0 then Pll.up
        else Pll.down
      in
      let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:m ~x0 ~t_max in
      List.iter (fun st -> if not (holds st) then sound := false) r.Hybrid.arc
    end
  done;
  !sound && !found > 0

(* ------------------------------------------------------------------ *)
(* Disturbance rejection                                               *)

type rejection = { level : float; d_max : float; stats : Certificates.stats }

(* Disturbed mode flow: the pump current picks up an additive d. *)
let disturbed_flow (s : Pll.scaled) pt m d =
  let f = Pll.flow s pt m in
  let pump_row = 1 in
  Array.mapi
    (fun i fi -> if i = pump_row then Poly.add fi (Poly.const s.Pll.nvars d) else fi)
    f

let check_retention mult_deg (s : Pll.scaled) ai d_max level =
  let pt = Pll.nominal s in
  let n = s.Pll.nvars in
  (* Retention failures steer the level scan — probe under the
     certificate's policy. *)
  let pol =
    Resilient.probe ai.Certificates.cert.Certificates.cfg.Certificates.resilience
  in
  let ok = ref true in
  for m = 0 to Pll.n_modes - 1 do
    if !ok then begin
      let v = ai.Certificates.cert.Certificates.vs.(m) in
      let boundary = Poly.sub v (Poly.const n level) in
      List.iter
        (fun d ->
          if !ok then begin
            let f = disturbed_flow s pt m d in
            let prob = Sos.create ~nvars:n in
            Sos.add_nonneg_on ~mult_deg prob ~equalities:[ boundary ]
              ~domain:(Pll.mode_domain s m)
              (Ppoly.neg (Ppoly.of_poly (Poly.lie_derivative v f)));
            let sol, _ =
              Resilient.solve_sos pol
                ~label:(Printf.sprintf "retention:%s" (Pll.mode_name m))
                prob
            in
            if not sol.Sos.certified then ok := false
          end)
        [ d_max; -.d_max ]
    end
  done;
  !ok

(* Certifiability is not monotone in the level: at small levels the
   disturbance dominates the shrinking decrease margin, at the maximal
   level the boundary grazes the domain faces. Scan a descending grid and
   return the largest certified level. *)
let level_grid = [ 1.0; 0.85; 0.7; 0.55; 0.4; 0.25; 0.15 ]

let lock_retention ?(mult_deg = 2) ?(bisect_steps = 0) (s : Pll.scaled) ai ~d_max =
  let t0 = Sys.time () in
  let beta = ai.Certificates.beta in
  let stats time_s =
    {
      Certificates.time_s;
      sdp_iterations = 0;
      n_constraints = 0;
      n_gram_blocks = 0;
      min_gram_eig = 0.0;
      max_residual = 0.0;
    }
  in
  let check level = check_retention mult_deg s ai d_max level in
  (* [failed_above] is the smallest grid fraction above [f] that failed;
     once a grid point certifies, bisect into that gap to recover level
     resolution the coarse grid loses. Certifiability is not monotone in
     the level, so every probe is itself verified — the result is always
     a certified level; bisection can only enlarge it. *)
  let rec scan failed_above = function
    | [] -> Error "no positive invariant level under this disturbance bound"
    | f :: rest ->
        if check (f *. beta) then begin
          let lo = ref f in
          (match failed_above with
          | Some p ->
              let hi = ref p in
              for _ = 1 to bisect_steps do
                let mid = 0.5 *. (!lo +. !hi) in
                if check (mid *. beta) then lo := mid else hi := mid
              done
          | None -> ());
          Ok { level = !lo *. beta; d_max; stats = stats (Sys.time () -. t0) }
        end
        else scan (Some f) rest
  in
  scan None level_grid

let max_rejected_disturbance ?(mult_deg = 2) ?(steps = 8) (s : Pll.scaled) ai =
  let beta = ai.Certificates.beta in
  let ok d =
    List.exists (fun f -> check_retention mult_deg s ai d (f *. beta)) [ 1.0; 0.7; 0.4 ]
  in
  if not (ok 1e-6) then 0.0
  else begin
    let lo = ref 1e-6 and hi = ref 1e-6 in
    while ok !hi && !hi < 1e3 do
      lo := !hi;
      hi := !hi *. 2.0
    done;
    for _ = 1 to steps do
      let mid = 0.5 *. (!lo +. !hi) in
      if ok mid then lo := mid else hi := mid
    done;
    !lo
  end
