(** Barrier certificates and disturbance-rejection certificates.

    Two properties from the paper's introduction that sit next to
    inevitability:

    - {b Safety} (start-up problems): "for certain initial states of
      voltages, the circuits do not converge to the desired behaviour" —
      beyond convergence, a start-up transient must also not damage the
      circuit. A {e barrier certificate} in the sense of
      Prajna–Jadbabaie (the paper's reference [11]) proves that no
      trajectory from an initial set [X0] ever reaches an unsafe set
      [Xu]: find [B] with [B <= 0] on [X0], [B > 0] on [Xu], [dB/dt <= 0]
      along every mode flow (and non-increase across the identity
      jumps, automatic here).

    - {b Lock retention under disturbance}: "while in phase-locking
      state and disturbed by an external input, it is important to know
      whether the PLL circuit retains its locking state". We model an
      additive bounded disturbance [d] on the charge-pump current
      ([|d| <= d_max], e.g. supply noise) and certify a sublevel set of
      the multiple-Lyapunov certificate that remains invariant for
      every admissible disturbance — the disturbed flow is affine in
      [d], so the vertex values [±d_max] suffice. *)

type config = {
  degree : int;  (** barrier polynomial degree (default 4) *)
  margin : float;  (** strict separation on the unsafe set (default 1e-2) *)
  mult_deg : int;  (** S-procedure multiplier degree (default 2) *)
  sdp_params : Sdp.params;
  resilience : Resilient.policy;
      (** solve orchestration: the barrier search climbs the retry
          ladder (its failure abandons the safety argument), while the
          reach-cap face checks run as probes (their failure falls back
          to the barrier search). Process isolation, the solve cache
          and crash-safe journaling are inherited through this policy —
          attach a {!Supervise.ctx} with [Resilient.make ~supervise]
          (or {!Resilient.with_supervisor}) and every barrier solve
          runs in a supervised worker; no barrier-specific wiring is
          needed. *)
}

val default_config : config

(** How a safety certificate was established. *)
type route =
  | Barrier_function  (** a genuine Prajna–Jadbabaie barrier polynomial [b] *)
  | Reach_cap of float
      (** the unsafe set lies strictly above the certified reach-tube
          level cap [vmax]: [V_q >= vmax + margin] on the unsafe region,
          so it is unreachable; [b] is [V_off − vmax] for reporting *)

type t = {
  b : Poly.t;  (** the barrier polynomial (see {!route}) *)
  via : route;
  stats : Certificates.stats;
}

val find_barrier :
  ?config:config ->
  nvars:int ->
  flows:Poly.t array list ->
  domains:Poly.t list list ->
  init:Poly.t list ->
  unsafe:Poly.t list ->
  unit ->
  (t, string) result
(** Generic hybrid barrier search for modes given as parallel [flows] /
    [domains] lists (identity resets assumed — Remark 1 systems).
    [init] and [unsafe] are semialgebraic sets [{g >= 0}]. On success,
    no trajectory starting in [init] (in any mode whose domain meets it)
    ever reaches [unsafe]. *)

val pll_voltage_safety :
  ?config:config ->
  ?v_limit:float ->
  ?invariant:Certificates.attractive_invariant ->
  Pll.scaled ->
  init_radii:float array ->
  (t, string) result
(** Safety of the start-up transient: from the ellipsoidal start-up set,
    the loop-filter voltages never exceed [v_limit] (default
    [0.96 * w_max], in scaled units), the unsafe set being
    [{ some |w_i| >= v_limit }]. With [invariant] supplied, the
    preferred [Reach_cap] route is tried first: [V_q >= vmax + margin]
    on every unsafe face, where [vmax] is the certified bound of [V] on
    the initial set — the faces are then unreachable. Otherwise (or on
    failure) a genuine barrier function is searched per face; all faces
    must succeed and the last certificate is returned. *)

val validate_barrier_by_simulation :
  ?trials:int ->
  ?t_max:float ->
  ?seed:int ->
  ?invariant:Certificates.attractive_invariant ->
  Pll.scaled ->
  init_radii:float array ->
  t ->
  bool
(** Monte-Carlo check along simulated arcs from the initial set: for a
    [Barrier_function] certificate, [B] never becomes positive; for a
    [Reach_cap vmax] certificate (pass the same [invariant]), the active
    certificate value never exceeds [vmax]. *)

(** {1 Disturbance rejection} *)

type rejection = {
  level : float;  (** certified invariant level [β_d <= β] *)
  d_max : float;  (** disturbance bound the level is certified for *)
  stats : Certificates.stats;
}

val lock_retention :
  ?mult_deg:int ->
  ?bisect_steps:int ->
  Pll.scaled ->
  Certificates.attractive_invariant ->
  d_max:float ->
  (rejection, string) result
(** Largest certified level [β_d <= β] (scanned over a descending grid —
    certifiability is not monotone in the level) such that every slice
    [{V_q <= β_d} ∩ C_q] is invariant for the PLL with pump current
    disturbed by any [|d| <= d_max]: on the boundary [{V_q = β_d}] the
    disturbed Lie derivative is non-positive for both vertex
    disturbances [±d_max]. A PLL that has locked (state in the
    certified set) retains lock under any such disturbance.
    [bisect_steps] (default 0) refines the grid answer: once a grid
    fraction certifies, bisect that many times into the gap up to the
    smallest failed fraction above it, keeping the largest level that
    {e itself} certifies — each probe is verified, so non-monotonicity
    cannot produce an uncertified answer. *)

val max_rejected_disturbance :
  ?mult_deg:int -> ?steps:int -> Pll.scaled -> Certificates.attractive_invariant -> float
(** Largest [d_max] (by doubling/bisection) for which {!lock_retention}
    certifies a positive level. *)
