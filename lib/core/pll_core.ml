module Inevitability = struct
  type step_times = {
    attractive_invariant_s : float;
    max_level_curves_s : float;
    advection_s : float;
    set_inclusion_s : float;
    escape_certificate_s : float;
  }

  type report = {
    scaled : Pll.scaled;
    invariant : Certificates.attractive_invariant;
    advection : Advect.run_result;
    init_front : Poly.t;
    verified : bool;
    times : step_times;
  }

  (* X2 must be small enough that its reach set stays inside the
     verification box (the saturated pump lets the phase error slew far
     before recovery — measured in test_pll/test_core); these radii were
     sized by simulation sweeps. *)
  let default_init_radii (s : Pll.scaled) =
    match s.Pll.order with
    | Pll.Third -> [| 1.5; 1.5; 1.2 |]
    | Pll.Fourth -> [| 0.9; 0.9; 0.9; 0.72 |]

  let verify ?cert_config ?adv_config ?max_advect_iter ?init_radii ?resilience
      ?supervise (s : Pll.scaled) =
    (* One policy across both phases: shared pipeline deadline, one
       chronological journal, and logical solve indices that a fault
       plan can target deterministically. A supervision context rides on
       the policy (made fresh here when only [supervise] is given), so
       worker isolation, the solve cache and the run journal cover both
       phases too. *)
    let resilience =
      match (resilience, supervise) with
      | _, None -> resilience
      | Some pol, Some ctx -> Some (Resilient.with_supervisor pol (Some ctx))
      | None, Some ctx -> Some (Resilient.make ~supervise:ctx ())
    in
    let cert_config, adv_config =
      match resilience with
      | None -> (cert_config, adv_config)
      | Some pol ->
          Resilient.begin_pipeline pol;
          let cc =
            match cert_config with
            | Some c -> c
            | None -> Certificates.default_config s.Pll.order
          in
          let ac = Option.value adv_config ~default:Advect.default_config in
          ( Some { cc with Certificates.resilience = pol },
            Some { ac with Advect.resilience = pol } )
    in
    match Certificates.attractive_invariant ?config:cert_config s with
    | Error e -> Error ("P1 failed: " ^ e)
    | Ok invariant ->
        let radii =
          match init_radii with Some r -> r | None -> default_init_radii s
        in
        let init_front = Advect.ellipsoid_front s ~radii in
        let advection =
          Advect.run ?config:adv_config ?max_iter:max_advect_iter s invariant ~init:init_front
        in
        let times =
          {
            attractive_invariant_s =
              invariant.Certificates.cert.Certificates.solve_stats.Certificates.time_s;
            max_level_curves_s =
              invariant.Certificates.level_stats.Certificates.time_s;
            advection_s = advection.Advect.advect_time_s;
            set_inclusion_s = advection.Advect.inclusion_time_s;
            escape_certificate_s = advection.Advect.escape_time_s;
          }
        in
        Ok
          {
            scaled = s;
            invariant;
            advection;
            init_front;
            verified = advection.Advect.verified;
            times;
          }

  let pp_report ppf r =
    let order =
      match r.scaled.Pll.order with Pll.Third -> "third" | Pll.Fourth -> "fourth"
    in
    Format.fprintf ppf
      "@[<v>Inevitability verification — %s-order CP PLL@,\
       P1 attractive invariant: beta = %.4f (deg-%d multiple Lyapunov certificates)@,\
       P2 advection: %d iterations, converged = %b, escapes = %d, verified = %b@,\
       Step times (s):@,\
      \  attractive invariant  %8.2f@,\
      \  max level curves      %8.2f@,\
      \  advection             %8.2f@,\
      \  checking set inclusion%8.2f@,\
      \  escape certificate    %8.2f@]"
      order r.invariant.Certificates.beta
      r.invariant.Certificates.cert.Certificates.cfg.Certificates.degree
      r.advection.Advect.iterations r.advection.Advect.converged
      (List.length r.advection.Advect.escapes)
      r.verified r.times.attractive_invariant_s r.times.max_level_curves_s
      r.times.advection_s r.times.set_inclusion_s r.times.escape_certificate_s
end
