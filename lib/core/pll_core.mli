(** Top-level facade: end-to-end verification of inevitability of
    phase-locking for the CP PLL (the paper's headline result).

    Inevitability (Definition 4) is split as in §3 of the paper into

    - {b P1}: inside a compact set [X1], every hybrid arc converges to
      the lock equilibrium — established by the multiple-Lyapunov
      attractive invariant ({!Certificates});
    - {b P2}: from the outer set [X2 = S(init)], every arc reaches [X1]
      in bounded time — established by bounded advection of level sets
      plus, where needed, Escape certificates ({!Advect}).

    [verify] runs the whole pipeline and reports the per-step wall-clock
    times matching Table 2 of the paper. *)

module Inevitability : sig
  (** Wall-clock seconds per verification step — the rows of the paper's
      Table 2. *)
  type step_times = {
    attractive_invariant_s : float;
    max_level_curves_s : float;
    advection_s : float;
    set_inclusion_s : float;
    escape_certificate_s : float;
  }

  type report = {
    scaled : Pll.scaled;  (** the verified (scaled) model *)
    invariant : Certificates.attractive_invariant;  (** [X1] *)
    advection : Advect.run_result;  (** the P2 run *)
    init_front : Poly.t;  (** polynomial cutting out [X2] *)
    verified : bool;  (** P1 ∧ P2 *)
    times : step_times;
  }

  val verify :
    ?cert_config:Certificates.config ->
    ?adv_config:Advect.config ->
    ?max_advect_iter:int ->
    ?init_radii:float array ->
    ?resilience:Resilient.policy ->
    ?supervise:Supervise.ctx ->
    Pll.scaled ->
    (report, string) result
  (** Run the two-pronged verification on a scaled CP PLL model.
      [init_radii] are the semi-axes of the ellipsoidal initial set [X2]
      (default: 80% of the domain box). [resilience], when given, is
      installed as the single solve-orchestration policy of both phases
      (overriding whatever the configs carry) and reset via
      {!Resilient.begin_pipeline}: one shared pipeline deadline, one
      failure journal, and deterministic logical solve indices for fault
      plans. [supervise] attaches a supervision context to that policy
      (a default policy is created when [resilience] is absent): every
      solve then runs in a forked worker under the context's timeout and
      memory cap, independent per-mode/per-condition work fans out
      across its pool, and — with a run directory — completed solves are
      cached and journaled so a killed run resumes from its checkpoint. *)

  val default_init_radii : Pll.scaled -> float array
  (** The default [X2] semi-axes. *)

  val pp_report : Format.formatter -> report -> unit
  (** Human-readable summary (certificate sizes, β, iteration counts,
      timing rows). *)
end
