(* Exact rational matrices and the LDL^T positive-semidefiniteness
   decision used by the trusted certificate checker. *)

type t = { rows : int; cols : int; data : Rat.t array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) Rat.zero }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let identity n = init n n (fun i j -> if i = j then Rat.one else Rat.zero)
let dims a = (a.rows, a.cols)
let get a i j = a.data.((i * a.cols) + j)
let set a i j v = a.data.((i * a.cols) + j) <- v
let copy a = { a with data = Array.copy a.data }
let transpose a = init a.cols a.rows (fun i j -> get a j i)

let same_dims a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Qmat: dimension mismatch"

let add a b =
  same_dims a b;
  { a with data = Array.mapi (fun k v -> Rat.add v b.data.(k)) a.data }

let sub a b =
  same_dims a b;
  { a with data = Array.mapi (fun k v -> Rat.sub v b.data.(k)) a.data }

let scale c a = { a with data = Array.map (Rat.mul c) a.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Qmat.mul: dimension mismatch";
  init a.rows b.cols (fun i j ->
      let acc = ref Rat.zero in
      for k = 0 to a.cols - 1 do
        acc := Rat.add !acc (Rat.mul (get a i k) (get b k j))
      done;
      !acc)

let equal a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Rat.equal x y) a.data b.data

let is_symmetric a =
  a.rows = a.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if not (Rat.equal (get a i j) (get a j i)) then ok := false
    done
  done;
  !ok

let mul_vec a v =
  if a.cols <> Array.length v then invalid_arg "Qmat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let acc = ref Rat.zero in
      for j = 0 to a.cols - 1 do
        acc := Rat.add !acc (Rat.mul (get a i j) v.(j))
      done;
      !acc)

let quad_form a v =
  let av = mul_vec a v in
  let acc = ref Rat.zero in
  Array.iteri (fun i x -> acc := Rat.add !acc (Rat.mul x av.(i))) v;
  !acc

let of_mat (m : Linalg.Mat.t) =
  init m.Linalg.Mat.rows m.Linalg.Mat.cols (fun i j -> Rat.of_float (Linalg.Mat.get m i j))

let round_of_mat ~denom_bits (m : Linalg.Mat.t) =
  if denom_bits < 0 then invalid_arg "Qmat.round_of_mat";
  let den = Bigint.pow2 denom_bits in
  let round_entry f =
    let scaled = Float.ldexp f denom_bits in
    if Float.is_finite scaled && Float.abs scaled < 9.0e15 then
      Rat.make (Bigint.of_int (int_of_float (Float.round scaled))) den
    else Rat.of_float f
  in
  init m.Linalg.Mat.rows m.Linalg.Mat.cols (fun i j -> round_entry (Linalg.Mat.get m i j))

let to_mat a = Linalg.Mat.init a.rows a.cols (fun i j -> Rat.to_float (get a i j))

(* Any exact solution of the (possibly rectangular, possibly
   underdetermined) system A x = b, by fraction-aware Gaussian
   elimination with free variables pinned to zero. Pivots are chosen by
   float magnitude — a heuristic only; every operation is exact. *)
let lin_solve a b =
  if a.rows <> Array.length b then invalid_arg "Qmat.lin_solve: dimension mismatch";
  let m = a.rows and n = a.cols in
  let w = copy a in
  let rhs = Array.copy b in
  let pivot_col_of_row = Array.make m (-1) in
  let row = ref 0 in
  let col = ref 0 in
  while !row < m && !col < n do
    (* best pivot in this column among remaining rows *)
    let best = ref (-1) in
    let best_mag = ref 0.0 in
    for i = !row to m - 1 do
      let mag = Float.abs (Rat.to_float (get w i !col)) in
      if Rat.sign (get w i !col) <> 0 && (!best < 0 || mag > !best_mag) then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best < 0 then incr col
    else begin
      let bi = !best and r = !row in
      if bi <> r then begin
        for j = 0 to n - 1 do
          let tmp = get w r j in
          set w r j (get w bi j);
          set w bi j tmp
        done;
        let tmp = rhs.(r) in
        rhs.(r) <- rhs.(bi);
        rhs.(bi) <- tmp
      end;
      let d = get w r !col in
      for i = 0 to m - 1 do
        if i <> r && Rat.sign (get w i !col) <> 0 then begin
          let f = Rat.div (get w i !col) d in
          for j = !col to n - 1 do
            set w i j (Rat.sub (get w i j) (Rat.mul f (get w r j)))
          done;
          rhs.(i) <- Rat.sub rhs.(i) (Rat.mul f rhs.(r))
        end
      done;
      pivot_col_of_row.(r) <- !col;
      incr row;
      incr col
    end
  done;
  (* consistency: zero rows must have zero rhs *)
  let consistent = ref true in
  for i = !row to m - 1 do
    if Rat.sign rhs.(i) <> 0 then consistent := false
  done;
  if not !consistent then None
  else begin
    let x = Array.make n Rat.zero in
    for i = 0 to !row - 1 do
      let c = pivot_col_of_row.(i) in
      x.(c) <- Rat.div rhs.(i) (get w i c)
    done;
    Some x
  end

type psd_result =
  | Psd of { min_pivot : Rat.t }
  | Not_psd of { witness : Rat.t array; value : Rat.t }

(* Solve L^T v = u for unit lower-triangular L (identity beyond the
   columns filled so far): back substitution from the last row. *)
let solve_lt l u =
  let n = Array.length u in
  let v = Array.copy u in
  for i = n - 1 downto 0 do
    let acc = ref v.(i) in
    for j = i + 1 to n - 1 do
      acc := Rat.sub !acc (Rat.mul (get l j i) v.(j))
    done;
    v.(i) <- !acc
  done;
  v

let psd a =
  if not (is_symmetric a) then invalid_arg "Qmat.psd: matrix not symmetric";
  let n = a.rows in
  if n = 0 then Psd { min_pivot = Rat.zero }
  else begin
    let s = copy a (* mutated into successive Schur complements *) in
    let l = identity n in
    let min_pivot = ref (get a 0 0) in
    let result = ref None in
    let k = ref 0 in
    (* A vector supported on Schur indices >= k pulls back through
       L^T v = u to v with v^T A v = u^T S u. *)
    let refute u =
      let v = solve_lt l u in
      let value = quad_form a v in
      assert (Rat.sign value < 0);
      result := Some (Not_psd { witness = v; value })
    in
    while !result = None && !k < n do
      let kk = !k in
      let d = get s kk kk in
      (match Rat.sign d with
      | -1 ->
          let u = Array.make n Rat.zero in
          u.(kk) <- Rat.one;
          refute u
      | 0 ->
          (* a zero pivot is only compatible with PSD-ness when its whole
             trailing row vanishes; otherwise the 2x2 minor [[0,c],[c,b]]
             has negative determinant and yields an explicit witness. *)
          let j = ref (-1) in
          for jj = kk + 1 to n - 1 do
            if !j < 0 && Rat.sign (get s kk jj) <> 0 then j := jj
          done;
          if !j < 0 then min_pivot := Rat.min !min_pivot Rat.zero
          else begin
            let c = get s kk !j and b = get s !j !j in
            let u = Array.make n Rat.zero in
            (* u = t e_k + e_j with t = -(b+1)/(2c): u^T S u = b + 2tc = -1 *)
            u.(kk) <- Rat.div (Rat.neg (Rat.add b Rat.one)) (Rat.mul (Rat.of_int 2) c);
            u.(!j) <- Rat.one;
            refute u
          end
      | _ ->
          min_pivot := Rat.min !min_pivot d;
          for i = kk + 1 to n - 1 do
            set l i kk (Rat.div (get s i kk) d)
          done;
          for i = kk + 1 to n - 1 do
            let lik = get l i kk in
            if Rat.sign lik <> 0 then
              for j = i to n - 1 do
                let v = Rat.sub (get s i j) (Rat.mul lik (get s kk j)) in
                set s i j v;
                set s j i v
              done
          done);
      incr k
    done;
    match !result with Some r -> r | None -> Psd { min_pivot = !min_pivot }
  end

let pp fmt a =
  for i = 0 to a.rows - 1 do
    Format.fprintf fmt "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf fmt ", ";
      Rat.pp fmt (get a i j)
    done;
    Format.fprintf fmt "]@."
  done
