(* Sign-magnitude arbitrary-precision integers on base-2^30 limbs.

   The base is chosen so that a limb product plus carries stays below
   2^62 and therefore fits in OCaml's native 63-bit [int] — no Int64
   boxing on the hot paths. Magnitudes are little-endian [int array]s
   with no high zero limbs; the invariant [sign = 0 <=> mag = [||]]
   makes zero unique and structural equality meaningful. *)

let limb_bits = 30
let base = 1 lsl limb_bits
let mask = base - 1

type t = { sign : int; mag : int array }

(* ----- magnitude helpers (unsigned little-endian limb arrays) ----- *)

let mag_zero = [||]

let norm_mag m =
  let n = ref (Array.length m) in
  while !n > 0 && m.(!n - 1) = 0 do decr n done;
  if !n = Array.length m then m else Array.sub m 0 !n

let mag_is_zero m = Array.length m = 0

let cmp_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lr = 1 + max la lb in
  let r = Array.make lr 0 in
  let carry = ref 0 in
  for i = 0 to lr - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    r.(i) <- s land mask;
    carry := s lsr limb_bits
  done;
  norm_mag r

(* requires a >= b *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      r.(i) <- d + base;
      borrow := 1
    end
    else begin
      r.(i) <- d;
      borrow := 0
    end
  done;
  norm_mag r

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then mag_zero
  else begin
    let r = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let ai = a.(i) in
      if ai <> 0 then begin
        let carry = ref 0 in
        for j = 0 to lb - 1 do
          let acc = r.(i + j) + (ai * b.(j)) + !carry in
          r.(i + j) <- acc land mask;
          carry := acc lsr limb_bits
        done;
        let k = ref (i + lb) in
        while !carry <> 0 do
          let acc = r.(!k) + !carry in
          r.(!k) <- acc land mask;
          carry := acc lsr limb_bits;
          incr k
        done
      end
    done;
    norm_mag r
  end

let bitlen_int n =
  let rec go n acc = if n = 0 then acc else go (n lsr 1) (acc + 1) in
  go n 0

let bits_mag m =
  let l = Array.length m in
  if l = 0 then 0 else ((l - 1) * limb_bits) + bitlen_int m.(l - 1)

let shl_mag m k =
  if mag_is_zero m || k = 0 then m
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let l = Array.length m in
    let r = Array.make (l + limbs + 1) 0 in
    for i = 0 to l - 1 do
      let v = m.(i) lsl bits in
      r.(i + limbs) <- r.(i + limbs) lor (v land mask);
      r.(i + limbs + 1) <- v lsr limb_bits
    done;
    norm_mag r
  end

let shr_mag m k =
  if mag_is_zero m || k = 0 then m
  else begin
    let limbs = k / limb_bits and bits = k mod limb_bits in
    let l = Array.length m in
    if limbs >= l then mag_zero
    else begin
      let lr = l - limbs in
      let r = Array.make lr 0 in
      for i = 0 to lr - 1 do
        let lo = m.(i + limbs) lsr bits in
        let hi = if bits > 0 && i + limbs + 1 < l then (m.(i + limbs + 1) lsl (limb_bits - bits)) land mask else 0 in
        r.(i) <- lo lor hi
      done;
      norm_mag r
    end
  end

let trailing_zeros_mag m =
  let rec limb i = if m.(i) <> 0 then i else limb (i + 1) in
  let i = limb 0 in
  let rec bit v acc = if v land 1 = 1 then acc else bit (v lsr 1) (acc + 1) in
  (i * limb_bits) + bit m.(i) 0

(* Binary long division of magnitudes: O((bits a - bits b) * limbs). *)
let divmod_mag a b =
  if mag_is_zero b then raise Division_by_zero;
  if cmp_mag a b < 0 then (mag_zero, a)
  else begin
    let shift = bits_mag a - bits_mag b in
    let q = Array.make (1 + (shift / limb_bits)) 0 in
    let r = ref a in
    let d = ref (shl_mag b shift) in
    for i = shift downto 0 do
      if cmp_mag !r !d >= 0 then begin
        r := sub_mag !r !d;
        q.(i / limb_bits) <- q.(i / limb_bits) lor (1 lsl (i mod limb_bits))
      end;
      d := shr_mag !d 1
    done;
    (norm_mag q, !r)
  end

(* ----- signed interface ----- *)

let zero = { sign = 0; mag = mag_zero }

let make sign mag = if mag_is_zero mag then zero else { sign; mag }

let of_int n =
  if n = 0 then zero
  else if n = min_int then
    (* |min_int| is not representable as an int; build it limb-wise. *)
    { sign = -1; mag = norm_mag [| 0; 0; 1 lsl (Sys.int_size - 1 - (2 * limb_bits)) |] }
  else begin
    let sign = if n < 0 then -1 else 1 in
    let u = Stdlib.abs n in
    let rec go u acc = if u = 0 then acc else go (u lsr limb_bits) ((u land mask) :: acc) in
    { sign; mag = Array.of_list (List.rev (go u [])) }
  end

let one = of_int 1
let minus_one = of_int (-1)

let sign t = t.sign

let equal a b = a.sign = b.sign && cmp_mag a.mag b.mag = 0

let compare a b =
  if a.sign <> b.sign then compare a.sign b.sign
  else if a.sign >= 0 then cmp_mag a.mag b.mag
  else cmp_mag b.mag a.mag

let neg a = make (-a.sign) a.mag

let abs a = make (Stdlib.abs a.sign) a.mag

let add a b =
  if a.sign = 0 then b
  else if b.sign = 0 then a
  else if a.sign = b.sign then make a.sign (add_mag a.mag b.mag)
  else begin
    let c = cmp_mag a.mag b.mag in
    if c = 0 then zero
    else if c > 0 then make a.sign (sub_mag a.mag b.mag)
    else make b.sign (sub_mag b.mag a.mag)
  end

let sub a b = add a (neg b)

let mul a b =
  if a.sign = 0 || b.sign = 0 then zero else make (a.sign * b.sign) (mul_mag a.mag b.mag)

let divmod a b =
  if b.sign = 0 then raise Division_by_zero;
  let qm, rm = divmod_mag a.mag b.mag in
  if a.sign >= 0 then (make b.sign qm, make 1 rm)
  else if mag_is_zero rm then (make (-b.sign) qm, zero)
  else (make (-b.sign) (add_mag qm [| 1 |]), make 1 (sub_mag b.mag rm))

let is_even a = mag_is_zero a.mag || a.mag.(0) land 1 = 0

let bits a = bits_mag a.mag

let shift_left a k =
  if k < 0 then invalid_arg "Bigint.shift_left";
  make a.sign (shl_mag a.mag k)

let pow2 k =
  if k < 0 then invalid_arg "Bigint.pow2";
  make 1 (shl_mag [| 1 |] k)

let gcd a b =
  if a.sign = 0 then abs b
  else if b.sign = 0 then abs a
  else begin
    (* Stein's binary GCD: only shifts and subtractions. *)
    let x = ref a.mag and y = ref b.mag in
    let ka = trailing_zeros_mag !x and kb = trailing_zeros_mag !y in
    let k = min ka kb in
    x := shr_mag !x ka;
    while not (mag_is_zero !y) do
      y := shr_mag !y (trailing_zeros_mag !y);
      if cmp_mag !x !y > 0 then begin
        let t = !x in
        x := !y;
        y := t
      end;
      y := sub_mag !y !x
    done;
    make 1 (shl_mag !x k)
  end

let to_int_opt a =
  if bits a <= Sys.int_size - 1 then begin
    let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) a.mag 0 in
    Some (a.sign * v)
  end
  else if a.sign = -1 && equal a (of_int min_int) then Some min_int
  else None

let to_float a =
  let b = bits a in
  if b = 0 then 0.0
  else if b <= 62 then begin
    let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) a.mag 0 in
    float_of_int (a.sign * v)
  end
  else begin
    let top = shr_mag a.mag (b - 62) in
    let v = Array.fold_right (fun limb acc -> (acc lsl limb_bits) lor limb) top 0 in
    float_of_int a.sign *. ldexp (float_of_int v) (b - 62)
  end

(* ----- decimal I/O (chunks of 9 digits: 10^9 < 2^30) ----- *)

let dec_chunk = 1_000_000_000
let dec_digits = 9

let divmod_small_mag m d =
  let l = Array.length m in
  let q = Array.make l 0 in
  let r = ref 0 in
  for i = l - 1 downto 0 do
    let acc = (!r lsl limb_bits) lor m.(i) in
    q.(i) <- acc / d;
    r := acc mod d
  done;
  (norm_mag q, !r)

let mul_add_small_mag m f c =
  let l = Array.length m in
  let r = Array.make (l + 1) 0 in
  let carry = ref c in
  for i = 0 to l - 1 do
    let acc = (m.(i) * f) + !carry in
    r.(i) <- acc land mask;
    carry := acc lsr limb_bits
  done;
  r.(l) <- !carry;
  norm_mag r

let to_string a =
  if a.sign = 0 then "0"
  else begin
    let buf = Buffer.create 32 in
    let rec go m acc =
      if mag_is_zero m then acc
      else begin
        let q, r = divmod_small_mag m dec_chunk in
        go q (r :: acc)
      end
    in
    (match go a.mag [] with
    | [] -> assert false
    | first :: rest ->
        if a.sign < 0 then Buffer.add_char buf '-';
        Buffer.add_string buf (string_of_int first);
        List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%09d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let len = String.length s in
  if len = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start = match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0) in
  if start >= len then invalid_arg "Bigint.of_string: missing digits";
  let parse_chunk i j =
    let c = ref 0 in
    for k = i to j - 1 do
      match s.[k] with
      | '0' .. '9' -> c := (!c * 10) + (Char.code s.[k] - Char.code '0')
      | ch -> invalid_arg (Printf.sprintf "Bigint.of_string: invalid character %C" ch)
    done;
    !c
  in
  (* a short leading chunk aligns the rest to full 9-digit groups *)
  let first = ((len - start - 1) mod dec_digits) + 1 in
  let mag = ref [| parse_chunk start (start + first) |] in
  let i = ref (start + first) in
  while !i < len do
    mag := mul_add_small_mag !mag dec_chunk (parse_chunk !i (!i + dec_digits));
    i := !i + dec_digits
  done;
  make sign (norm_mag !mag)

let pp fmt a = Format.pp_print_string fmt (to_string a)
