(** Sparse multivariate polynomials with exact {!Rat} coefficients.

    Mirrors the float ring [lib/poly] (same {!Poly.Monomial} exponent
    vectors, same graded-lex term order) so certificates can cross the
    float/exact boundary losslessly: {!of_poly} embeds every double
    coefficient as the dyadic rational it actually is. Zero coefficients
    are never stored, so {!equal} is decidable structural equality. *)

type t

val nvars : t -> int
val zero : int -> t
val one : int -> t
val const : int -> Rat.t -> t

val of_terms : int -> (Poly.Monomial.t * Rat.t) list -> t
(** Repeated monomials are summed; zero coefficients dropped. *)

val terms : t -> (Poly.Monomial.t * Rat.t) list
(** In {!Poly.Monomial.compare} order. *)

val coeff : t -> Poly.Monomial.t -> Rat.t
val is_zero : t -> bool
val equal : t -> t -> bool

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Rat.t -> t -> t
val mul : t -> t -> t

val eval : t -> Rat.t array -> Rat.t
(** Exact value at a rational point. *)

val partial : int -> t -> t
(** [partial i p] is [∂p/∂x_i], exactly. *)

val lie_derivative : t -> t array -> t
(** [lie_derivative p f] is [∇p · f] (one polynomial per variable),
    exactly — the exact mirror of {!Poly.lie_derivative}. *)

val fix_var : int -> Rat.t -> t -> t
(** [fix_var i v p] substitutes the exact constant [v] for variable [i];
    the arity is kept (the variable simply no longer occurs). *)

val of_poly : Poly.t -> t
(** Exact dyadic image of a float polynomial — no rounding. *)

val to_poly : t -> Poly.t
(** Nearest-double image (lossy). *)

val gram_poly : int -> Poly.Monomial.t array -> Qmat.t -> t
(** [gram_poly nvars basis g] is the exact expansion of [zᵀ G z] where
    [z] is the vector of basis monomials — the polynomial a Gram block
    claims to represent. Raises [Invalid_argument] on dimension
    mismatch. *)

val to_string : ?names:string array -> t -> string
val pp : Format.formatter -> t -> unit
