(** Arbitrary-precision rational numbers over {!Bigint}.

    Values are kept normalized — positive denominator, numerator and
    denominator coprime, zero represented as [0/1] — so structural
    {!equal} coincides with numeric equality and serialized forms are
    canonical. This is the coefficient field of the exact certificate
    kernel ({!Qmat}, {!Qpoly}, {!Check}). *)

type t = private { num : Bigint.t; den : Bigint.t }
(** [den > 0], [gcd (|num|) den = 1]. The constructor is private so the
    invariant cannot be broken from outside; build values with {!make},
    {!of_int}, {!of_bigint} or {!of_float}. *)

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the normalized fraction [num/den]. Raises
    [Division_by_zero] when [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
val of_bigint : Bigint.t -> t

val of_float : float -> t
(** Exact dyadic value of a finite double ([f = m·2^e] with integer
    mantissa): no rounding whatsoever. Raises [Invalid_argument] on
    [nan] and infinities. *)

val to_float : t -> float
(** Nearest-double approximation. Exact (round-trips with {!of_float})
    whenever numerator and denominator both fit in 62 bits and the
    quotient is representable — in particular for every dyadic rational
    produced by {!of_float} from a double of magnitude within
    [[2^-900, 2^900]]. *)

val num : t -> Bigint.t
val den : t -> Bigint.t

val sign : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val inv : t -> t
(** Raises [Division_by_zero] on zero. *)

val div : t -> t -> t
(** Raises [Division_by_zero] on a zero divisor. *)

val min : t -> t -> t
val max : t -> t -> t

val of_string : string -> t
(** Parse ["num/den"] or a plain decimal integer ["num"]. Raises
    [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Canonical form ["num/den"], always with an explicit denominator
    (["3/1"], ["-1/2"]) so the artifact grammar stays uniform. *)

val pp : Format.formatter -> t -> unit
