(** Dense matrices over {!Rat}, with the exact positive-semidefiniteness
    decision procedure of the certificate kernel.

    The key operation is {!psd}: an exact LDLᵀ factorization that either
    produces a factorization witnessing [A ⪰ 0] (with the smallest pivot
    as an exact positivity margin) or an explicit rational vector [v]
    with [vᵀ A v < 0] refuting it. Both outcomes are checkable by pure
    rational arithmetic — no tolerances anywhere. *)

type t = { rows : int; cols : int; data : Rat.t array }
(** [data.(i * cols + j)] is the entry at row [i], column [j]. *)

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> Rat.t) -> t
val identity : int -> t
val dims : t -> int * int
val get : t -> int -> int -> Rat.t
val set : t -> int -> int -> Rat.t -> unit
val copy : t -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : Rat.t -> t -> t
val mul : t -> t -> t
val equal : t -> t -> bool
val is_symmetric : t -> bool

val mul_vec : t -> Rat.t array -> Rat.t array

val quad_form : t -> Rat.t array -> Rat.t
(** [quad_form a v] is [vᵀ A v], exactly. *)

val lin_solve : t -> Rat.t array -> Rat.t array option
(** [lin_solve a b] is an exact solution of [a·x = b] — any solution
    when the system is underdetermined (free variables are set to zero),
    [None] when it is inconsistent. Gaussian elimination over [Q];
    pivots are chosen by float magnitude as a conditioning heuristic,
    but every arithmetic step is exact. *)

val of_mat : Linalg.Mat.t -> t
(** Exact dyadic image of a float matrix (every double is a rational). *)

val round_of_mat : denom_bits:int -> Linalg.Mat.t -> t
(** Entrywise nearest rational with denominator [2^denom_bits]. Bounded
    denominators keep the LDLᵀ pivot growth (and artifact size) under
    control; the introduced perturbation is at most [2^-(denom_bits+1)]
    per entry and is subsequently repaired exactly by the residual
    absorption of {!Check}. *)

val to_mat : t -> Linalg.Mat.t
(** Nearest-double image. *)

(** Outcome of the exact PSD decision. *)
type psd_result =
  | Psd of { min_pivot : Rat.t }
      (** An LDLᵀ factorization exists: the matrix is PSD. [min_pivot]
          is the smallest diagonal pivot — strictly positive iff the
          matrix is positive definite. *)
  | Not_psd of { witness : Rat.t array; value : Rat.t }
      (** [value = witness ᵀ A witness < 0], exactly. *)

val psd : t -> psd_result
(** Decide [A ⪰ 0] for a symmetric matrix by fraction-exact LDLᵀ
    (zero pivots are accepted only when their entire trailing row is
    zero, which is necessary and sufficient for semidefiniteness).
    Raises [Invalid_argument] if the matrix is not symmetric. *)

val pp : Format.formatter -> t -> unit
