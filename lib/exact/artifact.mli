(** Versioned, plain-text serialization of exact certificates — the
    proof artifact store.

    An artifact bundles named {!Check.certificate}s with free-form
    metadata so that proofs survive the process that found them: they
    can be cached next to a parameter sweep, shipped with a paper, and
    re-validated later by [bin/check_cert] (or any independent reader —
    the grammar below is deliberately trivial to parse).

    Line-oriented grammar (version 1; whitespace-separated tokens,
    rationals always ["num/den"], monomials as [nvars] exponents):

    {v
      pll-sos-artifact v1
      meta <key> <value...>              (zero or more)
      cert <name>
      nvars <n>
      target <nterms>
      t <num/den> <e0> ... <e_{n-1}>     (nterms lines, graded-lex order)
      sigma <g-nterms> <basis-size>      (zero or more sigma sections)
      t ...                              (the domain polynomial g)
      z <e0> ... <e_{n-1}>               (basis-size lines)
      G <i> <j> <num/den>                (upper triangle, row-major, all entries)
      main <basis-size>
      z ... / G ...                      (as above)
      endcert
      end
    v}

    The writer is canonical (terms sorted, every upper-triangle Gram
    entry present, no trailing whitespace), so
    [write (parse s) = s] for any writer-produced [s] — round-trips are
    byte-identical, which makes artifacts diffable and content-
    addressable. *)

type t = {
  version : int;
  meta : (string * string) list;  (** ordered key/value pairs *)
  certs : (string * Check.certificate) list;  (** ordered, named *)
}

val version : int
(** The format version this library writes (1). *)

val create : ?meta:(string * string) list -> (string * Check.certificate) list -> t
(** Raises [Invalid_argument] when a name or meta key/value contains a
    newline, or a meta key contains whitespace. *)

val write : t -> string
val parse : string -> (t, string) result

val save : string -> t -> unit
(** Write to a file (truncating). *)

val load : string -> (t, string) result
(** Read and parse a file; [Error] on I/O or syntax problems. *)

val check_all : t -> (string * Check.verdict) list
(** Run the trusted kernel over every certificate in the artifact. *)
