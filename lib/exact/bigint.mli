(** Arbitrary-precision signed integers, implemented from scratch on
    [int array] limbs (no zarith).

    The exact-arithmetic kernel must not trust, and must not depend on,
    anything outside this repository: these integers are the ground
    layer under {!Rat}, {!Qmat} and {!Check}. Representation is
    sign–magnitude with base-2³⁰ little-endian limbs, so every limb
    product and carry fits comfortably in OCaml's 63-bit native [int].

    All operations are total on valid values except division by zero. *)

type t

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
(** Exact conversion from a native integer (any [int], including
    [min_int]). *)

val to_int_opt : t -> int option
(** [Some n] when the value fits in a native [int]. *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order compatible with the integer order. *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = b*q + r] and [0 <= r < |b|]
    (Euclidean division: the remainder is always non-negative).
    Raises [Division_by_zero] when [b] is zero. *)

val gcd : t -> t -> t
(** Greatest common divisor of the absolute values (binary/Stein
    algorithm — no divisions); [gcd 0 0 = 0]. *)

val shift_left : t -> int -> t
(** Multiply by [2^k], [k >= 0]. *)

val pow2 : int -> t
(** [2^k] for [k >= 0]. *)

val is_even : t -> bool

val bits : t -> int
(** Position of the highest set bit of [|n|] plus one ([0] for zero). *)

val to_float : t -> float
(** Nearest-double approximation (exact whenever [|n| < 2^53];
    [infinity] beyond the double range). *)

val of_string : string -> t
(** Parse an optionally-signed decimal literal. Raises
    [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Canonical decimal form ([-] sign only, no leading zeros). *)

val pp : Format.formatter -> t -> unit
