(* Canonical text serialization of exact certificates. The writer emits
   a unique normal form; the parser accepts exactly the grammar in the
   interface, so write . parse . write = write (byte-identical). *)

module Monomial = Poly.Monomial

type t = {
  version : int;
  meta : (string * string) list;
  certs : (string * Check.certificate) list;
}

let version = 1

let magic = "pll-sos-artifact"

let create ?(meta = []) certs =
  let no_newline s = not (String.contains s '\n') in
  List.iter
    (fun (k, v) ->
      if not (no_newline v) || String.exists (fun c -> c = ' ' || c = '\n' || c = '\t') k
      then invalid_arg "Artifact.create: malformed meta entry")
    meta;
  List.iter
    (fun (name, _) ->
      if name = "" || not (no_newline name) then invalid_arg "Artifact.create: malformed name")
    certs;
  { version; meta; certs }

(* ----- writer ----- *)

let write_poly buf p =
  let ts = Qpoly.terms p in
  Buffer.add_string buf (Printf.sprintf "target %d\n" (List.length ts));
  List.iter
    (fun (m, c) ->
      Buffer.add_string buf ("t " ^ Rat.to_string c);
      Array.iter (fun e -> Buffer.add_string buf (" " ^ string_of_int e)) m;
      Buffer.add_char buf '\n')
    ts

let write_block buf (b : Check.sos_block) =
  Array.iter
    (fun m ->
      Buffer.add_string buf "z";
      Array.iter (fun e -> Buffer.add_string buf (" " ^ string_of_int e)) m;
      Buffer.add_char buf '\n')
    b.Check.basis;
  let k = Array.length b.Check.basis in
  for i = 0 to k - 1 do
    for j = i to k - 1 do
      Buffer.add_string buf
        (Printf.sprintf "G %d %d %s\n" i j (Rat.to_string (Qmat.get b.Check.gram i j)))
    done
  done

let write t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "%s v%d\n" magic t.version);
  List.iter (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "meta %s %s\n" k v)) t.meta;
  List.iter
    (fun (name, (c : Check.certificate)) ->
      Buffer.add_string buf (Printf.sprintf "cert %s\n" name);
      Buffer.add_string buf (Printf.sprintf "nvars %d\n" c.Check.nvars);
      write_poly buf c.Check.target;
      List.iter
        (fun (g, s) ->
          let ts = Qpoly.terms g in
          Buffer.add_string buf
            (Printf.sprintf "sigma %d %d\n" (List.length ts)
               (Array.length s.Check.basis));
          List.iter
            (fun (m, coef) ->
              Buffer.add_string buf ("t " ^ Rat.to_string coef);
              Array.iter (fun e -> Buffer.add_string buf (" " ^ string_of_int e)) m;
              Buffer.add_char buf '\n')
            ts;
          write_block buf s)
        c.Check.sigmas;
      Buffer.add_string buf (Printf.sprintf "main %d\n" (Array.length c.Check.main.Check.basis));
      write_block buf c.Check.main;
      Buffer.add_string buf "endcert\n")
    t.certs;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* ----- parser ----- *)

exception Bad of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type cursor = { lines : string array; mutable pos : int }

let next cur =
  if cur.pos >= Array.length cur.lines then fail "unexpected end of artifact";
  let l = cur.lines.(cur.pos) in
  cur.pos <- cur.pos + 1;
  l

let peek cur = if cur.pos >= Array.length cur.lines then None else Some cur.lines.(cur.pos)

let tokens l = String.split_on_char ' ' l |> List.filter (fun s -> s <> "")

let parse_int s = match int_of_string_opt s with Some n -> n | None -> fail "bad integer %S" s

let parse_rat s = try Rat.of_string s with Invalid_argument m -> fail "bad rational: %s" m

let parse_term nvars line =
  match tokens line with
  | "t" :: c :: es ->
      if List.length es <> nvars then fail "term arity mismatch on %S" line;
      (Monomial.of_exponents (List.map parse_int es), parse_rat c)
  | _ -> fail "expected term line, got %S" line

let parse_poly nvars nterms cur =
  let ts = List.init nterms (fun _ -> parse_term nvars (next cur)) in
  Qpoly.of_terms nvars ts

let parse_block nvars size cur : Check.sos_block =
  let basis =
    Array.init size (fun _ ->
        match tokens (next cur) with
        | "z" :: es ->
            if List.length es <> nvars then fail "basis arity mismatch";
            Monomial.of_exponents (List.map parse_int es)
        | _ -> fail "expected basis line")
  in
  let gram = Qmat.create size size in
  for i = 0 to size - 1 do
    for j = i to size - 1 do
      match tokens (next cur) with
      | [ "G"; si; sj; c ] ->
          if parse_int si <> i || parse_int sj <> j then fail "gram entry out of order";
          let v = parse_rat c in
          Qmat.set gram i j v;
          Qmat.set gram j i v
      | _ -> fail "expected gram entry"
    done
  done;
  { Check.basis; gram }

let parse_cert name cur =
  let nvars =
    match tokens (next cur) with
    | [ "nvars"; n ] -> parse_int n
    | _ -> fail "expected nvars"
  in
  let target =
    match tokens (next cur) with
    | [ "target"; n ] -> parse_poly nvars (parse_int n) cur
    | _ -> fail "expected target"
  in
  let sigmas = ref [] in
  let main = ref None in
  while !main = None do
    match tokens (next cur) with
    | [ "sigma"; nt; size ] ->
        let g = parse_poly nvars (parse_int nt) cur in
        let blk = parse_block nvars (parse_int size) cur in
        sigmas := (g, blk) :: !sigmas
    | [ "main"; size ] -> main := Some (parse_block nvars (parse_int size) cur)
    | l -> fail "expected sigma or main, got %S" (String.concat " " l)
  done;
  (match tokens (next cur) with
  | [ "endcert" ] -> ()
  | _ -> fail "expected endcert");
  ( name,
    {
      Check.nvars;
      target;
      sigmas = List.rev !sigmas;
      main = (match !main with Some m -> m | None -> assert false);
    } )

let parse s =
  try
    let lines = String.split_on_char '\n' s |> Array.of_list in
    (* a trailing newline leaves one empty trailing element *)
    let n = Array.length lines in
    let lines = if n > 0 && lines.(n - 1) = "" then Array.sub lines 0 (n - 1) else lines in
    let cur = { lines; pos = 0 } in
    let version =
      match tokens (next cur) with
      | [ m; v ] when m = magic && String.length v > 1 && v.[0] = 'v' ->
          parse_int (String.sub v 1 (String.length v - 1))
      | _ -> fail "bad header (expected %S)" magic
    in
    if version <> 1 then fail "unsupported artifact version %d" version;
    let meta = ref [] in
    let certs = ref [] in
    let finished = ref false in
    while not !finished do
      let line = next cur in
      match tokens line with
      | "meta" :: key :: _ ->
          let prefix = "meta " ^ key ^ " " in
          let value =
            if String.length line >= String.length prefix then
              String.sub line (String.length prefix) (String.length line - String.length prefix)
            else ""
          in
          meta := (key, value) :: !meta
      | "cert" :: _ ->
          let name = String.sub line 5 (String.length line - 5) in
          certs := parse_cert name cur :: !certs
      | [ "end" ] ->
          if peek cur <> None then fail "trailing data after end";
          finished := true
      | _ -> fail "unexpected line %S" line
    done;
    Ok { version; meta = List.rev !meta; certs = List.rev !certs }
  with
  | Bad m -> Error m
  | Invalid_argument m -> Error m

let save path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (write t))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
        really_input_string ic (in_channel_length ic))
  with
  | s -> parse s
  | exception Sys_error m -> Error m

let check_all t = List.map (fun (name, c) -> (name, Check.check c)) t.certs
