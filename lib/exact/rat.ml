(* Normalized rationals: den > 0, gcd(|num|, den) = 1, zero = 0/1. *)

type t = { num : Bigint.t; den : Bigint.t }

let make num den =
  match Bigint.sign den with
  | 0 -> raise Division_by_zero
  | s ->
      let num = if s < 0 then Bigint.neg num else num in
      let den = Bigint.abs den in
      if Bigint.sign num = 0 then { num = Bigint.zero; den = Bigint.one }
      else begin
        let g = Bigint.gcd num den in
        if Bigint.equal g Bigint.one then { num; den }
        else { num = fst (Bigint.divmod num g); den = fst (Bigint.divmod den g) }
      end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints a b = make (Bigint.of_int a) (Bigint.of_int b)

let num t = t.num
let den t = t.den
let sign t = Bigint.sign t.num

let equal a b = Bigint.equal a.num b.num && Bigint.equal a.den b.den

let compare a b =
  (* a.num/a.den ? b.num/b.den  <=>  a.num*b.den ? b.num*a.den (dens > 0) *)
  Bigint.compare (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)

let neg a = { a with num = Bigint.neg a.num }
let abs a = { a with num = Bigint.abs a.num }

let add a b =
  make (Bigint.add (Bigint.mul a.num b.den) (Bigint.mul b.num a.den)) (Bigint.mul a.den b.den)

let sub a b = add a (neg b)

let mul a b = make (Bigint.mul a.num b.num) (Bigint.mul a.den b.den)

let inv a =
  if Bigint.sign a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b

(* Exact dyadic decomposition of a finite double: f = m * 2^(e-53) with
   |m| < 2^53 an integer, recovered losslessly via frexp/ldexp. *)
let of_float f =
  if not (Float.is_finite f) then invalid_arg "Rat.of_float: not finite";
  if f = 0.0 then zero
  else begin
    let m, e = Float.frexp f in
    let mant = Int64.to_int (Int64.of_float (Float.ldexp m 53)) in
    let e = e - 53 in
    if e >= 0 then of_bigint (Bigint.shift_left (Bigint.of_int mant) e)
    else make (Bigint.of_int mant) (Bigint.pow2 (-e))
  end

let to_float a = Bigint.to_float a.num /. Bigint.to_float a.den

let to_string a = Bigint.to_string a.num ^ "/" ^ Bigint.to_string a.den

let of_string s =
  match String.index_opt s '/' with
  | None -> of_bigint (Bigint.of_string s)
  | Some i ->
      let n = Bigint.of_string (String.sub s 0 i) in
      let d = Bigint.of_string (String.sub s (i + 1) (String.length s - i - 1)) in
      if Bigint.sign d = 0 then invalid_arg "Rat.of_string: zero denominator";
      make n d

let pp fmt a = Format.pp_print_string fmt (to_string a)
