(* Exact-coefficient mirror of lib/poly: association list over the same
   monomials, kept sorted by Monomial.compare with no zero terms. *)

module Monomial = Poly.Monomial

type t = { nvars : int; terms : (Monomial.t * Rat.t) list }

let nvars p = p.nvars
let zero n = { nvars = n; terms = [] }

let of_terms n ts =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun ((m : Monomial.t), c) ->
      if Monomial.arity m <> n then invalid_arg "Qpoly.of_terms: arity mismatch";
      let cur = try Hashtbl.find tbl m with Not_found -> Rat.zero in
      Hashtbl.replace tbl m (Rat.add cur c))
    ts;
  let terms =
    Hashtbl.fold (fun m c acc -> if Rat.sign c = 0 then acc else (m, c) :: acc) tbl []
  in
  { nvars = n; terms = List.sort (fun (a, _) (b, _) -> Monomial.compare a b) terms }

let const n c = of_terms n [ (Monomial.one n, c) ]
let one n = const n Rat.one
let terms p = p.terms

let coeff p m =
  match List.find_opt (fun (m', _) -> Monomial.equal m m') p.terms with
  | Some (_, c) -> c
  | None -> Rat.zero

let is_zero p = p.terms = []

let equal p q =
  p.nvars = q.nvars
  && List.length p.terms = List.length q.terms
  && List.for_all2
       (fun (m, c) (m', c') -> Monomial.equal m m' && Rat.equal c c')
       p.terms q.terms

let check_arity p q = if p.nvars <> q.nvars then invalid_arg "Qpoly: arity mismatch"

(* merge of two sorted term lists *)
let add p q =
  check_arity p q;
  let rec go a b =
    match (a, b) with
    | [], r | r, [] -> r
    | (ma, ca) :: ta, (mb, cb) :: tb ->
        let c = Monomial.compare ma mb in
        if c < 0 then (ma, ca) :: go ta b
        else if c > 0 then (mb, cb) :: go a tb
        else begin
          let s = Rat.add ca cb in
          if Rat.sign s = 0 then go ta tb else (ma, s) :: go ta tb
        end
  in
  { nvars = p.nvars; terms = go p.terms q.terms }

let neg p = { p with terms = List.map (fun (m, c) -> (m, Rat.neg c)) p.terms }
let sub p q = add p (neg q)

let scale c p =
  if Rat.sign c = 0 then zero p.nvars
  else { p with terms = List.map (fun (m, k) -> (m, Rat.mul c k)) p.terms }

let mul p q =
  check_arity p q;
  of_terms p.nvars
    (List.concat_map
       (fun (mp, cp) -> List.map (fun (mq, cq) -> (Monomial.mul mp mq, Rat.mul cp cq)) q.terms)
       p.terms)

let eval p x =
  if Array.length x <> p.nvars then invalid_arg "Qpoly.eval: arity mismatch";
  let pow b e =
    let r = ref Rat.one in
    for _ = 1 to e do r := Rat.mul !r b done;
    !r
  in
  List.fold_left
    (fun acc (m, c) ->
      let v = ref c in
      Array.iteri (fun i e -> if e > 0 then v := Rat.mul !v (pow x.(i) e)) m;
      Rat.add acc !v)
    Rat.zero p.terms

let partial i p =
  if i < 0 || i >= p.nvars then invalid_arg "Qpoly.partial: variable out of range";
  of_terms p.nvars
    (List.filter_map
       (fun ((m : Monomial.t), c) ->
         let e = m.(i) in
         if e = 0 then None
         else begin
           let m' = Array.copy m in
           m'.(i) <- e - 1;
           Some (m', Rat.mul (Rat.of_int e) c)
         end)
       p.terms)

let lie_derivative p f =
  if Array.length f <> p.nvars then invalid_arg "Qpoly.lie_derivative: arity mismatch";
  let acc = ref (zero p.nvars) in
  Array.iteri (fun i fi -> acc := add !acc (mul (partial i p) fi)) f;
  !acc

let fix_var i v p =
  if i < 0 || i >= p.nvars then invalid_arg "Qpoly.fix_var: variable out of range";
  let pow b e =
    let r = ref Rat.one in
    for _ = 1 to e do
      r := Rat.mul !r b
    done;
    !r
  in
  of_terms p.nvars
    (List.map
       (fun ((m : Monomial.t), c) ->
         let e = m.(i) in
         if e = 0 then (m, c)
         else begin
           let m' = Array.copy m in
           m'.(i) <- 0;
           (m', Rat.mul c (pow v e))
         end)
       p.terms)

let of_poly p =
  of_terms (Poly.nvars p) (List.map (fun (m, c) -> (m, Rat.of_float c)) (Poly.terms p))

let to_poly p =
  Poly.of_terms p.nvars (List.map (fun (m, c) -> (m, Rat.to_float c)) p.terms)

let gram_poly n basis g =
  let k = Array.length basis in
  let rows, cols = Qmat.dims g in
  if rows <> k || cols <> k then invalid_arg "Qpoly.gram_poly: dimension mismatch";
  let ts = ref [] in
  for i = 0 to k - 1 do
    if Monomial.arity basis.(i) <> n then invalid_arg "Qpoly.gram_poly: arity mismatch";
    for j = 0 to k - 1 do
      let c = Qmat.get g i j in
      if Rat.sign c <> 0 then ts := (Monomial.mul basis.(i) basis.(j), c) :: !ts
    done
  done;
  of_terms n !ts

let to_string ?names p =
  if is_zero p then "0"
  else
    String.concat " + "
      (List.map
         (fun (m, c) ->
           let ms = Monomial.to_string ?names m in
           if Monomial.degree m = 0 then Rat.to_string c
           else Rat.to_string c ^ "*" ^ ms)
         p.terms)

let pp fmt p = Format.pp_print_string fmt (to_string p)
