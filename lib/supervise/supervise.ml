(* Process-isolated solve supervision: forked workers with wall-clock
   timeouts and rlimit caps, a content-addressed solve cache with atomic
   writes, and a write-ahead journal for crash-safe resume. *)

let src = Logs.Src.create "supervise" ~doc:"Process-isolated solve supervision"

module Log = (val Logs.src_log src : Logs.LOG)

external set_mem_limit_mb : int -> int = "pll_supervise_set_mem_limit_mb"

(* ------------------------------------------------------------------ *)
(* Small filesystem helpers                                           *)
(* ------------------------------------------------------------------ *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
    end
  in
  go dir

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

(* Atomic durable write: temp file in the same directory, fsync, rename
   into place, fsync the directory. A crash at any point leaves either
   no entry or the complete one. *)
let write_atomic path content =
  let dir = Filename.dirname path in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let b = Bytes.of_string content in
      let n = Bytes.length b in
      let written = ref 0 in
      while !written < n do
        written := !written + Unix.write fd b !written (n - !written)
      done;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Process-level fault specs                                          *)
(* ------------------------------------------------------------------ *)

module Fault = struct
  type kind = Kill | Stall | Corrupt_cache
  type spec = { kind : kind; solve : int; iter : int }

  let to_string s =
    let site = if s.solve = 0 then "*" else string_of_int s.solve in
    match s.kind with
    | Kill -> Printf.sprintf "kill@%s:%d" site s.iter
    | Stall -> Printf.sprintf "stall@%s:%d" site s.iter
    | Corrupt_cache -> Printf.sprintf "corrupt-cache@%s" site

  let parse tok =
    match String.index_opt tok '@' with
    | None -> None
    | Some at -> (
        let kind_s = String.sub tok 0 at in
        let rest = String.sub tok (at + 1) (String.length tok - at - 1) in
        let parts = String.split_on_char ':' rest in
        let solve_of s = if s = "*" then Some 0 else int_of_string_opt s in
        let bad () =
          Some
            (Error
               (Printf.sprintf
                  "bad process-fault spec %S (want kill@S:I, stall@S:I or corrupt-cache@S)"
                  tok))
        in
        match (kind_s, parts) with
        | "kill", [ s; i ] -> (
            match (solve_of s, int_of_string_opt i) with
            | Some solve, Some iter -> Some (Ok { kind = Kill; solve; iter })
            | _ -> bad ())
        | "stall", [ s; i ] -> (
            match (solve_of s, int_of_string_opt i) with
            | Some solve, Some iter -> Some (Ok { kind = Stall; solve; iter })
            | _ -> bad ())
        | "corrupt-cache", [ s ] | "corrupt-cache", [ s; _ ] -> (
            match solve_of s with
            | Some solve -> Some (Ok { kind = Corrupt_cache; solve; iter = 0 })
            | None -> bad ())
        | ("kill" | "stall" | "corrupt-cache"), _ -> bad ()
        | _ -> None)

  let for_solve specs idx =
    List.find_opt (fun s -> s.solve = 0 || s.solve = idx) specs
end

(* ------------------------------------------------------------------ *)
(* Content-addressed solve cache                                      *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  type t = { dir : string }

  type entry_error =
    | Missing
    | Bad_header of string
    | Truncated of { expected : int; got : int }
    | Digest_mismatch
    | Decode_failure of string
    | Io_error of string

  let error_to_string = function
    | Missing -> "missing"
    | Bad_header h -> Printf.sprintf "bad header %S" h
    | Truncated { expected; got } ->
        Printf.sprintf "truncated (expected %d payload bytes, found %d)" expected got
    | Digest_mismatch -> "payload digest mismatch"
    | Decode_failure m -> Printf.sprintf "payload does not decode: %s" m
    | Io_error m -> Printf.sprintf "io error: %s" m

  let magic = "pll-solve-cache v1"

  let create ~dir =
    mkdir_p dir;
    { dir }

  let dir t = t.dir
  let path t ~key = Filename.concat t.dir (key ^ ".solve")

  let store t ~key (sol : Sdp.solution) =
    let payload = Marshal.to_string sol [] in
    let header =
      Printf.sprintf "%s %d %s\n" magic (String.length payload)
        (Digest.to_hex (Digest.string payload))
    in
    match write_atomic (path t ~key) (header ^ payload) with
    | () -> Ok ()
    | exception (Unix.Unix_error _ | Sys_error _) ->
        Error (Printf.sprintf "cannot write cache entry %s" key)

  let load t ~key =
    let file = path t ~key in
    if not (Sys.file_exists file) then Error Missing
    else
      match read_file file with
      | exception Sys_error m -> Error (Io_error m)
      | content -> (
          match String.index_opt content '\n' with
          | None -> Error (Bad_header content)
          | Some nl -> (
              let header = String.sub content 0 nl in
              match String.split_on_char ' ' header with
              | [ m1; m2; len_s; digest ] when m1 ^ " " ^ m2 = magic -> (
                  match int_of_string_opt len_s with
                  | None -> Error (Bad_header header)
                  | Some expected ->
                      let got = String.length content - nl - 1 in
                      if got <> expected then Error (Truncated { expected; got })
                      else
                        let payload = String.sub content (nl + 1) expected in
                        if Digest.to_hex (Digest.string payload) <> digest then
                          Error Digest_mismatch
                        else begin
                          match (Marshal.from_string payload 0 : Sdp.solution) with
                          | sol ->
                              (* Touch on hit: [gc]'s LRU order is entry
                                 mtime, so reads must refresh it. *)
                              (try Unix.utimes file 0.0 0.0
                               with Unix.Unix_error _ -> ());
                              Ok sol
                          | exception (Failure m | Invalid_argument m) ->
                              Error (Decode_failure m)
                        end)
              | _ -> Error (Bad_header header)))

  let corrupt t ~key =
    let file = path t ~key in
    match read_file file with
    | exception Sys_error _ -> false
    | content ->
        let keep = String.length content / 2 in
        let oc = open_out_bin file in
        output_string oc (String.sub content 0 keep);
        close_out oc;
        true

  (* ---- size-capped LRU eviction (the long-running-daemon story) ---- *)

  type gc_stats = {
    entries : int;
    bytes : int;
    evicted : int;
    evicted_bytes : int;
  }

  let entry_suffix = ".solve"

  let scan t =
    let names = try Sys.readdir t.dir with Sys_error _ -> [||] in
    let acc = ref [] in
    Array.iter
      (fun name ->
        if Filename.check_suffix name entry_suffix then begin
          let file = Filename.concat t.dir name in
          match Unix.stat file with
          | st -> acc := (name, st.Unix.st_mtime, st.Unix.st_size) :: !acc
          | exception Unix.Unix_error _ -> ()
        end)
      names;
    !acc

  let usage t =
    List.fold_left (fun (n, b) (_, _, sz) -> (n + 1, b + sz)) (0, 0) (scan t)

  let gc t ~max_bytes =
    (* Leftover tmp files (writers that crashed mid-store) age out too:
       they are invisible to the loader but not to the disk. *)
    let now = Unix.gettimeofday () in
    let is_stale_tmp name =
      (* write_atomic temp names are <key>.solve.tmp.<pid>. *)
      let marker = entry_suffix ^ ".tmp." in
      let nm = String.length marker and nn = String.length name in
      let rec has i = i + nm <= nn && (String.sub name i nm = marker || has (i + 1)) in
      has 0
    in
    Array.iter
      (fun name ->
        if is_stale_tmp name then
          let file = Filename.concat t.dir name in
          match Unix.stat file with
          | st when now -. st.Unix.st_mtime > 600.0 -> (
              try Sys.remove file with Sys_error _ -> ())
          | _ | (exception Unix.Unix_error _) -> ())
      (try Sys.readdir t.dir with Sys_error _ -> [||]);
    (* Oldest-mtime-first eviction, name as a deterministic tiebreak. *)
    let entries =
      List.sort
        (fun (n1, m1, _) (n2, m2, _) -> if m1 <> m2 then compare m1 m2 else compare n1 n2)
        (scan t)
    in
    let total = List.fold_left (fun b (_, _, sz) -> b + sz) 0 entries in
    let rec evict kept_rev over = function
      | [] -> (List.rev kept_rev, over)
      | (name, _, sz) :: rest when over > 0 ->
          let file = Filename.concat t.dir name in
          let gone = try Sys.remove file; true with Sys_error _ -> false in
          if gone then evict kept_rev (over - sz) rest
          else evict ((name, sz) :: kept_rev) over rest
      | (name, _, sz) :: rest -> evict ((name, sz) :: kept_rev) over rest
    in
    let kept, remaining_over = evict [] (total - max_bytes) entries in
    ignore remaining_over;
    (* Make the deletions durable the same way stores are. *)
    fsync_dir t.dir;
    let bytes = List.fold_left (fun b (_, sz) -> b + sz) 0 kept in
    {
      entries = List.length kept;
      bytes;
      evicted = List.length entries - List.length kept;
      evicted_bytes = total - bytes;
    }
end

(* ------------------------------------------------------------------ *)
(* Write-ahead journal                                                *)
(* ------------------------------------------------------------------ *)

module Journal = struct
  type entry = {
    seq : int;
    key : string;
    source : string;
    status : string;
    wall_s : float;
    label : string;
  }

  type t = { oc : out_channel; fd : Unix.file_descr }

  let magic = "pll-run-journal v1"
  let path dir = Filename.concat dir "journal.log"

  (* Tolerant reader: a crash can truncate the final line; any
     unparseable line becomes a diagnosis, never an exception. *)
  let read dir =
    let file = path dir in
    if not (Sys.file_exists file) then ([], [])
    else
      match read_file file with
      | exception Sys_error m -> ([], [ Printf.sprintf "journal unreadable: %s" m ])
      | content ->
          let lines = String.split_on_char '\n' content in
          let entries = ref [] and diags = ref [] in
          List.iteri
            (fun lineno line ->
              if line <> "" then
                match String.split_on_char ' ' line with
                | _ when lineno = 0 && line = magic -> ()
                | "run" :: _ -> ()
                | "start" :: _ -> ()
                | "done" :: seq :: key :: source :: status :: wall :: label_words -> (
                    match (int_of_string_opt seq, float_of_string_opt wall) with
                    | Some seq, Some wall_s ->
                        entries :=
                          {
                            seq;
                            key;
                            source;
                            status;
                            wall_s;
                            label = String.concat " " label_words;
                          }
                          :: !entries
                    | _ ->
                        diags :=
                          Printf.sprintf "journal line %d malformed: %S" (lineno + 1)
                            line
                          :: !diags)
                | _ ->
                    diags :=
                      Printf.sprintf "journal line %d unrecognized: %S" (lineno + 1) line
                      :: !diags)
            lines;
          (List.rev !entries, List.rev !diags)

  let open_ dir =
    mkdir_p dir;
    let file = path dir in
    let fresh = not (Sys.file_exists file) in
    let oc = open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 file in
    let fd = Unix.descr_of_out_channel oc in
    if fresh then output_string oc (magic ^ "\n");
    Printf.fprintf oc "run %.3f %d\n" (Unix.gettimeofday ()) (Unix.getpid ());
    flush oc;
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    { oc; fd }

  let append t line =
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    (* The fsync is what makes the journal write-ahead: the [start] line
       is durable before the worker launches. *)
    try Unix.fsync t.fd with Unix.Unix_error _ -> ()

  let record_start t ~seq ~key ~label =
    append t (Printf.sprintf "start %d %s %s" seq key label)

  let record_done t ~seq ~key ~source ~status ~wall_s ~label =
    append t (Printf.sprintf "done %d %s %s %s %.6f %s" seq key source status wall_s label)
end

(* ------------------------------------------------------------------ *)
(* Advisory run-directory lock                                        *)
(* ------------------------------------------------------------------ *)

module Lock = struct
  type acquisition = Acquired | Reentrant | Stolen_stale of int

  let path dir = Filename.concat dir "cache.lock"

  (* Lock files released by at_exit of the acquiring process only: a
     forked worker leaves via [Unix._exit] and never touches the lock,
     so pool children cannot release their parent's claim. *)
  let held : (string, int) Hashtbl.t = Hashtbl.create 4

  let holder ~dir =
    match read_file (path dir) with
    | exception Sys_error _ -> None
    | content -> int_of_string_opt (String.trim content)

  let alive pid =
    match Unix.kill pid 0 with
    | () -> true
    | exception Unix.Unix_error (Unix.ESRCH, _, _) -> false
    | exception Unix.Unix_error (_, _, _) -> true (* EPERM etc.: someone owns it *)

  let release ~dir =
    let file = path dir in
    (match holder ~dir with
    | Some pid when pid = Unix.getpid () -> ( try Sys.remove file with Sys_error _ -> ())
    | _ -> ());
    Hashtbl.remove held file

  let diagnosis ~dir ~pid ~waited_s =
    Printf.sprintf
      "{\"error\":\"run-dir-locked\",\"dir\":\"%s\",\"lock\":\"%s\",\"holder_pid\":%d,\"waited_s\":%.1f,\"hint\":\"another process is using this run directory's solve cache; wait for it, pick a fresh --run-dir, or remove the lock file if the holder is gone\"}"
      (String.concat "/" (String.split_on_char '/' dir))
      (path dir) pid waited_s

  let acquire ~dir ?(wait_s = 0.0) () =
    mkdir_p dir;
    let file = path dir in
    let deadline = Unix.gettimeofday () +. wait_s in
    let rec go ~stole =
      match Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_EXCL ] 0o644 with
      | fd ->
          let payload = string_of_int (Unix.getpid ()) ^ "\n" in
          let b = Bytes.of_string payload in
          ignore (Unix.write fd b 0 (Bytes.length b));
          (try Unix.fsync fd with Unix.Unix_error _ -> ());
          Unix.close fd;
          if not (Hashtbl.mem held file) then begin
            Hashtbl.replace held file (Unix.getpid ());
            at_exit (fun () -> if Hashtbl.mem held file then release ~dir)
          end;
          Ok (match stole with Some pid -> Stolen_stale pid | None -> Acquired)
      | exception Unix.Unix_error (Unix.EEXIST, _, _) -> (
          match holder ~dir with
          | Some pid when pid = Unix.getpid () -> Ok Reentrant
          | Some pid when not (alive pid) -> (
              (* The holder died (kill -9, OOM): steal the stale lock.
                 The steal must itself be atomic — two contenders racing
                 the same stale pidfile must produce exactly one winner.
                 A bare remove-then-recreate is not: the slower stealer's
                 remove can delete the faster one's *fresh* lock. So the
                 stale file is renamed aside to a contender-unique claim
                 (atomic; exactly one rename of the inode succeeds) and
                 the claim's payload re-verified before the normal
                 O_EXCL creation race resumes. *)
              let claim = Printf.sprintf "%s.claim.%d" file (Unix.getpid ()) in
              match Unix.rename file claim with
              | exception Unix.Unix_error _ ->
                  (* Another contender renamed it first: re-examine. *)
                  go ~stole
              | () -> (
                  let claimed =
                    match read_file claim with
                    | exception Sys_error _ -> None
                    | content -> int_of_string_opt (String.trim content)
                  in
                  match claimed with
                  | Some p when not (alive p) ->
                      (try Sys.remove claim with Sys_error _ -> ());
                      Log.warn (fun k ->
                          k "stealing stale lock %s held by dead process %d" file p);
                      go ~stole:(Some p)
                  | _ ->
                      (* The dead holder was replaced by a live one
                         between our read and our rename: we grabbed a
                         valid lock by mistake. Put it back — [link]
                         never clobbers a lock recreated meanwhile — and
                         fall through to normal contention. *)
                      (try Unix.link claim file with Unix.Unix_error _ -> ());
                      (try Sys.remove claim with Sys_error _ -> ());
                      go ~stole))
          | Some pid ->
              if Unix.gettimeofday () < deadline then begin
                Unix.sleepf 0.05;
                go ~stole
              end
              else Error (diagnosis ~dir ~pid ~waited_s:wait_s)
          | None ->
              (* Lock vanished between EEXIST and the read: retry. *)
              go ~stole)
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "{\"error\":\"lock-io\",\"lock\":\"%s\",\"detail\":\"%s\"}" file
               (Unix.error_message e))
    in
    go ~stole:None
end

(* ------------------------------------------------------------------ *)
(* Run-configuration fingerprint guard                                *)
(* ------------------------------------------------------------------ *)

module Config_guard = struct
  type verdict = Fresh | Matched

  let magic = "pll-run-config v1"
  let path dir = Filename.concat dir "config.fp"

  (* First line magic, second the fingerprint digest, rest the
     human-readable summary of what was fingerprinted — so a refusal can
     show what the run directory was built with. *)
  let read dir =
    match read_file (path dir) with
    | exception Sys_error _ -> None
    | content -> (
        match String.split_on_char '\n' content with
        | m :: fp :: rest when m = magic ->
            Some (String.trim fp, String.trim (String.concat "\n" rest))
        | _ -> Some ("<unparseable>", content))

  let check ~run_dir ~fingerprint ~summary =
    let digest = Digest.to_hex (Digest.string fingerprint) in
    match read run_dir with
    | None -> (
        mkdir_p run_dir;
        match
          write_atomic (path run_dir)
            (Printf.sprintf "%s\n%s\n%s\n" magic digest summary)
        with
        | () -> Ok Fresh
        | exception (Unix.Unix_error _ | Sys_error _) ->
            Error
              (Printf.sprintf
                 "{\"error\":\"config-io\",\"detail\":\"cannot write %s\"}"
                 (path run_dir)))
    | Some (stored, stored_summary) ->
        if stored = digest then Ok Matched
        else
          Error
            (Printf.sprintf
               "{\"error\":\"config-drift\",\"run_dir\":\"%s\",\"stored\":\"%s\",\"requested\":\"%s\",\"stored_config\":\"%s\",\"requested_config\":\"%s\",\"hint\":\"these CLI arguments change the problem fingerprints; resuming would silently mix cache entries from different problems — rerun with the original arguments or use a fresh --run-dir\"}"
               run_dir stored digest
               (String.concat " " (String.split_on_char '\n' stored_summary))
               (String.concat " " (String.split_on_char '\n' summary)))
end

type stats = {
  mutable supervised : int;
  mutable forked : int;
  mutable inline_solves : int;
  mutable cache_hits : int;
  mutable cache_stores : int;
  mutable cache_rejects : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable pool_tasks : int;
}

type ctx = {
  jobs : int;
  solve_timeout_s : float option;
  mem_limit_mb : int option;
  isolate : bool;
  run_dir : string option;
  cache_ : Cache.t option;
  journal : Journal.t option;
  replayed : int;
  stats : stats;
  mutable seq : int;
  mutable in_worker : bool;
  mutable interrupted : bool;
}

exception Interrupted

let ncpus () = max 1 (Domain.recommended_domain_count ())

let fresh_stats () =
  {
    supervised = 0;
    forked = 0;
    inline_solves = 0;
    cache_hits = 0;
    cache_stores = 0;
    cache_rejects = 0;
    crashes = 0;
    timeouts = 0;
    pool_tasks = 0;
  }

let create ?run_dir ?jobs ?solve_timeout_s ?mem_limit_mb ?(isolate = true) () =
  let jobs = match jobs with Some j -> max 1 j | None -> ncpus () in
  let cache_, journal, replayed =
    match run_dir with
    | None -> (None, None, 0)
    | Some dir ->
        mkdir_p dir;
        mkdir_p (Filename.concat dir "artifacts");
        let completed, diags = Journal.read dir in
        List.iter (fun d -> Log.warn (fun k -> k "%s" d)) diags;
        let replayed =
          List.length
            (List.filter
               (fun (e : Journal.entry) -> e.source = "solved" || e.source = "cache")
               completed)
        in
        ( Some (Cache.create ~dir:(Filename.concat dir "cache")),
          Some (Journal.open_ dir),
          replayed )
  in
  {
    jobs;
    solve_timeout_s;
    mem_limit_mb;
    isolate;
    run_dir;
    cache_;
    journal;
    replayed;
    stats = fresh_stats ();
    seq = 0;
    in_worker = false;
    interrupted = false;
  }

let jobs ctx = ctx.jobs
let run_dir ctx = ctx.run_dir
let cache ctx = ctx.cache_
let stats ctx = ctx.stats
let in_worker ctx = ctx.in_worker
let replayed ctx = ctx.replayed
let interrupt ctx = ctx.interrupted <- true

let install_signal_handlers ctx =
  let handle _ = ctx.interrupted <- true in
  Sys.set_signal Sys.sigint (Sys.Signal_handle handle);
  Sys.set_signal Sys.sigterm (Sys.Signal_handle handle)

let check_interrupt ctx = if ctx.interrupted && not ctx.in_worker then raise Interrupted

(* ------------------------------------------------------------------ *)
(* Worker protocol                                                    *)
(* ------------------------------------------------------------------ *)

let temp_result_file ctx =
  match ctx.run_dir with
  | Some dir ->
      let tmp = Filename.concat dir "tmp" in
      mkdir_p tmp;
      Filename.temp_file ~temp_dir:tmp "worker" ".res"
  | None -> Filename.temp_file "pll-supervise" ".res"

let write_result file v =
  let payload = Marshal.to_string v [] in
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  let b = Bytes.of_string payload in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write fd b !written (n - !written)
  done;
  (try Unix.fsync fd with Unix.Unix_error _ -> ());
  Unix.close fd

let read_result file =
  match read_file file with
  | exception Sys_error m -> Error ("worker result unreadable: " ^ m)
  | "" -> Error "worker wrote no result"
  | payload -> (
      match Marshal.from_string payload 0 with
      | v -> Ok v
      | exception (Failure m | Invalid_argument m) ->
          Error ("worker result does not decode: " ^ m))

let cleanup file = try Sys.remove file with Sys_error _ -> ()

let rec waitpid_retry flags pid =
  try Unix.waitpid flags pid
  with Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry flags pid

let kill_and_reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (waitpid_retry [] pid)

(* Chain a process-fault trigger in front of the caller's hook, so the
   worker kills or wedges itself at the requested interior-point
   iteration. Runs in the child only. *)
let inject_proc_fault (pf : Fault.spec option) (params : Sdp.params) =
  match pf with
  | None | Some { Fault.kind = Fault.Corrupt_cache; _ } -> params
  | Some { Fault.kind; iter; _ } ->
      let inner = params.Sdp.on_iteration in
      let hook i =
        if i = iter then begin
          match kind with
          | Fault.Kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
          | Fault.Stall ->
              while true do
                Unix.sleepf 0.05
              done
          | Fault.Corrupt_cache -> ()
        end;
        match inner with Some h -> h i | None -> None
      in
      { params with Sdp.on_iteration = Some hook }

type worker_outcome =
  | W_done of Sdp.solution
  | W_crashed of string
  | W_timed_out of float

(* Fork, solve in the child, marshal the solution back through a temp
   file; reap on wall-clock timeout or interrupt. The child exits with
   [Unix._exit] so no parent at_exit/flush machinery runs twice. *)
let run_forked ctx ~proc_fault ?hint ~params prob =
  let file = temp_result_file ctx in
  flush stdout;
  flush stderr;
  ctx.stats.forked <- ctx.stats.forked + 1;
  match Unix.fork () with
  | 0 ->
      ctx.in_worker <- true;
      (match ctx.mem_limit_mb with
      | Some mb -> ignore (set_mem_limit_mb mb)
      | None -> ());
      let params = inject_proc_fault proc_fault params in
      (* The warm-start hint crosses the fork as inherited memory — no
         serialization needed. A throwaway session applies the standard
         discipline (bounded warm attempt, cold re-solve unless Optimal). *)
      let result =
        try
          Ok
            (match hint with
            | Some w -> Sdp.Session.solve (Sdp.Session.create ()) ~hint:w ~params prob
            | None -> Sdp.solve ~params prob)
        with e -> Error (Printexc.to_string e)
      in
      (try write_result file result with _ -> ());
      Unix._exit 0
  | pid ->
      let deadline =
        Option.map (fun t -> Unix.gettimeofday () +. t) ctx.solve_timeout_s
      in
      let t0 = Unix.gettimeofday () in
      let rec wait sleep =
        if ctx.interrupted then begin
          kill_and_reap pid;
          cleanup file;
          raise Interrupted
        end;
        match waitpid_retry [ Unix.WNOHANG ] pid with
        | 0, _ -> (
            match deadline with
            | Some d when Unix.gettimeofday () > d ->
                kill_and_reap pid;
                W_timed_out (Unix.gettimeofday () -. t0)
            | _ ->
                Unix.sleepf sleep;
                wait (Float.min 0.05 (sleep *. 1.5)))
        | _, Unix.WEXITED 0 -> (
            match read_result file with
            | Ok (Ok sol) -> W_done sol
            | Ok (Error e) -> W_crashed ("worker exception: " ^ e)
            | Error e -> W_crashed e)
        | _, Unix.WEXITED c -> W_crashed (Printf.sprintf "worker exited with code %d" c)
        | _, Unix.WSIGNALED sg ->
            W_crashed
              (if sg = Sys.sigkill then "worker killed by SIGKILL (crash or OOM-kill)"
               else Printf.sprintf "worker killed by signal %d" sg)
        | _, Unix.WSTOPPED sg -> (
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            ignore (waitpid_retry [] pid);
            W_crashed (Printf.sprintf "worker stopped by signal %d" sg))
      in
      let outcome = wait 0.002 in
      cleanup file;
      outcome

(* A synthetic solution for a crashed or reaped worker: correctly
   dimensioned, [best_score = infinity] so the resilience layer never
   salvages it, and a status the retry ladder already knows how to
   escalate from. *)
let failed_solution status (p : Sdp.problem) : Sdp.solution =
  {
    Sdp.status;
    x_blocks = Array.map (fun d -> Linalg.Mat.create d d) p.Sdp.block_dims;
    f = Array.make p.Sdp.n_free 0.0;
    y = Array.make (Array.length p.Sdp.constraints) 0.0;
    s_blocks = Array.map (fun d -> Linalg.Mat.create d d) p.Sdp.block_dims;
    primal_obj = Float.nan;
    dual_obj = Float.nan;
    gap = Float.infinity;
    primal_res = Float.infinity;
    dual_res = Float.infinity;
    iterations = 0;
    best_score = Float.infinity;
    trace = [];
    injected = 0;
  }

let status_string = function
  | Sdp.Optimal -> "optimal"
  | Sdp.Near_optimal -> "near_optimal"
  | Sdp.Primal_infeasible -> "primal_infeasible"
  | Sdp.Dual_infeasible -> "dual_infeasible"
  | Sdp.Max_iterations -> "max_iterations"
  | Sdp.Numerical_failure -> "numerical_failure"

(* ------------------------------------------------------------------ *)
(* The supervised solve                                               *)
(* ------------------------------------------------------------------ *)

let solve_sdp ctx ~label ?proc_fault ?session ?hint ?(params = Sdp.default_params) prob =
  check_interrupt ctx;
  let st = ctx.stats in
  st.supervised <- st.supervised + 1;
  ctx.seq <- ctx.seq + 1;
  let seq = ctx.seq in
  (* The cache key deliberately excludes [session]/[hint]: hints change
     the iterate path, never which request is being answered, so a
     cached result replays byte-identically whether or not the original
     solve was warm-started. *)
  let key = Sdp.fingerprint ~params prob in
  let cached =
    match ctx.cache_ with
    | None -> None
    | Some c -> (
        match Cache.load c ~key with
        | Ok sol -> Some sol
        | Error Cache.Missing -> None
        | Error err ->
            st.cache_rejects <- st.cache_rejects + 1;
            Log.warn (fun k ->
                k "cache entry %s for %S rejected (%s) — re-solving" key label
                  (Cache.error_to_string err));
            None)
  in
  match cached with
  | Some sol ->
      st.cache_hits <- st.cache_hits + 1;
      (* Replayed results still feed the session, so a resumed run
         rebuilds the same warm-start memory the original run had. *)
      (match session with Some s -> Sdp.Session.remember s prob sol | None -> ());
      (match ctx.journal with
      | Some j when not ctx.in_worker ->
          Journal.record_done j ~seq ~key ~source:"cache"
            ~status:(status_string sol.Sdp.status) ~wall_s:0.0 ~label
      | _ -> ());
      sol
  | None ->
      (match ctx.journal with
      | Some j when not ctx.in_worker -> Journal.record_start j ~seq ~key ~label
      | _ -> ());
      let hint =
        match hint with
        | Some _ -> hint
        | None -> ( match session with Some s -> Sdp.Session.hint_for s prob | None -> None)
      in
      let t0 = Unix.gettimeofday () in
      let sol, source =
        if ctx.in_worker || not ctx.isolate then begin
          st.inline_solves <- st.inline_solves + 1;
          ( (match session with
            | Some s -> Sdp.Session.solve s ?hint ~params prob
            | None -> (
                match hint with
                | Some w -> Sdp.Session.solve (Sdp.Session.create ()) ~hint:w ~params prob
                | None -> Sdp.solve ~params prob)),
            "solved" )
        end
        else
          match run_forked ctx ~proc_fault ?hint ~params prob with
          | W_done sol -> (sol, "solved")
          | W_crashed why ->
              st.crashes <- st.crashes + 1;
              Log.warn (fun k -> k "solve #%d %S: %s" seq label why);
              (failed_solution Sdp.Numerical_failure prob, "crash")
          | W_timed_out after ->
              st.timeouts <- st.timeouts + 1;
              Log.warn (fun k ->
                  k "solve #%d %S: worker reaped after %.1fs wall-clock timeout" seq
                    label after);
              (failed_solution Sdp.Max_iterations prob, "timeout")
      in
      let wall_s = Unix.gettimeofday () -. t0 in
      (* Forked results reach the parent's session here (the inline path
         already remembered through [Session.solve]); [remember] itself
         keeps only clean Optimal solutions. *)
      (if source = "solved" then
         match session with Some s -> Sdp.Session.remember s prob sol | None -> ());
      (* Only clean, uninterrupted solves are cached: a result shaped by
         an injected fault or a deadline interrupt is not a function of
         the request alone. *)
      (if source = "solved" && sol.Sdp.injected = 0 then
         match ctx.cache_ with
         | Some c -> (
             match Cache.store c ~key sol with
             | Ok () -> (
                 st.cache_stores <- st.cache_stores + 1;
                 match proc_fault with
                 | Some { Fault.kind = Fault.Corrupt_cache; _ } ->
                     ignore (Cache.corrupt c ~key);
                     Log.warn (fun k ->
                         k "fault injection: corrupted cache entry %s for solve #%d" key
                           seq)
                 | _ -> ())
             | Error e -> Log.warn (fun k -> k "%s" e))
         | None -> ());
      (match ctx.journal with
      | Some j when not ctx.in_worker ->
          Journal.record_done j ~seq ~key ~source
            ~status:(status_string sol.Sdp.status) ~wall_s ~label
      | _ -> ());
      sol

let save_artifact ctx ~name content =
  match ctx.run_dir with
  | None -> None
  | Some dir ->
      let safe =
        String.map (fun c -> if c = '/' || c = ' ' then '_' else c) name
      in
      let path = Filename.concat (Filename.concat dir "artifacts") safe in
      (match write_atomic path content with
      | () -> ()
      | exception (Unix.Unix_error _ | Sys_error _) ->
          Log.warn (fun k -> k "cannot persist artifact %s" path));
      Some path

let report_json ctx =
  let s = ctx.stats in
  Printf.sprintf
    "{\"jobs\":%d,\"run_dir\":%s,\"supervised\":%d,\"forked\":%d,\"inline\":%d,\"cache_hits\":%d,\"cache_stores\":%d,\"cache_rejects\":%d,\"crashes\":%d,\"timeouts\":%d,\"pool_tasks\":%d,\"replayed_on_open\":%d}"
    ctx.jobs
    (match ctx.run_dir with
    | None -> "null"
    | Some d -> Printf.sprintf "\"%s\"" (String.concat "\\\\" (String.split_on_char '\\' d)))
    s.supervised s.forked s.inline_solves s.cache_hits s.cache_stores s.cache_rejects
    s.crashes s.timeouts s.pool_tasks ctx.replayed

(* ------------------------------------------------------------------ *)
(* Bounded parallel fan-out                                           *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  let map ctx ~f items =
    let items = Array.of_list items in
    let n = Array.length items in
    if n = 0 then []
    else if ctx.in_worker then
      (* Already inside a worker: the isolation boundary exists, run
         inline (no nested forking). *)
      Array.to_list
        (Array.mapi
           (fun i x -> try Ok (f i x) with e -> Error (Printexc.to_string e))
           items)
    else begin
      check_interrupt ctx;
      ctx.stats.pool_tasks <- ctx.stats.pool_tasks + n;
      let results = Array.make n (Error "not run") in
      let running = Hashtbl.create 8 in
      let launch i =
        let file = temp_result_file ctx in
        flush stdout;
        flush stderr;
        ctx.stats.forked <- ctx.stats.forked + 1;
        match Unix.fork () with
        | 0 ->
            ctx.in_worker <- true;
            let r = try Ok (f i items.(i)) with e -> Error (Printexc.to_string e) in
            (try write_result file r with _ -> ());
            Unix._exit 0
        | pid -> Hashtbl.replace running pid (i, file)
      in
      let reap_one () =
        match (try Unix.wait () with Unix.Unix_error (Unix.EINTR, _, _) -> (0, Unix.WEXITED 0)) with
        | 0, _ -> ()
        | pid, st -> (
            match Hashtbl.find_opt running pid with
            | None -> ()
            | Some (i, file) ->
                Hashtbl.remove running pid;
                let r =
                  match st with
                  | Unix.WEXITED 0 -> (
                      match read_result file with Ok r -> r | Error e -> Error e)
                  | Unix.WEXITED c -> Error (Printf.sprintf "worker exited with code %d" c)
                  | Unix.WSIGNALED sg ->
                      Error (Printf.sprintf "worker killed by signal %d" sg)
                  | Unix.WSTOPPED sg ->
                      kill_and_reap pid;
                      Error (Printf.sprintf "worker stopped by signal %d" sg)
                in
                cleanup file;
                results.(i) <- r)
      in
      let next = ref 0 in
      (try
         while !next < n || Hashtbl.length running > 0 do
           if ctx.interrupted then begin
             Hashtbl.iter (fun pid _ -> kill_and_reap pid) running;
             Hashtbl.reset running;
             raise Interrupted
           end;
           if !next < n && Hashtbl.length running < ctx.jobs then begin
             launch !next;
             incr next
           end
           else reap_one ()
         done
       with e ->
         Hashtbl.iter (fun pid (_, file) -> kill_and_reap pid; cleanup file) running;
         raise e);
      Array.to_list results
    end
end
