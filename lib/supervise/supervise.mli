(** Process-isolated solve supervision: forked workers, a crash-safe run
    journal, and a content-addressed solve cache.

    The verification pipeline decomposes into many interior-point solves
    (per-mode Lyapunov certificates, bisection probes on the level β,
    advection and escape checks). Run in one process, a single hung or
    segfaulting solve loses the whole run; the {!Resilient} retry ladder
    only recovers failures the solver itself reports. This module adds
    the process-level layer:

    - {e fault isolation}: every supervised [Sdp.solve] runs in a forked
      worker with a wall-clock timeout and an optional address-space
      rlimit; a worker that crashes (nonzero exit, signal, OOM-kill) or
      stalls past its deadline is reaped with SIGKILL and reported as a
      failed attempt, which the retry ladder running in the parent can
      recover from;
    - {e parallel fan-out}: independent work items (per-mode inclusion
      checks, escape-certificate searches, exact re-validation
      conditions) run across a bounded worker pool ({!Pool.map},
      [--jobs N]);
    - {e crash-safe restartability}: every solve request is canonically
      serialized and hashed ({!Sdp.fingerprint}); clean results are
      written atomically (tmp + rename, fsync'd) into a content-
      addressed cache under the run directory, and a write-ahead journal
      records each solve's start and completion — so a killed run can be
      replayed with [--resume]: identical requests hash to cached
      results and are not re-solved;
    - {e process-level fault injection}: [kill@S:I] (worker SIGKILLs
      itself at interior-point iteration [I] of logical solve [S]),
      [stall@S:I] (worker wedges so the timeout reaper must act) and
      [corrupt-cache@S] (the entry stored for solve [S] is truncated
      after the write) exercise every recovery path deterministically.

    The run directory also reserves [artifacts/] for exact-certificate
    artifacts ({!save_artifact}), so SOS proofs found along the way
    survive crashes next to the solve cache that produced them.

    Only {e clean} results are cached: a solve in which any
    [on_iteration] intervention fired (injected fault, deadline
    interrupt) is machine- or plan-dependent and is always re-solved.

    Fork-based, Unix-only. A worker inherits the problem by fork (no
    request marshalling); only the [Sdp.solution] — plain data — crosses
    back, via [Marshal] into a temp file. Inside a pool worker, nested
    supervision degrades gracefully: solves run inline (the worker is
    already the isolation boundary) but still consult and populate the
    cache. *)

(** Process-level fault injection specs, parsed from the same fault-plan
    strings as {!Resilient.Faults} ([kill@S:I], [stall@S:I],
    [corrupt-cache@S]). *)
module Fault : sig
  type kind =
    | Kill  (** worker SIGKILLs itself at the trigger iteration *)
    | Stall  (** worker wedges (sleeps forever) at the trigger iteration *)
    | Corrupt_cache
        (** the cache entry stored for the target solve is truncated
            immediately after the atomic write *)

  type spec = {
    kind : kind;
    solve : int;  (** 1-based logical solve index; 0 = every solve *)
    iter : int;  (** trigger iteration for [Kill]/[Stall] *)
  }

  val parse : string -> (spec, string) result option
  (** [parse tok] is [None] when [tok] is not a process-fault spec (so a
      caller can fall through to in-process kinds), [Some (Ok s)] on a
      well-formed [kill@S:I] / [stall@S:I] / [corrupt-cache@S[:I]], and
      [Some (Error _)] on a malformed one. *)

  val to_string : spec -> string

  val for_solve : spec list -> int -> spec option
  (** The first spec targeting the given logical solve index, if any. *)
end

(** The content-addressed solve cache. Entries are
    [cache/<fingerprint>.solve] files: a one-line header carrying the
    payload length and digest, then the marshalled [Sdp.solution].
    Writes go to a temp file, are fsync'd and renamed into place, so a
    crash mid-write never leaves a readable-but-wrong entry. The loader
    re-verifies length and digest and returns a structured diagnosis —
    never raises — on truncated, corrupted or unreadable entries; the
    supervisor logs the diagnosis and re-solves. *)
module Cache : sig
  type t

  type entry_error =
    | Missing
    | Bad_header of string  (** malformed or wrong-version header line *)
    | Truncated of { expected : int; got : int }
    | Digest_mismatch
    | Decode_failure of string  (** header OK but payload does not unmarshal *)
    | Io_error of string

  val error_to_string : entry_error -> string

  val create : dir:string -> t
  (** Creates [dir] if needed. *)

  val dir : t -> string
  val path : t -> key:string -> string
  val store : t -> key:string -> Sdp.solution -> (unit, string) result
  val load : t -> key:string -> (Sdp.solution, entry_error) result

  val corrupt : t -> key:string -> bool
  (** Truncate the entry for [key] in place (deliberately non-atomic) —
      the [corrupt-cache] fault. [false] when no entry exists. *)

  (** What a {!gc} pass did. *)
  type gc_stats = {
    entries : int;  (** entries remaining after the pass *)
    bytes : int;  (** payload bytes remaining *)
    evicted : int;
    evicted_bytes : int;
  }

  val usage : t -> int * int
  (** [(entries, bytes)] currently stored. *)

  val gc : t -> max_bytes:int -> gc_stats
  (** Size-capped LRU eviction: entries are deleted oldest-access first
      (every {!load} hit refreshes its entry's mtime) until the cache
      fits in [max_bytes]; the directory is fsync'd afterwards so the
      deletions are as durable as the atomic stores were. Stale
      [*.tmp.*] droppings left by writers that crashed mid-store are
      removed too. Safe to run concurrently with readers and writers:
      eviction is per-entry unlink, and a racing store simply
      re-creates its entry. This is what keeps a long-running daemon's
      content-addressed cache bounded ([verifyd --cache-max-mb]). *)
end

(** The write-ahead run journal, [journal.log] in the run directory:
    line-oriented, one [start] line fsync'd before each solve launches
    and one [done] line after it completes (with its outcome source:
    [solved], [cache], [crash], [timeout]). Malformed lines — e.g. a
    line truncated by the crash that killed the run — are skipped with a
    structured diagnosis, never a raise. *)
module Journal : sig
  type entry = {
    seq : int;  (** supervised-solve sequence number within the run *)
    key : string;  (** solve-request fingerprint *)
    source : string;  (** [solved] or [cache] *)
    status : string;  (** final [Sdp.status] of the recorded solution *)
    wall_s : float;
    label : string;
  }

  val path : string -> string
  (** Journal file path for a run directory. *)

  val read : string -> entry list * string list
  (** [read run_dir] is the completed ([done]) entries of the journal,
      oldest first, plus one diagnosis per unparseable line. Missing
      journal reads as ([[], []]). *)
end

(** Advisory lock on a run directory, guarding its solve cache. Two
    processes sharing a [--run-dir] would interleave tmp+rename writes
    and journal appends; the lock makes the second either wait (bounded)
    or fail with a structured JSON diagnosis. The lock file
    ([cache.lock]) carries the holder's pid; a lock whose holder is dead
    (kill -9, OOM) is detected as stale and stolen, so a crashed run
    never wedges its successors. Purely advisory: only cooperating
    callers (the CLIs) consult it. Released via [at_exit] of the
    acquiring process; forked workers leave through [Unix._exit] and
    cannot release their parent's claim. *)
module Lock : sig
  type acquisition =
    | Acquired  (** fresh lock taken *)
    | Reentrant  (** this process already holds it *)
    | Stolen_stale of int  (** taken over from this dead pid *)

  val path : string -> string
  (** Lock-file path for a run directory. *)

  val acquire : dir:string -> ?wait_s:float -> unit -> (acquisition, string) result
  (** Try to take the lock, polling for up to [wait_s] (default 0:
      fail fast) while a live holder exists. [Error] carries a
      machine-readable JSON diagnosis naming the holder pid. *)

  val release : dir:string -> unit
  (** Remove the lock if this process holds it; no-op otherwise. *)

  val holder : dir:string -> int option
  (** Pid recorded in the lock file, if any. *)
end

(** Run-configuration drift guard. A run directory's cache keys are
    problem fingerprints; resuming with CLI arguments that change the
    problems (order, degree, grid, tolerances…) would silently mix cache
    entries from different sweeps. The guard stores a fingerprint of the
    problem-determining configuration in the run directory on first use
    and refuses — with a structured JSON diagnosis showing both
    configurations — when a later run's fingerprint differs. *)
module Config_guard : sig
  type verdict =
    | Fresh  (** no stored config: this run's fingerprint was recorded *)
    | Matched  (** stored config identical: safe to share the cache *)

  val path : string -> string
  (** Fingerprint-file path ([config.fp]) for a run directory. *)

  val check :
    run_dir:string -> fingerprint:string -> summary:string -> (verdict, string) result
  (** [fingerprint] is any canonical single-line rendering of the
      problem-determining configuration; [summary] a human-readable
      version stored alongside for diagnostics. *)
end

type stats = {
  mutable supervised : int;  (** supervised solve requests *)
  mutable forked : int;  (** worker processes launched *)
  mutable inline_solves : int;  (** solves run inline inside a pool worker *)
  mutable cache_hits : int;
  mutable cache_stores : int;
  mutable cache_rejects : int;  (** corrupt/truncated entries rejected, then re-solved *)
  mutable crashes : int;  (** workers that died by signal or nonzero exit *)
  mutable timeouts : int;  (** workers reaped past the wall-clock budget *)
  mutable pool_tasks : int;  (** items executed through {!Pool.map} *)
}

type ctx
(** A supervision context: settings, counters, and (optionally) the run
    directory holding cache + journal + artifacts. *)

exception Interrupted
(** Raised at the next supervision point after {!interrupt} (or a
    SIGINT/SIGTERM once {!install_signal_handlers} ran): in-flight
    workers are SIGKILLed first, and everything already completed is on
    disk — the run can be resumed. *)

val ncpus : unit -> int
(** Best-effort available-core count (the [--jobs] default). *)

val create :
  ?run_dir:string ->
  ?jobs:int ->
  ?solve_timeout_s:float ->
  ?mem_limit_mb:int ->
  ?isolate:bool ->
  unit ->
  ctx
(** Fresh context. [run_dir], when given, is created along with its
    [cache/] and [artifacts/] subdirectories and write-ahead journal;
    without it there is no persistence (isolation and pooling still
    work). [jobs] defaults to {!ncpus}; [isolate] (default [true])
    controls whether individual solves fork workers — with [false] only
    the cache/journal layer is active. *)

val jobs : ctx -> int
val run_dir : ctx -> string option
val cache : ctx -> Cache.t option
val stats : ctx -> stats
val in_worker : ctx -> bool

val replayed : ctx -> int
(** Completed solves already on record in the journal when this context
    opened the run directory — what [--resume] will replay from cache. *)

val interrupt : ctx -> unit
(** Request a graceful checkpoint-and-exit: the next supervision point
    kills in-flight workers and raises {!Interrupted}. Safe from a
    signal handler. *)

val install_signal_handlers : ctx -> unit
(** Route SIGINT/SIGTERM to {!interrupt}. *)

val solve_sdp :
  ctx ->
  label:string ->
  ?proc_fault:Fault.spec ->
  ?session:Sdp.Session.t ->
  ?hint:Sdp.warm_start ->
  ?params:Sdp.params ->
  Sdp.problem ->
  Sdp.solution
(** The supervised [Sdp.solve]: fingerprint the request, return the
    cached solution on a hit (rejecting corrupt entries with a logged
    diagnosis), otherwise journal the start, run the solve in a forked
    worker under the timeout/rlimit (inline when [isolate] is off or
    already inside a pool worker), store a clean result atomically, and
    journal completion. A crashed worker yields a synthetic
    [Numerical_failure] solution, a timed-out one [Max_iterations] —
    with [best_score = infinity] so they are never salvaged — letting
    the caller's retry ladder escalate exactly as for in-process
    failures. Never raises on worker trouble; raises {!Interrupted} only
    after {!interrupt}.

    [session]/[hint] add warm-start support without touching the cache
    identity: the fingerprint is computed from [(params, problem)]
    alone, so whether a result was produced warm or cold never changes
    which cache entry answers the request — [-jN] and [--resume]
    determinism are preserved. The hint (explicit, or the session's
    remembered capsule for this structure) crosses the worker fork as
    inherited memory; the worker applies the standard session
    discipline, and the parent feeds clean results (including cache
    replays) back into [session]'s memory. *)

val save_artifact : ctx -> name:string -> string -> string option
(** Atomically persist serialized proof-artifact text under
    [artifacts/<name>] in the run directory (the {!Exact.Artifact}
    integration point). Returns the path written, or [None] without a
    run directory. *)

val report_json : ctx -> string
(** Machine-readable supervision report: jobs, counters, replay count. *)

(** Bounded parallel fan-out over independent work items. *)
module Pool : sig
  val map : ctx -> f:(int -> 'a -> 'b) -> 'a list -> ('b, string) result list
  (** [map ctx ~f items] runs [f i item] for each item across at most
      {!jobs} forked workers and returns the results in item order.
      [f]'s result must be marshal-safe (plain data, no closures). A
      worker that raises, crashes or is killed yields [Error] for its
      item only. Called from inside a pool worker it degrades to an
      inline sequential map (no nested forking). The fork is taken even
      for [jobs = 1], so [-j 1] and [-j N] traverse the same code path
      and produce identical reports. Raises {!Interrupted} (after
      killing outstanding workers) if an interrupt arrives mid-run. *)
end
