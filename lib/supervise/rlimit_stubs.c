/* Address-space rlimit for solve workers. Called in the child between
   fork and the solve, so a runaway interior-point solve hits the cap
   and dies (malloc failure -> Out_of_memory or abort) instead of
   dragging the whole machine into swap. Best effort: returns 0 on
   success, nonzero when the platform refuses the limit. */

#include <caml/mlvalues.h>

#ifdef _WIN32

CAMLprim value pll_supervise_set_mem_limit_mb(value mb)
{
  (void)mb;
  return Val_int(1);
}

#else

#include <sys/resource.h>

CAMLprim value pll_supervise_set_mem_limit_mb(value mb)
{
  struct rlimit rl;
  rlim_t bytes = (rlim_t)Long_val(mb) * 1024 * 1024;
  rl.rlim_cur = bytes;
  rl.rlim_max = bytes;
  return Val_int(setrlimit(RLIMIT_AS, &rl) == 0 ? 0 : 1);
}

#endif
