(** Semidefinite programming by a primal–dual interior-point method.

    Solves block-diagonal SDPs in the standard primal form

    {v
      minimize    <C, X> + c_f' f
      subject to  <A_i, X> + B_i f = b_i     (i = 1..m)
                  X ⪰ 0 (block-diagonal),  f ∈ R^nf free
    v}

    with the corresponding dual

    {v
      maximize    b' y
      subject to  Σ y_i A_i + S = C,  S ⪰ 0,  B' y = c_f.
    v}

    The implementation is a Mehrotra predictor–corrector using the HKM
    search direction; free variables are handled natively by block
    elimination of the saddle-point Schur system (no difference-of-
    nonnegatives splitting). This is the engine behind the {!Sos}
    relaxation layer; it replaces the external MATLAB/YALMIP solver used
    in the paper.

    Sparsity: constraint matrices are given as upper-triangular entry
    lists; the Schur complement is assembled block-wise exploiting that
    sparsity, so problems with hundreds of constraints over blocks of
    order ≤ 10² solve in milliseconds-to-seconds. *)

type block_entry = { blk : int; row : int; col : int; value : float }
(** One entry of a symmetric block matrix. [row <= col] is required; an
    off-diagonal entry [(row, col, v)] stands for the symmetric pair, so
    its contribution to [<A, X>] is [2 * v * X.(row).(col)]. *)

type constr = {
  lhs : block_entry list;  (** entries of the [A_i] blocks *)
  free : (int * float) list;  (** sparse row [B_i] over the free variables *)
  rhs : float;  (** [b_i] *)
}

type problem = {
  block_dims : int array;  (** orders of the PSD blocks *)
  n_free : int;  (** number of free scalar variables *)
  constraints : constr array;
  obj_blocks : block_entry list;  (** entries of [C] *)
  obj_free : (int * float) list;  (** [c_f] *)
}

type status =
  | Optimal  (** converged to the requested tolerance *)
  | Near_optimal  (** converged to a relaxed tolerance *)
  | Primal_infeasible  (** heuristic certificate of primal infeasibility *)
  | Dual_infeasible  (** heuristic certificate of dual infeasibility *)
  | Max_iterations  (** iteration limit hit before convergence *)
  | Numerical_failure  (** search direction computation broke down *)

type solution = {
  status : status;
  x_blocks : Linalg.Mat.t array;  (** primal blocks [X] *)
  f : Linalg.Vec.t;  (** primal free variables *)
  y : Linalg.Vec.t;  (** dual multipliers *)
  s_blocks : Linalg.Mat.t array;  (** dual slacks [S] *)
  primal_obj : float;
  dual_obj : float;
  gap : float;  (** relative duality gap *)
  primal_res : float;  (** relative primal residual norm *)
  dual_res : float;  (** relative dual residual norm *)
  iterations : int;  (** iterations attempted, on every status including
                         [Numerical_failure] — retry ladders and failure
                         diagnoses read it directly *)
  best_score : float;
      (** smallest [max(gap, primal_res, dual_res)] over all iterates
          seen — the quality of the salvageable best iterate
          ([infinity] when the solve broke before completing one
          iteration) *)
  trace : (int * float * float * float) list;
      (** per-iteration [(iter, gap, primal_res, dual_res)], oldest
          first — the convergence history survives failures, so
          diagnostics never have to re-derive residual norms *)
  injected : int;
      (** number of [on_iteration] interventions (injected faults or
          deadline interrupts) that fired during this solve *)
}

(** Interventions a {!params.on_iteration} callback can request — the
    hook used both by the fault-injection harness ({!Resilient.Faults})
    and by deadline enforcement. *)
type fault =
  | Fail_now  (** abort as if the search direction computation broke
                  down: status [Numerical_failure], current residuals
                  and iteration count reported *)
  | Stop_now  (** stop as if the iteration limit were reached: the best
                  iterate seen is salvaged and classified *)
  | Perturb of float
      (** add deterministic symmetric pseudo-noise of this relative
          magnitude to the primal iterate (Gram noise injection) *)

type params = {
  max_iter : int;  (** default 150 *)
  tol_gap : float;  (** relative gap for [Optimal]; default 1e-8 *)
  tol_res : float;  (** relative residuals for [Optimal]; default 1e-8 *)
  near_factor : float;
      (** [Near_optimal] accepts [near_factor] times looser; default 1e3 *)
  step_frac : float;  (** fraction-to-the-boundary; default 0.98 *)
  init_scale : float;
      (** scales the identity starting point — jittered deterministic
          restarts for the retry ladder; default 1.0 *)
  equilibrate : bool;
      (** Jacobi-equilibrate the block rows/columns before solving and
          map the solution back exactly; default false *)
  on_iteration : (int -> fault option) option;
      (** consulted at the top of every iteration; default [None] *)
  verbose : bool;  (** log per-iteration progress; default false *)
}

val default_params : params

type warm_start
(** A warm-start capsule: a strictly-feasibility-shiftable iterate
    [(X, S, y, f)] from a prior solution, tagged with the
    {!structure_fingerprint} of the problem it came from. Capsules are
    pure data (no closures) and survive [Marshal], so they can be
    shipped to forked workers. *)

val structure_fingerprint : problem -> string
(** Hex digest of the problem's {e shape} only: block dimensions, free
    variable count, and the sparsity pattern (positions, not values) of
    every constraint and the objective. Neighbouring sweep points and
    bisection rungs differ only in entry values, so they share a
    structure fingerprint — the key under which warm-start capsules are
    exchanged. *)

val warm_start_of_solution : problem -> solution -> warm_start option
(** Package a solution of [problem] as a warm-start capsule, or [None]
    when the iterate is unusable (dimension mismatch, non-finite
    entries). *)

val warm_start_structure : warm_start -> string
(** The {!structure_fingerprint} the capsule was recorded under. *)

val solve : ?params:params -> ?warm:warm_start -> problem -> solution
(** Solve the SDP. Never raises on numerical trouble; inspect
    [solution.status]. Raises [Invalid_argument] on malformed input
    (out-of-range indices, [row > col]).

    [warm], when present and matching this problem's
    {!structure_fingerprint}, seeds the interior-point iteration from
    the capsule's iterate shifted strictly inside the cone; a
    mismatched or numerically unsound capsule is silently ignored
    (cold start), so hints can never change what is solvable. Most
    callers should prefer {!Session.solve}, which adds the
    accept-only-[Optimal] fallback discipline. *)

(** Stateful solver sessions: remember the last clean solution per
    problem structure and warm-start subsequent solves of the same
    shape (bisection rungs, sweep continuation). The discipline that
    keeps sessions invisible to callers: a warm attempt runs on a
    reduced iteration budget and is accepted only when [Optimal] —
    anything else triggers a cold re-solve with the caller's exact
    params, so statuses, salvage scores, and failure diagnoses are
    always those of an honest solve. Only clean solutions ([Optimal]
    with no injected faults) are remembered, and jitter rungs
    ([init_scale <> 1.0]) skip hints since they exist to start from a
    {e different} point. *)
module Session : sig
  type t

  type counters = {
    warm_accepted : int;  (** warm attempts that converged and were kept *)
    warm_rejected : int;  (** warm attempts discarded for a cold re-solve *)
    cold_solves : int;  (** solves run cold (no hint, or after rejection) *)
  }

  val create : ?params:params -> unit -> t
  (** Fresh session with no memory. [params] (default {!default_params})
      is the fallback when {!solve} is called without [?params]. *)

  val totals : unit -> counters
  (** Process-wide counter sums across every session — benchmark and
      report accounting (sessions are created deep inside per-phase
      configs, so the global sum is the cheap outside view). *)

  val params : t -> params

  val counters : t -> counters

  val solve : t -> ?hint:warm_start -> ?params:params -> problem -> solution
  (** Solve through the session. The hint used is [?hint] when its
      structure matches the problem, else the session's remembered
      capsule for this structure, else none (cold). The returned
      solution is remembered for future solves when clean. *)

  val hint_for : t -> problem -> warm_start option
  (** The capsule the session would use for this problem, if any —
      callers that dispatch solves to external workers ({!Supervise})
      fetch it here and ship it alongside the problem. *)

  val remember : t -> problem -> solution -> unit
  (** Feed an externally-obtained solution (cache hit, forked worker
      result) into the session's memory; ignored unless clean. *)

  val remember_capsule : t -> warm_start -> unit
  (** Feed a ready-made capsule into the session's memory — the path
      for pool workers, which marshal capsules back to the parent
      because live solutions' problems stay in the child. The producer
      must only capture clean ([Optimal], fault-free) solves. *)
end

val canonical_serialization : ?params:params -> problem -> string
(** Canonical, byte-deterministic text form of a solve request: the
    problem data plus every result-relevant solver parameter ([max_iter],
    tolerances, [near_factor], [step_frac], [init_scale], [equilibrate]),
    with floats in exact hexadecimal notation. [on_iteration] and
    [verbose] are excluded — they do not affect what a clean solve
    returns. Two requests serialize identically iff the solver sees
    bit-identical inputs, which makes this the cache key of the
    {!Supervise} content-addressed solve cache. *)

val fingerprint : ?params:params -> problem -> string
(** Hex digest of {!canonical_serialization} — the content address of a
    solve request. *)

val solve_count : unit -> int
(** Process-wide number of {!solve} calls so far (cheap throughput
    accounting for benchmarks and supervision reports). *)

val iteration_count : unit -> int
(** Process-wide number of interior-point iterations attempted so far —
    the warm-start payoff shows up here (and in [bench ab] deltas) even
    when solve counts are unchanged. *)

val to_sdpa : problem -> string
(** Serialize the problem in the sparse SDPA format (.dat-s), the lingua
    franca of SDP solvers (CSDP/SDPA/SDPT3) — handy for cross-checking
    this solver against an external one. Free variables are rewritten as
    differences of two nonnegative (1x1-block) variables, the standard
    SDPA encoding. *)

val feasibility_margin : problem -> solution -> float
(** A posteriori check: the largest violation [|<A_i,X>+B_i f − b_i|]
    over all constraints, using the returned (unscaled) solution.
    Independent of the solver's internal scaling, so suitable for sound
    certificate validation. *)
