module Mat = Linalg.Mat
module Vec = Linalg.Vec

let src = Logs.Src.create "sdp" ~doc:"interior-point SDP solver"

module Log = (val Logs.src_log src : Logs.LOG)

type block_entry = { blk : int; row : int; col : int; value : float }

type constr = {
  lhs : block_entry list;
  free : (int * float) list;
  rhs : float;
}

type problem = {
  block_dims : int array;
  n_free : int;
  constraints : constr array;
  obj_blocks : block_entry list;
  obj_free : (int * float) list;
}

type status =
  | Optimal
  | Near_optimal
  | Primal_infeasible
  | Dual_infeasible
  | Max_iterations
  | Numerical_failure

type solution = {
  status : status;
  x_blocks : Mat.t array;
  f : Vec.t;
  y : Vec.t;
  s_blocks : Mat.t array;
  primal_obj : float;
  dual_obj : float;
  gap : float;
  primal_res : float;
  dual_res : float;
  iterations : int;
  best_score : float;
  trace : (int * float * float * float) list;
  injected : int;
}

type fault =
  | Fail_now
  | Stop_now
  | Perturb of float

type params = {
  max_iter : int;
  tol_gap : float;
  tol_res : float;
  near_factor : float;
  step_frac : float;
  init_scale : float;
  equilibrate : bool;
  on_iteration : (int -> fault option) option;
  verbose : bool;
}

let default_params =
  {
    max_iter = 150;
    tol_gap = 1e-8;
    tol_res = 1e-8;
    near_factor = 1e3;
    step_frac = 0.98;
    init_scale = 1.0;
    equilibrate = false;
    on_iteration = None;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Internal representation: per-constraint, per-block sparse entries.  *)

type sparse_block = { entries : (int * int * float) array; touched : int array }
(* [entries] are upper-triangular (row <= col); [touched] is the sorted
   set of row/col indices occurring, used to bound dense products. *)

let sparse_block_of_entries dim entries =
  let touched = Hashtbl.create 8 in
  List.iter
    (fun (r, c, _) ->
      if r < 0 || c >= dim || r > c then invalid_arg "Sdp: bad block entry";
      Hashtbl.replace touched r ();
      Hashtbl.replace touched c ())
    entries;
  let t = Hashtbl.fold (fun k () acc -> k :: acc) touched [] in
  { entries = Array.of_list entries; touched = Array.of_list (List.sort compare t) }

(* <A, W> for symmetric sparse A and a dense (not necessarily symmetric) W. *)
let sb_dot sb (w : Mat.t) =
  let wd = w.Mat.data and n = w.Mat.cols in
  Array.fold_left
    (fun acc (r, c, v) ->
      if r = c then acc +. (v *. Array.unsafe_get wd ((r * n) + r))
      else
        acc
        +. (v
           *. (Array.unsafe_get wd ((r * n) + c) +. Array.unsafe_get wd ((c * n) + r))))
    0.0 sb.entries

(* W <- W + scale * A for symmetric sparse A, dense W. *)
let sb_add_to sb scale (w : Mat.t) =
  Array.iter
    (fun (r, c, v) ->
      Mat.set w r c (Mat.get w r c +. (scale *. v));
      if r <> c then Mat.set w c r (Mat.get w c r +. (scale *. v)))
    sb.entries

(* X * (A * Sinv) for sparse symmetric A: cost O(|touched| * n^2). The
   nonzero rows of P = A * Sinv are packed into one dense panel indexed
   by the touched set, so both the scatter (rows of Sinv) and the gather
   (rows of X against the panel) stream contiguous memory. *)
let sb_sandwich sb (x : Mat.t) (sinv : Mat.t) =
  let n = x.Mat.rows in
  let touched = sb.touched in
  let nt = Array.length touched in
  let slot = Array.make n (-1) in
  Array.iteri (fun k t -> slot.(t) <- k) touched;
  let p = Array.make (nt * n) 0.0 in
  let sd = sinv.Mat.data in
  Array.iter
    (fun (r, c, v) ->
      let pr = slot.(r) * n and rc = c * n in
      for j = 0 to n - 1 do
        Array.unsafe_set p (pr + j)
          (Array.unsafe_get p (pr + j) +. (v *. Array.unsafe_get sd (rc + j)))
      done;
      if r <> c then begin
        let pc = slot.(c) * n and rr = r * n in
        for j = 0 to n - 1 do
          Array.unsafe_set p (pc + j)
            (Array.unsafe_get p (pc + j) +. (v *. Array.unsafe_get sd (rr + j)))
        done
      end)
    sb.entries;
  let w = Mat.create n n in
  let wd = w.Mat.data and xd = x.Mat.data in
  for i = 0 to n - 1 do
    let row = i * n in
    for k = 0 to nt - 1 do
      let xit = Array.unsafe_get xd (row + Array.unsafe_get touched k) in
      if xit <> 0.0 then begin
        let prow = k * n in
        for j = 0 to n - 1 do
          Array.unsafe_set wd (row + j)
            (Array.unsafe_get wd (row + j) +. (xit *. Array.unsafe_get p (prow + j)))
        done
      end
    done
  done;
  w

type internal = {
  p : problem;
  m : int;
  nb : int; (* number of blocks *)
  n_total : int;
  (* per constraint i, per block b: sparse data (possibly empty) *)
  cons_blocks : sparse_block array array;
  (* per block: indices of constraints touching it *)
  block_cons : int array array;
  b_vec : Vec.t; (* scaled rhs *)
  b_mat : Mat.t; (* m x nf dense free-variable matrix, scaled *)
  c_blocks : sparse_block array;
  c_free : Vec.t;
  scales : Vec.t; (* per-constraint normalization *)
}

let build_internal p =
  let m = Array.length p.constraints in
  let nb = Array.length p.block_dims in
  let n_total = Array.fold_left ( + ) 0 p.block_dims in
  let scales =
    Array.map
      (fun c ->
        let s = ref 0.0 in
        List.iter
          (fun e ->
            let w = if e.row = e.col then e.value *. e.value else 2.0 *. e.value *. e.value in
            s := !s +. w)
          c.lhs;
        List.iter (fun (_, v) -> s := !s +. (v *. v)) c.free;
        Float.max 1e-8 (sqrt !s))
      p.constraints
  in
  let cons_blocks =
    Array.mapi
      (fun i c ->
        let per_block = Array.make nb [] in
        List.iter
          (fun e ->
            if e.blk < 0 || e.blk >= nb then invalid_arg "Sdp: block index out of range";
            per_block.(e.blk) <- (e.row, e.col, e.value /. scales.(i)) :: per_block.(e.blk))
          c.lhs;
        Array.mapi (fun b l -> sparse_block_of_entries p.block_dims.(b) l) per_block)
      p.constraints
  in
  let block_cons =
    Array.init nb (fun b ->
        let l = ref [] in
        for i = m - 1 downto 0 do
          if Array.length cons_blocks.(i).(b).entries > 0 then l := i :: !l
        done;
        Array.of_list !l)
  in
  let b_vec = Array.init m (fun i -> p.constraints.(i).rhs /. scales.(i)) in
  let b_mat = Mat.create m p.n_free in
  Array.iteri
    (fun i c ->
      List.iter
        (fun (k, v) ->
          if k < 0 || k >= p.n_free then invalid_arg "Sdp: free index out of range";
          Mat.set b_mat i k (v /. scales.(i)))
        c.free)
    p.constraints;
  let c_per_block = Array.make nb [] in
  List.iter
    (fun e -> c_per_block.(e.blk) <- (e.row, e.col, e.value) :: c_per_block.(e.blk))
    p.obj_blocks;
  let c_blocks = Array.mapi (fun b l -> sparse_block_of_entries p.block_dims.(b) l) c_per_block in
  let c_free = Array.make p.n_free 0.0 in
  List.iter (fun (k, v) -> c_free.(k) <- c_free.(k) +. v) p.obj_free;
  { p; m; nb; n_total; cons_blocks; block_cons; b_vec; b_mat; c_blocks; c_free; scales }

(* A(X): vector of <A_i, X> over all blocks. *)
let op_a it x_blocks =
  Array.init it.m (fun i ->
      let s = ref 0.0 in
      for b = 0 to it.nb - 1 do
        let sb = it.cons_blocks.(i).(b) in
        if Array.length sb.entries > 0 then s := !s +. sb_dot sb x_blocks.(b)
      done;
      !s)

(* A*(y): block-diagonal dense accumulation. *)
let op_a_star it y =
  Array.init it.nb (fun b ->
      let w = Mat.create it.p.block_dims.(b) it.p.block_dims.(b) in
      Array.iter
        (fun i ->
          if y.(i) <> 0.0 then sb_add_to it.cons_blocks.(i).(b) y.(i) w)
        it.block_cons.(b);
      w)

let dense_c it =
  Array.init it.nb (fun b ->
      let w = Mat.create it.p.block_dims.(b) it.p.block_dims.(b) in
      sb_add_to it.c_blocks.(b) 1.0 w;
      w)

(* Cholesky with escalating regularization. *)
let robust_chol a =
  let rec go reg tries =
    if tries = 0 then None
    else
      match Mat.cholesky ~reg a with
      | Some l -> Some l
      | None -> go (if reg = 0.0 then 1e-12 *. (1.0 +. Mat.norm_inf a) else reg *. 100.0) (tries - 1)
  in
  go 0.0 8

(* L^{-1} W L^{-T} for lower-triangular Cholesky factor L, as two
   forward-substitution sweeps over whole row panels (the second on the
   transpose), so the inner loops run over contiguous rows. *)
let chol_congruence (l : Mat.t) (w : Mat.t) =
  let n = l.Mat.rows in
  let ld = l.Mat.data in
  let forward_panel (m : Mat.t) =
    let md = m.Mat.data in
    for i = 0 to n - 1 do
      let ri = i * n in
      for k = 0 to i - 1 do
        let lik = Array.unsafe_get ld (ri + k) in
        if lik <> 0.0 then begin
          let rk = k * n in
          for j = 0 to n - 1 do
            Array.unsafe_set md (ri + j)
              (Array.unsafe_get md (ri + j) -. (lik *. Array.unsafe_get md (rk + j)))
          done
        end
      done;
      let d = Array.unsafe_get ld (ri + i) in
      for j = 0 to n - 1 do
        Array.unsafe_set md (ri + j) (Array.unsafe_get md (ri + j) /. d)
      done
    done
  in
  (* U = L^{-1} W *)
  let u = Mat.copy w in
  forward_panel u;
  (* V = U L^{-T} = (L^{-1} U^T)^T *)
  let ut = Mat.transpose u in
  forward_panel ut;
  Mat.transpose ut

(* Largest alpha in (0, 1] with X + alpha * dX >= 0 (to a fraction). *)
let max_step ~frac (x : Mat.t) (l : Mat.t) (dx : Mat.t) =
  ignore x;
  let t = Mat.symmetrize (chol_congruence l dx) in
  let lam_min = Mat.min_eig t in
  if lam_min >= 0.0 then 1.0 else Float.min 1.0 (-.frac /. lam_min)

(* ------------------------------------------------------------------ *)
(* Warm-start capsules: a strictly-feasible-shifted iterate from a prior
   solve, keyed by a structure fingerprint so it is only ever applied to
   a problem with the same block dimensions and sparsity pattern.       *)

(* Digest of the problem's *shape* only — block dims, free-variable
   count, and the (blk,row,col) sparsity pattern of every constraint and
   of the objective. Entry values are deliberately excluded: two
   bisection rungs or neighbouring sweep cells differ only in values and
   must share a fingerprint so one's iterate can seed the other. *)
let structure_fingerprint p =
  let buf = Buffer.create 2048 in
  let adds = Buffer.add_string buf in
  adds "pll-sdp-structure v1\nblocks";
  Array.iter (fun d -> adds (Printf.sprintf " %d" d)) p.block_dims;
  adds (Printf.sprintf "\nfree %d\n" p.n_free);
  Array.iter
    (fun c ->
      adds "A";
      List.iter (fun e -> adds (Printf.sprintf " %d:%d:%d" e.blk e.row e.col)) c.lhs;
      adds "\nB";
      List.iter (fun (k, _) -> adds (Printf.sprintf " %d" k)) c.free;
      Buffer.add_char buf '\n')
    p.constraints;
  adds "C";
  List.iter (fun e -> adds (Printf.sprintf " %d:%d:%d" e.blk e.row e.col)) p.obj_blocks;
  adds "\ncf";
  List.iter (fun (k, _) -> adds (Printf.sprintf " %d" k)) p.obj_free;
  Buffer.add_char buf '\n';
  Digest.to_hex (Digest.string (Buffer.contents buf))

type warm_start = {
  ws_structure : string;
  ws_x : Mat.t array;
  ws_s : Mat.t array;
  ws_y : float array;  (* multipliers in the original (unscaled) problem *)
  ws_f : float array;
}

let warm_start_structure w = w.ws_structure

let capsule_shape_ok p w =
  let nb = Array.length p.block_dims in
  Array.length w.ws_x = nb
  && Array.length w.ws_s = nb
  && Array.length w.ws_y = Array.length p.constraints
  && Array.length w.ws_f = p.n_free
  &&
  let ok = ref true in
  for b = 0 to nb - 1 do
    if
      w.ws_x.(b).Mat.rows <> p.block_dims.(b)
      || w.ws_s.(b).Mat.rows <> p.block_dims.(b)
    then ok := false
  done;
  !ok

let capsule_finite w =
  let mat_ok (m : Mat.t) = Array.for_all Float.is_finite m.Mat.data in
  Array.for_all mat_ok w.ws_x
  && Array.for_all mat_ok w.ws_s
  && Array.for_all Float.is_finite w.ws_y
  && Array.for_all Float.is_finite w.ws_f

let warm_start_of_solution p (sol : solution) =
  let w =
    {
      ws_structure = structure_fingerprint p;
      ws_x = Array.map Mat.copy sol.x_blocks;
      ws_s = Array.map Mat.copy sol.s_blocks;
      ws_y = Array.copy sol.y;
      ws_f = Array.copy sol.f;
    }
  in
  if capsule_shape_ok p w && capsule_finite w then Some w else None

(* Shift a prior iterate strictly inside the PSD cone: M + λI with λ
   chosen so the smallest eigenvalue clears a floor relative to the
   block's scale. The floor also pushes the pair back off the central
   path boundary, so the first warm iterations have room to move. *)
let warm_interior_floor = 1e-3

let shift_strictly_feasible (m : Mat.t) =
  let d = m.Mat.rows in
  if d = 0 then Mat.copy m
  else begin
    let lam = Mat.min_eig m in
    let scale = 1.0 +. (Float.max 0.0 (Mat.trace m) /. float_of_int d) in
    let floor_ = warm_interior_floor *. scale in
    let add = Float.max 0.0 (floor_ -. lam) in
    let out = Mat.copy m in
    for i = 0 to d - 1 do
      Mat.set out i i (Mat.get out i i +. add)
    done;
    out
  end

(* Process-wide interior-point iteration counter (throughput accounting
   for `bench ab` deltas; forked workers report their own counts). *)
let iterations_total = ref 0

let iteration_count () = !iterations_total

(* Deterministic pseudo-noise in [-1, 1] for fault injection — a fixed
   integer hash of the coordinates, so injected perturbations replay
   identically across runs. *)
let pseudo_noise iter b i j =
  let h =
    (iter * 0x9E3779B1) lxor (b * 0x85EBCA6B) lxor (i * 0xC2B2AE35) lxor (j * 0x27D4EB2F)
  in
  let h = h lxor (h lsr 15) in
  (float_of_int (h land 0xFFFFFF) /. float_of_int 0xFFFFFF *. 2.0) -. 1.0

let solve_core ?(params = default_params) ?warm p =
  let it = build_internal p in
  let m = it.m and nb = it.nb and nf = p.n_free in
  let dims = p.block_dims in
  let n_total = Float.max 1.0 (float_of_int it.n_total) in
  let c_dense = dense_c it in
  (* Initial point: either the cold scaled-identity pair, or a prior
     iterate shifted strictly inside the cone. The capsule carries
     multipliers in the original scaling; internally constraints are
     normalized, so y_i picks up the per-constraint scale factor. *)
  let norm_b = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 it.b_vec in
  let norm_c =
    Array.fold_left (fun a w -> Float.max a (Mat.norm_inf w)) 0.0 c_dense
    |> Float.max (Vec.norm_inf it.c_free)
  in
  let x, s, y, f =
    match warm with
    | Some w when capsule_shape_ok p w ->
        ( Array.map shift_strictly_feasible w.ws_x,
          Array.map shift_strictly_feasible w.ws_s,
          Array.init m (fun i -> w.ws_y.(i) *. it.scales.(i)),
          Array.copy w.ws_f )
    | _ ->
        let xi = params.init_scale *. Float.max 10.0 (2.0 *. norm_b) in
        let eta = params.init_scale *. Float.max 10.0 (2.0 *. (norm_c +. 1.0)) in
        ( Array.init nb (fun b -> Mat.scale xi (Mat.identity dims.(b))),
          Array.init nb (fun b -> Mat.scale eta (Mat.identity dims.(b))),
          Array.make m 0.0,
          Array.make nf 0.0 )
  in
  let trace_rev = ref [] in
  let injected = ref 0 in
  (* Forward declaration: best_score lives below but [result] reads it. *)
  let best_score = ref infinity in
  let result status iter =
    (* Rescale multipliers back to the original constraint scaling. *)
    let y_orig = Array.init m (fun i -> y.(i) /. it.scales.(i)) in
    let ax = op_a it x in
    let bf = Mat.mul_vec it.b_mat f in
    let pres =
      let r = Array.init m (fun i -> it.b_vec.(i) -. ax.(i) -. bf.(i)) in
      Vec.norm2 r /. (1.0 +. Vec.norm2 it.b_vec)
    in
    let asy = op_a_star it y in
    let dres =
      let block_part =
        Array.init nb (fun b ->
            Mat.norm_fro (Mat.sub (Mat.sub c_dense.(b) s.(b)) asy.(b)))
        |> Array.fold_left Float.max 0.0
      in
      let free_part = Vec.norm2 (Vec.sub it.c_free (Mat.tmul_vec it.b_mat y)) in
      Float.max block_part free_part /. (1.0 +. norm_c)
    in
    let pobj =
      Array.fold_left ( +. ) (Vec.dot it.c_free f)
        (Array.init nb (fun b -> Mat.frob_dot c_dense.(b) x.(b)))
    in
    let dobj = Vec.dot it.b_vec y in
    let gap = Float.abs (pobj -. dobj) /. (1.0 +. Float.max (Float.abs pobj) (Float.abs dobj)) in
    {
      status;
      x_blocks = Array.map Mat.copy x;
      f = Array.copy f;
      y = y_orig;
      s_blocks = Array.map Mat.copy s;
      primal_obj = pobj;
      dual_obj = dobj;
      gap;
      primal_res = pres;
      dual_res = dres;
      iterations = iter;
      best_score = !best_score;
      trace = List.rev !trace_rev;
      injected = !injected;
    }
  in
  let exception Done of solution in
  (* Best-iterate tracking: interior-point iterations can overshoot the
     numerically attainable accuracy floor and then diverge; we keep the
     best iterate seen and fall back to it. *)
  let best_state = ref None in
  let maybe_snapshot score =
    if score < !best_score then begin
      best_score := score;
      best_state :=
        Some (Array.map Mat.copy x, Array.map Mat.copy s, Array.copy y, Array.copy f)
    end
  in
  let restore_best () =
    match !best_state with
    | None -> ()
    | Some (bx, bs, by, bf) ->
        Array.blit bx 0 x 0 nb;
        Array.blit bs 0 s 0 nb;
        Array.blit by 0 y 0 m;
        Array.blit bf 0 f 0 nf
  in
  let classify_best iter =
    restore_best ();
    let status =
      if !best_score <= Float.max params.tol_gap params.tol_res then Optimal
      else if !best_score <= params.near_factor *. Float.max params.tol_gap params.tol_res
      then Near_optimal
      else Max_iterations
    in
    result status iter
  in
  try
     for iter = 1 to params.max_iter do
       incr iterations_total;
       (* Injected faults and deadline interrupts (resilience layer). *)
       (match params.on_iteration with
       | None -> ()
       | Some hook -> (
           match hook iter with
           | None -> ()
           | Some action -> (
               incr injected;
               match action with
               | Fail_now -> raise (Done (result Numerical_failure iter))
               | Stop_now -> raise (Done (classify_best iter))
               | Perturb mag ->
                   (* Symmetric deterministic noise on the primal iterate;
                      magnitude is relative to each block's scale. *)
                   for b = 0 to nb - 1 do
                     let xb = x.(b) in
                     let scale = mag *. (1.0 +. Mat.norm_inf xb) in
                     let d = dims.(b) in
                     for i = 0 to d - 1 do
                       for j = i to d - 1 do
                         let u = scale *. pseudo_noise iter b i j in
                         Mat.set xb i j (Mat.get xb i j +. u);
                         if i <> j then Mat.set xb j i (Mat.get xb j i +. u)
                       done
                     done
                   done)));
       (* Factor S blocks; compute S^{-1}. *)
       let s_chol =
         Array.map
           (fun sb ->
             match robust_chol sb with
             | Some l -> l
             | None -> raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter)))
           s
       in
       let s_inv = Array.map Mat.chol_inverse s_chol in
       let x_chol =
         Array.map
           (fun xb ->
             match robust_chol xb with
             | Some l -> l
             | None -> raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter)))
           x
       in
       (* Residuals. *)
       let ax = op_a it x in
       let bf = Mat.mul_vec it.b_mat f in
       let r_p = Array.init m (fun i -> it.b_vec.(i) -. ax.(i) -. bf.(i)) in
       let asy = op_a_star it y in
       let r_d = Array.init nb (fun b -> Mat.sub (Mat.sub c_dense.(b) s.(b)) asy.(b)) in
       let r_f = Vec.sub it.c_free (Mat.tmul_vec it.b_mat y) in
       let mu =
         Array.init nb (fun b -> Mat.frob_dot x.(b) s.(b))
         |> Array.fold_left ( +. ) 0.0
         |> fun t -> t /. n_total
       in
       let pobj =
         Array.fold_left ( +. ) (Vec.dot it.c_free f)
           (Array.init nb (fun b -> Mat.frob_dot c_dense.(b) x.(b)))
       in
       let dobj = Vec.dot it.b_vec y in
       let gap = Float.abs (pobj -. dobj) /. (1.0 +. Float.max (Float.abs pobj) (Float.abs dobj)) in
       let pres = Vec.norm2 r_p /. (1.0 +. Vec.norm2 it.b_vec) in
       let dres =
         let bp = Array.fold_left (fun a w -> Float.max a (Mat.norm_fro w)) 0.0 r_d in
         Float.max bp (Vec.norm2 r_f) /. (1.0 +. norm_c)
       in
       if params.verbose then
         Log.app (fun k ->
             k "iter %3d  mu %.3e  gap %.3e  pres %.3e  dres %.3e  pobj %.6e" iter mu gap
               pres dres pobj);
       trace_rev := (iter, gap, pres, dres) :: !trace_rev;
       if gap <= params.tol_gap && pres <= params.tol_res && dres <= params.tol_res then
         raise (Done (result Optimal iter));
       let score = Float.max gap (Float.max pres dres) in
       maybe_snapshot score;
       (* Diverging past a converged iterate: fall back to the best one. *)
       if score > 1e4 *. !best_score && !best_score < 1e-4 then
         raise (Done (classify_best iter));
       (* Crude infeasibility detection. *)
       if Float.abs dobj > 1e9 *. (1.0 +. norm_b) && dres <= 1e-6 then
         raise (Done (result Primal_infeasible iter));
       if Float.abs pobj > 1e9 *. (1.0 +. norm_c) && pres <= 1e-6 then
         raise (Done (result Dual_infeasible iter));
       (* Schur complement M_ij = sum_b <A_i, X A_j Sinv>. Two regimes
          per block: when the constraints touching the block are sparse
          (the SOS coefficient-matching case, ~3 entries each), the
          pair sums are evaluated directly from per-constraint panels
          P_i = A_i Sinv restricted to touched rows — W_i = X P_i is
          never materialized, so the n^2 gather per constraint
          disappears. Dense blocks fall back to the sandwich-and-dot
          path. *)
       let mmat = Mat.create m m in
       let md = mmat.Mat.data in
       let w_cache = Array.make m None in
       for b = 0 to nb - 1 do
         let idx = it.block_cons.(b) in
         let ni = Array.length idx in
         if ni > 0 then begin
           let n = dims.(b) in
           let tot_nnz = ref 0 in
           Array.iter
             (fun i ->
               tot_nnz := !tot_nnz + Array.length it.cons_blocks.(i).(b).entries)
             idx;
           if !tot_nnz < 2 * n * n then begin
             let xd = x.(b).Mat.data and sd = s_inv.(b).Mat.data in
             (* slot.(t) is only ever read for t in the *current*
                constraint's touched set, so one scratch array per block
                needs no resetting between constraints. *)
             let slot = Array.make n 0 in
             (* Transposed panel per constraint: pt.((j*nt)+k) is
                (A_i Sinv)[touched_i.(k), j], so the on-demand dots
                stream it contiguously. *)
             let panels =
               Array.map
                 (fun i ->
                   let sb = it.cons_blocks.(i).(b) in
                   let nt = Array.length sb.touched in
                   Array.iteri (fun k t -> slot.(t) <- k) sb.touched;
                   let p = Array.make (n * nt) 0.0 in
                   Array.iter
                     (fun (r, c, v) ->
                       let sr = slot.(r) in
                       let rc = c * n in
                       for j = 0 to n - 1 do
                         let o = (j * nt) + sr in
                         Array.unsafe_set p o
                           (Array.unsafe_get p o
                           +. (v *. Array.unsafe_get sd (rc + j)))
                       done;
                       if r <> c then begin
                         let sc = slot.(c) in
                         let rr = r * n in
                         for j = 0 to n - 1 do
                           let o = (j * nt) + sc in
                           Array.unsafe_set p o
                             (Array.unsafe_get p o
                             +. (v *. Array.unsafe_get sd (rr + j)))
                         done
                       end)
                     sb.entries;
                   p)
                 idx
             in
             (* W_i[r,c] = sum_k X[r, touched_i.(k)] * pt_i[(c*nt)+k]. *)
             for ii = 0 to ni - 1 do
               let i = idx.(ii) in
               let sbi = it.cons_blocks.(i).(b) in
               let nt = Array.length sbi.touched in
               let tch = sbi.touched and pt = panels.(ii) in
               let w_entry r c =
                 let rr = r * n and cnt = c * nt in
                 let acc = ref 0.0 in
                 for k = 0 to nt - 1 do
                   acc :=
                     !acc
                     +. Array.unsafe_get xd (rr + Array.unsafe_get tch k)
                        *. Array.unsafe_get pt (cnt + k)
                 done;
                 !acc
               in
               for jj = ii to ni - 1 do
                 let j = idx.(jj) in
                 let acc = ref 0.0 in
                 Array.iter
                   (fun (r, c, v) ->
                     if r = c then acc := !acc +. (v *. w_entry r r)
                     else acc := !acc +. (v *. (w_entry r c +. w_entry c r)))
                   it.cons_blocks.(j).(b).entries;
                 let o = (i * m) + j in
                 Array.unsafe_set md o (Array.unsafe_get md o +. !acc)
               done
             done
           end
           else begin
             Array.iter
               (fun i ->
                 let w = sb_sandwich it.cons_blocks.(i).(b) x.(b) s_inv.(b) in
                 w_cache.(i) <- Some w)
               idx;
             Array.iter
               (fun i ->
                 match w_cache.(i) with
                 | None -> ()
                 | Some wi ->
                     Array.iter
                       (fun j ->
                         if j >= i then begin
                           let v = sb_dot it.cons_blocks.(j).(b) wi in
                           Mat.set mmat i j (Mat.get mmat i j +. v)
                         end)
                       idx)
               idx;
             Array.iter (fun i -> w_cache.(i) <- None) idx
           end
         end
       done;
       for i = 0 to m - 1 do
         for j = 0 to i - 1 do
           Mat.set mmat i j (Mat.get mmat j i)
         done
       done;
       let m_chol =
         match robust_chol mmat with
         | Some l -> l
         | None -> raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter))
       in
       (* Saddle solve shared by predictor and corrector. The reduced
          free-variable system K = B' M^-1 B depends only on m_chol, so
          it is assembled and factored once per iteration and reused by
          both solve_direction calls. *)
       let k_solve =
         if nf = 0 then fun _ -> [||]
         else begin
           let minv_b = Mat.chol_solve_mat m_chol it.b_mat in
           let k = Mat.mul (Mat.transpose it.b_mat) minv_b in
           let kreg = 1e-12 *. (1.0 +. Mat.norm_inf k) in
           for d = 0 to nf - 1 do
             Mat.set k d d (Mat.get k d d +. kreg)
           done;
           match robust_chol k with
           | Some k_chol -> Mat.chol_solve k_chol
           | None -> Mat.solve k
         end
       in
       let solve_direction rhs_g =
         if nf = 0 then (Mat.chol_solve m_chol rhs_g, [||])
         else begin
           let minv_g = Mat.chol_solve m_chol rhs_g in
           let rhs_f = Vec.sub (Mat.tmul_vec it.b_mat minv_g) r_f in
           let df = k_solve rhs_f in
           let dy = Mat.chol_solve m_chol (Vec.sub rhs_g (Mat.mul_vec it.b_mat df)) in
           (dy, df)
         end
       in
       (* F_b = X R_d Sinv per block (shared). *)
       let f_term = Array.init nb (fun b -> Mat.mul x.(b) (Mat.mul r_d.(b) s_inv.(b))) in
       let direction e_blocks =
         (* g = r_p - A(E) + A(F) *)
         let ae = op_a it e_blocks in
         let af = op_a it f_term in
         let g = Array.init m (fun i -> r_p.(i) -. ae.(i) +. af.(i)) in
         let dy, df = solve_direction g in
         let a_star_dy = op_a_star it dy in
         let ds = Array.init nb (fun b -> Mat.sub r_d.(b) a_star_dy.(b)) in
         let dx =
           Array.init nb (fun b ->
               Mat.symmetrize
                 (Mat.sub e_blocks.(b) (Mat.mul x.(b) (Mat.mul ds.(b) s_inv.(b)))))
         in
         (dx, ds, dy, df)
       in
       (* Predictor: E = -X. *)
       let e_aff = Array.map Mat.neg x in
       let dx_a, ds_a, _, _ = direction e_aff in
       let alpha_p_aff =
         Array.init nb (fun b -> max_step ~frac:1.0 x.(b) x_chol.(b) dx_a.(b))
         |> Array.fold_left Float.min 1.0
       in
       let alpha_d_aff =
         Array.init nb (fun b -> max_step ~frac:1.0 s.(b) s_chol.(b) ds_a.(b))
         |> Array.fold_left Float.min 1.0
       in
       let mu_aff =
         Array.init nb (fun b ->
             let xn = Mat.add x.(b) (Mat.scale alpha_p_aff dx_a.(b)) in
             let sn = Mat.add s.(b) (Mat.scale alpha_d_aff ds_a.(b)) in
             Mat.frob_dot xn sn)
         |> Array.fold_left ( +. ) 0.0
         |> fun t -> t /. n_total
       in
       let sigma =
         let r = mu_aff /. Float.max mu 1e-300 in
         Float.min 0.9 (Float.max 1e-6 (r *. r *. r))
       in
       (* Corrector: E = sigma*mu*Sinv - X - dXa dSa Sinv. *)
       let e_corr =
         Array.init nb (fun b ->
             let corr = Mat.mul dx_a.(b) (Mat.mul ds_a.(b) s_inv.(b)) in
             Mat.sub (Mat.sub (Mat.scale (sigma *. mu) s_inv.(b)) x.(b)) corr)
       in
       let dx, ds, dy, df = direction e_corr in
       let alpha_p =
         Array.init nb (fun b -> max_step ~frac:params.step_frac x.(b) x_chol.(b) dx.(b))
         |> Array.fold_left Float.min 1.0
       in
       let alpha_d =
         Array.init nb (fun b -> max_step ~frac:params.step_frac s.(b) s_chol.(b) ds.(b))
         |> Array.fold_left Float.min 1.0
       in
       if alpha_p < 1e-10 && alpha_d < 1e-10 then
         raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter));
       for b = 0 to nb - 1 do
         x.(b) <- Mat.symmetrize (Mat.add x.(b) (Mat.scale alpha_p dx.(b)));
         s.(b) <- Mat.symmetrize (Mat.add s.(b) (Mat.scale alpha_d ds.(b)))
       done;
       Vec.axpy alpha_d dy y;
       Vec.axpy alpha_p df f
     done;
     (* Iteration limit: return the best iterate seen, suitably classified. *)
     classify_best params.max_iter
  with Done r -> r

(* ------------------------------------------------------------------ *)
(* Jacobi equilibration: per-block diagonal scaling D chosen from the
   largest |entry| touching each row across all constraint and objective
   matrices. The scaled problem has A'_i = D A_i D, C' = D C D; its
   solution maps back exactly by X = D X' D, S = D^{-1} S' D^{-1} with y
   and f unchanged, so objective values and primal feasibility are
   preserved on the original data. Used as a retry-ladder rung for
   ill-conditioned instances. *)

let equilibration_scales p =
  let w = Array.map (fun d -> Array.make d 0.0) p.block_dims in
  let touch (e : block_entry) =
    let a = Float.abs e.value in
    let wb = w.(e.blk) in
    if a > wb.(e.row) then wb.(e.row) <- a;
    if a > wb.(e.col) then wb.(e.col) <- a
  in
  Array.iter (fun c -> List.iter touch c.lhs) p.constraints;
  List.iter touch p.obj_blocks;
  Array.map
    (Array.map (fun v ->
         if v <= 1e-12 then 1.0 else Float.min 1e4 (Float.max 1e-4 (1.0 /. sqrt v))))
    w

let equilibrate_problem p d =
  let scale_entry (e : block_entry) =
    { e with value = e.value *. d.(e.blk).(e.row) *. d.(e.blk).(e.col) }
  in
  {
    p with
    constraints =
      Array.map (fun c -> { c with lhs = List.map scale_entry c.lhs }) p.constraints;
    obj_blocks = List.map scale_entry p.obj_blocks;
  }

let unscale_solution d sol =
  let congruence f b (m : Mat.t) =
    Mat.init m.Mat.rows m.Mat.rows (fun i j -> f d.(b).(i) *. f d.(b).(j) *. Mat.get m i j)
  in
  {
    sol with
    x_blocks = Array.mapi (congruence (fun v -> v)) sol.x_blocks;
    s_blocks = Array.mapi (congruence (fun v -> 1.0 /. v)) sol.s_blocks;
  }

(* Process-wide count of interior-point solves, for cheap throughput
   accounting (bench --json, supervision reports). *)
let solves_total = ref 0

let solve_count () = !solves_total

(* Map a warm capsule into equilibrated coordinates. The solved problem
   has X = D X' D and S = D^{-1} S' D^{-1} (see [unscale_solution]), so a
   capsule recorded on original data enters the scaled solve as
   X' = D^{-1} X D^{-1}, S' = D S D; y and f are unchanged. *)
let equilibrate_capsule d w =
  let congruence f b (m : Mat.t) =
    Mat.init m.Mat.rows m.Mat.rows (fun i j -> f d.(b).(i) *. f d.(b).(j) *. Mat.get m i j)
  in
  {
    w with
    ws_x = Array.mapi (congruence (fun v -> 1.0 /. v)) w.ws_x;
    ws_s = Array.mapi (congruence (fun v -> v)) w.ws_s;
  }

let solve ?(params = default_params) ?warm p =
  incr solves_total;
  (* A capsule is applied only when it matches this problem's structure
     and is numerically sound; anything else silently degrades to a cold
     start so hints can never change what is solvable. *)
  let warm =
    match warm with
    | Some w
      when String.equal w.ws_structure (structure_fingerprint p)
           && capsule_shape_ok p w && capsule_finite w ->
        Some w
    | _ -> None
  in
  if not params.equilibrate then solve_core ~params ?warm p
  else begin
    let d = equilibration_scales p in
    let warm = Option.map (equilibrate_capsule d) warm in
    let sol = solve_core ~params ?warm (equilibrate_problem p d) in
    unscale_solution d sol
  end

(* Canonical, byte-deterministic serialization of (problem, solve-relevant
   params) — the content-addressed identity of a solve request. Floats are
   printed in hexadecimal notation (%h), which round-trips exactly, so two
   requests share a fingerprint iff the solver would see bit-identical
   inputs. [on_iteration] and [verbose] are deliberately excluded: hooks
   (deadlines, fault injection) and logging do not change what a clean,
   uninterrupted solve returns. *)
let canonical_serialization ?(params = default_params) p =
  let buf = Buffer.create 4096 in
  let adds = Buffer.add_string buf in
  adds "pll-sdp-problem v1\nblocks";
  Array.iter (fun d -> adds (Printf.sprintf " %d" d)) p.block_dims;
  adds (Printf.sprintf "\nfree %d\n" p.n_free);
  let add_entries tag entries =
    adds tag;
    List.iter
      (fun e -> adds (Printf.sprintf " %d:%d:%d:%h" e.blk e.row e.col e.value))
      entries;
    Buffer.add_char buf '\n'
  in
  Array.iter
    (fun c ->
      add_entries "A" c.lhs;
      adds "B";
      List.iter (fun (k, v) -> adds (Printf.sprintf " %d:%h" k v)) c.free;
      adds (Printf.sprintf "\nb %h\n" c.rhs))
    p.constraints;
  add_entries "C" p.obj_blocks;
  adds "cf";
  List.iter (fun (k, v) -> adds (Printf.sprintf " %d:%h" k v)) p.obj_free;
  adds
    (Printf.sprintf "\nparams %d %h %h %h %h %h %b\n" params.max_iter params.tol_gap
       params.tol_res params.near_factor params.step_frac params.init_scale
       params.equilibrate);
  Buffer.contents buf

let fingerprint ?params p = Digest.to_hex (Digest.string (canonical_serialization ?params p))

let to_sdpa p =
  let buf = Buffer.create 4096 in
  let m = Array.length p.constraints in
  let nb = Array.length p.block_dims in
  let nf = p.n_free in
  (* Free variables become a diagonal block of size 2*nf (u - v split). *)
  let nblocks = if nf > 0 then nb + 1 else nb in
  Buffer.add_string buf (Printf.sprintf "%d = mDIM\n" m);
  Buffer.add_string buf (Printf.sprintf "%d = nBLOCK\n" nblocks);
  let dims =
    Array.to_list (Array.map string_of_int p.block_dims)
    @ (if nf > 0 then [ string_of_int (-2 * nf) ] else [])
  in
  Buffer.add_string buf ("(" ^ String.concat ", " dims ^ ") = bLOCKsTRUCT\n");
  Buffer.add_string buf
    (String.concat " "
       (Array.to_list (Array.map (fun c -> Printf.sprintf "%.17g" c.rhs) p.constraints))
    ^ "\n");
  (* Entry lines: <matno> <blkno> <i> <j> <value>, 1-indexed; matno 0 is
     the objective (SDPA convention: F0, with max tr(F0 Y) duality — we
     emit C directly; sign conventions documented in the header). *)
  let emit matno blk i j v =
    if v <> 0.0 then
      Buffer.add_string buf (Printf.sprintf "%d %d %d %d %.17g\n" matno (blk + 1) (i + 1) (j + 1) v)
  in
  List.iter (fun e -> emit 0 e.blk e.row e.col e.value) p.obj_blocks;
  List.iter
    (fun (k, v) ->
      if nf > 0 then begin
        emit 0 nb k k v;
        emit 0 nb (nf + k) (nf + k) (-.v)
      end)
    p.obj_free;
  Array.iteri
    (fun idx c ->
      let matno = idx + 1 in
      List.iter (fun e -> emit matno e.blk e.row e.col e.value) c.lhs;
      List.iter
        (fun (k, v) ->
          emit matno nb k k v;
          emit matno nb (nf + k) (nf + k) (-.v))
        c.free)
    p.constraints;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Stateful solver sessions: a capsule memory keyed by structure
   fingerprint plus accept/reject accounting. The contract that keeps
   warm starts invisible to callers:
     - a warm attempt runs on a reduced iteration budget and is accepted
       only when it reaches [Optimal]; anything else triggers a cold
       re-solve with the caller's original params, so statuses and
       salvage diagnostics are never those of a starved warm attempt;
     - only clean solutions ([Optimal], no injected faults) are
       remembered;
     - jitter rungs ([init_scale <> 1.0]) request a deliberately
       different starting point, so hints are skipped there. *)
module Session = struct
  type counters = { warm_accepted : int; warm_rejected : int; cold_solves : int }

  (* Process-wide totals across every session (bench/report accounting —
     sessions are created deep inside per-phase configs, so a global sum
     is the only cheap way to observe them from the outside). *)
  let warm_accepted_total = ref 0
  let warm_rejected_total = ref 0
  let cold_total = ref 0

  let totals () =
    {
      warm_accepted = !warm_accepted_total;
      warm_rejected = !warm_rejected_total;
      cold_solves = !cold_total;
    }

  type t = {
    sess_params : params;
    memory : (string, warm_start) Hashtbl.t;
    mutable warm_accepted : int;
    mutable warm_rejected : int;
    mutable cold_solves : int;
  }

  let create ?(params = default_params) () =
    {
      sess_params = params;
      memory = Hashtbl.create 16;
      warm_accepted = 0;
      warm_rejected = 0;
      cold_solves = 0;
    }

  let params t = t.sess_params

  let counters t =
    {
      warm_accepted = t.warm_accepted;
      warm_rejected = t.warm_rejected;
      cold_solves = t.cold_solves;
    }

  let hint_for t p = Hashtbl.find_opt t.memory (structure_fingerprint p)

  let remember t p sol =
    if sol.status = Optimal && sol.injected = 0 then
      match warm_start_of_solution p sol with
      | Some w -> Hashtbl.replace t.memory w.ws_structure w
      | None -> ()

  (* Feed a capsule produced elsewhere (typically in a forked pool
     worker, shipped back over the Marshal channel) into this session's
     memory. The producer is responsible for only capturing clean
     solutions; [warm_start_of_solution] already rejects non-finite
     iterates. *)
  let remember_capsule t w = Hashtbl.replace t.memory w.ws_structure w

  (* Bound the cost of a failed warm attempt: the cold fallback then
     costs at most ~1/3 extra over a straight cold solve. *)
  let warm_budget params = { params with max_iter = Int.max 20 (params.max_iter / 3) }

  let solve t ?hint ?params prob =
    let params = Option.value params ~default:t.sess_params in
    let fp = structure_fingerprint prob in
    let hint =
      match hint with
      | Some w -> if String.equal w.ws_structure fp then Some w else None
      | None -> Hashtbl.find_opt t.memory fp
    in
    let sol =
      match hint with
      | Some w when params.init_scale = 1.0 ->
          let attempt = solve ~params:(warm_budget params) ~warm:w prob in
          if attempt.status = Optimal then begin
            t.warm_accepted <- t.warm_accepted + 1;
            incr warm_accepted_total;
            attempt
          end
          else begin
            t.warm_rejected <- t.warm_rejected + 1;
            incr warm_rejected_total;
            t.cold_solves <- t.cold_solves + 1;
            incr cold_total;
            solve ~params prob
          end
      | _ ->
          t.cold_solves <- t.cold_solves + 1;
          incr cold_total;
          solve ~params prob
    in
    remember t prob sol;
    sol
end

let feasibility_margin p sol =
  let worst = ref 0.0 in
  Array.iter
    (fun c ->
      let v = ref (-.c.rhs) in
      List.iter
        (fun e ->
          let x = sol.x_blocks.(e.blk) in
          let t =
            if e.row = e.col then e.value *. Mat.get x e.row e.col
            else e.value *. (Mat.get x e.row e.col +. Mat.get x e.col e.row)
          in
          v := !v +. t)
        c.lhs;
      List.iter (fun (k, w) -> v := !v +. (w *. sol.f.(k))) c.free;
      worst := Float.max !worst (Float.abs !v))
    p.constraints;
  !worst
