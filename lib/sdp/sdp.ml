module Mat = Linalg.Mat
module Vec = Linalg.Vec

let src = Logs.Src.create "sdp" ~doc:"interior-point SDP solver"

module Log = (val Logs.src_log src : Logs.LOG)

type block_entry = { blk : int; row : int; col : int; value : float }

type constr = {
  lhs : block_entry list;
  free : (int * float) list;
  rhs : float;
}

type problem = {
  block_dims : int array;
  n_free : int;
  constraints : constr array;
  obj_blocks : block_entry list;
  obj_free : (int * float) list;
}

type status =
  | Optimal
  | Near_optimal
  | Primal_infeasible
  | Dual_infeasible
  | Max_iterations
  | Numerical_failure

type solution = {
  status : status;
  x_blocks : Mat.t array;
  f : Vec.t;
  y : Vec.t;
  s_blocks : Mat.t array;
  primal_obj : float;
  dual_obj : float;
  gap : float;
  primal_res : float;
  dual_res : float;
  iterations : int;
  best_score : float;
  trace : (int * float * float * float) list;
  injected : int;
}

type fault =
  | Fail_now
  | Stop_now
  | Perturb of float

type params = {
  max_iter : int;
  tol_gap : float;
  tol_res : float;
  near_factor : float;
  step_frac : float;
  init_scale : float;
  equilibrate : bool;
  on_iteration : (int -> fault option) option;
  verbose : bool;
}

let default_params =
  {
    max_iter = 150;
    tol_gap = 1e-8;
    tol_res = 1e-8;
    near_factor = 1e3;
    step_frac = 0.98;
    init_scale = 1.0;
    equilibrate = false;
    on_iteration = None;
    verbose = false;
  }

(* ------------------------------------------------------------------ *)
(* Internal representation: per-constraint, per-block sparse entries.  *)

type sparse_block = { entries : (int * int * float) array; touched : int array }
(* [entries] are upper-triangular (row <= col); [touched] is the sorted
   set of row/col indices occurring, used to bound dense products. *)

let sparse_block_of_entries dim entries =
  let touched = Hashtbl.create 8 in
  List.iter
    (fun (r, c, _) ->
      if r < 0 || c >= dim || r > c then invalid_arg "Sdp: bad block entry";
      Hashtbl.replace touched r ();
      Hashtbl.replace touched c ())
    entries;
  let t = Hashtbl.fold (fun k () acc -> k :: acc) touched [] in
  { entries = Array.of_list entries; touched = Array.of_list (List.sort compare t) }

(* <A, W> for symmetric sparse A and a dense (not necessarily symmetric) W. *)
let sb_dot sb (w : Mat.t) =
  Array.fold_left
    (fun acc (r, c, v) ->
      if r = c then acc +. (v *. Mat.get w r r)
      else acc +. (v *. (Mat.get w r c +. Mat.get w c r)))
    0.0 sb.entries

(* W <- W + scale * A for symmetric sparse A, dense W. *)
let sb_add_to sb scale (w : Mat.t) =
  Array.iter
    (fun (r, c, v) ->
      Mat.set w r c (Mat.get w r c +. (scale *. v));
      if r <> c then Mat.set w c r (Mat.get w c r +. (scale *. v)))
    sb.entries

(* X * (A * Sinv) for sparse symmetric A: cost O(|touched| * n^2). *)
let sb_sandwich sb (x : Mat.t) (sinv : Mat.t) =
  let n = x.Mat.rows in
  (* p = A * sinv has nonzero rows only at touched indices *)
  let p_rows = Hashtbl.create 8 in
  let row_of r =
    match Hashtbl.find_opt p_rows r with
    | Some a -> a
    | None ->
        let a = Array.make n 0.0 in
        Hashtbl.add p_rows r a;
        a
  in
  Array.iter
    (fun (r, c, v) ->
      let pr = row_of r in
      for j = 0 to n - 1 do
        pr.(j) <- pr.(j) +. (v *. Mat.get sinv c j)
      done;
      if r <> c then begin
        let pc = row_of c in
        for j = 0 to n - 1 do
          pc.(j) <- pc.(j) +. (v *. Mat.get sinv r j)
        done
      end)
    sb.entries;
  let w = Mat.create n n in
  Hashtbl.iter
    (fun t pr ->
      for i = 0 to n - 1 do
        let xit = Mat.get x i t in
        if xit <> 0.0 then
          for j = 0 to n - 1 do
            Mat.set w i j (Mat.get w i j +. (xit *. pr.(j)))
          done
      done)
    p_rows;
  w

type internal = {
  p : problem;
  m : int;
  nb : int; (* number of blocks *)
  n_total : int;
  (* per constraint i, per block b: sparse data (possibly empty) *)
  cons_blocks : sparse_block array array;
  (* per block: indices of constraints touching it *)
  block_cons : int array array;
  b_vec : Vec.t; (* scaled rhs *)
  b_mat : Mat.t; (* m x nf dense free-variable matrix, scaled *)
  c_blocks : sparse_block array;
  c_free : Vec.t;
  scales : Vec.t; (* per-constraint normalization *)
}

let build_internal p =
  let m = Array.length p.constraints in
  let nb = Array.length p.block_dims in
  let n_total = Array.fold_left ( + ) 0 p.block_dims in
  let scales =
    Array.map
      (fun c ->
        let s = ref 0.0 in
        List.iter
          (fun e ->
            let w = if e.row = e.col then e.value *. e.value else 2.0 *. e.value *. e.value in
            s := !s +. w)
          c.lhs;
        List.iter (fun (_, v) -> s := !s +. (v *. v)) c.free;
        Float.max 1e-8 (sqrt !s))
      p.constraints
  in
  let cons_blocks =
    Array.mapi
      (fun i c ->
        let per_block = Array.make nb [] in
        List.iter
          (fun e ->
            if e.blk < 0 || e.blk >= nb then invalid_arg "Sdp: block index out of range";
            per_block.(e.blk) <- (e.row, e.col, e.value /. scales.(i)) :: per_block.(e.blk))
          c.lhs;
        Array.mapi (fun b l -> sparse_block_of_entries p.block_dims.(b) l) per_block)
      p.constraints
  in
  let block_cons =
    Array.init nb (fun b ->
        let l = ref [] in
        for i = m - 1 downto 0 do
          if Array.length cons_blocks.(i).(b).entries > 0 then l := i :: !l
        done;
        Array.of_list !l)
  in
  let b_vec = Array.init m (fun i -> p.constraints.(i).rhs /. scales.(i)) in
  let b_mat = Mat.create m p.n_free in
  Array.iteri
    (fun i c ->
      List.iter
        (fun (k, v) ->
          if k < 0 || k >= p.n_free then invalid_arg "Sdp: free index out of range";
          Mat.set b_mat i k (v /. scales.(i)))
        c.free)
    p.constraints;
  let c_per_block = Array.make nb [] in
  List.iter
    (fun e -> c_per_block.(e.blk) <- (e.row, e.col, e.value) :: c_per_block.(e.blk))
    p.obj_blocks;
  let c_blocks = Array.mapi (fun b l -> sparse_block_of_entries p.block_dims.(b) l) c_per_block in
  let c_free = Array.make p.n_free 0.0 in
  List.iter (fun (k, v) -> c_free.(k) <- c_free.(k) +. v) p.obj_free;
  { p; m; nb; n_total; cons_blocks; block_cons; b_vec; b_mat; c_blocks; c_free; scales }

(* A(X): vector of <A_i, X> over all blocks. *)
let op_a it x_blocks =
  Array.init it.m (fun i ->
      let s = ref 0.0 in
      for b = 0 to it.nb - 1 do
        let sb = it.cons_blocks.(i).(b) in
        if Array.length sb.entries > 0 then s := !s +. sb_dot sb x_blocks.(b)
      done;
      !s)

(* A*(y): block-diagonal dense accumulation. *)
let op_a_star it y =
  Array.init it.nb (fun b ->
      let w = Mat.create it.p.block_dims.(b) it.p.block_dims.(b) in
      Array.iter
        (fun i ->
          if y.(i) <> 0.0 then sb_add_to it.cons_blocks.(i).(b) y.(i) w)
        it.block_cons.(b);
      w)

let dense_c it =
  Array.init it.nb (fun b ->
      let w = Mat.create it.p.block_dims.(b) it.p.block_dims.(b) in
      sb_add_to it.c_blocks.(b) 1.0 w;
      w)

(* Cholesky with escalating regularization. *)
let robust_chol a =
  let rec go reg tries =
    if tries = 0 then None
    else
      match Mat.cholesky ~reg a with
      | Some l -> Some l
      | None -> go (if reg = 0.0 then 1e-12 *. (1.0 +. Mat.norm_inf a) else reg *. 100.0) (tries - 1)
  in
  go 0.0 8

(* L^{-1} W L^{-T} for lower-triangular Cholesky factor L. *)
let chol_congruence (l : Mat.t) (w : Mat.t) =
  let n = l.Mat.rows in
  (* U = L^{-1} W : forward substitution on each column of W *)
  let u = Mat.create n n in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      let s = ref (Mat.get w i j) in
      for k = 0 to i - 1 do
        s := !s -. (Mat.get l i k *. Mat.get u k j)
      done;
      Mat.set u i j (!s /. Mat.get l i i)
    done
  done;
  (* V = U L^{-T} : (L^{-1} U^T)^T *)
  let v = Mat.create n n in
  for j = 0 to n - 1 do
    (* column j of V solves L * vcol = (row j of U)^T *)
    for i = 0 to n - 1 do
      let s = ref (Mat.get u j i) in
      for k = 0 to i - 1 do
        s := !s -. (Mat.get l i k *. Mat.get v k j)
      done;
      Mat.set v i j (!s /. Mat.get l i i)
    done
  done;
  v

(* Largest alpha in (0, 1] with X + alpha * dX >= 0 (to a fraction). *)
let max_step ~frac (x : Mat.t) (l : Mat.t) (dx : Mat.t) =
  ignore x;
  let t = Mat.symmetrize (chol_congruence l dx) in
  let lam_min = Mat.min_eig t in
  if lam_min >= 0.0 then 1.0 else Float.min 1.0 (-.frac /. lam_min)

(* Deterministic pseudo-noise in [-1, 1] for fault injection — a fixed
   integer hash of the coordinates, so injected perturbations replay
   identically across runs. *)
let pseudo_noise iter b i j =
  let h =
    (iter * 0x9E3779B1) lxor (b * 0x85EBCA6B) lxor (i * 0xC2B2AE35) lxor (j * 0x27D4EB2F)
  in
  let h = h lxor (h lsr 15) in
  (float_of_int (h land 0xFFFFFF) /. float_of_int 0xFFFFFF *. 2.0) -. 1.0

let solve_core ?(params = default_params) p =
  let it = build_internal p in
  let m = it.m and nb = it.nb and nf = p.n_free in
  let dims = p.block_dims in
  let n_total = Float.max 1.0 (float_of_int it.n_total) in
  let c_dense = dense_c it in
  (* Initial point. *)
  let norm_b = Array.fold_left (fun a v -> Float.max a (Float.abs v)) 0.0 it.b_vec in
  let norm_c =
    Array.fold_left (fun a w -> Float.max a (Mat.norm_inf w)) 0.0 c_dense
    |> Float.max (Vec.norm_inf it.c_free)
  in
  let xi = params.init_scale *. Float.max 10.0 (2.0 *. norm_b) in
  let eta = params.init_scale *. Float.max 10.0 (2.0 *. (norm_c +. 1.0)) in
  let x = Array.init nb (fun b -> Mat.scale xi (Mat.identity dims.(b))) in
  let s = Array.init nb (fun b -> Mat.scale eta (Mat.identity dims.(b))) in
  let y = Array.make m 0.0 in
  let f = Array.make nf 0.0 in
  let trace_rev = ref [] in
  let injected = ref 0 in
  (* Forward declaration: best_score lives below but [result] reads it. *)
  let best_score = ref infinity in
  let result status iter =
    (* Rescale multipliers back to the original constraint scaling. *)
    let y_orig = Array.init m (fun i -> y.(i) /. it.scales.(i)) in
    let ax = op_a it x in
    let bf = Mat.mul_vec it.b_mat f in
    let pres =
      let r = Array.init m (fun i -> it.b_vec.(i) -. ax.(i) -. bf.(i)) in
      Vec.norm2 r /. (1.0 +. Vec.norm2 it.b_vec)
    in
    let asy = op_a_star it y in
    let dres =
      let block_part =
        Array.init nb (fun b ->
            Mat.norm_fro (Mat.sub (Mat.sub c_dense.(b) s.(b)) asy.(b)))
        |> Array.fold_left Float.max 0.0
      in
      let free_part = Vec.norm2 (Vec.sub it.c_free (Mat.tmul_vec it.b_mat y)) in
      Float.max block_part free_part /. (1.0 +. norm_c)
    in
    let pobj =
      Array.fold_left ( +. ) (Vec.dot it.c_free f)
        (Array.init nb (fun b -> Mat.frob_dot c_dense.(b) x.(b)))
    in
    let dobj = Vec.dot it.b_vec y in
    let gap = Float.abs (pobj -. dobj) /. (1.0 +. Float.max (Float.abs pobj) (Float.abs dobj)) in
    {
      status;
      x_blocks = Array.map Mat.copy x;
      f = Array.copy f;
      y = y_orig;
      s_blocks = Array.map Mat.copy s;
      primal_obj = pobj;
      dual_obj = dobj;
      gap;
      primal_res = pres;
      dual_res = dres;
      iterations = iter;
      best_score = !best_score;
      trace = List.rev !trace_rev;
      injected = !injected;
    }
  in
  let exception Done of solution in
  (* Best-iterate tracking: interior-point iterations can overshoot the
     numerically attainable accuracy floor and then diverge; we keep the
     best iterate seen and fall back to it. *)
  let best_state = ref None in
  let maybe_snapshot score =
    if score < !best_score then begin
      best_score := score;
      best_state :=
        Some (Array.map Mat.copy x, Array.map Mat.copy s, Array.copy y, Array.copy f)
    end
  in
  let restore_best () =
    match !best_state with
    | None -> ()
    | Some (bx, bs, by, bf) ->
        Array.blit bx 0 x 0 nb;
        Array.blit bs 0 s 0 nb;
        Array.blit by 0 y 0 m;
        Array.blit bf 0 f 0 nf
  in
  let classify_best iter =
    restore_best ();
    let status =
      if !best_score <= Float.max params.tol_gap params.tol_res then Optimal
      else if !best_score <= params.near_factor *. Float.max params.tol_gap params.tol_res
      then Near_optimal
      else Max_iterations
    in
    result status iter
  in
  try
     for iter = 1 to params.max_iter do
       (* Injected faults and deadline interrupts (resilience layer). *)
       (match params.on_iteration with
       | None -> ()
       | Some hook -> (
           match hook iter with
           | None -> ()
           | Some action -> (
               incr injected;
               match action with
               | Fail_now -> raise (Done (result Numerical_failure iter))
               | Stop_now -> raise (Done (classify_best iter))
               | Perturb mag ->
                   (* Symmetric deterministic noise on the primal iterate;
                      magnitude is relative to each block's scale. *)
                   for b = 0 to nb - 1 do
                     let xb = x.(b) in
                     let scale = mag *. (1.0 +. Mat.norm_inf xb) in
                     let d = dims.(b) in
                     for i = 0 to d - 1 do
                       for j = i to d - 1 do
                         let u = scale *. pseudo_noise iter b i j in
                         Mat.set xb i j (Mat.get xb i j +. u);
                         if i <> j then Mat.set xb j i (Mat.get xb j i +. u)
                       done
                     done
                   done)));
       (* Factor S blocks; compute S^{-1}. *)
       let s_chol =
         Array.map
           (fun sb ->
             match robust_chol sb with
             | Some l -> l
             | None -> raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter)))
           s
       in
       let s_inv = Array.mapi (fun b l -> Mat.chol_solve_mat l (Mat.identity dims.(b))) s_chol in
       let x_chol =
         Array.map
           (fun xb ->
             match robust_chol xb with
             | Some l -> l
             | None -> raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter)))
           x
       in
       (* Residuals. *)
       let ax = op_a it x in
       let bf = Mat.mul_vec it.b_mat f in
       let r_p = Array.init m (fun i -> it.b_vec.(i) -. ax.(i) -. bf.(i)) in
       let asy = op_a_star it y in
       let r_d = Array.init nb (fun b -> Mat.sub (Mat.sub c_dense.(b) s.(b)) asy.(b)) in
       let r_f = Vec.sub it.c_free (Mat.tmul_vec it.b_mat y) in
       let mu =
         Array.init nb (fun b -> Mat.frob_dot x.(b) s.(b))
         |> Array.fold_left ( +. ) 0.0
         |> fun t -> t /. n_total
       in
       let pobj =
         Array.fold_left ( +. ) (Vec.dot it.c_free f)
           (Array.init nb (fun b -> Mat.frob_dot c_dense.(b) x.(b)))
       in
       let dobj = Vec.dot it.b_vec y in
       let gap = Float.abs (pobj -. dobj) /. (1.0 +. Float.max (Float.abs pobj) (Float.abs dobj)) in
       let pres = Vec.norm2 r_p /. (1.0 +. Vec.norm2 it.b_vec) in
       let dres =
         let bp = Array.fold_left (fun a w -> Float.max a (Mat.norm_fro w)) 0.0 r_d in
         Float.max bp (Vec.norm2 r_f) /. (1.0 +. norm_c)
       in
       if params.verbose then
         Log.app (fun k ->
             k "iter %3d  mu %.3e  gap %.3e  pres %.3e  dres %.3e  pobj %.6e" iter mu gap
               pres dres pobj);
       trace_rev := (iter, gap, pres, dres) :: !trace_rev;
       if gap <= params.tol_gap && pres <= params.tol_res && dres <= params.tol_res then
         raise (Done (result Optimal iter));
       let score = Float.max gap (Float.max pres dres) in
       maybe_snapshot score;
       (* Diverging past a converged iterate: fall back to the best one. *)
       if score > 1e4 *. !best_score && !best_score < 1e-4 then
         raise (Done (classify_best iter));
       (* Crude infeasibility detection. *)
       if Float.abs dobj > 1e9 *. (1.0 +. norm_b) && dres <= 1e-6 then
         raise (Done (result Primal_infeasible iter));
       if Float.abs pobj > 1e9 *. (1.0 +. norm_c) && pres <= 1e-6 then
         raise (Done (result Dual_infeasible iter));
       (* Schur complement M_ij = sum_b <A_i, X A_j Sinv>. *)
       let mmat = Mat.create m m in
       let w_cache = Array.make m None in
       for b = 0 to nb - 1 do
         let idx = it.block_cons.(b) in
         Array.iter
           (fun i ->
             let w = sb_sandwich it.cons_blocks.(i).(b) x.(b) s_inv.(b) in
             w_cache.(i) <- Some w)
           idx;
         Array.iter
           (fun i ->
             match w_cache.(i) with
             | None -> ()
             | Some wi ->
                 Array.iter
                   (fun j ->
                     if j >= i then begin
                       let v = sb_dot it.cons_blocks.(j).(b) wi in
                       Mat.set mmat i j (Mat.get mmat i j +. v)
                     end)
                   idx)
           idx;
         Array.iter (fun i -> w_cache.(i) <- None) idx
       done;
       for i = 0 to m - 1 do
         for j = 0 to i - 1 do
           Mat.set mmat i j (Mat.get mmat j i)
         done
       done;
       let m_chol =
         match robust_chol mmat with
         | Some l -> l
         | None -> raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter))
       in
       (* Saddle solve shared by predictor and corrector. *)
       let solve_direction rhs_g =
         if nf = 0 then (Mat.chol_solve m_chol rhs_g, [||])
         else begin
           let minv_b = Mat.chol_solve_mat m_chol it.b_mat in
           let k = Mat.mul (Mat.transpose it.b_mat) minv_b in
           let kreg = 1e-12 *. (1.0 +. Mat.norm_inf k) in
           for d = 0 to nf - 1 do
             Mat.set k d d (Mat.get k d d +. kreg)
           done;
           let minv_g = Mat.chol_solve m_chol rhs_g in
           let rhs_f = Vec.sub (Mat.tmul_vec it.b_mat minv_g) r_f in
           let df = Mat.solve k rhs_f in
           let dy = Mat.chol_solve m_chol (Vec.sub rhs_g (Mat.mul_vec it.b_mat df)) in
           (dy, df)
         end
       in
       (* F_b = X R_d Sinv per block (shared). *)
       let f_term = Array.init nb (fun b -> Mat.mul x.(b) (Mat.mul r_d.(b) s_inv.(b))) in
       let direction e_blocks =
         (* g = r_p - A(E) + A(F) *)
         let ae = op_a it e_blocks in
         let af = op_a it f_term in
         let g = Array.init m (fun i -> r_p.(i) -. ae.(i) +. af.(i)) in
         let dy, df = solve_direction g in
         let a_star_dy = op_a_star it dy in
         let ds = Array.init nb (fun b -> Mat.sub r_d.(b) a_star_dy.(b)) in
         let dx =
           Array.init nb (fun b ->
               Mat.symmetrize
                 (Mat.sub e_blocks.(b) (Mat.mul x.(b) (Mat.mul ds.(b) s_inv.(b)))))
         in
         (dx, ds, dy, df)
       in
       (* Predictor: E = -X. *)
       let e_aff = Array.map Mat.neg x in
       let dx_a, ds_a, _, _ = direction e_aff in
       let alpha_p_aff =
         Array.init nb (fun b -> max_step ~frac:1.0 x.(b) x_chol.(b) dx_a.(b))
         |> Array.fold_left Float.min 1.0
       in
       let alpha_d_aff =
         Array.init nb (fun b -> max_step ~frac:1.0 s.(b) s_chol.(b) ds_a.(b))
         |> Array.fold_left Float.min 1.0
       in
       let mu_aff =
         Array.init nb (fun b ->
             let xn = Mat.add x.(b) (Mat.scale alpha_p_aff dx_a.(b)) in
             let sn = Mat.add s.(b) (Mat.scale alpha_d_aff ds_a.(b)) in
             Mat.frob_dot xn sn)
         |> Array.fold_left ( +. ) 0.0
         |> fun t -> t /. n_total
       in
       let sigma =
         let r = mu_aff /. Float.max mu 1e-300 in
         Float.min 0.9 (Float.max 1e-6 (r *. r *. r))
       in
       (* Corrector: E = sigma*mu*Sinv - X - dXa dSa Sinv. *)
       let e_corr =
         Array.init nb (fun b ->
             let corr = Mat.mul dx_a.(b) (Mat.mul ds_a.(b) s_inv.(b)) in
             Mat.sub (Mat.sub (Mat.scale (sigma *. mu) s_inv.(b)) x.(b)) corr)
       in
       let dx, ds, dy, df = direction e_corr in
       let alpha_p =
         Array.init nb (fun b -> max_step ~frac:params.step_frac x.(b) x_chol.(b) dx.(b))
         |> Array.fold_left Float.min 1.0
       in
       let alpha_d =
         Array.init nb (fun b -> max_step ~frac:params.step_frac s.(b) s_chol.(b) ds.(b))
         |> Array.fold_left Float.min 1.0
       in
       if alpha_p < 1e-10 && alpha_d < 1e-10 then
         raise (Done (if !best_score < 1e-4 then classify_best iter else result Numerical_failure iter));
       for b = 0 to nb - 1 do
         x.(b) <- Mat.symmetrize (Mat.add x.(b) (Mat.scale alpha_p dx.(b)));
         s.(b) <- Mat.symmetrize (Mat.add s.(b) (Mat.scale alpha_d ds.(b)))
       done;
       Vec.axpy alpha_d dy y;
       Vec.axpy alpha_p df f
     done;
     (* Iteration limit: return the best iterate seen, suitably classified. *)
     classify_best params.max_iter
  with Done r -> r

(* ------------------------------------------------------------------ *)
(* Jacobi equilibration: per-block diagonal scaling D chosen from the
   largest |entry| touching each row across all constraint and objective
   matrices. The scaled problem has A'_i = D A_i D, C' = D C D; its
   solution maps back exactly by X = D X' D, S = D^{-1} S' D^{-1} with y
   and f unchanged, so objective values and primal feasibility are
   preserved on the original data. Used as a retry-ladder rung for
   ill-conditioned instances. *)

let equilibration_scales p =
  let w = Array.map (fun d -> Array.make d 0.0) p.block_dims in
  let touch (e : block_entry) =
    let a = Float.abs e.value in
    let wb = w.(e.blk) in
    if a > wb.(e.row) then wb.(e.row) <- a;
    if a > wb.(e.col) then wb.(e.col) <- a
  in
  Array.iter (fun c -> List.iter touch c.lhs) p.constraints;
  List.iter touch p.obj_blocks;
  Array.map
    (Array.map (fun v ->
         if v <= 1e-12 then 1.0 else Float.min 1e4 (Float.max 1e-4 (1.0 /. sqrt v))))
    w

let equilibrate_problem p d =
  let scale_entry (e : block_entry) =
    { e with value = e.value *. d.(e.blk).(e.row) *. d.(e.blk).(e.col) }
  in
  {
    p with
    constraints =
      Array.map (fun c -> { c with lhs = List.map scale_entry c.lhs }) p.constraints;
    obj_blocks = List.map scale_entry p.obj_blocks;
  }

let unscale_solution d sol =
  let congruence f b (m : Mat.t) =
    Mat.init m.Mat.rows m.Mat.rows (fun i j -> f d.(b).(i) *. f d.(b).(j) *. Mat.get m i j)
  in
  {
    sol with
    x_blocks = Array.mapi (congruence (fun v -> v)) sol.x_blocks;
    s_blocks = Array.mapi (congruence (fun v -> 1.0 /. v)) sol.s_blocks;
  }

(* Process-wide count of interior-point solves, for cheap throughput
   accounting (bench --json, supervision reports). *)
let solves_total = ref 0

let solve_count () = !solves_total

let solve ?(params = default_params) p =
  incr solves_total;
  if not params.equilibrate then solve_core ~params p
  else begin
    let d = equilibration_scales p in
    let sol = solve_core ~params (equilibrate_problem p d) in
    unscale_solution d sol
  end

(* Canonical, byte-deterministic serialization of (problem, solve-relevant
   params) — the content-addressed identity of a solve request. Floats are
   printed in hexadecimal notation (%h), which round-trips exactly, so two
   requests share a fingerprint iff the solver would see bit-identical
   inputs. [on_iteration] and [verbose] are deliberately excluded: hooks
   (deadlines, fault injection) and logging do not change what a clean,
   uninterrupted solve returns. *)
let canonical_serialization ?(params = default_params) p =
  let buf = Buffer.create 4096 in
  let adds = Buffer.add_string buf in
  adds "pll-sdp-problem v1\nblocks";
  Array.iter (fun d -> adds (Printf.sprintf " %d" d)) p.block_dims;
  adds (Printf.sprintf "\nfree %d\n" p.n_free);
  let add_entries tag entries =
    adds tag;
    List.iter
      (fun e -> adds (Printf.sprintf " %d:%d:%d:%h" e.blk e.row e.col e.value))
      entries;
    Buffer.add_char buf '\n'
  in
  Array.iter
    (fun c ->
      add_entries "A" c.lhs;
      adds "B";
      List.iter (fun (k, v) -> adds (Printf.sprintf " %d:%h" k v)) c.free;
      adds (Printf.sprintf "\nb %h\n" c.rhs))
    p.constraints;
  add_entries "C" p.obj_blocks;
  adds "cf";
  List.iter (fun (k, v) -> adds (Printf.sprintf " %d:%h" k v)) p.obj_free;
  adds
    (Printf.sprintf "\nparams %d %h %h %h %h %h %b\n" params.max_iter params.tol_gap
       params.tol_res params.near_factor params.step_frac params.init_scale
       params.equilibrate);
  Buffer.contents buf

let fingerprint ?params p = Digest.to_hex (Digest.string (canonical_serialization ?params p))

let to_sdpa p =
  let buf = Buffer.create 4096 in
  let m = Array.length p.constraints in
  let nb = Array.length p.block_dims in
  let nf = p.n_free in
  (* Free variables become a diagonal block of size 2*nf (u - v split). *)
  let nblocks = if nf > 0 then nb + 1 else nb in
  Buffer.add_string buf (Printf.sprintf "%d = mDIM\n" m);
  Buffer.add_string buf (Printf.sprintf "%d = nBLOCK\n" nblocks);
  let dims =
    Array.to_list (Array.map string_of_int p.block_dims)
    @ (if nf > 0 then [ string_of_int (-2 * nf) ] else [])
  in
  Buffer.add_string buf ("(" ^ String.concat ", " dims ^ ") = bLOCKsTRUCT\n");
  Buffer.add_string buf
    (String.concat " "
       (Array.to_list (Array.map (fun c -> Printf.sprintf "%.17g" c.rhs) p.constraints))
    ^ "\n");
  (* Entry lines: <matno> <blkno> <i> <j> <value>, 1-indexed; matno 0 is
     the objective (SDPA convention: F0, with max tr(F0 Y) duality — we
     emit C directly; sign conventions documented in the header). *)
  let emit matno blk i j v =
    if v <> 0.0 then
      Buffer.add_string buf (Printf.sprintf "%d %d %d %d %.17g\n" matno (blk + 1) (i + 1) (j + 1) v)
  in
  List.iter (fun e -> emit 0 e.blk e.row e.col e.value) p.obj_blocks;
  List.iter
    (fun (k, v) ->
      if nf > 0 then begin
        emit 0 nb k k v;
        emit 0 nb (nf + k) (nf + k) (-.v)
      end)
    p.obj_free;
  Array.iteri
    (fun idx c ->
      let matno = idx + 1 in
      List.iter (fun e -> emit matno e.blk e.row e.col e.value) c.lhs;
      List.iter
        (fun (k, v) ->
          emit matno nb k k v;
          emit matno nb (nf + k) (nf + k) (-.v))
        c.free)
    p.constraints;
  Buffer.contents buf

let feasibility_margin p sol =
  let worst = ref 0.0 in
  Array.iter
    (fun c ->
      let v = ref (-.c.rhs) in
      List.iter
        (fun e ->
          let x = sol.x_blocks.(e.blk) in
          let t =
            if e.row = e.col then e.value *. Mat.get x e.row e.col
            else e.value *. (Mat.get x e.row e.col +. Mat.get x e.col e.row)
          in
          v := !v +. t)
        c.lhs;
      List.iter (fun (k, w) -> v := !v +. (w *. sol.f.(k))) c.free;
      worst := Float.max !worst (Float.abs !v))
    p.constraints;
  !worst
