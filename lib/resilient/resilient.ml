(* Resilient solve orchestration: retry ladders, deadlines, fault
   injection and graceful degradation around Sdp.solve / Sos.solve. *)

let src = Logs.Src.create "resilient" ~doc:"Resilient SOS/SDP solve orchestration"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Time sources                                                       *)
(* ------------------------------------------------------------------ *)

(* [Sys.time] is CPU seconds of THIS process: it neither advances while
   a forked worker burns cycles nor while the process sleeps in
   [waitpid], and a fork resets the child's CPU clock entirely. Wall
   clock is therefore the default deadline base; CPU time remains
   available for single-process benchmarking. The wall source is
   injectable so deadline tests don't have to actually wait. *)

type time_mode = Cpu_time | Wall_clock

let wall_clock_source = ref Unix.gettimeofday

let set_wall_clock_source = function
  | Some f -> wall_clock_source := f
  | None -> wall_clock_source := Unix.gettimeofday

let time_of_mode = function
  | Cpu_time -> Sys.time ()
  | Wall_clock -> !wall_clock_source ()

(* ------------------------------------------------------------------ *)
(* Fault injection                                                    *)
(* ------------------------------------------------------------------ *)

module Faults = struct
  type kind = Fail | Truncate | Noise of float
  type spec = { kind : kind; solve : int; iter : int }

  type plan = {
    specs : spec list;
    procs : Supervise.Fault.spec list;
    mutable fired : int;
  }

  let none () = { specs = []; procs = []; fired = 0 }
  let of_specs ?(procs = []) specs = { specs; procs; fired = 0 }
  let is_empty p = p.specs = [] && p.procs = []
  let fired p = p.fired
  let proc_specs p = p.procs

  let spec_to_string s =
    let site = if s.solve = 0 then "*" else string_of_int s.solve in
    match s.kind with
    | Fail -> Printf.sprintf "fail@%s:%d" site s.iter
    | Truncate -> Printf.sprintf "trunc@%s:%d" site s.iter
    | Noise m -> Printf.sprintf "noise@%s:%d:%g" site s.iter m

  let to_string p =
    String.concat ","
      (List.map spec_to_string p.specs
      @ List.map Supervise.Fault.to_string p.procs)

  let parse_spec tok =
    let fail () = Error (Printf.sprintf "bad fault spec %S (want fail@S:I, trunc@S:I, noise@S:I:MAG, kill@S:I, stall@S:I or corrupt-cache@S)" tok) in
    match String.index_opt tok '@' with
    | None -> fail ()
    | Some at -> (
        let kind_s = String.sub tok 0 at in
        let rest = String.sub tok (at + 1) (String.length tok - at - 1) in
        let parts = String.split_on_char ':' rest in
        let solve_of s = if s = "*" then Some 0 else int_of_string_opt s in
        match (kind_s, parts) with
        | "fail", [ s; i ] -> (
            match (solve_of s, int_of_string_opt i) with
            | Some solve, Some iter -> Ok { kind = Fail; solve; iter }
            | _ -> fail ())
        | "trunc", [ s; i ] -> (
            match (solve_of s, int_of_string_opt i) with
            | Some solve, Some iter -> Ok { kind = Truncate; solve; iter }
            | _ -> fail ())
        | "noise", [ s; i; m ] -> (
            match (solve_of s, int_of_string_opt i, float_of_string_opt m) with
            | Some solve, Some iter, Some mag -> Ok { kind = Noise mag; solve; iter }
            | _ -> fail ())
        | _ -> fail ())

  (* Process-level kinds (kill/stall/corrupt-cache) live in Supervise so
     that library stays independent of this one; here their specs parse
     out of the same plan string into the separate [procs] list. *)
  let of_string str =
    let str = String.trim str in
    if str = "" || str = "none" then Ok (none ())
    else
      let toks = List.map String.trim (String.split_on_char ',' str) in
      let rec go specs procs = function
        | [] -> Ok { specs = List.rev specs; procs = List.rev procs; fired = 0 }
        | t :: rest -> (
            match Supervise.Fault.parse t with
            | Some (Ok p) -> go specs (p :: procs) rest
            | Some (Error e) -> Error e
            | None -> (
                match parse_spec t with
                | Ok s -> go (s :: specs) procs rest
                | Error e -> Error e))
      in
      go [] [] toks

  (* Faults fire only on the first attempt of their target solve, so the
     retry ladder gets a clean re-solve to recover with. *)
  let hook plan ~solve_index ~attempt =
    if attempt > 0 then None
    else
      let relevant =
        List.filter (fun s -> s.solve = 0 || s.solve = solve_index) plan.specs
      in
      if relevant = [] then None
      else
        Some
          (fun iter ->
            match List.find_opt (fun s -> s.iter = iter) relevant with
            | None -> None
            | Some s ->
                plan.fired <- plan.fired + 1;
                Some
                  (match s.kind with
                  | Fail -> Sdp.Fail_now
                  | Truncate -> Sdp.Stop_now
                  | Noise m -> Sdp.Perturb m))

  let reset plan = plan.fired <- 0
end

(* ------------------------------------------------------------------ *)
(* Retry ladder                                                       *)
(* ------------------------------------------------------------------ *)

type rung =
  | Baseline
  | Equilibrate
  | Jitter of int
  | Relax_tol of float
  | Bump_iters of float

let rung_name = function
  | Baseline -> "baseline"
  | Equilibrate -> "equilibrate"
  | Jitter k -> Printf.sprintf "jitter:%d" k
  | Relax_tol f -> Printf.sprintf "relax:%g" f
  | Bump_iters f -> Printf.sprintf "bump:%g" f

let default_ladder = [ Equilibrate; Jitter 1; Relax_tol 10.0; Bump_iters 3.0 ]
let ladder_to_string l = String.concat "," (List.map rung_name l)

let ladder_of_string str =
  let str = String.trim str in
  if str = "default" then Ok default_ladder
  else if str = "none" || str = "" then Ok []
  else
    let parse_tok tok =
      let name, arg =
        match String.index_opt tok ':' with
        | None -> (tok, None)
        | Some i ->
            (String.sub tok 0 i, Some (String.sub tok (i + 1) (String.length tok - i - 1)))
      in
      let bad () = Error (Printf.sprintf "bad ladder rung %S" tok) in
      match (name, arg) with
      | "equilibrate", None -> Ok Equilibrate
      | "jitter", None -> Ok (Jitter 1)
      | "jitter", Some a -> (
          match int_of_string_opt a with Some k when k >= 1 -> Ok (Jitter k) | _ -> bad ())
      | "relax", None -> Ok (Relax_tol 10.0)
      | "relax", Some a -> (
          match float_of_string_opt a with Some f when f > 1.0 -> Ok (Relax_tol f) | _ -> bad ())
      | "bump", None -> Ok (Bump_iters 3.0)
      | "bump", Some a -> (
          match float_of_string_opt a with Some f when f > 1.0 -> Ok (Bump_iters f) | _ -> bad ())
      | _ -> bad ()
    in
    let toks = List.map String.trim (String.split_on_char ',' str) in
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | t :: rest -> ( match parse_tok t with Ok r -> go (r :: acc) rest | Error e -> Error e)
    in
    go [] toks

(* Rungs escalate cumulatively: each attempt's parameters build on the
   previous attempt's, so e.g. the Relax_tol attempt is still
   equilibrated and jittered. *)
let apply_rung (p : Sdp.params) = function
  | Baseline -> p
  | Equilibrate -> { p with Sdp.equilibrate = true }
  | Jitter k ->
      let scales = [| 0.25; 4.0; 0.05 |] and steps = [| 0.95; 0.9; 0.85 |] in
      let i = (max 1 k - 1) mod 3 in
      { p with Sdp.init_scale = scales.(i); step_frac = steps.(i) }
  | Relax_tol f -> { p with Sdp.tol_gap = p.Sdp.tol_gap *. f; tol_res = p.Sdp.tol_res *. f }
  | Bump_iters f ->
      { p with Sdp.max_iter = int_of_float (ceil (float_of_int p.Sdp.max_iter *. f)) }

(* ------------------------------------------------------------------ *)
(* Attempts, diagnoses, policy                                        *)
(* ------------------------------------------------------------------ *)

type attempt = {
  rung : rung;
  status : Sdp.status;
  iterations : int;
  gap : float;
  primal_res : float;
  dual_res : float;
  best_score : float;
  faults_fired : int;
  time_s : float;
}

type outcome = Certified | Degraded | Failed

type diagnosis = {
  label : string;
  solve_index : int;
  attempts : attempt list;
  outcome : outcome;
  accepted_rung : rung option;
  deadline_hit : bool;
}

type policy = {
  ladder : rung list;
  retries_enabled : bool;
  accept_degraded : bool;
  quiet : bool;
  solve_deadline_s : float option;
  pipeline_deadline_s : float option;
  clock_mode : time_mode;
  faults : Faults.plan;
  supervise : Supervise.ctx option;
  session : Sdp.Session.t option;
  clock : clock;
}

and clock = {
  mutable started : float option;
  mutable solve_count : int;
  mutable journal_rev : diagnosis list;
  (* Budget accounting: every attempt is counted here, including quiet
     probe attempts that never enter the journal, so a fresh policy's
     consumption is the true cost of the pipeline it drove. *)
  mutable attempt_count : int;
  mutable attempt_s : float;
}

let fresh_clock () =
  { started = None; solve_count = 0; journal_rev = []; attempt_count = 0; attempt_s = 0.0 }

let make ?(ladder = default_ladder) ?(retries = true) ?(accept_degraded = true)
    ?solve_deadline_s ?pipeline_deadline_s ?(clock_mode = Wall_clock)
    ?(faults = Faults.none ()) ?supervise ?(warm_starts = true) ?session () =
  let session =
    if not warm_starts then None
    else Some (match session with Some s -> s | None -> Sdp.Session.create ())
  in
  {
    ladder;
    retries_enabled = retries;
    accept_degraded;
    quiet = false;
    solve_deadline_s;
    pipeline_deadline_s;
    clock_mode;
    faults;
    supervise;
    session;
    clock = fresh_clock ();
  }

let default () = make ()
let probe p = { p with retries_enabled = false; quiet = true }
let supervisor p = p.supervise
let with_supervisor p supervise = { p with supervise }

(* Warm starts are withheld under a fault plan: the session's
   accept-or-re-solve discipline runs up to two interior-point passes
   for one logical attempt, which would double-fire iteration-indexed
   injected faults and skew the fired-fault accounting chaos tests
   assert on. *)
let session_of p = if Faults.is_empty p.faults then p.session else None
let now p = time_of_mode p.clock_mode

let begin_pipeline p =
  p.clock.started <- Some (now p);
  p.clock.solve_count <- 0;
  p.clock.journal_rev <- [];
  p.clock.attempt_count <- 0;
  p.clock.attempt_s <- 0.0;
  Faults.reset p.faults

let ensure_started p = if p.clock.started = None then p.clock.started <- Some (now p)

let elapsed_s p =
  match p.clock.started with None -> 0.0 | Some t0 -> now p -. t0

let out_of_time p =
  match p.pipeline_deadline_s with
  | None -> false
  | Some d ->
      ensure_started p;
      elapsed_s p >= d

let solves p = p.clock.solve_count
let journal p = List.rev p.clock.journal_rev

type budget = { attempts : int; attempt_s : float; solves : int }

let consumed p =
  { attempts = p.clock.attempt_count; attempt_s = p.clock.attempt_s; solves = solves p }
let failures p = List.filter (fun d -> d.outcome = Failed) (journal p)

(* ------------------------------------------------------------------ *)
(* Reporting                                                          *)
(* ------------------------------------------------------------------ *)

let status_string = function
  | Sdp.Optimal -> "optimal"
  | Sdp.Near_optimal -> "near_optimal"
  | Sdp.Primal_infeasible -> "primal_infeasible"
  | Sdp.Dual_infeasible -> "dual_infeasible"
  | Sdp.Max_iterations -> "max_iterations"
  | Sdp.Numerical_failure -> "numerical_failure"

let outcome_string = function
  | Certified -> "certified"
  | Degraded -> "degraded"
  | Failed -> "failed"

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "\"nan\""
  else if f = Float.infinity then "\"inf\""
  else if f = Float.neg_infinity then "\"-inf\""
  else Printf.sprintf "%.6g" f

let attempt_to_json a =
  Printf.sprintf
    "{\"rung\":\"%s\",\"status\":\"%s\",\"iterations\":%d,\"gap\":%s,\"primal_res\":%s,\"dual_res\":%s,\"best_score\":%s,\"faults_fired\":%d,\"time_s\":%s}"
    (json_escape (rung_name a.rung))
    (status_string a.status) a.iterations (json_float a.gap) (json_float a.primal_res)
    (json_float a.dual_res) (json_float a.best_score) a.faults_fired (json_float a.time_s)

let diagnosis_to_json d =
  Printf.sprintf
    "{\"label\":\"%s\",\"solve_index\":%d,\"outcome\":\"%s\",\"accepted_rung\":%s,\"deadline_hit\":%b,\"attempts\":[%s]}"
    (json_escape d.label) d.solve_index (outcome_string d.outcome)
    (match d.accepted_rung with
    | None -> "null"
    | Some r -> Printf.sprintf "\"%s\"" (json_escape (rung_name r)))
    d.deadline_hit
    (String.concat "," (List.map attempt_to_json d.attempts))

let pp_attempt fmt a =
  Format.fprintf fmt "%s: %s after %d iters (gap %.2e, pres %.2e, dres %.2e%s)"
    (rung_name a.rung) (status_string a.status) a.iterations a.gap a.primal_res a.dual_res
    (if a.faults_fired > 0 then Printf.sprintf ", %d fault(s) fired" a.faults_fired else "")

let pp_diagnosis fmt d =
  Format.fprintf fmt "@[<v 2>solve #%d %S: %s%s%s@,%a@]" d.solve_index d.label
    (outcome_string d.outcome)
    (match d.accepted_rung with
    | Some r when d.outcome <> Failed -> Printf.sprintf " at rung %s" (rung_name r)
    | _ -> "")
    (if d.deadline_hit then " [deadline hit]" else "")
    (Format.pp_print_list pp_attempt)
    d.attempts

let report_json p =
  let js = journal p in
  let bad = List.filter (fun d -> d.outcome <> Certified) js in
  Printf.sprintf
    "{\"solves\":%d,\"faults_fired\":%d,\"elapsed_s\":%s,\"certified\":%d,\"degraded\":%d,\"failed\":%d,\"diagnoses\":[%s]}"
    (solves p) (Faults.fired p.faults)
    (json_float (elapsed_s p))
    (List.length (List.filter (fun d -> d.outcome = Certified) js))
    (List.length (List.filter (fun d -> d.outcome = Degraded) js))
    (List.length (List.filter (fun d -> d.outcome = Failed) js))
    (String.concat "," (List.map diagnosis_to_json bad))

(* ------------------------------------------------------------------ *)
(* The orchestration engine                                           *)
(* ------------------------------------------------------------------ *)

let conclusive = function
  | Sdp.Primal_infeasible | Sdp.Dual_infeasible -> true
  | _ -> false

(* Run one logical solve through the ladder. [attempt_solve] runs the
   underlying solver with the given parameters and returns the caller's
   payload plus the raw SDP solution; [certified] is the caller's
   acceptance check (a posteriori validation, not just solver status);
   [salvageable] decides whether a non-certified payload is still worth
   surfacing as Degraded. *)
let run_ladder policy ~label ?describe ?capsule ~attempt_solve ~certified ~salvageable
    (base_params : Sdp.params) =
  ensure_started policy;
  policy.clock.solve_count <- policy.clock.solve_count + 1;
  let solve_index = policy.clock.solve_count in
  let deadline_hit = ref false in
  let wrap ~attempt (params : Sdp.params) =
    let fault_hook = Faults.hook policy.faults ~solve_index ~attempt in
    (* The solve's own start time is captured lazily at the hook's first
       firing, not at wrap time: under supervision this closure crosses
       a fork, and the child's CPU clock restarts at zero — a pre-fork
       [Cpu_time] stamp would push the deadline out of reach. *)
    let solve_start = ref None in
    let inner = params.Sdp.on_iteration in
    let hook iter =
      match (match fault_hook with Some h -> h iter | None -> None) with
      | Some f -> Some f
      | None ->
          let over_solve =
            match policy.solve_deadline_s with
            | None -> false
            | Some d ->
                let t = now policy in
                let t0 =
                  match !solve_start with
                  | Some t0 -> t0
                  | None ->
                      solve_start := Some t;
                      t
                in
                t -. t0 >= d
          in
          if over_solve || out_of_time policy then begin
            deadline_hit := true;
            Some Sdp.Stop_now
          end
          else ( match inner with Some h -> h iter | None -> None)
    in
    { params with Sdp.on_iteration = Some hook }
  in
  let rungs = Baseline :: (if policy.retries_enabled then policy.ladder else []) in
  let finish ~attempts_rev ~outcome ~accepted_rung payload =
    let d =
      {
        label;
        solve_index;
        attempts = List.rev attempts_rev;
        outcome;
        accepted_rung;
        deadline_hit = !deadline_hit;
      }
    in
    (* Probe solves (quiet policies) expect failure as an answer — they
       neither enter the journal nor warn, so bisection steps don't read
       as pipeline failures in the report. *)
    if not policy.quiet then policy.clock.journal_rev <- d :: policy.clock.journal_rev;
    (match outcome with
    | Certified ->
        if List.length d.attempts > 1 then
          Log.info (fun k ->
              k "solve #%d %S recovered at rung %s after %d attempt(s)" solve_index label
                (match accepted_rung with Some r -> rung_name r | None -> "?")
                (List.length d.attempts))
    | Degraded ->
        (if policy.quiet then Log.debug else Log.warn) (fun k ->
            k "solve #%d %S DEGRADED (rung %s) — acceptance requires exact validation"
              solve_index label
              (match accepted_rung with Some r -> rung_name r | None -> "?"))
    | Failed ->
        (if policy.quiet then Log.debug else Log.warn) (fun k ->
            k "solve #%d %S FAILED after %d attempt(s)%s: %a" solve_index label
              (List.length d.attempts)
              (match describe with None -> "" | Some f -> Printf.sprintf " (%s)" (f ()))
              pp_diagnosis d));
    (payload, d)
  in
  let rec go params attempt_idx rungs attempts_rev best last hint =
    match rungs with
    | [] -> (
        match best with
        | Some (rung, payload, _) when policy.accept_degraded ->
            finish ~attempts_rev ~outcome:Degraded ~accepted_rung:(Some rung) payload
        | _ -> (
            match last with
            | Some payload -> finish ~attempts_rev ~outcome:Failed ~accepted_rung:None payload
            | None -> invalid_arg "Resilient.run_ladder: empty ladder"))
    | rung :: rest ->
        let params = apply_rung params rung in
        let fired_before = Faults.fired policy.faults in
        let t0 = now policy in
        let payload, (sdp : Sdp.solution) =
          attempt_solve ~attempt:attempt_idx ~hint:(Option.map fst hint)
            (wrap ~attempt:attempt_idx params)
        in
        let a =
          {
            rung;
            status = sdp.Sdp.status;
            iterations = sdp.Sdp.iterations;
            gap = sdp.Sdp.gap;
            primal_res = sdp.Sdp.primal_res;
            dual_res = sdp.Sdp.dual_res;
            best_score = sdp.Sdp.best_score;
            faults_fired = Faults.fired policy.faults - fired_before;
            time_s = now policy -. t0;
          }
        in
        policy.clock.attempt_count <- policy.clock.attempt_count + 1;
        policy.clock.attempt_s <- policy.clock.attempt_s +. a.time_s;
        let attempts_rev = a :: attempts_rev in
        if certified payload then
          finish ~attempts_rev ~outcome:Certified ~accepted_rung:(Some rung) payload
        else
          let best =
            if salvageable payload then
              match best with
              | Some (_, _, sc) when sc <= sdp.Sdp.best_score -> best
              | _ -> Some (rung, payload, sdp.Sdp.best_score)
            else best
          in
          (* Retry rungs warm-start from the best salvaged iterate seen
             so far: the capsule (when the caller supplies one and this
             attempt's iterate is the best yet) seeds the next rung. *)
          let hint =
            match capsule with
            | None -> hint
            | Some f ->
                let better =
                  Float.is_finite sdp.Sdp.best_score
                  &&
                  match hint with None -> true | Some (_, sc) -> sdp.Sdp.best_score < sc
                in
                if better then
                  match f sdp with
                  | Some w -> Some (w, sdp.Sdp.best_score)
                  | None -> hint
                else hint
          in
          (* Conclusive infeasibility is an answer, not a numerical
             accident — retrying with looser tolerances cannot make an
             infeasible program feasible. Out-of-time likewise stops the
             ladder: salvage what we have. *)
          if conclusive sdp.Sdp.status || out_of_time policy then
            go params (attempt_idx + 1) [] attempts_rev best (Some payload) hint
          else go params (attempt_idx + 1) rest attempts_rev best (Some payload) hint
  in
  go base_params 0 rungs [] None None None

(* The supervised inner solver for one ladder attempt, or [None] without
   a supervisor. Process-level faults (kill/stall/corrupt-cache) target
   the first attempt of their logical solve only, mirroring the
   in-process fault contract, so the retry ladder demonstrably
   recovers. The current logical solve index is read off the policy
   clock — [run_ladder] has already counted this solve when an attempt
   runs. *)
let supervised_solver policy ~label ~attempt ?hint () =
  match policy.supervise with
  | None -> None
  | Some ctx ->
      let proc_fault =
        if attempt = 0 then
          Supervise.Fault.for_solve (Faults.proc_specs policy.faults)
            policy.clock.solve_count
        else None
      in
      let session = session_of policy in
      Some
        (fun ?params prob ->
          Supervise.solve_sdp ctx ~label ?proc_fault ?session ?hint ?params prob)

let solve_sdp policy ~label ?(params = Sdp.default_params) prob =
  let session = session_of policy in
  let attempt_solve ~attempt ~hint p =
    let sol =
      match supervised_solver policy ~label ~attempt ?hint () with
      | Some solve -> solve ~params:p prob
      | None -> (
          match session with
          | Some sess -> Sdp.Session.solve sess ?hint ~params:p prob
          | None -> Sdp.solve ~params:p prob)
    in
    (sol, sol)
  in
  let certified (s : Sdp.solution) = s.Sdp.status = Sdp.Optimal in
  let salvageable (s : Sdp.solution) =
    s.Sdp.status = Sdp.Near_optimal || s.Sdp.best_score < 1e-6
  in
  let describe () =
    Printf.sprintf "%d constraints, %d blocks, %d free vars"
      (Array.length prob.Sdp.constraints)
      (Array.length prob.Sdp.block_dims)
      prob.Sdp.n_free
  in
  let capsule =
    Option.map (fun _ (s : Sdp.solution) -> Sdp.warm_start_of_solution prob s) session
  in
  run_ladder policy ~label ~describe ?capsule ~attempt_solve ~certified ~salvageable
    params

let solve_sos policy ~label ?(params = Sdp.default_params) ?(psd_tol = 1e-7)
    ?(eq_tol = 1e-5) ?accept prob =
  let session = session_of policy in
  let sdp_prob = lazy (Sos.sdp_problem prob) in
  let attempt_solve ~attempt ~hint p =
    let solver = supervised_solver policy ~label ~attempt ?hint () in
    let options = Sos.Options.make ?solver ~params:p ~psd_tol ~eq_tol ?session ?hint () in
    let sol = Sos.solve ~options prob in
    (sol, sol.Sos.sdp)
  in
  let certified =
    match accept with Some f -> f | None -> fun (s : Sos.solution) -> s.Sos.certified
  in
  (* Salvage either a feasible-but-uncertified solve (Gram slightly
     indefinite) or a best iterate that got numerically close — both are
     only accepted downstream if exact validation re-proves them. *)
  let salvageable (s : Sos.solution) =
    s.Sos.feasible
    || (s.Sos.sdp.Sdp.best_score < 1e-3
       && s.Sos.min_gram_eig >= -.(1e3 *. psd_tol)
       && s.Sos.max_eq_residual <= 1e3 *. eq_tol)
  in
  let describe () =
    let p = Lazy.force sdp_prob in
    Printf.sprintf "%d constraints, %d blocks, %d free vars"
      (Array.length p.Sdp.constraints)
      (Array.length p.Sdp.block_dims)
      p.Sdp.n_free
  in
  let capsule =
    Option.map
      (fun _ (s : Sdp.solution) -> Sdp.warm_start_of_solution (Lazy.force sdp_prob) s)
      session
  in
  run_ladder policy ~label ~describe ?capsule ~attempt_solve ~certified ~salvageable
    params
