(** Resilient solve orchestration for the SOS/SDP pipeline.

    Every result of the verification pipeline (Theorem-1 certificates,
    the Lemma-1 level bisection, Algorithm-1 advection, escape and
    barrier certificates) rests on a chain of interior-point SDP solves,
    and the from-scratch solver can return [Numerical_failure] or
    [Max_iterations] on ill-conditioned instances. This module turns a
    single fragile [Sos.solve] / [Sdp.solve] call into an orchestrated
    one:

    - a configurable {e retry ladder}: on a non-certified outcome,
      re-solve with escalating interventions — Jacobi equilibration of
      the problem data, deterministic jittered restarts, relaxed
      tolerances, bumped iteration limits (margin/degree adjustment for
      certificate searches lives in {!Certificates}, which composes with
      this ladder);
    - {e per-solve and per-pipeline deadlines} with best-iterate
      salvage, enforced through the solver's [on_iteration] hook — a
      stuck solve degrades to its best iterate instead of hanging;
    - a {e graceful degradation} contract: a non-certified but
      salvageable solution is surfaced as [Degraded]; callers must gate
      acceptance on the exact kernel ([Certificates.validate_exactly] /
      [Exact.Check]) re-proving it;
    - structured, machine-readable {e diagnoses}: which labelled
      condition failed, every rung attempted, and per-attempt status /
      residuals / iteration counts ({!journal}, {!report_json});
    - a deterministic {e fault-injection harness} ({!Faults}) that
      forces solver failures at chosen (solve, iteration) sites, so
      tests can prove each recovery path is actually exercised.

    A {!policy} value doubles as the pipeline context: it carries the
    (mutable) deadline clock, logical solve counter and diagnosis
    journal, so one policy threaded through a whole pipeline gives a
    shared deadline and a single chronological journal. Create a fresh
    policy per pipeline (or call {!begin_pipeline}). Deadlines are
    monotonic wall-clock seconds by default ({!Wall_clock}); the
    {!Cpu_time} mode ([Sys.time]) remains available, but note that CPU
    time neither advances while a supervised worker process solves nor
    survives a fork — under {!Supervise} isolation, wall clock is the
    only base that measures the pipeline truthfully.

    With a {!Supervise.ctx} attached ([make ~supervise]), every ladder
    attempt's interior-point solve runs in a forked worker under the
    supervisor's wall-clock timeout and memory cap, consults the
    content-addressed solve cache, and is journaled for [--resume];
    worker crashes and timeouts come back as [Numerical_failure] /
    [Max_iterations] attempts that the ladder escalates exactly like
    in-process failures. *)

(** The deadline time base. *)
type time_mode =
  | Cpu_time  (** [Sys.time]: CPU seconds of this process only *)
  | Wall_clock  (** [Unix.gettimeofday]-based; the default — the only
                    base that keeps measuring across forked workers *)

val set_wall_clock_source : (unit -> float) option -> unit
(** Replace (or with [None] restore) the wall-clock source — a test
    hook, so deadline behaviour is checkable without waiting. Global;
    affects every policy in {!Wall_clock} mode. *)

(** Deterministic fault injection. A plan is a set of (kind, logical
    solve index, iteration) triggers; each fires on the {e first}
    attempt of its target solve only, so the retry ladder can
    demonstrably recover. Process-level kinds ([kill@S:I], [stall@S:I],
    [corrupt-cache@S] — see {!Supervise.Fault}) parse out of the same
    plan string and fire through the supervisor, under the same
    first-attempt-only contract. *)
module Faults : sig
  type kind =
    | Fail  (** force [Sdp.Numerical_failure] *)
    | Truncate  (** force an early stop with best-iterate salvage *)
    | Noise of float  (** inject symmetric Gram noise of this magnitude *)

  type spec = {
    kind : kind;
    solve : int;  (** 1-based logical solve index under the policy; 0 = every solve *)
    iter : int;  (** interior-point iteration at which the fault fires *)
  }

  type plan

  val none : unit -> plan
  val of_specs : ?procs:Supervise.Fault.spec list -> spec list -> plan

  val of_string : string -> (plan, string) result
  (** Parse a comma-separated plan: [fail@S:I], [trunc@S:I],
      [noise@S:I:MAG], plus the process-level [kill@S:I], [stall@S:I],
      [corrupt-cache@S], with [S] a solve index or [*]. [""] and
      ["none"] are the empty plan. *)

  val to_string : plan -> string
  val is_empty : plan -> bool

  val proc_specs : plan -> Supervise.Fault.spec list
  (** The process-level triggers of the plan (effective only when the
      policy carries a supervisor). *)

  val fired : plan -> int
  (** How many {e in-process} injections have actually fired so far.
      Process-level faults act on the worker, whose memory is discarded,
      and are counted by {!Supervise.stats} instead. *)
end

(** One rung of the retry ladder. Rungs are applied {e cumulatively} in
    ladder order — each attempt escalates on top of the previous
    parameter set. *)
type rung =
  | Baseline  (** the caller's own parameters (always attempt 0) *)
  | Equilibrate  (** Jacobi preconditioning of the SDP data *)
  | Jitter of int  (** deterministic restart [k]: rescaled initial point
                       and a shorter step fraction *)
  | Relax_tol of float  (** multiply [tol_gap]/[tol_res] *)
  | Bump_iters of float  (** multiply [max_iter] *)

val rung_name : rung -> string

val default_ladder : rung list
(** [Equilibrate; Jitter 1; Relax_tol 10; Bump_iters 3]. *)

val ladder_of_string : string -> (rung list, string) result
(** ["default"], ["none"], or a comma list of [equilibrate], [jitter:K],
    [relax:F], [bump:F] (suffixes optional). *)

val ladder_to_string : rung list -> string

(** Everything recorded about one solve attempt. *)
type attempt = {
  rung : rung;
  status : Sdp.status;
  iterations : int;
  gap : float;
  primal_res : float;
  dual_res : float;
  best_score : float;
  faults_fired : int;  (** injections that fired during this attempt *)
  time_s : float;
}

type outcome =
  | Certified  (** an attempt passed the caller's certification check *)
  | Degraded
      (** best attempt is salvageable ((near-)feasible with small
          best-iterate score) but not float-certified — only acceptable
          if the exact kernel re-proves it *)
  | Failed

(** The structured failure/recovery record of one logical solve. *)
type diagnosis = {
  label : string;  (** which condition this solve certifies *)
  solve_index : int;  (** 1-based logical solve index under the policy *)
  attempts : attempt list;  (** chronological: baseline first *)
  outcome : outcome;
  accepted_rung : rung option;  (** the rung whose attempt was accepted *)
  deadline_hit : bool;
}

val pp_diagnosis : Format.formatter -> diagnosis -> unit
val diagnosis_to_json : diagnosis -> string

type policy = {
  ladder : rung list;
  retries_enabled : bool;
  accept_degraded : bool;
      (** surface salvageable-but-uncertified solutions as [Degraded]
          rather than [Failed]; acceptance must then be gated by exact
          validation *)
  quiet : bool;
      (** probe mode: non-certified outcomes are expected answers — they
          are not journaled and log at debug level only *)
  solve_deadline_s : float option;  (** per-solve budget, in {!clock_mode} seconds *)
  pipeline_deadline_s : float option;
      (** budget for the whole pipeline sharing this policy *)
  clock_mode : time_mode;  (** deadline time base; default {!Wall_clock} *)
  faults : Faults.plan;
  supervise : Supervise.ctx option;
      (** when present, ladder attempts solve in forked workers through
          {!Supervise.solve_sdp} (timeout, memory cap, cache, journal) *)
  session : Sdp.Session.t option;
      (** warm-start session shared by every solve under this policy:
          bisection rungs and sweep neighbours of the same problem
          structure resume from the previous clean iterate, and retry
          rungs warm-start from the best salvaged one. [None] disables
          warm starts entirely. *)
  clock : clock;  (** mutable pipeline state (journal, counter, clock) *)
}

and clock

val make :
  ?ladder:rung list ->
  ?retries:bool ->
  ?accept_degraded:bool ->
  ?solve_deadline_s:float ->
  ?pipeline_deadline_s:float ->
  ?clock_mode:time_mode ->
  ?faults:Faults.plan ->
  ?supervise:Supervise.ctx ->
  ?warm_starts:bool ->
  ?session:Sdp.Session.t ->
  unit ->
  policy
(** Fresh policy (fresh clock/journal). Defaults: {!default_ladder},
    retries on, degradation on, no deadlines, wall-clock deadline base,
    no faults, no supervisor, and a fresh warm-start session
    ([~warm_starts:false] opts out; [~session] shares an existing
    one). *)

val session_of : policy -> Sdp.Session.t option
(** The session solves under this policy will actually use: the
    policy's session, withheld while a fault plan is active — the
    session's warm-attempt/cold-re-solve discipline can run two
    interior-point passes for one logical attempt, which would
    double-fire iteration-indexed injected faults. *)

val default : unit -> policy

val probe : policy -> policy
(** The same policy (sharing clock, journal, faults, deadlines and
    supervisor) with retries disabled and [quiet] set — for call sites
    where a solver failure is an expected {e answer} (feasibility
    probes, bisection steps) rather than an error worth escalating or
    journaling. *)

val supervisor : policy -> Supervise.ctx option

val with_supervisor : policy -> Supervise.ctx option -> policy
(** The same policy (sharing clock, journal and faults) with the
    supervisor replaced — e.g. dropped, for solves whose solutions feed
    closures that must not cross a process boundary. *)

val begin_pipeline : policy -> unit
(** Reset the clock, solve counter, journal and fault counters; start
    the pipeline deadline now. Implicit on the first solve otherwise. *)

val out_of_time : policy -> bool
val elapsed_s : policy -> float

val solves : policy -> int
(** Logical solves run under this policy so far. *)

(** Cumulative resource accounting for one policy/pipeline — the basis
    of per-cell budgets in the sweep orchestrator: an atlas cell gets a
    fresh policy, so [consumed] is exactly what that cell cost,
    including quiet probe solves that never enter the journal. *)
type budget = {
  attempts : int;  (** individual solver attempts, across all rungs *)
  attempt_s : float;  (** total attempt time, in {!time_mode} seconds *)
  solves : int;  (** logical solves (= {!solves}) *)
}

val consumed : policy -> budget
(** Resources consumed since policy creation / {!begin_pipeline}. *)

val journal : policy -> diagnosis list
(** All diagnoses, chronological. *)

val failures : policy -> diagnosis list

val report_json : policy -> string
(** Machine-readable pipeline report: solve/fault counters, elapsed
    time, and the full diagnosis of every failed (and degraded) solve
    with its attempt history. *)

val solve_sos :
  policy ->
  label:string ->
  ?params:Sdp.params ->
  ?psd_tol:float ->
  ?eq_tol:float ->
  ?accept:(Sos.solution -> bool) ->
  Sos.t ->
  Sos.solution * diagnosis
(** Orchestrated [Sos.solve]: run the baseline attempt and then the
    ladder until an attempt is accepted — by default when the solution
    is [certified] (the a posteriori Gram PSD/residual checks pass);
    [accept] overrides the criterion (e.g. plain feasibility for
    multiplier re-solves whose soundness is established downstream by
    the exact kernel). Conclusive infeasibility
    ([Primal_infeasible]/[Dual_infeasible]) is an answer and is not
    retried. The returned solution is the accepted attempt's, or the
    best salvageable one, or the last attempt's; consult the diagnosis
    (also appended to the policy journal) before trusting it. *)

val solve_sdp :
  policy ->
  label:string ->
  ?params:Sdp.params ->
  Sdp.problem ->
  Sdp.solution * diagnosis
(** Orchestrated [Sdp.solve]; certification = [Optimal] status,
    salvage = [Near_optimal] or a small best-iterate score. *)
