module Ppoly = Sos.Ppoly

let src = Logs.Src.create "certificates" ~doc:"Lyapunov / escape certificate search"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  degree : int;
  eps_pos : float;
  eps_decr : float;
  robust_vertices : bool;
  sdp_params : Sdp.params;
  psd_tol : float;
  eq_tol : float;
  resilience : Resilient.policy;
}

let default_config order =
  {
    degree = (match order with Pll.Third -> 6 | Pll.Fourth -> 4);
    eps_pos = 1e-2;
    eps_decr = 1e-3;
    robust_vertices = false;
    sdp_params = Sdp.default_params;
    psd_tol = 1e-7;
    eq_tol = 1e-5;
    resilience = Resilient.default ();
  }

type stats = {
  time_s : float;
  sdp_iterations : int;
  n_constraints : int;
  n_gram_blocks : int;
  min_gram_eig : float;
  max_residual : float;
}

type t = { vs : Poly.t array; cfg : config; solve_stats : stats }

let norm2_poly n =
  Poly.sum n (List.init n (fun i -> Poly.mul (Poly.var n i) (Poly.var n i)))

let stats_of prob (sol : Sos.solution) time_s =
  {
    time_s;
    sdp_iterations = sol.Sos.sdp.Sdp.iterations;
    n_constraints = Sos.n_equalities prob;
    n_gram_blocks = Sos.n_gram_blocks prob;
    min_gram_eig = sol.Sos.min_gram_eig;
    max_residual = sol.Sos.max_eq_residual;
  }

(* One certificate-search solve at the given margins, orchestrated by
   the config's resilience policy. The caller (the public
   [find_multi_lyapunov], defined after [validate_exactly]) decides what
   a Degraded outcome means. *)
let search_multi_lyapunov (cfg : config) (s : Pll.scaled) =
  let n = s.Pll.nvars in
  let t_start = Sys.time () in
  let prob = Sos.create ~nvars:n in
  let vs = Array.init Pll.n_modes (fun _ -> Sos.fresh_poly prob ~deg:cfg.degree ~min_deg:2) in
  let nrm = norm2_poly n in
  let points =
    if cfg.robust_vertices then Pll.vertices s else [ Pll.nominal s ]
  in
  for m = 0 to Pll.n_modes - 1 do
    let domain = Pll.mode_domain s m in
    (* (a) positivity of V_m on its flow set *)
    Sos.add_nonneg_on prob ~domain
      (Ppoly.sub vs.(m) (Ppoly.of_poly (Poly.scale cfg.eps_pos nrm)));
    (* (b) decrease of V_m along the flow, for each coefficient point *)
    List.iter
      (fun pt ->
        let f = Pll.flow s pt m in
        Sos.add_nonneg_on prob ~domain
          (Ppoly.sub
             (Ppoly.neg (Ppoly.lie_derivative vs.(m) f))
             (Ppoly.of_poly (Poly.scale cfg.eps_decr nrm))))
      points
  done;
  (* (c) non-increase across each (identity-reset) switch. The jump
     surfaces are the hyperplanes θ = ±θ_on, so instead of a free
     equality multiplier we substitute θ and state the condition on the
     lower-dimensional slice — exact, and far better conditioned. *)
  let theta = Pll.theta_index s in
  List.iter
    (fun (src_m, dst_m, h, dir) ->
      (* Recover the surface value θ* from h = θ − θ* (h is monic in θ). *)
      let theta_star = -.Poly.eval h (Array.make n 0.0) in
      let restrict q = Poly.subst q (Array.init n (fun i -> if i = theta then Poly.const n theta_star else Poly.var n i)) in
      let box = List.map restrict (Pll.containment_constraints s src_m) in
      let dir = List.map restrict dir in
      Sos.add_nonneg_on prob ~domain:(dir @ box)
        (Ppoly.fix_var theta theta_star (Ppoly.sub vs.(src_m) vs.(dst_m))))
    (Pll.switching_surfaces s);
  Log.info (fun k ->
      k "multi-Lyapunov search: deg %d, %d equalities, %d gram blocks" cfg.degree
        (Sos.n_equalities prob) (Sos.n_gram_blocks prob));
  Log.info (fun k ->
      k "a posteriori tolerances: psd_tol %.2e, eq_tol %.2e" cfg.psd_tol cfg.eq_tol);
  let sol, diag =
    Resilient.solve_sos cfg.resilience ~label:"multi-lyapunov" ~params:cfg.sdp_params
      ~psd_tol:cfg.psd_tol ~eq_tol:cfg.eq_tol prob
  in
  let time_s = Sys.time () -. t_start in
  let values () = Array.map (fun v -> Poly.chop ~tol:1e-9 (Sos.value sol v)) vs in
  let candidate () = { vs = values (); cfg; solve_stats = stats_of prob sol time_s } in
  (sol, diag, candidate)

(* ----- exact a-posteriori validation ----- *)

(* Re-prove one instantiated condition [target >= 0 on {g >= 0}] and hand
   the solver's Gram data to the exact kernel. The re-solve is a pure
   multiplier search (the certificate polynomials are fixed floats), so
   the SDP is small and linear; extraction relies on [add_nonneg_on]'s
   deterministic block order — one σ per domain polynomial, in order,
   then the main block. The domain is pre-normalized exactly as
   [add_nonneg_on] normalizes it, so the rational embeddings of the g's
   match the σ blocks they multiply. *)
let exact_condition ?mult_deg ?denom_bits ~policy ~label ~sdp_params ~nvars ~domain
    target_q =
  let normalize g =
    let c = Poly.max_coeff g in
    if c > 0.0 then Poly.scale (1.0 /. c) g else g
  in
  let domain = List.map normalize domain in
  let prob = Sos.create ~nvars in
  Sos.add_nonneg_on ?mult_deg prob ~domain (Ppoly.of_poly (Exact.Qpoly.to_poly target_q));
  (* Acceptance here is plain solver feasibility: soundness is
     established downstream by the exact kernel, so the ladder should
     not insist on the float Gram checks. *)
  let sol, _diag =
    Resilient.solve_sos policy ~label ~params:sdp_params
      ~accept:(fun (s : Sos.solution) -> s.Sos.feasible)
      prob
  in
  if not sol.Sos.feasible then Error "multiplier re-solve did not converge"
  else begin
    let bases = Sos.gram_bases prob in
    let grams = Array.of_list (Sos.gram_blocks sol) in
    let n_dom = List.length domain in
    if Array.length bases <> n_dom + 1 || Array.length grams <> n_dom + 1 then
      Error
        (Printf.sprintf "unexpected block structure: %d blocks for %d domain polynomials"
           (Array.length grams) n_dom)
    else begin
      let sigmas =
        List.mapi (fun i g -> (Exact.Qpoly.of_poly g, (bases.(i), grams.(i)))) domain
      in
      let main = (bases.(n_dom), grams.(n_dom)) in
      Ok (Exact.Check.certify_q ?denom_bits ~nvars ~target:target_q ~sigmas ~main ())
    end
  end

type exact_validation = {
  artifact : Exact.Artifact.t;
  verdicts : (string * Exact.Check.verdict) list;
  all_proven : bool;
  min_margin : Exact.Rat.t option;
  vs_exact : Exact.Qpoly.t array;
}

(* Stating condition (c) in both directions across a switching surface
   pins V_src − V_dst down hard: on the slice it must vanish wherever
   neither direction constraint is active, and — more finely — it must
   lie in the exact monomial span that the reduced Gram bases can
   generate. Float certificates miss these identities by solver noise
   (~1e-10), so no exact certificate exists for them exactly as
   returned: the kernel honestly reports the gap as an identity defect
   at the unreachable monomials. Repair adaptively: run the kernel,
   read the unabsorbable residual off the returned certificate (after
   {!Exact.Check.absorb} it contains exactly the part of the identity
   no Gram correction can reach), and fold it back into the
   non-reference mode's Lyapunov function, lifting each slice term
   [γ·m] off the slice as [γ/θ̂*ʲ · m·θʲ] with [j = max 0 (2 − deg m)]
   so the correction restricts to [γ·m] at [θ = θ̂*] while still
   vanishing quadratically at the origin (the repaired V must keep
   [V(0) = 0] and its positivity margin). Corrections stay at
   solver-noise scale, far below the (a)/(b) margins. Modes are
   anchored spanning-tree style so a surface between two
   already-anchored modes is never edited — a genuine gap there would
   be reported, not papered over. *)
let lift_slice_term theta theta_star ((m : Poly.Monomial.t), g) =
  let module R = Exact.Rat in
  let j = max 0 (2 - Poly.Monomial.degree m) in
  let m' = Array.copy m in
  m'.(theta) <- m'.(theta) + j;
  let g = ref g in
  for _ = 1 to j do
    g := R.div !g theta_star
  done;
  (m', !g)

let validate_exactly ?mult_deg ?denom_bits ?(slack = 0.5) (s : Pll.scaled) cert =
  let module Q = Exact.Qpoly in
  let module R = Exact.Rat in
  let n = s.Pll.nvars in
  let nrm_q = Q.of_poly (norm2_poly n) in
  (* Exact dyadic embeddings of the float certificate polynomials; the
     proven statement is about these (repaired) rational polynomials. *)
  let vq = Array.map Q.of_poly cert.vs in
  let theta = Pll.theta_index s in
  (* (c) non-increase across switches, stated on the θ = θ* slice as in
     the search — the substitution is done in exact arithmetic. Built
     lazily because the adaptive repair below edits [vq]. *)
  let switch_cond (src_m, dst_m, h, dir) =
    let theta_star = -.Poly.eval h (Array.make n 0.0) in
    let restrict q =
      Poly.subst q
        (Array.init n (fun i ->
             if i = theta then Poly.const n theta_star else Poly.var n i))
    in
    let box = List.map restrict (Pll.containment_constraints s src_m) in
    let dir = List.map restrict dir in
    ( Printf.sprintf "switch-%s-to-%s" (Pll.mode_name src_m) (Pll.mode_name dst_m),
      dir @ box,
      theta_star,
      Q.fix_var theta (R.of_float theta_star) (Q.sub vq.(src_m) vq.(dst_m)) )
  in
  (* Adaptive switch repair: see [lift_slice_term]. *)
  let anchored = Array.make Pll.n_modes false in
  List.iter
    (fun ((src_m, dst_m, _, _) as surf) ->
      let repaired =
        if anchored.(src_m) && anchored.(dst_m) then None
        else if anchored.(dst_m) then begin
          anchored.(src_m) <- true;
          Some src_m
        end
        else begin
          anchored.(src_m) <- true;
          anchored.(dst_m) <- true;
          Some dst_m
        end
      in
      match repaired with
      | None -> ()
      | Some b ->
          let rec go round =
            if round < 3 then begin
              let name, domain, theta_star, target = switch_cond surf in
              if theta_star <> 0.0 then
                match
                  exact_condition ?mult_deg ?denom_bits ~policy:cert.cfg.resilience
                    ~label:("repair:" ^ name) ~sdp_params:cert.cfg.sdp_params ~nvars:n
                    ~domain target
                with
                | Ok (c, Exact.Check.Identity_defect _) ->
                    let ts = R.of_float theta_star in
                    let terms =
                      List.filter
                        (fun ((m : Poly.Monomial.t), _) -> m.(theta) = 0)
                        (Q.terms (Exact.Check.residual c))
                    in
                    if terms <> [] then begin
                      let lift =
                        Q.of_terms n (List.map (lift_slice_term theta ts) terms)
                      in
                      Log.info (fun k ->
                          k "switch repair (%s, round %d): folding %d unabsorbable \
                             residual term(s) into V_%s"
                            name round (List.length terms) (Pll.mode_name b));
                      vq.(b) <-
                        (if b = dst_m then Q.add vq.(b) lift else Q.sub vq.(b) lift);
                      go (round + 1)
                    end
                | _ -> ()
            end
          in
          go 0)
    (Pll.switching_surfaces s);
  let conds = ref [] in
  let points =
    if cert.cfg.robust_vertices then Pll.vertices s else [ Pll.nominal s ]
  in
  for m = 0 to Pll.n_modes - 1 do
    let domain = Pll.mode_domain s m in
    (* (a) positivity, at a fraction [slack] of the searched-for margin:
       the re-solve needs strictly feasible multipliers to survive
       rounding, so we certify V >= slack·eps_pos·‖x‖² instead of the
       full margin. *)
    conds :=
      ( Printf.sprintf "%s-positivity" (Pll.mode_name m),
        domain,
        Q.sub vq.(m) (Q.scale (R.of_float (slack *. cert.cfg.eps_pos)) nrm_q) )
      :: !conds;
    (* (b) decrease along the flow *)
    List.iteri
      (fun k pt ->
        let f = Array.map Q.of_poly (Pll.flow s pt m) in
        let name =
          if List.length points = 1 then Printf.sprintf "%s-decrease" (Pll.mode_name m)
          else Printf.sprintf "%s-decrease-v%d" (Pll.mode_name m) k
        in
        conds :=
          ( name,
            domain,
            Q.sub
              (Q.neg (Q.lie_derivative vq.(m) f))
              (Q.scale (R.of_float (slack *. cert.cfg.eps_decr)) nrm_q) )
          :: !conds)
      points
  done;
  List.iter
    (fun surf ->
      let name, domain, _, target = switch_cond surf in
      conds := (name, domain, target) :: !conds)
    (Pll.switching_surfaces s);
  let conds = List.rev !conds in
  let check (name, domain, target) =
    match
      exact_condition ?mult_deg ?denom_bits ~policy:cert.cfg.resilience
        ~label:("exact:" ^ name) ~sdp_params:cert.cfg.sdp_params ~nvars:n ~domain
        target
    with
    | Error e -> Error (name ^ ": " ^ e)
    | Ok (c, v) -> Ok (name, c, v)
  in
  (* The conditions are independent, and a condition's result — rational
     certificate plus verdict — is plain data, so with a supervisor the
     checks fan out across the worker pool. Journal/diagnosis mutations
     made inside pool workers die with the worker; the certificates are
     what crosses back. *)
  let checked =
    match Resilient.supervisor cert.cfg.resilience with
    | Some ctx when not (Supervise.in_worker ctx) ->
        List.map
          (function Ok r -> r | Error e -> Error ("exact-check worker: " ^ e))
          (Supervise.Pool.map ctx ~f:(fun _ cond -> check cond) conds)
    | _ -> List.map check conds
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | Error e :: _ -> Error e
    | Ok ((name, _, v) as r) :: rest ->
        Log.info (fun k -> k "exact check %-22s %s" name (Exact.Check.verdict_to_string v));
        collect (r :: acc) rest
  in
  match collect [] checked with
  | Error _ as e -> e
  | Ok results ->
      let artifact =
        Exact.Artifact.create
          ~meta:
            [
              ("system", match s.Pll.order with Pll.Third -> "third-order" | Pll.Fourth -> "fourth-order");
              ("degree", string_of_int cert.cfg.degree);
              ("slack", string_of_float slack);
            ]
          (List.map (fun (name, c, _) -> (name, c)) results)
      in
      (match Resilient.supervisor cert.cfg.resilience with
      | Some ctx -> (
          match
            Supervise.save_artifact ctx ~name:"exact-validation.artifact"
              (Exact.Artifact.write artifact)
          with
          | Some path -> Log.info (fun k -> k "exact proof artifact persisted to %s" path)
          | None -> ())
      | None -> ());
      let verdicts = List.map (fun (name, _, v) -> (name, v)) results in
      let margins =
        List.filter_map
          (fun (_, v) -> match v with Exact.Check.Proven { margin } -> Some margin | _ -> None)
          verdicts
      in
      let all_proven = List.length margins = List.length verdicts in
      let min_margin =
        match margins with
        | hd :: tl when all_proven -> Some (List.fold_left Exact.Rat.min hd tl)
        | _ -> None
      in
      Ok { artifact; verdicts; all_proven; min_margin; vs_exact = vq }

(* The public certificate search, defined after [validate_exactly] so a
   Degraded float solve can be gated on the exact kernel re-proving it.
   When the resilience policy allows retries, a failed (or rejected
   degraded) search is re-run with the positivity/decrease margins
   scaled down — a certificate with smaller strict margins is still a
   sound certificate, just a weaker time-to-lock bound. The returned
   [t.cfg] records the margins actually certified. *)
let find_multi_lyapunov ?config (s : Pll.scaled) =
  let cfg = match config with Some c -> c | None -> default_config s.Pll.order in
  let fracs =
    if cfg.resilience.Resilient.retries_enabled then [ 1.0; 0.5; 0.25 ] else [ 1.0 ]
  in
  let describe (diag : Resilient.diagnosis) =
    Printf.sprintf
      "multi-Lyapunov SOS program failed — try a higher degree; diagnosis: %s"
      (Resilient.diagnosis_to_json diag)
  in
  let rec go last_err = function
    | [] -> (
        match last_err with
        | Some e -> Error e
        | None -> Error "multi-Lyapunov search: empty margin schedule")
    | frac :: rest -> (
        let cfg_f =
          if frac = 1.0 then cfg
          else { cfg with eps_pos = cfg.eps_pos *. frac; eps_decr = cfg.eps_decr *. frac }
        in
        if frac < 1.0 then
          Log.warn (fun k ->
              k "multi-Lyapunov: retrying with margins scaled by %g (eps_pos %.2e, \
                 eps_decr %.2e)"
                frac cfg_f.eps_pos cfg_f.eps_decr);
        let _sol, diag, candidate = search_multi_lyapunov cfg_f s in
        match diag.Resilient.outcome with
        | Resilient.Certified -> Ok (candidate ())
        | Resilient.Degraded -> (
            let cand = candidate () in
            Log.warn (fun k ->
                k "multi-Lyapunov: degraded float solve — gating acceptance on exact \
                   validation");
            match validate_exactly s cand with
            | Ok v when v.all_proven ->
                Log.warn (fun k ->
                    k "multi-Lyapunov: degraded solve ACCEPTED — exact kernel re-proved \
                       all %d conditions"
                      (List.length v.verdicts));
                Ok cand
            | Ok _ | Error _ -> go (Some (describe diag)) rest)
        | Resilient.Failed -> go (Some (describe diag)) rest)
  in
  go None fracs

(* {V_q <= beta} ∩ slab_q must keep a strict margin inside every
   containment constraint of mode q. *)
let check_level ?(mult_deg = 2) (s : Pll.scaled) cert beta =
  let mult_deg = Some mult_deg in
  (* A failed level check is an expected answer that steers the
     bisection, not an error: probe policy (no retries, quiet), but
     sharing the pipeline clock and fault plan. *)
  let pol = Resilient.probe cert.cfg.resilience in
  let margin = 1e-3 in
  let ok = ref (not (Resilient.out_of_time pol)) in
  (* Cheap numeric prefilter: a sampled counterexample refutes the level
     without touching the SDP. *)
  let n = s.Pll.nvars in
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 4000 do
    if !ok then begin
      let x =
        Array.init n (fun i ->
            let b =
              if i = Pll.theta_index s then s.Pll.theta_max else 1.3 *. s.Pll.w_max
            in
            (Random.State.float rng 2.0 -. 1.0) *. b)
      in
      for m = 0 to Pll.n_modes - 1 do
        if
          Poly.eval cert.vs.(m) x <= beta
          && List.for_all (fun g -> Poly.eval g x >= 0.0)
               (match Pll.mode_domain s m with
               | theta_slab :: _ -> [ theta_slab ]
               | [] -> [])
          && List.exists (fun g -> Poly.eval g x < margin) (Pll.containment_constraints s m)
        then ok := false
      done
    end
  done;
  for m = 0 to Pll.n_modes - 1 do
    if !ok then begin
      let v = cert.vs.(m) in
      let n = Poly.nvars v in
      let sublevel = Poly.sub (Poly.const n beta) v (* >= 0 inside *) in
      let slab = Pll.mode_domain s m in
      List.iter
        (fun g ->
          if !ok then begin
            let prob = Sos.create ~nvars:n in
            let target =
              Ppoly.of_poly (Poly.sub g (Poly.const n margin))
            in
            Sos.add_nonneg_on ?mult_deg prob ~domain:(sublevel :: slab) target;
            let sol, _ =
              Resilient.solve_sos pol
                ~label:(Printf.sprintf "level:%s" (Pll.mode_name m))
                prob
            in
            if not sol.Sos.certified then ok := false
          end)
        (Pll.containment_constraints s m)
    end
  done;
  !ok

let maximize_level ?(bisect_steps = 20) ?(beta_hi = 2000.0) (s : Pll.scaled) cert =
  let t_start = Sys.time () in
  let pol = cert.cfg.resilience in
  let lo = ref 0.0 and hi = ref beta_hi in
  (* Grow hi if it is certifiable outright? beta_hi is assumed infeasible. *)
  if check_level s cert !hi then lo := !hi
  else begin
    let step = ref 0 in
    let stopped = ref false in
    while !step < bisect_steps && not !stopped do
      incr step;
      (* A stuck/over-budget bisection degrades gracefully: stop and
         return the largest level certified so far — a smaller but still
         sound attractive invariant. *)
      if Resilient.out_of_time pol then begin
        stopped := true;
        Log.warn (fun k ->
            k "level bisection: pipeline deadline hit after %d step(s) — degrading to \
               certified β = %g"
              (!step - 1) !lo)
      end
      else begin
        let mid = 0.5 *. (!lo +. !hi) in
        if check_level s cert mid then lo := mid else hi := mid
      end
    done
  end;
  let time_s = Sys.time () -. t_start in
  ( !lo,
    {
      time_s;
      sdp_iterations = 0;
      n_constraints = 0;
      n_gram_blocks = 0;
      min_gram_eig = 0.0;
      max_residual = 0.0;
    } )

type attractive_invariant = { cert : t; beta : float; level_stats : stats }

let attractive_invariant ?config ?bisect_steps (s : Pll.scaled) =
  match find_multi_lyapunov ?config s with
  | Error e -> Error e
  | Ok cert ->
      let beta, level_stats = maximize_level ?bisect_steps s cert in
      if beta <= 0.0 then Error "level maximization failed: no positive certified level"
      else Ok { cert; beta; level_stats }

let member (s : Pll.scaled) ai x =
  let in_slab m =
    List.for_all (fun g -> Poly.eval g x >= 0.0) (Pll.mode_domain s m)
  in
  let ok = ref false in
  for m = 0 to Pll.n_modes - 1 do
    if in_slab m && Poly.eval ai.cert.vs.(m) x <= ai.beta then ok := true
  done;
  !ok

let upper_bound_on_set ?(extra_domain = []) (s : Pll.scaled) cert ~set =
  let n = s.Pll.nvars in
  let bound = ref 0.0 in
  let failed = ref None in
  let pol = cert.cfg.resilience in
  for m = 0 to Pll.n_modes - 1 do
    if !failed = None then begin
      let domain = (Poly.neg set :: extra_domain) @ Pll.mode_domain s m in
      (* When the set misses this mode's domain entirely, the bound over
         it is vacuous — certified by an SOS emptiness certificate
         (−1 >= 0 on the region is provable iff the region is empty). *)
      let budget = { Sdp.default_params with Sdp.max_iter = 60 } in
      let empty =
        (* Emptiness failing just means the region is non-empty — probe. *)
        let prob = Sos.create ~nvars:n in
        Sos.add_nonneg_on ~mult_deg:2 prob ~domain
          (Ppoly.of_poly (Poly.const n (-1.0)));
        (fst
           (Resilient.solve_sos (Resilient.probe pol)
              ~label:(Printf.sprintf "bound-empty:%s" (Pll.mode_name m))
              ~params:budget prob))
          .Sos.certified
      in
      if not empty then begin
        let prob = Sos.create ~nvars:n in
        let u = Sos.fresh_free prob in
        (* u - V_m >= 0 on {set <= 0} ∩ C_m (∩ extra_domain) *)
        Sos.add_nonneg_on ~mult_deg:2 prob ~domain
          (Ppoly.sub (Ppoly.scale_expr u (Poly.one n)) (Ppoly.of_poly cert.vs.(m)));
        Sos.maximize prob (Sos.Lexpr.neg u);
        (* An uncertified bound aborts the advection pipeline — full
           retry ladder. *)
        let sol, _ =
          Resilient.solve_sos pol
            ~label:(Printf.sprintf "bound:%s" (Pll.mode_name m))
            ~params:budget prob
        in
        if sol.Sos.certified then begin
          let v = Sos.Lexpr.eval sol.Sos.assign u in
          if v > !bound then bound := v
        end
        else failed := Some m
      end
    end
  done;
  match !failed with
  | Some m -> Error (Printf.sprintf "upper_bound_on_set: mode %d bound not certified" m)
  | None -> Ok (!bound *. 1.001)

let time_to_lock_bound ?(samples = 200) (s : Pll.scaled) ai ~from_level =
  let beta = ai.beta in
  if from_level <= beta then 0.0
  else begin
    let eps = ai.cert.cfg.eps_decr in
    let n = s.Pll.nvars in
    (* Smallest ‖x‖ on the boundary {V_q = β} over all modes: sample ray
       directions, bisect the radius where the active certificate
       crosses β. *)
    let rng = Random.State.make [| 17 |] in
    let r_min = ref infinity in
    for _ = 1 to samples do
      let dir = Array.init n (fun _ -> Random.State.float rng 2.0 -. 1.0) in
      let nrm = sqrt (Array.fold_left (fun a v -> a +. (v *. v)) 0.0 dir) in
      if nrm > 1e-9 then begin
        let dir = Array.map (fun v -> v /. nrm) dir in
        let active_v r =
          let x = Array.map (fun d -> r *. d) dir in
          let th = x.(Pll.theta_index s) in
          let m =
            if Float.abs th <= s.Pll.theta_on then Pll.off
            else if th > 0.0 then Pll.up
            else Pll.down
          in
          Poly.eval ai.cert.vs.(m) x
        in
        let r_hi = 2.0 *. Float.max s.Pll.w_max s.Pll.theta_max in
        if active_v r_hi >= beta then begin
          let lo = ref 0.0 and hi = ref r_hi in
          for _ = 1 to 50 do
            let mid = 0.5 *. (!lo +. !hi) in
            if active_v mid < beta then lo := mid else hi := mid
          done;
          if !lo < !r_min then r_min := !lo
        end
      end
    done;
    if !r_min = infinity || !r_min <= 0.0 then infinity
    else (from_level -. beta) /. (eps *. !r_min *. !r_min)
  end

let check_escape ?(mult_deg = 2) ?(eps = 1e-2) ?policy ~nvars ~flow ~domain ~certificate
    () =
  let prob = Sos.create ~nvars in
  Sos.add_nonneg_on ~mult_deg prob ~domain
    (Ppoly.of_poly
       (Poly.sub
          (Poly.neg (Poly.lie_derivative certificate flow))
          (Poly.const nvars eps)));
  let params = { Sdp.default_params with Sdp.max_iter = 60 } in
  match policy with
  | None -> (Sos.solve ~options:(Sos.Options.make ~params ()) prob).Sos.certified
  | Some pol ->
      (* Failure falls back to the escape search — probe. *)
      (fst (Resilient.solve_sos (Resilient.probe pol) ~label:"escape-check" ~params prob))
        .Sos.certified

let find_escape ?(deg = 4) ?(eps = 1e-2) ?sdp_params ?policy ~nvars ~flow ~domain () =
  let t_start = Sys.time () in
  let prob = Sos.create ~nvars in
  let e = Sos.fresh_poly prob ~deg ~min_deg:1 in
  (* -dE/dt - eps >= 0 on the domain *)
  Sos.add_nonneg_on prob ~domain
    (Ppoly.sub
       (Ppoly.neg (Ppoly.lie_derivative e flow))
       (Ppoly.of_poly (Poly.const nvars eps)));
  let sol =
    match policy with
    | None -> Sos.solve ~options:(Sos.Options.make ?params:sdp_params ()) prob
    | Some pol ->
        (* No escape certificate stalls the advection loop — ladder. *)
        fst (Resilient.solve_sos pol ~label:"escape-search" ?params:sdp_params prob)
  in
  let time_s = Sys.time () -. t_start in
  if sol.Sos.certified then Ok (Poly.chop ~tol:1e-9 (Sos.value sol e), stats_of prob sol time_s)
  else Error "no escape certificate at this degree"

let validate_by_simulation ?(trials = 50) ?(t_max = 120.0) ?(seed = 42) (s : Pll.scaled) ai =
  let rng = Random.State.make [| seed |] in
  let n = s.Pll.nvars in
  let sys = Pll.hybrid_system s (Pll.nominal s) in
  let sound = ref true in
  let found = ref 0 in
  let attempts = ref 0 in
  while !found < trials && !attempts < trials * 200 do
    incr attempts;
    let x0 =
      Array.init n (fun i ->
          let bound = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
          (Random.State.float rng 2.0 -. 1.0) *. bound)
    in
    (* Pick the mode whose slab contains x0. *)
    let th = x0.(Pll.theta_index s) in
    let m =
      if Float.abs th <= s.Pll.theta_on then Pll.off
      else if th > 0.0 then Pll.up
      else Pll.down
    in
    if member s ai x0 then begin
      incr found;
      let r = Hybrid.simulate ~dt:1e-3 sys ~mode0:m ~x0 ~t_max in
      if r.Hybrid.blocked then sound := false;
      if not (Pll.in_lock ~tol:0.05 s r.Hybrid.final.Hybrid.state) then sound := false;
      (* The active certificate must be non-increasing along the arc
         (up to integration tolerance). *)
      let prev = ref infinity in
      List.iter
        (fun (st : Hybrid.step) ->
          let v = Poly.eval ai.cert.vs.(st.Hybrid.mode_at) st.Hybrid.state in
          if v > !prev +. 1e-6 then sound := false;
          prev := v)
        r.Hybrid.arc
    end
  done;
  !sound && !found > 0

let invariant_boundary (s : Pll.scaled) ai ~plane:(i, j) ~n =
  let nvars = s.Pll.nvars in
  let r_max = 2.0 *. Float.max s.Pll.w_max s.Pll.theta_max in
  let pts = ref [] in
  for k = 0 to n - 1 do
    let angle = 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    let dir_i = cos angle and dir_j = sin angle in
    let at r =
      let x = Array.make nvars 0.0 in
      x.(i) <- r *. dir_i;
      x.(j) <- r *. dir_j;
      x
    in
    if member s ai (at 0.0) && not (member s ai (at r_max)) then begin
      let lo = ref 0.0 and hi = ref r_max in
      for _ = 1 to 50 do
        let mid = 0.5 *. (!lo +. !hi) in
        if member s ai (at mid) then lo := mid else hi := mid
      done;
      pts := (!lo *. dir_i, !lo *. dir_j) :: !pts
    end
  done;
  List.rev !pts

let level_curve v ~beta ~plane:(i, j) ~nvars ~n =
  let r_max = 1e3 in
  let pts = ref [] in
  for k = 0 to n - 1 do
    let angle = 2.0 *. Float.pi *. float_of_int k /. float_of_int n in
    let dir_i = cos angle and dir_j = sin angle in
    let value r =
      let x = Array.make nvars 0.0 in
      x.(i) <- r *. dir_i;
      x.(j) <- r *. dir_j;
      Poly.eval v x
    in
    (* V(0) = 0 <= beta; find r with V(r·dir) = beta by bisection if the
       ray reaches beta. *)
    if value r_max >= beta then begin
      let lo = ref 0.0 and hi = ref r_max in
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if value mid < beta then lo := mid else hi := mid
      done;
      pts := (!hi *. dir_i, !hi *. dir_j) :: !pts
    end
  done;
  List.rev !pts
