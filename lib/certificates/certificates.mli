(** Deductive certificates for the CP PLL hybrid system: multiple
    Lyapunov functions (Theorem 1), maximized attractive-invariant level
    sets (the paper's second SOS program, via Lemma 1 and bisection) and
    Escape certificates (Proposition 1).

    The attractive invariant produced here is
    [X1 = ∪_q ({V_q <= β} ∩ C_q)]: while flowing in mode [q], [V_q]
    strictly decreases; at a mode switch (identity reset, Remark 1) the
    destination certificate is no larger than the source one on the
    (direction-restricted) switching surface; and the common level [β]
    is maximized subject to each sublevel slice staying strictly inside
    the certified domain box. Together these make [X1] compact,
    forward-invariant and attractive to the lock equilibrium —
    property P1 of the paper. *)

type config = {
  degree : int;  (** certificate degree (paper: 6 for 3rd order, 4 for 4th) *)
  eps_pos : float;  (** positivity margin: [V − eps_pos·‖x‖² ∈ Σ] *)
  eps_decr : float;  (** decrease margin: [−V̇ − eps_decr·‖x‖² ∈ Σ] *)
  robust_vertices : bool;
      (** enforce the decrease condition at every vertex of the scaled
          coefficient box (the flow is affine in the coefficients, so
          vertex feasibility gives the whole box); otherwise only at the
          nominal point *)
  sdp_params : Sdp.params;
  psd_tol : float;
      (** a posteriori Gram PSD tolerance handed to {!Sos.solve} *)
  eq_tol : float;
      (** a posteriori equality-residual tolerance handed to
          {!Sos.solve} *)
  resilience : Resilient.policy;
      (** solve-orchestration policy: retry ladder, deadlines, fault
          plan and failure journal shared by every solve this config
          drives (see {!Resilient}) *)
}

val default_config : Pll.order -> config
(** Paper degrees (6 / 4), margins [1e-2]/[1e-3], nominal parameters,
    tolerances [1e-7]/[1e-5], a fresh {!Resilient.default} policy. *)

(** A multiple-Lyapunov certificate, one polynomial per PFD mode. *)
type t = {
  vs : Poly.t array;
  cfg : config;
  solve_stats : stats;
}

and stats = {
  time_s : float;  (** wall-clock seconds of the SOS/SDP solve *)
  sdp_iterations : int;
  n_constraints : int;  (** scalar equality constraints in the SDP *)
  n_gram_blocks : int;
  min_gram_eig : float;
  max_residual : float;
}

val find_multi_lyapunov : ?config:config -> Pll.scaled -> (t, string) result
(** The paper's first SOS program — constraints (a), (b), (c) of §3 for
    the three PFD modes, with S-procedure domain restrictions and
    direction-restricted switching surfaces. The solve runs under the
    config's {!Resilient} policy: solver failures climb the retry
    ladder; a degraded (salvaged) float solution is accepted only when
    {!validate_exactly} re-proves every condition; with retries enabled
    a failed search is re-run with the strictness margins scaled down
    (0.5×, then 0.25× — the returned [t.cfg] records the margins
    actually certified). On failure the error string carries the
    machine-readable {!Resilient.diagnosis} of the last attempt chain. *)

(** {1 Exact a-posteriori validation}

    Everything above runs in floating point; the results below are
    re-validated in exact rational arithmetic by the {!Exact} kernel. *)

(** Result of {!validate_exactly}: the exact certificates (persistable
    via {!Exact.Artifact}), one verdict per condition, the worst exact
    LDLᵀ margin when everything is proven, and the exact rational
    Lyapunov functions the verdicts are actually about. *)
type exact_validation = {
  artifact : Exact.Artifact.t;
  verdicts : (string * Exact.Check.verdict) list;
  all_proven : bool;
  min_margin : Exact.Rat.t option;
  vs_exact : Exact.Qpoly.t array;
      (** Dyadic embeddings of the float [vs], corner-repaired so the
          switch conditions can bind exactly (see the implementation
          note on [repair_corners]); the proven statement quantifies
          over these polynomials, not the float originals. *)
}

val validate_exactly :
  ?mult_deg:int ->
  ?denom_bits:int ->
  ?slack:float ->
  Pll.scaled ->
  t ->
  (exact_validation, string) result
(** Re-prove the Theorem-1 conditions for a found certificate {e
    exactly}: for each mode, (a) [V_m >= slack·eps_pos·‖x‖²] on the flow
    set, (b) [−V̇_m >= slack·eps_decr·‖x‖²] along the (nominal, or every
    vertex when the certificate was searched robustly) flow, and (c)
    [V_src >= V_dst] on each switching slice. The [V_m] are first
    embedded as exact rationals and corner-repaired (switching surfaces
    force [V_src = V_dst] exactly at the point where the direction
    constraint vanishes; float certificates only match there to solver
    precision), and every target polynomial is built in rational
    arithmetic from the repaired [vs_exact]. Each condition is then
    re-solved as a small multiplier-only SOS program with the
    instantiated [V_m] fixed, and the resulting Gram data is rounded,
    residual-absorbed and checked by {!Exact.Check.certify_q} — the
    verdicts carry no floating-point trust. [slack] (default 0.5) leaves
    the multiplier search room to be strictly feasible; the proven
    margins are [slack] times the searched-for ones. [Error] means a
    re-solve failed structurally; individual failed conditions surface
    as non-[Proven] verdicts instead. *)

val check_level : ?mult_deg:int -> Pll.scaled -> t -> float -> bool
(** One Lemma-1 feasibility check: is every slice
    [{V_q <= β} ∩ slab_q] strictly inside the certified region?
    [mult_deg] (default 2) is the S-procedure multiplier degree. *)

val maximize_level :
  ?bisect_steps:int -> ?beta_hi:float -> Pll.scaled -> t -> float * stats
(** The paper's second SOS program: largest certified [β] by bisection
    (the product [σ·β] is bilinear, so each step is a linear SOS
    feasibility problem). Returns [0.] if even tiny levels fail. *)

(** An attractive invariant [X1] (Theorem 2): certificate plus maximized
    common level. *)
type attractive_invariant = { cert : t; beta : float; level_stats : stats }

val attractive_invariant :
  ?config:config -> ?bisect_steps:int -> Pll.scaled -> (attractive_invariant, string) result
(** [find_multi_lyapunov] followed by [maximize_level]. *)

val member : Pll.scaled -> attractive_invariant -> float array -> bool
(** Whether a state lies in [X1] (in some mode slice). *)

val upper_bound_on_set :
  ?extra_domain:Poly.t list -> Pll.scaled -> t -> set:Poly.t -> (float, string) result
(** Certified upper bound on [max_q max {V_q(x) | set(x) <= 0, x ∈ C_q}]
    via one small SOS optimization per mode (minimize [u] with
    [u − V_q >= 0] on the region). Since every [V_q] is non-increasing
    along flows and jumps (Theorem 1), [∪_q ({V_q <= bound} ∩ C_q)] then
    contains the whole reach tube of [{set <= 0}] — the certified cap
    used by {!Advect.run}. *)

val time_to_lock_bound :
  ?samples:int -> Pll.scaled -> attractive_invariant -> from_level:float -> float
(** A certified bound on the time to reach the attractive invariant from
    the larger sublevel region [{V_q <= from_level}]: along flows,
    [dV/dt <= −eps_decr·‖x‖²], and outside [X1] the norm is bounded
    below by [r = min ‖x‖ on {V = β}] (estimated by boundary sampling,
    conservative by taking the minimum over [samples] rays), so
    [T <= (from_level − β) / (eps_decr · r²)] — the 'time to locking'
    property of the paper's references [2] and [6], obtained here as a
    corollary of the strict decrease margins. Returns [infinity] when
    the sampling finds no boundary. *)

(** {1 Escape certificates (Proposition 1)} *)

val check_escape :
  ?mult_deg:int ->
  ?eps:float ->
  ?policy:Resilient.policy ->
  nvars:int ->
  flow:Poly.t array ->
  domain:Poly.t list ->
  certificate:Poly.t ->
  unit ->
  bool
(** Proposition 1 with a {e fixed} candidate: certify
    [∂E/∂x · f <= −eps] on the domain for the given [certificate] — a
    multiplier-only SOS feasibility check, far cheaper and more robust
    than the search. Used with [E = V_q], which always escapes the
    advection residual thanks to the strict decrease margin. *)

val find_escape :
  ?deg:int ->
  ?eps:float ->
  ?sdp_params:Sdp.params ->
  ?policy:Resilient.policy ->
  nvars:int ->
  flow:Poly.t array ->
  domain:Poly.t list ->
  unit ->
  (Poly.t * stats, string) result
(** Find [E] with [∂E/∂x · f <= −eps] on the compact semialgebraic
    [domain] — trajectories must leave the set in finite time (at most
    [(sup E − inf E)/eps]). *)

(** {1 Validation and figure extraction} *)

val validate_by_simulation :
  ?trials:int -> ?t_max:float -> ?seed:int -> Pll.scaled -> attractive_invariant -> bool
(** Monte-Carlo soundness check: sample states in [X1], simulate the
    hybrid system, and verify (i) the active certificate never increases
    beyond numerical tolerance and (ii) the trajectory converges to
    lock. *)

val invariant_boundary :
  Pll.scaled -> attractive_invariant -> plane:int * int -> n:int -> (float * float) list
(** Boundary of the attractive invariant [X1 = ∪_q ({V_q <= β} ∩ C_q)]
    itself (the union over modes), sliced in the coordinate plane
    [(i, j)] — the solid sets of Figs. 2–3. Radial bisection on
    {!member}. *)

val level_curve :
  Poly.t -> beta:float -> plane:int * int -> nvars:int -> n:int -> (float * float) list
(** [n] boundary points of the slice [{V = β}] in the coordinate plane
    [(i, j)] (all other coordinates 0), found by radial bisection — the
    series plotted in the paper's Figs. 2–3. Points where the ray never
    reaches [β] within a large radius are omitted. *)
