let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let write_atomic ~path contents =
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let oc = Unix.out_channel_of_descr fd in
  output_string oc contents;
  flush oc;
  Unix.fsync fd;
  close_out oc;
  Unix.rename tmp path;
  fsync_dir (Filename.dirname path)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      let s =
        try Some (really_input_string ic (in_channel_length ic)) with _ -> None
      in
      close_in ic;
      s
