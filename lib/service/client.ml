type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;  (* bytes received but not yet consumed as lines *)
}

let diag ~kind fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.sprintf "{\"error\":\"%s\",\"message\":\"%s\"}" kind (Json.escape msg))
    fmt

let ignore_sigpipe () =
  match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception (Invalid_argument _ | Sys_error _) -> ()

let connect ~sock =
  ignore_sigpipe ();
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX sock) with
  | () -> Ok { fd; buf = Buffer.create 256 }
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (diag ~kind:"connect-failed" "cannot reach daemon at %s: %s" sock
           (Unix.error_message err))

let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send c v =
  let line = Json.to_string v ^ "\n" in
  let n = String.length line in
  let rec go off =
    if off >= n then Ok ()
    else
      match Unix.write_substring c.fd line off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          Error (diag ~kind:"server-gone" "daemon closed the connection mid-request")
      | exception Unix.Unix_error (err, _, _) ->
          Error (diag ~kind:"io-error" "socket write failed: %s" (Unix.error_message err))
  in
  go 0

(* Pull one complete line out of the receive buffer, reading more bytes
   as needed. The buffer persists across calls so pipelined responses
   are not lost. *)
let recv ?(timeout_s = 300.0) c =
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents c.buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        Buffer.clear c.buf;
        Buffer.add_string c.buf (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
  in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match take_line () with
    | Some line -> (
        match Json.parse line with
        | Ok v -> Ok v
        | Error why ->
            Error (diag ~kind:"bad-response" "unparseable response line: %s" why))
    | None ->
        let left = deadline -. Unix.gettimeofday () in
        if left <= 0.0 then
          Error (diag ~kind:"timeout" "no response within %.0fs" timeout_s)
        else (
          match Unix.select [ c.fd ] [] [] (Float.min left 1.0) with
          | [], _, _ -> go ()
          | _ -> (
              match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | 0 ->
                  Error
                    (diag ~kind:"server-gone"
                       "daemon closed the connection before answering")
              | n ->
                  Buffer.add_subbytes c.buf chunk 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
                  Error (diag ~kind:"server-gone" "connection reset by daemon")
              | exception Unix.Unix_error (err, _, _) ->
                  Error
                    (diag ~kind:"io-error" "socket read failed: %s"
                       (Unix.error_message err)))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let request ~sock ?timeout_s v =
  match connect ~sock with
  | Error e -> Error e
  | Ok c ->
      let r = Result.bind (send c v) (fun () -> recv ?timeout_s c) in
      close c;
      r

let terminal_types = [ "result"; "overloaded"; "degraded"; "draining"; "error" ]

let submit ~sock ?(wait = true) ?timeout_s spec =
  match connect ~sock with
  | Error e -> Error e
  | Ok c ->
      let req =
        Json.Obj
          [
            ("cmd", Json.Str "submit");
            ("wait", Json.Bool wait);
            ("job", Job.spec_to_json spec);
          ]
      in
      let rec await () =
        match recv ?timeout_s c with
        | Error e -> Error e
        | Ok v -> (
            match Json.mem_str "type" v with
            | Some t when List.mem t terminal_types -> Ok v
            | Some "accepted" when not wait -> Ok v
            | Some _ -> await ()
            | None -> Error (diag ~kind:"bad-response" "response without a type"))
      in
      let r = Result.bind (send c req) (fun () -> await ()) in
      close c;
      r

let simple ~sock ?timeout_s fields =
  request ~sock ?timeout_s (Json.Obj fields)

let status ~sock ?timeout_s () = simple ~sock ?timeout_s [ ("cmd", Json.Str "status") ]

let cache_gc ~sock ?timeout_s ~max_mb () =
  simple ~sock ?timeout_s
    [ ("cmd", Json.Str "cache-gc"); ("max_mb", Json.Num (float_of_int max_mb)) ]

let stop ~sock ?timeout_s () = simple ~sock ?timeout_s [ ("cmd", Json.Str "stop") ]
