(** A minimal JSON value type, parser and printer for the daemon's
    newline-delimited wire protocol. No external dependency: the repo
    already hand-prints JSON diagnoses everywhere; this module adds the
    one thing those call sites never needed — parsing — so the daemon
    and client can exchange structured requests.

    Restrictions (fine for the protocol, not a general JSON library):
    numbers are OCaml floats; object member order is preserved on parse
    and print; duplicate keys keep the first binding on lookup. Printing
    is deterministic: the same value always renders the same bytes,
    which is what makes stored job results byte-comparable across
    daemon restarts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document; trailing garbage after the document is an
    error. Never raises. *)

val to_string : t -> string
(** Compact (no whitespace), deterministic rendering. Integral numbers
    within [2^53] print without a decimal point; other floats print
    with round-trip precision. *)

val escape : string -> string
(** JSON string-escape (no surrounding quotes) — shared with call sites
    that splice strings into hand-built JSON. *)

(** Accessors; [None] on shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val bool : t -> bool option
val arr : t -> t list option
val obj : t -> (string * t) list option

val mem_str : string -> t -> string option
val mem_num : string -> t -> float option
val mem_bool : string -> t -> bool option
