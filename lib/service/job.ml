module Log = (val Logs.src_log (Logs.Src.create "service.job") : Logs.LOG)

type property = P1 | Full

type spec = {
  order : Pll.order;
  property : property;
  degree : int;
  robust : bool;
  point : (Pll.axis * float) list;
  bisect_steps : int;
  advect_iters : int;
  psd_tol : float option;
  eq_tol : float option;
  deadline_s : float option;
}

let paper_degree = function Pll.Third -> 6 | Pll.Fourth -> 4

let default_spec order =
  {
    order;
    property = P1;
    degree = paper_degree order;
    robust = false;
    point = [];
    bisect_steps = 6;
    advect_iters = 25;
    psd_tol = None;
    eq_tol = None;
    deadline_s = None;
  }

let order_name = function Pll.Third -> "third" | Pll.Fourth -> "fourth"

let order_of_name = function
  | "third" -> Ok Pll.Third
  | "fourth" -> Ok Pll.Fourth
  | s -> Error (Printf.sprintf "unknown order %S (third|fourth)" s)

let property_name = function P1 -> "p1" | Full -> "full"

let property_of_name = function
  | "p1" -> Ok P1
  | "full" -> Ok Full
  | s -> Error (Printf.sprintf "unknown property %S (p1|full)" s)

(* Canonical point order: axis declaration order, so the fingerprint is
   independent of how the client happened to list the axes. *)
let sort_point point =
  let rank a =
    let rec go i = function
      | [] -> max_int
      | x :: _ when x = a -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 Pll.axes
  in
  List.sort (fun (a, _) (b, _) -> compare (rank a) (rank b)) point

let validate spec =
  let ( let* ) = Result.bind in
  let* () = if spec.degree > 0 then Ok () else Error "degree must be positive" in
  let* () =
    if spec.bisect_steps >= 0 then Ok () else Error "bisect-steps must be >= 0"
  in
  let* () =
    if spec.advect_iters > 0 then Ok () else Error "advect-iters must be positive"
  in
  let* () =
    match spec.deadline_s with
    | Some d when not (d > 0.0) -> Error "deadline must be positive"
    | _ -> Ok ()
  in
  let rec dup = function
    | [] -> Ok ()
    | (a, _) :: tl ->
        if List.mem_assoc a tl then
          Error (Printf.sprintf "duplicate point axis %s" (Pll.axis_name a))
        else dup tl
  in
  let* () = dup spec.point in
  List.fold_left
    (fun acc (a, v) ->
      let* () = acc in
      if Float.is_finite v && v > 0.0 then Ok ()
      else
        Error
          (Printf.sprintf "point value for %s must be a positive finite relative factor"
             (Pll.axis_name a)))
    (Ok ()) spec.point

let point_to_string point =
  String.concat ","
    (List.map
       (fun (a, v) -> Printf.sprintf "%s=%g" (Pll.axis_name a) v)
       (sort_point point))

let point_of_string s =
  let s = String.trim s in
  if s = "" || s = "nominal" then Ok []
  else
    let ( let* ) = Result.bind in
    List.fold_left
      (fun acc tok ->
        let* pt = acc in
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "bad point entry %S (want AXIS=FACTOR)" tok)
        | Some i -> (
            let* a = Pll.axis_of_string (String.sub tok 0 i) in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            match float_of_string_opt v with
            | Some f -> Ok ((a, f) :: pt)
            | None -> Error (Printf.sprintf "bad factor %S for %s" v (String.sub tok 0 i))))
      (Ok [])
      (String.split_on_char ',' s)
    |> Result.map List.rev

(* ----------------------------------------------------------------- *)
(* Canonical line + fingerprint *)

let magic = "pll-job v1"

let to_line ?(with_deadline = false) spec =
  let b = Buffer.create 128 in
  Buffer.add_string b magic;
  Printf.bprintf b " order=%s prop=%s degree=%d robust=%b bisect=%d advect=%d"
    (order_name spec.order) (property_name spec.property) spec.degree spec.robust
    spec.bisect_steps spec.advect_iters;
  (match spec.psd_tol with Some t -> Printf.bprintf b " psd-tol=%h" t | None -> ());
  (match spec.eq_tol with Some t -> Printf.bprintf b " eq-tol=%h" t | None -> ());
  Printf.bprintf b " point=%s"
    (match sort_point spec.point with
    | [] -> "nominal"
    | pt ->
        String.concat ","
          (List.map (fun (a, v) -> Printf.sprintf "%s:%h" (Pll.axis_name a) v) pt));
  (if with_deadline then
     match spec.deadline_s with
     | Some d -> Printf.bprintf b " deadline=%h" d
     | None -> ());
  Buffer.contents b

let of_line line =
  let ( let* ) = Result.bind in
  let l = String.length magic in
  if String.length line < l || String.sub line 0 l <> magic then
    Error "not a job line (bad magic)"
  else
    let fields =
      String.sub line l (String.length line - l)
      |> String.split_on_char ' '
      |> List.filter (fun s -> s <> "")
      |> List.filter_map (fun tok ->
             match String.index_opt tok '=' with
             | None -> None
             | Some i ->
                 Some
                   ( String.sub tok 0 i,
                     String.sub tok (i + 1) (String.length tok - i - 1) ))
    in
    let get k = List.assoc_opt k fields in
    let* order =
      match get "order" with Some o -> order_of_name o | None -> Error "missing order"
    in
    let d = default_spec order in
    let* property =
      match get "prop" with Some p -> property_of_name p | None -> Ok d.property
    in
    let int_field k dflt =
      match get k with
      | None -> Ok dflt
      | Some v -> (
          match int_of_string_opt v with
          | Some i -> Ok i
          | None -> Error (Printf.sprintf "bad %s field %S" k v))
    in
    let float_field k =
      match get k with
      | None -> Ok None
      | Some v -> (
          match float_of_string_opt v with
          | Some f -> Ok (Some f)
          | None -> Error (Printf.sprintf "bad %s field %S" k v))
    in
    let* degree = int_field "degree" d.degree in
    let* bisect_steps = int_field "bisect" d.bisect_steps in
    let* advect_iters = int_field "advect" d.advect_iters in
    let robust = get "robust" = Some "true" in
    let* psd_tol = float_field "psd-tol" in
    let* eq_tol = float_field "eq-tol" in
    let* deadline_s = float_field "deadline" in
    let* point =
      match get "point" with
      | None | Some "nominal" -> Ok []
      | Some p ->
          List.fold_left
            (fun acc tok ->
              let* pt = acc in
              match String.index_opt tok ':' with
              | None -> Error (Printf.sprintf "bad point token %S" tok)
              | Some i -> (
                  let* a = Pll.axis_of_string (String.sub tok 0 i) in
                  match
                    float_of_string_opt
                      (String.sub tok (i + 1) (String.length tok - i - 1))
                  with
                  | Some v -> Ok ((a, v) :: pt)
                  | None -> Error (Printf.sprintf "bad point value in %S" tok)))
            (Ok [])
            (String.split_on_char ',' p)
          |> Result.map List.rev
    in
    Ok
      {
        order;
        property;
        degree;
        robust;
        point;
        bisect_steps;
        advect_iters;
        psd_tol;
        eq_tol;
        deadline_s;
      }

let fingerprint spec = Digest.to_hex (Digest.string (to_line spec))

(* ----------------------------------------------------------------- *)
(* Wire encoding *)

let spec_to_json spec =
  let base =
    [
      ("order", Json.Str (order_name spec.order));
      ("property", Json.Str (property_name spec.property));
      ("degree", Json.Num (float_of_int spec.degree));
      ("robust", Json.Bool spec.robust);
      ( "point",
        Json.Obj
          (List.map
             (fun (a, v) -> (Pll.axis_name a, Json.Num v))
             (sort_point spec.point)) );
      ("bisect_steps", Json.Num (float_of_int spec.bisect_steps));
      ("advect_iters", Json.Num (float_of_int spec.advect_iters));
    ]
  in
  let opt k = function Some v -> [ (k, Json.Num v) ] | None -> [] in
  Json.Obj
    (base @ opt "psd_tol" spec.psd_tol @ opt "eq_tol" spec.eq_tol
    @ opt "deadline_s" spec.deadline_s)

let spec_of_json j =
  let ( let* ) = Result.bind in
  let* order =
    match Json.mem_str "order" j with
    | Some o -> order_of_name o
    | None -> Error "job object missing \"order\""
  in
  let d = default_spec order in
  let* property =
    match Json.mem_str "property" j with
    | Some p -> property_of_name p
    | None -> Ok d.property
  in
  let int_field k dflt =
    match Json.member k j with
    | None -> Ok dflt
    | Some (Json.Num f) when Float.is_integer f -> Ok (int_of_float f)
    | Some _ -> Error (Printf.sprintf "job field %S must be an integer" k)
  in
  let* degree = int_field "degree" d.degree in
  let* bisect_steps = int_field "bisect_steps" d.bisect_steps in
  let* advect_iters = int_field "advect_iters" d.advect_iters in
  let robust = Json.mem_bool "robust" j = Some true in
  let* point =
    match Json.member "point" j with
    | None | Some Json.Null -> Ok []
    | Some (Json.Obj kvs) ->
        List.fold_left
          (fun acc (k, v) ->
            let* pt = acc in
            let* a = Pll.axis_of_string k in
            match Json.num v with
            | Some f -> Ok ((a, f) :: pt)
            | None -> Error (Printf.sprintf "point value for %S must be a number" k))
          (Ok []) kvs
        |> Result.map List.rev
    | Some _ -> Error "job field \"point\" must be an object of axis factors"
  in
  let spec =
    {
      order;
      property;
      degree;
      robust;
      point;
      bisect_steps;
      advect_iters;
      psd_tol = Json.mem_num "psd_tol" j;
      eq_tol = Json.mem_num "eq_tol" j;
      deadline_s = Json.mem_num "deadline_s" j;
    }
  in
  let* () = validate spec in
  Ok spec

(* ----------------------------------------------------------------- *)
(* Verdicts and results *)

type verdict = Verified | Not_established | Failed

let verdict_to_string = function
  | Verified -> "verified"
  | Not_established -> "not-established"
  | Failed -> "failed"

let verdict_of_string = function
  | "verified" -> Ok Verified
  | "not-established" -> Ok Not_established
  | "failed" -> Ok Failed
  | s -> Error (Printf.sprintf "unknown verdict %S" s)

let exit_code = function Verified -> 0 | Not_established -> 2 | Failed -> 1

type outcome = {
  verdict : verdict;
  beta : float;
  kind : string;
  detail : string;
  solves : int;
  attempts : int;
  attempt_s : float;
  deadline_hit : bool;
}

let result_json r =
  Json.to_string
    (Json.Obj
       [
         ("verdict", Json.Str (verdict_to_string r.verdict));
         ("beta", Json.Num r.beta);
         ("kind", Json.Str r.kind);
         ("detail", Json.Str r.detail);
       ])

let result_of_json j =
  let ( let* ) = Result.bind in
  let* verdict =
    match Json.mem_str "verdict" j with
    | Some v -> verdict_of_string v
    | None -> Error "result object missing \"verdict\""
  in
  Ok
    {
      verdict;
      beta = Option.value (Json.mem_num "beta" j) ~default:0.0;
      kind = Option.value (Json.mem_str "kind" j) ~default:"";
      detail = Option.value (Json.mem_str "detail" j) ~default:"";
      solves = 0;
      attempts = 0;
      attempt_s = 0.0;
      deadline_hit = false;
    }

(* ----------------------------------------------------------------- *)
(* Execution *)

let make_policy ?supervise ?faults spec =
  let faults = match faults with Some f -> f | None -> Resilient.Faults.none () in
  Resilient.make ~faults ?pipeline_deadline_s:spec.deadline_s ?supervise ()

let build_raw spec =
  let base =
    match spec.order with
    | Pll.Third -> Pll.table1_third
    | Pll.Fourth -> Pll.table1_fourth
  in
  List.fold_left
    (fun acc (a, v) ->
      Result.bind acc (fun raw -> Pll.set_axis_relative raw a ~lo:v ~hi:v))
    (Ok base) spec.point

(* Deterministic failure classification from the policy's journal —
   mirrors the atlas quarantine taxonomy so the two surfaces agree. *)
let classify policy =
  if Resilient.out_of_time policy then
    (Failed, "budget-exhausted", "per-job deadline exhausted", true)
  else
    let fails = Resilient.failures policy in
    let label =
      match List.rev fails with
      | [] -> "certificate search"
      | d :: _ -> d.Resilient.label
    in
    let infeasible =
      List.exists
        (fun (d : Resilient.diagnosis) ->
          List.exists
            (fun (a : Resilient.attempt) ->
              match a.Resilient.status with
              | Sdp.Primal_infeasible | Sdp.Dual_infeasible -> true
              | _ -> false)
            d.Resilient.attempts)
        fails
    in
    if infeasible then
      (Not_established, "infeasible", "conclusively infeasible at " ^ label, false)
    else (Failed, "solver-failure", "solver failed at " ^ label, false)

let run ~policy ?(validate = fun _ -> true) spec =
  let finish verdict ~beta ~kind ~detail ~deadline_hit =
    let b = Resilient.consumed policy in
    {
      verdict;
      beta;
      kind;
      detail;
      solves = b.Resilient.solves;
      attempts = b.Resilient.attempts;
      attempt_s = b.Resilient.attempt_s;
      deadline_hit;
    }
  in
  let fail ~kind ~detail ~deadline_hit =
    finish Failed ~beta:0.0 ~kind ~detail ~deadline_hit
  in
  let classified () =
    let verdict, kind, detail, deadline_hit = classify policy in
    finish verdict ~beta:0.0 ~kind ~detail ~deadline_hit
  in
  match build_raw spec with
  | Error e -> fail ~kind:"bad-point" ~detail:e ~deadline_hit:false
  | Ok raw -> (
      let s = Pll.scale raw in
      let base = Certificates.default_config s.Pll.order in
      let cfg =
        {
          base with
          Certificates.degree = spec.degree;
          robust_vertices = spec.robust;
          psd_tol = Option.value spec.psd_tol ~default:base.Certificates.psd_tol;
          eq_tol = Option.value spec.eq_tol ~default:base.Certificates.eq_tol;
          resilience = policy;
        }
      in
      try
        match spec.property with
        | Full -> (
            match
              Pll_core.Inevitability.verify ~cert_config:cfg
                ~max_advect_iter:spec.advect_iters ~resilience:policy s
            with
            | Ok report when report.Pll_core.Inevitability.verified ->
                if validate report then
                  finish Verified
                    ~beta:
                      report.Pll_core.Inevitability.invariant.Certificates.beta
                    ~kind:"" ~detail:"" ~deadline_hit:false
                else
                  finish Not_established ~beta:0.0 ~kind:"validation-failed"
                    ~detail:"pipeline verified but extra validation failed"
                    ~deadline_hit:false
            | Ok _ ->
                if Resilient.failures policy <> [] || Resilient.out_of_time policy
                then classified ()
                else
                  finish Not_established ~beta:0.0 ~kind:"not-established"
                    ~detail:"pipeline completed but P1 and P2 not both established"
                    ~deadline_hit:false
            | Error _ -> classified ())
        | P1 -> (
            match
              Certificates.attractive_invariant ~config:cfg
                ~bisect_steps:spec.bisect_steps s
            with
            | Ok ai when ai.Certificates.beta > 0.0 ->
                finish Verified ~beta:ai.Certificates.beta ~kind:"" ~detail:""
                  ~deadline_hit:false
            | Ok _ ->
                finish Not_established ~beta:0.0 ~kind:"level-collapse"
                  ~detail:"certificate found but no positive level certifies"
                  ~deadline_hit:false
            | Error _ -> classified ())
      with
      | Supervise.Interrupted -> raise Supervise.Interrupted
      | e ->
          Log.warn (fun k -> k "job crashed: %s" (Printexc.to_string e));
          fail ~kind:"crash"
            ~detail:("exception: " ^ Printexc.to_string e)
            ~deadline_hit:false)
