(** The daemon's crash-safe durable job queue: an fsync'd append-only
    ledger ([queue.log] in the run directory) that records every job
    admission and state change, replayed on restart.

    Ledger format (line-oriented, write-ahead — each line fsync'd before
    the daemon acts on it):

    {v
    pll-queue v1
    seq <next-seq>
    submit <id> <fingerprint> <canonical job line (with deadline)>
    start <id>
    done <id> <verdict>
    cancel <id>
    v}

    Last event per id wins. On {!open_}, the surviving ledger is
    compacted: terminal jobs (done/cancelled) are dropped — their
    results live in the daemon's per-fingerprint result store — and
    non-terminal jobs (pending, or running when the daemon was killed)
    are rewritten as fresh [submit] lines and returned as {e recovered}
    entries for re-dispatch; their solves replay from the content-
    addressed solve cache, so recovery costs zero re-solves for
    anything that completed. The [seq] high-water line keeps job ids
    unique across restarts. Malformed lines (e.g. truncated by the
    crash) are skipped with a diagnosis, never a raise. *)

type state =
  | Pending
  | Running
  | Done of Job.verdict
  | Cancelled

type entry = {
  id : string;  (** [j<seq>], unique across restarts of one run dir *)
  fp : string;  (** {!Job.fingerprint} of the spec *)
  spec : Job.spec;
  mutable state : state;
}

type t

val path : string -> string
(** Ledger file path for a run directory. *)

val open_ :
  dir:string -> (t * entry list * string list, string) result
(** Open (creating if absent) the queue of a run directory: replays and
    compacts the ledger, then reopens it for fsync'd appends. Returns
    the recovered non-terminal entries (now pending, in original submit
    order) and one diagnosis per malformed line. *)

val had_entries : t -> bool
(** Whether the ledger already had any entries (terminal or not) when
    opened — the daemon refuses such a directory without [--resume]. *)

val submit : t -> Job.spec -> entry
(** Admit a job: assign the next id, ledger the [submit] line (fsync'd)
    and return the pending entry. *)

val start : t -> entry -> unit
val finish : t -> entry -> Job.verdict -> unit
val cancel : t -> entry -> unit

val find : t -> string -> entry option
(** Entry by job id. *)

val entries : t -> entry list
(** All entries known to this handle, in submit order. *)

val fsync : t -> unit
(** Force the ledger to disk (appends already fsync; this is the final
    belt-and-braces flush of the SIGTERM drain path). *)

val close : t -> unit
