(** The verification daemon: a single-process [Unix.select] loop that
    accepts verify jobs over a Unix-domain socket (newline-delimited
    JSON), runs each job in a forked worker over the shared
    content-addressed solve cache, and survives crashes of either side.

    Robustness surface (see DESIGN.md §6g):

    - {e durable queue}: every admission and state change is an fsync'd
      append to the {!Jobqueue} ledger before the daemon acts on it, so
      kill -9 never loses an admitted job; on restart with [--resume],
      terminal jobs are compacted away and in-flight ones re-dispatch
      against the warm solve cache (zero re-solves for completed work);
    - {e backpressure}: a bounded admission queue — beyond
      [queue_cap], submits receive a structured [overloaded] refusal
      with a retry-after hint instead of growing memory;
    - {e dedup}: jobs are keyed by {!Job.fingerprint}; a submit
      matching an in-flight job attaches to it instead of re-solving,
      and one matching the per-fingerprint result store is answered
      immediately from disk, byte-identically;
    - {e per-job deadlines}: the spec deadline rides into the worker's
      pipeline policy; a wedged worker is SIGKILLed past
      deadline + grace and reported as a structured failure;
    - {e cancellation}: a waiting client that disconnects cancels its
      job (pending jobs leave the queue; running workers are killed)
      unless another client shares it or it was submitted no-wait;
    - {e supervision + circuit breaker}: a crashed worker is retried
      with exponential backoff; repeated consecutive crashes open the
      breaker and the daemon degrades to cache-only serving
      (structured [degraded] refusals) until a cooldown and a
      successful probe close it again;
    - {e graceful drain}: SIGTERM (or a [stop] request) stops
      admission, lets running workers finish, checkpoints the pending
      queue in the ledger, notifies waiting clients, fsyncs and exits
      0; SIGINT kills workers and exits 130. SIGPIPE is ignored and
      [EPIPE] on a client socket is treated as that client
      disconnecting. *)

(** Daemon-level chaos faults, extending the fault-plan vocabulary of
    {!Resilient.Faults} / {!Supervise.Fault} one level up. Each fires
    once. *)
module Fault : sig
  type t =
    | Kill_worker of string
        (** [kill-worker@JOB]: SIGKILL JOB's worker right after launch —
            the retry/backoff path *)
    | Drop_client of string
        (** [drop-client@JOB]: server-side close of the submitting
            client right after JOB is admitted — the
            cancellation-on-disconnect path *)
    | Wedge_queue
        (** [wedge-queue]: the dispatcher never starts a job, so the
            bounded queue fills and load-shedding is observable
            deterministically *)
    | Die_at of string
        (** [die@JOB]: the daemon [_exit 137]s immediately after
            ledgering JOB's start — a deterministic kill -9 mid-job for
            the crash-safe-restart test *)

  type plan = t list

  val none : plan
  val of_string : string -> (plan, string) result
  val to_string : plan -> string
end

type config = {
  run_dir : string;
  sock : string option;  (** default: [<run_dir>/verifyd.sock] *)
  workers : int;  (** max concurrent job workers *)
  queue_cap : int;  (** bounded admission queue length *)
  cache_max_mb : int option;
      (** size-capped LRU eviction of the solve cache after each
          completed job (and once at startup) *)
  breaker_threshold : int;  (** consecutive crashes that open the breaker *)
  breaker_cooldown_s : float;
  default_deadline_s : float option;  (** for jobs that carry none *)
  job_retries : int;  (** worker restarts per job before giving up *)
  lock_wait_s : float;
  faults : Fault.plan;
  resume : bool;
}

val default_config : run_dir:string -> config
(** 2 workers, queue cap 16, no cache cap, breaker 3 crashes / 30 s
    cooldown, no default deadline, 2 retries, no faults, fresh start. *)

val socket_path : config -> string

val run : config -> int
(** Run the daemon until drained (exit 0), interrupted (130), or a
    setup failure (1: lock held, un-resumed non-empty queue ledger,
    unusable socket). Structured diagnoses go to stderr; operational
    lines to stdout. *)
