(** Client side of the daemon's newline-delimited JSON protocol over a
    Unix-domain socket.

    Every request is one JSON object on one line; the daemon answers
    with one or more JSON lines, the last of which is {e terminal}
    (type [result], [overloaded], [degraded], [draining], [stopping],
    [status], [cache-gc] or [error]). A blocking [submit] first
    receives an [accepted] line (carrying the job id) and then waits
    for the [result].

    All writes are SIGPIPE-hardened: the signal is ignored and [EPIPE]
    / [ECONNRESET] surface as a structured [server-gone] error string,
    never a killed process. *)

type conn

val connect : sock:string -> (conn, string) result
(** Connect to the daemon socket; the error is a structured diagnosis
    (daemon not running, stale socket, permission). Ignores SIGPIPE
    process-wide as a side effect. *)

val close : conn -> unit

val send : conn -> Json.t -> (unit, string) result
(** Send one request line. *)

val recv : ?timeout_s:float -> conn -> (Json.t, string) result
(** Receive one response line (default timeout 300 s). Structured
    errors on timeout, EOF ([server-gone]) and malformed JSON. *)

val request : sock:string -> ?timeout_s:float -> Json.t -> (Json.t, string) result
(** One-shot: connect, send, read a single response, close. *)

(** Convenience wrappers used by [verify_client] and the bench. *)

val submit :
  sock:string ->
  ?wait:bool ->
  ?timeout_s:float ->
  Job.spec ->
  (Json.t, string) result
(** Submit a job. With [wait] (default true) returns the terminal
    response — a [result], or a structured refusal ([overloaded] /
    [degraded] / [draining]); with [wait:false] returns the immediate
    admission response ([accepted] or a refusal) without waiting for
    the verdict. *)

val status : sock:string -> ?timeout_s:float -> unit -> (Json.t, string) result
val cache_gc : sock:string -> ?timeout_s:float -> max_mb:int -> unit -> (Json.t, string) result
val stop : sock:string -> ?timeout_s:float -> unit -> (Json.t, string) result
(** Ask the daemon to drain gracefully (same as SIGTERM). *)
