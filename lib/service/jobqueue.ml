module Log = (val Logs.src_log (Logs.Src.create "service.queue") : Logs.LOG)

type state = Pending | Running | Done of Job.verdict | Cancelled

type entry = {
  id : string;
  fp : string;
  spec : Job.spec;
  mutable state : state;
}

type t = {
  dir : string;
  mutable fd : Unix.file_descr;
  mutable oc : out_channel;
  mutable next_seq : int;
  tbl : (string, entry) Hashtbl.t;
  mutable order : string list;  (* reverse submit order *)
  mutable existing : bool;
}

let magic = "pll-queue v1"
let path dir = Filename.concat dir "queue.log"

(* ----------------------------------------------------------------- *)
(* Replay *)

let parse_line line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

(* Split off the first [n] space-separated tokens, returning the rest of
   the line verbatim (the job line itself contains spaces). *)
let tokens_then_rest n s =
  let rec go n s acc =
    if n = 0 then Some (List.rev acc, s)
    else
      match String.index_opt s ' ' with
      | None -> if n = 1 && s <> "" then Some (List.rev (s :: acc), "") else None
      | Some i ->
          go (n - 1)
            (String.sub s (i + 1) (String.length s - i - 1))
            (String.sub s 0 i :: acc)
  in
  go n s []

let seq_of_id id =
  if String.length id > 1 && id.[0] = 'j' then
    int_of_string_opt (String.sub id 1 (String.length id - 1))
  else None

let replay file =
  let entries = Hashtbl.create 16 in
  let order = ref [] in
  let diags = ref [] in
  let seq_hw = ref 0 in
  let any = ref false in
  (match open_in file with
  | exception Sys_error _ -> ()
  | ic ->
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let diag why =
             diags :=
               Printf.sprintf "queue ledger line %d: %s (%S)" !lineno why line
               :: !diags
           in
           if line = "" || line = magic then ()
           else begin
             any := true;
             let verb, rest = parse_line line in
             match verb with
             | "seq" -> (
                 match int_of_string_opt rest with
                 | Some n -> seq_hw := max !seq_hw n
                 | None -> diag "bad seq line")
             | "submit" -> (
                 match tokens_then_rest 2 rest with
                 | Some ([ id; fp ], job_line) -> (
                     match Job.of_line job_line with
                     | Ok spec ->
                         if not (Hashtbl.mem entries id) then
                           order := id :: !order;
                         Hashtbl.replace entries id
                           { id; fp; spec; state = Pending };
                         (match seq_of_id id with
                         | Some n -> seq_hw := max !seq_hw n
                         | None -> ())
                     | Error why -> diag why)
                 | _ -> diag "malformed submit line")
             | "start" -> (
                 match Hashtbl.find_opt entries rest with
                 | Some e -> e.state <- Running
                 | None -> diag "start for unknown job")
             | "done" -> (
                 match String.split_on_char ' ' rest with
                 | [ id; v ] -> (
                     match (Hashtbl.find_opt entries id, Job.verdict_of_string v) with
                     | Some e, Ok verdict -> e.state <- Done verdict
                     | None, _ -> diag "done for unknown job"
                     | _, Error why -> diag why)
                 | _ -> diag "malformed done line")
             | "cancel" -> (
                 match Hashtbl.find_opt entries rest with
                 | Some e -> e.state <- Cancelled
                 | None -> diag "cancel for unknown job")
             | _ -> diag "unknown ledger verb"
           end
         done
       with End_of_file -> ());
      close_in ic);
  let in_order = List.rev_map (fun id -> Hashtbl.find entries id) !order in
  (in_order, !seq_hw, List.rev !diags, !any)

(* ----------------------------------------------------------------- *)
(* Appends *)

let append t line =
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc;
  Unix.fsync t.fd

let open_append file =
  let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  (fd, Unix.out_channel_of_descr fd)

let submit_line e =
  Printf.sprintf "submit %s %s %s" e.id e.fp
    (Job.to_line ~with_deadline:true e.spec)

let open_ ~dir =
  Ioutil.mkdir_p dir;
  let file = path dir in
  match replay file with
  | exception e -> Error ("cannot open queue ledger: " ^ Printexc.to_string e)
  | all, seq_hw, diags, any ->
      let recovered =
        List.filter (fun e -> e.state = Pending || e.state = Running) all
      in
      List.iter (fun e -> e.state <- Pending) recovered;
      (* Compact: survivors only, re-submitted, under a fresh seq
         high-water — atomically, so a crash mid-compaction keeps the
         old ledger. *)
      let b = Buffer.create 256 in
      Buffer.add_string b (magic ^ "\n");
      Printf.bprintf b "seq %d\n" seq_hw;
      List.iter (fun e -> Buffer.add_string b (submit_line e ^ "\n")) recovered;
      (try Ioutil.write_atomic ~path:file (Buffer.contents b)
       with e ->
         Log.warn (fun k -> k "queue compaction failed: %s" (Printexc.to_string e)));
      let fd, oc = open_append file in
      let tbl = Hashtbl.create 64 in
      List.iter (fun e -> Hashtbl.replace tbl e.id e) recovered;
      let t =
        {
          dir;
          fd;
          oc;
          next_seq = seq_hw + 1;
          tbl;
          order = List.rev_map (fun e -> e.id) recovered;
          existing = any;
        }
      in
      Ok (t, recovered, diags)

let had_entries t = t.existing

let submit t spec =
  let id = Printf.sprintf "j%d" t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let e = { id; fp = Job.fingerprint spec; spec; state = Pending } in
  Hashtbl.replace t.tbl id e;
  t.order <- id :: t.order;
  append t (submit_line e);
  e

let start t e =
  e.state <- Running;
  append t ("start " ^ e.id)

let finish t e verdict =
  e.state <- Done verdict;
  append t (Printf.sprintf "done %s %s" e.id (Job.verdict_to_string verdict))

let cancel t e =
  e.state <- Cancelled;
  append t ("cancel " ^ e.id)

let find t id = Hashtbl.find_opt t.tbl id
let entries t = List.rev_map (fun id -> Hashtbl.find t.tbl id) t.order

let fsync t =
  flush t.oc;
  Unix.fsync t.fd

let close t =
  (try flush t.oc with _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
