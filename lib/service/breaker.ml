type state = Closed | Open | Half_open

type t = {
  threshold : int;
  cooldown_s : float;
  now : unit -> float;
  mutable st : state;
  mutable open_until : float;
  mutable consecutive : int;
  mutable probing : bool;
  mutable trips : int;
}

let create ?(threshold = 3) ?(cooldown_s = 30.0) ~now () =
  {
    threshold = max 1 threshold;
    cooldown_s;
    now;
    st = Closed;
    open_until = 0.0;
    consecutive = 0;
    probing = false;
    trips = 0;
  }

let refresh t =
  if t.st = Open && t.now () >= t.open_until then begin
    t.st <- Half_open;
    t.probing <- false
  end

let state t =
  refresh t;
  t.st

let state_name t =
  match state t with
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

let allow t =
  refresh t;
  match t.st with
  | Closed -> true
  | Open -> false
  | Half_open ->
      if t.probing then false
      else begin
        t.probing <- true;
        true
      end

let success t =
  t.st <- Closed;
  t.consecutive <- 0;
  t.probing <- false

let trip t =
  t.st <- Open;
  t.open_until <- t.now () +. t.cooldown_s;
  t.probing <- false;
  t.trips <- t.trips + 1

let failure t =
  refresh t;
  t.consecutive <- t.consecutive + 1;
  match t.st with
  | Half_open -> trip t
  | Closed -> if t.consecutive >= t.threshold then trip t
  | Open -> ()

let retry_after_s t =
  refresh t;
  match t.st with Open -> Float.max 0.0 (t.open_until -. t.now ()) | _ -> 0.0

let trips t = t.trips
