(** The library-level verify-job API shared by the [verify_pll] CLI and
    the [verifyd] daemon, so verdict and exit-code semantics are defined
    once.

    A {!spec} names everything that determines the verification problem:
    the PLL order, a relative parameter point (multiples of the Table-1
    nominals, empty = nominal model), the property (P1 attractive
    invariant only, or the full P1+P2 inevitability pipeline), the
    certificate degree and search knobs, plus a per-job pipeline
    deadline. {!fingerprint} canonically hashes the problem-determining
    fields — deliberately excluding the deadline, which changes how hard
    a job may try but not what a {e clean} result means — and is what
    the daemon dedups in-flight jobs and keys its result store by.

    {!run} executes the job under a caller-supplied {!Resilient.policy}
    (so the CLI can wire its own retry ladder and the daemon can attach
    its per-worker supervision context) and returns a flat, marshal-free
    {!outcome} whose deterministic core ({!result_json}) is byte-stable:
    replaying the same spec against a warm solve cache reproduces it
    exactly. *)

type property = P1 | Full

val property_of_name : string -> (property, string) result
(** ["p1"] or ["full"]. *)

type spec = {
  order : Pll.order;
  property : property;
  degree : int;
  robust : bool;  (** vertex-robust decrease over the coefficient box *)
  point : (Pll.axis * float) list;
      (** relative parameter point; each value replaces that axis's
          Table-1 interval with the degenerate point [v * nominal] *)
  bisect_steps : int;  (** P1 level-maximization bisection steps *)
  advect_iters : int;  (** Full-pipeline advection iteration cap *)
  psd_tol : float option;  (** a-posteriori PSD tolerance override *)
  eq_tol : float option;  (** a-posteriori equality tolerance override *)
  deadline_s : float option;
      (** per-job pipeline deadline (excluded from the fingerprint) *)
}

val default_spec : Pll.order -> spec
(** P1 at the paper degree for the order (6/4), nominal point,
    non-robust, 6 bisection steps, 25 advection iterations, default
    tolerances, no deadline. *)

val validate : spec -> (unit, string) result
(** Structural sanity: positive finite point values, no duplicate axes,
    positive degree, non-negative step counts. Whether an axis exists at
    this order is checked by {!run} (a [bad-point] failure). *)

val to_line : ?with_deadline:bool -> spec -> string
(** Canonical one-line rendering (floats in hex so the round-trip is
    exact); the fingerprint input. [with_deadline] (default false)
    appends the deadline — the queue ledger stores that variant so a
    recovered job keeps its budget. *)

val of_line : string -> (spec, string) result
(** Inverse of {!to_line} (either variant). *)

val fingerprint : spec -> string
(** Hex digest of [to_line spec] — the dedup/result-store key. *)

val point_of_string : string -> ((Pll.axis * float) list, string) result
(** Parse a CLI point spec like ["ip=1.05,kv=0.9"]. Empty string is the
    nominal point. *)

val point_to_string : (Pll.axis * float) list -> string

val spec_to_json : spec -> Json.t
(** Wire encoding (the [job] object of a submit request). *)

val spec_of_json : Json.t -> (spec, string) result
(** Decode a wire job object; omitted fields take {!default_spec}
    values for the given (required) [order]. *)

(** The three verdicts of the established exit-code convention. *)
type verdict = Verified | Not_established | Failed

val verdict_to_string : verdict -> string
val verdict_of_string : string -> (verdict, string) result

val exit_code : verdict -> int
(** [0] verified, [2] not established, [1] failure — the shared
    CLI/daemon exit-code discipline (124 usage and 130 interrupted are
    decided by the drivers). *)

type outcome = {
  verdict : verdict;
  beta : float;  (** maximized invariant level when verified, else 0 *)
  kind : string;
      (** deterministic diagnosis kind when not verified: [infeasible],
          [level-collapse], [not-established], [validation-failed],
          [solver-failure], [budget-exhausted], [crash], [bad-point] *)
  detail : string;  (** deterministic short detail *)
  solves : int;  (** logical solves this run spent (0 on full replay) *)
  attempts : int;
  attempt_s : float;
  deadline_hit : bool;
}

val result_json : outcome -> string
(** The deterministic core only — verdict, beta, kind, detail — no
    timings or counters, so a cache-replayed job reproduces the stored
    bytes exactly. This is what the daemon persists per fingerprint and
    what [service_smoke] compares across restarts. *)

val result_of_json : Json.t -> (outcome, string) result
(** Decode a stored {!result_json} document (counters read as 0). *)

val make_policy :
  ?supervise:Supervise.ctx -> ?faults:Resilient.Faults.plan -> spec -> Resilient.policy
(** The daemon-side policy for a job: default ladder, the spec's
    deadline as the pipeline deadline, optional supervision context. *)

val run :
  policy:Resilient.policy ->
  ?validate:(Pll_core.Inevitability.report -> bool) ->
  spec ->
  outcome
(** Execute the job. [validate] (Full property only) is the CLI's hook
    for printing the pipeline report and running extra checks (e.g.
    Monte-Carlo simulation); returning [false] downgrades a verified
    run to [Not_established] with kind [validation-failed]. Catches
    everything except {!Supervise.Interrupted}, which is re-raised so
    drivers can checkpoint and exit 130. *)
