type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ----------------------------------------------------------------- *)
(* Printing *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Deterministic number rendering: integers print bare, everything else
   with enough digits to round-trip. Shortest-first keeps common values
   like 0.5 readable while %.17g guarantees exactness for the rest. *)
let num_to_string f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 9.007199254740992e15 then
    Printf.sprintf "%.0f" f
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Num f -> Buffer.add_string b (num_to_string f)
  | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
  | Arr xs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          write b x)
        xs;
      Buffer.add_char b ']'
  | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape k);
          Buffer.add_string b "\":";
          write b v)
        kvs;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 128 in
  write b v;
  Buffer.contents b

(* ----------------------------------------------------------------- *)
(* Parsing: plain recursive descent over the string. *)

exception Bad of string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail ("bad literal (wanted " ^ word ^ ")")
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            if !pos >= n then fail "unterminated escape"
            else begin
              (match s.[!pos] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if !pos + 4 >= n then fail "truncated \\u escape";
                  let hex = String.sub s (!pos + 1) 4 in
                  let code =
                    match int_of_string_opt ("0x" ^ hex) with
                    | Some c -> c
                    | None -> fail "bad \\u escape"
                  in
                  (* Encode the BMP code point as UTF-8; surrogate pairs
                     are out of scope for this protocol. *)
                  if code < 0x80 then Buffer.add_char b (Char.chr code)
                  else if code < 0x800 then begin
                    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end
                  else begin
                    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                  end;
                  pos := !pos + 4
              | c -> fail (Printf.sprintf "bad escape \\%c" c));
              advance ();
              go ()
            end
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some f -> Num f
    | None -> fail ("bad number " ^ tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let member () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec members acc =
            let kv = member () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ----------------------------------------------------------------- *)
(* Accessors *)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr xs -> Some xs | _ -> None
let obj = function Obj kvs -> Some kvs | _ -> None
let mem_str k v = Option.bind (member k v) str
let mem_num k v = Option.bind (member k v) num
let mem_bool k v = Option.bind (member k v) bool
