module Log = (val Logs.src_log (Logs.Src.create "service.daemon") : Logs.LOG)

(* ----------------------------------------------------------------- *)
(* Daemon-level fault plans *)

module Fault = struct
  type t =
    | Kill_worker of string
    | Drop_client of string
    | Wedge_queue
    | Die_at of string

  type plan = t list

  let none = []

  let of_token tok =
    let at p =
      let lp = String.length p in
      if
        String.length tok > lp
        && String.sub tok 0 lp = p
        && tok.[lp] = '@'
      then Some (String.sub tok (lp + 1) (String.length tok - lp - 1))
      else None
    in
    if tok = "wedge-queue" then Ok Wedge_queue
    else
      match at "kill-worker" with
      | Some id -> Ok (Kill_worker id)
      | None -> (
          match at "drop-client" with
          | Some id -> Ok (Drop_client id)
          | None -> (
              match at "die" with
              | Some id -> Ok (Die_at id)
              | None ->
                  Error
                    (Printf.sprintf
                       "unknown daemon fault %S (kill-worker@JOB, drop-client@JOB, \
                        wedge-queue, die@JOB)"
                       tok)))

  let of_string s =
    let s = String.trim s in
    if s = "" || s = "none" then Ok []
    else
      List.fold_left
        (fun acc tok ->
          Result.bind acc (fun plan ->
              Result.map (fun f -> f :: plan) (of_token (String.trim tok))))
        (Ok [])
        (String.split_on_char ',' s)
      |> Result.map List.rev

  let to_string plan =
    if plan = [] then "none"
    else
      String.concat ","
        (List.map
           (function
             | Kill_worker id -> "kill-worker@" ^ id
             | Drop_client id -> "drop-client@" ^ id
             | Wedge_queue -> "wedge-queue"
             | Die_at id -> "die@" ^ id)
           plan)
end

(* ----------------------------------------------------------------- *)
(* Configuration *)

type config = {
  run_dir : string;
  sock : string option;
  workers : int;
  queue_cap : int;
  cache_max_mb : int option;
  breaker_threshold : int;
  breaker_cooldown_s : float;
  default_deadline_s : float option;
  job_retries : int;
  lock_wait_s : float;
  faults : Fault.plan;
  resume : bool;
}

let default_config ~run_dir =
  {
    run_dir;
    sock = None;
    workers = 2;
    queue_cap = 16;
    cache_max_mb = None;
    breaker_threshold = 3;
    breaker_cooldown_s = 30.0;
    default_deadline_s = None;
    job_retries = 2;
    lock_wait_s = 0.0;
    faults = Fault.none;
    resume = false;
  }

let socket_path cfg =
  match cfg.sock with
  | Some s -> s
  | None -> Filename.concat cfg.run_dir "verifyd.sock"

(* ----------------------------------------------------------------- *)
(* Daemon state *)

type client = { cfd : Unix.file_descr; cbuf : Buffer.t }

type worker = {
  w_id : string;
  pid : int;
  kill_after : float option;  (* absolute wall deadline + grace *)
  mutable killed : bool;
  mutable timed_out : bool;
  mutable cancelled : bool;
}

type counters = {
  mutable submits : int;
  mutable accepted : int;
  mutable shed : int;
  mutable deduped : int;
  mutable cache_served : int;
  mutable breaker_rejects : int;
  mutable completed : int;
  mutable crashes : int;
  mutable timeouts : int;
  mutable cancelled : int;
}

type st = {
  cfg : config;
  sock : string;
  q : Jobqueue.t;
  cache : Supervise.Cache.t;
  listen : Unix.file_descr;
  mutable clients : client list;
  pending : string Queue.t;
  mutable workers : worker list;
  waiters : (string, Unix.file_descr list ref) Hashtbl.t;
  detached : (string, unit) Hashtbl.t;
  by_fp : (string, string) Hashtbl.t;
  retries : (string, int) Hashtbl.t;
  not_before : (string, float) Hashtbl.t;
  breaker : Breaker.t;
  c : counters;
  mutable fired : Fault.t list;  (* one-shot faults already fired *)
  draining : bool ref;
  interrupted : bool ref;
}

let results_dir st = Filename.concat st.cfg.run_dir "results"
let outbox_dir st = Filename.concat st.cfg.run_dir "outbox"
let result_path st fp = Filename.concat (results_dir st) (fp ^ ".json")
let outbox_path st id = Filename.concat (outbox_dir st) (id ^ ".json")

let fault_fires st f =
  if List.mem f st.cfg.faults && not (List.mem f st.fired) then begin
    st.fired <- f :: st.fired;
    true
  end
  else false

let wedged st = List.mem Fault.Wedge_queue st.cfg.faults

(* ----------------------------------------------------------------- *)
(* Client I/O *)

let send_raw st cl line =
  let line = line ^ "\n" in
  let n = String.length line in
  let rec go off =
    if off >= n then true
    else
      match Unix.write_substring cl.cfd line off (n - off) with
      | w -> go (off + w)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          (* Satellite: a vanished client is a structured diagnosis on
             our side, never a daemon-killing SIGPIPE. *)
          Log.info (fun k -> k "client gone mid-write (EPIPE): dropping it");
          false
      | exception Unix.Unix_error (err, _, _) ->
          Log.warn (fun k -> k "client write failed: %s" (Unix.error_message err));
          false
  in
  ignore st;
  go 0

let send st cl v = send_raw st cl (Json.to_string v)

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Forget a client everywhere. Jobs it was the last waiter of are
   cancelled — unless detached (submitted no-wait, or recovered from the
   ledger), which run to completion regardless. *)
let rec drop_client st fd =
  (match List.find_opt (fun c -> c.cfd == fd) st.clients with
  | Some _ -> ()
  | None -> ());
  st.clients <- List.filter (fun c -> c.cfd != fd) st.clients;
  close_fd fd;
  let orphaned = ref [] in
  Hashtbl.iter
    (fun id fds ->
      if List.memq fd !fds then begin
        fds := List.filter (fun f -> f != fd) !fds;
        if !fds = [] then orphaned := id :: !orphaned
      end)
    st.waiters;
  List.iter
    (fun id ->
      Hashtbl.remove st.waiters id;
      if not (Hashtbl.mem st.detached id) then cancel_job st id)
    !orphaned

and cancel_job st id =
  match Jobqueue.find st.q id with
  | None -> ()
  | Some e -> (
      match e.Jobqueue.state with
      | Jobqueue.Pending ->
          (* Remove from the in-memory queue; the ledger gets a cancel
             line so a crash right now does not resurrect the job. *)
          let keep = Queue.create () in
          Queue.iter (fun i -> if i <> id then Queue.add i keep) st.pending;
          Queue.clear st.pending;
          Queue.transfer keep st.pending;
          Jobqueue.cancel st.q e;
          Hashtbl.remove st.by_fp e.Jobqueue.fp;
          st.c.cancelled <- st.c.cancelled + 1;
          Log.info (fun k -> k "job %s cancelled (client gone, still pending)" id)
      | Jobqueue.Running -> (
          match List.find_opt (fun w -> w.w_id = id) st.workers with
          | Some w ->
              w.cancelled <- true;
              (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
              Jobqueue.cancel st.q e;
              Hashtbl.remove st.by_fp e.Jobqueue.fp;
              st.c.cancelled <- st.c.cancelled + 1;
              Log.info (fun k ->
                  k "job %s cancelled (client gone, worker %d killed)" id w.pid)
          | None -> ())
      | _ -> ())

let notify st id v =
  (match Hashtbl.find_opt st.waiters id with
  | Some fds ->
      List.iter
        (fun fd ->
          match List.find_opt (fun c -> c.cfd == fd) st.clients with
          | Some cl -> if not (send st cl v) then drop_client st fd
          | None -> ())
        !fds
  | None -> ());
  Hashtbl.remove st.waiters id

(* ----------------------------------------------------------------- *)
(* Result store *)

let stored_result st fp =
  match Ioutil.read_file (result_path st fp) with
  | None -> None
  | Some bytes -> (
      match Json.parse bytes with Ok v -> Some v | Error _ -> None)

let result_response ~id ~cached ?(solves = 0) result_obj =
  let verdict = Option.value (Json.mem_str "verdict" result_obj) ~default:"failed" in
  let exit_code =
    match Job.verdict_of_string verdict with
    | Ok v -> Job.exit_code v
    | Error _ -> 1
  in
  Json.Obj
    [
      ("type", Json.Str "result");
      ("id", Json.Str id);
      ("verdict", Json.Str verdict);
      ("exit", Json.Num (float_of_int exit_code));
      ("cached", Json.Bool cached);
      ("solves", Json.Num (float_of_int solves));
      ("result", result_obj);
    ]

let synthetic_result ~verdict ~kind ~detail =
  Json.Obj
    [
      ("verdict", Json.Str (Job.verdict_to_string verdict));
      ("beta", Json.Num 0.0);
      ("kind", Json.Str kind);
      ("detail", Json.Str detail);
    ]

(* ----------------------------------------------------------------- *)
(* Workers *)

let deadline_grace_s = 5.0

let spawn_worker st (e : Jobqueue.entry) =
  let id = e.Jobqueue.id in
  Jobqueue.start st.q e;
  if fault_fires st (Fault.Die_at id) then begin
    (* Deterministic kill -9 mid-job: the start line is ledgered and
       fsync'd, the worker never runs, the daemon dies like the OOM
       killer got it. --resume recovers the job. *)
    Format.printf "verifyd: fault die@%s firing — simulating kill -9@." id;
    Format.pp_print_flush Format.std_formatter ();
    Unix._exit 137
  end;
  match Unix.fork () with
  | 0 ->
      (* Worker. Shed every inherited daemon fd so client EOF detection
         keeps working in the parent, then run the job over the shared
         run-dir cache/journal and exit with the verdict's code. *)
      Sys.set_signal Sys.sigterm Sys.Signal_default;
      Sys.set_signal Sys.sigint Sys.Signal_default;
      close_fd st.listen;
      List.iter (fun c -> close_fd c.cfd) st.clients;
      let code =
        try
          let ctx =
            Supervise.create ~run_dir:st.cfg.run_dir ~isolate:false ~jobs:1 ()
          in
          let policy = Job.make_policy ~supervise:ctx e.Jobqueue.spec in
          let r = Job.run ~policy e.Jobqueue.spec in
          let stable = Job.result_json r in
          let outbox =
            Json.to_string
              (Json.Obj
                 [
                   ("id", Json.Str id);
                   ("fp", Json.Str e.Jobqueue.fp);
                   ( "result",
                     match Json.parse stable with Ok v -> v | Error _ -> Json.Null
                   );
                   ("solves", Json.Num (float_of_int r.Job.solves));
                   ("attempts", Json.Num (float_of_int r.Job.attempts));
                   ("attempt_s", Json.Num r.Job.attempt_s);
                   ("deadline_hit", Json.Bool r.Job.deadline_hit);
                 ])
          in
          Ioutil.write_atomic ~path:(outbox_path st id) outbox;
          (* Only clean completions enter the result store: a Failed or
             deadline-cut run is budget-dependent, not a fact about the
             problem, so it must not be replayed as one. (This is also
             why the fingerprint may soundly exclude the deadline.) *)
          if r.Job.verdict <> Job.Failed && not r.Job.deadline_hit then
            Ioutil.write_atomic ~path:(result_path st e.Jobqueue.fp) stable;
          Job.exit_code r.Job.verdict
        with
        | Supervise.Interrupted -> 130
        | e ->
            prerr_endline ("verifyd worker: " ^ Printexc.to_string e);
            1
      in
      Unix._exit code
  | pid ->
      let kill_after =
        Option.map
          (fun d -> Unix.gettimeofday () +. d +. deadline_grace_s)
          e.Jobqueue.spec.Job.deadline_s
      in
      st.workers <-
        { w_id = id; pid; kill_after; killed = false; timed_out = false; cancelled = false }
        :: st.workers;
      Log.info (fun k -> k "job %s started in worker %d" id pid);
      if fault_fires st (Fault.Kill_worker id) then begin
        Format.printf "verifyd: fault kill-worker@%s firing on pid %d@." id pid;
        Format.pp_print_flush Format.std_formatter ();
        try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ()
      end

let maybe_cache_gc st =
  match st.cfg.cache_max_mb with
  | None -> ()
  | Some mb ->
      let stats = Supervise.Cache.gc st.cache ~max_bytes:(mb * 1024 * 1024) in
      if stats.Supervise.Cache.evicted > 0 then
        Log.info (fun k ->
            k "cache gc: evicted %d entries (%d bytes); %d entries (%d bytes) remain"
              stats.Supervise.Cache.evicted stats.Supervise.Cache.evicted_bytes
              stats.Supervise.Cache.entries stats.Supervise.Cache.bytes)

let job_done st (e : Jobqueue.entry) (w : worker) =
  match Ioutil.read_file (outbox_path st e.Jobqueue.id) with
  | Some bytes when not w.cancelled -> (
      match Json.parse bytes with
      | Ok outbox ->
          let result_obj =
            Option.value (Json.member "result" outbox) ~default:Json.Null
          in
          let solves =
            match Json.mem_num "solves" outbox with
            | Some f -> int_of_float f
            | None -> 0
          in
          let verdict =
            match
              Option.bind (Json.mem_str "verdict" result_obj) (fun v ->
                  Result.to_option (Job.verdict_of_string v))
            with
            | Some v -> v
            | None -> Job.Failed
          in
          Jobqueue.finish st.q e verdict;
          st.c.completed <- st.c.completed + 1;
          Breaker.success st.breaker;
          notify st e.Jobqueue.id
            (result_response ~id:e.Jobqueue.id ~cached:false ~solves result_obj);
          Format.printf "verifyd: job %s done: %s (%d solves)@." e.Jobqueue.id
            (Job.verdict_to_string verdict)
            solves;
          Format.pp_print_flush Format.std_formatter ();
          maybe_cache_gc st;
          true
      | Error why ->
          Log.warn (fun k ->
              k "job %s outbox unparseable (%s); treating as crash" e.Jobqueue.id why);
          false)
  | _ -> false

let reap st =
  let rec go () =
    match Unix.waitpid [ Unix.WNOHANG ] (-1) with
    | 0, _ -> ()
    | pid, status -> (
        match List.find_opt (fun w -> w.pid = pid) st.workers with
        | None -> go ()
        | Some w ->
            st.workers <- List.filter (fun x -> x.pid <> pid) st.workers;
            (match Jobqueue.find st.q w.w_id with
            | None -> ()
            | Some e ->
                let id = e.Jobqueue.id in
                let cleanup () =
                  Hashtbl.remove st.by_fp e.Jobqueue.fp;
                  Hashtbl.remove st.detached id;
                  Hashtbl.remove st.retries id;
                  Hashtbl.remove st.not_before id
                in
                if w.cancelled then cleanup ()
                else if job_done st e w then cleanup ()
                else if w.timed_out then begin
                  st.c.timeouts <- st.c.timeouts + 1;
                  Jobqueue.finish st.q e Job.Failed;
                  notify st id
                    (result_response ~id ~cached:false
                       (synthetic_result ~verdict:Job.Failed ~kind:"deadline"
                          ~detail:"worker exceeded the job deadline and was killed"));
                  cleanup ()
                end
                else begin
                  (* Crash: the worker died without an outbox. *)
                  st.c.crashes <- st.c.crashes + 1;
                  Breaker.failure st.breaker;
                  let how =
                    match status with
                    | Unix.WSIGNALED s -> Printf.sprintf "signal %d" s
                    | Unix.WEXITED c -> Printf.sprintf "exit %d" c
                    | Unix.WSTOPPED s -> Printf.sprintf "stopped %d" s
                  in
                  let attempt =
                    1 + Option.value (Hashtbl.find_opt st.retries id) ~default:0
                  in
                  if attempt <= st.cfg.job_retries then begin
                    Hashtbl.replace st.retries id attempt;
                    Hashtbl.replace st.not_before id
                      (Unix.gettimeofday ()
                      +. (0.25 *. Float.pow 2.0 (float_of_int (attempt - 1))));
                    e.Jobqueue.state <- Jobqueue.Pending;
                    Queue.add id st.pending;
                    Format.printf
                      "verifyd: job %s worker crashed (%s); retry %d/%d with backoff@."
                      id how attempt st.cfg.job_retries;
                    Format.pp_print_flush Format.std_formatter ()
                  end
                  else begin
                    Jobqueue.finish st.q e Job.Failed;
                    notify st id
                      (result_response ~id ~cached:false
                         (synthetic_result ~verdict:Job.Failed ~kind:"worker-crash"
                            ~detail:
                              (Printf.sprintf "worker died %d time(s), last by %s"
                                 attempt how)));
                    cleanup ()
                  end
                end);
            go ())
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let enforce_deadlines st =
  let now = Unix.gettimeofday () in
  List.iter
    (fun w ->
      match w.kill_after with
      | Some t when now > t && not w.killed ->
          w.killed <- true;
          w.timed_out <- true;
          Log.warn (fun k ->
              k "job %s worker %d past deadline + grace; SIGKILL" w.w_id w.pid);
          (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
      | _ -> ())
    st.workers

let dispatch st =
  if (not (wedged st)) && not !(st.draining) then begin
    let now = Unix.gettimeofday () in
    let progress = ref true in
    while
      !progress
      && List.length st.workers < st.cfg.workers
      && not (Queue.is_empty st.pending)
    do
      progress := false;
      let id = Queue.peek st.pending in
      let due =
        match Hashtbl.find_opt st.not_before id with
        | Some t -> now >= t
        | None -> true
      in
      match Jobqueue.find st.q id with
      | None ->
          ignore (Queue.pop st.pending);
          progress := true
      | Some e when e.Jobqueue.state <> Jobqueue.Pending ->
          ignore (Queue.pop st.pending);
          progress := true
      | Some e ->
          if due && Breaker.allow st.breaker then begin
            ignore (Queue.pop st.pending);
            spawn_worker st e;
            progress := true
          end
    done
  end

(* ----------------------------------------------------------------- *)
(* Requests *)

let status_json st =
  let entries, bytes = Supervise.Cache.usage st.cache in
  let hit_rate =
    if st.c.submits = 0 then 0.0
    else float_of_int st.c.cache_served /. float_of_int st.c.submits
  in
  Json.Obj
    [
      ("type", Json.Str "status");
      ("accepted", Json.Num (float_of_int st.c.accepted));
      ("shed", Json.Num (float_of_int st.c.shed));
      ("deduped", Json.Num (float_of_int st.c.deduped));
      ("cache_served", Json.Num (float_of_int st.c.cache_served));
      ("submits", Json.Num (float_of_int st.c.submits));
      ("hit_rate", Json.Num hit_rate);
      ("completed", Json.Num (float_of_int st.c.completed));
      ("crashes", Json.Num (float_of_int st.c.crashes));
      ("timeouts", Json.Num (float_of_int st.c.timeouts));
      ("cancelled", Json.Num (float_of_int st.c.cancelled));
      ("breaker_rejects", Json.Num (float_of_int st.c.breaker_rejects));
      ("breaker", Json.Str (Breaker.state_name st.breaker));
      ("breaker_trips", Json.Num (float_of_int (Breaker.trips st.breaker)));
      ("queue_depth", Json.Num (float_of_int (Queue.length st.pending)));
      ("running", Json.Num (float_of_int (List.length st.workers)));
      ("queue_cap", Json.Num (float_of_int st.cfg.queue_cap));
      ("workers", Json.Num (float_of_int st.cfg.workers));
      ("draining", Json.Bool !(st.draining));
      ("cache_entries", Json.Num (float_of_int entries));
      ("cache_bytes", Json.Num (float_of_int bytes));
    ]

let error_response fmt =
  Printf.ksprintf
    (fun msg ->
      Json.Obj [ ("type", Json.Str "error"); ("message", Json.Str msg) ])
    fmt

let handle_submit st cl req =
  st.c.submits <- st.c.submits + 1;
  match
    match Json.member "job" req with
    | Some j -> Job.spec_of_json j
    | None -> Error "submit request missing \"job\""
  with
  | Error why -> ignore (send st cl (error_response "%s" why))
  | Ok spec -> (
      let spec =
        match (spec.Job.deadline_s, st.cfg.default_deadline_s) with
        | None, Some d -> { spec with Job.deadline_s = Some d }
        | _ -> spec
      in
      let wait = Json.mem_bool "wait" req <> Some false in
      let fp = Job.fingerprint spec in
      match stored_result st fp with
      | Some stored ->
          (* Replay from the durable result store: byte-identical to the
             run that produced it, zero solves. *)
          st.c.cache_served <- st.c.cache_served + 1;
          ignore (send st cl (result_response ~id:("cached-" ^ fp) ~cached:true stored))
      | None -> (
          match Hashtbl.find_opt st.by_fp fp with
          | Some id ->
              (* In-flight dedup: N clients asking the same point share
                 one worker. *)
              st.c.deduped <- st.c.deduped + 1;
              if wait then begin
                let fds =
                  match Hashtbl.find_opt st.waiters id with
                  | Some fds -> fds
                  | None ->
                      let fds = ref [] in
                      Hashtbl.replace st.waiters id fds;
                      fds
                in
                if not (List.memq cl.cfd !fds) then fds := cl.cfd :: !fds
              end;
              ignore
                (send st cl
                   (Json.Obj
                      [
                        ("type", Json.Str "accepted");
                        ("id", Json.Str id);
                        ("fp", Json.Str fp);
                        ("deduped", Json.Bool true);
                      ]))
          | None ->
              if !(st.draining) then
                ignore
                  (send st cl
                     (Json.Obj
                        [
                          ("type", Json.Str "draining");
                          ( "message",
                            Json.Str "daemon is draining; resubmit after restart" );
                        ]))
              else if Breaker.state st.breaker = Breaker.Open then begin
                (* Circuit open: degrade to cache-only serving. *)
                st.c.breaker_rejects <- st.c.breaker_rejects + 1;
                st.c.shed <- st.c.shed + 1;
                ignore
                  (send st cl
                     (Json.Obj
                        [
                          ("type", Json.Str "degraded");
                          ( "message",
                            Json.Str
                              "worker fleet unhealthy; serving cached results only" );
                          ("retry_after_s", Json.Num (Breaker.retry_after_s st.breaker));
                        ]))
              end
              else if Queue.length st.pending >= st.cfg.queue_cap then begin
                (* Bounded admission: shed load with a structured
                   refusal instead of growing without bound. *)
                st.c.shed <- st.c.shed + 1;
                ignore
                  (send st cl
                     (Json.Obj
                        [
                          ("type", Json.Str "overloaded");
                          ("queue_depth", Json.Num (float_of_int (Queue.length st.pending)));
                          ( "retry_after_s",
                            Json.Num (2.0 *. float_of_int (Queue.length st.pending)) );
                        ]))
              end
              else begin
                let e = Jobqueue.submit st.q spec in
                let id = e.Jobqueue.id in
                Queue.add id st.pending;
                Hashtbl.replace st.by_fp fp id;
                st.c.accepted <- st.c.accepted + 1;
                if wait then Hashtbl.replace st.waiters id (ref [ cl.cfd ])
                else Hashtbl.replace st.detached id ();
                ignore
                  (send st cl
                     (Json.Obj
                        [
                          ("type", Json.Str "accepted");
                          ("id", Json.Str id);
                          ("fp", Json.Str fp);
                          ("deduped", Json.Bool false);
                        ]));
                if fault_fires st (Fault.Drop_client id) then begin
                  Format.printf "verifyd: fault drop-client@%s firing@." id;
                  Format.pp_print_flush Format.std_formatter ();
                  drop_client st cl.cfd
                end
              end))

let handle_request st cl line =
  match Json.parse line with
  | Error why -> ignore (send st cl (error_response "bad request: %s" why))
  | Ok req -> (
      match Json.mem_str "cmd" req with
      | Some "submit" -> handle_submit st cl req
      | Some "status" -> ignore (send st cl (status_json st))
      | Some "cache-gc" -> (
          let max_mb =
            match Json.mem_num "max_mb" req with
            | Some f when f >= 0.0 -> Some (int_of_float f)
            | _ -> st.cfg.cache_max_mb
          in
          match max_mb with
          | None ->
              ignore
                (send st cl
                   (error_response
                      "cache-gc needs max_mb (or start verifyd with --cache-max-mb)"))
          | Some mb ->
              let s = Supervise.Cache.gc st.cache ~max_bytes:(mb * 1024 * 1024) in
              ignore
                (send st cl
                   (Json.Obj
                      [
                        ("type", Json.Str "cache-gc");
                        ("entries", Json.Num (float_of_int s.Supervise.Cache.entries));
                        ("bytes", Json.Num (float_of_int s.Supervise.Cache.bytes));
                        ("evicted", Json.Num (float_of_int s.Supervise.Cache.evicted));
                        ( "evicted_bytes",
                          Json.Num (float_of_int s.Supervise.Cache.evicted_bytes) );
                      ])))
      | Some "stop" ->
          st.draining := true;
          ignore
            (send st cl
               (Json.Obj [ ("type", Json.Str "stopping"); ("draining", Json.Bool true) ]))
      | Some c -> ignore (send st cl (error_response "unknown command %S" c))
      | None -> ignore (send st cl (error_response "request without \"cmd\"")))

(* Consume complete lines out of a client's receive buffer. *)
let feed_client st cl bytes n chunk =
  Buffer.add_subbytes cl.cbuf chunk 0 n;
  ignore bytes;
  let rec go () =
    let s = Buffer.contents cl.cbuf in
    match String.index_opt s '\n' with
    | None -> ()
    | Some i ->
        Buffer.clear cl.cbuf;
        Buffer.add_string cl.cbuf (String.sub s (i + 1) (String.length s - i - 1));
        let line = String.sub s 0 i in
        if String.trim line <> "" then handle_request st cl line;
        (* The client may have been dropped by its own request
           (drop-client fault); stop feeding it then. *)
        if List.exists (fun c -> c.cfd == cl.cfd) st.clients then go ()
  in
  go ()

(* ----------------------------------------------------------------- *)
(* The main loop *)

let drain_exit st =
  (* Pending jobs stay checkpointed in the fsync'd ledger; tell anyone
     still waiting on one, then flush and leave cleanly. *)
  let checkpointed = Queue.length st.pending in
  Queue.iter
    (fun id ->
      notify st id
        (Json.Obj
           [
             ("type", Json.Str "draining");
             ("id", Json.Str id);
             ( "message",
               Json.Str "job checkpointed in the queue ledger; resubmit after restart"
             );
           ]))
    st.pending;
  Jobqueue.fsync st.q;
  Jobqueue.close st.q;
  List.iter (fun c -> close_fd c.cfd) st.clients;
  close_fd st.listen;
  (try Unix.unlink st.sock with Unix.Unix_error _ -> ());
  Format.printf
    "verifyd: drained — 0 jobs in flight, %d pending checkpointed; exit 0@."
    checkpointed;
  Format.pp_print_flush Format.std_formatter ();
  0

let interrupt_exit st =
  List.iter
    (fun w -> try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
    st.workers;
  List.iter
    (fun w -> try ignore (Unix.waitpid [] w.pid) with Unix.Unix_error _ -> ())
    st.workers;
  Jobqueue.fsync st.q;
  Jobqueue.close st.q;
  List.iter (fun c -> close_fd c.cfd) st.clients;
  close_fd st.listen;
  (try Unix.unlink st.sock with Unix.Unix_error _ -> ());
  Format.printf "verifyd: interrupted — checkpoint saved; resume with --resume@.";
  Format.pp_print_flush Format.std_formatter ();
  130

let loop st =
  let chunk = Bytes.create 4096 in
  let rec go () =
    reap st;
    enforce_deadlines st;
    dispatch st;
    if !(st.interrupted) then interrupt_exit st
    else if !(st.draining) && st.workers = [] then drain_exit st
    else begin
      let fds = st.listen :: List.map (fun c -> c.cfd) st.clients in
      (match Unix.select fds [] [] 0.05 with
      | readable, _, _ ->
          List.iter
            (fun fd ->
              if fd == st.listen then (
                match Unix.accept st.listen with
                | cfd, _ ->
                    st.clients <- { cfd; cbuf = Buffer.create 256 } :: st.clients
                | exception Unix.Unix_error _ -> ())
              else
                match List.find_opt (fun c -> c.cfd == fd) st.clients with
                | None -> ()
                | Some cl -> (
                    match Unix.read fd chunk 0 (Bytes.length chunk) with
                    | 0 -> drop_client st fd
                    | n -> feed_client st cl 0 n chunk
                    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
                      ->
                        drop_client st fd
                    | exception Unix.Unix_error _ -> drop_client st fd))
            readable
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

(* ----------------------------------------------------------------- *)
(* Startup *)

let run cfg =
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("verifyd: " ^ m); 1) fmt in
  Ioutil.mkdir_p cfg.run_dir;
  match Supervise.Lock.acquire ~dir:cfg.run_dir ~wait_s:cfg.lock_wait_s () with
  | Error diag -> fail "%s" diag
  | Ok _ -> (
      match Jobqueue.open_ ~dir:cfg.run_dir with
      | Error why -> fail "%s" why
      | Ok (q, recovered, diags) ->
          List.iter (fun d -> Log.warn (fun k -> k "%s" d)) diags;
          if Jobqueue.had_entries q && not cfg.resume then
            fail
              "{\"error\":\"queue-not-resumed\",\"message\":\"run directory %s has a \
               job-queue ledger; restart with --resume (or use a fresh directory)\"}"
              (String.concat "" [ cfg.run_dir ])
          else begin
            let sock = socket_path cfg in
            (try Unix.unlink sock with Unix.Unix_error _ -> ());
            let listen = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            match
              Unix.bind listen (Unix.ADDR_UNIX sock);
              Unix.listen listen 64
            with
            | exception Unix.Unix_error (err, _, _) ->
                close_fd listen;
                fail "cannot listen on %s: %s" sock (Unix.error_message err)
            | () ->
                Ioutil.mkdir_p (Filename.concat cfg.run_dir "results");
                Ioutil.mkdir_p (Filename.concat cfg.run_dir "outbox");
                let cache =
                  Supervise.Cache.create ~dir:(Filename.concat cfg.run_dir "cache")
                in
                let draining = ref false and interrupted = ref false in
                Sys.set_signal Sys.sigterm
                  (Sys.Signal_handle (fun _ -> draining := true));
                Sys.set_signal Sys.sigint
                  (Sys.Signal_handle (fun _ -> interrupted := true));
                (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
                 with Invalid_argument _ -> ());
                let st =
                  {
                    cfg;
                    sock;
                    q;
                    cache;
                    listen;
                    clients = [];
                    pending = Queue.create ();
                    workers = [];
                    waiters = Hashtbl.create 16;
                    detached = Hashtbl.create 16;
                    by_fp = Hashtbl.create 16;
                    retries = Hashtbl.create 16;
                    not_before = Hashtbl.create 16;
                    breaker =
                      Breaker.create ~threshold:cfg.breaker_threshold
                        ~cooldown_s:cfg.breaker_cooldown_s ~now:Unix.gettimeofday ();
                    c =
                      {
                        submits = 0;
                        accepted = 0;
                        shed = 0;
                        deduped = 0;
                        cache_served = 0;
                        breaker_rejects = 0;
                        completed = 0;
                        crashes = 0;
                        timeouts = 0;
                        cancelled = 0;
                      };
                    fired = [];
                    draining;
                    interrupted;
                  }
                in
                (* Recovered jobs re-dispatch detached: their original
                   clients are gone; completed solves replay from the
                   cache, so recovery costs zero re-solves. *)
                List.iter
                  (fun (e : Jobqueue.entry) ->
                    Queue.add e.Jobqueue.id st.pending;
                    Hashtbl.replace st.by_fp e.Jobqueue.fp e.Jobqueue.id;
                    Hashtbl.replace st.detached e.Jobqueue.id ())
                  recovered;
                maybe_cache_gc st;
                Format.printf
                  "verifyd: listening on %s (run dir %s, %d workers, queue cap %d%s)@."
                  sock cfg.run_dir cfg.workers cfg.queue_cap
                  (if recovered <> [] then
                     Printf.sprintf "; recovered %d in-flight job(s)"
                       (List.length recovered)
                   else "");
                Format.pp_print_flush Format.std_formatter ();
                loop st
          end)
