(** Small durable-file helpers shared by the service layer: atomic
    writes (tmp + fsync + rename + directory fsync), tolerant reads, and
    recursive directory creation. Kept deliberately tiny — the solve
    cache and journal have their own copies inside {!Supervise}; these
    serve the queue ledger, the per-fingerprint result store and the
    worker outbox. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents; existing is fine. *)

val fsync_dir : string -> unit
(** fsync a directory fd so a just-renamed file survives power loss;
    no-op on platforms/filesystems that refuse directory fsync. *)

val write_atomic : path:string -> string -> unit
(** Write contents to [path] atomically: a pid-unique temp file in the
    same directory is written, fsync'd and renamed over [path], then the
    directory is fsync'd. Readers never observe a partial file. *)

val read_file : string -> string option
(** Whole file, or [None] when missing/unreadable. *)
