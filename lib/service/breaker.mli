(** A circuit breaker over the daemon's worker fleet. Repeated worker
    crashes (segfaults, OOM kills, a poisoned solver build) mean
    forking more workers just burns CPU and floods the ledger with
    retries; the breaker cuts them off and degrades the daemon to
    cache-only serving until a cooldown passes and a single probe job
    proves workers are healthy again.

    Classic three-state machine:

    - {b Closed} — normal operation; crashes are counted, and
      [threshold] {e consecutive} failures trip the breaker;
    - {b Open} — no workers are started; submits that miss the result
      store are refused with a structured [degraded] response carrying
      a retry-after hint; after [cooldown_s] the next {!allow} moves to
      Half-open;
    - {b Half-open} — exactly one probe job may start; its success
      closes the breaker, its failure re-opens it for another cooldown.

    Pure and clock-injected, so tests drive it without waiting. *)

type state = Closed | Open | Half_open

type t

val create : ?threshold:int -> ?cooldown_s:float -> now:(unit -> float) -> unit -> t
(** Defaults: [threshold = 3] consecutive failures, [cooldown_s = 30]. *)

val state : t -> state
(** Current state ({b Open} lapses into {b Half_open} lazily, on the
    next {!state}/{!allow} after the cooldown elapses). *)

val state_name : t -> string
(** ["closed" | "open" | "half-open"] for status JSON. *)

val allow : t -> bool
(** May a worker be started now? In Half-open this admits exactly one
    probe until {!success}/{!failure} settles it. *)

val success : t -> unit
(** A worker completed a job cleanly: reset to Closed. *)

val failure : t -> unit
(** A worker crashed. Trips Closed→Open at the threshold and
    Half-open→Open immediately. *)

val retry_after_s : t -> float
(** Seconds until the breaker would next admit work — the hint sent in
    [degraded] refusals (0 when not Open). *)

val trips : t -> int
(** Times the breaker has opened — a status counter. *)
