(** Fault-tolerant certification atlas: sweep the Table-1 circuit
    parameters over a grid of boxes and certify inevitability of
    phase-locking cell by cell, surviving solver failures, worker
    crashes and orchestrator kills.

    Each {e cell} of the grid is a box of circuit parameters in relative
    units (multiples of the Table-1 nominals, see
    {!Pll.set_axis_relative}). A cell is certified by running the
    attractive-invariant search (property P1) — or the full
    inevitability pipeline — on the model it induces, under a fresh
    {!Resilient} policy wired to a shared {!Supervise} context, so every
    interior-point solve is isolated, cached and journaled. When a cell
    cannot be certified the orchestrator {e subdivides} it (bisecting
    its widest axis, up to a depth limit): lock certificates often exist
    on parts of a box where the whole-box search fails. A cell that
    still fails at the depth limit is {e quarantined} with a structured
    diagnosis — and the sweep continues; one pathological corner of
    parameter space never takes down the atlas.

    Restartability is atlas-level, layered {e over} the per-solve cache:
    a write-ahead ledger ([ledger.log] in the run directory) records
    each cell's outcome, fsync'd before the sweep moves on. A run killed
    mid-sweep (kill -9 included) resumes with [--resume]: ledgered cells
    replay instantly, in-flight cells re-run against the solve cache
    (zero re-solves for anything that completed), and the final
    [atlas.json] is byte-identical to an uninterrupted run's — which is
    also independent of the job count, so [-j 1] and [-j N] agree. *)

(** The sweep grid: per-axis subdivided ranges in relative units. *)
module Grid : sig
  type range = {
    axis : Pll.axis;
    lo : float;  (** relative to the Table-1 nominal; > 0 *)
    hi : float;
    n : int;  (** number of grid cells along this axis; >= 1 *)
  }

  type t = range list
  (** Non-empty; axes distinct, in spec order. *)

  val parse : string -> (t, string) result
  (** Parse a spec like ["ip=0.8:1.2:3,kv=0.9:1.1:2"]: comma-separated
      [axis=LO:HI:N] entries ([N] optional, default 1; [LO:HI] may be a
      single value for a point range). *)

  val to_string : t -> string
  (** Canonical rendering; [parse] of it round-trips. *)

  val n_cells : t -> int
end

(** One cell of the atlas: a box in relative parameter units. *)
type cell = {
  id : string;
      (** Grid cells are [c<i>-<j>-...] (one index per grid axis, spec
          order); subdivision children append [.0] / [.1]. *)
  depth : int;  (** 0 for grid cells *)
  box : (Pll.axis * float * float) list;  (** per-axis [lo, hi], relative *)
}

val grid_cells : Grid.t -> cell list
(** The depth-0 cells, sorted by id. *)

val split : cell -> (cell * cell) option
(** Bisect the widest axis of the box (ties: first axis in box order)
    into children [<id>.0] (lower half) and [<id>.1]; [None] when every
    axis is (numerically) a point, in which case subdivision cannot make
    progress and the cell must be quarantined. *)

(** A quarantine diagnosis: a small, deterministic classification that
    goes into [atlas.json]. The full solver journal (with timings) is
    written separately to [quarantine/<id>.json] in the run directory. *)
type diagnosis = {
  kind : string;
      (** [infeasible] (solver conclusively refuted the relaxation),
          [solver-failure], [level-collapse] (certificate found but no
          positive level certifies), [budget-exhausted], [crash],
          [injected] (a [fail-cell] fault), [bad-cell] (the cell's box
          is invalid for this order — never subdivided),
          [not-established] (full pipeline completed but did not verify
          inevitability), [exact-unproven] (exact re-validation of a
          found certificate failed), [ledger-inconsistent] (resume
          found an entry that contradicts the grid) *)
  detail : string;
}

type cell_result =
  | Certified of { beta : float }  (** maximized invariant level *)
  | Subdivided
  | Quarantined of diagnosis

(** What the sweep certifies and how hard it may try. *)
type job = {
  order : Pll.order;
  degree : int;
  robust : bool;
      (** certify each cell's whole parameter {e box} (vertex
          enforcement); otherwise certify the cell's midpoint *)
  full : bool;  (** run the full P1+P2 pipeline instead of P1 only *)
  exact : bool;
      (** re-prove each certified cell in exact arithmetic and persist
          [artifacts/cell-<id>.artifact] for [check_cert] replay *)
  bisect_steps : int;  (** level-maximization bisection steps *)
  max_subdiv : int;  (** maximum subdivision depth *)
  cell_budget_s : float option;  (** per-cell pipeline deadline *)
}

val default_job : Pll.order -> job
(** Paper degree for the order, non-robust, P1 only, no exact replay,
    6 bisection steps, [max_subdiv = 2], no budget. *)

val fingerprint : job -> Grid.t -> string
(** Canonical one-line rendering of everything that determines the
    per-cell problems — the {!Supervise.Config_guard} fingerprint.
    Deliberately excludes the fault plan, job count and budgets: a
    chaos run is resumed by a plain run of the same problem. *)

(** Atlas-level fault plans. On top of the in-process and process-level
    kinds of {!Resilient.Faults} (which apply to every cell, or to one
    cell via a [CELL/tok] scope), two orchestrator-level kinds exercise
    the sweep's own crash recovery. *)
module Fault : sig
  type t =
    | Kill_at_cell of string
        (** [kill@CELL]: the orchestrator [_exit]s (as if SIGKILLed)
            immediately after ledgering CELL's completion — the resume
            chaos fault *)
    | Fail_cell of string
        (** [fail-cell@CELL]: CELL and its descendants fail without
            solving (diagnosis kind [injected]) — drives subdivision
            into quarantine deterministically *)
    | Cell_scoped of string * string
        (** [CELL/tok]: a {!Resilient.Faults} token applied to that
            cell's solves only *)
    | Global of string  (** a bare {!Resilient.Faults} token: every cell *)

  type plan = t list

  val none : plan
  val of_string : string -> (plan, string) result
  val to_string : plan -> string
end

(** One row of the final atlas. *)
type record = {
  cell : cell;
  result : cell_result;
  replayed : bool;  (** satisfied from the ledger, not re-certified *)
  solves : int;  (** logical solves spent on this cell (0 when replayed) *)
  attempts : int;
  attempt_s : float;
}

type report = {
  job : job;
  grid : Grid.t;
  records : record list;  (** sorted by cell id *)
  certified : int;
  subdivided : int;
  quarantined : int;
  replayed_cells : int;
  wall_s : float;
}

val certified_fraction : report -> float
(** Certified leaves over all leaves (subdivided cells are interior). *)

val depth_histogram : report -> (int * int) list
(** [(depth, cells recorded at that depth)], ascending. *)

val quarantine_list : report -> (string * diagnosis) list

val report_json : report -> string
(** The [atlas.json] payload. Deterministic: independent of wall-clock,
    job count, replay history and run-directory paths, so interrupted+
    resumed and uninterrupted sweeps of the same job produce identical
    bytes. *)

val pp_summary : Format.formatter -> report -> unit
(** Human-readable sweep summary (this side includes timings). *)

val exit_code : report -> int
(** [0] fully certified, [2] completed with quarantined cells. *)

(** The write-ahead atlas ledger ([ledger.log]). Exposed for tests. *)
module Ledger : sig
  type entry = {
    id : string;
    depth : int;
    result : cell_result;
    solves : int;
    attempts : int;
    attempt_s : float;
  }

  val path : string -> string

  val read : string -> entry list * string list
  (** Completed cells of a run directory's ledger (last entry per id
      wins; insertion order preserved) plus one diagnosis per malformed
      line. Missing ledger reads as [([], [])]. *)

  val append : string -> entry -> unit
  (** Fsync'd append of a [done] line. *)

  val mark_start : string -> string -> unit
  (** Fsync'd append of a [start CELL] line (crash forensics: which
      cells were in flight). *)
end

val run :
  ctx:Supervise.ctx ->
  ?faults:Fault.plan ->
  resume:bool ->
  job ->
  Grid.t ->
  (report, string) result
(** Execute the sweep. The context's run directory (when present) holds
    the ledger, the per-solve cache/journal, quarantine diagnoses and
    proof artifacts; [run] also writes [atlas.json] and [summary.txt]
    there on completion. With [resume:false] a run directory whose
    ledger already has entries is refused (use [--resume], or a fresh
    directory); with [resume:true] ledgered cells are replayed.
    [Error] is reserved for setup problems (bad grid/axis combinations,
    refused resume) — per-cell trouble is quarantine, not an error.
    Raises {!Supervise.Interrupted} on SIGINT/SIGTERM checkpoints. *)
