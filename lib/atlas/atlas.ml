(* Fault-tolerant certification atlas over the Table-1 parameter space.

   Layering: each cell gets a fresh Resilient policy wired to the shared
   Supervise context, so per-solve isolation / caching / journaling come
   from the existing stack. This module owns only sweep-level state: the
   cell tree (grid cells and their subdivision descendants), the
   write-ahead ledger that makes the tree restartable, quarantine, and
   the deterministic atlas report.

   Determinism contract (the smoke tests compare atlas.json bytes across
   -j 1 / -j N / killed-and-resumed runs): everything that reaches
   report_json must depend only on the job, the grid and the solver's
   deterministic answers — never on wall-clock, pids, paths, job count
   or replay history. Timing lives in the ledger and the human summary
   only; quarantine details are synthesized from deterministic journal
   labels, not from raw error strings (which embed attempt timings). *)

let src = Logs.Src.create "atlas" ~doc:"certification atlas sweep"

module Log = (val Logs.src_log src : Logs.LOG)

(* ----------------------------------------------------------------- *)
(* Grid *)

module Grid = struct
  type range = { axis : Pll.axis; lo : float; hi : float; n : int }
  type t = range list

  let parse_range tok =
    match String.index_opt tok '=' with
    | None -> Error (Printf.sprintf "grid entry %S: expected axis=LO:HI[:N]" tok)
    | Some i -> (
        let name = String.sub tok 0 i in
        let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
        match Pll.axis_of_string name with
        | Error e -> Error e
        | Ok axis -> (
            let float_field s =
              match float_of_string_opt s with
              | Some f when f > 0.0 -> Ok f
              | _ -> Error (Printf.sprintf "grid entry %S: bad positive factor %S" tok s)
            in
            let ( let* ) = Result.bind in
            match String.split_on_char ':' rest with
            | [ v ] ->
                let* v = float_field v in
                Ok { axis; lo = v; hi = v; n = 1 }
            | [ lo; hi ] | [ lo; hi; "" ] ->
                let* lo = float_field lo in
                let* hi = float_field hi in
                if lo > hi then Error (Printf.sprintf "grid entry %S: LO > HI" tok)
                else Ok { axis; lo; hi; n = 1 }
            | [ lo; hi; n ] -> (
                let* lo = float_field lo in
                let* hi = float_field hi in
                if lo > hi then Error (Printf.sprintf "grid entry %S: LO > HI" tok)
                else
                  match int_of_string_opt n with
                  | Some n when n >= 1 -> Ok { axis; lo; hi; n }
                  | _ -> Error (Printf.sprintf "grid entry %S: bad cell count %S" tok n))
            | _ -> Error (Printf.sprintf "grid entry %S: expected axis=LO:HI[:N]" tok)))

  let parse s =
    let toks =
      String.split_on_char ',' (String.trim s)
      |> List.map String.trim
      |> List.filter (fun t -> t <> "")
    in
    if toks = [] then Error "empty grid spec"
    else
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | tok :: rest -> (
            match parse_range tok with
            | Error e -> Error e
            | Ok r ->
                if List.exists (fun (r' : range) -> r'.axis = r.axis) acc then
                  Error
                    (Printf.sprintf "grid axis %s given twice" (Pll.axis_name r.axis))
                else go (r :: acc) rest)
      in
      go [] toks

  let range_to_string (r : range) =
    if r.lo = r.hi && r.n = 1 then
      Printf.sprintf "%s=%g" (Pll.axis_name r.axis) r.lo
    else Printf.sprintf "%s=%g:%g:%d" (Pll.axis_name r.axis) r.lo r.hi r.n

  let to_string t = String.concat "," (List.map range_to_string t)
  let n_cells t = List.fold_left (fun acc (r : range) -> acc * r.n) 1 t
end

(* ----------------------------------------------------------------- *)
(* Cells *)

type cell = { id : string; depth : int; box : (Pll.axis * float * float) list }

let grid_cells (grid : Grid.t) =
  (* Cartesian product of per-axis index ranges, id = "c" ^ indices. *)
  let rec expand = function
    | [] -> [ ([], []) ]
    | (r : Grid.range) :: rest ->
        let tails = expand rest in
        List.concat_map
          (fun i ->
            let w = (r.hi -. r.lo) /. float_of_int r.n in
            let lo = r.lo +. (float_of_int i *. w) in
            let hi = if i = r.n - 1 then r.hi else r.lo +. (float_of_int (i + 1) *. w) in
            List.map
              (fun (idx, box) -> (string_of_int i :: idx, (r.axis, lo, hi) :: box))
              tails)
          (List.init r.n Fun.id)
  in
  expand grid
  |> List.map (fun (idx, box) ->
         { id = "c" ^ String.concat "-" idx; depth = 0; box })
  |> List.sort (fun a b -> compare a.id b.id)

let split (c : cell) =
  let width (_, lo, hi) = hi -. lo in
  match c.box with
  | [] -> None
  | first :: _ ->
      let widest = List.fold_left (fun w a -> if width a > width w then a else w) first c.box in
      if width widest <= 1e-9 then None
      else
        let ax, lo, hi = widest in
        let mid = 0.5 *. (lo +. hi) in
        let replace box lo' hi' =
          List.map (fun ((a, _, _) as e) -> if a = ax then (a, lo', hi') else e) box
        in
        Some
          ( { id = c.id ^ ".0"; depth = c.depth + 1; box = replace c.box lo mid },
            { id = c.id ^ ".1"; depth = c.depth + 1; box = replace c.box mid hi } )

(* ----------------------------------------------------------------- *)
(* Diagnoses, jobs *)

type diagnosis = { kind : string; detail : string }

type cell_result =
  | Certified of { beta : float }
  | Subdivided
  | Quarantined of diagnosis

type job = {
  order : Pll.order;
  degree : int;
  robust : bool;
  full : bool;
  exact : bool;
  bisect_steps : int;
  max_subdiv : int;
  cell_budget_s : float option;
}

let default_job order =
  {
    order;
    degree = (match order with Pll.Third -> 6 | Pll.Fourth -> 4);
    robust = false;
    full = false;
    exact = false;
    bisect_steps = 6;
    max_subdiv = 2;
    cell_budget_s = None;
  }

let order_name = function Pll.Third -> "third" | Pll.Fourth -> "fourth"

let fingerprint (job : job) grid =
  Printf.sprintf
    "pll-atlas v1 grid=%s order=%s degree=%d robust=%b full=%b exact=%b bisect=%d \
     max-subdiv=%d"
    (Grid.to_string grid) (order_name job.order) job.degree job.robust job.full
    job.exact job.bisect_steps job.max_subdiv

(* ----------------------------------------------------------------- *)
(* Fault plans *)

module Fault = struct
  type t =
    | Kill_at_cell of string
    | Fail_cell of string
    | Cell_scoped of string * string
    | Global of string

  type plan = t list

  let none = []
  let starts ~p s = String.length s >= String.length p && String.sub s 0 (String.length p) = p

  let parse_tok tok =
    match String.index_opt tok '/' with
    | Some i -> (
        let cell = String.sub tok 0 i in
        let rest = String.sub tok (i + 1) (String.length tok - i - 1) in
        if cell = "" || rest = "" then
          Error (Printf.sprintf "fault %S: expected CELL/token" tok)
        else
          match Resilient.Faults.of_string rest with
          | Ok p when not (Resilient.Faults.is_empty p) -> Ok (Cell_scoped (cell, rest))
          | Ok _ -> Error (Printf.sprintf "fault %S: empty cell-scoped token" tok)
          | Error e -> Error (Printf.sprintf "fault %S: %s" tok e))
    | None ->
        if starts ~p:"fail-cell@" tok then begin
          let cell = String.sub tok 10 (String.length tok - 10) in
          if cell = "" then Error (Printf.sprintf "fault %S: missing cell id" tok)
          else Ok (Fail_cell cell)
        end
        else
          (* [kill@S:I] stays a process-level worker fault; [kill@CELL]
             (anything that does not parse as a solve trigger) is the
             orchestrator kill. *)
          let as_resilient () =
            match Resilient.Faults.of_string tok with
            | Ok p when not (Resilient.Faults.is_empty p) -> Some (Global tok)
            | _ -> None
          in
          (match as_resilient () with
          | Some g -> Ok g
          | None ->
              if starts ~p:"kill@" tok then begin
                let cell = String.sub tok 5 (String.length tok - 5) in
                if cell = "" then Error (Printf.sprintf "fault %S: missing cell id" tok)
                else Ok (Kill_at_cell cell)
              end
              else
                Error
                  (Printf.sprintf
                     "fault %S: not a solver fault, kill@CELL, fail-cell@CELL or \
                      CELL/token"
                     tok))

  let of_string s =
    let s = String.trim s in
    if s = "" || s = "none" then Ok none
    else
      let toks =
        String.split_on_char ',' s |> List.map String.trim |> List.filter (( <> ) "")
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | tok :: rest -> (
            match parse_tok tok with Error e -> Error e | Ok t -> go (t :: acc) rest)
      in
      go [] toks

  let tok_to_string = function
    | Kill_at_cell c -> "kill@" ^ c
    | Fail_cell c -> "fail-cell@" ^ c
    | Cell_scoped (c, t) -> c ^ "/" ^ t
    | Global t -> t

  let to_string plan =
    if plan = [] then "none" else String.concat "," (List.map tok_to_string plan)

  let fail_cell plan id =
    List.exists
      (function
        | Fail_cell p -> p = id || starts ~p:(p ^ ".") id
        | _ -> false)
      plan

  let kill_after plan id =
    List.exists (function Kill_at_cell k -> k = id | _ -> false) plan

  let resilient_plan plan id =
    let toks =
      List.filter_map
        (function
          | Global t -> Some t
          | Cell_scoped (c, t) when c = id -> Some t
          | _ -> None)
        plan
    in
    match Resilient.Faults.of_string (String.concat "," toks) with
    | Ok p -> p
    | Error _ -> Resilient.Faults.none ()
end

(* ----------------------------------------------------------------- *)
(* Records and reports *)

type record = {
  cell : cell;
  result : cell_result;
  replayed : bool;
  solves : int;
  attempts : int;
  attempt_s : float;
}

type report = {
  job : job;
  grid : Grid.t;
  records : record list;
  certified : int;
  subdivided : int;
  quarantined : int;
  replayed_cells : int;
  wall_s : float;
}

let certified_fraction r =
  let leaves = r.certified + r.quarantined in
  if leaves = 0 then 0.0 else float_of_int r.certified /. float_of_int leaves

let depth_histogram r =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun rec_ ->
      let d = rec_.cell.depth in
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    r.records;
  Hashtbl.fold (fun d n acc -> (d, n) :: acc) tbl [] |> List.sort compare

let quarantine_list r =
  List.filter_map
    (fun rec_ ->
      match rec_.result with
      | Quarantined d -> Some (rec_.cell.id, d)
      | _ -> None)
    r.records

let exit_code r = if r.quarantined > 0 then 2 else 0

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let report_json r =
  (* Deterministic: no wall-clock, no replay/solve counts, no paths. *)
  let b = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"atlas\":\"v1\"";
  add ",\"grid\":\"%s\"" (json_escape (Grid.to_string r.grid));
  add ",\"order\":\"%s\",\"degree\":%d,\"robust\":%b,\"full\":%b,\"exact\":%b"
    (order_name r.job.order) r.job.degree r.job.robust r.job.full r.job.exact;
  add ",\"bisect_steps\":%d,\"max_subdiv\":%d" r.job.bisect_steps r.job.max_subdiv;
  add ",\"cells_total\":%d,\"certified\":%d,\"subdivided\":%d,\"quarantined\":%d"
    (List.length r.records) r.certified r.subdivided r.quarantined;
  add ",\"certified_fraction\":%.6f" (certified_fraction r);
  add ",\"depth_histogram\":[%s]"
    (String.concat ","
       (List.map
          (fun (d, n) -> Printf.sprintf "{\"depth\":%d,\"cells\":%d}" d n)
          (depth_histogram r)));
  add ",\"cells\":[";
  List.iteri
    (fun i rec_ ->
      if i > 0 then add ",";
      add "{\"id\":\"%s\",\"depth\":%d,\"box\":{" (json_escape rec_.cell.id)
        rec_.cell.depth;
      List.iteri
        (fun j (ax, lo, hi) ->
          if j > 0 then add ",";
          add "\"%s\":[%.17g,%.17g]" (Pll.axis_name ax) lo hi)
        rec_.cell.box;
      add "}";
      (match rec_.result with
      | Certified { beta } -> add ",\"status\":\"certified\",\"beta\":%.17g" beta
      | Subdivided -> add ",\"status\":\"subdivided\""
      | Quarantined d ->
          add ",\"status\":\"quarantined\",\"diagnosis\":{\"kind\":\"%s\",\"detail\":\"%s\"}"
            (json_escape d.kind) (json_escape d.detail));
      add "}")
    r.records;
  add "]";
  add ",\"quarantine\":[%s]"
    (String.concat ","
       (List.map (fun (id, _) -> Printf.sprintf "\"%s\"" (json_escape id)) (quarantine_list r)));
  add "}";
  Buffer.contents b

let pp_summary ppf r =
  let open Format in
  fprintf ppf "@[<v>certification atlas: %s order, degree %d, grid %s%s@,"
    (order_name r.job.order) r.job.degree (Grid.to_string r.grid)
    (if r.job.robust then " (robust: whole-box cells)" else " (cell midpoints)");
  fprintf ppf "cells: %d recorded | %d certified, %d subdivided, %d quarantined@,"
    (List.length r.records) r.certified r.subdivided r.quarantined;
  fprintf ppf "certified fraction (leaves): %.1f%%@," (100.0 *. certified_fraction r);
  fprintf ppf "subdivision depth histogram: %s@,"
    (String.concat ", "
       (List.map (fun (d, n) -> Printf.sprintf "depth %d: %d" d n) (depth_histogram r)));
  let solves = List.fold_left (fun acc x -> acc + x.solves) 0 r.records in
  let attempt_s = List.fold_left (fun acc x -> acc +. x.attempt_s) 0.0 r.records in
  fprintf ppf "work: %d solve(s), %.1fs attempt time, %d cell(s) replayed from ledger@,"
    solves attempt_s r.replayed_cells;
  (match quarantine_list r with
  | [] -> fprintf ppf "quarantine: empty@,"
  | q ->
      fprintf ppf "quarantine:@,";
      List.iter
        (fun (id, d) -> fprintf ppf "  %s: %s (%s)@," id d.kind d.detail)
        q);
  fprintf ppf "wall time: %.1fs@]" r.wall_s

(* ----------------------------------------------------------------- *)
(* Ledger *)

module Ledger = struct
  type entry = {
    id : string;
    depth : int;
    result : cell_result;
    solves : int;
    attempts : int;
    attempt_s : float;
  }

  let magic = "pll-atlas-ledger v1"
  let path dir = Filename.concat dir "ledger.log"

  let append_line file line =
    let fd = Unix.openfile file [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let payload =
          if (Unix.fstat fd).Unix.st_size = 0 then magic ^ "\n" ^ line else line
        in
        let b = Bytes.of_string payload in
        let len = Bytes.length b in
        let rec wr off = if off < len then wr (off + Unix.write fd b off (len - off)) in
        wr 0;
        Unix.fsync fd)

  let status_str = function
    | Certified _ -> "certified"
    | Subdivided -> "subdivided"
    | Quarantined _ -> "quarantined"

  let entry_line (e : entry) =
    let beta = match e.result with Certified { beta } -> beta | _ -> 0.0 in
    let kind, detail =
      match e.result with Quarantined d -> (d.kind, d.detail) | _ -> ("-", "")
    in
    (* %h floats round-trip exactly through float_of_string. *)
    Printf.sprintf "done %s %d %s %h %d %d %h %s %s\n" e.id e.depth
      (status_str e.result) beta e.solves e.attempts e.attempt_s kind detail

  let append dir e = append_line (path dir) (entry_line e)
  let mark_start dir id = append_line (path dir) (Printf.sprintf "start %s\n" id)

  let parse_done line =
    match String.split_on_char ' ' line with
    | "done" :: id :: depth :: status :: beta :: solves :: attempts :: attempt_s :: rest
      -> (
        let kind, detail =
          match rest with
          | [] -> ("-", "")
          | k :: d -> (k, String.concat " " d)
        in
        match
          ( int_of_string_opt depth,
            float_of_string_opt beta,
            int_of_string_opt solves,
            int_of_string_opt attempts,
            float_of_string_opt attempt_s )
        with
        | Some depth, Some beta, Some solves, Some attempts, Some attempt_s -> (
            let mk result = Ok { id; depth; result; solves; attempts; attempt_s } in
            match status with
            | "certified" -> mk (Certified { beta })
            | "subdivided" -> mk Subdivided
            | "quarantined" -> mk (Quarantined { kind; detail })
            | s -> Error (Printf.sprintf "unknown cell status %S" s))
        | _ -> Error "unparseable numeric field")
    | _ -> Error "malformed done line"

  let read dir =
    let file = path dir in
    if not (Sys.file_exists file) then ([], [])
    else begin
      let ic = open_in file in
      let entries = Hashtbl.create 64 in
      let order = ref [] in
      let diags = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           if
             line = "" || line = magic
             || Fault.starts ~p:"start " line
             || Fault.starts ~p:"run " line
           then ()
           else
             match parse_done line with
             | Ok e ->
                 if not (Hashtbl.mem entries e.id) then order := e.id :: !order;
                 Hashtbl.replace entries e.id e
             | Error why ->
                 diags :=
                   Printf.sprintf "ledger line %d: %s (%S)" !lineno why line :: !diags
         done
       with End_of_file -> ());
      close_in ic;
      let es = List.rev_map (fun id -> Hashtbl.find entries id) !order in
      (es, List.rev !diags)
    end
end

(* ----------------------------------------------------------------- *)
(* Per-cell certification (runs inside pool workers) *)

(* Marshal-safe result a worker sends back to the orchestrator. *)
type probe = {
  p_ok : bool;
  p_beta : float;
  p_kind : string;  (* deterministic diagnosis kind when not ok *)
  p_detail : string;  (* deterministic short detail *)
  p_full : string;  (* full JSON journal (may carry timings) *)
  p_solves : int;
  p_attempts : int;
  p_attempt_s : float;
}

let probe_fail ?(full = "") ~kind ~detail () =
  {
    p_ok = false;
    p_beta = 0.0;
    p_kind = kind;
    p_detail = detail;
    p_full = (if full = "" then Printf.sprintf "{\"error\":\"%s\"}" (json_escape detail) else full);
    p_solves = 0;
    p_attempts = 0;
    p_attempt_s = 0.0;
  }

let build_raw (job : job) (c : cell) =
  let base = match job.order with Pll.Third -> Pll.table1_third | Pll.Fourth -> Pll.table1_fourth in
  List.fold_left
    (fun acc (ax, lo, hi) ->
      Result.bind acc (fun raw ->
          if job.robust then Pll.set_axis_relative raw ax ~lo ~hi
          else
            let m = 0.5 *. (lo +. hi) in
            Pll.set_axis_relative raw ax ~lo:m ~hi:m))
    (Ok base) c.box

(* Classify a failed cell from the policy's journal. Deterministic: only
   labels and statuses, never timings or raw error strings. *)
let classify policy =
  if Resilient.out_of_time policy then ("budget-exhausted", "per-cell budget exhausted")
  else
    let fails = Resilient.failures policy in
    if fails = [] then
      (* The certificate search journals every failure it escalates, so an
         error with a clean journal is the level maximization finding no
         positive certified level. *)
      ("level-collapse", "certificate found but no positive level certifies")
    else
    let label =
      match List.rev fails with
      | [] -> "certificate search"
      | d :: _ -> d.Resilient.label
    in
    let infeasible =
      List.exists
        (fun (d : Resilient.diagnosis) ->
          List.exists
            (fun (a : Resilient.attempt) ->
              match a.Resilient.status with
              | Sdp.Primal_infeasible | Sdp.Dual_infeasible -> true
              | _ -> false)
            d.Resilient.attempts)
        fails
    in
    if infeasible then ("infeasible", "conclusively infeasible at " ^ label)
    else ("solver-failure", "solver failed at " ^ label)

let with_budget policy (p : probe) =
  let b = Resilient.consumed policy in
  {
    p with
    p_solves = b.Resilient.solves;
    p_attempts = b.Resilient.attempts;
    p_attempt_s = b.Resilient.attempt_s;
  }

let certify_cell ~ctx ~faults (job : job) (c : cell) =
  if Fault.fail_cell faults c.id then
    probe_fail ~kind:"injected" ~detail:"fail-cell fault injected" ()
  else
    match build_raw job c with
    | Error e -> probe_fail ~kind:"bad-cell" ~detail:e ()
    | Ok raw -> (
        let s = Pll.scale raw in
        let policy =
          Resilient.make
            ~faults:(Fault.resilient_plan faults c.id)
            ?pipeline_deadline_s:job.cell_budget_s ~supervise:ctx ()
        in
        let base = Certificates.default_config s.Pll.order in
        let cfg =
          {
            base with
            Certificates.degree = job.degree;
            robust_vertices = job.robust;
            resilience = policy;
          }
        in
        let fail ~kind ~detail =
          with_budget policy
            (probe_fail ~full:(Resilient.report_json policy) ~kind ~detail ())
        in
        let classified () =
          let kind, detail = classify policy in
          fail ~kind ~detail
        in
        let certified beta =
          with_budget policy
            {
              p_ok = true;
              p_beta = beta;
              p_kind = "";
              p_detail = "";
              p_full = "";
              p_solves = 0;
              p_attempts = 0;
              p_attempt_s = 0.0;
            }
        in
        (* Exact re-validation gate: a certified cell only counts when the
           exact kernel re-proves it; the artifact lands in artifacts/ under
           a per-cell name (check_cert replays it). The validation solves
           run without the supervisor so their solutions stay in-process. *)
        let exact_gate cert beta =
          if not job.exact then certified beta
          else
            let cert' =
              {
                cert with
                Certificates.cfg =
                  {
                    cert.Certificates.cfg with
                    Certificates.resilience = Resilient.with_supervisor policy None;
                  };
              }
            in
            match Certificates.validate_exactly s cert' with
            | Ok ev when ev.Certificates.all_proven ->
                ignore
                  (Supervise.save_artifact ctx
                     ~name:(Printf.sprintf "cell-%s.artifact" c.id)
                     (Exact.Artifact.write ev.Certificates.artifact));
                certified beta
            | Ok ev ->
                let failed =
                  List.filter_map
                    (fun (name, v) ->
                      match v with Exact.Check.Proven _ -> None | _ -> Some name)
                    ev.Certificates.verdicts
                in
                fail ~kind:"exact-unproven"
                  ~detail:("exact kernel could not prove: " ^ String.concat ", " failed)
            | Error _ ->
                fail ~kind:"exact-unproven" ~detail:"exact re-validation solve failed"
        in
        try
          if job.full then
            match
              Pll_core.Inevitability.verify ~cert_config:cfg ~resilience:policy s
            with
            | Ok report when report.Pll_core.Inevitability.verified ->
                let inv = report.Pll_core.Inevitability.invariant in
                exact_gate inv.Certificates.cert inv.Certificates.beta
            | Ok _ ->
                if Resilient.failures policy <> [] || Resilient.out_of_time policy then
                  classified ()
                else
                  fail ~kind:"not-established"
                    ~detail:"pipeline completed but P1 and P2 not both established"
            | Error _ -> classified ()
          else
            match
              Certificates.attractive_invariant ~config:cfg
                ~bisect_steps:job.bisect_steps s
            with
            | Ok ai when ai.Certificates.beta > 0.0 ->
                exact_gate ai.Certificates.cert ai.Certificates.beta
            | Ok _ ->
                fail ~kind:"level-collapse"
                  ~detail:"certificate found but no positive level certifies"
            | Error _ -> classified ()
        with
        | Supervise.Interrupted as i -> raise i
        | e -> fail ~kind:"crash" ~detail:(Printexc.to_string e))

(* ----------------------------------------------------------------- *)
(* Orchestration *)

let write_file path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  output_string oc content;
  close_out oc;
  Sys.rename tmp path

let mkdir_p dir = try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let rec take n = function
  | [] -> ([], [])
  | l when n = 0 -> ([], l)
  | x :: rest ->
      let a, b = take (n - 1) rest in
      (x :: a, b)

let validate_grid (job : job) (grid : Grid.t) =
  let base = match job.order with Pll.Third -> Pll.table1_third | Pll.Fourth -> Pll.table1_fourth in
  let bad =
    List.filter_map
      (fun (r : Grid.range) ->
        match Pll.axis_interval base r.axis with
        | Some _ -> None
        | None -> Some (Pll.axis_name r.axis))
      grid
  in
  if grid = [] then Error "empty grid"
  else if bad <> [] then
    Error
      (Printf.sprintf "grid axes %s do not exist at %s order"
         (String.concat ", " bad) (order_name job.order))
  else Ok ()

let run ~ctx ?(faults = Fault.none) ~resume (job : job) (grid : Grid.t) =
  match validate_grid job grid with
  | Error e -> Error e
  | Ok () -> (
      let t0 = Unix.gettimeofday () in
      let run_dir = Supervise.run_dir ctx in
      let ledger, ledger_diags =
        match run_dir with Some d -> Ledger.read d | None -> ([], [])
      in
      List.iter (fun d -> Log.warn (fun m -> m "%s" d)) ledger_diags;
      if (not resume) && ledger <> [] then
        Error
          (Printf.sprintf
             "run directory already holds an atlas ledger with %d cell(s); pass \
              --resume to continue it, or use a fresh --run-dir"
             (List.length ledger))
      else begin
        let on_record = Hashtbl.create 64 in
        List.iter (fun (e : Ledger.entry) -> Hashtbl.replace on_record e.Ledger.id e) ledger;
        let records = ref [] in
        let push cell result ~replayed ~solves ~attempts ~attempt_s next =
          records := { cell; result; replayed; solves; attempts; attempt_s } :: !records;
          match result with
          | Subdivided -> (
              match split cell with
              | Some (a, b) -> next := b :: a :: !next
              | None ->
                  (* A ledger claims a subdivision this geometry cannot
                     perform — record the inconsistency, keep sweeping. *)
                  records :=
                    {
                      cell;
                      result =
                        Quarantined
                          {
                            kind = "ledger-inconsistent";
                            detail = "ledgered as subdivided but cell is a point";
                          };
                      replayed;
                      solves;
                      attempts;
                      attempt_s;
                    }
                  :: List.tl !records)
          | _ -> ()
        in
        let jobs_n = max 1 (Supervise.jobs ctx) in
        let rec waves frontier =
          if frontier <> [] then begin
            let frontier = List.sort (fun a b -> compare a.id b.id) frontier in
            let next = ref [] in
            let replayed_cells, fresh =
              List.partition (fun c -> Hashtbl.mem on_record c.id) frontier
            in
            List.iter
              (fun c ->
                let e : Ledger.entry = Hashtbl.find on_record c.id in
                push c e.Ledger.result ~replayed:true ~solves:e.Ledger.solves
                  ~attempts:e.Ledger.attempts ~attempt_s:e.Ledger.attempt_s next)
              replayed_cells;
            if replayed_cells <> [] then
              Log.info (fun m ->
                  m "replayed %d cell(s) from the ledger" (List.length replayed_cells));
            let rec chunks = function
              | [] -> ()
              | todo ->
                  let chunk, rest = take jobs_n todo in
                  Option.iter
                    (fun d -> List.iter (fun c -> Ledger.mark_start d c.id) chunk)
                    run_dir;
                  let results =
                    Supervise.Pool.map ctx
                      ~f:(fun _ c -> certify_cell ~ctx ~faults job c)
                      chunk
                  in
                  List.iter2
                    (fun c r ->
                      let p =
                        match r with
                        | Ok p -> p
                        | Error e ->
                            probe_fail ~kind:"crash" ~detail:("cell worker failed: " ^ e) ()
                      in
                      let result =
                        if p.p_ok then Certified { beta = p.p_beta }
                        else if
                          c.depth < job.max_subdiv && p.p_kind <> "bad-cell"
                          && split c <> None
                        then Subdivided
                        else Quarantined { kind = p.p_kind; detail = p.p_detail }
                      in
                      (match (run_dir, result) with
                      | Some d, Quarantined _ ->
                          let qdir = Filename.concat d "quarantine" in
                          mkdir_p qdir;
                          write_file
                            (Filename.concat qdir
                               (Printf.sprintf "%s.json"
                                  (String.map (fun ch -> if ch = '/' then '_' else ch) c.id)))
                            (Printf.sprintf
                               "{\"cell\":\"%s\",\"kind\":\"%s\",\"detail\":\"%s\",\"journal\":%s}\n"
                               (json_escape c.id) (json_escape p.p_kind)
                               (json_escape p.p_detail)
                               (if p.p_full = "" then "null" else p.p_full))
                      | _ -> ());
                      let entry : Ledger.entry =
                        {
                          Ledger.id = c.id;
                          depth = c.depth;
                          result;
                          solves = p.p_solves;
                          attempts = p.p_attempts;
                          attempt_s = p.p_attempt_s;
                        }
                      in
                      Option.iter (fun d -> Ledger.append d entry) run_dir;
                      push c result ~replayed:false ~solves:p.p_solves
                        ~attempts:p.p_attempts ~attempt_s:p.p_attempt_s next;
                      Log.info (fun m ->
                          m "cell %s: %s" c.id (Ledger.status_str result));
                      if Fault.kill_after faults c.id then begin
                        (* The chaos fault: die as if SIGKILLed, right after
                           this cell's completion hit the ledger. *)
                        Log.warn (fun m ->
                            m "fault kill@%s: orchestrator exiting hard" c.id);
                        Unix._exit 137
                      end)
                    chunk results;
                  chunks rest
            in
            chunks fresh;
            waves !next
          end
        in
        waves (grid_cells grid);
        let records = List.sort (fun a b -> compare a.cell.id b.cell.id) !records in
        let count f = List.length (List.filter f records) in
        let report =
          {
            job;
            grid;
            records;
            certified = count (fun r -> match r.result with Certified _ -> true | _ -> false);
            subdivided = count (fun r -> r.result = Subdivided);
            quarantined =
              count (fun r -> match r.result with Quarantined _ -> true | _ -> false);
            replayed_cells = count (fun r -> r.replayed);
            wall_s = Unix.gettimeofday () -. t0;
          }
        in
        Option.iter
          (fun d ->
            write_file (Filename.concat d "atlas.json") (report_json report ^ "\n");
            write_file
              (Filename.concat d "summary.txt")
              (Format.asprintf "%a@." pp_summary report))
          run_dir;
        Ok report
      end)
