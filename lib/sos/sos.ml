module Dvar = Dvar
module Lexpr = Lexpr
module Ppoly = Ppoly
module Monomial = Poly.Monomial
module Mat = Linalg.Mat

let src = Logs.Src.create "sos" ~doc:"SOS programming layer"

module Log = (val Logs.src_log src : Logs.LOG)

type gram_block = { basis : Monomial.t array }

type t = {
  nvars : int;
  mutable n_free : int;
  mutable blocks : gram_block list; (* reversed *)
  mutable n_blocks : int;
  mutable eqs : Lexpr.t list; (* each must equal zero; reversed *)
  mutable n_eqs : int;
  mutable objective : Lexpr.t;
}

let create ~nvars =
  {
    nvars;
    n_free = 0;
    blocks = [];
    n_blocks = 0;
    eqs = [];
    n_eqs = 0;
    objective = Lexpr.zero;
  }

let nvars p = p.nvars

let fresh_free p =
  let k = p.n_free in
  p.n_free <- k + 1;
  Lexpr.var (Dvar.Free k)

let fresh_poly_basis p basis =
  Ppoly.of_terms p.nvars (List.map (fun m -> (m, fresh_free p)) basis)

let fresh_poly ?(min_deg = 0) p ~deg =
  let basis =
    List.filter
      (fun m -> Monomial.degree m >= min_deg)
      (Monomial.all_upto p.nvars deg)
  in
  fresh_poly_basis p basis

(* Create a Gram block over [basis] and return z' G z as a Ppoly. *)
let fresh_gram p basis =
  let blk = p.n_blocks in
  p.n_blocks <- blk + 1;
  p.blocks <- { basis } :: p.blocks;
  let n = Array.length basis in
  let terms = ref [] in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let m = Monomial.mul basis.(i) basis.(j) in
      let c = if i = j then 1.0 else 2.0 in
      terms := (m, Lexpr.of_terms 0.0 [ (Dvar.Gram (blk, i, j), c) ]) :: !terms
    done
  done;
  Ppoly.of_terms p.nvars (List.rev !terms)

(* [vars] masks which state variables may occur in the basis; restricting
   to the variables that actually appear in an expression removes large
   null spaces from the SDP (Gram rows that no equality constrains). *)
let sos_basis ?vars p ~lo ~hi =
  let allowed m =
    match vars with
    | None -> true
    | Some mask ->
        let ok = ref true in
        Array.iteri (fun i e -> if e > 0 && not mask.(i) then ok := false) m;
        !ok
  in
  Array.of_list
    (List.filter
       (fun m -> Monomial.degree m >= lo && allowed m)
       (Monomial.all_upto p.nvars hi))

let fresh_sos ?(min_deg = 0) ?vars p ~deg =
  let hi = (deg + 1) / 2 in
  let lo = (min_deg + 1) / 2 in
  fresh_gram p (sos_basis ?vars p ~lo ~hi)

let add_zero p pp =
  List.iter
    (fun (_, e) ->
      p.eqs <- e :: p.eqs;
      p.n_eqs <- p.n_eqs + 1)
    (Ppoly.terms pp)

let add_eq p a b = add_zero p (Ppoly.sub a b)

let vars_of_ppoly p pp =
  let mask = Array.make p.nvars false in
  List.iter
    (fun (m, _) -> Array.iteri (fun i e -> if e > 0 then mask.(i) <- true) m)
    (Ppoly.terms pp);
  mask

let vars_of_poly p q mask =
  ignore p;
  List.iter
    (fun (m, _) -> Array.iteri (fun i e -> if e > 0 then mask.(i) <- true) m)
    (Poly.terms q)

(* Diagonal-consistency pruning (a cheap Newton-polytope reduction, as in
   SOSTOOLS): a basis monomial z can be dropped when its square 2z is not
   in the support of p and cannot arise as a cross product zi*zj of two
   other (distinct) basis monomials — the PSD Gram then forces the whole
   z-row to zero, so z only adds dimension. Iterate to a fixed point. *)
let prune_basis pp basis =
  let module MSet = Set.Make (struct
    type t = Monomial.t

    let compare = Monomial.compare
  end) in
  let support =
    List.fold_left (fun acc (m, _) -> MSet.add m acc) MSet.empty (Ppoly.terms pp)
  in
  let basis = ref (Array.to_list basis) in
  let changed = ref true in
  while !changed do
    changed := false;
    let bset = MSet.of_list !basis in
    let keep z =
      let z2 = Monomial.mul z z in
      MSet.mem z2 support
      || List.exists
           (fun zi ->
             (not (Monomial.equal zi z))
             &&
             match Monomial.divide z2 zi with
             | Some zj -> (not (Monomial.equal zj zi)) && MSet.mem zj bset
             | None -> false)
           !basis
    in
    let kept = List.filter keep !basis in
    if List.length kept <> List.length !basis then begin
      basis := kept;
      changed := true
    end
  done;
  Array.of_list !basis

let add_sos p pp =
  let dmin = Ppoly.min_degree pp in
  let dmax = Ppoly.max_degree pp in
  if dmax < 0 then () (* identically zero: trivially SOS *)
  else begin
    let lo = if dmin = max_int then 0 else (dmin + 1) / 2 in
    let hi = (dmax + 1) / 2 in
    let vars = vars_of_ppoly p pp in
    let basis = prune_basis pp (sos_basis ~vars p ~lo ~hi) in
    if Array.length basis = 0 then
      (* Nothing can be squared: p itself must vanish identically. *)
      add_zero p pp
    else begin
      let gram = fresh_gram p basis in
      add_zero p (Ppoly.sub pp gram)
    end
  end

let even_ceil d = if d mod 2 = 0 then d else d + 1

let add_nonneg_on ?mult_deg ?(equalities = []) p ~domain pp =
  let expr_deg = even_ceil (Int.max 0 (Ppoly.max_degree pp)) in
  (* SOS multipliers have even degree; round the complement up so that
     odd-degree constraints (e.g. linear slab faces) still get a useful
     multiplier — the Gram basis of the enclosing [add_sos] grows to
     absorb the extra degree. Free (equality) multipliers λ·h can have
     any parity, so take the exact complement. *)
  let sos_deg dg =
    match mult_deg with Some d -> d | None -> even_ceil (Int.max 0 (expr_deg - dg))
  in
  let free_deg dh =
    match mult_deg with Some d -> d | None -> Int.max 0 (expr_deg - dh)
  in
  (* Domain data is normalized to unit coefficient scale — the S-procedure
     is invariant under positive scaling of each g, and wildly mixed
     scales (e.g. composed box constraints vs. tiny margins) otherwise
     wreck the SDP conditioning. *)
  let normalize g =
    let c = Poly.max_coeff g in
    if c > 0.0 then Poly.scale (1.0 /. c) g else g
  in
  let domain = List.map normalize domain in
  let equalities = List.map normalize equalities in
  (* Multipliers range over the variables occurring in the expression or
     the domain — not the problem's full arity. *)
  let vars = vars_of_ppoly p pp in
  List.iter (fun g -> vars_of_poly p g vars) domain;
  List.iter (fun h -> vars_of_poly p h vars) equalities;
  let expr =
    List.fold_left
      (fun acc g ->
        let sigma = fresh_sos p ~vars ~deg:(sos_deg (Int.max 0 (Poly.degree g))) in
        Ppoly.sub acc (Ppoly.mul_poly g sigma))
      pp domain
  in
  let expr =
    List.fold_left
      (fun acc h ->
        let basis =
          List.filter
            (fun m ->
              let ok = ref true in
              Array.iteri (fun i e -> if e > 0 && not vars.(i) then ok := false) m;
              !ok)
            (Monomial.all_upto p.nvars (free_deg (Int.max 0 (Poly.degree h))))
        in
        let lambda = fresh_poly_basis p basis in
        Ppoly.sub acc (Ppoly.mul_poly h lambda))
      expr equalities
  in
  add_sos p expr

let add_set_inclusion ?mult_deg p ~outer p1 =
  (* {p1 <= 0} ⊆ {outer <= 0}  ⟸  -outer - σ·(-p1) ∈ Σ, σ ∈ Σ *)
  let d_out = Int.max 0 (Ppoly.max_degree outer) in
  let d1 = Int.max 0 (Poly.degree p1) in
  let d = match mult_deg with Some d -> d | None -> even_ceil (Int.max 0 (even_ceil d_out - d1)) in
  let sigma = fresh_sos p ~deg:d in
  add_sos p (Ppoly.sub (Ppoly.neg outer) (Ppoly.mul_poly (Poly.neg p1) sigma))

let maximize p e = p.objective <- e

let n_equalities p = p.n_eqs

let n_gram_blocks p = p.n_blocks

type solution = {
  sdp : Sdp.solution;
  assign : Dvar.t -> float;
  objective : float;
  feasible : bool;
  certified : bool;
  min_gram_eig : float;
  max_eq_residual : float;
}

let to_sdp p =
  let blocks = Array.of_list (List.rev p.blocks) in
  let block_dims = Array.map (fun b -> Array.length b.basis) blocks in
  let translate_terms e =
    let lhs = ref [] and free = ref [] in
    List.iter
      (fun (v, c) ->
        match v with
        | Dvar.Free k -> free := (k, c) :: !free
        | Dvar.Gram (b, i, j) ->
            let value = if i = j then c else c /. 2.0 in
            lhs := { Sdp.blk = b; row = i; col = j; value } :: !lhs)
      (Lexpr.terms e);
    (!lhs, !free)
  in
  let constraints =
    List.rev_map
      (fun e ->
        let lhs, free = translate_terms e in
        { Sdp.lhs; free; rhs = -.(Lexpr.constant e) })
      p.eqs
    |> Array.of_list
  in
  (* SDP minimizes; we maximize the objective. *)
  let obj = Lexpr.neg p.objective in
  let obj_blocks, obj_free = translate_terms obj in
  ( blocks,
    {
      Sdp.block_dims;
      n_free = p.n_free;
      constraints;
      obj_blocks;
      obj_free;
    } )

module Options = struct
  type solver_fn = ?params:Sdp.params -> Sdp.problem -> Sdp.solution

  type t = {
    solver : solver_fn option;
    params : Sdp.params option;
    psd_tol : float;
    eq_tol : float;
    session : Sdp.Session.t option;
    hint : Sdp.warm_start option;
  }

  let default =
    {
      solver = None;
      params = None;
      psd_tol = 1e-7;
      eq_tol = 1e-5;
      session = None;
      hint = None;
    }

  let make ?solver ?params ?(psd_tol = 1e-7) ?(eq_tol = 1e-5) ?session ?hint () =
    { solver; params; psd_tol; eq_tol; session; hint }
end

let solve ?(options = Options.default) p =
  let psd_tol = options.Options.psd_tol and eq_tol = options.Options.eq_tol in
  (* Inconsistent constant equalities make the problem trivially infeasible. *)
  let trivially_infeasible =
    List.exists
      (fun e -> Lexpr.is_const e && Float.abs (Lexpr.constant e) > 1e-12)
      p.eqs
  in
  let blocks, sdp_prob = to_sdp p in
  Log.debug (fun k ->
      k "SOS -> SDP: %d equalities, %d gram blocks (dims %s), %d free vars" p.n_eqs
        p.n_blocks
        (String.concat ","
           (Array.to_list (Array.map string_of_int sdp_prob.Sdp.block_dims)))
        p.n_free);
  let sdp =
    (* Dispatch precedence: an injected solver (the supervision boundary)
       owns the whole numeric solve — it receives session and hint
       through its own closure, not from here; otherwise a session, when
       present, adds warm-start discipline around [Sdp.solve]. *)
    match (options.Options.solver, options.Options.session) with
    | Some solve, _ -> solve ?params:options.Options.params sdp_prob
    | None, Some sess ->
        Sdp.Session.solve sess ?hint:options.Options.hint
          ?params:options.Options.params sdp_prob
    | None, None ->
        Sdp.solve ?params:options.Options.params ?warm:options.Options.hint sdp_prob
  in
  let assign = function
    | Dvar.Free k -> sdp.Sdp.f.(k)
    | Dvar.Gram (b, i, j) -> Mat.get sdp.Sdp.x_blocks.(b) i j
  in
  let feasible =
    (not trivially_infeasible)
    && (sdp.Sdp.status = Sdp.Optimal || sdp.Sdp.status = Sdp.Near_optimal)
  in
  let min_gram_eig =
    Array.fold_left (fun acc x -> Float.min acc (Mat.min_eig x)) infinity
      sdp.Sdp.x_blocks
  in
  let min_gram_eig = if Array.length sdp.Sdp.x_blocks = 0 then 0.0 else min_gram_eig in
  (* Residuals are judged relative to each constraint's coefficient scale:
     certificate searches at higher degree produce O(10²)-size data, and an
     absolute tolerance would spuriously reject converged solutions. *)
  let max_eq_residual =
    List.fold_left
      (fun acc e ->
        Float.max acc (Float.abs (Lexpr.eval assign e) /. (1.0 +. Lexpr.max_coeff e)))
      0.0 p.eqs
  in
  let certified =
    feasible && min_gram_eig >= -.psd_tol && max_eq_residual <= eq_tol
  in
  ignore blocks;
  {
    sdp;
    assign;
    objective = Lexpr.eval assign p.objective;
    feasible;
    certified;
    min_gram_eig;
    max_eq_residual;
  }

(* Deprecated scattered-optional-arg surface, kept so external callers
   keep compiling across the Options migration. *)
let solve_legacy ?solver ?params ?psd_tol ?eq_tol p =
  solve ~options:(Options.make ?solver ?params ?psd_tol ?eq_tol ()) p

let value sol pp = Ppoly.value sol.assign pp

let gram_blocks sol = Array.to_list sol.sdp.Sdp.x_blocks

let gram_bases p =
  Array.map (fun b -> b.basis) (Array.of_list (List.rev p.blocks))

let sos_witness p sol b =
  let blocks = Array.of_list (List.rev p.blocks) in
  if b < 0 || b >= Array.length blocks then invalid_arg "Sos.sos_witness";
  let basis = blocks.(b).basis in
  let g = sol.sdp.Sdp.x_blocks.(b) in
  let w, v = Mat.sym_eig g in
  let n = Array.length basis in
  let out = ref [] in
  for k = n - 1 downto 0 do
    if w.(k) > 1e-12 then begin
      let s = sqrt w.(k) in
      let coeffs = Array.init n (fun i -> s *. Mat.get v i k) in
      out := Poly.from_basis (Array.to_list basis) coeffs p.nvars :: !out
    end
  done;
  !out

let sdp_problem p = snd (to_sdp p)
