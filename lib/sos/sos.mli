(** Sum-of-squares programming on top of the {!Sdp} interior-point solver.

    This is the OCaml replacement for the MATLAB/YALMIP layer the paper
    uses: it turns polynomial positivity constraints into semidefinite
    feasibility/optimization problems via the Gram-matrix (Parrilo)
    relaxation, with S-procedure helpers for semialgebraic domain
    restrictions (the paper's constraints (a)–(c), the level-set
    inclusion Lemma 1, the advection program of Eq. 6 and escape
    certificates are all built from these primitives).

    Typical usage:
    {[
      let prob = Sos.create ~nvars:2 in
      let v = Sos.fresh_poly prob ~deg:4 ~min_deg:2 in
      Sos.add_sos prob Ppoly.(sub v (of_poly (Poly.scale 1e-3 norm2)));
      Sos.add_nonneg_on prob ~domain:[ g ] (Ppoly.neg (Ppoly.lie_derivative v f));
      match Sos.solve prob with
      | { certified = true; _ } as sol -> Sos.value sol v
      | _ -> ...
    ]} *)

module Dvar = Dvar
module Lexpr = Lexpr
module Ppoly = Ppoly

type t
(** A mutable SOS problem under construction. *)

val create : nvars:int -> t
(** Fresh problem over [nvars] state variables. *)

val nvars : t -> int

val fresh_free : t -> Lexpr.t
(** A new free scalar decision variable, as an expression. *)

val fresh_poly : ?min_deg:int -> t -> deg:int -> Ppoly.t
(** A fully parametric polynomial with one free coefficient per monomial
    of total degree in [[min_deg, deg]] ([min_deg] defaults to 0). *)

val fresh_poly_basis : t -> Poly.Monomial.t list -> Ppoly.t
(** Parametric polynomial over an explicit monomial basis. *)

val fresh_sos : ?min_deg:int -> ?vars:bool array -> t -> deg:int -> Ppoly.t
(** A new SOS-constrained polynomial of degree at most [deg] (rounded up
    to even), represented by a PSD Gram matrix over the monomials of
    degree in [[ceil(min_deg/2), deg/2]]. [vars] restricts which state
    variables may occur. Guaranteed SOS by construction. *)

val add_zero : t -> Ppoly.t -> unit
(** Constrain a parametric polynomial to be identically zero
    (coefficientwise). *)

val add_eq : t -> Ppoly.t -> Ppoly.t -> unit
(** [add_eq p q] constrains [p = q] as polynomials. *)

val add_sos : t -> Ppoly.t -> unit
(** Constrain the parametric polynomial to be a sum of squares: attaches
    a fresh Gram block with an automatically chosen monomial basis and
    matches coefficients. *)

val add_nonneg_on :
  ?mult_deg:int -> ?equalities:Poly.t list -> t -> domain:Poly.t list -> Ppoly.t -> unit
(** [add_nonneg_on prob ~domain:gs p] enforces [p(x) >= 0] for all [x] in
    the semialgebraic set [{x | g(x) >= 0 for all g in gs}] via the
    S-procedure: [p - Σ σ_g · g ∈ Σ] with fresh SOS multipliers [σ_g].
    [equalities] adds constraints [h(x) = 0] to the set, with free
    (sign-unrestricted) polynomial multipliers — used for switching
    surfaces such as [Δφ = 0]. [mult_deg] overrides the automatic
    multiplier degree. An empty [domain] yields a plain SOS
    constraint. *)

val add_set_inclusion : ?mult_deg:int -> t -> outer:Ppoly.t -> Poly.t -> unit
(** Lemma 1: [add_set_inclusion prob ~outer p1] enforces
    [{p1 <= 0} ⊆ {outer <= 0}] by [−outer − σ·(−p1) ∈ Σ] with a fresh
    SOS multiplier [σ]. [p1] must be constant-coefficient; [outer] may
    be parametric. *)

val maximize : t -> Lexpr.t -> unit
(** Set the objective (default: pure feasibility). *)

val n_equalities : t -> int
(** Number of scalar equality constraints accumulated so far. *)

val n_gram_blocks : t -> int
(** Number of Gram (PSD) blocks so far. *)

type solution = {
  sdp : Sdp.solution;  (** the raw SDP solution *)
  assign : Dvar.t -> float;  (** decision-variable valuation *)
  objective : float;  (** value of the objective (0 for feasibility) *)
  feasible : bool;  (** solver reported (near-)optimal convergence *)
  certified : bool;
      (** [feasible] and the a posteriori Gram PSD / residual checks
          passed *)
  min_gram_eig : float;  (** worst Gram-block minimum eigenvalue *)
  max_eq_residual : float;  (** worst equality-constraint violation *)
}

(** Everything that can vary about how a SOS problem is solved, in one
    record — the single point of configuration for {!solve} (replacing
    the scattered [?solver/?params/?psd_tol/?eq_tol] optional
    arguments). *)
module Options : sig
  type solver_fn = ?params:Sdp.params -> Sdp.problem -> Sdp.solution

  type t = {
    solver : solver_fn option;
        (** replaces the inner [Sdp.solve] call — the injection point
            through which {!Supervise} runs the numeric solve in an
            isolated worker process; the SOS-level reconstruction and
            certificate check still run in the caller. When set, it owns
            the whole numeric solve: [session]/[hint] below are ignored
            here and must be threaded through the solver's own closure. *)
    params : Sdp.params option;  (** interior-point parameters *)
    psd_tol : float;
        (** a posteriori Gram PSD tolerance for [certified]; default 1e-7 *)
    eq_tol : float;
        (** a posteriori equality-residual tolerance (relative to
            constraint scale); default 1e-5 *)
    session : Sdp.Session.t option;
        (** warm-start session wrapped around [Sdp.solve] when no
            [solver] is injected *)
    hint : Sdp.warm_start option;
        (** explicit warm-start capsule, overriding the session's
            remembered one when its structure matches *)
  }

  val default : t
  (** No injected solver, default params/tolerances, no session. *)

  val make :
    ?solver:solver_fn ->
    ?params:Sdp.params ->
    ?psd_tol:float ->
    ?eq_tol:float ->
    ?session:Sdp.Session.t ->
    ?hint:Sdp.warm_start ->
    unit ->
    t
end

val solve : ?options:Options.t -> t -> solution
(** Translate to an SDP, solve, and validate. All solver configuration
    lives in [options] (default {!Options.default}); see {!Options.t}
    for the dispatch precedence between an injected solver and a
    warm-start session. *)

val solve_legacy :
  ?solver:Options.solver_fn ->
  ?params:Sdp.params ->
  ?psd_tol:float ->
  ?eq_tol:float ->
  t ->
  solution
  [@@ocaml.deprecated "use Sos.solve ?options with Sos.Options.make"]
(** Pre-[Options] surface, equivalent to [solve ~options:(Options.make
    ?solver ?params ?psd_tol ?eq_tol ())]. New code should build an
    {!Options.t}. *)

val value : solution -> Ppoly.t -> Poly.t
(** Instantiate a parametric polynomial under the solution. *)

val gram_blocks : solution -> Linalg.Mat.t list
(** The PSD Gram blocks of the solution, in creation order. *)

val gram_bases : t -> Poly.Monomial.t array array
(** Monomial basis of each Gram block, in creation order — index-aligned
    with {!gram_blocks}. Together they let a caller reconstruct each SOS
    summand as [zᵀ G z] (e.g. to hand it to an exact certificate
    checker). *)

val sos_witness : t -> solution -> int -> Poly.t list
(** [sos_witness prob sol b] decomposes Gram block [b] into polynomials
    [p_i] with [Σ p_i² = zᵀ G z] (via eigen-decomposition of the Gram
    matrix, clipping negative eigenvalues at zero) — a human-checkable
    SOS witness. *)

val sdp_problem : t -> Sdp.problem
(** The SDP translation of the problem as it stands — the exact problem
    {!solve} would hand to {!Sdp.solve}. Pure: building it does not
    mutate [t], so it is safe to call before or between solves (used by
    the resilience layer to report failure sizes and by external
    cross-checking via {!Sdp.to_sdpa}). *)
