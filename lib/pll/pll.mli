(** Behavioural charge-pump PLL models (third and fourth order).

    The model follows Section 2.2 of the paper. A CP PLL consists of a
    phase-frequency detector (PFD), charge pump (CP), loop filter (LF)
    and voltage-controlled oscillator (VCO). The PFD is the non-linear
    element, modelled as a three-mode piecewise inclusion (Eq. 2):

    - mode 1 / {!off}: UP=0, DOWN=0 — pump current 0;
    - mode 2 / {!up}: UP=1, DOWN=0 — pump current in [+Ip⁻, +Ip⁺];
    - mode 3 / {!down}: UP=0, DOWN=1 — pump current in [−Ip⁺, −Ip⁻].

    Following Remark 1 of the paper, the state uses the phase difference
    [θ = (φ_ref − φ_vco)/2π] instead of the individual phases, which
    makes every jump map the identity.

    {2 Scaling}

    The raw Table-1 parameters span 15 orders of magnitude (pF vs MHz),
    which no interior-point solver survives. We non-dimensionalise:
    time by [τ = R·C2], voltages by a scale [v0] chosen so the plotted
    state ranges are O(1) (see DESIGN.md §6). The scaled third-order
    flow in mode [m] is

    {v
      ẇ1 = α (w2 − w1)              α = C2/C1
      ẇ2 = (w1 − w2) + ι_m          ι = Ip·R / v0
      θ̇  = −κ w2                    κ = R·C2·Kv·v0 / 2π
    v}

    and the fourth order adds a second RC stage [R2, C3] before the VCO:

    {v
      ẇ1 = α (w2 − w1)
      ẇ2 = (w1 − w2) + ρ (w3 − w2) + ι_m     ρ = R/R2
      ẇ3 = β (w2 − w3)                       β = R·C2/(R2·C3)
      θ̇  = −κ w3
    v}

    All coefficients are intervals induced by Table 1's parameter
    intervals. The equilibrium (phase lock: [f_vco = f_ref], zero pump
    activity) is the origin. *)

type order = Third | Fourth

(** Raw circuit parameters, physical units (Table 1 of the paper). *)
type raw = {
  order : order;
  c1 : Interval.t;  (** F *)
  c2 : Interval.t;  (** F *)
  c3 : Interval.t option;  (** F; fourth order only *)
  r : Interval.t;  (** Ω *)
  r2 : Interval.t option;  (** Ω; fourth order only *)
  f_ref : float;  (** reference frequency, Hz *)
  f_q : float;  (** VCO free-running frequency, Hz *)
  i_p : Interval.t;  (** charge-pump current, A *)
  k_v : Interval.t;  (** VCO gain, rad/s per volt *)
}

val table1_third : raw
(** Third-order column of Table 1. *)

val table1_fourth : raw
(** Fourth-order column of Table 1. *)

(** {1 Parameterized problem construction}

    The sweep driver ({!Atlas}) certifies lock ranges over boxes of
    circuit parameters. An {!axis} names one sweepable Table-1
    parameter; {!set_axis_relative} rebuilds a [raw] model with that
    parameter's interval replaced by a box given in {e relative} units —
    multiples of the Table-1 nominal (interval midpoint) — so grid specs
    are order-independent ("pump current from 0.8× to 1.2× nominal"). *)

type axis = Ip | R | C1 | C2 | C3 | R2 | Kv

val axes : axis list
(** All axes, in canonical order. *)

val axis_name : axis -> string
(** Lower-case spec name: [ip], [r], [c1], [c2], [c3], [r2], [kv]. *)

val axis_of_string : string -> (axis, string) result

val axis_interval : raw -> axis -> Interval.t option
(** The parameter interval an axis addresses, or [None] when the axis
    does not exist at this order ([C3]/[R2] on a third-order model). *)

val axis_nominal : raw -> axis -> float option
(** Midpoint of {!axis_interval} — the Table-1 nominal the relative
    units of {!set_axis_relative} are multiples of. *)

val set_axis_relative : raw -> axis -> lo:float -> hi:float -> (raw, string) result
(** [set_axis_relative raw a ~lo ~hi] replaces axis [a]'s interval with
    [[lo·m, hi·m]] where [m] is the Table-1 nominal of [a]. [Error] when
    the axis does not exist at this order, when [lo > hi], or when the
    factors are not strictly positive (a zero or negative circuit
    parameter has no physical meaning and breaks the scaling). *)

(** Non-dimensionalised model coefficients (intervals over the Table-1
    box) plus the verification domain bounds. *)
type scaled = {
  order : order;
  nvars : int;  (** 3 (w1,w2,θ) or 4 (w1,w2,w3,θ) *)
  alpha : Interval.t;
  rho : Interval.t;  (** 1 for third order *)
  beta : Interval.t;  (** 1 for third order *)
  iota : Interval.t;
  kappa : Interval.t;
  v0 : float;  (** volts per scaled voltage unit *)
  t0 : float;  (** seconds per scaled time unit *)
  theta_on : float;  (** |θ| at which the pump engages *)
  theta_max : float;  (** domain bound on |θ| *)
  w_max : float;  (** domain bound on each voltage *)
}

val scale : raw -> scaled
(** Non-dimensionalise; see module doc. *)

(** A single coefficient point inside the {!scaled} interval box. *)
type point = { alpha : float; rho : float; beta : float; iota : float; kappa : float }

val nominal : scaled -> point
(** Interval midpoints. *)

val vertices : scaled -> point list
(** Corner points of the coefficient box (for robust vertex checks: the
    flow is affine in the coefficients, so Lie-derivative conditions on
    the box reduce to its vertices). *)

(** {1 Mode structure} *)

val off : int
(** Mode 1 of the paper (UP=0, DOWN=0): index 0. *)

val up : int
(** Mode 2 (UP=1): index 1. *)

val down : int
(** Mode 3 (DOWN=1): index 2. *)

val n_modes : int

val mode_name : int -> string

val theta_index : scaled -> int
(** Index of the phase-difference state (last). *)

val vco_index : scaled -> int
(** Index of the voltage that drives the VCO (w2 for third order, w3 for
    fourth). *)

val flow : scaled -> point -> int -> Poly.t array
(** [flow s p m] is the polynomial vector field of mode [m] at
    coefficient point [p]. *)

val mode_domain : scaled -> int -> Poly.t list
(** Flow-set inequalities [g(x) >= 0] of a mode, including the
    verification box bounds [|w_i| <= w_max]. *)

val containment_constraints : scaled -> int -> Poly.t list
(** The subset of {!mode_domain} constraints through which trajectories
    must {e not} exit (the voltage box everywhere; additionally the
    [|θ| <= theta_max] faces of the saturated modes — the [θ = ±theta_on]
    faces are legitimate exits via mode switches). Attractive-invariant
    level sets must stay strictly inside these. *)

val switching_surfaces : scaled -> (int * int * Poly.t * Poly.t list) list
(** [(src, dst, h, dir)] with the jump surface [{h = 0}] restricted to
    the half-surface [{d >= 0 for d in dir}] where the flow actually
    crosses from [src] into [dst] (e.g. [off → up] only fires where
    [θ̇ >= 0], i.e. where the VCO voltage is non-positive); resets are
    the identity (Remark 1). *)

val hybrid_system : scaled -> point -> Hybrid.t
(** The full hybrid automaton at a coefficient point (for simulation and
    the reach-set baseline). *)

val equilibrium : scaled -> float array
(** The lock equilibrium — the origin. *)

val in_lock : ?tol:float -> scaled -> float array -> bool
(** Whether a state is frequency-locked: all voltage coordinates within
    [tol] (default 0.05) of the equilibrium. *)

val to_physical : scaled -> float array -> float array
(** Convert a scaled state to physical units (volts, phase in cycles). *)

val pp_scaled : Format.formatter -> scaled -> unit
(** Human-readable summary of the scaled coefficients. *)
