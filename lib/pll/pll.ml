type order = Third | Fourth

type raw = {
  order : order;
  c1 : Interval.t;
  c2 : Interval.t;
  c3 : Interval.t option;
  r : Interval.t;
  r2 : Interval.t option;
  f_ref : float;
  f_q : float;
  i_p : Interval.t;
  k_v : Interval.t;
}

let iv = Interval.make

(* Table 1, third-order column. Units as interpreted in DESIGN.md §6:
   Kv is read in rad/s/V with the magnitude that matches the plotted
   state ranges; f_q = f_ref (lock at v2 = 0, matching the origin-centred
   figures). *)
let table1_third =
  {
    order = Third;
    c1 = iv 1.98e-12 2.2e-12;
    c2 = iv 6.1e-12 6.4e-12;
    c3 = None;
    r = iv 7.8e3 8.2e3;
    r2 = None;
    f_ref = 27e6;
    f_q = 27e6;
    i_p = iv 495e-6 505e-6;
    k_v = iv 198e6 202e6;
  }

let table1_fourth =
  {
    order = Fourth;
    c1 = iv 29e-12 31e-12;
    c2 = iv 3.2e-12 3.4e-12;
    c3 = Some (iv 1.8e-12 2.2e-12);
    r = iv 48e3 52e3;
    r2 = Some (iv 7e3 9e3);
    f_ref = 5e6;
    f_q = 5e6;
    i_p = iv 395e-6 405e-6;
    (* Table 1 lists Kv ∈ [495, 502] without units; read in units of
       1e4 rad/s/V, the magnitude at which the scaled loop gain κ·ι/θ_on
       makes the fourth-order loop stable (DESIGN.md §6). *)
    k_v = iv 495e4 502e4;
  }

(* ------------------------------------------------------------------ *)
(* Sweepable parameter axes (parameterized problem construction)       *)
(* ------------------------------------------------------------------ *)

type axis = Ip | R | C1 | C2 | C3 | R2 | Kv

let axes = [ Ip; R; C1; C2; C3; R2; Kv ]

let axis_name = function
  | Ip -> "ip"
  | R -> "r"
  | C1 -> "c1"
  | C2 -> "c2"
  | C3 -> "c3"
  | R2 -> "r2"
  | Kv -> "kv"

let axis_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "ip" -> Ok Ip
  | "r" -> Ok R
  | "c1" -> Ok C1
  | "c2" -> Ok C2
  | "c3" -> Ok C3
  | "r2" -> Ok R2
  | "kv" -> Ok Kv
  | other ->
      Error
        (Printf.sprintf "unknown parameter axis %S (want one of %s)" other
           (String.concat ", " (List.map axis_name axes)))

let axis_interval (raw : raw) = function
  | Ip -> Some raw.i_p
  | R -> Some raw.r
  | C1 -> Some raw.c1
  | C2 -> Some raw.c2
  | C3 -> raw.c3
  | R2 -> raw.r2
  | Kv -> Some raw.k_v

let axis_nominal raw a = Option.map Interval.mid (axis_interval raw a)

let set_axis_relative (raw : raw) a ~lo ~hi =
  if not (lo > 0.0 && hi > 0.0) then
    Error
      (Printf.sprintf "axis %s: relative factors must be strictly positive (got %g:%g)"
         (axis_name a) lo hi)
  else if lo > hi then
    Error (Printf.sprintf "axis %s: empty relative range %g:%g" (axis_name a) lo hi)
  else
    match axis_nominal raw a with
    | None ->
        Error
          (Printf.sprintf "axis %s does not exist on a %s-order model" (axis_name a)
             (match raw.order with Third -> "third" | Fourth -> "fourth"))
    | Some m ->
        let ivl = iv (lo *. m) (hi *. m) in
        Ok
          (match a with
          | Ip -> { raw with i_p = ivl }
          | R -> { raw with r = ivl }
          | C1 -> { raw with c1 = ivl }
          | C2 -> { raw with c2 = ivl }
          | C3 -> { raw with c3 = Some ivl }
          | R2 -> { raw with r2 = Some ivl }
          | Kv -> { raw with k_v = ivl })

type scaled = {
  order : order;
  nvars : int;
  alpha : Interval.t;
  rho : Interval.t;
  beta : Interval.t;
  iota : Interval.t;
  kappa : Interval.t;
  v0 : float;
  t0 : float;
  theta_on : float;
  theta_max : float;
  w_max : float;
}

let two_pi = 2.0 *. Float.pi

let scale (raw : raw) =
  match raw.order with
  | Third ->
      (* v0 = nominal Ip·R: the pump's IR drop, so ι ≈ 1 and the plotted
         ±8 V range becomes w ≈ ±2. *)
      let v0 = Interval.mid raw.i_p *. Interval.mid raw.r in
      let t0 = Interval.mid raw.r *. Interval.mid raw.c2 in
      let alpha = Interval.div raw.c2 raw.c1 in
      let iota = Interval.scale (1.0 /. v0) (Interval.mul raw.i_p raw.r) in
      let kappa =
        Interval.scale (v0 /. two_pi)
          (Interval.mul (Interval.mul raw.r raw.c2) raw.k_v)
      in
      {
        order = Third;
        nvars = 3;
        alpha;
        rho = Interval.point 1.0;
        beta = Interval.point 1.0;
        iota;
        kappa;
        v0;
        t0;
        theta_on = 1.0;
        theta_max = 8.0;
        w_max = 2.5;
      }
  | Fourth ->
      let c3 = Option.get raw.c3 and r2 = Option.get raw.r2 in
      (* A smaller voltage scale (0.4·Ip·R ≈ the plotted ±8 V) keeps all
         coefficients within two decades of each other. *)
      let v0 = 0.4 *. Interval.mid raw.i_p *. Interval.mid raw.r in
      let t0 = Interval.mid raw.r *. Interval.mid raw.c2 in
      let alpha = Interval.div raw.c2 raw.c1 in
      let rho = Interval.div raw.r r2 in
      let beta = Interval.div (Interval.mul raw.r raw.c2) (Interval.mul r2 c3) in
      let iota = Interval.scale (1.0 /. v0) (Interval.mul raw.i_p raw.r) in
      let kappa =
        Interval.scale (v0 /. two_pi)
          (Interval.mul (Interval.mul raw.r raw.c2) raw.k_v)
      in
      {
        order = Fourth;
        nvars = 4;
        alpha;
        rho;
        beta;
        iota;
        kappa;
        v0;
        t0;
        theta_on = 0.5;
        theta_max = 1.0;
        w_max = 1.2;
      }

type point = { alpha : float; rho : float; beta : float; iota : float; kappa : float }

let nominal (s : scaled) =
  {
    alpha = Interval.mid s.alpha;
    rho = Interval.mid s.rho;
    beta = Interval.mid s.beta;
    iota = Interval.mid s.iota;
    kappa = Interval.mid s.kappa;
  }

let vertices (s : scaled) =
  let choices ivl = if Interval.width ivl = 0.0 then [ Interval.mid ivl ] else [ Interval.lo ivl; Interval.hi ivl ] in
  List.concat_map
    (fun alpha ->
      List.concat_map
        (fun rho ->
          List.concat_map
            (fun beta ->
              List.concat_map
                (fun iota ->
                  List.map (fun kappa -> { alpha; rho; beta; iota; kappa }) (choices s.kappa))
                (choices s.iota))
            (choices s.beta))
        (choices s.rho))
    (choices s.alpha)

let off = 0

let up = 1

let down = 2

let n_modes = 3

let mode_name = function
  | 0 -> "off"
  | 1 -> "up"
  | 2 -> "down"
  | m -> invalid_arg (Printf.sprintf "Pll.mode_name: bad mode %d" m)

let theta_index s = s.nvars - 1

let vco_index s = match s.order with Third -> 1 | Fourth -> 2

(* Pump drive as a polynomial in the state. In the tri-state PFD's linear
   range (mode [off], |θ| < one cycle) the cycle-averaged pump current is
   proportional to the phase error — duty cycle θ/2π — so the drive is
   ι·θ/θ_on; beyond a full cycle of error the detector saturates at ±ι
   (modes [up]/[down]). This is the standard continuization of the PFD
   (cf. the paper's reference [2]); a pure dead-zone relay would conserve
   loop-filter charge in mode 1 and exhibit a deadband limit cycle, so
   inevitability would be false for it. *)
let drive s (p : point) m =
  let n = s.nvars in
  match m with
  | 0 -> Poly.scale (p.iota /. s.theta_on) (Poly.var n (theta_index s))
  | 1 -> Poly.const n p.iota
  | 2 -> Poly.const n (-.p.iota)
  | _ -> invalid_arg "Pll.flow: bad mode"

let flow s (p : point) m =
  let n = s.nvars in
  let v i = Poly.var n i in
  let pump = drive s p m in
  match s.order with
  | Third ->
      [|
        Poly.scale p.alpha (Poly.sub (v 1) (v 0));
        Poly.add (Poly.sub (v 0) (v 1)) pump;
        Poly.scale (-.p.kappa) (v 1);
      |]
  | Fourth ->
      [|
        Poly.scale p.alpha (Poly.sub (v 1) (v 0));
        Poly.sum n
          [ Poly.sub (v 0) (v 1); Poly.scale p.rho (Poly.sub (v 2) (v 1)); pump ];
        Poly.scale p.beta (Poly.sub (v 1) (v 2));
        Poly.scale (-.p.kappa) (v 2);
      |]

(* Box bounds w_max^2 - w_i^2 >= 0 for every voltage coordinate. *)
let voltage_box s =
  let n = s.nvars in
  List.init (n - 1) (fun i ->
      Poly.sub (Poly.const n (s.w_max *. s.w_max)) (Poly.mul (Poly.var n i) (Poly.var n i)))

let mode_domain s m =
  let n = s.nvars in
  let th = Poly.var n (theta_index s) in
  let c x = Poly.const n x in
  (* Each θ-slab is encoded as a single quadratic [(θ−a)(b−θ) >= 0]: one
     even-degree S-procedure multiplier covers both faces. *)
  let slab a b = Poly.mul (Poly.sub th (c a)) (Poly.sub (c b) th) in
  let theta_constraints =
    match m with
    | 0 -> [ slab (-.s.theta_on) s.theta_on ]
    | 1 -> [ slab s.theta_on s.theta_max ]
    | 2 -> [ slab (-.s.theta_max) (-.s.theta_on) ]
    | _ -> invalid_arg "Pll.mode_domain: bad mode"
  in
  theta_constraints @ voltage_box s

let containment_constraints s m =
  let n = s.nvars in
  let th = Poly.var n (theta_index s) in
  let c x = Poly.const n x in
  let extra =
    match m with
    | 0 -> []
    | 1 -> [ Poly.sub (c s.theta_max) th ]
    | 2 -> [ Poly.add th (c s.theta_max) ]
    | _ -> invalid_arg "Pll.containment_constraints: bad mode"
  in
  extra @ voltage_box s

let switching_surfaces s =
  let n = s.nvars in
  let th = Poly.var n (theta_index s) in
  let c x = Poly.const n x in
  (* θ̇ = −κ·w_vco, so θ rises exactly where the VCO voltage is negative. *)
  let wv = Poly.var n (vco_index s) in
  [
    (off, up, Poly.sub th (c s.theta_on), [ Poly.neg wv ]);
    (up, off, Poly.sub th (c s.theta_on), [ wv ]);
    (off, down, Poly.add th (c s.theta_on), [ wv ]);
    (down, off, Poly.add th (c s.theta_on), [ Poly.neg wv ]);
  ]

let hybrid_system s p =
  let n = s.nvars in
  let names =
    match s.order with
    | Third -> [| "w1"; "w2"; "theta" |]
    | Fourth -> [| "w1"; "w2"; "w3"; "theta" |]
  in
  (* Simulation invariants are deliberately looser than the certificate
     domains ({!mode_domain}): the pump keeps acting however large the
     (unwrapped) phase error grows, so only the PFD's theta-sign structure
     is kept. *)
  let wide = 1e6 in
  let th_sim = Poly.var n (theta_index s) in
  let sim_invariant m =
    match m with
    | 0 ->
        [
          Poly.sub (Poly.const n (s.theta_on *. s.theta_on)) (Poly.mul th_sim th_sim);
        ]
    | 1 ->
        [
          Poly.sub th_sim (Poly.const n s.theta_on);
          Poly.sub (Poly.const n wide) th_sim;
        ]
    | 2 ->
        [
          Poly.sub (Poly.const n (-.s.theta_on)) th_sim;
          Poly.add th_sim (Poly.const n wide);
        ]
    | _ -> assert false
  in
  let mk_mode m name =
    { Hybrid.mode_id = m; mode_name = name; flow = flow s p m; invariant = sim_invariant m }
  in
  let th = Poly.var n (theta_index s) in
  let c x = Poly.const n x in
  let id = Hybrid.identity_reset n in
  let tr src dst crossing guard =
    { Hybrid.src; dst; guard; urgent_when = Some crossing; reset = id }
  in
  Hybrid.make ~nvars:n ~var_names:names
    ~modes:[ mk_mode off "off"; mk_mode up "up"; mk_mode down "down" ]
    ~transitions:
      [
        (* off -> up when θ rises through +theta_on *)
        tr off up (Poly.sub th (c s.theta_on)) [ Poly.sub th (c (s.theta_on *. 0.999)) ];
        (* up -> off when θ falls back through +theta_on *)
        tr up off (Poly.sub (c s.theta_on) th) [ Poly.sub (c (s.theta_on *. 1.001)) th ];
        (* off -> down when θ falls through -theta_on *)
        tr off down (Poly.sub (c (-.s.theta_on)) th) [ Poly.sub (c (-0.999 *. s.theta_on)) th ];
        (* down -> off when θ rises back through -theta_on *)
        tr down off (Poly.add th (c s.theta_on)) [ Poly.add th (c (1.001 *. s.theta_on)) ];
      ]
    ()

let equilibrium s = Array.make s.nvars 0.0

let in_lock ?(tol = 0.05) s x =
  let ok = ref true in
  for i = 0 to s.nvars - 2 do
    if Float.abs x.(i) > tol then ok := false
  done;
  !ok

let to_physical s x =
  Array.mapi (fun i v -> if i = theta_index s then v else v *. s.v0) x

let pp_scaled ppf s =
  Format.fprintf ppf
    "@[<v>%s-order CP PLL (scaled):@,\
     alpha = %a@,\
     rho   = %a@,\
     beta  = %a@,\
     iota  = %a@,\
     kappa = %a@,\
     v0 = %g V, t0 = %g s, theta_on = %g, theta_max = %g, w_max = %g@]"
    (match s.order with Third -> "third" | Fourth -> "fourth")
    Interval.pp s.alpha Interval.pp s.rho Interval.pp s.beta Interval.pp s.iota Interval.pp
    s.kappa s.v0 s.t0 s.theta_on s.theta_max s.w_max
