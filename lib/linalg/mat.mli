(** Dense matrices of floats, stored row-major.

    Provides the factorizations the SDP interior-point solver relies on:
    Cholesky with optional diagonal regularization, symmetric eigensolving
    by cyclic Jacobi rotations, and Gaussian elimination with partial
    pivoting. Dimension mismatches raise [Invalid_argument]. *)

type t = { rows : int; cols : int; data : float array }
(** [data.(i * cols + j)] is the entry at row [i], column [j]. *)

val create : int -> int -> t
(** [create m n] is the [m*n] zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init m n f] has entry [f i j] at [(i, j)]. *)

val identity : int -> t
(** Identity matrix of the given order. *)

val diag : Vec.t -> t
(** Square matrix with the given diagonal and zeros elsewhere. *)

val diag_of : t -> Vec.t
(** Diagonal of a square matrix. *)

val of_arrays : float array array -> t
(** Matrix from an array of rows (rows must have equal length). *)

val to_arrays : t -> float array array
(** Rows as a fresh array of arrays. *)

val dims : t -> int * int
(** [(rows, cols)]. *)

val get : t -> int -> int -> float
(** Entry access. *)

val set : t -> int -> int -> float -> unit
(** In-place entry update. *)

val copy : t -> t
(** Deep copy. *)

val add : t -> t -> t
(** Entrywise sum. *)

val sub : t -> t -> t
(** Entrywise difference. *)

val scale : float -> t -> t
(** Scalar multiple. *)

val neg : t -> t
(** Entrywise negation. *)

val transpose : t -> t
(** Transpose. *)

val mul : t -> t -> t
(** Matrix product. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [A x]. *)

val tmul_vec : t -> Vec.t -> Vec.t
(** [tmul_vec a x] is [Aᵀ x]. *)

val outer : Vec.t -> Vec.t -> t
(** [outer x y] is the rank-one matrix [x yᵀ]. *)

val symmetrize : t -> t
(** [(A + Aᵀ) / 2] for a square matrix. *)

val is_symmetric : ?tol:float -> t -> bool
(** Whether [|A - Aᵀ|∞ <= tol] (default 1e-9). *)

val trace : t -> float
(** Sum of diagonal entries of a square matrix. *)

val frob_dot : t -> t -> float
(** Frobenius (entrywise) inner product [⟨A, B⟩ = Σ aᵢⱼ bᵢⱼ]. *)

val norm_fro : t -> float
(** Frobenius norm. *)

val norm_inf : t -> float
(** Max-abs entry. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison up to absolute tolerance [tol] (default 1e-9). *)

val cholesky : ?reg:float -> t -> t option
(** [cholesky a] is the lower-triangular [L] with [L Lᵀ = A + reg*I] when
    the (symmetric) argument is positive definite, [None] otherwise.
    [reg] defaults to [0.]. *)

val chol_solve : t -> Vec.t -> Vec.t
(** [chol_solve l b] solves [L Lᵀ x = b] given the Cholesky factor [L]. *)

val chol_solve_mat : t -> t -> t
(** [chol_solve_mat l b] solves [L Lᵀ X = B] by blocked forward/backward
    sweeps over the whole right-hand-side panel. *)

val chol_inverse : t -> t
(** [chol_inverse l] is [(L Lᵀ)⁻¹] given the Cholesky factor [L],
    computed via the triangular inverse [T = L⁻¹] and the symmetric
    product [Tᵀ T] — the fast path for the [S⁻¹] blocks of the SDP
    interior-point iteration. *)

val solve : t -> Vec.t -> Vec.t
(** [solve a b] solves the square system [A x = b] by Gaussian elimination
    with partial pivoting. Raises [Failure] on (numerically) singular
    systems. *)

val solve_mat : t -> t -> t
(** Multi-right-hand-side version of {!solve}. *)

val inverse : t -> t
(** Matrix inverse via {!solve_mat} against the identity. *)

val lstsq : t -> Vec.t -> Vec.t
(** Least-squares solution of possibly rectangular [A x = b] via the
    regularized normal equations. *)

val qr : t -> t * t
(** Thin QR factorization of an [m*n] matrix with [m >= n] by Householder
    reflections: [(q, r)] with [q] having orthonormal columns ([m*n]),
    [r] upper triangular ([n*n]) and [q r = a]. *)

val expm : t -> t
(** Matrix exponential by Padé(6) approximation with scaling and
    squaring — used for exact advection maps of affine flows. *)

val sym_eig : ?tol:float -> ?max_sweeps:int -> t -> Vec.t * t
(** [sym_eig a] is [(w, v)] where [w] are the eigenvalues (ascending) and
    the columns of [v] the corresponding orthonormal eigenvectors of the
    symmetric matrix [a], computed by cyclic Jacobi rotations. *)

val min_eig : t -> float
(** Smallest eigenvalue of a symmetric matrix. *)

val is_psd : ?tol:float -> t -> bool
(** Whether the symmetric argument has [min_eig >= -tol] (default 1e-8). *)

val pp : Format.formatter -> t -> unit
(** Row-by-row pretty printer. *)
