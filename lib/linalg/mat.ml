type t = { rows : int; cols : int; data : float array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) 0.0 }

let init rows cols f =
  let d = Array.make (rows * cols) 0.0 in
  let k = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      Array.unsafe_set d !k (f i j);
      incr k
    done
  done;
  { rows; cols; data = d }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let diag v =
  let n = Array.length v in
  init n n (fun i j -> if i = j then v.(i) else 0.0)

let get a i j = a.data.((i * a.cols) + j)

let set a i j v = a.data.((i * a.cols) + j) <- v

let diag_of a =
  if a.rows <> a.cols then invalid_arg "Mat.diag_of: not square";
  Array.init a.rows (fun i -> get a i i)

let of_arrays rows =
  let m = Array.length rows in
  if m = 0 then create 0 0
  else begin
    let n = Array.length rows.(0) in
    Array.iter
      (fun r -> if Array.length r <> n then invalid_arg "Mat.of_arrays: ragged rows")
      rows;
    init m n (fun i j -> rows.(i).(j))
  end

let to_arrays a = Array.init a.rows (fun i -> Array.init a.cols (fun j -> get a i j))

let dims a = (a.rows, a.cols)

let copy a = { a with data = Array.copy a.data }

let check_same name a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg
      (Printf.sprintf "Mat.%s: dimension mismatch (%dx%d vs %dx%d)" name a.rows
         a.cols b.rows b.cols)

let add a b =
  check_same "add" a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let d = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set d k (Array.unsafe_get ad k +. Array.unsafe_get bd k)
  done;
  { a with data = d }

let sub a b =
  check_same "sub" a b;
  let n = Array.length a.data in
  let ad = a.data and bd = b.data in
  let d = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set d k (Array.unsafe_get ad k -. Array.unsafe_get bd k)
  done;
  { a with data = d }

let scale s a =
  let n = Array.length a.data in
  let ad = a.data in
  let d = Array.make n 0.0 in
  for k = 0 to n - 1 do
    Array.unsafe_set d k (s *. Array.unsafe_get ad k)
  done;
  { a with data = d }

let neg a = scale (-1.0) a

let transpose a =
  let r = a.rows and c = a.cols in
  let d = Array.make (r * c) 0.0 in
  let ad = a.data in
  for i = 0 to r - 1 do
    let row = i * c in
    for j = 0 to c - 1 do
      Array.unsafe_set d ((j * r) + i) (Array.unsafe_get ad (row + j))
    done
  done;
  { rows = c; cols = r; data = d }

let mul a b =
  if a.cols <> b.rows then
    invalid_arg
      (Printf.sprintf "Mat.mul: dimension mismatch (%dx%d * %dx%d)" a.rows a.cols
         b.rows b.cols);
  let c = create a.rows b.cols in
  let ad = a.data and bd = b.data and cd = c.data in
  let n = b.cols in
  for i = 0 to a.rows - 1 do
    let arow = i * a.cols and crow = i * n in
    for k = 0 to a.cols - 1 do
      let aik = Array.unsafe_get ad (arow + k) in
      if aik <> 0.0 then begin
        let brow = k * n in
        for j = 0 to n - 1 do
          Array.unsafe_set cd (crow + j)
            (Array.unsafe_get cd (crow + j) +. (aik *. Array.unsafe_get bd (brow + j)))
        done
      end
    done
  done;
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Array.init a.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. (get a i j *. x.(j))
      done;
      !s)

let tmul_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.tmul_vec: dimension mismatch";
  Array.init a.cols (fun j ->
      let s = ref 0.0 in
      for i = 0 to a.rows - 1 do
        s := !s +. (get a i j *. x.(i))
      done;
      !s)

let outer x y =
  init (Array.length x) (Array.length y) (fun i j -> x.(i) *. y.(j))

let symmetrize a =
  if a.rows <> a.cols then invalid_arg "Mat.symmetrize: not square";
  let n = a.rows in
  let ad = a.data in
  let d = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set d ((i * n) + i) (Array.unsafe_get ad ((i * n) + i));
    for j = i + 1 to n - 1 do
      let v =
        0.5 *. (Array.unsafe_get ad ((i * n) + j) +. Array.unsafe_get ad ((j * n) + i))
      in
      Array.unsafe_set d ((i * n) + j) v;
      Array.unsafe_set d ((j * n) + i) v
    done
  done;
  { a with data = d }

let is_symmetric ?(tol = 1e-9) a =
  a.rows = a.cols
  &&
  let ok = ref true in
  for i = 0 to a.rows - 1 do
    for j = i + 1 to a.cols - 1 do
      if Float.abs (get a i j -. get a j i) > tol then ok := false
    done
  done;
  !ok

let trace a =
  if a.rows <> a.cols then invalid_arg "Mat.trace: not square";
  let s = ref 0.0 in
  for i = 0 to a.rows - 1 do
    s := !s +. get a i i
  done;
  !s

let frob_dot a b =
  check_same "frob_dot" a b;
  let s = ref 0.0 in
  for k = 0 to Array.length a.data - 1 do
    s := !s +. (a.data.(k) *. b.data.(k))
  done;
  !s

let norm_fro a = sqrt (frob_dot a a)

let norm_inf a = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 a.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let cholesky ?(reg = 0.0) a =
  if a.rows <> a.cols then invalid_arg "Mat.cholesky: not square";
  let n = a.rows in
  let l = create n n in
  let ad = a.data and ld = l.data in
  let ok = ref true in
  (try
     for i = 0 to n - 1 do
       let ri = i * n in
       for j = 0 to i do
         let rj = j * n in
         let s = ref (Array.unsafe_get ad (ri + j)) in
         if i = j then s := !s +. reg;
         for k = 0 to j - 1 do
           s := !s -. (Array.unsafe_get ld (ri + k) *. Array.unsafe_get ld (rj + k))
         done;
         if i = j then begin
           if !s <= 0.0 || not (Float.is_finite !s) then begin
             ok := false;
             raise Exit
           end;
           Array.unsafe_set ld (ri + i) (sqrt !s)
         end
         else Array.unsafe_set ld (ri + j) (!s /. Array.unsafe_get ld (rj + j))
       done
     done
   with Exit -> ());
  if !ok then Some l else None

let forward_subst l b =
  let n = l.rows in
  let ld = l.data in
  let y = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let ri = i * n in
    let s = ref (Array.unsafe_get b i) in
    for k = 0 to i - 1 do
      s := !s -. (Array.unsafe_get ld (ri + k) *. Array.unsafe_get y k)
    done;
    y.(i) <- !s /. Array.unsafe_get ld (ri + i)
  done;
  y

let backward_subst_t l y =
  (* Solves Lᵀ x = y for lower-triangular L. *)
  let n = l.rows in
  let ld = l.data in
  let x = Array.make n 0.0 in
  for i = n - 1 downto 0 do
    let s = ref (Array.unsafe_get y i) in
    for k = i + 1 to n - 1 do
      s := !s -. (Array.unsafe_get ld ((k * n) + i) *. Array.unsafe_get x k)
    done;
    x.(i) <- !s /. Array.unsafe_get ld ((i * n) + i)
  done;
  x

let chol_solve l b = backward_subst_t l (forward_subst l b)

(* Multi-RHS L Lᵀ X = B, all columns swept together so the inner loops
   run over contiguous rows of the right-hand-side panel. *)
let chol_solve_mat l b =
  let n = l.rows and w = b.cols in
  if b.rows <> n then invalid_arg "Mat.chol_solve_mat: dimension mismatch";
  let ld = l.data in
  let x = copy b in
  let xd = x.data in
  (* Forward sweep: L Y = B. *)
  for i = 0 to n - 1 do
    let ri = i * n and rowi = i * w in
    for k = 0 to i - 1 do
      let lik = Array.unsafe_get ld (ri + k) in
      if lik <> 0.0 then begin
        let rowk = k * w in
        for j = 0 to w - 1 do
          Array.unsafe_set xd (rowi + j)
            (Array.unsafe_get xd (rowi + j) -. (lik *. Array.unsafe_get xd (rowk + j)))
        done
      end
    done;
    let d = Array.unsafe_get ld (ri + i) in
    for j = 0 to w - 1 do
      Array.unsafe_set xd (rowi + j) (Array.unsafe_get xd (rowi + j) /. d)
    done
  done;
  (* Backward sweep: Lᵀ X = Y. *)
  for i = n - 1 downto 0 do
    let rowi = i * w in
    for k = i + 1 to n - 1 do
      let lki = Array.unsafe_get ld ((k * n) + i) in
      if lki <> 0.0 then begin
        let rowk = k * w in
        for j = 0 to w - 1 do
          Array.unsafe_set xd (rowi + j)
            (Array.unsafe_get xd (rowi + j) -. (lki *. Array.unsafe_get xd (rowk + j)))
        done
      end
    done;
    let d = Array.unsafe_get ld ((i * n) + i) in
    for j = 0 to w - 1 do
      Array.unsafe_set xd (rowi + j) (Array.unsafe_get xd (rowi + j) /. d)
    done
  done;
  x

(* (L Lᵀ)⁻¹ from the Cholesky factor: T = L⁻¹ by triangular forward
   substitution (skipping the structural zeros above each unit column),
   then A⁻¹ = Tᵀ T filled symmetrically. Cheaper and allocation-free
   compared to [chol_solve_mat l (identity n)]. *)
let chol_inverse l =
  if l.rows <> l.cols then invalid_arg "Mat.chol_inverse: not square";
  let n = l.rows in
  let ld = l.data in
  let t = create n n in
  let td = t.data in
  for j = 0 to n - 1 do
    Array.unsafe_set td ((j * n) + j) (1.0 /. Array.unsafe_get ld ((j * n) + j));
    for i = j + 1 to n - 1 do
      let ri = i * n in
      let s = ref 0.0 in
      for k = j to i - 1 do
        s := !s +. (Array.unsafe_get ld (ri + k) *. Array.unsafe_get td ((k * n) + j))
      done;
      Array.unsafe_set td (ri + j) (-. !s /. Array.unsafe_get ld (ri + i))
    done
  done;
  let inv = create n n in
  let vd = inv.data in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let s = ref 0.0 in
      (* T is lower triangular: row k contributes only for k >= j >= i. *)
      for k = j to n - 1 do
        let rk = k * n in
        s := !s +. (Array.unsafe_get td (rk + i) *. Array.unsafe_get td (rk + j))
      done;
      Array.unsafe_set vd ((i * n) + j) !s;
      Array.unsafe_set vd ((j * n) + i) !s
    done
  done;
  inv

(* Gaussian elimination with partial pivoting on an augmented system. *)
let gauss_solve a rhs_cols rhs =
  if a.rows <> a.cols then invalid_arg "Mat.solve: not square";
  let n = a.rows in
  let m = copy a in
  let b = copy rhs in
  for col = 0 to n - 1 do
    (* pivot *)
    let piv = ref col in
    for i = col + 1 to n - 1 do
      if Float.abs (get m i col) > Float.abs (get m !piv col) then piv := i
    done;
    if Float.abs (get m !piv col) < 1e-300 then failwith "Mat.solve: singular matrix";
    if !piv <> col then begin
      for j = 0 to n - 1 do
        let tmp = get m col j in
        set m col j (get m !piv j);
        set m !piv j tmp
      done;
      for j = 0 to rhs_cols - 1 do
        let tmp = get b col j in
        set b col j (get b !piv j);
        set b !piv j tmp
      done
    end;
    let d = get m col col in
    let md = m.data and bd = b.data in
    let rcol_m = col * n and rcol_b = col * rhs_cols in
    for i = col + 1 to n - 1 do
      let f = Array.unsafe_get md ((i * n) + col) /. d in
      if f <> 0.0 then begin
        let ri_m = i * n and ri_b = i * rhs_cols in
        for j = col to n - 1 do
          Array.unsafe_set md (ri_m + j)
            (Array.unsafe_get md (ri_m + j) -. (f *. Array.unsafe_get md (rcol_m + j)))
        done;
        for j = 0 to rhs_cols - 1 do
          Array.unsafe_set bd (ri_b + j)
            (Array.unsafe_get bd (ri_b + j) -. (f *. Array.unsafe_get bd (rcol_b + j)))
        done
      end
    done
  done;
  let x = create n rhs_cols in
  for j = 0 to rhs_cols - 1 do
    for i = n - 1 downto 0 do
      let s = ref (get b i j) in
      for k = i + 1 to n - 1 do
        s := !s -. (get m i k *. get x k j)
      done;
      set x i j (!s /. get m i i)
    done
  done;
  x

let solve a b =
  let bm = init (Array.length b) 1 (fun i _ -> b.(i)) in
  let x = gauss_solve a 1 bm in
  Array.init a.rows (fun i -> get x i 0)

let solve_mat a b =
  if a.rows <> b.rows then invalid_arg "Mat.solve_mat: dimension mismatch";
  gauss_solve a b.cols b

let inverse a = solve_mat a (identity a.rows)

let lstsq a b =
  if a.rows <> Array.length b then invalid_arg "Mat.lstsq: dimension mismatch";
  let at = transpose a in
  let ata = mul at a in
  let scale_reg = 1e-12 *. (1.0 +. norm_inf ata) in
  for i = 0 to ata.rows - 1 do
    set ata i i (get ata i i +. scale_reg)
  done;
  solve ata (mul_vec at b)

let qr a =
  let m = a.rows and n = a.cols in
  if m < n then invalid_arg "Mat.qr: needs rows >= cols";
  let r = copy a in
  (* Accumulate Q implicitly: start from the identity embedding and apply
     the same reflections. *)
  let q = init m m (fun i j -> if i = j then 1.0 else 0.0) in
  for k = 0 to n - 1 do
    (* Householder vector for column k below the diagonal. *)
    let norm = ref 0.0 in
    for i = k to m - 1 do
      norm := !norm +. (get r i k *. get r i k)
    done;
    let norm = sqrt !norm in
    if norm > 1e-300 then begin
      let alpha = if get r k k >= 0.0 then -.norm else norm in
      let v = Array.make m 0.0 in
      v.(k) <- get r k k -. alpha;
      for i = k + 1 to m - 1 do
        v.(i) <- get r i k
      done;
      let vtv = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v in
      if vtv > 1e-300 then begin
        let apply (mat : t) =
          (* mat <- (I - 2 v v'/v'v) mat *)
          for j = 0 to mat.cols - 1 do
            let dot = ref 0.0 in
            for i = k to m - 1 do
              dot := !dot +. (v.(i) *. get mat i j)
            done;
            let f = 2.0 *. !dot /. vtv in
            for i = k to m - 1 do
              set mat i j (get mat i j -. (f *. v.(i)))
            done
          done
        in
        apply r;
        apply q
      end
    end
  done;
  (* q currently holds H_{n-1}…H_0; Q = (H_{n-1}…H_0)' — take the
     transpose and keep the first n columns; zero R's subdiagonal
     noise. *)
  let qt = transpose q in
  let q_thin = init m n (fun i j -> get qt i j) in
  let r_sq = init n n (fun i j -> if j >= i then get r i j else 0.0) in
  (q_thin, r_sq)

let expm a =
  if a.rows <> a.cols then invalid_arg "Mat.expm: not square";
  let n = a.rows in
  (* Scaling: bring |A/2^s| below 1/2. *)
  let nrm = norm_inf a in
  let s = if nrm <= 0.5 then 0 else int_of_float (ceil (log (nrm /. 0.5) /. log 2.0)) in
  let a1 = scale (1.0 /. Float.pow 2.0 (float_of_int s)) a in
  (* Padé(6,6): N = sum c_k A^k, D = sum (-1)^k c_k A^k. *)
  let c = Array.make 7 1.0 in
  for k = 1 to 6 do
    c.(k) <- c.(k - 1) *. float_of_int (6 - k + 1) /. float_of_int (k * ((2 * 6) - k + 1))
  done;
  let num = ref (scale c.(0) (identity n)) and den = ref (scale c.(0) (identity n)) in
  let pow = ref (identity n) in
  for k = 1 to 6 do
    pow := mul !pow a1;
    num := add !num (scale c.(k) !pow);
    den := add !den (scale (if k mod 2 = 0 then c.(k) else -.c.(k)) !pow)
  done;
  let e = ref (solve_mat !den !num) in
  for _ = 1 to s do
    e := mul !e !e
  done;
  !e

let sym_eig ?(tol = 1e-12) ?(max_sweeps = 64) a =
  if a.rows <> a.cols then invalid_arg "Mat.sym_eig: not square";
  let n = a.rows in
  let m = copy (symmetrize a) in
  let v = identity n in
  let off_norm () =
    let s = ref 0.0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        s := !s +. (get m i j *. get m i j)
      done
    done;
    sqrt (2.0 *. !s)
  in
  let scale_m = Float.max 1.0 (norm_inf m) in
  let sweeps = ref 0 in
  while off_norm () > tol *. scale_m && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let apq = get m p q in
        if Float.abs apq > 1e-300 then begin
          let app = get m p p and aqq = get m q q in
          let theta = (aqq -. app) /. (2.0 *. apq) in
          let t =
            let sign = if theta >= 0.0 then 1.0 else -1.0 in
            sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.0))
          in
          let c = 1.0 /. sqrt ((t *. t) +. 1.0) in
          let s = t *. c in
          (* Update rows/cols p and q of m. *)
          let md = m.data and vd = v.data in
          for k = 0 to n - 1 do
            let kp = (k * n) + p and kq = (k * n) + q in
            let mkp = Array.unsafe_get md kp and mkq = Array.unsafe_get md kq in
            Array.unsafe_set md kp ((c *. mkp) -. (s *. mkq));
            Array.unsafe_set md kq ((s *. mkp) +. (c *. mkq))
          done;
          let rp = p * n and rq = q * n in
          for k = 0 to n - 1 do
            let mpk = Array.unsafe_get md (rp + k) and mqk = Array.unsafe_get md (rq + k) in
            Array.unsafe_set md (rp + k) ((c *. mpk) -. (s *. mqk));
            Array.unsafe_set md (rq + k) ((s *. mpk) +. (c *. mqk))
          done;
          for k = 0 to n - 1 do
            let kp = (k * n) + p and kq = (k * n) + q in
            let vkp = Array.unsafe_get vd kp and vkq = Array.unsafe_get vd kq in
            Array.unsafe_set vd kp ((c *. vkp) -. (s *. vkq));
            Array.unsafe_set vd kq ((s *. vkp) +. (c *. vkq))
          done
        end
      done
    done
  done;
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare (get m i i) (get m j j)) order;
  let w = Array.init n (fun k -> get m order.(k) order.(k)) in
  let vs = init n n (fun i k -> get v i order.(k)) in
  (w, vs)

(* Householder reduction of a symmetric matrix to tridiagonal form
   (EISPACK TRED1 style, no eigenvector accumulation): returns the
   diagonal [d] and subdiagonal [e] ([e.(0)] unused) of an orthogonally
   similar tridiagonal matrix. Works on the lower triangle of a fresh
   symmetrized copy. O(n^3) with a small constant — much cheaper than a
   full Jacobi sweep when only eigenvalues are needed. *)
let tridiagonalize a =
  let n = a.rows in
  let m = symmetrize a in
  let md = m.data in
  let d = Array.make n 0.0 and e = Array.make n 0.0 in
  for i = n - 1 downto 1 do
    let l = i - 1 in
    if l > 0 then begin
      let scale = ref 0.0 in
      for k = 0 to l do
        scale := !scale +. Float.abs (Array.unsafe_get md ((i * n) + k))
      done;
      if !scale = 0.0 then e.(i) <- Array.unsafe_get md ((i * n) + l)
      else begin
        let h = ref 0.0 in
        for k = 0 to l do
          let v = Array.unsafe_get md ((i * n) + k) /. !scale in
          Array.unsafe_set md ((i * n) + k) v;
          h := !h +. (v *. v)
        done;
        let f = Array.unsafe_get md ((i * n) + l) in
        let g = if f >= 0.0 then -.sqrt !h else sqrt !h in
        e.(i) <- !scale *. g;
        h := !h -. (f *. g);
        Array.unsafe_set md ((i * n) + l) (f -. g);
        (* p = A u / h over the leading (l+1) block (lower triangle). *)
        let facc = ref 0.0 in
        for j = 0 to l do
          let g = ref 0.0 in
          let rj = j * n in
          for k = 0 to j do
            g := !g +. (Array.unsafe_get md (rj + k) *. Array.unsafe_get md ((i * n) + k))
          done;
          for k = j + 1 to l do
            g :=
              !g +. (Array.unsafe_get md ((k * n) + j) *. Array.unsafe_get md ((i * n) + k))
          done;
          e.(j) <- !g /. !h;
          facc := !facc +. (e.(j) *. Array.unsafe_get md ((i * n) + j))
        done;
        (* Rank-two update A <- A - u w' - w u'. *)
        let hh = !facc /. (!h +. !h) in
        for j = 0 to l do
          let fj = Array.unsafe_get md ((i * n) + j) in
          let gj = e.(j) -. (hh *. fj) in
          e.(j) <- gj;
          let rj = j * n in
          for k = 0 to j do
            Array.unsafe_set md (rj + k)
              (Array.unsafe_get md (rj + k)
              -. (fj *. e.(k))
              -. (gj *. Array.unsafe_get md ((i * n) + k)))
          done
        done
      end
    end
    else e.(i) <- Array.unsafe_get md ((i * n) + l)
  done;
  for i = 0 to n - 1 do
    d.(i) <- Array.unsafe_get md ((i * n) + i)
  done;
  (d, e)

(* Eigenvalues of the tridiagonal [(d, e)] strictly below [x], counted
   by the signs of the Sturm pivot sequence. *)
let sturm_count d e x =
  let n = Array.length d in
  let count = ref 0 in
  let q = ref 1.0 in
  for i = 0 to n - 1 do
    let sub = if i = 0 then 0.0 else e.(i) *. e.(i) /. !q in
    let v = d.(i) -. x -. sub in
    (* Keep the pivot away from exact zero so the recurrence never
       divides by 0; the sign convention counts it as negative. *)
    q := (if Float.abs v < 1e-300 then -1e-300 else v);
    if !q < 0.0 then incr count
  done;
  !count

let min_eig a =
  let n = a.rows in
  if n = 0 then 0.0
  else if n = 1 then a.data.(0)
  else begin
    let d, e = tridiagonalize a in
    (* Gershgorin bracket for the spectrum of the tridiagonal. *)
    let lo = ref infinity and hi = ref neg_infinity in
    for i = 0 to n - 1 do
      let r =
        (if i > 0 then Float.abs e.(i) else 0.0)
        +. if i < n - 1 then Float.abs e.(i + 1) else 0.0
      in
      lo := Float.min !lo (d.(i) -. r);
      hi := Float.max !hi (d.(i) +. r)
    done;
    let scale = Float.max 1.0 (Float.max (Float.abs !lo) (Float.abs !hi)) in
    let lo = ref !lo and hi = ref !hi in
    (* Bisection on the Sturm count: smallest x with count(x) >= 1. *)
    while !hi -. !lo > 1e-14 *. scale do
      let mid = 0.5 *. (!lo +. !hi) in
      if sturm_count d e mid >= 1 then hi := mid else lo := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let is_psd ?(tol = 1e-8) a = min_eig a >= -.tol

let pp ppf a =
  Format.fprintf ppf "@[<v>";
  for i = 0 to a.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to a.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%g" (get a i j)
    done;
    Format.fprintf ppf "]";
    if i < a.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
