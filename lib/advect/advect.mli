(** Bounded advection of polynomial level sets over the hybrid CP PLL —
    the paper's §2.5 / Eq. 6 / Algorithm 1, verifying property P2
    (reachability of the attractive invariant [X1] from the outer set
    [X2]).

    A {e front} is a polynomial [q] whose 0-sublevel set
    [S(q) = {x | q(x) <= 0}] over-approximates the set of states reachable
    from [X2] at the current time. One advection step finds a new front
    [w] of fixed degree such that, for every PFD mode [m] with flow
    [f_m] on its domain [D_m],

    - {e transport}: [x ∈ S(q) ∩ D_m  ⟹  (T_h^m w)(x) <= −γ], where
      [T_h^m w = w + h·∇w·f_m] is the first-order Taylor pull-back of
      [w] along the flow — so the time-[h] image of the old set lies
      inside the new one with margin [γ];
    - {e tightness}: [q(x) >= ρ ∧ x ∈ D_m  ⟹  (T_h^m w)(x) >= γ] — the
      new set cannot balloon beyond a [ρ]-inflation of the old one;
    - optionally {e truncation}: [|h²/2 · ∇(∇w·f_m)·f_m| <= γ] on [D_m],
      bounding the Taylor remainder so the margin [γ] absorbs it.

    Each constraint is a Lemma-1 / S-procedure SOS condition, linear in
    the unknown [w] for fixed [γ]; [γ] is minimized by bisection exactly
    as the paper does. Algorithm 1 then iterates steps until the front
    is immersed in [X1] (an SOS set-inclusion check per mode), falling
    back to Escape certificates on the residual set when advection
    stalls (the paper's fourth-order case, Fig. 5). *)

(** How the front is pulled back along a mode flow. [Taylor] is the
    paper's first-order transport [w + h·∇w·f] with explicit
    truncation-bound constraints; it needs [h ≲ 1/‖f‖²]. [Exact]
    (default) exploits that the PFD-mode flows are {e affine}: the
    time-[h] flow map [x ↦ e^{Ah}x + c] is computed by an (augmented)
    matrix exponential and composed with the front symbolically, which
    preserves its degree and removes the step-size restriction. The
    residual error — trajectories that change mode mid-step, where the
    continuized field is continuous but not smooth — is [O(h²)] and
    absorbed by the [γ]/[ρ] margins (and checked by
    {!validate_step_by_simulation}). *)
type advection_map = Exact | Taylor

type config = {
  front_deg : int;  (** degree of the advected fronts (default 2) *)
  h : float;  (** advection time step, in scaled time units (default 0.25) *)
  rho : float;
      (** tightness inflation, as a fraction of the front's maximum over
          the verification box (default 2.0; the box-moment objective, not this
          constraint, is what keeps fronts tight) *)
  gamma_max : float;  (** upper end of the γ bisection (default 0.3) *)
  gamma_bisect : int;  (** bisection steps on γ (default 5) *)
  map : advection_map;  (** pull-back discretization (default [Exact]) *)
  check_truncation : bool;
      (** include the paper's Taylor-remainder constraints when
          [map = Taylor] (default true) *)
  mult_deg : int;  (** S-procedure multiplier degree (default 2) *)
  sdp_params : Sdp.params;
  resilience : Resilient.policy;
      (** solve-orchestration policy (deadlines, fault plan, journal);
          advection solves run as probes under it — their failures steer
          the algorithm rather than escalate — while escape-certificate
          searches climb its retry ladder. When the pipeline deadline
          expires, {!run} stops advecting and degrades to escape
          certificates from the last certified front. *)
}

val default_config : config
(** Note: the default config carries one module-level {!Resilient}
    policy shared by every caller that uses it; pipelines wanting an
    isolated journal/deadline should install a fresh policy (as
    [Pll_core.Inevitability.verify ~resilience] does). *)

type step = {
  front : Poly.t;  (** the new front [w] *)
  gamma : float;  (** smallest feasible margin found *)
  time_s : float;
}

val ellipsoid_front : Pll.scaled -> radii:float array -> Poly.t
(** [Σ (x_i / r_i)² − 1] — the solid outer initial set [X2] of the
    paper's figures. *)

val advect_step :
  ?config:config -> ?caps:Poly.t array -> Pll.scaled -> Pll.point -> Poly.t -> (step, string) result
(** One bounded advection step of the front across all three PFD modes:
    a covering-ellipsoid candidate is fitted to the sampled mode-wise
    images of the current set ({e propose}), then the Lemma-1 transport
    condition [w(Φ_m(x)) <= −γ on S(q) ∩ D_m] is certified by SOS with
    the candidate fixed ({e certify}), inflating and retrying on
    failure. Only the certified condition is trusted; the numerics are
    merely a proposal heuristic. [rho] is the initial fit inflation. *)

val advect_step_sos :
  ?config:config -> Pll.scaled -> Pll.point -> Poly.t -> (step, string) result
(** The paper's original formulation: the new front is an {e unknown} of
    a single SOS program combining transport, tightness and (for
    [Taylor]) truncation constraints, with bisection on [γ]. More
    faithful to Eq. 6 but substantially harder on the interior-point
    solver; retained for comparison and ablation. *)

val contained_in_invariant :
  ?mult_deg:int ->
  ?caps:Poly.t array ->
  ?probe_iters:int ->
  Pll.scaled ->
  Certificates.attractive_invariant ->
  Poly.t ->
  bool
(** Line 6 of Algorithm 1: SOS check that
    [S(front) ∩ D_q ⊆ {V_q <= β}] for every mode [q]. [caps] restricts
    the front to the certified reach-tube level cap
    [{V_q <= vmax}] (see {!run}): states of the front outside the cap
    are provably unreachable and need not be contained. [probe_iters]
    (default 60) bounds the interior-point iterations per mode: a
    [true] under any budget is a full certificate, while a tight
    budget can only turn hard feasible instances into conservative
    [false]s — the advection loop polls with a small budget and
    reserves the full one for the decisive final check. *)

val validate_step_by_simulation :
  ?samples:int -> ?seed:int -> Pll.scaled -> Pll.point -> h:float -> old_front:Poly.t -> Poly.t -> bool
(** Numerical soundness check of one step: sample states of the old
    front (per mode), integrate the hybrid flow for time [h], and
    verify the images satisfy [new front <= 0]. *)

(** Result of running Algorithm 1. *)
type run_result = {
  fronts : step list;  (** advected fronts, oldest first *)
  iterations : int;
  converged : bool;  (** front immersed in [X1] by advection alone *)
  escapes : (int * Poly.t) list;
      (** per-mode Escape certificates for the residual set, when
          advection alone was inconclusive (mode index, certificate) *)
  verified : bool;  (** P2 established (advection, or advection+escape) *)
  advect_time_s : float;  (** time in advection SOS programs (Table 2 row 3) *)
  inclusion_time_s : float;  (** time in set-inclusion checks (row 4) *)
  escape_time_s : float;  (** time in escape-certificate search (row 5) *)
  total_time_s : float;
}

val run :
  ?config:config ->
  ?max_iter:int ->
  ?escape_deg:int ->
  Pll.scaled ->
  Certificates.attractive_invariant ->
  init:Poly.t ->
  run_result
(** Algorithm 1: advect [init] until immersed in [X1] or [max_iter]
    (default 20) steps; if a residual remains, search per-mode Escape
    certificates (Proposition 1) on {front <= 0} ∖ int X1. *)
