module Ppoly = Sos.Ppoly

let src = Logs.Src.create "advect" ~doc:"bounded advection of level sets"

module Log = (val Logs.src_log src : Logs.LOG)

type advection_map = Exact | Taylor

type config = {
  front_deg : int;
  h : float;
  rho : float;
  gamma_max : float;
  gamma_bisect : int;
  map : advection_map;
  check_truncation : bool;
  mult_deg : int;
  sdp_params : Sdp.params;
  resilience : Resilient.policy;
}

let default_config =
  {
    front_deg = 2;
    h = 0.25;
    rho = 0.15;
    gamma_max = 0.3;
    gamma_bisect = 5;
    map = Exact;
    check_truncation = true;
    mult_deg = 2;
    (* Auxiliary certification solves are numerous; cap the interior-point
       effort — the best-iterate fallback still returns certified
       solutions for the feasible cases well within this budget. *)
    sdp_params = { Sdp.default_params with Sdp.max_iter = 60 };
    (* Shared by every run using the default config; pipelines wanting an
       isolated journal/deadline should install their own policy (as
       [Pll_core.Inevitability.verify ~resilience] does). *)
    resilience = Resilient.default ();
  }

module Mat = Linalg.Mat

(* Extract (A, b) from an affine vector field; the PFD-mode flows of the
   CP PLL are affine by construction. *)
let affine_of_flow n flow =
  let a = Mat.create n n and b = Array.make n 0.0 in
  Array.iteri
    (fun i fi ->
      List.iter
        (fun (m, c) ->
          match Poly.Monomial.degree m with
          | 0 -> b.(i) <- b.(i) +. c
          | 1 ->
              let j = ref 0 in
              Array.iteri (fun k e -> if e = 1 then j := k) m;
              Mat.set a i !j (Mat.get a i !j +. c)
          | _ -> invalid_arg "Advect: flow is not affine")
        (Poly.terms fi))
    flow;
  (a, b)

(* The exact time-h flow map x ↦ Mx + c of an affine field, as one affine
   polynomial per coordinate (via the augmented matrix exponential). *)
let exact_flow_map n flow h =
  let a, b = affine_of_flow n flow in
  let aug = Mat.create (n + 1) (n + 1) in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set aug i j (h *. Mat.get a i j)
    done;
    Mat.set aug i n (h *. b.(i))
  done;
  let e = Mat.expm aug in
  Array.init n (fun i ->
      let terms = ref [ (Poly.Monomial.one n, Mat.get e i n) ] in
      for j = 0 to n - 1 do
        terms := (Poly.Monomial.var n j, Mat.get e i j) :: !terms
      done;
      Poly.of_terms n !terms)

type step = { front : Poly.t; gamma : float; time_s : float }

let ellipsoid_front (s : Pll.scaled) ~radii =
  let n = s.Pll.nvars in
  if Array.length radii <> n then invalid_arg "Advect.ellipsoid_front: radii arity";
  Poly.sub
    (Poly.sum n
       (List.init n (fun i ->
            Poly.scale
              (1.0 /. (radii.(i) *. radii.(i)))
              (Poly.mul (Poly.var n i) (Poly.var n i)))))
    (Poly.one n)

(* ------------------------------------------------------------------ *)
(* Candidate-front synthesis: sample the current set per mode, push the
   samples through the mode flow maps, and fit a covering ellipsoid.
   The candidate is then *certified* by the Lemma-1 transport condition
   below — only the certification is trusted for soundness.            *)

(* Per-mode cap polynomials: reach(X2) provably satisfies V_q <= Vmax
   (Theorem 1 decrease), so advection only needs to track
   front ∩ {V_q <= Vmax}; without the cap the per-step covering operator
   has fat fixed points that never immerse into X1. *)
let caps_of ai vmax =
  Array.map (fun v -> Poly.sub (Poly.const (Poly.nvars v) vmax) v)
    ai.Certificates.cert.Certificates.vs

let sample_piece ?caps (s : Pll.scaled) q_cur m rng count =
  let n = s.Pll.nvars in
  let cap_ok x =
    match caps with None -> true | Some c -> Poly.eval c.(m) x >= 0.0
  in
  let pts = ref [] and found = ref 0 and attempts = ref 0 in
  while !found < count && !attempts < count * 300 do
    incr attempts;
    let x =
      Array.init n (fun i ->
          let b = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
          (Random.State.float rng 2.0 -. 1.0) *. b)
    in
    if
      Poly.eval q_cur x <= 0.0
      && cap_ok x
      && List.for_all (fun g -> Poly.eval g x >= 0.0) (Pll.mode_domain s m)
    then begin
      incr found;
      pts := x :: !pts
    end
  done;
  !pts

(* An ellipsoid (x-c)' P (x-c) <= 1 containing all points, built from the
   sample mean/covariance and inflated by [inflate]. *)
let covering_quadric n points inflate =
  let count = float_of_int (List.length points) in
  let mean =
    let acc = Array.make n 0.0 in
    List.iter (fun x -> Array.iteri (fun i v -> acc.(i) <- acc.(i) +. v) x) points;
    Array.map (fun v -> v /. count) acc
  in
  let cov = Mat.create n n in
  List.iter
    (fun x ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.set cov i j
            (Mat.get cov i j +. ((x.(i) -. mean.(i)) *. (x.(j) -. mean.(j)) /. count))
        done
      done)
    points;
  (* Regularize flat directions so the quadric stays bounded. *)
  let reg = 1e-4 *. (1.0 +. (Mat.trace cov /. float_of_int n)) in
  for i = 0 to n - 1 do
    Mat.set cov i i (Mat.get cov i i +. reg)
  done;
  let p = Mat.inverse cov in
  (* Radius: the largest Mahalanobis distance among the samples. *)
  let r2 =
    List.fold_left
      (fun acc x ->
        let d = Array.init n (fun i -> x.(i) -. mean.(i)) in
        Float.max acc (Linalg.Vec.dot d (Mat.mul_vec p d)))
      1e-9 points
  in
  let pm = Mat.scale (1.0 /. (r2 *. inflate)) (Mat.symmetrize p) in
  (* w(x) = (x-c)' Pm (x-c) - 1 *)
  let shifted = Poly.shift (Poly.quadratic_form pm) (Array.map (fun v -> -.v) mean) in
  Poly.sub shifted (Poly.one n)

(* Certify the transport condition for a *fixed* candidate front: for
   every mode m, w(Φ_m(x)) <= -gamma on {q_cur <= 0} ∩ D_m ∩ {Φ_m(x) ∈ Ω}.
   Fixed-data SOS feasibility problems — small and well conditioned. *)
let certify_transport ?caps cfg (s : Pll.scaled) pt q_cur front gamma =
  let n = s.Pll.nvars in
  let ok = ref true in
  for m = 0 to Pll.n_modes - 1 do
    if !ok then begin
      let f = Pll.flow s pt m in
      let map_polys = exact_flow_map n f cfg.h in
      let composed =
        match cfg.map with
        | Exact -> Poly.subst front map_polys
        | Taylor -> Poly.add front (Poly.scale cfg.h (Poly.lie_derivative front f))
      in
      let image_in_region =
        List.init n (fun i ->
            let b = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
            Poly.sub (Poly.const n (b *. b)) (Poly.mul map_polys.(i) map_polys.(i)))
      in
      let cap = match caps with None -> [] | Some c -> [ c.(m) ] in
      let prob = Sos.create ~nvars:n in
      Sos.add_nonneg_on ~mult_deg:cfg.mult_deg prob
        ~domain:(((Poly.neg q_cur :: cap) @ Pll.mode_domain s m) @ image_in_region)
        (Ppoly.of_poly (Poly.neg (Poly.add composed (Poly.const n gamma))));
      (* A failed transport check just sends the caller back for a fatter
         candidate — probe, not ladder. *)
      let sol, _ =
        Resilient.solve_sos
          (Resilient.probe cfg.resilience)
          ~label:(Printf.sprintf "transport:%s" (Pll.mode_name m))
          ~params:cfg.sdp_params prob
      in
      if not sol.Sos.certified then ok := false
    end
  done;
  !ok

(* The paper's pure-SOS front synthesis (unknown front solved inside one
   SOS program); retained as an alternative engine, used by tests. *)
let try_gamma cfg (s : Pll.scaled) pt q_cur gamma =
  let n = s.Pll.nvars in
  let prob = Sos.create ~nvars:n in
  let norm2 =
    Poly.sum n (List.init n (fun i -> Poly.mul (Poly.var n i) (Poly.var n i)))
  in
  (* The front must cut out a *compact* set containing the equilibrium —
     an unconstrained polynomial can satisfy transport/tightness with an
     unbounded sublevel set. Degree 2: w = (PSD quadratic) + ε|x|² +
     linear − 1, a genuine ellipsoid. Higher degrees: normalize
     w(0) = −1 and add the paper's star-shapedness condition
     ∇w·x ≥ ε|x|² on the verification box. *)
  let w =
    if cfg.front_deg <= 2 then begin
      let quad = Sos.fresh_sos prob ~deg:2 ~min_deg:2 in
      let lin =
        Sos.fresh_poly_basis prob (List.init n (fun i -> Poly.Monomial.var n i))
      in
      Ppoly.add
        (Ppoly.add quad (Ppoly.of_poly (Poly.scale 1e-3 norm2)))
        (Ppoly.sub lin (Ppoly.of_poly (Poly.one n)))
    end
    else begin
      let w = Sos.fresh_poly prob ~deg:cfg.front_deg in
      Sos.add_zero prob
        (Ppoly.add
           (Ppoly.of_terms n [ (Poly.Monomial.one n, Ppoly.coeff w (Poly.Monomial.one n)) ])
           (Ppoly.of_poly (Poly.one n)));
      let box =
        List.init n (fun i ->
            let b = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
            Poly.sub (Poly.const n (b *. b)) (Poly.mul (Poly.var n i) (Poly.var n i)))
      in
      (* ∇w · x *)
      let radial =
        let acc = ref (Ppoly.zero n) in
        for i = 0 to n - 1 do
          acc := Ppoly.add !acc (Ppoly.mul_poly (Poly.var n i) (Ppoly.partial i w))
        done;
        !acc
      in
      Sos.add_nonneg_on ~mult_deg:cfg.mult_deg prob ~domain:box
        (Ppoly.sub radial (Ppoly.of_poly (Poly.scale 1e-3 norm2)));
      w
    end
  in
  let gamma_p = Poly.const n gamma in
  for m = 0 to Pll.n_modes - 1 do
    let f = Pll.flow s pt m in
    let domain = Pll.mode_domain s m in
    (* Pull the unknown front back along the mode flow: exactly through
       the affine flow map, or by the paper's first-order Taylor
       transport (with its truncation constraints). *)
    let map_polys = exact_flow_map n f cfg.h in
    let pullback =
      match cfg.map with
      | Exact -> Ppoly.apply_poly_map map_polys w
      | Taylor -> Ppoly.add w (Ppoly.scale cfg.h (Ppoly.lie_derivative w f))
    in
    (* Both transport and tightness are restricted to points whose
       time-h image stays inside the verification region Ω (composed box
       constraints g∘Φ >= 0). This is sound provided the reach set of X2
       stays in Ω — which the X2 sizing guarantees and
       [validate_step_by_simulation] re-checks numerically. *)
    let image_in_region =
      List.init n (fun i ->
          let b = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
          Poly.sub (Poly.const n (b *. b)) (Poly.mul map_polys.(i) map_polys.(i)))
    in
    (* transport: old set flows into the new front with margin gamma *)
    Sos.add_nonneg_on ~mult_deg:cfg.mult_deg prob
      ~domain:((Poly.neg q_cur :: domain) @ image_in_region)
      (Ppoly.neg (Ppoly.add pullback (Ppoly.of_poly gamma_p)));
    (* tightness: beyond the rho-inflated old set, the pullback stays
       positive, so the new set cannot balloon. Fronts are normalized to
       w(0) = -1, so {q <= rho} is roughly a sqrt(1+rho) dilation of
       {q <= 0} — a uniform geometric inflation. *)
    Sos.add_nonneg_on ~mult_deg:cfg.mult_deg prob
      ~domain:((Poly.sub q_cur (Poly.const n cfg.rho) :: domain) @ image_in_region)
      (Ppoly.sub pullback (Ppoly.of_poly gamma_p));
    (if cfg.map = Taylor && cfg.check_truncation then begin
       (* |h²/2 · L²w| <= gamma on the mode domain *)
       let l2w = Ppoly.lie_derivative (Ppoly.lie_derivative w f) f in
       let half_h2 = cfg.h *. cfg.h /. 2.0 in
       Sos.add_nonneg_on ~mult_deg:cfg.mult_deg prob ~domain
         (Ppoly.sub (Ppoly.of_poly gamma_p) (Ppoly.scale half_h2 l2w));
       Sos.add_nonneg_on ~mult_deg:cfg.mult_deg prob ~domain
         (Ppoly.add (Ppoly.of_poly gamma_p) (Ppoly.scale half_h2 l2w))
     end)
  done;
  (* Among all feasible fronts, pick the tightest: maximize the average
     of w over the verification box, which shrinks {w <= 0} onto the
     transported image of the old set. *)
  let objective =
    List.fold_left
      (fun acc (mono, e) ->
        let moment = ref 1.0 in
        Array.iteri
          (fun i ei ->
            let b = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
            if ei mod 2 = 1 then moment := 0.0
            else
              (* normalized moment of x^ei over [-b, b] *)
              moment := !moment *. (Float.pow b (float_of_int ei) /. float_of_int (ei + 1)))
          mono;
        Sos.Lexpr.add acc (Sos.Lexpr.scale !moment e))
      Sos.Lexpr.zero (Ppoly.terms w)
  in
  Sos.maximize prob objective;
  (* Gamma probes steer a bisection — infeasibility is the answer. *)
  let sol, _ =
    Resilient.solve_sos
      (Resilient.probe cfg.resilience)
      ~label:(Printf.sprintf "gamma:%g" gamma)
      ~params:cfg.sdp_params prob
  in
  if sol.Sos.certified then Some (Poly.chop ~tol:1e-10 (Sos.value sol w)) else None

let advect_step_sos ?(config = default_config) (s : Pll.scaled) pt q_cur =
  let t0 = Sys.time () in
  (* Larger gamma = larger certified soundness margin = harder program.
     Probe the small end first, then bisect upward for the largest
     feasible margin. *)
  let gamma_min = config.gamma_max /. Float.pow 2.0 (float_of_int config.gamma_bisect) in
  match try_gamma config s pt q_cur gamma_min with
  | None ->
      Error (Printf.sprintf "advection step infeasible even at gamma = %g" gamma_min)
  | Some w0 -> (
      match try_gamma config s pt q_cur config.gamma_max with
      | Some w -> Ok { front = w; gamma = config.gamma_max; time_s = Sys.time () -. t0 }
      | None ->
          let best = ref (w0, gamma_min) in
          let lo = ref gamma_min and hi = ref config.gamma_max in
          for _ = 1 to config.gamma_bisect do
            let mid = 0.5 *. (!lo +. !hi) in
            match try_gamma config s pt q_cur mid with
            | Some w ->
                best := (w, mid);
                lo := mid
            | None -> hi := mid
          done;
          let front, gamma = !best in
          Ok { front; gamma; time_s = Sys.time () -. t0 })

let advect_step ?(config = default_config) ?caps (s : Pll.scaled) pt q_cur =
  let t0 = Sys.time () in
  let n = s.Pll.nvars in
  let rng = Random.State.make [| 97 |] in
  (* 1. Sample the current (capped) set per mode and push through the
     mode maps. *)
  let images = ref [] in
  for m = 0 to Pll.n_modes - 1 do
    let f = Pll.flow s pt m in
    let map_polys = exact_flow_map n f config.h in
    let pts = sample_piece ?caps s q_cur m rng 300 in
    List.iter
      (fun x -> images := Array.map (fun p -> Poly.eval p x) map_polys :: !images)
      pts
  done;
  if List.length !images < n + 1 then
    Error "advection step: current front has (numerically) empty intersection with the domain"
  else begin
    (* 2. Fit a covering ellipsoid and certify; inflate on failure. *)
    let gamma = config.gamma_max /. Float.pow 2.0 (float_of_int config.gamma_bisect) in
    let rec attempt inflate tries =
      if tries = 0 then Error "advection step: candidate fronts failed certification"
      else begin
        let front = covering_quadric n !images inflate in
        if certify_transport ?caps config s pt q_cur front gamma then
          Ok { front; gamma; time_s = Sys.time () -. t0 }
        else attempt (inflate *. 1.35) (tries - 1)
      end
    in
    attempt (1.0 +. config.rho) 4
  end

let contained_in_invariant ?(mult_deg = 2) ?caps ?(probe_iters = 60) (s : Pll.scaled) ai
    front =
  let n = s.Pll.nvars in
  let params = { Sdp.default_params with Sdp.max_iter = probe_iters } in
  (* Non-inclusion is the expected answer until the advection converges —
     probe under the certificate's policy (shared clock/faults). *)
  let pol = Resilient.probe ai.Certificates.cert.Certificates.cfg.Certificates.resilience in
  let check m =
    let v = ai.Certificates.cert.Certificates.vs.(m) in
    let cap = match caps with None -> [] | Some (c : Poly.t array) -> [ c.(m) ] in
    let prob = Sos.create ~nvars:n in
    Sos.add_nonneg_on ~mult_deg prob
      ~domain:((Poly.neg front :: cap) @ Pll.mode_domain s m)
      (Ppoly.of_poly (Poly.sub (Poly.const n ai.Certificates.beta) v));
    let sol, _ =
      Resilient.solve_sos pol
        ~label:(Printf.sprintf "inclusion:%s" (Pll.mode_name m))
        ~params prob
    in
    (prob, sol)
  in
  match Resilient.supervisor pol with
  | Some ctx when not (Supervise.in_worker ctx) ->
      (* Per-mode inclusion checks are independent probes: fan them out
         across the worker pool and require every mode to certify.
         Solves happen in forked children, so the parent session never
         sees their solutions — each child distills its clean solve
         into a warm-start capsule (pure data, Marshal-safe) and the
         parent feeds the capsules back into the session, warming the
         next advection step's checks. *)
      let results =
        Supervise.Pool.map ctx
          ~f:(fun _ m ->
            let prob, sol = check m in
            let capsule =
              if sol.Sos.sdp.Sdp.status = Sdp.Optimal && sol.Sos.sdp.Sdp.injected = 0
              then Sdp.warm_start_of_solution (Sos.sdp_problem prob) sol.Sos.sdp
              else None
            in
            (sol.Sos.certified, capsule))
          (List.init Pll.n_modes Fun.id)
      in
      (match Resilient.session_of pol with
      | Some sess ->
          List.iter
            (function
              | Ok (_, Some w) -> Sdp.Session.remember_capsule sess w
              | Ok (_, None) | Error _ -> ())
            results
      | None -> ());
      List.for_all
        (function Ok (ok, _) -> ok | Error _ -> false)
        results
  | _ ->
      let ok = ref true in
      for m = 0 to Pll.n_modes - 1 do
        if !ok then if not (snd (check m)).Sos.certified then ok := false
      done;
      !ok

let validate_step_by_simulation ?(samples = 200) ?(seed = 7) (s : Pll.scaled) pt ~h
    ~old_front front =
  let rng = Random.State.make [| seed |] in
  let n = s.Pll.nvars in
  let sys = Pll.hybrid_system s pt in
  let ok = ref true in
  let found = ref 0 and attempts = ref 0 in
  while !found < samples && !attempts < samples * 100 do
    incr attempts;
    let x =
      Array.init n (fun i ->
          let b = if i = Pll.theta_index s then s.Pll.theta_max else s.Pll.w_max in
          (Random.State.float rng 2.0 -. 1.0) *. b)
    in
    if Poly.eval old_front x <= 0.0 then begin
      incr found;
      (* Integrate the true hybrid dynamics (including mode switches
         mid-step) from whichever mode's slab contains x. *)
      let th = x.(Pll.theta_index s) in
      let m =
        if Float.abs th <= s.Pll.theta_on then Pll.off
        else if th > 0.0 then Pll.up
        else Pll.down
      in
      let r = Hybrid.simulate ~dt:(h /. 50.0) sys ~mode0:m ~x0:x ~t_max:h in
      (* Allow a small numerical tolerance at the front boundary. *)
      if Poly.eval front r.Hybrid.final.Hybrid.state > 1e-6 then ok := false
    end
  done;
  !ok && !found > 0

type run_result = {
  fronts : step list;
  iterations : int;
  converged : bool;
  escapes : (int * Poly.t) list;
  verified : bool;
  advect_time_s : float;
  inclusion_time_s : float;
  escape_time_s : float;
  total_time_s : float;
}

let run ?(config = default_config) ?(max_iter = 20) ?(escape_deg = 4) (s : Pll.scaled) ai
    ~init =
  (* Phase timings: CPU seconds when everything runs in-process, wall
     clock under a supervisor — forked workers burn CPU the parent's
     [Sys.time] never sees. *)
  let now =
    match Resilient.supervisor config.resilience with
    | Some _ -> Unix.gettimeofday
    | None -> Sys.time
  in
  let t0 = now () in
  let pt = Pll.nominal s in
  let fronts = ref [] in
  let current = ref init in
  let converged = ref false in
  let iters = ref 0 in
  let advect_time = ref 0.0 and inclusion_time = ref 0.0 and escape_time = ref 0.0 in
  let timed acc f =
    let t = now () in
    let r = f () in
    acc := !acc +. (now () -. t);
    r
  in
  (* Certified cap: the reach tube of X2 stays within {V_q <= vmax}
     (Theorem-1 decrease), so every front only needs to track the capped
     set — without this the covering operator has fat fixed points. The
     cap is re-derived from each new front (monotone ratchet): reach at
     step k+1 lies in front_{k+1} ∩ {V <= vmax_k}, whose certified V-max
     is vmax_{k+1} <= vmax_k. *)
  let vmax = ref infinity in
  let caps = ref None in
  let refresh_cap front =
    let extra_domain =
      match !caps with None -> [] | Some c -> Array.to_list c
    in
    match
      timed inclusion_time (fun () ->
          Certificates.upper_bound_on_set ~extra_domain s ai.Certificates.cert ~set:front)
    with
    | Ok v when v < !vmax ->
        vmax := v;
        caps := Some (caps_of ai v)
    | Ok _ | Error _ -> ()
  in
  refresh_cap init;
  (match !caps with
  | Some _ -> Log.info (fun k -> k "reach-tube level cap: V <= %g" !vmax)
  | None -> Log.warn (fun k -> k "no certified level cap; advecting uncapped"));
  (try
     for i = 1 to max_iter do
       (* Out of budget: stop advecting and fall through to the escape
          certificates, which can still close the argument from the last
          certified front — graceful degradation instead of a hang. *)
       if Resilient.out_of_time config.resilience then begin
         Log.warn (fun k ->
             k "advection: pipeline deadline hit at iteration %d — degrading to escape \
                certificates from the current front"
               i);
         raise Exit
       end;
       if
         (* Opportunistic early-exit poll: a certified "yes" at a tight
            iteration budget is a full certificate, and a "no" only costs
            one more advection round — the decisive post-loop check below
            runs with the full budget. Failing probes otherwise burn the
            whole budget every round, dominating the loop's wall time. *)
         timed inclusion_time (fun () ->
             contained_in_invariant ?caps:!caps ~probe_iters:25 s ai !current)
       then begin
         converged := true;
         raise Exit
       end;
       match
         timed advect_time (fun () -> advect_step ~config ?caps:!caps s pt !current)
       with
       | Ok st ->
           Log.info (fun k ->
               k "advection iteration %d: gamma = %g, cap = %g (%.1fs)" i st.gamma !vmax
                 st.time_s);
           (* Fixed-point detection: if the front stopped moving, further
              iterations cannot change the outcome. *)
           let stalled =
             Poly.approx_equal ~tol:(1e-3 *. (1.0 +. Poly.max_coeff st.front)) st.front
               !current
           in
           fronts := st :: !fronts;
           current := st.front;
           iters := i;
           if i mod 3 = 0 then refresh_cap st.front;
           if stalled then begin
             Log.info (fun k -> k "advection reached a fixed point at iteration %d" i);
             raise Exit
           end
       | Error e ->
           Log.warn (fun k -> k "advection stalled at iteration %d: %s" i e);
           raise Exit
     done;
     if timed inclusion_time (fun () -> contained_in_invariant ?caps:!caps s ai !current)
     then converged := true
   with Exit -> ());
  let caps = !caps in
  let escapes = ref [] in
  let escapes_ok = ref true in
  if not !converged then begin
    (* Residual set per mode: {front <= 0} ∩ cap ∩ {V_q >= β} ∩ D_q. The
       escape certificate shows trajectories must leave it; since V_q
       decreases along flows, they can only leave into X1. *)
    let escape_for m =
      let v = ai.Certificates.cert.Certificates.vs.(m) in
      let n = s.Pll.nvars in
      let cap = match caps with None -> [] | Some c -> [ c.(m) ] in
      let domain =
        (Poly.neg !current :: cap)
        @ (Poly.sub v (Poly.const n ai.Certificates.beta) :: Pll.mode_domain s m)
      in
      (* The certificate V_q itself escapes the residual: away from the
         origin its decrease margin eps·|x|² is bounded below, so try the
         fixed candidate E = V_q at a ladder of rates before the generic
         search. *)
      let fixed_v_escape () =
        let rec try_eps = function
          | [] -> Error "fixed-V escape not certified"
          | eps :: rest ->
              if
                Certificates.check_escape ~eps ~policy:config.resilience ~nvars:n
                  ~flow:(Pll.flow s pt m) ~domain ~certificate:v ()
              then Ok (v, ())
              else try_eps rest
        in
        try_eps [ 1e-1; 1e-2; 1e-3 ]
      in
      match fixed_v_escape () with
      | Ok (e, ()) -> Some e
      | Error _ -> (
          match
            Certificates.find_escape ~deg:escape_deg ~policy:config.resilience
              ~nvars:n ~flow:(Pll.flow s pt m) ~domain ()
          with
          | Ok (e, _) -> Some e
          | Error _ -> None)
    in
    match Resilient.supervisor config.resilience with
    | Some ctx when not (Supervise.in_worker ctx) ->
        (* Per-mode escape searches are independent and return plain
           polynomials — fan out across the worker pool. *)
        let results =
          timed escape_time (fun () ->
              Supervise.Pool.map ctx
                ~f:(fun _ m -> escape_for m)
                (List.init Pll.n_modes Fun.id))
        in
        List.iteri
          (fun m r ->
            match r with
            | Ok (Some e) -> escapes := (m, e) :: !escapes
            | Ok None | Error _ -> escapes_ok := false)
          results
    | _ ->
        for m = 0 to Pll.n_modes - 1 do
          match timed escape_time (fun () -> escape_for m) with
          | Some e -> escapes := (m, e) :: !escapes
          | None -> escapes_ok := false
        done
  end;
  {
    fronts = List.rev !fronts;
    iterations = !iters;
    converged = !converged;
    escapes = List.rev !escapes;
    verified = !converged || !escapes_ok;
    advect_time_s = !advect_time;
    inclusion_time_s = !inclusion_time;
    escape_time_s = !escape_time;
    total_time_s = now () -. t0;
  }
